// perf_fleet_server - round latency and graceful degradation of the
// event-driven fleet server (sim/fleet_server.hpp), the robustness-side
// counterpart of perf_training's fixed-round fleet measurement.
//
// Writes bench_out/BENCH_fleet_server.json with:
//
//   1. calm-fleet round latency: mean wall seconds per round when every
//      device is healthy (quorum fraction must be 1.0) - the server's
//      steady-state overhead with no snapshot ring in the loop;
//   2. degradation under churn: the same geometry with mid-round
//      departures, stragglers and upload failures injected - quorum
//      fraction, degraded (zero-quorum) rounds, late merges, carried
//      uploads, retries, losses, and per-round wall time with the
//      snapshot ring enabled (so the persisted-boundary cost is priced
//      into the churny number, where a real deployment pays it);
//   3. the ring-entry cost: bytes per boundary snapshot and the drain
//      wall time;
//   4. the bit-identity gate: the churny run repeated with a different
//      worker-pool size must produce byte-identical global Q-tables
//      (exit 1 otherwise), same contract the fleet tests pin.
//
// `--smoke` shrinks the geometry so CI can run it on every PR.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/fleet_server.hpp"
#include "workload/apps.hpp"

namespace {

using namespace nextgov;
using nextgov::bench::out_dir;
using nextgov::bench::print_header;
using nextgov::bench::wall_seconds;

sim::FleetServerOptions base_options(std::size_t devices) {
  sim::FleetServerOptions options;
  options.devices = devices;
  options.round_duration = SimTime::from_seconds(20.0);
  options.round_deadline = SimTime::from_seconds(40.0);
  options.episode_length = SimTime::from_seconds(10.0);
  options.heartbeat_period = SimTime::from_seconds(2.0);
  options.lease_timeout = SimTime::from_seconds(5.0);
  options.upload_latency = SimTime::from_seconds(1.0);
  options.retry_backoff = SimTime::from_seconds(2.0);
  options.base_seed = 5150;
  return options;
}

struct RunSummary {
  std::vector<sim::FleetServerRoundStats> rounds;
  sim::FleetServerStats stats;
  std::vector<std::uint8_t> table_bytes;
  std::size_t global_states{0};
  double wall_s{0.0};

  [[nodiscard]] double mean_round_wall_s() const {
    if (rounds.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& rs : rounds) sum += rs.wall_seconds;
    return sum / static_cast<double>(rounds.size());
  }
  [[nodiscard]] double quorum_fraction(std::size_t devices) const {
    if (rounds.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& rs : rounds) {
      sum += static_cast<double>(rs.quorum) / static_cast<double>(devices);
    }
    return sum / static_cast<double>(rounds.size());
  }
  [[nodiscard]] std::size_t degraded_rounds() const {
    std::size_t n = 0;
    for (const auto& rs : rounds) {
      if (rs.quorum == 0) ++n;
    }
    return n;
  }
};

RunSummary run_server(const sim::FleetServerOptions& options, std::size_t rounds,
                      std::size_t workers) {
  RunSummary summary;
  sim::FleetServer server{workload::AppId::kLineage, options, {.workers = workers}};
  summary.wall_s = wall_seconds([&] {
    server.run_rounds(rounds, [&](const sim::FleetServerRoundStats& rs) {
      summary.rounds.push_back(rs);
    });
  });
  summary.stats = server.stats();
  if (server.global() != nullptr) {
    summary.global_states = server.global()->state_count();
    ByteWriter bytes;
    server.global()->serialize(bytes);
    summary.table_bytes = bytes.data();
  }
  return summary;
}

std::size_t file_bytes(const std::string& path) {
  std::size_t n = 0;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    std::fseek(f, 0, SEEK_END);
    n = static_cast<std::size_t>(std::ftell(f));
    std::fclose(f);
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  print_header("perf", smoke ? "fleet server round latency + churn degradation (smoke mode)"
                             : "fleet server round latency + churn degradation");

  const std::size_t devices = smoke ? 3 : 6;
  const std::size_t rounds = smoke ? 3 : 6;
  const std::size_t ring_size = 3;

  // --- calm fleet: pure round latency, no ring ----------------------------
  const sim::FleetServerOptions calm = base_options(devices);
  const RunSummary calm_run = run_server(calm, rounds, 4);
  std::printf("  calm:  %zu devices x %zu rounds, quorum %.2f, %.3f s/round "
              "-> %zu global states\n",
              devices, rounds, calm_run.quorum_fraction(devices),
              calm_run.mean_round_wall_s(), calm_run.global_states);

  // --- churny fleet: degradation + ring cost ------------------------------
  sim::FleetServerOptions churny = base_options(devices);
  churny.churn.depart_rate = 0.25;
  churny.churn.straggle_rate = 0.3;
  churny.churn.upload_fail_rate = 0.3;
  churny.churn.rejoin_after_rounds = 1;
  churny.snapshot_ring = ring_size;
  churny.snapshot_prefix = out_dir() + "/perf_fleet_server.ring";
  for (std::size_t slot = 0; slot < ring_size; ++slot) {
    std::remove((churny.snapshot_prefix + "." + std::to_string(slot)).c_str());
  }
  const RunSummary churny_run = run_server(churny, rounds, 4);
  std::size_t carried = 0;
  std::size_t retries = 0;
  for (const auto& rs : churny_run.rounds) {
    carried += rs.carried_late;
    retries += rs.retries;
  }
  std::printf("  churn: quorum %.2f (%zu degraded rounds), late %llu, carried %zu, "
              "retries %zu, lost %llu, departures %llu, %.3f s/round\n",
              churny_run.quorum_fraction(devices), churny_run.degraded_rounds(),
              static_cast<unsigned long long>(churny_run.stats.late_uploads_merged),
              carried, retries,
              static_cast<unsigned long long>(churny_run.stats.uploads_lost),
              static_cast<unsigned long long>(churny_run.stats.departures),
              churny_run.mean_round_wall_s());

  // --- ring-entry cost ----------------------------------------------------
  // The boundary after round r lands in slot (r+1) % ring, so the newest
  // entry after `rounds` rounds sits at rounds % ring.
  const std::size_t last_slot = rounds % ring_size;
  const std::size_t ring_entry_bytes =
      file_bytes(churny.snapshot_prefix + "." + std::to_string(last_slot));
  double drain_s = 0.0;
  {
    sim::FleetServer server{workload::AppId::kLineage, churny, {.workers = 4}};
    drain_s = wall_seconds([&] { server.drain(); });
  }
  std::printf("  ring:  %zu bytes/boundary snapshot, drain %.3f ms\n", ring_entry_bytes,
              1e3 * drain_s);
  for (std::size_t slot = 0; slot < ring_size; ++slot) {
    std::remove((churny.snapshot_prefix + "." + std::to_string(slot)).c_str());
  }

  // --- bit-identity gate --------------------------------------------------
  // The ring already holds the 4-worker run's boundaries; a fresh ring for
  // the single-worker replay keeps the restore path out of the comparison.
  sim::FleetServerOptions replay = churny;
  replay.snapshot_ring = 0;
  replay.snapshot_prefix.clear();
  const RunSummary serial_run = run_server(replay, rounds, 1);
  const bool bit_identical = !churny_run.table_bytes.empty() &&
                             serial_run.table_bytes == churny_run.table_bytes &&
                             serial_run.stats.uploads_accepted ==
                                 churny_run.stats.uploads_accepted &&
                             serial_run.stats.total_decisions ==
                                 churny_run.stats.total_decisions;
  std::printf("  bit-identity (1 vs 4 workers under churn): %s\n",
              bit_identical ? "bit-identical" : "RESULTS DIVERGED");

  // --- JSON trajectory file ----------------------------------------------
  const std::string path = out_dir() + "/BENCH_fleet_server.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"perf_fleet_server\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"geometry\": {\n");
  std::fprintf(out, "    \"devices\": %zu,\n", devices);
  std::fprintf(out, "    \"rounds\": %zu,\n", rounds);
  std::fprintf(out, "    \"round_duration_s\": %.1f,\n", calm.round_duration.seconds());
  std::fprintf(out, "    \"round_deadline_s\": %.1f\n", calm.round_deadline.seconds());
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"calm\": {\n");
  std::fprintf(out, "    \"mean_round_wall_s\": %.4f,\n", calm_run.mean_round_wall_s());
  std::fprintf(out, "    \"quorum_fraction\": %.4f,\n", calm_run.quorum_fraction(devices));
  std::fprintf(out, "    \"global_states\": %zu,\n", calm_run.global_states);
  std::fprintf(out, "    \"total_decisions\": %llu\n",
               static_cast<unsigned long long>(calm_run.stats.total_decisions));
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"churn\": {\n");
  std::fprintf(out, "    \"depart_rate\": %.2f,\n", churny.churn.depart_rate);
  std::fprintf(out, "    \"straggle_rate\": %.2f,\n", churny.churn.straggle_rate);
  std::fprintf(out, "    \"upload_fail_rate\": %.2f,\n", churny.churn.upload_fail_rate);
  std::fprintf(out, "    \"mean_round_wall_s\": %.4f,\n", churny_run.mean_round_wall_s());
  std::fprintf(out, "    \"quorum_fraction\": %.4f,\n", churny_run.quorum_fraction(devices));
  std::fprintf(out, "    \"degraded_rounds\": %zu,\n", churny_run.degraded_rounds());
  std::fprintf(out, "    \"late_uploads_merged\": %llu,\n",
               static_cast<unsigned long long>(churny_run.stats.late_uploads_merged));
  std::fprintf(out, "    \"carried_late_uploads\": %zu,\n", carried);
  std::fprintf(out, "    \"upload_retries\": %zu,\n", retries);
  std::fprintf(out, "    \"uploads_lost\": %llu,\n",
               static_cast<unsigned long long>(churny_run.stats.uploads_lost));
  std::fprintf(out, "    \"departures\": %llu,\n",
               static_cast<unsigned long long>(churny_run.stats.departures));
  std::fprintf(out, "    \"global_states\": %zu,\n", churny_run.global_states);
  std::fprintf(out, "    \"total_decisions\": %llu\n",
               static_cast<unsigned long long>(churny_run.stats.total_decisions));
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"ring\": {\n");
  std::fprintf(out, "    \"size\": %zu,\n", ring_size);
  std::fprintf(out, "    \"entry_bytes\": %zu,\n", ring_entry_bytes);
  std::fprintf(out, "    \"drain_ms\": %.3f\n", 1e3 * drain_s);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"determinism\": {\n");
  std::fprintf(out, "    \"workers\": [1, 4],\n");
  std::fprintf(out, "    \"bit_identical\": %s\n", bit_identical ? "true" : "false");
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("  -> %s\n\n", path.c_str());
  return bit_identical ? 0 : 1;
}
