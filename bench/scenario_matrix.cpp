// scenario_matrix - sweeps the scenario library across the ambient x
// refresh matrix through the parallel runner and tracks the results in
// bench_out/BENCH_scenarios.json.
//
// Four base scenarios (the Fig. 1 session, the two multi-app interleavings
// beyond it, and the bursty-background Spotify) cross three ambients
// (Section V's 15-35 C range) and three panels (60/90/120 Hz, Section I)
// into a 36-cell matrix. Every cell runs under stock schedutil; the JSON
// records per-cell PPDW / power / peak temperature plus the matrix wall
// time serially and across the worker pool, with the runner's bit-identity
// contract checked over the whole matrix (nonzero exit when it breaks).
//
// `--smoke` shortens every scenario to 30 s so CI can run the full matrix
// on every PR; smoke numbers are CI-health signals, not trajectory points.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace nextgov;
  using namespace nextgov::bench;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  print_header("scenarios", smoke ? "scenario x ambient x refresh matrix (smoke mode)"
                                  : "scenario x ambient x refresh matrix");

  const char* base_scenarios[] = {"fig1_session", "social_gaming", "commute_media",
                                  "spotify_bursty"};
  sim::ScenarioMatrix matrix;
  for (const char* name : base_scenarios) {
    sim::ScenarioSpec spec = sim::scenario(name);
    if (smoke) spec.duration = SimTime::from_seconds(30.0);
    matrix.add(std::move(spec));
  }
  matrix.ambients({15.0, 25.0, 35.0}).refresh_rates({60.0, 90.0, 120.0});

  // One expansion feeds both the labels and the plan, so JSON/console rows
  // stay aligned with plan rows by construction.
  const auto cells = matrix.expand();
  sim::RunPlan plan;
  sim::append_cells(plan, cells, sim::GovernorKind::kSchedutil);
  std::printf("  %zu cells (%zu scenarios x 3 ambients x 3 refresh rates)\n", plan.size(),
              std::size(base_scenarios));

  // Shared serial-vs-pool measurement + bit-identity gate (bench_util).
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const PlanTiming timing = time_run_plan(plan, hw);

  std::printf("  %-34s %8s %9s %9s %7s %9s\n", "cell", "power_W", "pk_big_C", "pk_dev_C",
              "fps", "ppdw");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const sim::SessionResult& r = timing.serial_results[i];
    std::printf("  %-34s %8.3f %9.1f %9.1f %7.1f %9.4f\n", cells[i].spec.name.c_str(),
                r.avg_power_w, r.peak_temp_big_c, r.peak_temp_device_c, r.avg_fps,
                r.avg_ppdw);
  }
  if (timing.can_measure_speedup) {
    std::printf("\n  matrix wall: serial %.2f s, %zu workers %.2f s -> %.2fx, %s\n",
                timing.serial_s, timing.workers, timing.parallel_s, timing.speedup,
                timing.bit_identical ? "bit-identical" : "RESULTS DIVERGED");
  } else {
    std::printf("\n  matrix wall: serial %.2f s; speedup skipped (1 hardware thread), "
                "bit-identity (%zu threads): %s\n",
                timing.serial_s, timing.contract_workers,
                timing.bit_identical ? "bit-identical" : "RESULTS DIVERGED");
  }

  // --- JSON trajectory file ---------------------------------------------
  const std::string path = out_dir() + "/BENCH_scenarios.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"scenario_matrix\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(out, "  \"cells\": %zu,\n", cells.size());
  std::fprintf(out, "  \"matrix\": {\n");
  std::fprintf(out, "    \"serial_wall_s\": %.4f,\n", timing.serial_s);
  if (timing.can_measure_speedup) {
    std::fprintf(out, "    \"status\": \"ok\",\n");
    std::fprintf(out, "    \"workers\": %zu,\n", timing.workers);
    std::fprintf(out, "    \"parallel_wall_s\": %.4f,\n", timing.parallel_s);
    std::fprintf(out, "    \"speedup\": %.3f,\n", timing.speedup);
  } else {
    std::fprintf(out, "    \"status\": \"skipped: single hardware thread\",\n");
    std::fprintf(out, "    \"speedup\": null,\n");
  }
  std::fprintf(out, "    \"bit_identical\": %s\n", timing.bit_identical ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const sim::SessionResult& r = timing.serial_results[i];
    std::fprintf(out,
                 "    {\"cell\": \"%s\", \"avg_power_w\": %.6f, \"peak_temp_big_c\": %.3f, "
                 "\"peak_temp_device_c\": %.3f, \"avg_fps\": %.3f, \"avg_ppdw\": %.6f, "
                 "\"energy_j\": %.4f, \"frames_dropped\": %lld}%s\n",
                 cells[i].spec.name.c_str(), r.avg_power_w, r.peak_temp_big_c,
                 r.peak_temp_device_c, r.avg_fps, r.avg_ppdw, r.energy_j,
                 static_cast<long long>(r.frames_dropped),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("  -> %s\n\n", path.c_str());
  return timing.bit_identical ? 0 : 1;
}
