// fig07_power - reproduces the paper's Fig. 7: average power consumption
// per application under schedutil, Next (fully trained) and Int. QoS PM
// (games only - "the methodology could not be extended to all
// applications", Section V).
//
// Paper reference savings vs schedutil:
//   Next:      facebook 37.05%, lineage 50.68%, pubg 40.95%,
//              spotify 32.98%, web browser 32.11%, youtube 40.6%
//   Int. QoS:  lineage 16.31%, pubg 23.84%
#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "workload/apps.hpp"

int main() {
  using namespace nextgov;
  using namespace nextgov::bench;

  print_header("Fig. 7", "average power per app: schedutil vs Next vs Int. QoS PM");

  struct PaperRef {
    workload::AppId app;
    double next_saving_pct;
    double intqos_saving_pct;  // <0 = not applicable
  };
  const PaperRef refs[] = {
      {workload::AppId::kFacebook, 37.05, -1.0}, {workload::AppId::kLineage, 50.68, 16.31},
      {workload::AppId::kPubg, 40.95, 23.84},    {workload::AppId::kSpotify, 32.98, -1.0},
      {workload::AppId::kWebBrowser, 32.11, -1.0}, {workload::AppId::kYoutube, 40.60, -1.0}};

  CsvWriter csv{out_dir() + "/fig07_power.csv",
                {"app", "sched_w", "next_w", "intqos_w", "next_saving_pct",
                 "paper_next_saving_pct", "intqos_saving_pct", "paper_intqos_saving_pct"}};

  std::printf("%-12s %9s %9s %9s | %9s %9s | %9s %9s\n", "app", "sched_W", "next_W",
              "intqos_W", "nxt_sav%", "paper%", "iq_sav%", "paper%");

  const int kSeeds = 3;

  // Train-then-evaluate across every (app x governor x seed) cell: the
  // shared protocol in bench_util (also fig08's), scenario session lengths.
  std::vector<workload::AppId> apps;
  for (const auto& ref : refs) apps.push_back(ref.app);
  const AppGovernorMatrix m = run_app_governor_matrix(apps, kSeeds, 500);

  for (std::size_t i = 0; i < std::size(refs); ++i) {
    const auto& ref = refs[i];
    const std::size_t slices = m.slice_counts[i];
    const std::span<const sim::SessionResult> all = m.app_results(i);
    const double sched_w =
        mean_field(governor_slice(all, 0, kSeeds), &sim::SessionResult::avg_power_w);
    const double next_w =
        mean_field(governor_slice(all, 1, kSeeds), &sim::SessionResult::avg_power_w);
    const double intqos_w =
        slices > 2 ? mean_field(governor_slice(all, 2, kSeeds), &sim::SessionResult::avg_power_w)
                   : -1.0;

    const double next_saving = 100.0 * (1.0 - next_w / sched_w);
    const double intqos_saving = intqos_w > 0.0 ? 100.0 * (1.0 - intqos_w / sched_w) : -1.0;
    std::printf("%-12s %9.3f %9.3f %9s | %9.1f %9.2f | %9s %9s\n",
                std::string{workload::to_string(ref.app)}.c_str(), sched_w, next_w,
                intqos_w > 0 ? std::to_string(intqos_w).substr(0, 5).c_str() : "-",
                next_saving, ref.next_saving_pct,
                intqos_saving >= 0 ? std::to_string(intqos_saving).substr(0, 5).c_str() : "-",
                ref.intqos_saving_pct >= 0 ? std::to_string(ref.intqos_saving_pct).substr(0, 5).c_str()
                                           : "-");
    csv.row_strings({std::string{workload::to_string(ref.app)}, std::to_string(sched_w),
                     std::to_string(next_w), std::to_string(intqos_w),
                     std::to_string(next_saving), std::to_string(ref.next_saving_pct),
                     std::to_string(intqos_saving), std::to_string(ref.intqos_saving_pct)});
  }

  std::printf("\nexpected shape: Next saves on every app, most on the games; Int. QoS PM\n"
              "saves meaningfully less than Next on the games (paper: 41%%/22%% gap).\n");
  std::printf("series -> %s/fig07_power.csv\n\n", out_dir().c_str());
  return 0;
}
