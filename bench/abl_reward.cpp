// abl_reward - ablation of the paper's central metric claim (Section III-B):
// "most of the existing studies focus on maximizing performance per watt
// (PPW), however ... reducing power consumption as well as the temperature
// of the device is very important ... trying to maximize PPW is not enough."
//
// Trains Next on Lineage with three rewards - PPDW (the paper's), PPW (no
// thermal term) and FPS-only tracking - and compares deployed power, peak
// temperature and QoS. PPDW should dominate PPW on peak temperature at
// comparable QoS; FPS-only should save nothing.
#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "workload/apps.hpp"

int main() {
  using namespace nextgov;
  using namespace nextgov::bench;

  print_header("Ablation", "reward metric: PPDW (paper) vs PPW vs FPS-only");

  struct Variant {
    const char* name;
    core::RewardMetric metric;
  };
  const Variant variants[] = {{"ppdw", core::RewardMetric::kPpdw},
                              {"ppw", core::RewardMetric::kPpw},
                              {"fps_only", core::RewardMetric::kFpsOnly}};

  // Stock baseline for context (a one-session runner plan). The session
  // setup - paper-length Lineage at the paper's operating point - comes
  // from the scenario library's per-app scenario.
  const sim::ScenarioSpec spec = sim::app_scenario(workload::AppId::kLineage);
  const std::uint64_t eval_seed = 2;
  sim::RunPlan sched_plan;
  sched_plan.add(spec.app_factory(), spec.name,
                 spec.experiment_config(sim::GovernorKind::kSchedutil, eval_seed));
  const sim::SessionResult sched = std::move(sim::run_plan(sched_plan).front());

  CsvWriter csv{out_dir() + "/abl_reward.csv",
                {"reward", "avg_power_w", "peak_temp_big_c", "avg_fps"}};
  std::printf("%-10s %14s %18s %10s\n", "reward", "avg_power_W", "peak_temp_big_C", "avg_FPS");
  std::printf("%-10s %14.3f %18.1f %10.1f\n", "schedutil", sched.avg_power_w,
              sched.peak_temp_big_c, sched.avg_fps);
  csv.row_strings({"schedutil", std::to_string(sched.avg_power_w),
                   std::to_string(sched.peak_temp_big_c), std::to_string(sched.avg_fps)});

  // Train the three reward variants concurrently through one TrainingPlan,
  // then run all deployed evaluation sessions through one runner plan.
  sim::TrainingPlan tplan;
  for (const auto& variant : variants) {
    core::NextConfig config;
    config.reward_metric = variant.metric;
    tplan.add(workload::AppId::kLineage, config, eval_training_options(17));
  }
  const std::vector<sim::TrainingResult> trained = sim::run_training_plan(tplan);

  sim::RunPlan plan;
  for (std::size_t i = 0; i < std::size(variants); ++i) {
    sim::ExperimentConfig cfg = spec.experiment_config(sim::GovernorKind::kNext, eval_seed);
    cfg.next_config.reward_metric = variants[i].metric;
    cfg.trained_table = &trained[i].table;
    plan.add(spec.app_factory(), spec.name, cfg);
  }
  const auto results = sim::run_plan(plan);

  for (std::size_t i = 0; i < std::size(variants); ++i) {
    const auto& variant = variants[i];
    const sim::SessionResult& r = results[i];
    std::printf("%-10s %14.3f %18.1f %10.1f%s\n", variant.name, r.avg_power_w,
                r.peak_temp_big_c, r.avg_fps,
                variant.metric == core::RewardMetric::kPpdw ? "   <- paper's metric" : "");
    csv.row_strings({variant.name, std::to_string(r.avg_power_w),
                     std::to_string(r.peak_temp_big_c), std::to_string(r.avg_fps)});
  }
  std::printf("\nexpected shape: PPDW matches or beats PPW on peak temperature at similar\n"
              "QoS (the thermal term matters); FPS-only leaves power on the table.\n");
  std::printf("series -> %s/abl_reward.csv\n\n", out_dir().c_str());
  return 0;
}
