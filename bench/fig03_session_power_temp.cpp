// fig03_session_power_temp - reproduces the paper's Fig. 3: device power
// and big-CPU temperature over the home -> Facebook -> Spotify session,
// schedutil vs fully-trained Next.
//
// Paper reference values (Section I-A):
//   avg power  schedutil 3.5154 W   Next 2.0433 W   (-41.88%)
//   avg temp   schedutil 52.33 C    Next 41.33 C    (-21.02%)
#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"

int main() {
  using namespace nextgov;
  using namespace nextgov::bench;

  print_header("Fig. 3", "power & big-CPU temperature: schedutil vs Next (same session)");

  // The canonical session comes from the scenario library (same workload,
  // ambient and panel as fig01).
  const sim::ScenarioSpec spec = sim::scenario("fig1_session");
  const sim::AppFactory factory = spec.app_factory();

  std::printf("training Next on the session workload...\n");
  const sim::TrainingResult trained = train_for_eval(factory, 1001);
  std::printf("  trained: %s after %.0f sim-s, %zu states, mean reward %.3f\n",
              trained.converged ? "converged" : "budget-limited", trained.sim_seconds,
              trained.states_visited, trained.final_mean_reward);

  // Both evaluation sessions go through the parallel runner.
  sim::RunPlan plan;
  plan.add(factory, spec.name, spec.experiment_config(sim::GovernorKind::kSchedutil));
  sim::ExperimentConfig next_cfg = spec.experiment_config(sim::GovernorKind::kNext);
  next_cfg.trained_table = &trained.table;
  plan.add(factory, spec.name, next_cfg);
  const auto results = sim::run_plan(plan);
  const sim::SessionResult& sched = results[0];
  const sim::SessionResult& next = results[1];

  const double power_saving = 100.0 * (1.0 - next.avg_power_w / sched.avg_power_w);
  const double temp_red = 100.0 * (1.0 - next.avg_temp_big_c / sched.avg_temp_big_c);

  std::printf("\nsession averages (280 s):\n");
  print_vs_paper("schedutil avg power", 3.5154, sched.avg_power_w, "W");
  print_vs_paper("Next avg power", 2.0433, next.avg_power_w, "W");
  print_vs_paper("power saving", 41.88, power_saving, "%");
  print_vs_paper("schedutil avg big temp", 52.33, sched.avg_temp_big_c, "C");
  print_vs_paper("Next avg big temp", 41.33, next.avg_temp_big_c, "C");
  print_vs_paper("temp reduction", 21.02, temp_red, "%");
  std::printf("  QoS: schedutil avg FPS %.1f vs Next %.1f\n", sched.avg_fps, next.avg_fps);

  CsvWriter csv{out_dir() + "/fig03_session_power_temp.csv",
                {"time_s", "power_sched_w", "power_next_w", "temp_sched_c", "temp_next_c"}};
  const std::size_t n = std::min(sched.series.size(), next.series.size());
  for (std::size_t i = 0; i < n; ++i) {
    csv.row({sched.series[i].time_s, sched.series[i].power_w, next.series[i].power_w,
             sched.series[i].temp_big_c, next.series[i].temp_big_c});
  }
  std::printf("series -> %s/fig03_session_power_temp.csv\n\n", out_dir().c_str());
  return 0;
}
