// fig01_session_fps - reproduces the paper's Fig. 1: FPS generation and
// big/LITTLE operating frequencies under stock schedutil across a
// home -> Facebook -> Spotify session (~280 s), sampled every 3 s.
//
// The paper's observation this bench must reproduce:
//   * FPS varies wildly within and across apps (user-interaction driven);
//   * during Spotify, FPS sits near 0 while the big/LITTLE frequencies
//     stay high - the waste that motivates Next.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"

int main() {
  using namespace nextgov;
  using namespace nextgov::bench;

  print_header("Fig. 1", "FPS + big/LITTLE frequency under schedutil (home->Facebook->Spotify)");

  // The canonical session comes from the scenario library; only the
  // figure's 3 s sampling cadence is local to this bench.
  sim::ScenarioSpec spec = sim::scenario("fig1_session");
  spec.record_period = SimTime::from_seconds(3.0);

  sim::RunPlan plan;
  plan.add(spec.app_factory(), spec.name,
           spec.experiment_config(sim::GovernorKind::kSchedutil));
  const sim::SessionResult r = std::move(sim::run_plan(plan).front());

  std::printf("%8s %10s %8s %14s %14s\n", "time_s", "app", "fps", "f_big_MHz", "f_little_MHz");
  for (const auto& s : r.series) {
    const char* app = s.time_s < 30.0 ? "home" : (s.time_s < 150.0 ? "facebook" : "spotify");
    std::printf("%8.0f %10s %8.1f %14.0f %14.0f\n", s.time_s, app, s.fps, s.f_big_mhz,
                s.f_little_mhz);
  }

  // The paper's qualitative claims, quantified per segment.
  RunningStats spotify_fps;
  RunningStats spotify_fbig;
  RunningStats fb_fps;
  for (const auto& s : r.series) {
    if (s.time_s >= 150.0) {
      spotify_fps.add(s.fps);
      spotify_fbig.add(s.f_big_mhz);
    } else if (s.time_s >= 30.0) {
      fb_fps.add(s.fps);
    }
  }
  std::printf("\nsegment summary:\n");
  std::printf("  facebook  mean FPS %.1f (bursty: min %.0f / max %.0f)\n", fb_fps.mean(),
              fb_fps.min(), fb_fps.max());
  std::printf("  spotify   mean FPS %.1f with mean big frequency %.0f MHz\n",
              spotify_fps.mean(), spotify_fbig.mean());
  std::printf("  -> paper's waste pattern reproduced: %s\n",
              (spotify_fps.mean() < 15.0 && spotify_fbig.mean() > 1200.0) ? "YES" : "NO");

  sim::Recorder rec{SimTime::from_seconds(3.0)};
  for (const auto& s : r.series) rec.add(s);
  const std::string csv = out_dir() + "/fig01_session_fps.csv";
  rec.save_csv(csv);
  std::printf("series -> %s\n\n", csv.c_str());
  return 0;
}
