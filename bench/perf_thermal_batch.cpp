// perf_thermal_batch - SoA batch thermal stepping vs per-session stepping.
//
// Fleet-scale sweeps advance hundreds of sessions through the same Note 9
// RcTopology; this bench tracks how much the structure-of-arrays batch
// stepper (thermal/rc_batch.hpp) gains over stepping each session's
// RcNetwork individually, and gates the whole measurement on the batch's
// bit-identity contract (exact equality of every node temperature of every
// session, plus engine-level run_plan_batched vs run_plan bit-identity).
// Results land in bench_out/BENCH_thermal_batch.json.
//
// `--smoke` shrinks the measurement so CI can run it on every PR; the
// identity gates are fully exercised either way and a nonzero exit means a
// contract broke (a bug, never noise).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "thermal/note9_model.hpp"
#include "thermal/rc_batch.hpp"

namespace {

using namespace nextgov;
using nextgov::bench::wall_seconds;

/// Deterministic, session-divergent power schedule: a triangle wave with
/// per-session period plus periodic bursts. Deliberately cheap (no
/// transcendentals) so the timed loops measure the thermal solve, not the
/// schedule.
double schedule_power(std::size_t s, std::size_t node, std::int64_t t) {
  const std::int64_t period = 2000 + 61 * static_cast<std::int64_t>(s % 16);
  const std::int64_t phase = t % period;
  const double tri =
      std::abs(static_cast<double>(2 * phase - period)) / static_cast<double>(period);
  const double base = 0.4 + 0.3 * static_cast<double>(node);
  const double burst = (t + static_cast<std::int64_t>(97 * s)) % 4000 < 800 ? 1.5 : 0.0;
  return base + 1.2 * tri + burst;
}

/// Power inputs change at DVFS-decision cadence (tens of ms), not every
/// 1 ms thermal tick; re-scheduling every tick would make the benchmark
/// measure the schedule instead of the solve.
constexpr std::int64_t kPowerUpdatePeriod = 16;

struct ThermalTiming {
  double serial_s{0.0};
  double batch_s{0.0};
  double speedup{0.0};
  double serial_steps_per_sec{0.0};  ///< session-steps per wall second
  double batch_steps_per_sec{0.0};
  bool bit_identical{false};
};

/// Times `sessions` Note 9 networks advanced `ticks` 1 ms steps serially
/// vs through one RcBatch, then re-runs both paths from a fresh state and
/// compares every node temperature bitwise.
ThermalTiming time_thermal(std::size_t sessions, std::int64_t ticks) {
  const auto& topo = thermal::note9_topology();
  const std::size_t n = topo->node_count();
  const SimTime dt = SimTime::from_ms(1);
  const auto ambient = [](std::size_t s) {
    return Celsius{15.0 + 2.5 * static_cast<double>(s % 9)};
  };

  const auto run_serial = [&](std::vector<thermal::RcNetwork>& nets, std::int64_t t0,
                              std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      const bool reschedule = t % kPowerUpdatePeriod == 0;
      for (std::size_t s = 0; s < sessions; ++s) {
        if (reschedule) {
          for (std::size_t i = 0; i < n; ++i) {
            nets[s].set_power(i, Watts{schedule_power(s, i, t)});
          }
        }
        nets[s].step(dt);
      }
    }
  };
  const auto run_batch = [&](thermal::RcBatch& batch, std::int64_t t0, std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      if (t % kPowerUpdatePeriod == 0) {
        for (std::size_t s = 0; s < sessions; ++s) {
          for (std::size_t i = 0; i < n; ++i) {
            batch.set_power(s, i, Watts{schedule_power(s, i, t)});
          }
        }
      }
      batch.step(dt);
    }
  };
  const auto make_nets = [&] {
    std::vector<thermal::RcNetwork> nets;
    nets.reserve(sessions);
    for (std::size_t s = 0; s < sessions; ++s) nets.emplace_back(topo, ambient(s));
    return nets;
  };
  const auto make_batch = [&] {
    thermal::RcBatch batch{topo, sessions};
    for (std::size_t s = 0; s < sessions; ++s) {
      batch.set_all_temperatures(s, ambient(s));
      batch.set_ambient(s, ambient(s));
    }
    return batch;
  };

  ThermalTiming timing;
  {
    // Timed runs (short warmup so both paths start with built caches).
    auto nets = make_nets();
    run_serial(nets, 0, 1000);
    timing.serial_s = wall_seconds([&] { run_serial(nets, 1000, 1000 + ticks); });
    auto batch = make_batch();
    run_batch(batch, 0, 1000);
    timing.batch_s = wall_seconds([&] { run_batch(batch, 1000, 1000 + ticks); });
  }
  const double session_steps = static_cast<double>(sessions) * static_cast<double>(ticks);
  timing.serial_steps_per_sec = session_steps / timing.serial_s;
  timing.batch_steps_per_sec = session_steps / timing.batch_s;
  timing.speedup = timing.serial_s / timing.batch_s;

  // Bit-identity gate, from fresh state over a shorter horizon.
  auto nets = make_nets();
  auto batch = make_batch();
  const std::int64_t check_ticks = std::min<std::int64_t>(ticks, 5000);
  run_serial(nets, 0, check_ticks);
  run_batch(batch, 0, check_ticks);
  timing.bit_identical = true;
  for (std::size_t s = 0; s < sessions; ++s) {
    for (std::size_t i = 0; i < n; ++i) {
      if (batch.temperature(s, i).value() != nets[s].temperature(i).value()) {
        timing.bit_identical = false;
        std::fprintf(stderr, "  BIT-IDENTITY BROKEN: session %zu node %zu %.17g != %.17g\n",
                     s, i, batch.temperature(s, i).value(), nets[s].temperature(i).value());
      }
    }
  }
  return timing;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nextgov::bench;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  print_header("perf", smoke ? "SoA thermal batch stepping (smoke mode)"
                             : "SoA thermal batch stepping vs per-session stepping");

  // --- thermal-layer batch vs serial ------------------------------------
  const std::int64_t ticks = smoke ? 20000 : 200000;
  const std::size_t session_counts[] = {4, 16, 64};
  std::vector<ThermalTiming> timings;
  bool all_identical = true;
  for (const std::size_t sessions : session_counts) {
    const ThermalTiming t = time_thermal(sessions, ticks);
    std::printf("  %3zu sessions: serial %7.2fM steps/s, batch %7.2fM steps/s -> %.2fx, %s\n",
                sessions, t.serial_steps_per_sec / 1e6, t.batch_steps_per_sec / 1e6,
                t.speedup, t.bit_identical ? "bit-identical" : "RESULTS DIVERGED");
    all_identical = all_identical && t.bit_identical;
    timings.push_back(t);
  }

  // --- engine-level batched runner --------------------------------------
  // One worker on both sides: this isolates the batch-resident stepping
  // gain from pool parallelism (perf_throughput already tracks the pool).
  const std::size_t engine_sessions = smoke ? 8 : 16;
  const double engine_sim_s = smoke ? 20.0 : 60.0;
  sim::RunPlan plan;
  for (std::size_t i = 0; i < engine_sessions; ++i) {
    sim::ExperimentConfig cfg;
    cfg.duration = SimTime::from_seconds(engine_sim_s);
    cfg.governor = (i % 2 == 0) ? sim::GovernorKind::kSchedutil : sim::GovernorKind::kNext;
    cfg.seed = sim::derive_seed(1234, i);
    plan.add(i % 2 == 0 ? workload::AppId::kLineage : workload::AppId::kFacebook, cfg);
  }

  // Headline ratio: both sides uninstrumented (the per-phase passes below
  // carry per-tick clock reads whose overhead differs between the two
  // paths, so they must not feed the gated number).
  std::vector<sim::SessionResult> serial_results;
  const double plan_serial_s =
      wall_seconds([&] { serial_results = sim::run_plan(plan, {.workers = 1}); });
  std::vector<sim::SessionResult> batched_results;
  const double plan_batched_s = wall_seconds([&] {
    batched_results = sim::run_plan_batched(plan, {.workers = 1, .max_batch = engine_sessions});
  });
  bool engine_identical = serial_results.size() == batched_results.size();
  for (std::size_t i = 0; engine_identical && i < serial_results.size(); ++i) {
    engine_identical = sim::bit_identical(serial_results[i], batched_results[i]);
  }
  const double engine_speedup = plan_batched_s > 0.0 ? plan_serial_s / plan_batched_s : 0.0;
  std::printf("  engine: %zu sessions x %.0fs, per-session %.2fs, batched %.2fs -> %.2fx, %s\n",
              engine_sessions, engine_sim_s, plan_serial_s, plan_batched_s, engine_speedup,
              engine_identical ? "bit-identical" : "RESULTS DIVERGED");

  // Phase attribution, separately instrumented on both sides. Serial side:
  // the engines' own phase methods - they compose to exactly Engine::step()
  // (engine.hpp contract) - timed per phase; batched side: the runner's
  // phase_timings hook. Per-phase *ratios* are comparable; the absolute
  // sums run slightly above the headline walls because of the clock reads.
  sim::BatchPhaseTimings serial_phases;
  {
    using Clock = std::chrono::steady_clock;
    std::size_t session_index = 0;
    for (const sim::SessionSpec& spec : plan.sessions()) {
      auto engine = sim::make_engine(spec.app_factory, spec.config);
      const SimTime dt = engine->config().step;
      const std::int64_t ticks = (spec.config.duration.us() + dt.us() - 1) / dt.us();
      Clock::time_point mark;
      const auto lap = [&](double sim::BatchPhaseTimings::* phase) {
        const Clock::time_point now = Clock::now();
        serial_phases.*phase += std::chrono::duration<double>(now - mark).count();
        mark = now;
      };
      for (std::int64_t t = 0; t < ticks; ++t) {
        mark = Clock::now();
        engine->step_pre_power();
        lap(&sim::BatchPhaseTimings::pre_s);
        engine->apply_power_model();
        lap(&sim::BatchPhaseTimings::power_s);
        engine->thermal().step(dt);
        lap(&sim::BatchPhaseTimings::thermal_s);
        engine->step_post_observe();
        lap(&sim::BatchPhaseTimings::observe_s);
        engine->step_post_meta();
        engine->step_post_finish();
        lap(&sim::BatchPhaseTimings::post_s);
      }
      serial_phases.ticks += ticks;
      // The phase decomposition must not drift from step(): gate it into
      // the same bit-identity check as the runners.
      engine_identical =
          engine_identical &&
          sim::bit_identical(
              sim::summarize(*engine, spec.name, std::string{to_string(spec.config.governor)}),
              serial_results[session_index]);
      ++session_index;
    }
  }
  sim::BatchPhaseTimings batch_phases;
  (void)sim::run_plan_batched(
      plan, {.workers = 1, .max_batch = engine_sessions, .phase_timings = &batch_phases});

  struct PhaseRow {
    const char* name;
    double serial_s;
    double batch_s;
  };
  const PhaseRow phase_rows[] = {
      {"pre", serial_phases.pre_s, batch_phases.pre_s},
      {"power", serial_phases.power_s, batch_phases.power_s},
      {"thermal", serial_phases.thermal_s, batch_phases.thermal_s},
      {"observe", serial_phases.observe_s, batch_phases.observe_s},
      {"post", serial_phases.post_s, batch_phases.post_s},
      {"scatter", serial_phases.scatter_s, batch_phases.scatter_s},
  };
  for (const PhaseRow& row : phase_rows) {
    const double ratio = row.batch_s > 0.0 ? row.serial_s / row.batch_s : 0.0;
    std::printf("    phase %-8s serial %7.3fs  batched %7.3fs  ratio %5.2fx\n", row.name,
                row.serial_s, row.batch_s, ratio);
  }

  // Regression gate: on hosts with enough cores for timing to mean
  // anything, a full-size batched run slower than per-session stepping is
  // a regression of the whole point of the batch-resident pipeline.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const bool gate_applicable = !smoke && engine_sessions >= 16 && hw >= 4;
  const bool gate_ok = !gate_applicable || engine_speedup >= 1.0;
  if (gate_applicable) {
    std::printf("  ratio gate (>= 1.0x at %zu sessions): %s (%.2fx)\n", engine_sessions,
                gate_ok ? "ok" : "FAILED", engine_speedup);
  } else {
    std::printf("  ratio gate: skipped (%s)\n",
                smoke ? "smoke mode" : (engine_sessions < 16 ? "< 16 sessions" : "< 4 cores"));
  }

  // --- JSON trajectory file ---------------------------------------------
  const std::string path = out_dir() + "/BENCH_thermal_batch.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"perf_thermal_batch\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"hardware_threads\": %u,\n",
               std::max(1u, std::thread::hardware_concurrency()));
  std::fprintf(out, "  \"thermal\": {\n");
  std::fprintf(out, "    \"ticks\": %lld,\n", static_cast<long long>(ticks));
  std::fprintf(out, "    \"sweeps\": [\n");
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const ThermalTiming& t = timings[i];
    std::fprintf(out,
                 "      {\"sessions\": %zu, \"serial_steps_per_sec\": %.0f, "
                 "\"batch_steps_per_sec\": %.0f, \"speedup\": %.3f, "
                 "\"bit_identical\": %s}%s\n",
                 session_counts[i], t.serial_steps_per_sec, t.batch_steps_per_sec, t.speedup,
                 t.bit_identical ? "true" : "false", i + 1 < timings.size() ? "," : "");
  }
  std::fprintf(out, "    ]\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"engine\": {\n");
  std::fprintf(out, "    \"sessions\": %zu,\n", engine_sessions);
  std::fprintf(out, "    \"sim_seconds_each\": %.0f,\n", engine_sim_s);
  std::fprintf(out, "    \"per_session_wall_s\": %.4f,\n", plan_serial_s);
  std::fprintf(out, "    \"batched_wall_s\": %.4f,\n", plan_batched_s);
  std::fprintf(out, "    \"speedup\": %.3f,\n", engine_speedup);
  std::fprintf(out, "    \"bit_identical\": %s,\n", engine_identical ? "true" : "false");
  std::fprintf(out, "    \"phases\": {\n");
  for (std::size_t i = 0; i < std::size(phase_rows); ++i) {
    const PhaseRow& row = phase_rows[i];
    const double ratio = row.batch_s > 0.0 ? row.serial_s / row.batch_s : 0.0;
    std::fprintf(out,
                 "      \"%s\": {\"serial_s\": %.4f, \"batched_s\": %.4f, \"ratio\": %.3f}%s\n",
                 row.name, row.serial_s, row.batch_s, ratio,
                 i + 1 < std::size(phase_rows) ? "," : "");
  }
  std::fprintf(out, "    },\n");
  if (gate_applicable) {
    std::fprintf(out, "    \"ratio_gate\": \"%s\"\n", gate_ok ? "ok" : "failed");
  } else {
    std::fprintf(out, "    \"ratio_gate\": \"skipped: %s\"\n",
                 smoke ? "smoke mode" : (engine_sessions < 16 ? "< 16 sessions" : "< 4 cores"));
  }
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("  -> %s\n\n", path.c_str());
  return all_identical && engine_identical && gate_ok ? 0 : 1;
}
