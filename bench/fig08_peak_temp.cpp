// fig08_peak_temp - reproduces the paper's Fig. 8: average peak temperature
// of the big CPU cluster and of the overall device, per application, under
// schedutil, Next and Int. QoS PM.
//
// Paper reference (Section V): vs schedutil, Next reduces peak temperature
// by up to 29.16% (big) and 21.21% (device); Int. QoS PM only reaches
// 22.80% (big) / 3.51% (device) on its applicable apps (games).
#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "workload/apps.hpp"

int main() {
  using namespace nextgov;
  using namespace nextgov::bench;

  print_header("Fig. 8", "average peak temperature (big CPU + device) per app and governor");

  CsvWriter csv{out_dir() + "/fig08_peak_temp.csv",
                {"app", "sched_big_c", "next_big_c", "intqos_big_c", "sched_dev_c",
                 "next_dev_c", "intqos_dev_c", "next_big_red_pct", "next_dev_red_pct"}};

  std::printf("%-12s | %8s %8s %8s | %8s %8s %8s | %9s %9s\n", "app", "schd_big", "next_big",
              "iq_big", "schd_dev", "next_dev", "iq_dev", "big_red%", "dev_red%");

  const int kSeeds = 3;
  double max_big_red = 0.0;
  double max_dev_red = 0.0;
  double max_iq_big_red = 0.0;
  double max_iq_dev_red = 0.0;

  // Train-then-evaluate across every (app x governor x seed) cell: the
  // shared protocol in bench_util (also fig07's), scenario session lengths.
  const auto apps = workload::all_apps();
  const AppGovernorMatrix m = run_app_governor_matrix(apps, kSeeds, 600);

  for (std::size_t i = 0; i < apps.size(); ++i) {
    const workload::AppId app = apps[i];
    const std::size_t slices = m.slice_counts[i];
    const std::span<const sim::SessionResult> all = m.app_results(i);
    const auto peak_temps = [&](std::size_t slice) {
      return std::pair{mean_field(governor_slice(all, slice, kSeeds),
                                  &sim::SessionResult::peak_temp_big_c),
                       mean_field(governor_slice(all, slice, kSeeds),
                                  &sim::SessionResult::peak_temp_device_c)};
    };

    const auto [sched_big, sched_dev] = peak_temps(0);
    const auto [next_big, next_dev] = peak_temps(1);
    double iq_big = -1.0;
    double iq_dev = -1.0;
    if (slices > 2) {
      const auto [b, d] = peak_temps(2);
      iq_big = b;
      iq_dev = d;
      max_iq_big_red = std::max(max_iq_big_red, 100.0 * (1.0 - iq_big / sched_big));
      max_iq_dev_red = std::max(max_iq_dev_red, 100.0 * (1.0 - iq_dev / sched_dev));
    }

    const double big_red = 100.0 * (1.0 - next_big / sched_big);
    const double dev_red = 100.0 * (1.0 - next_dev / sched_dev);
    max_big_red = std::max(max_big_red, big_red);
    max_dev_red = std::max(max_dev_red, dev_red);

    std::printf("%-12s | %8.1f %8.1f %8s | %8.1f %8.1f %8s | %9.1f %9.1f\n",
                std::string{workload::to_string(app)}.c_str(), sched_big, next_big,
                iq_big > 0 ? std::to_string(iq_big).substr(0, 4).c_str() : "-", sched_dev,
                next_dev, iq_dev > 0 ? std::to_string(iq_dev).substr(0, 4).c_str() : "-",
                big_red, dev_red);
    csv.row_strings({std::string{workload::to_string(app)}, std::to_string(sched_big),
                     std::to_string(next_big), std::to_string(iq_big),
                     std::to_string(sched_dev), std::to_string(next_dev),
                     std::to_string(iq_dev), std::to_string(big_red),
                     std::to_string(dev_red)});
  }

  std::printf("\nmaximum reductions vs schedutil:\n");
  print_vs_paper("Next big-CPU peak reduction", 29.16, max_big_red, "%");
  print_vs_paper("Next device peak reduction", 21.21, max_dev_red, "%");
  print_vs_paper("IntQos big-CPU peak reduction", 22.80, max_iq_big_red, "%");
  print_vs_paper("IntQos device peak reduction", 3.51, max_iq_dev_red, "%");
  std::printf("series -> %s/fig08_peak_temp.csv\n\n", out_dir().c_str());
  return 0;
}
