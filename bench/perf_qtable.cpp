// perf_qtable - Q-table storage and wire-format tracking for the repo's
// perf trajectory: the numbers behind the flat open-addressing QTable
// backend and the delta-encoded fleet uploads.
//
// Measures, and writes to bench_out/BENCH_qtable.json:
//
//   1. lookup and update ns/op for the flat SoA table vs an in-bench
//      replica of the old unordered_map-of-structs backend, over a
//      realistic mixed hit/miss key stream. Regression gate: the bench
//      exits nonzero if the flat table loses to the baseline on either
//      path (target ratio >= 1.5x on both);
//   2. resident bytes/state: QTable::memory_bytes() vs the node-allocated
//      baseline's (analytic) footprint;
//   3. fleet upload wire bytes at the 64-device / 8-shard shape: the same
//      train_fleet run with full uploads and with delta_uploads on, which
//      must produce bit-identical global tables (hard gate) while the
//      steady-state (last-round) delta bytes come in >= 5x smaller than
//      the full-table bytes (gated outside --smoke);
//   4. quantized wire sizes of the final global table (f32 / f16 / q8)
//      with the f32 mode's exact-round-trip gate and the lossy modes' max
//      absolute Q error.
//
// `--smoke` shrinks the key counts and the fleet shape so CI can run it on
// every PR; the perf gates relax to "must not lose" (>= 1.0x) and the 5x
// upload gate is skipped (a 2-round smoke fleet has no steady state), but
// the bit-identity gates stay hard.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "rl/qtable.hpp"
#include "rl/qtable_delta.hpp"
#include "sim/fleet.hpp"
#include "workload/apps.hpp"

namespace {

using namespace nextgov;

/// The seed backend this PR replaced, reconstructed locally so the bench
/// keeps an honest baseline after the real one is gone: one heap node per
/// state holding a q vector, visits and the tried mask, behind
/// std::unordered_map's bucket array.
class NodeQTable {
 public:
  explicit NodeQTable(std::size_t action_count, double default_q = 0.0)
      : actions_{action_count}, default_q_{default_q} {}

  double q(rl::StateKey s, std::size_t a) const noexcept {
    const auto it = states_.find(s);
    return it == states_.end() ? default_q_ : static_cast<double>(it->second.q[a]);
  }

  void set_q(rl::StateKey s, std::size_t a, double value) {
    Entry& e = touch(s);
    e.q[a] = static_cast<float>(value);
    e.tried |= std::uint32_t{1} << a;
  }

  double max_q(rl::StateKey s) const noexcept {
    const auto it = states_.find(s);
    if (it == states_.end()) return default_q_;
    float best = it->second.q[0];
    for (std::size_t a = 1; a < actions_; ++a) best = std::max(best, it->second.q[a]);
    return static_cast<double>(best);
  }

  void record_visit(rl::StateKey s) { ++touch(s).visits; }

  std::size_t state_count() const noexcept { return states_.size(); }

 private:
  struct Entry {
    std::vector<float> q;
    std::uint64_t visits{0};
    std::uint32_t tried{0};
  };

  Entry& touch(rl::StateKey s) {
    auto [it, inserted] = states_.try_emplace(s);
    if (inserted) it->second.q.assign(actions_, static_cast<float>(default_q_));
    return it->second;
  }

  std::size_t actions_;
  double default_q_;
  std::unordered_map<rl::StateKey, Entry> states_;
};

/// SplitMix64 - the same generator the table's hash mixes with, used here
/// only to synthesize a deterministic key stream.
std::uint64_t mix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// ns per op, best of `reps` timed passes (best-of suppresses scheduler
/// noise better than the mean for sub-microsecond ops).
template <typename Fn>
double best_ns_per_op(int reps, std::size_t ops, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    best = std::min(best, bench::wall_seconds(fn));
  }
  return 1e9 * best / static_cast<double>(ops);
}

std::vector<std::uint8_t> canonical_bytes(const rl::QTable& table) {
  ByteWriter out;
  table.serialize(out);
  return out.data();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nextgov::bench;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  print_header("perf", smoke ? "Q-table storage + upload wire format (smoke mode)"
                             : "Q-table storage + upload wire format");

  // --- 1. flat vs node-allocated micro-benchmark ---------------------------
  // Shapes follow training, where the table is hot: a session visits a few
  // thousand to a few tens of thousands of quantized states (Fig. 6; the
  // 64-device fleet global below lands around 20k), and every decision
  // re-reads states its own trajectory just wrote.
  const std::size_t actions = 16;
  const std::size_t n_states = smoke ? (1u << 13) : (1u << 15);
  const std::size_t n_lookups = smoke ? 4 * n_states : 16 * n_states;
  const int reps = smoke ? 3 : 5;

  std::uint64_t key_rng = 0xD45;
  std::vector<rl::StateKey> keys(n_states);
  for (auto& k : keys) k = rl::StateKey{mix64(key_rng)};

  rl::QTable flat{actions, 25.0};
  NodeQTable node{actions, 25.0};
  for (std::size_t i = 0; i < n_states; ++i) {
    const std::size_t a = i % actions;
    flat.set_q(keys[i], a, static_cast<double>(i % 97));
    flat.record_visit(keys[i]);
    node.set_q(keys[i], a, static_cast<double>(i % 97));
    node.record_visit(keys[i]);
  }

  // The training lookup mix, fixed up front so both tables walk the exact
  // same keys in the exact same order: each Q-learning step reads
  // Q(s, a) for the state it is updating and max_a Q(s', a) for the
  // bootstrap target - both table hits once the trajectory has passed
  // through - plus the occasional probe of a never-visited state (1 in 8).
  std::uint64_t stream_rng = 0xBEEF;
  std::vector<rl::StateKey> stream(n_lookups);
  for (std::size_t i = 0; i < n_lookups; ++i) {
    stream[i] = (i % 8 == 7) ? rl::StateKey{mix64(stream_rng)}
                             : keys[mix64(stream_rng) % n_states];
  }

  volatile double sink = 0.0;
  const double flat_lookup_ns = best_ns_per_op(reps, n_lookups, [&] {
    double acc = 0.0;
    for (std::size_t i = 0; i < n_lookups; ++i) {
      acc += (i % 2 == 0) ? flat.q(stream[i], i % actions) : flat.max_q(stream[i]);
    }
    sink = acc;
  });
  const double node_lookup_ns = best_ns_per_op(reps, n_lookups, [&] {
    double acc = 0.0;
    for (std::size_t i = 0; i < n_lookups; ++i) {
      acc += (i % 2 == 0) ? node.q(stream[i], i % actions) : node.max_q(stream[i]);
    }
    sink = acc;
  });

  // Update path: the Q-learning inner loop (set_q + record_visit) over
  // existing states - steady-state training, no growth in the timed region.
  const std::size_t n_updates = n_lookups;
  const double flat_update_ns = best_ns_per_op(reps, n_updates, [&] {
    for (std::size_t i = 0; i < n_updates; ++i) {
      const rl::StateKey s = keys[i % n_states];
      flat.set_q(s, i % actions, static_cast<double>(i & 63));
      flat.record_visit(s);
    }
  });
  const double node_update_ns = best_ns_per_op(reps, n_updates, [&] {
    for (std::size_t i = 0; i < n_updates; ++i) {
      const rl::StateKey s = keys[i % n_states];
      node.set_q(s, i % actions, static_cast<double>(i & 63));
      node.record_visit(s);
    }
  });

  const double lookup_ratio = flat_lookup_ns > 0.0 ? node_lookup_ns / flat_lookup_ns : 0.0;
  const double update_ratio = flat_update_ns > 0.0 ? node_update_ns / flat_update_ns : 0.0;
  const double micro_gate = smoke ? 1.0 : 1.5;
  const bool micro_ok = lookup_ratio >= micro_gate && update_ratio >= micro_gate;
  std::printf("  lookup: flat %6.1f ns  node %6.1f ns  (%.2fx)\n", flat_lookup_ns,
              node_lookup_ns, lookup_ratio);
  std::printf("  update: flat %6.1f ns  node %6.1f ns  (%.2fx)  [gate >= %.1fx: %s]\n",
              flat_update_ns, node_update_ns, update_ratio, micro_gate,
              micro_ok ? "ok" : "FAIL");

  // --- 2. resident bytes per state -----------------------------------------
  // Flat: measured. Node baseline: analytic - hash node (pair + next
  // pointer, allocator-rounded) + the q vector's own heap block + the
  // bucket array at load factor 1.
  const double flat_bytes_per_state =
      static_cast<double>(flat.memory_bytes()) / static_cast<double>(flat.state_count());
  const std::size_t node_payload = sizeof(rl::StateKey) + sizeof(std::vector<float>) +
                                   sizeof(std::uint64_t) + sizeof(std::uint32_t);
  const double node_bytes_per_state =
      static_cast<double>(((node_payload + 8 + 15) / 16) * 16  // node, 16-byte malloc rounding
                          + ((actions * sizeof(float) + 15) / 16) * 16 + 16  // q heap block
                          + sizeof(void*));                                  // bucket slot
  std::printf("  memory: flat %.1f bytes/state (measured)  node ~%.1f bytes/state "
              "(analytic)\n",
              flat_bytes_per_state, node_bytes_per_state);

  // --- 3. fleet upload wire bytes (64-device shape) ------------------------
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  sim::FleetOptions fleet;
  fleet.devices = smoke ? 8 : 64;
  fleet.shards = smoke ? 4 : 8;
  fleet.rounds = smoke ? 2 : 4;
  fleet.sync_spread = 1;  // every shard syncs every round: steady-state deltas
  fleet.round_duration = SimTime::from_seconds(smoke ? 30.0 : 90.0);
  fleet.episode_length = SimTime::from_seconds(15.0);
  fleet.base_seed = 616;
  const sim::RunnerOptions runner{.workers = hw};

  std::vector<sim::FleetRoundStats> full_rounds;
  std::vector<sim::FleetRoundStats> delta_rounds;
  const sim::FleetResult full_run = sim::train_fleet(
      workload::AppId::kLineage, fleet, runner,
      [&](const sim::FleetRoundStats& rs) { full_rounds.push_back(rs); });
  sim::FleetOptions delta_fleet = fleet;
  delta_fleet.delta_uploads = true;
  const sim::FleetResult delta_run = sim::train_fleet(
      workload::AppId::kLineage, delta_fleet, runner,
      [&](const sim::FleetRoundStats& rs) { delta_rounds.push_back(rs); });

  const bool fleet_identical =
      canonical_bytes(full_run.global) == canonical_bytes(delta_run.global);
  const std::uint64_t full_last = full_rounds.back().upload_bytes;
  const std::uint64_t delta_last = delta_rounds.back().upload_bytes;
  const double upload_ratio =
      delta_last > 0 ? static_cast<double>(full_last) / static_cast<double>(delta_last) : 0.0;
  const double upload_gate = 5.0;
  const bool upload_ok = fleet_identical && (smoke || upload_ratio >= upload_gate);
  std::printf("  fleet (%zu devices / %zu shards, round %zu): full %llu B  delta %llu B "
              "(%.1fx smaller)  tables %s\n",
              fleet.devices, fleet.shards, full_rounds.back().round,
              static_cast<unsigned long long>(full_last),
              static_cast<unsigned long long>(delta_last), upload_ratio,
              fleet_identical ? "bit-identical" : "DIVERGED");
  if (!smoke && upload_ratio < upload_gate) {
    std::printf("  upload gate FAILED: steady-state deltas must be >= %.1fx smaller\n",
                upload_gate);
  }

  // --- 4. quantized wire sizes ---------------------------------------------
  const rl::QTable& global = full_run.global;
  const auto quant_bytes = [&](rl::WireQuant mode) {
    ByteWriter out;
    rl::serialize_quantized(global, mode, out);
    return out.data();
  };
  const std::vector<std::uint8_t> f32_bytes = quant_bytes(rl::WireQuant::kF32);
  const std::vector<std::uint8_t> f16_bytes = quant_bytes(rl::WireQuant::kF16);
  const std::vector<std::uint8_t> q8_bytes = quant_bytes(rl::WireQuant::kQ8);

  const auto max_abs_err = [&](const std::vector<std::uint8_t>& blob) {
    ByteReader in{blob};
    const rl::QTable back = rl::deserialize_quantized(in);
    double worst = 0.0;
    global.for_each_entry([&](const rl::QTable::EntryView& e) {
      for (std::size_t a = 0; a < global.action_count(); ++a) {
        worst = std::max(worst, std::abs(e.q(a) - back.q(e.key(), a)));
      }
    });
    return worst;
  };
  ByteReader f32_in{f32_bytes};
  const bool f32_exact = rl::deserialize_quantized(f32_in) == global;
  const double f16_err = max_abs_err(f16_bytes);
  const double q8_err = max_abs_err(q8_bytes);
  std::printf("  quantized (%zu states): f32 %zu B (%s)  f16 %zu B (err %.3g)  "
              "q8 %zu B (err %.3g)\n",
              global.state_count(), f32_bytes.size(),
              f32_exact ? "exact" : "ROUND-TRIP DIVERGED", f16_bytes.size(), f16_err,
              q8_bytes.size(), q8_err);

  // --- JSON trajectory file ------------------------------------------------
  const std::string path = out_dir() + "/BENCH_qtable.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"perf_qtable\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"micro\": {\n");
  std::fprintf(out, "    \"actions\": %zu,\n", actions);
  std::fprintf(out, "    \"states\": %zu,\n", n_states);
  std::fprintf(out, "    \"lookup_ns_flat\": %.2f,\n", flat_lookup_ns);
  std::fprintf(out, "    \"lookup_ns_unordered_map\": %.2f,\n", node_lookup_ns);
  std::fprintf(out, "    \"lookup_speedup\": %.3f,\n", lookup_ratio);
  std::fprintf(out, "    \"update_ns_flat\": %.2f,\n", flat_update_ns);
  std::fprintf(out, "    \"update_ns_unordered_map\": %.2f,\n", node_update_ns);
  std::fprintf(out, "    \"update_speedup\": %.3f,\n", update_ratio);
  std::fprintf(out, "    \"gate_min_speedup\": %.1f,\n", micro_gate);
  std::fprintf(out, "    \"gate_passed\": %s\n", micro_ok ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"memory\": {\n");
  std::fprintf(out, "    \"flat_bytes_per_state\": %.1f,\n", flat_bytes_per_state);
  std::fprintf(out, "    \"unordered_map_bytes_per_state_estimate\": %.1f\n",
               node_bytes_per_state);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"fleet_uploads\": {\n");
  std::fprintf(out, "    \"devices\": %zu,\n", fleet.devices);
  std::fprintf(out, "    \"shards\": %zu,\n", fleet.shards);
  std::fprintf(out, "    \"rounds\": %zu,\n", fleet.rounds);
  std::fprintf(out, "    \"full_total_bytes\": %llu,\n",
               static_cast<unsigned long long>(full_run.upload_bytes_full));
  std::fprintf(out, "    \"delta_run_full_bytes\": %llu,\n",
               static_cast<unsigned long long>(delta_run.upload_bytes_full));
  std::fprintf(out, "    \"delta_run_delta_bytes\": %llu,\n",
               static_cast<unsigned long long>(delta_run.upload_bytes_delta));
  std::fprintf(out, "    \"delta_run_delta_uploads\": %zu,\n", delta_run.uploads_delta);
  std::fprintf(out, "    \"last_round_full_bytes\": %llu,\n",
               static_cast<unsigned long long>(full_last));
  std::fprintf(out, "    \"last_round_delta_bytes\": %llu,\n",
               static_cast<unsigned long long>(delta_last));
  std::fprintf(out, "    \"steady_state_shrink\": %.2f,\n", upload_ratio);
  if (smoke) {
    std::fprintf(out, "    \"gate\": \"bit-identity only (smoke)\",\n");
  } else {
    std::fprintf(out, "    \"gate_min_shrink\": %.1f,\n", upload_gate);
  }
  std::fprintf(out, "    \"bit_identical\": %s\n", fleet_identical ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"quantized\": {\n");
  std::fprintf(out, "    \"states\": %zu,\n", global.state_count());
  std::fprintf(out, "    \"f32_bytes\": %zu,\n", f32_bytes.size());
  std::fprintf(out, "    \"f32_roundtrip_exact\": %s,\n", f32_exact ? "true" : "false");
  std::fprintf(out, "    \"f16_bytes\": %zu,\n", f16_bytes.size());
  std::fprintf(out, "    \"f16_max_abs_err\": %.6g,\n", f16_err);
  std::fprintf(out, "    \"q8_bytes\": %zu,\n", q8_bytes.size());
  std::fprintf(out, "    \"q8_max_abs_err\": %.6g\n", q8_err);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("  -> %s\n\n", path.c_str());

  const bool ok = micro_ok && upload_ok && f32_exact;
  if (!ok) std::printf("  GATES FAILED\n");
  return ok ? 0 : 1;
}
