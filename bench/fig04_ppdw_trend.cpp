// fig04_ppdw_trend - reproduces the paper's Fig. 4: PPDW as a function of
// achieved FPS on Lineage 2 Revolution.
//
// Protocol (mirroring the paper's measurement):
//   * the "governed" series caps the game's frame rate at 10..60 FPS
//     (in-game limiter = cadence demand) and runs it under the trained Next
//     agent: PPDW rises with FPS (paper values 0.2337 ... 0.5316);
//   * the "worst" series (the paper's red points at FPS 0/1/10) forces all
//     clusters to maximum frequency while the game renders almost nothing -
//     maximum power and temperature for minimal performance.
#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "workload/apps.hpp"
#include "workload/phased_app.hpp"

namespace {

using namespace nextgov;

/// Lineage with every continuous phase converted into a fixed-rate cadence
/// (a frame-rate limiter), so the session settles at the requested FPS.
workload::AppSpec limited_lineage(double fps_cap) {
  workload::AppSpec spec = workload::lineage_spec();
  for (auto& phase : spec.phases) {
    if (phase.demand == workload::FrameDemand::kContinuous) {
      phase.demand = workload::FrameDemand::kCadence;
      phase.cadence_fps = fps_cap;
    } else if (phase.demand == workload::FrameDemand::kCadence) {
      phase.cadence_fps = std::min(phase.cadence_fps, fps_cap);
    }
  }
  return spec;
}

}  // namespace

int main() {
  using namespace nextgov::bench;

  print_header("Fig. 4", "PPDW vs FPS on Lineage 2 (governed trend + worst-case points)");

  // Paper's governed-series values for reference (FPS ~10..60).
  const double paper_governed[] = {0.2337, 0.3045, 0.3857, 0.4384, 0.5147, 0.5316};
  const double fps_caps[] = {10, 20, 30, 40, 50, 60};

  CsvWriter csv{out_dir() + "/fig04_ppdw_trend.csv",
                {"series", "fps", "ppdw", "power_w", "temp_big_c"}};

  std::printf("%10s %8s %10s %10s %12s %14s\n", "series", "fps", "ppdw", "power_W",
              "temp_big_C", "paper_ppdw");

  // Train one agent per cap - all six cells fan out across the runner's
  // worker pool via one TrainingPlan - then run every evaluation session
  // (the governed trend and the worst-case red points) through a single
  // runner plan.
  const auto factory_for = [](double cap) {
    return [cap](std::uint64_t seed) {
      return std::make_unique<workload::PhasedApp>(limited_lineage(cap), Rng{seed});
    };
  };
  sim::TrainingPlan tplan;
  for (std::size_t i = 0; i < 6; ++i) {
    tplan.add(factory_for(fps_caps[i]), "lineage_capped",
              core::NextConfig{}, eval_training_options(sim::derive_seed(40, i), 1000.0));
  }
  const std::vector<sim::TrainingResult> trained = sim::run_training_plan(tplan);

  const double paper_worst[] = {0.0, 0.0039, 0.0395};
  const double worst_caps[] = {0.25, 1, 10};  // 0.25 FPS ~ "0" on the plot

  sim::RunPlan plan;
  for (std::size_t i = 0; i < 6; ++i) {
    sim::ExperimentConfig cfg;
    cfg.governor = sim::GovernorKind::kNext;
    cfg.trained_table = &trained[i].table;
    cfg.duration = SimTime::from_seconds(300.0);
    cfg.seed = 7;
    plan.add(factory_for(fps_caps[i]), "lineage_capped", cfg);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    sim::ExperimentConfig cfg;
    cfg.governor = sim::GovernorKind::kPerformance;  // max power, max heat
    cfg.duration = SimTime::from_seconds(300.0);
    cfg.seed = 7;
    plan.add(factory_for(worst_caps[i]), "lineage_worst", cfg);
  }
  const auto results = sim::run_plan(plan);

  for (std::size_t i = 0; i < 9; ++i) {
    const sim::SessionResult& r = results[i];
    const bool governed = i < 6;
    const double paper = governed ? paper_governed[i] : paper_worst[i - 6];
    const double measured_ppdw =
        core::ppdw(r.avg_fps, Watts{r.avg_power_w}, Celsius{r.avg_temp_big_c}, Celsius{21.0});
    std::printf("%10s %8.1f %10.4f %10.2f %12.1f %14.4f\n", governed ? "governed" : "worst",
                r.avg_fps, measured_ppdw, r.avg_power_w, r.avg_temp_big_c, paper);
    csv.row_strings({governed ? "governed" : "worst", std::to_string(r.avg_fps),
                     std::to_string(measured_ppdw), std::to_string(r.avg_power_w),
                     std::to_string(r.avg_temp_big_c)});
  }

  std::printf("\nexpected shape: governed PPDW rises with FPS; worst-case points sit\n"
              "orders of magnitude below the governed series (paper's red markers).\n");
  std::printf("series -> %s/fig04_ppdw_trend.csv\n\n", out_dir().c_str());
  return 0;
}
