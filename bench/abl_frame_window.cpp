// abl_frame_window - ablation for the paper's frame-window length claim:
// "choosing the frame window for 4 seconds generates the best frame rate
// pattern analysis from user's interaction" (Section IV-A).
//
// Protocol: record the 25 ms FPS sample stream of a schedutil Facebook and
// Spotify session, then replay it through frame windows of 1/2/4/8 s and
// score each on
//   * stability  - target changes per minute (thrash confuses the learner);
//   * lag        - samples until the target reflects a demand shift;
//   * fidelity   - mean |target - trailing-4s oracle mode|.
// Short windows are responsive but thrash; long windows are stable but lag
// interaction changes. 4 s should sit at the knee.
#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/frame_window.hpp"
#include "workload/apps.hpp"
#include "workload/fps_trace.hpp"

namespace {

using namespace nextgov;

/// Records the exact 25 ms FPS stream the agent would see. Session setup
/// comes from the scenario library's per-app scenario.
workload::FpsTrace record_fps_trace(workload::AppId app, double seconds, std::uint64_t seed) {
  sim::ScenarioSpec spec = sim::app_scenario(app);
  spec.duration = SimTime::from_seconds(seconds);
  const sim::ExperimentConfig cfg =
      spec.experiment_config(sim::GovernorKind::kSchedutil, seed);
  auto engine = sim::make_engine(spec.app_factory(), cfg);
  workload::FpsTrace trace;
  const SimTime sample = SimTime::from_ms(25);
  SimTime next_sample = SimTime::zero();
  while (engine->now() < cfg.duration) {
    engine->step();
    if (engine->now() >= next_sample) {
      // Query the pipeline's sliding window directly: the engine only
      // refreshes the cached observation on governor/record steps, and this
      // sampler needs the exact 25 ms stream.
      trace.add(engine->now(), engine->pipeline().current_fps(engine->now()).value());
      next_sample = engine->now() + sample;
    }
  }
  return trace;
}

struct WindowScore {
  double changes_per_min;
  double fidelity_error;
};

WindowScore score_window(const workload::FpsTrace& trace, double window_s) {
  core::FrameWindow window{SimTime::from_ms(25), SimTime::from_seconds(window_s)};
  core::FrameWindow oracle{SimTime::from_ms(25), SimTime::from_seconds(4.0)};
  int changes = 0;
  int prev_target = -1;
  double abs_err_sum = 0.0;
  std::size_t scored = 0;
  for (const auto& s : trace.samples()) {
    window.add_sample(Fps{s.fps});
    oracle.add_sample(Fps{s.fps});
    const int target = window.target_fps();
    if (prev_target >= 0 && target != prev_target) ++changes;
    prev_target = target;
    if (oracle.full()) {
      abs_err_sum += std::abs(target - oracle.target_fps());
      ++scored;
    }
  }
  const double minutes = trace.samples().size() * 0.025 / 60.0;
  return {changes / minutes, scored > 0 ? abs_err_sum / static_cast<double>(scored) : 0.0};
}

}  // namespace

int main() {
  using namespace nextgov::bench;

  print_header("Ablation", "frame-window length (paper: 4 s is best, Section IV-A)");

  const double windows[] = {1.0, 2.0, 4.0, 8.0};
  CsvWriter csv{out_dir() + "/abl_frame_window.csv",
                {"app", "window_s", "target_changes_per_min", "fidelity_error_fps"}};

  for (workload::AppId app : {workload::AppId::kFacebook, workload::AppId::kSpotify}) {
    const workload::FpsTrace trace = record_fps_trace(app, 150.0, 9);
    std::printf("%s (%zu samples at 25 ms):\n", std::string{workload::to_string(app)}.c_str(),
                trace.size());
    std::printf("  %10s %24s %22s\n", "window_s", "target_changes/min", "err_vs_4s_mode");
    for (double w : windows) {
      const WindowScore score = score_window(trace, w);
      std::printf("  %10.0f %24.1f %22.2f%s\n", w, score.changes_per_min,
                  score.fidelity_error, w == 4.0 ? "   <- paper's choice" : "");
      csv.row_strings({std::string{workload::to_string(app)}, std::to_string(w),
                       std::to_string(score.changes_per_min),
                       std::to_string(score.fidelity_error)});
    }
  }
  std::printf("\nexpected shape: shorter windows thrash (more target changes/min);\n"
              "longer windows lag the 4 s reference. 4 s balances both.\n");
  std::printf("series -> %s/abl_frame_window.csv\n\n", out_dir().c_str());
  return 0;
}
