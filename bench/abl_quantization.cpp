// abl_quantization - ablation behind Fig. 6's trade-off: FPS quantization
// levels vs learned policy quality and table size. The paper picks 30
// levels as "the best training period" - i.e. the coarsest quantization
// that does not give up reward. This bench makes that trade-off visible:
// too-coarse bins alias distinct QoS demands (lower converged reward /
// higher deployed power), finer bins only add states and training time.
#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "workload/apps.hpp"

int main() {
  using namespace nextgov;
  using namespace nextgov::bench;

  print_header("Ablation", "FPS quantization levels vs policy quality (Fig. 6 mechanism)");

  const std::size_t levels[] = {5, 10, 20, 30, 60};
  CsvWriter csv{out_dir() + "/abl_quantization.csv",
                {"fps_levels", "states", "mean_reward", "deployed_power_w", "deployed_fps"}};

  std::printf("%12s %10s %13s %18s %14s\n", "fps_levels", "states", "mean_reward",
              "deployed_power_W", "deployed_FPS");

  // Train all quantization levels concurrently through one TrainingPlan,
  // then run every deployed evaluation session through one runner plan.
  // Session setup (paper-length PubG) comes from the scenario library.
  const sim::ScenarioSpec spec = sim::app_scenario(workload::AppId::kPubg);
  sim::TrainingPlan tplan;
  for (std::size_t level : levels) {
    core::NextConfig config;
    config.fps_levels = level;
    tplan.add(spec.app_factory(), spec.name, config, eval_training_options(31, 1200.0));
  }
  const std::vector<sim::TrainingResult> trained = sim::run_training_plan(tplan);

  sim::RunPlan plan;
  for (std::size_t i = 0; i < std::size(levels); ++i) {
    sim::ExperimentConfig cfg = spec.experiment_config(sim::GovernorKind::kNext, 2);
    cfg.next_config.fps_levels = levels[i];
    cfg.trained_table = &trained[i].table;
    plan.add(spec.app_factory(), spec.name, cfg);
  }
  const auto results = sim::run_plan(plan);

  for (std::size_t i = 0; i < std::size(levels); ++i) {
    const sim::TrainingResult& tr = trained[i];
    const sim::SessionResult& r = results[i];
    std::printf("%12zu %10zu %13.3f %18.3f %14.1f%s\n", levels[i], tr.states_visited,
                tr.final_mean_reward, r.avg_power_w, r.avg_fps,
                levels[i] == 30 ? "   <- paper's choice" : "");
    csv.row({static_cast<double>(levels[i]), static_cast<double>(tr.states_visited),
             tr.final_mean_reward, r.avg_power_w, r.avg_fps});
  }
  std::printf("\nexpected shape: state count grows with levels (training cost, Fig. 6);\n"
              "policy quality saturates around 30 levels - finer buys nothing.\n");
  std::printf("series -> %s/abl_quantization.csv\n\n", out_dir().c_str());
  return 0;
}
