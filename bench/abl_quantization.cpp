// abl_quantization - ablation behind Fig. 6's trade-off: FPS quantization
// levels vs learned policy quality and table size. The paper picks 30
// levels as "the best training period" - i.e. the coarsest quantization
// that does not give up reward. This bench makes that trade-off visible:
// too-coarse bins alias distinct QoS demands (lower converged reward /
// higher deployed power), finer bins only add states and training time.
//
// A second axis covers *value* quantization with the shipping wire codec
// (rl/qtable_delta.hpp serialize_quantized, the same one fleet uploads
// use - deliberately not a bench-local rounding, so the ablation and the
// production path cannot drift): the paper-choice table is round-tripped
// through f32/f16/q8 and redeployed, showing what the narrower wire
// formats cost in policy quality against what they save in bytes.
#include <cstdio>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "rl/qtable_delta.hpp"
#include "workload/apps.hpp"

int main() {
  using namespace nextgov;
  using namespace nextgov::bench;

  print_header("Ablation", "FPS quantization levels vs policy quality (Fig. 6 mechanism)");

  const std::size_t levels[] = {5, 10, 20, 30, 60};
  CsvWriter csv{out_dir() + "/abl_quantization.csv",
                {"fps_levels", "states", "mean_reward", "deployed_power_w", "deployed_fps"}};

  std::printf("%12s %10s %13s %18s %14s\n", "fps_levels", "states", "mean_reward",
              "deployed_power_W", "deployed_FPS");

  // Train all quantization levels concurrently through one TrainingPlan,
  // then run every deployed evaluation session through one runner plan.
  // Session setup (paper-length PubG) comes from the scenario library.
  const sim::ScenarioSpec spec = sim::app_scenario(workload::AppId::kPubg);
  sim::TrainingPlan tplan;
  for (std::size_t level : levels) {
    core::NextConfig config;
    config.fps_levels = level;
    tplan.add(spec.app_factory(), spec.name, config, eval_training_options(31, 1200.0));
  }
  const std::vector<sim::TrainingResult> trained = sim::run_training_plan(tplan);

  sim::RunPlan plan;
  for (std::size_t i = 0; i < std::size(levels); ++i) {
    sim::ExperimentConfig cfg = spec.experiment_config(sim::GovernorKind::kNext, 2);
    cfg.next_config.fps_levels = levels[i];
    cfg.trained_table = &trained[i].table;
    plan.add(spec.app_factory(), spec.name, cfg);
  }
  const auto results = sim::run_plan(plan);

  for (std::size_t i = 0; i < std::size(levels); ++i) {
    const sim::TrainingResult& tr = trained[i];
    const sim::SessionResult& r = results[i];
    std::printf("%12zu %10zu %13.3f %18.3f %14.1f%s\n", levels[i], tr.states_visited,
                tr.final_mean_reward, r.avg_power_w, r.avg_fps,
                levels[i] == 30 ? "   <- paper's choice" : "");
    csv.row({static_cast<double>(levels[i]), static_cast<double>(tr.states_visited),
             tr.final_mean_reward, r.avg_power_w, r.avg_fps});
  }
  std::printf("\nexpected shape: state count grows with levels (training cost, Fig. 6);\n"
              "policy quality saturates around 30 levels - finer buys nothing.\n");

  // --- value quantization via the shipping wire codec ----------------------
  // Round-trip the paper-choice table (30 levels, index 3) through each
  // WireQuant mode and deploy the reconstructed table in the same session.
  const std::size_t paper_index = 3;
  const rl::QTable& paper_table = trained[paper_index].table;
  const rl::WireQuant modes[] = {rl::WireQuant::kF32, rl::WireQuant::kF16,
                                 rl::WireQuant::kQ8};
  const char* mode_names[] = {"f32", "f16", "q8"};
  std::vector<rl::QTable> requantized;
  std::vector<std::size_t> wire_bytes;
  for (const rl::WireQuant mode : modes) {
    ByteWriter out;
    rl::serialize_quantized(paper_table, mode, out);
    wire_bytes.push_back(out.data().size());
    ByteReader in{out.data(), "abl wire"};
    requantized.push_back(rl::deserialize_quantized(in));
  }

  sim::RunPlan qplan;
  for (const rl::QTable& table : requantized) {
    sim::ExperimentConfig cfg = spec.experiment_config(sim::GovernorKind::kNext, 2);
    cfg.next_config.fps_levels = levels[paper_index];
    cfg.trained_table = &table;
    qplan.add(spec.app_factory(), spec.name, cfg);
  }
  const auto qresults = sim::run_plan(qplan);

  CsvWriter qcsv{out_dir() + "/abl_quantization_wire.csv",
                 {"wire_mode", "wire_bytes", "deployed_power_w", "deployed_fps"}};
  std::printf("\nwire-format axis (30 levels, %zu states):\n",
              paper_table.state_count());
  std::printf("%10s %12s %18s %14s\n", "wire_mode", "wire_bytes", "deployed_power_W",
              "deployed_FPS");
  for (std::size_t i = 0; i < std::size(modes); ++i) {
    std::printf("%10s %12zu %18.3f %14.1f%s\n", mode_names[i], wire_bytes[i],
                qresults[i].avg_power_w, qresults[i].avg_fps,
                i == 0 ? "   <- exact round trip" : "");
    qcsv.row_strings({mode_names[i], std::to_string(wire_bytes[i]),
                      std::to_string(qresults[i].avg_power_w),
                      std::to_string(qresults[i].avg_fps)});
  }
  std::printf("\nexpected shape: f32 redeployment is bit-exact (same session to the\n"
              "decision); f16/q8 shrink the wire with sub-percent policy drift.\n");
  std::printf("series -> %s/abl_quantization.csv\n\n", out_dir().c_str());
  return 0;
}
