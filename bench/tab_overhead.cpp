// tab_overhead - reproduces the paper's overhead analysis (Section V):
// "the maximum overhead required for computation by the Next agent is
// around 227 ns on an average".
//
// google-benchmark timings of the agent's hot paths: the 100 ms control
// step (deployed: state encode + greedy lookup + cap actuation; training:
// + one Q-learning update) and the 25 ms frame-window sample.
#include <benchmark/benchmark.h>

#include "core/next_agent.hpp"
#include "soc/soc.hpp"

namespace {

using namespace nextgov;

governors::Observation make_obs(const soc::Soc& soc, double fps) {
  governors::Observation obs;
  obs.clusters.resize(soc.cluster_count());
  for (std::size_t i = 0; i < soc.cluster_count(); ++i) {
    const auto& c = soc.cluster(i);
    obs.clusters[i].freq_index = c.freq_index();
    obs.clusters[i].cap_index = c.max_cap_index();
    obs.clusters[i].opp_count = c.opps().size();
    obs.clusters[i].frequency = c.frequency();
    obs.clusters[i].max_frequency = c.opps().highest().frequency;
  }
  obs.fps = Fps{fps};
  obs.sensors.power = Watts{3.2};
  obs.sensors.big = Celsius{48.0};
  obs.sensors.device = Celsius{31.0};
  return obs;
}

/// Pre-trains a small table so the benchmark exercises realistic lookups.
std::unique_ptr<core::NextAgent> make_trained_agent(soc::Soc& soc) {
  auto agent = core::make_next_agent(soc, core::NextConfig{}, 1);
  agent->set_mode(core::AgentMode::kTraining);
  for (int i = 0; i < 3000; ++i) {
    auto obs = make_obs(soc, 20.0 + (i % 40));
    agent->on_sample(obs);
    agent->control(obs, soc);
  }
  return agent;
}

void BM_DeployedControlStep(benchmark::State& state) {
  soc::Soc soc = soc::make_exynos9810();
  auto agent = make_trained_agent(soc);
  agent->set_mode(core::AgentMode::kDeployed);
  auto obs = make_obs(soc, 42.0);
  for (auto _ : state) {
    agent->control(obs, soc);
    benchmark::DoNotOptimize(soc);
  }
  state.SetLabel("paper: ~227 ns mean agent overhead");
}
BENCHMARK(BM_DeployedControlStep);

void BM_TrainingControlStep(benchmark::State& state) {
  soc::Soc soc = soc::make_exynos9810();
  auto agent = make_trained_agent(soc);
  auto obs = make_obs(soc, 42.0);
  for (auto _ : state) {
    agent->control(obs, soc);
    benchmark::DoNotOptimize(soc);
  }
}
BENCHMARK(BM_TrainingControlStep);

void BM_FrameWindowSample(benchmark::State& state) {
  soc::Soc soc = soc::make_exynos9810();
  auto agent = make_trained_agent(soc);
  auto obs = make_obs(soc, 42.0);
  for (auto _ : state) {
    agent->on_sample(obs);
  }
}
BENCHMARK(BM_FrameWindowSample);

void BM_TargetFpsModeComputation(benchmark::State& state) {
  // The mode over the 160-sample window, recomputed at each control step.
  core::FrameWindow window;
  for (int i = 0; i < 160; ++i) window.add_sample(Fps{static_cast<double>(i % 61)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(window.target_fps());
  }
}
BENCHMARK(BM_TargetFpsModeComputation);

void BM_RewardEvaluation(benchmark::State& state) {
  soc::Soc soc = soc::make_exynos9810();
  auto agent = make_trained_agent(soc);
  const auto obs = make_obs(soc, 42.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent->reward(obs, 40));
  }
}
BENCHMARK(BM_RewardEvaluation);

}  // namespace

BENCHMARK_MAIN();
