// perf_throughput - engine throughput tracking for the repo's perf
// trajectory.
//
// Measures steps/sec of the 1 ms Engine::step() loop for the stock
// (schedutil) and Next stacks, then the parallel experiment runner's
// scaling over serial for a small session sweep (including the bit-identity
// check the runner guarantees), and writes everything to
// bench_out/BENCH_throughput.json so successive PRs can be compared.
//
// `--smoke` shrinks the measurement so CI can run it on every PR: the
// numbers are then only smoke-level indicative, but the bit-identity
// contract is still fully exercised.
//
// On hosts with a single hardware thread the parallel timing is
// meaningless (threads just time-slice one core), so the speedup
// measurement is reported as skipped; the bit-identity check still runs
// with a real 4-thread pool, because the determinism contract is about
// scheduling, not about cores.
//
// Reference points measured in the PR that introduced this bench (single
// dedicated core, g++ 12 -O3 + LTO): pre-optimization ~4.5M steps/s on
// both stacks; post-optimization ~9M steps/s.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "sim/runner.hpp"
#include "workload/apps.hpp"

namespace {

using namespace nextgov;
using nextgov::bench::wall_seconds;

/// Steps/sec of one engine driven for `sim_seconds` of simulated time
/// (1 ms steps) after a short warmup.
double serial_steps_per_sec(sim::GovernorKind kind, double sim_seconds) {
  sim::ExperimentConfig cfg;
  cfg.governor = kind;
  cfg.seed = 7;
  auto engine = sim::make_engine(
      [](std::uint64_t seed) { return workload::make_app(workload::AppId::kLineage, seed); },
      cfg);
  engine->run(SimTime::from_seconds(20.0));
  const double wall =
      wall_seconds([&] { engine->run(SimTime::from_seconds(sim_seconds)); });
  return sim_seconds * 1000.0 / wall;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nextgov::bench;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  print_header("perf", smoke ? "engine steps/sec + runner scaling (smoke mode)"
                             : "engine steps/sec + parallel runner scaling");

  // --- serial hot-loop throughput ---------------------------------------
  const double sim_seconds = smoke ? 150.0 : 2000.0;
  const double sched_sps = serial_steps_per_sec(sim::GovernorKind::kSchedutil, sim_seconds);
  const double next_sps = serial_steps_per_sec(sim::GovernorKind::kNext, sim_seconds);
  std::printf("  serial schedutil: %8.2fM steps/s\n", sched_sps / 1e6);
  std::printf("  serial next:      %8.2fM steps/s\n", next_sps / 1e6);

  // --- parallel runner scaling ------------------------------------------
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t n_sessions =
      smoke ? std::max<std::size_t>(4, hw) : std::max<std::size_t>(8, 2 * hw);
  sim::RunPlan plan;
  sim::ExperimentConfig base;
  base.duration = SimTime::from_seconds(smoke ? 15.0 : 60.0);
  for (std::size_t i = 0; i < n_sessions; ++i) {
    sim::ExperimentConfig cfg = base;
    cfg.governor = (i % 2 == 0) ? sim::GovernorKind::kSchedutil : sim::GovernorKind::kNext;
    cfg.seed = sim::derive_seed(42, i);
    plan.add(i % 2 == 0 ? workload::AppId::kLineage : workload::AppId::kFacebook, cfg);
  }

  // Shared serial-vs-pool measurement + bit-identity gate (bench_util):
  // timing workers clamped to min(sessions, hardware threads), the
  // contract check always under >= 4 threads even on single-core hosts.
  const PlanTiming timing = time_run_plan(plan, hw);

  if (timing.can_measure_speedup) {
    std::printf("  runner: %zu sessions, serial %.2f s, %zu workers %.2f s -> %.2fx, %s\n",
                n_sessions, timing.serial_s, timing.workers, timing.parallel_s,
                timing.speedup, timing.bit_identical ? "bit-identical" : "RESULTS DIVERGED");
  } else {
    std::printf("  runner: %zu sessions, serial %.2f s; speedup skipped (1 hardware "
                "thread), bit-identity (%zu threads): %s\n",
                n_sessions, timing.serial_s, timing.contract_workers,
                timing.bit_identical ? "bit-identical" : "RESULTS DIVERGED");
  }

  // --- JSON trajectory file ---------------------------------------------
  const std::string path = out_dir() + "/BENCH_throughput.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"perf_throughput\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(out, "  \"serial\": {\n");
  std::fprintf(out, "    \"sim_seconds\": %.1f,\n", sim_seconds);
  std::fprintf(out, "    \"schedutil_steps_per_sec\": %.0f,\n", sched_sps);
  std::fprintf(out, "    \"next_steps_per_sec\": %.0f\n", next_sps);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"parallel\": {\n");
  std::fprintf(out, "    \"sessions\": %zu,\n", n_sessions);
  std::fprintf(out, "    \"workers\": %zu,\n", timing.workers);
  std::fprintf(out, "    \"serial_wall_s\": %.4f,\n", timing.serial_s);
  if (timing.can_measure_speedup) {
    std::fprintf(out, "    \"status\": \"ok\",\n");
    std::fprintf(out, "    \"parallel_wall_s\": %.4f,\n", timing.parallel_s);
    std::fprintf(out, "    \"speedup\": %.3f,\n", timing.speedup);
  } else {
    std::fprintf(out, "    \"status\": \"skipped: single hardware thread\",\n");
    std::fprintf(out, "    \"speedup\": null,\n");
  }
  std::fprintf(out, "    \"bit_identical\": %s\n", timing.bit_identical ? "true" : "false");
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("  -> %s\n\n", path.c_str());
  return timing.bit_identical ? 0 : 1;
}
