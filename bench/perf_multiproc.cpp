// perf_multiproc - multi-process sharded sweep scaling and recovery.
//
// Writes bench_out/BENCH_multiproc.json with:
//
//   1. the process-scaling curve: one >= 12-cell scenario matrix swept at
//      P = 1 (in-process reference), 2 and 4 worker processes, wall time
//      and speedup per point;
//   2. the bit-identity gate: every sharded sweep's merged results compared
//      cell-by-cell (sim::bit_identical) against the in-process reference -
//      the contract run_plan_sharded() promises. The bench exits nonzero
//      if any point diverges;
//   3. per-shard overhead: result frames / payload bytes crossing the pipes
//      (from ShardReport) and the fork+serialize overhead, measured as
//      sharded wall at P=1... well, P=1 runs in-process by design, so
//      overhead is reported as (sharded wall at P=2) vs (2-thread wall);
//   4. the recovery gates: a SIGKILLed worker and a frame-corrupting worker
//      must each be detected, their shards re-run in the parent, and the
//      merged results must STILL be bit-identical - degrade, never wedge.
//
// `--smoke` shrinks the matrix so CI can run it on every PR.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/multiproc.hpp"
#include "sim/scenario.hpp"

using namespace nextgov;
using namespace nextgov::bench;

namespace {

bool all_bit_identical(const std::vector<sim::SessionResult>& a,
                       const std::vector<sim::SessionResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!sim::bit_identical(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  print_header("perf", smoke ? "multi-process sharded sweeps (smoke mode)"
                             : "multi-process sharded sweeps");

  // 4 scenarios x 3 seeds = 12 cells (the acceptance floor) - the same
  // matrix examples/matrix_sweep.cpp sweeps, so CI's cmp smoke and this
  // gate exercise one configuration. Smoke keeps all 12 cells (the gate is
  // about shard geometry, not session length) but trims each to 30 s.
  sim::ScenarioMatrix matrix;
  for (const char* name : {"fig1_session", "social_gaming", "spotify_bursty", "pubg_hot35"}) {
    sim::ScenarioSpec spec = sim::scenario(name);
    if (smoke) spec.duration = SimTime::from_seconds(30.0);
    matrix.add(std::move(spec));
  }
  matrix.seeds(3);
  const sim::RunPlan plan = matrix.to_run_plan(sim::GovernorKind::kSchedutil);
  std::printf("  matrix: %zu cells\n", plan.size());

  // --- in-process reference + scaling curve -------------------------------
  std::vector<sim::SessionResult> reference;
  const double serial_s =
      wall_seconds([&] { reference = sim::run_plan(plan, {.workers = 1}); });
  std::printf("  P=1 (in-process): %.3f s\n", serial_s);

  struct Point {
    std::size_t processes{0};
    double wall_s{0.0};
    double speedup{0.0};
    bool bit_identical{false};
    std::uint64_t frames{0};
    std::uint64_t bytes{0};
  };
  std::vector<Point> curve;
  bool scaling_identical = true;
  for (const std::size_t p : {std::size_t{2}, std::size_t{4}}) {
    Point pt;
    pt.processes = p;
    sim::ShardReport report;
    std::vector<sim::SessionResult> results;
    pt.wall_s = wall_seconds(
        [&] { results = sim::run_plan_sharded(plan, {.processes = p}, &report); });
    pt.speedup = pt.wall_s > 0.0 ? serial_s / pt.wall_s : 0.0;
    pt.bit_identical = all_bit_identical(reference, results) &&
                       report.recovered_shards() == 0;
    pt.frames = report.frames;
    pt.bytes = report.bytes;
    scaling_identical = scaling_identical && pt.bit_identical;
    std::printf("  P=%zu: %.3f s (x%.2f), %llu frames / %llu bytes merged, %s\n", p,
                pt.wall_s, pt.speedup, static_cast<unsigned long long>(pt.frames),
                static_cast<unsigned long long>(pt.bytes),
                pt.bit_identical ? "bit-identical" : "RESULTS DIVERGED");
    curve.push_back(pt);
  }

  // --- per-shard overhead: sharded vs same-width threaded -----------------
  const double threaded2_s =
      wall_seconds([&] { (void)sim::run_plan(plan, {.workers = 2}); });
  const double overhead_s = curve[0].wall_s - threaded2_s;
  std::printf("  overhead: P=2 sharded %.3f s vs 2-thread %.3f s -> %+.3f s "
              "(fork + wire codec)\n",
              curve[0].wall_s, threaded2_s, overhead_s);

  // --- recovery gates ------------------------------------------------------
  // A SIGKILLed worker: shard 0 dies after its first result frame; the
  // parent must re-run shard 0 in-process and still merge identical bytes.
  sim::ShardReport kill_report;
  std::vector<sim::SessionResult> kill_results;
  const double kill_s = wall_seconds([&] {
    kill_results = sim::run_plan_sharded(
        plan, {.processes = 2, .faults = {.kill_shard = 0}}, &kill_report);
  });
  const bool kill_recovered = kill_report.recovered_shards() == 1 &&
                              all_bit_identical(reference, kill_results);
  std::printf("  kill-a-worker: %zu shard recovered in %.3f s, %s\n",
              kill_report.recovered_shards(), kill_s,
              kill_recovered ? "bit-identical" : "RECOVERY FAILED");

  // A frame-corrupting worker: shard 1 flips a payload byte; the CRC check
  // must reject the stream and the shard must be re-run.
  sim::ShardReport corrupt_report;
  std::vector<sim::SessionResult> corrupt_results;
  corrupt_results = sim::run_plan_sharded(
      plan, {.processes = 2, .faults = {.corrupt_shard = 1}}, &corrupt_report);
  const bool corrupt_recovered = corrupt_report.recovered_shards() == 1 &&
                                 all_bit_identical(reference, corrupt_results);
  std::printf("  corrupt-frame: %zu shard recovered, %s\n",
              corrupt_report.recovered_shards(),
              corrupt_recovered ? "bit-identical" : "RECOVERY FAILED");

  const bool all_gates = scaling_identical && kill_recovered && corrupt_recovered;

  // --- JSON trajectory file ----------------------------------------------
  const std::string path = out_dir() + "/BENCH_multiproc.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"perf_multiproc\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"matrix_cells\": %zu,\n", plan.size());
  std::fprintf(out, "  \"serial_wall_s\": %.4f,\n", serial_s);
  std::fprintf(out, "  \"scaling\": [\n");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const Point& pt = curve[i];
    std::fprintf(out,
                 "    {\"processes\": %zu, \"wall_s\": %.4f, \"speedup\": %.3f, "
                 "\"frames\": %llu, \"payload_bytes\": %llu, \"bit_identical\": %s}%s\n",
                 pt.processes, pt.wall_s, pt.speedup,
                 static_cast<unsigned long long>(pt.frames),
                 static_cast<unsigned long long>(pt.bytes),
                 pt.bit_identical ? "true" : "false", i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"overhead\": {\n");
  std::fprintf(out, "    \"sharded_p2_wall_s\": %.4f,\n", curve[0].wall_s);
  std::fprintf(out, "    \"threaded_w2_wall_s\": %.4f,\n", threaded2_s);
  std::fprintf(out, "    \"delta_s\": %.4f\n", overhead_s);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"recovery\": {\n");
  std::fprintf(out, "    \"killed_worker\": {\"recovered_shards\": %zu, "
                    "\"bit_identical\": %s, \"wall_s\": %.4f},\n",
               kill_report.recovered_shards(), kill_recovered ? "true" : "false", kill_s);
  std::fprintf(out, "    \"corrupt_frame\": {\"recovered_shards\": %zu, "
                    "\"bit_identical\": %s}\n",
               corrupt_report.recovered_shards(), corrupt_recovered ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"determinism\": {\n");
  std::fprintf(out, "    \"processes\": [1, 2, 4],\n");
  std::fprintf(out, "    \"bit_identical\": %s\n", all_gates ? "true" : "false");
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("  -> %s\n\n", path.c_str());
  return all_gates ? 0 : 1;
}
