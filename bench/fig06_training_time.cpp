// fig06_training_time - reproduces the paper's Fig. 6: training time until
// convergence as a function of the FPS quantization level, online
// (on-device, real-time) vs cloud (offline, host-speed compute + the
// paper's measured ~4 s communication overhead).
//
// Substitution (DESIGN.md): "online" time is the *simulated* seconds the
// device needs (training happens in real time on the phone) until 95% of
// the run's final Q-table state space has been discovered - the coverage
// work that scales with the quantization. "Cloud" time is the measured
// host wall-clock up to the same point plus the paper's 4 s round-trip.
// Paper reference: online 67->312 s, cloud 7->73 s as the quantization
// grows; 30 levels was the paper's sweet spot (~207 s).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/next_agent.hpp"
#include "rl/federated.hpp"
#include "workload/apps.hpp"

int main() {
  using namespace nextgov;
  using namespace nextgov::bench;

  print_header("Fig. 6", "online vs cloud training time vs FPS quantization levels");

  const std::size_t levels[] = {5, 10, 20, 30, 60};
  const double paper_online[] = {67, 75, 146, 207, 312};
  const double paper_cloud[] = {7, 10, 16, 41, 73};
  const rl::CloudTimingModel cloud_model{};  // 4 s communication overhead
  const double budget_s = 2500.0;

  CsvWriter csv{out_dir() + "/fig06_training_time.csv",
                {"fps_levels", "online_s", "cloud_s", "paper_online_s", "paper_cloud_s",
                 "states"}};

  std::printf("%12s %12s %12s %14s %13s %8s\n", "fps_levels", "online_s", "cloud_s",
              "paper_online", "paper_cloud", "states");
  for (std::size_t i = 0; i < 5; ++i) {
    core::NextConfig config;
    config.fps_levels = levels[i];

    // Training loop instrumented at the agent's 100 ms control period.
    // The quantity that scales with the FPS quantization is the QoS part
    // of the state: the (FPS bin, target bin) pairs. Training is "done"
    // for a pair once it has accumulated enough visits for its action
    // values to settle; we measure the time until 95% of the pairs the
    // workload ever exhibits reached that visit count.
    sim::ExperimentConfig exp;
    exp.governor = sim::GovernorKind::kNext;
    exp.next_config = config;
    exp.next_mode = core::AgentMode::kTraining;
    exp.seed = 77;
    auto engine = sim::make_engine(
        [](std::uint64_t seed) { return workload::make_app(workload::AppId::kFacebook, seed); },
        exp);
    auto* agent = dynamic_cast<core::NextAgent*>(engine->meta());
    const auto& encoder = agent->encoder();

    constexpr std::uint32_t kLearnedVisits = 15;  // visits until values settle
    std::vector<std::uint32_t> pair_visits(levels[i] * levels[i], 0);
    std::vector<double> learn_time_s(levels[i] * levels[i], -1.0);
    std::vector<double> wall_at_step;
    const SimTime step = SimTime::from_ms(100);
    const auto steps = static_cast<int>(budget_s * 10);
    const auto wall_start = std::chrono::steady_clock::now();
    for (int k = 0; k < steps; ++k) {
      engine->run(step);
      // Query the pipeline's FPS window directly: the cached observation
      // only refreshes on consumer steps, and this attribution needs the
      // instantaneous value at the 100 ms poll point.
      const double fps_now = engine->pipeline().current_fps(engine->now()).value();
      const std::size_t pair = encoder.fps_level(fps_now) * levels[i] +
                               encoder.fps_level(agent->current_target_fps());
      if (++pair_visits[pair] == kLearnedVisits) {
        learn_time_s[pair] = engine->now().seconds();
      }
      wall_at_step.push_back(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
              .count());
    }
    // Training is complete when the QoS pairs carrying 95% of the
    // workload's probability mass are each learned. Coarse quantization
    // concentrates the mass in a handful of pairs (fast); fine
    // quantization spreads it across many, including rarer ones (slow).
    const std::size_t final_states = agent->q_table().state_count();
    std::vector<std::size_t> order(pair_visits.size());
    for (std::size_t p = 0; p < order.size(); ++p) order[p] = p;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return pair_visits[a] > pair_visits[b];
    });
    std::uint64_t total_mass = 0;
    for (auto v : pair_visits) total_mass += v;
    std::uint64_t acc = 0;
    double online_s = 0.0;
    for (std::size_t p : order) {
      if (pair_visits[p] == 0) break;
      acc += pair_visits[p];
      const double t = learn_time_s[p] >= 0.0 ? learn_time_s[p] : budget_s;
      online_s = std::max(online_s, t);
      if (static_cast<double>(acc) >= 0.95 * static_cast<double>(total_mass)) break;
    }
    const auto wall_idx = std::min<std::size_t>(wall_at_step.size() - 1,
                                                static_cast<std::size_t>(online_s * 10.0));
    const double cloud_s = cloud_model.total_time_s(wall_at_step[wall_idx]);
    std::printf("%12zu %12.0f %12.1f %14.0f %13.0f %8zu\n", levels[i], online_s, cloud_s,
                paper_online[i], paper_cloud[i], final_states);
    csv.row({static_cast<double>(levels[i]), online_s, cloud_s, paper_online[i],
             paper_cloud[i], static_cast<double>(final_states)});
  }

  std::printf("\nexpected shape: both series grow with the quantization level and\n"
              "cloud training stays far below online (compute >> 4 s comm overhead).\n");
  std::printf("series -> %s/fig06_training_time.csv\n\n", out_dir().c_str());
  return 0;
}
