// fig06_training_time - reproduces the paper's Fig. 6: training time until
// convergence as a function of the FPS quantization level, online
// (on-device, real-time) vs cloud (offline, host-speed compute + the
// paper's measured ~4 s communication overhead).
//
// Substitution (DESIGN.md): "online" time is the *simulated* seconds the
// device needs (training happens in real time on the phone) until 95% of
// the run's final Q-table state space has been discovered - the coverage
// work that scales with the quantization. "Cloud" time is the measured
// host CPU time up to the same point plus the paper's 4 s round-trip.
// Paper reference: online 67->312 s, cloud 7->73 s as the quantization
// grows; 30 levels was the paper's sweet spot (~207 s).
//
// The five quantization levels are independent training runs, so they fan
// out across the runner's shared task pool (run_indexed_tasks) with one
// worker per level, capped at the hardware thread count. So that running
// levels concurrently does not contaminate the cloud measurement, "cloud
// compute" is the level's *thread CPU time* (what a cloud core actually
// spends), not wall time - CPU time is robust to the other levels
// time-slicing or sharing memory bandwidth. Online times are
// simulated-time quantities and therefore deterministic regardless of
// scheduling.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <vector>

#include "bench_util.hpp"
#include "common/csv.hpp"
#include "core/next_agent.hpp"
#include "rl/federated.hpp"
#include "workload/apps.hpp"

namespace {

struct LevelResult {
  double online_s{0.0};
  double cloud_s{0.0};
  std::size_t states{0};
};

/// CPU time of the calling thread: the cloud-compute cost of a training
/// level, independent of how many sibling levels share the host. Where no
/// thread CPU clock exists the bench falls back to wall time AND serial
/// execution (kHaveThreadCpuClock below), so the metric's meaning never
/// silently degrades under concurrency.
#if defined(CLOCK_THREAD_CPUTIME_ID)
constexpr bool kHaveThreadCpuClock = true;
double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}
#else
constexpr bool kHaveThreadCpuClock = false;
double thread_cpu_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
#endif

}  // namespace

int main() {
  using namespace nextgov;
  using namespace nextgov::bench;

  print_header("Fig. 6", "online vs cloud training time vs FPS quantization levels");

  const std::size_t levels[] = {5, 10, 20, 30, 60};
  const double paper_online[] = {67, 75, 146, 207, 312};
  const double paper_cloud[] = {7, 10, 16, 41, 73};
  const rl::CloudTimingModel cloud_model{};  // 4 s communication overhead
  const double budget_s = 2500.0;

  std::vector<LevelResult> measured(std::size(levels));
  const auto measure_level = [&](std::size_t i) {
    core::NextConfig config;
    config.fps_levels = levels[i];

    // Training loop instrumented at the agent's 100 ms control period.
    // The quantity that scales with the FPS quantization is the QoS part
    // of the state: the (FPS bin, target bin) pairs. Training is "done"
    // for a pair once it has accumulated enough visits for its action
    // values to settle; we measure the time until 95% of the pairs the
    // workload ever exhibits reached that visit count.
    sim::ExperimentConfig exp;
    exp.governor = sim::GovernorKind::kNext;
    exp.next_config = config;
    exp.next_mode = core::AgentMode::kTraining;
    exp.seed = 77;
    auto engine = sim::make_engine(
        [](std::uint64_t seed) { return workload::make_app(workload::AppId::kFacebook, seed); },
        exp);
    auto* agent = dynamic_cast<core::NextAgent*>(engine->meta());
    const auto& encoder = agent->encoder();

    constexpr std::uint32_t kLearnedVisits = 15;  // visits until values settle
    std::vector<std::uint32_t> pair_visits(levels[i] * levels[i], 0);
    std::vector<double> learn_time_s(levels[i] * levels[i], -1.0);
    std::vector<double> cpu_at_step;
    const SimTime step = SimTime::from_ms(100);
    const auto steps = static_cast<int>(budget_s * 10);
    const double cpu_start = thread_cpu_seconds();
    for (int k = 0; k < steps; ++k) {
      engine->run(step);
      // Query the pipeline's FPS window directly: the cached observation
      // only refreshes on consumer steps, and this attribution needs the
      // instantaneous value at the 100 ms poll point.
      const double fps_now = engine->pipeline().current_fps(engine->now()).value();
      const std::size_t pair = encoder.fps_level(fps_now) * levels[i] +
                               encoder.fps_level(agent->current_target_fps());
      if (++pair_visits[pair] == kLearnedVisits) {
        learn_time_s[pair] = engine->now().seconds();
      }
      cpu_at_step.push_back(thread_cpu_seconds() - cpu_start);
    }
    // Training is complete when the QoS pairs carrying 95% of the
    // workload's probability mass are each learned. Coarse quantization
    // concentrates the mass in a handful of pairs (fast); fine
    // quantization spreads it across many, including rarer ones (slow).
    const std::size_t final_states = agent->q_table().state_count();
    std::vector<std::size_t> order(pair_visits.size());
    for (std::size_t p = 0; p < order.size(); ++p) order[p] = p;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return pair_visits[a] > pair_visits[b];
    });
    std::uint64_t total_mass = 0;
    for (auto v : pair_visits) total_mass += v;
    std::uint64_t acc = 0;
    double online_s = 0.0;
    for (std::size_t p : order) {
      if (pair_visits[p] == 0) break;
      acc += pair_visits[p];
      const double t = learn_time_s[p] >= 0.0 ? learn_time_s[p] : budget_s;
      online_s = std::max(online_s, t);
      if (static_cast<double>(acc) >= 0.95 * static_cast<double>(total_mass)) break;
    }
    const auto cpu_idx = std::min<std::size_t>(cpu_at_step.size() - 1,
                                               static_cast<std::size_t>(online_s * 10.0));
    measured[i] =
        LevelResult{online_s, cloud_model.total_time_s(cpu_at_step[cpu_idx]), final_states};
  };

  sim::run_indexed_tasks(
      std::size(levels),
      kHaveThreadCpuClock ? sim::resolve_workers(0, std::size(levels)) : 1, measure_level);

  CsvWriter csv{out_dir() + "/fig06_training_time.csv",
                {"fps_levels", "online_s", "cloud_s", "paper_online_s", "paper_cloud_s",
                 "states"}};

  std::printf("%12s %12s %12s %14s %13s %8s\n", "fps_levels", "online_s", "cloud_s",
              "paper_online", "paper_cloud", "states");
  for (std::size_t i = 0; i < std::size(levels); ++i) {
    const LevelResult& r = measured[i];
    std::printf("%12zu %12.0f %12.1f %14.0f %13.0f %8zu\n", levels[i], r.online_s, r.cloud_s,
                paper_online[i], paper_cloud[i], r.states);
    csv.row({static_cast<double>(levels[i]), r.online_s, r.cloud_s, paper_online[i],
             paper_cloud[i], static_cast<double>(r.states)});
  }

  std::printf("\nexpected shape: both series grow with the quantization level and\n"
              "cloud training stays far below online (compute >> 4 s comm overhead).\n");
  std::printf("series -> %s/fig06_training_time.csv\n\n", out_dir().c_str());
  return 0;
}
