// bench_util.hpp - shared plumbing for the figure benches: output directory
// handling, paper-vs-measured printing, and the standard train-then-deploy
// evaluation protocol ("All results for Next were observed when it was
// fully trained", Section V).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"

namespace nextgov::bench {

/// Wall time of one call, for the perf benches' speedup measurements.
inline double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Bit-identity over everything the training determinism contract covers:
/// the learned table (entries, visit counts, tried masks) and every
/// derived field except wall_seconds (host time by definition). Kept next
/// to the SessionResult comparator use sites so the perf benches and any
/// future bench check the *same* contract.
inline bool training_results_identical(const sim::TrainingResult& a,
                                       const sim::TrainingResult& b) {
  if (a.converged != b.converged || a.sim_seconds != b.sim_seconds ||
      a.decisions != b.decisions || a.final_mean_reward != b.final_mean_reward ||
      a.states_visited != b.states_visited) {
    return false;
  }
  // QTable::operator== is exact (IEEE bit patterns, visit counts, tried
  // masks), which is precisely the contract this helper existed to check.
  return a.table == b.table;
}

/// Serial-vs-pool measurement of one RunPlan, shared by the perf benches:
/// workers clamped to min(plan size, hardware threads) for timing, the
/// single-core "skipped" annotation, and the bit-identity gate always
/// exercised under real concurrency (>= 4 threads) even on one-core hosts
/// because the determinism contract is about scheduling, not cores.
struct PlanTiming {
  std::vector<sim::SessionResult> serial_results;  ///< plan order
  double serial_s{0.0};
  double parallel_s{0.0};
  std::size_t workers{0};  ///< timing pool size
  /// False on single-hardware-thread hosts: parallel timing would only
  /// measure scheduler thrash, so speedup stays 0 and JSON writers should
  /// emit a "skipped" status.
  bool can_measure_speedup{false};
  double speedup{0.0};
  std::size_t contract_workers{0};  ///< pool size of the bit-identity run
  bool bit_identical{false};
};

inline PlanTiming time_run_plan(const sim::RunPlan& plan, unsigned hardware_threads) {
  PlanTiming t;
  t.workers = std::min<std::size_t>(plan.size(), std::max(1u, hardware_threads));
  t.can_measure_speedup = t.workers >= 2;
  t.contract_workers = std::max<std::size_t>(4, t.workers);

  t.serial_s =
      wall_seconds([&] { t.serial_results = sim::run_plan(plan, {.workers = 1}); });

  std::vector<sim::SessionResult> parallel_results;
  t.parallel_s = wall_seconds(
      [&] { parallel_results = sim::run_plan(plan, {.workers = t.contract_workers}); });
  if (t.can_measure_speedup && t.contract_workers != t.workers) {
    t.parallel_s =
        wall_seconds([&] { (void)sim::run_plan(plan, {.workers = t.workers}); });
  }
  if (t.can_measure_speedup && t.parallel_s > 0.0) t.speedup = t.serial_s / t.parallel_s;

  t.bit_identical = t.serial_results.size() == parallel_results.size();
  for (std::size_t i = 0; t.bit_identical && i < t.serial_results.size(); ++i) {
    t.bit_identical = sim::bit_identical(t.serial_results[i], parallel_results[i]);
  }
  return t;
}

/// Where benches drop their CSV series (created on demand).
inline std::string out_dir() {
  const std::filesystem::path dir{"bench_out"};
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir.string();
}

inline void print_header(const char* figure, const char* description) {
  std::printf("==================================================================\n");
  std::printf("%s - %s\n", figure, description);
  std::printf("==================================================================\n");
}

/// Prints "paper X vs measured Y" with the reproduction ratio.
inline void print_vs_paper(const char* label, double paper, double measured,
                           const char* unit) {
  const double ratio = paper != 0.0 ? measured / paper : 0.0;
  std::printf("  %-34s paper %8.2f %-4s  measured %8.2f %-4s  (x%.2f)\n", label, paper, unit,
              measured, unit, ratio);
}

/// The standard evaluation-training options: full-budget refinement, not
/// stop-at-convergence ("All results for Next were observed when it was
/// fully trained", Section V).
inline sim::TrainingOptions eval_training_options(std::uint64_t seed,
                                                  double budget_s = 1500.0) {
  sim::TrainingOptions opts;
  opts.max_duration = SimTime::from_seconds(budget_s);
  opts.seed = seed;
  return opts;
}

/// Trains Next on `factory`'s app until `budget` and returns the learned
/// table. One cell of a TrainingPlan - benches training more than one
/// agent should build the plan themselves so the cells fan out across the
/// runner's worker pool instead of serializing.
inline sim::TrainingResult train_for_eval(sim::AppFactory factory, std::uint64_t seed,
                                          double budget_s = 1500.0,
                                          core::NextConfig config = {}) {
  sim::TrainingPlan plan;
  plan.add(std::move(factory), "train_for_eval", config, eval_training_options(seed, budget_s));
  return std::move(sim::run_training_plan(plan).front());
}

/// Adds `seeds` sessions (base_seed, base_seed+1, ...) of `cfg` to `plan`.
inline void add_seed_sweep(sim::RunPlan& plan, workload::AppId app,
                           const sim::ExperimentConfig& cfg, int seeds,
                           std::uint64_t base_seed = 1) {
  for (int i = 0; i < seeds; ++i) {
    sim::ExperimentConfig c = cfg;
    c.seed = base_seed + static_cast<std::uint64_t>(i);
    plan.add(app, c);
  }
}

/// Mean of one SessionResult field over a slice of runner results.
inline double mean_field(std::span<const sim::SessionResult> results,
                         double sim::SessionResult::* field) {
  if (results.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : results) sum += r.*field;
  return sum / static_cast<double>(results.size());
}

/// The Fig. 7/8 evaluation sweep for one app: `seeds` schedutil sessions,
/// `seeds` Next sessions deploying `table`, and - for games - `seeds`
/// Int. QoS sessions. Results come back in that slice order; read them
/// with governor_slice(). Returns the number of governor slices (2 or 3).
inline std::size_t add_governor_sweeps(sim::RunPlan& plan, workload::AppId app,
                                       SimTime duration, int seeds,
                                       const rl::QTable* table) {
  sim::ExperimentConfig base;
  base.duration = duration;
  base.governor = sim::GovernorKind::kSchedutil;
  add_seed_sweep(plan, app, base, seeds);
  base.governor = sim::GovernorKind::kNext;
  base.trained_table = table;
  add_seed_sweep(plan, app, base, seeds);
  if (!workload::is_game(app)) return 2;
  base.governor = sim::GovernorKind::kIntQos;
  base.trained_table = nullptr;
  add_seed_sweep(plan, app, base, seeds);
  return 3;
}

/// Slice `index` (0 = schedutil, 1 = Next, 2 = IntQos) of an
/// add_governor_sweeps() result set.
inline std::span<const sim::SessionResult> governor_slice(
    std::span<const sim::SessionResult> results, std::size_t index, int seeds) {
  return results.subspan(index * static_cast<std::size_t>(seeds),
                         static_cast<std::size_t>(seeds));
}

/// The full Fig. 7/8 evaluation protocol, deduplicated out of those benches
/// (they copy-pasted it): phase 1 trains one Next agent per app with all
/// cells concurrent in one TrainingPlan; phase 2 runs every
/// (app x governor x seed) evaluation session - at the app's scenario
/// session length - in one runner plan. Read per-app slices with
/// app_results() + governor_slice().
struct AppGovernorMatrix {
  std::vector<sim::TrainingResult> trained;  ///< one per app, app order
  std::vector<sim::SessionResult> results;   ///< plan order
  std::vector<std::size_t> offsets;          ///< per app: start index into results
  std::vector<std::size_t> slice_counts;     ///< per app: governor slices (2 or 3)
  int seeds{0};

  [[nodiscard]] std::span<const sim::SessionResult> app_results(std::size_t i) const {
    return std::span{results}.subspan(
        offsets[i], slice_counts[i] * static_cast<std::size_t>(seeds));
  }
};

inline AppGovernorMatrix run_app_governor_matrix(std::span<const workload::AppId> apps,
                                                 int seeds,
                                                 std::uint64_t train_seed_base) {
  AppGovernorMatrix m;
  m.seeds = seeds;
  sim::TrainingPlan tplan;
  for (workload::AppId app : apps) {
    tplan.add(app, core::NextConfig{},
              eval_training_options(train_seed_base + static_cast<std::uint64_t>(app)));
  }
  m.trained = sim::run_training_plan(tplan);

  sim::RunPlan plan;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    m.offsets.push_back(plan.size());
    m.slice_counts.push_back(
        add_governor_sweeps(plan, apps[i], sim::app_scenario(apps[i]).effective_duration(),
                            seeds, &m.trained[i].table));
  }
  m.results = sim::run_plan(plan);
  return m;
}

}  // namespace nextgov::bench
