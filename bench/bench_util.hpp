// bench_util.hpp - shared plumbing for the figure benches: output directory
// handling, paper-vs-measured printing, and the standard train-then-deploy
// evaluation protocol ("All results for Next were observed when it was
// fully trained", Section V).
#pragma once

#include <cstdio>
#include <filesystem>
#include <string>

#include "sim/experiment.hpp"

namespace nextgov::bench {

/// Where benches drop their CSV series (created on demand).
inline std::string out_dir() {
  const std::filesystem::path dir{"bench_out"};
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir.string();
}

inline void print_header(const char* figure, const char* description) {
  std::printf("==================================================================\n");
  std::printf("%s - %s\n", figure, description);
  std::printf("==================================================================\n");
}

/// Prints "paper X vs measured Y" with the reproduction ratio.
inline void print_vs_paper(const char* label, double paper, double measured,
                           const char* unit) {
  const double ratio = paper != 0.0 ? measured / paper : 0.0;
  std::printf("  %-34s paper %8.2f %-4s  measured %8.2f %-4s  (x%.2f)\n", label, paper, unit,
              measured, unit, ratio);
}

/// Trains Next on `factory`'s app until `budget` (full-budget refinement,
/// not stop-at-convergence) and returns the learned table.
inline sim::TrainingResult train_for_eval(sim::AppFactory factory, std::uint64_t seed,
                                          double budget_s = 1500.0,
                                          core::NextConfig config = {}) {
  sim::TrainingOptions opts;
  opts.max_duration = SimTime::from_seconds(budget_s);
  opts.seed = seed;
  return sim::train_next_on(std::move(factory), config, opts);
}

/// Mean of a field over several seeds of the same experiment.
template <typename Fn>
double mean_over_seeds(int seeds, std::uint64_t base_seed, Fn&& fn) {
  double sum = 0.0;
  for (int i = 0; i < seeds; ++i) sum += fn(base_seed + static_cast<std::uint64_t>(i));
  return sum / seeds;
}

}  // namespace nextgov::bench
