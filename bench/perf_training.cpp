// perf_training - training throughput tracking for the repo's perf
// trajectory, the training-side counterpart of perf_throughput.
//
// The figure benches' dominant cost is agent training, which since the
// TrainingPlan refactor fans out across the runner's shared worker pool.
// This bench measures, and writes to bench_out/BENCH_training.json:
//
//   1. serial vs parallel TrainingPlan wall time for a mixed sweep of
//      training cells, with the scaling curve over worker counts;
//   2. the bit-identity flag: parallel training must reproduce the serial
//      tables and statistics exactly (wall_seconds excepted, which
//      measures host time by definition);
//   3. a small sharded federated fleet round (sim/fleet.hpp) so fleet
//      training cost is visible in the trajectory too;
//   4. fleet snapshot persistence cost: ms per save and per load+verify,
//      and bytes on disk, for a 64-device-shaped checkpoint - the overhead
//      a real fleet pays for crash tolerance every snapshot_every rounds.
//
// `--smoke` shrinks budgets so CI can run it on every PR. On single-core
// hosts the speedup measurement is skipped (annotated in the JSON); the
// bit-identity check still runs under a real multi-thread pool.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "sim/fleet.hpp"
#include "sim/runner.hpp"
#include "workload/apps.hpp"

namespace {

using namespace nextgov;
using nextgov::bench::training_results_identical;
using nextgov::bench::wall_seconds;

/// The measured sweep: a mixed (app x config x seed) batch like the figure
/// benches produce.
sim::TrainingPlan make_plan(std::size_t cells, double budget_s) {
  const workload::AppId apps[] = {workload::AppId::kLineage, workload::AppId::kFacebook,
                                  workload::AppId::kPubg};
  sim::TrainingPlan plan;
  for (std::size_t i = 0; i < cells; ++i) {
    core::NextConfig config;
    config.fps_levels = (i % 2 == 0) ? 30 : 20;
    sim::TrainingOptions opts;
    opts.max_duration = SimTime::from_seconds(budget_s);
    opts.seed = sim::derive_seed(7, i);
    plan.add(apps[i % std::size(apps)], config, opts);
  }
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nextgov::bench;

  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;

  print_header("perf", smoke ? "TrainingPlan + fleet throughput (smoke mode)"
                             : "TrainingPlan + fleet training throughput");

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t cells = smoke ? 4 : std::max<std::size_t>(8, 2 * hw);
  const double budget_s = smoke ? 120.0 : 900.0;
  const sim::TrainingPlan plan = make_plan(cells, budget_s);

  // --- serial baseline ---------------------------------------------------
  std::vector<sim::TrainingResult> serial_results;
  const double serial_s =
      wall_seconds([&] { serial_results = sim::run_training_plan(plan, {.workers = 1}); });
  const double device_sim_s = static_cast<double>(cells) * budget_s;
  std::printf("  serial: %zu cells x %.0f sim-s in %.2f s (%.0f sim-s/wall-s)\n", cells,
              budget_s, serial_s, device_sim_s / serial_s);

  // --- bit-identity under real concurrency -------------------------------
  // Always >= 4 threads, even on single-core hosts: the determinism
  // contract is about scheduling independence, which preemption exercises.
  const std::size_t contract_workers = std::max<std::size_t>(4, std::min<std::size_t>(cells, hw));
  std::vector<sim::TrainingResult> parallel_results;
  double parallel_s = wall_seconds(
      [&] { parallel_results = sim::run_training_plan(plan, {.workers = contract_workers}); });
  bool bit_identical = serial_results.size() == parallel_results.size();
  for (std::size_t i = 0; bit_identical && i < serial_results.size(); ++i) {
    bit_identical = training_results_identical(serial_results[i], parallel_results[i]);
  }
  std::printf("  bit-identity (%zu threads): %s\n", contract_workers,
              bit_identical ? "bit-identical" : "RESULTS DIVERGED");

  // --- scaling curve -----------------------------------------------------
  const std::size_t max_workers = std::min<std::size_t>(cells, hw);
  const bool can_measure_speedup = max_workers >= 2;
  struct ScalePoint {
    std::size_t workers;
    double wall_s;
  };
  std::vector<ScalePoint> curve{{1, serial_s}};
  if (can_measure_speedup) {
    for (std::size_t w = 2; w < max_workers; w *= 2) {
      const double s = wall_seconds([&] { (void)sim::run_training_plan(plan, {.workers = w}); });
      curve.push_back({w, s});
    }
    if (contract_workers == max_workers) {
      curve.push_back({max_workers, parallel_s});
    } else {
      const double s = wall_seconds(
          [&] { (void)sim::run_training_plan(plan, {.workers = max_workers}); });
      curve.push_back({max_workers, s});
    }
    for (const auto& p : curve) {
      std::printf("    %2zu workers: %6.2f s  (%.2fx)\n", p.workers, p.wall_s,
                  serial_s / p.wall_s);
    }
  } else {
    std::printf("  scaling: skipped (single hardware thread)\n");
  }
  const double best_parallel_s = curve.back().wall_s;
  const double speedup = can_measure_speedup ? serial_s / best_parallel_s : 0.0;

  // --- sharded federated fleet round -------------------------------------
  sim::FleetOptions fleet;
  fleet.devices = smoke ? 4 : 8;
  fleet.shards = 2;
  fleet.rounds = 2;
  fleet.round_duration = SimTime::from_seconds(smoke ? 60.0 : 180.0);
  fleet.base_seed = 5150;
  const sim::FleetResult fleet_result = sim::train_fleet(workload::AppId::kLineage, fleet);
  const double fleet_sim_s =
      static_cast<double>(fleet.devices) * fleet_result.device_sim_seconds;
  std::printf("  fleet: %zu devices x %zu rounds -> %zu global states in %.2f s "
              "(%.0f device-sim-s/wall-s)\n",
              fleet.devices, fleet.rounds, fleet_result.global.state_count(),
              fleet_result.wall_seconds, fleet_sim_s / fleet_result.wall_seconds);

  // --- fleet snapshot save/load cost --------------------------------------
  // Shapes a checkpoint like a 64-device / 8-shard fleet would carry (the
  // snapshot stores per-shard aggregates + uploads, not per-device state,
  // so shard count x table size is what sets the bytes) and measures the
  // full persist + restore round trip through the CRC'd container.
  const std::size_t snap_shards = 8;
  sim::FleetOptions snap_opts = fleet;
  snap_opts.devices = 64;
  snap_opts.shards = snap_shards;
  sim::FleetSnapshot snap;
  snap.next_round = fleet.rounds;
  snap.total_decisions = fleet_result.total_decisions;
  snap.last_round_mean_reward = fleet_result.mean_final_reward;
  for (std::size_t s = 0; s < snap_shards; ++s) {
    snap.shard_tables.push_back(fleet_result.global);
    snap.uploads.push_back(sim::FleetUpload{fleet_result.global, 1});
    snap.shard_last_upload.push_back(1);
  }
  snap.last_aggregate = fleet_result.global;
  const std::string snap_path = out_dir() + "/perf_training_snapshot.bin";
  const int snap_iters = smoke ? 3 : 10;
  const double save_s = wall_seconds([&] {
    for (int i = 0; i < snap_iters; ++i) sim::save_fleet_snapshot(snap, snap_opts, snap_path);
  });
  const double load_s = wall_seconds([&] {
    for (int i = 0; i < snap_iters; ++i) (void)sim::load_fleet_snapshot(snap_path, snap_opts);
  });
  std::size_t snap_bytes = 0;
  if (std::FILE* f = std::fopen(snap_path.c_str(), "rb")) {
    std::fseek(f, 0, SEEK_END);
    snap_bytes = static_cast<std::size_t>(std::ftell(f));
    std::fclose(f);
  }
  std::remove(snap_path.c_str());
  const double save_ms = 1e3 * save_s / snap_iters;
  const double load_ms = 1e3 * load_s / snap_iters;
  // Resident footprint of the flat open-addressing tables this checkpoint
  // carries (shard aggregates + uploads + last_aggregate), the number the
  // "memory-bounded Q-tables" line in ROADMAP.md tracks.
  std::size_t resident_bytes = snap.last_aggregate->memory_bytes();
  for (const auto& t : snap.shard_tables) {
    if (t.has_value()) resident_bytes += t->memory_bytes();
  }
  for (const auto& u : snap.uploads) {
    if (u.has_value()) resident_bytes += u->table.memory_bytes();
  }
  const std::size_t states = fleet_result.global.state_count();
  const double bytes_per_state =
      states > 0 ? static_cast<double>(fleet_result.global.memory_bytes()) /
                       static_cast<double>(states)
                 : 0.0;
  std::printf("  snapshot (64-device shape, %zu shards x %zu states): %zu bytes, "
              "save %.2f ms, load+verify %.2f ms\n",
              snap_shards, states, snap_bytes, save_ms, load_ms);
  std::printf("  resident tables: %zu bytes total, %.1f bytes/state per table\n",
              resident_bytes, bytes_per_state);

  // --- JSON trajectory file ----------------------------------------------
  const std::string path = out_dir() + "/BENCH_training.json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"perf_training\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(out, "  \"plan\": {\n");
  std::fprintf(out, "    \"cells\": %zu,\n", cells);
  std::fprintf(out, "    \"sim_budget_s_per_cell\": %.1f,\n", budget_s);
  std::fprintf(out, "    \"serial_wall_s\": %.4f,\n", serial_s);
  std::fprintf(out, "    \"serial_sim_s_per_wall_s\": %.0f,\n", device_sim_s / serial_s);
  if (can_measure_speedup) {
    std::fprintf(out, "    \"status\": \"ok\",\n");
    std::fprintf(out, "    \"parallel_workers\": %zu,\n", curve.back().workers);
    std::fprintf(out, "    \"parallel_wall_s\": %.4f,\n", best_parallel_s);
    std::fprintf(out, "    \"speedup\": %.3f,\n", speedup);
  } else {
    std::fprintf(out, "    \"status\": \"skipped: single hardware thread\",\n");
    std::fprintf(out, "    \"speedup\": null,\n");
  }
  std::fprintf(out, "    \"bit_identical\": %s\n", bit_identical ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"scaling\": [");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::fprintf(out, "%s\n    {\"workers\": %zu, \"wall_s\": %.4f, \"speedup\": %.3f}",
                 i == 0 ? "" : ",", curve[i].workers, curve[i].wall_s,
                 serial_s / curve[i].wall_s);
  }
  std::fprintf(out, "\n  ],\n");
  std::fprintf(out, "  \"fleet\": {\n");
  std::fprintf(out, "    \"devices\": %zu,\n", fleet.devices);
  std::fprintf(out, "    \"shards\": %zu,\n", fleet.shards);
  std::fprintf(out, "    \"rounds\": %zu,\n", fleet.rounds);
  std::fprintf(out, "    \"round_duration_s\": %.1f,\n", fleet.round_duration.seconds());
  std::fprintf(out, "    \"global_states\": %zu,\n", fleet_result.global.state_count());
  std::fprintf(out, "    \"total_decisions\": %llu,\n",
               static_cast<unsigned long long>(fleet_result.total_decisions));
  std::fprintf(out, "    \"wall_s\": %.4f,\n", fleet_result.wall_seconds);
  std::fprintf(out, "    \"device_sim_s_per_wall_s\": %.0f\n",
               fleet_sim_s / fleet_result.wall_seconds);
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"snapshot\": {\n");
  std::fprintf(out, "    \"shape\": \"64 devices / %zu shards\",\n", snap_shards);
  std::fprintf(out, "    \"states_per_shard\": %zu,\n", fleet_result.global.state_count());
  std::fprintf(out, "    \"bytes_on_disk\": %zu,\n", snap_bytes);
  std::fprintf(out, "    \"resident_table_bytes\": %zu,\n", resident_bytes);
  std::fprintf(out, "    \"table_memory_bytes_per_state\": %.1f,\n", bytes_per_state);
  std::fprintf(out, "    \"save_ms\": %.3f,\n", save_ms);
  std::fprintf(out, "    \"load_verify_ms\": %.3f\n", load_ms);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("  -> %s\n\n", path.c_str());
  return bit_identical ? 0 : 1;
}
