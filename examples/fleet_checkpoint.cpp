// fleet_checkpoint - fault-tolerant fleet training, end to end: a sharded
// fleet trains with periodic snapshots, dies at a configurable round
// (FleetFaultPlan::crash_at_round), resumes from the snapshot file a real
// crash would leave behind, and verifies the recovered run's final merged
// Q-table is *byte-for-byte* identical to a run that never crashed.
//
//   usage: example_fleet_checkpoint [crash_round] [rounds] [snapshot_path]
//
// Exit status is the verification result (0 = recovered bytes match the
// uninterrupted run), which is what the CI crash-recovery smoke step
// asserts. Defaults stay laptop-friendly: 4 devices x 2 shards x 4 rounds
// x 30 s, crash after round 1.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/parse.hpp"
#include "sim/fleet.hpp"
#include "workload/apps.hpp"

namespace {

using nextgov::parse_count;  // strict: rejects "-5" (strtoul silently wrapped it)

std::vector<std::uint8_t> canonical_bytes(const nextgov::rl::QTable& table) {
  nextgov::ByteWriter out;
  table.serialize(out);
  return out.data();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nextgov;

  const auto app = workload::AppId::kFacebook;
  std::size_t crash_round = 1;
  std::size_t rounds = 4;
  std::string snapshot_path = "fleet_checkpoint.snap";
  const bool args_ok = (argc <= 1 || parse_count(argv[1], crash_round)) &&
                       (argc <= 2 || parse_count(argv[2], rounds));
  if (argc > 3) snapshot_path = argv[3];
  if (!args_ok || argc > 4 || rounds < 2 || crash_round + 1 >= rounds) {
    std::fprintf(stderr,
                 "usage: %s [crash_round] [rounds] [snapshot_path]\n"
                 "       crash_round + 1 < rounds (default: crash after round 1 of 4)\n",
                 argv[0]);
    return 2;
  }

  sim::FleetOptions options;
  options.devices = 4;
  options.shards = 2;
  options.rounds = rounds;
  options.round_duration = SimTime::from_seconds(30.0);
  options.episode_length = SimTime::from_seconds(15.0);
  options.base_seed = 2020;
  options.sync_spread = 2;

  // 1. The reference: the same fleet, never interrupted.
  std::printf("[1/3] uninterrupted reference run: %zu devices, %zu rounds x %.0f s\n",
              options.devices, options.rounds, options.round_duration.seconds());
  const sim::FleetResult reference = sim::train_fleet(app, options);
  std::printf("      -> %zu states, %llu decisions\n", reference.global.state_count(),
              static_cast<unsigned long long>(reference.total_decisions));

  // 2. The victim: snapshots every round, killed after crash_round.
  sim::FleetOptions crashing = options;
  crashing.snapshot_every = 1;
  crashing.snapshot_path = snapshot_path;
  crashing.faults.crash_at_round = crash_round;
  std::printf("[2/3] crashing run: snapshot every round to '%s', killed after round %zu\n",
              snapshot_path.c_str(), crash_round);
  bool crashed = false;
  try {
    (void)sim::train_fleet(app, crashing);
  } catch (const sim::FleetCrash& e) {
    crashed = true;
    std::printf("      -> %s\n", e.what());
  }
  if (!crashed) {
    std::fprintf(stderr, "FAIL: the injected crash never fired\n");
    return 1;
  }

  // 3. Recovery: resume from whatever the dead process left on disk.
  sim::FleetOptions resuming = options;
  resuming.resume_from = snapshot_path;
  std::printf("[3/3] resuming from '%s'\n", snapshot_path.c_str());
  const sim::FleetResult recovered = sim::train_fleet(app, resuming);
  std::printf("      -> resumed at round %zu, %zu states, %llu decisions\n",
              recovered.start_round, recovered.global.state_count(),
              static_cast<unsigned long long>(recovered.total_decisions));

  // The snapshot file is left in place on purpose: it is the artifact a
  // real recovery would start from (CI uploads it for inspection).
  const bool bytes_match =
      canonical_bytes(recovered.global) == canonical_bytes(reference.global);
  const bool tables_match = recovered.global == reference.global &&
                            recovered.total_decisions == reference.total_decisions;
  if (!bytes_match || !tables_match) {
    std::fprintf(stderr,
                 "FAIL: recovered run diverged from the uninterrupted run "
                 "(tables %s, bytes %s)\n",
                 tables_match ? "match" : "DIFFER", bytes_match ? "match" : "DIFFER");
    return 1;
  }
  std::printf("\nOK: crash at round %zu + resume == uninterrupted run, byte-for-byte "
              "(%zu-state global table, %llu decisions)\n",
              crash_round, recovered.global.state_count(),
              static_cast<unsigned long long>(recovered.total_decisions));
  return 0;
}
