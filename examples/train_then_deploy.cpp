// train_then_deploy - the per-app Q-table persistence workflow of
// Section IV-B: "The training for every newly executing application is only
// performed once and the Q-table results are stored on the memory so that
// later when the application is executed again the agent is able to refer
// to the Q-table".
//
// Trains Next on PubG, saves the Q-table to disk, reloads it into a fresh
// agent and compares: cold (untrained), warm (reloaded), and the stock
// governor.
#include <cstdio>
#include <string>

#include "sim/runner.hpp"
#include "workload/apps.hpp"

int main(int argc, char** argv) {
  using namespace nextgov;

  const std::string table_path = argc > 1 ? argv[1] : "pubg_qtable.bin";
  const auto app = workload::AppId::kPubg;
  const auto duration = workload::paper_session_length(app);

  // --- session 1: the app has never been seen; the agent trains online ---
  std::puts("first launch: no stored Q-table, training online...");
  sim::TrainingOptions train;
  train.max_duration = SimTime::from_seconds(1500.0);
  train.seed = 7;
  const sim::TrainingResult trained = sim::train_next(app, core::NextConfig{}, train);
  std::printf("  trained %zu states (%llu decisions), persisting to %s\n",
              trained.states_visited, static_cast<unsigned long long>(trained.decisions),
              table_path.c_str());
  trained.table.save(table_path);

  // --- session 2: the app is reopened; the stored table is reloaded ------
  std::puts("\nsecond launch: loading the stored Q-table and deploying greedily...");
  const rl::QTable reloaded = rl::QTable::load(table_path);
  std::printf("  reloaded %zu states, %llu visits\n", reloaded.state_count(),
              static_cast<unsigned long long>(reloaded.total_visits()));

  // The three comparison sessions run as one parallel runner plan.
  sim::ExperimentConfig cfg;
  cfg.duration = duration;
  cfg.seed = 99;  // a different user session than training

  sim::RunPlan plan;
  cfg.governor = sim::GovernorKind::kSchedutil;
  plan.add(app, cfg);
  cfg.governor = sim::GovernorKind::kNext;
  cfg.trained_table = &reloaded;
  plan.add(app, cfg);
  // Cold agent for contrast: greedy on an empty table = do-nothing caps.
  cfg.trained_table = nullptr;
  cfg.next_mode = core::AgentMode::kDeployed;
  plan.add(app, cfg);
  const auto results = sim::run_plan(plan);
  const sim::SessionResult& stock = results[0];
  const sim::SessionResult& warm = results[1];
  const sim::SessionResult& cold = results[2];

  std::printf("\n%-22s %12s %16s %10s\n", "configuration", "avg_power_W", "peak_big_temp_C",
              "avg_FPS");
  std::printf("%-22s %12.3f %16.1f %10.1f\n", "schedutil (stock)", stock.avg_power_w,
              stock.peak_temp_big_c, stock.avg_fps);
  std::printf("%-22s %12.3f %16.1f %10.1f\n", "Next cold (untrained)", cold.avg_power_w,
              cold.peak_temp_big_c, cold.avg_fps);
  std::printf("%-22s %12.3f %16.1f %10.1f\n", "Next warm (reloaded)", warm.avg_power_w,
              warm.peak_temp_big_c, warm.avg_fps);
  std::printf("\nwarm vs stock: %.1f%% power saved at %.1f C lower peak.\n",
              100.0 * (1.0 - warm.avg_power_w / stock.avg_power_w),
              stock.peak_temp_big_c - warm.peak_temp_big_c);
  return 0;
}
