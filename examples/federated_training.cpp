// federated_training - Section IV-C: "a new type of machine learning called
// federated learning could be utilized to train the agent more effectively
// by leveraging the computational power of the cloud."
//
// Simulates a sharded fleet with sim::train_fleet(): N devices (each with
// its own user seed) train Next on the same app concurrently across the
// runner's worker pool, grouped into shards behind edge aggregators. Every
// merge round each shard FedAvg-merges its devices; shards phone home to
// the global server at different cadences, so the server's aggregate is a
// *staleness-weighted* merge of whatever uploads it has. A brand-new
// device then deploys the global table without any local training.
//
//   usage: example_federated_training [devices] [shards] [rounds] [processes]
//                                     [--delta-uploads] [--out PATH]
//
// Defaults stay laptop-friendly (12 devices x 3 rounds x 150 s); the fleet
// path itself scales to hundreds of devices, e.g.
//   example_federated_training 200 8 3
// and with [processes] > 1 each round's training fans out across forked
// worker processes (sim/multiproc.hpp) with bit-identical results.
// --delta-uploads switches shard phone-homes to the delta wire encoding
// (only states touched since the last accepted sync travel) - a pure wire
// strategy, so the learned tables are byte-identical either way; --out
// writes the final global table's canonical serialized bytes to PATH,
// which is how CI cmp-checks that claim.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/parse.hpp"
#include "sim/fleet.hpp"
#include "workload/apps.hpp"

namespace {

// Strict common parser (rejects "-5", which strtoul silently wrapped to
// eighteen quintillion devices) plus this example's "positive" requirement.
bool parse_positive(const char* arg, std::size_t& out) {
  std::size_t value = 0;
  if (!nextgov::parse_count(arg, value) || value == 0) return false;
  out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nextgov;

  const auto app = workload::AppId::kLineage;
  sim::FleetOptions fleet;
  fleet.devices = 12;
  fleet.shards = 3;
  fleet.rounds = 3;
  std::string out_path;
  std::vector<const char*> positional;
  bool flags_ok = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--delta-uploads") == 0) {
      fleet.delta_uploads = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      if (i + 1 >= argc) {
        flags_ok = false;
        break;
      }
      out_path = argv[++i];
    } else {
      positional.push_back(argv[i]);
    }
  }
  const std::size_t n_pos = positional.size();
  const bool args_ok = flags_ok &&
                       (n_pos < 1 || parse_positive(positional[0], fleet.devices)) &&
                       (n_pos < 2 || parse_positive(positional[1], fleet.shards)) &&
                       (n_pos < 3 || parse_positive(positional[2], fleet.rounds)) &&
                       (n_pos < 4 || parse_positive(positional[3], fleet.processes));
  if (!args_ok || n_pos > 4 || fleet.shards > fleet.devices) {
    std::fprintf(stderr,
                 "usage: %s [devices] [shards] [rounds] [processes]"
                 " [--delta-uploads] [--out PATH]\n"
                 "       all positive integers, shards <= devices (default 12 3 3 1)\n",
                 argv[0]);
    return 1;
  }
  // Each device trains for a small slice of the single-device budget per
  // round: the point of federation is pooling short, cheap sessions.
  fleet.round_duration = SimTime::from_seconds(150.0);
  fleet.base_seed = 100;
  fleet.sync_spread = 3;  // shard s syncs every 1 + (s % 3) rounds

  std::printf("federating %zu devices in %zu shards, %zu merge rounds x %.0f s on '%s'\n\n",
              fleet.devices, fleet.shards, fleet.rounds, fleet.round_duration.seconds(),
              std::string{workload::to_string(app)}.c_str());

  const auto progress = [](const sim::FleetRoundStats& stats) {
    std::printf("  round %zu: mean reward %.3f, %llu decisions, shard states [", stats.round,
                stats.mean_reward, static_cast<unsigned long long>(stats.round_decisions));
    for (std::size_t s = 0; s < stats.shard_states.size(); ++s) {
      std::printf("%s%zu%s", s == 0 ? "" : " ", stats.shard_states[s],
                  stats.shard_synced[s] ? "*" : "");
    }
    std::printf("]  (* = synced to global)\n");
  };
  const sim::FleetResult fleet_result = sim::train_fleet(app, fleet, {}, progress);

  const rl::CloudTimingModel timing{};
  std::printf("\nglobal aggregate: %zu states from %zu shard uploads, "
              "%.1f s wall for %.0f device-sim-seconds (+%.0f s comm overhead)\n",
              fleet_result.global.state_count(), fleet_result.shard_tables.size(),
              fleet_result.wall_seconds,
              static_cast<double>(fleet.devices) * fleet_result.device_sim_seconds,
              timing.comm_overhead_s);
  std::printf("upload wire: %zu full (%llu B) + %zu delta (%llu B)%s\n",
              fleet_result.uploads_full,
              static_cast<unsigned long long>(fleet_result.upload_bytes_full),
              fleet_result.uploads_delta,
              static_cast<unsigned long long>(fleet_result.upload_bytes_delta),
              fleet.delta_uploads ? "  [--delta-uploads]" : "");

  if (!out_path.empty()) {
    // Canonical serialized bytes of the learned global table: two runs that
    // claim identical training (e.g. full vs delta uploads in CI) can be
    // compared with a plain `cmp` of these files.
    ByteWriter canonical;
    fleet_result.global.serialize(canonical);
    std::FILE* f = std::fopen(out_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(canonical.data().data(), 1, canonical.data().size(), f);
    std::fclose(f);
    std::printf("canonical global table -> %s (%zu bytes)\n", out_path.c_str(),
                canonical.data().size());
  }

  // A fresh device receives the global table and runs with zero training;
  // compare against stock and against the *stalest* shard's local
  // aggregate on the same never-seen user session. (A shard that synced
  // in the final round downloaded the server merge, i.e. its table IS the
  // global table - only a stale shard shows what a device group misses
  // between phone-homes. kNeverUploaded counts as maximally stale.)
  std::size_t stalest = 0;
  const auto upload_age = [&](std::size_t s) {
    const std::size_t at = fleet_result.shard_last_upload[s];
    return at == sim::kNeverUploaded ? std::size_t{0} : at + 1;  // 0 = never
  };
  for (std::size_t s = 1; s < fleet_result.shard_last_upload.size(); ++s) {
    if (upload_age(s) < upload_age(stalest)) stalest = s;
  }

  sim::ExperimentConfig cfg;
  cfg.duration = workload::paper_session_length(app);
  cfg.seed = 999;  // a user none of the training devices saw

  sim::RunPlan plan;
  cfg.governor = sim::GovernorKind::kSchedutil;
  plan.add(app, cfg);
  cfg.governor = sim::GovernorKind::kNext;
  cfg.trained_table = &fleet_result.global;
  plan.add(app, cfg);
  cfg.trained_table = &fleet_result.shard_tables[stalest];
  plan.add(app, cfg);
  const auto results = sim::run_plan(plan);
  const sim::SessionResult& stock = results[0];
  const sim::SessionResult& fed = results[1];
  const sim::SessionResult& shard = results[2];

  std::printf("\n%-28s %12s %16s %10s %9s\n", "configuration", "avg_power_W",
              "peak_big_temp_C", "avg_FPS", "states");
  std::printf("%-28s %12.3f %16.1f %10.1f %9s\n", "schedutil (stock)", stock.avg_power_w,
              stock.peak_temp_big_c, stock.avg_fps, "-");
  std::printf("%-28s %12.3f %16.1f %10.1f %9zu\n", "Next (stalest shard, local)",
              shard.avg_power_w, shard.peak_temp_big_c, shard.avg_fps,
              fleet_result.shard_tables[stalest].state_count());
  std::printf("%-28s %12.3f %16.1f %10.1f %9zu\n", "Next (global aggregate)", fed.avg_power_w,
              fed.peak_temp_big_c, fed.avg_fps, fleet_result.global.state_count());
  std::printf("\nfederated vs stock: %.1f%% power saved on a never-trained device.\n",
              100.0 * (1.0 - fed.avg_power_w / stock.avg_power_w));
  return 0;
}
