// federated_training - Section IV-C: "a new type of machine learning called
// federated learning could be utilized to train the agent more effectively
// by leveraging the computational power of the cloud."
//
// Simulates a small fleet: N devices each train Next on the same app with
// their own users (seeds), upload their Q-tables, the server merges them
// (visit-weighted FedAvg over tried actions) and ships the merged table to
// a brand-new device, which deploys it without any local training.
#include <cstdio>
#include <vector>

#include "rl/federated.hpp"
#include "sim/runner.hpp"
#include "workload/apps.hpp"

int main() {
  using namespace nextgov;

  const auto app = workload::AppId::kLineage;
  constexpr int kDevices = 3;
  // Each device trains for a fraction of the single-device budget: the
  // point of federation is pooling short, cheap per-device sessions.
  const double per_device_budget_s = 500.0;

  std::printf("federating %d devices x %.0f s of on-device training on '%s'\n\n", kDevices,
              per_device_budget_s, std::string{workload::to_string(app)}.c_str());

  std::vector<sim::TrainingResult> devices;
  std::vector<const rl::QTable*> tables;
  for (int d = 0; d < kDevices; ++d) {
    sim::TrainingOptions opts;
    opts.max_duration = SimTime::from_seconds(per_device_budget_s);
    opts.seed = 100 + static_cast<std::uint64_t>(d) * 17;  // different users
    devices.push_back(sim::train_next(app, core::NextConfig{}, opts));
    std::printf("  device %d: %zu states, %llu visits, mean reward %.3f\n", d,
                devices.back().states_visited,
                static_cast<unsigned long long>(devices.back().table.total_visits()),
                devices.back().final_mean_reward);
  }
  for (const auto& d : devices) tables.push_back(&d.table);

  const rl::QTable merged = rl::merge_q_tables(tables);
  const rl::CloudTimingModel timing{};
  std::printf("\ncloud merge: %zu states (union of device coverage), +%.0f s comm overhead\n",
              merged.state_count(), timing.comm_overhead_s);

  // A fresh device receives the merged table and runs with zero training.
  // All three evaluation sessions fan out through the parallel runner.
  sim::ExperimentConfig cfg;
  cfg.duration = workload::paper_session_length(app);
  cfg.seed = 999;  // a user none of the training devices saw

  // Compare against the best single device's table on the same session.
  std::size_t best = 0;
  for (std::size_t d = 1; d < devices.size(); ++d) {
    if (devices[d].final_mean_reward > devices[best].final_mean_reward) best = d;
  }

  sim::RunPlan plan;
  cfg.governor = sim::GovernorKind::kSchedutil;
  plan.add(app, cfg);
  cfg.governor = sim::GovernorKind::kNext;
  cfg.trained_table = &merged;
  plan.add(app, cfg);
  cfg.trained_table = &devices[best].table;
  plan.add(app, cfg);
  const auto results = sim::run_plan(plan);
  const sim::SessionResult& stock = results[0];
  const sim::SessionResult& fed = results[1];
  const sim::SessionResult& solo = results[2];

  std::printf("\n%-26s %12s %16s %10s\n", "configuration", "avg_power_W", "peak_big_temp_C",
              "avg_FPS");
  std::printf("%-26s %12.3f %16.1f %10.1f\n", "schedutil (stock)", stock.avg_power_w,
              stock.peak_temp_big_c, stock.avg_fps);
  std::printf("%-26s %12.3f %16.1f %10.1f\n", "Next (best single device)", solo.avg_power_w,
              solo.peak_temp_big_c, solo.avg_fps);
  std::printf("%-26s %12.3f %16.1f %10.1f\n", "Next (federated merge)", fed.avg_power_w,
              fed.peak_temp_big_c, fed.avg_fps);
  std::printf("\nfederated vs stock: %.1f%% power saved on a never-trained device.\n",
              100.0 * (1.0 - fed.avg_power_w / stock.avg_power_w));
  return 0;
}
