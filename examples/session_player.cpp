// session_player - run any app or library scenario under any governor and
// inspect the session.
//
//   session_player [workload] [governor] [duration_s] [seed] [csv_path]
//   session_player --list
//
//   --list   : print every library scenario with a one-line description.
//   workload : a catalog app (facebook | spotify | web_browser | youtube |
//              lineage | pubg | home) or any named scenario from the
//              scenario library (fig1_session, fig1_session_90hz,
//              social_gaming, spotify_bursty, pubg_hot35, ...; see
//              --list). Default: facebook.
//   governor : schedutil | performance | powersave | ondemand | intqos
//              | next | next_trained           (default schedutil)
//   next_trained first trains the agent online on the same workload, then
//   deploys the learned Q-table for the measured session (the paper's
//   "fully trained" evaluation protocol).
//
//   duration_s <= 0 (the default) keeps the scenario's own duration.
//
// Prints the session summary and, when csv_path is given, the full 1 s
// time series for plotting.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "common/error.hpp"
#include "common/parse.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "workload/apps.hpp"

namespace {

using namespace nextgov;

void print_scenario_list() {
  std::puts("library scenarios:");
  for (std::string_view name : sim::scenario_names()) {
    const std::string_view desc = sim::scenario_description(name);
    std::printf("  %-20.*s %.*s\n", static_cast<int>(name.size()), name.data(),
                static_cast<int>(desc.size()), desc.data());
  }
}

void print_usage() {
  std::puts(
      "usage: session_player [workload] [governor] [duration_s] [seed] [csv_path]\n"
      "       session_player --list\n"
      "  workload: facebook spotify web_browser youtube lineage pubg home\n"
      "            or a library scenario (see below)\n"
      "  governor: schedutil performance powersave ondemand intqos next next_trained");
  print_scenario_list();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workload_name = argc > 1 ? argv[1] : "facebook";
  if (workload_name == "--list" || workload_name == "-l") {
    print_scenario_list();
    return 0;
  }
  const std::string gov_name = argc > 2 ? argv[2] : "schedutil";
  // Default 0 = the scenario's own duration (paper session length for
  // catalog apps, the full session for library scenarios).
  const double duration_s = argc > 3 ? std::atof(argv[3]) : 0.0;
  // Strict parse: strtoull silently wrapped "-1" to 2^64 - 1 and accepted
  // trailing garbage; a mistyped seed should be a usage error, not a
  // surprise trajectory.
  std::uint64_t seed = 1;
  if (argc > 4 && !parse_u64(argv[4], seed)) {
    std::fprintf(stderr, "session_player: seed must be a non-negative integer, got '%s'\n\n",
                 argv[4]);
    print_usage();
    return 2;
  }
  const std::string csv_path = argc > 5 ? argv[5] : "";

  const std::map<std::string, workload::AppId> apps{
      {"home", workload::AppId::kHome},         {"facebook", workload::AppId::kFacebook},
      {"spotify", workload::AppId::kSpotify},   {"web_browser", workload::AppId::kWebBrowser},
      {"youtube", workload::AppId::kYoutube},   {"lineage", workload::AppId::kLineage},
      {"pubg", workload::AppId::kPubg}};
  const std::map<std::string, sim::GovernorKind> governors{
      {"schedutil", sim::GovernorKind::kSchedutil},
      {"performance", sim::GovernorKind::kPerformance},
      {"powersave", sim::GovernorKind::kPowersave},
      {"ondemand", sim::GovernorKind::kOndemand},
      {"intqos", sim::GovernorKind::kIntQos},
      {"next", sim::GovernorKind::kNext},
      {"next_trained", sim::GovernorKind::kNext}};

  // Any workload resolves to a ScenarioSpec: catalog apps via the per-app
  // scenario ("fig1session" kept as an alias for the library's
  // fig1_session), everything else looked up in the scenario library.
  sim::ScenarioSpec spec;
  if (const auto app_it = apps.find(workload_name); app_it != apps.end()) {
    spec = sim::app_scenario(app_it->second);
  } else {
    try {
      spec = sim::scenario(workload_name == "fig1session" ? "fig1_session" : workload_name);
    } catch (const ConfigError&) {
      print_usage();
      return 1;
    }
  }
  const auto gov_it = governors.find(gov_name);
  if (gov_it == governors.end()) {
    print_usage();
    return 1;
  }
  if (duration_s > 0.0) spec.duration = SimTime::from_seconds(duration_s);

  sim::ExperimentConfig config = spec.experiment_config(gov_it->second, seed);

  sim::TrainingResult training{rl::QTable{9}, false, 0, 0, 0, 0, 0};
  if (gov_name == "next_trained") {
    sim::TrainingOptions opts = spec.training_options(sim::TrainingOptions{});
    opts.seed = seed + 1000;
    training = sim::train_next_on(spec.app_factory(), config.next_config, opts);
    std::printf("trained: converged=%d sim=%.0fs wall=%.2fs states=%zu mean_reward=%.3f\n",
                training.converged ? 1 : 0, training.sim_seconds, training.wall_seconds,
                training.states_visited, training.final_mean_reward);
    config.trained_table = &training.table;
  }

  sim::RunPlan plan;
  plan.add(spec.app_factory(), spec.name, config);
  const sim::SessionResult r = std::move(sim::run_plan(plan).front());

  std::printf("workload=%s governor=%s duration=%.0fs seed=%llu ambient=%.0fC refresh=%.0fHz\n",
              r.app.c_str(), r.governor.c_str(), r.duration_s,
              static_cast<unsigned long long>(seed), spec.ambient.value(), spec.refresh_hz);
  std::printf("  avg power     : %7.3f W (peak %.3f W)\n", r.avg_power_w, r.peak_power_w);
  std::printf("  big CPU temp  : %7.2f C avg, %7.2f C peak\n", r.avg_temp_big_c,
              r.peak_temp_big_c);
  std::printf("  device temp   : %7.2f C avg, %7.2f C peak\n", r.avg_temp_device_c,
              r.peak_temp_device_c);
  std::printf("  FPS           : %7.2f avg (%lld presented, %lld dropped)\n", r.avg_fps,
              static_cast<long long>(r.frames_presented),
              static_cast<long long>(r.frames_dropped));
  std::printf("  energy        : %7.1f J   avg PPDW: %.4f\n", r.energy_j, r.avg_ppdw);

  if (!csv_path.empty()) {
    sim::Recorder rec;
    for (const auto& s : r.series) rec.add(s);
    rec.save_csv(csv_path);
    std::printf("  series -> %s (%zu samples)\n", csv_path.c_str(), r.series.size());
  }
  return 0;
}
