// custom_governor - extending the library with your own meta-governor.
//
// The paper's Next agent is one instance of the MetaGovernor role
// (application-layer logic that moves per-cluster maxfreq caps above the
// stock kernel governor). This example implements a simple alternative - a
// reactive "thermal budget" governor that caps the big cluster by
// temperature headroom - and races it against schedutil and Next on a game.
// Use it as a template for plugging your own policies into the engine.
#include <algorithm>
#include <cstdio>

#include "governors/governor.hpp"
#include "governors/schedutil.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"
#include "workload/apps.hpp"

namespace {

using namespace nextgov;

/// Caps the big cluster proportionally to the remaining thermal headroom:
/// full speed when cool, lowest OPP as the junction approaches the limit.
/// (No learning, no QoS awareness - exactly the greedy scheme the paper's
/// Section II criticizes; expect it to give up FPS under load.)
class ThermalBudgetGovernor final : public governors::MetaGovernor {
 public:
  explicit ThermalBudgetGovernor(double limit_c = 70.0, double floor_c = 40.0)
      : limit_c_{limit_c}, floor_c_{floor_c} {}

  [[nodiscard]] SimTime period() const override { return SimTime::from_ms(100); }
  [[nodiscard]] std::string_view name() const override { return "thermal_budget"; }

  void control(const governors::Observation& obs, soc::Soc& soc) override {
    const double t = obs.sensors.big.value();
    const double headroom = std::clamp((limit_c_ - t) / (limit_c_ - floor_c_), 0.0, 1.0);
    auto& big = soc.big();
    const auto top = big.opps().size() - 1;
    big.set_max_cap_index(static_cast<std::size_t>(headroom * static_cast<double>(top) + 0.5));
  }

 private:
  double limit_c_;
  double floor_c_;
};

sim::SessionResult run_with_custom_meta(workload::AppId app, SimTime duration,
                                        std::uint64_t seed) {
  // Engines are assembled from parts: SoC + app + kernel governor + meta.
  sim::EngineConfig engine_cfg;
  auto engine = std::make_unique<sim::Engine>(
      soc::make_exynos9810(), workload::make_app(app, seed),
      std::make_unique<governors::SchedutilGovernor>(),
      std::make_unique<ThermalBudgetGovernor>(), engine_cfg);
  engine->run(duration);
  return sim::summarize(*engine, std::string{workload::to_string(app)}, "thermal_budget");
}

}  // namespace

int main() {
  using namespace nextgov;

  const auto app = workload::AppId::kLineage;
  const auto duration = workload::paper_session_length(app);

  const sim::SessionResult custom = run_with_custom_meta(app, duration, 4);

  sim::TrainingOptions train;
  train.max_duration = SimTime::from_seconds(1500.0);
  train.seed = 1004;
  const sim::TrainingResult trained = sim::train_next(app, core::NextConfig{}, train);

  // The catalog-governor sessions go through the batch runner; the custom
  // meta-governor above assembles its engine by hand (it has no
  // GovernorKind), which stays possible alongside the runner.
  sim::ExperimentConfig cfg;
  cfg.duration = duration;
  cfg.seed = 4;
  sim::RunPlan plan;
  cfg.governor = sim::GovernorKind::kSchedutil;
  plan.add(app, cfg);
  cfg.governor = sim::GovernorKind::kNext;
  cfg.trained_table = &trained.table;
  plan.add(app, cfg);
  const auto results = sim::run_plan(plan);
  const sim::SessionResult& stock = results[0];
  const sim::SessionResult& next = results[1];

  std::printf("%-16s %12s %16s %10s\n", "governor", "avg_power_W", "peak_big_temp_C",
              "avg_FPS");
  for (const auto* r : {&stock, &custom, &next}) {
    std::printf("%-16s %12.3f %16.1f %10.1f\n", r->governor.c_str(), r->avg_power_w,
                r->peak_temp_big_c, r->avg_fps);
  }
  std::puts("\nthe greedy thermal governor trades FPS away blindly; Next holds the");
  std::puts("user's target FPS while cutting power - the paper's core argument.");
  return 0;
}
