// fleet_serverd - the long-running fleet server as a daemon.
//
// Wraps sim::FleetServer in a process with real signal semantics:
//
//   * SIGINT/SIGTERM request a clean drain - the server finishes the round
//     in progress, persists a final boundary snapshot to the ring, and
//     exits 0;
//   * SIGKILL (kill -9) obviously gets no courtesy - which is the point:
//     on the next start the daemon restores from the newest valid ring
//     entry (quarantining any corrupt one to `<path>.corrupt`) and the
//     finished run's Q-tables are byte-identical to a run that was never
//     killed. The CI crash-recovery smoke asserts exactly that with cmp.
//
//   usage: example_fleet_serverd [--rounds N] [--ring PREFIX] [--ring-size K]
//                                [--out TABLE.bin] [--round-sleep-ms M]
//                                [--seed S] [--devices D]
//
//   --rounds 0 runs until a signal arrives. --round-sleep-ms throttles the
//   loop in host time so an external kill can land mid-run (the simulated
//   clock is unaffected). --out writes the final global Q-table's canonical
//   bytes, the file the smoke step compares across interrupted and
//   uninterrupted runs.
//
// Churn is on by default (departures + stragglers + upload failures in the
// same run), so every recovery exercised here crosses the full lease /
// retry / carry-over machinery, not a calm fleet.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/parse.hpp"
#include "sim/fleet_server.hpp"
#include "workload/apps.hpp"

namespace {

std::atomic<bool> g_stop{false};

void request_stop(int) { g_stop.store(true); }

using nextgov::parse_count;  // strict: rejects "-5" (strtoul silently wrapped it)

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--rounds N] [--ring PREFIX] [--ring-size K] [--out TABLE.bin]\n"
               "          [--round-sleep-ms M] [--seed S] [--devices D]\n"
               "       N = 0 runs until SIGINT/SIGTERM (clean drain).\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nextgov;

  std::size_t rounds = 5;
  std::size_t ring_size = 3;
  std::size_t sleep_ms = 0;
  std::size_t seed = 2020;
  std::size_t devices = 4;
  std::string ring_prefix = "fleet_server.snap";
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const auto flag = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0 && i + 1 < argc;
    };
    if (flag("--rounds") && parse_count(argv[++i], rounds)) continue;
    if (flag("--ring-size") && parse_count(argv[++i], ring_size)) continue;
    if (flag("--round-sleep-ms") && parse_count(argv[++i], sleep_ms)) continue;
    if (flag("--seed") && parse_count(argv[++i], seed)) continue;
    if (flag("--devices") && parse_count(argv[++i], devices)) continue;
    if (flag("--ring")) {
      ring_prefix = argv[++i];
      continue;
    }
    if (flag("--out")) {
      out_path = argv[++i];
      continue;
    }
    return usage(argv[0]);
  }
  if (ring_size == 0 || devices == 0) return usage(argv[0]);

  sim::FleetServerOptions options;
  options.devices = devices;
  options.round_duration = SimTime::from_seconds(20.0);
  options.round_deadline = SimTime::from_seconds(40.0);
  options.episode_length = SimTime::from_seconds(10.0);
  options.heartbeat_period = SimTime::from_seconds(2.0);
  options.lease_timeout = SimTime::from_seconds(5.0);
  options.upload_latency = SimTime::from_seconds(1.0);
  options.retry_backoff = SimTime::from_seconds(2.0);
  options.base_seed = seed;
  options.churn.depart_rate = 0.25;
  options.churn.straggle_rate = 0.3;
  options.churn.upload_fail_rate = 0.3;
  options.churn.rejoin_after_rounds = 1;
  options.snapshot_ring = ring_size;
  options.snapshot_prefix = ring_prefix;

  std::signal(SIGINT, request_stop);
  std::signal(SIGTERM, request_stop);

  sim::FleetServer server{workload::AppId::kFacebook, options, {}};
  if (server.restored()) {
    std::printf("fleet_serverd: restored round %zu from ring '%s' (ring size %zu)\n",
                server.round(), ring_prefix.c_str(), ring_size);
  } else {
    std::printf("fleet_serverd: cold start, ring '%s' (ring size %zu)\n",
                ring_prefix.c_str(), ring_size);
  }

  while ((rounds == 0 || server.round() < rounds) && !g_stop.load()) {
    server.run_round([](const sim::FleetServerRoundStats& rs) {
      std::printf("  round %zu: trained %zu, quorum %zu, late %zu, carried %zu, "
                  "departed %zu, retries %zu, lost %zu -> %zu global states "
                  "(reward %.3f, %.2f s)\n",
                  rs.round, rs.training_devices, rs.quorum, rs.late_merged,
                  rs.carried_late, rs.departures, rs.retries, rs.lost_uploads,
                  rs.global_states, rs.mean_reward, rs.wall_seconds);
      std::fflush(stdout);
    });
    if (sleep_ms > 0 && (rounds == 0 || server.round() < rounds)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
  }

  // SIGINT/SIGTERM or round budget: either way, drain cleanly.
  server.drain();
  const sim::FleetServerStats& stats = server.stats();
  std::printf("fleet_serverd: drained at round %zu (accepted %llu, retried %llu, "
              "lost %llu, late %llu, departures %llu, quarantined %zu)\n",
              server.round(), static_cast<unsigned long long>(stats.uploads_accepted),
              static_cast<unsigned long long>(stats.uploads_retried),
              static_cast<unsigned long long>(stats.uploads_lost),
              static_cast<unsigned long long>(stats.late_uploads_merged),
              static_cast<unsigned long long>(stats.departures),
              stats.snapshots_quarantined);

  if (!out_path.empty()) {
    if (server.global() == nullptr) {
      std::fprintf(stderr, "fleet_serverd: no global table yet, cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
    ByteWriter bytes;
    server.global()->serialize(bytes);
    std::FILE* f = std::fopen(out_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "fleet_serverd: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(bytes.data().data(), 1, bytes.size(), f);
    std::fclose(f);
    std::printf("fleet_serverd: wrote %zu canonical table bytes to %s\n", bytes.size(),
                out_path.c_str());
  }
  return 0;
}
