// quickstart - the five-minute tour of the library.
//
// Builds the Exynos 9810 model, runs a short Facebook session under stock
// schedutil, then trains the Next agent on the same workload and shows the
// power/thermal win at equal QoS. This is the paper's experiment in
// miniature.
#include <cstdio>

#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "workload/apps.hpp"

int main() {
  using namespace nextgov;

  std::puts("nextgov quickstart: Next (DATE 2020) on a simulated Galaxy Note 9\n");

  // 1. Every experiment needs a workload. The scenario library describes
  //    complete operating points (workload, duration, ambient, panel);
  //    app_scenario() is the paper-length single-app point. Factories keep
  //    sessions reproducible: the same seed replays the same behaviour.
  const auto app = workload::AppId::kFacebook;
  const sim::ScenarioSpec spec = sim::app_scenario(app);

  // 2. Baseline: stock schedutil for one paper-length session. Sessions
  //    run through the batch runner - a one-entry plan here, a whole
  //    scenario matrix in bench/scenario_matrix.
  sim::ExperimentConfig config = spec.experiment_config(sim::GovernorKind::kSchedutil, 42);
  sim::RunPlan baseline_plan;
  baseline_plan.add(spec.app_factory(), spec.name, config);
  const sim::SessionResult stock = std::move(sim::run_plan(baseline_plan).front());
  std::printf("[schedutil] avg power %.2f W | peak big temp %.1f C | avg FPS %.1f\n",
              stock.avg_power_w, stock.peak_temp_big_c, stock.avg_fps);

  // 3. Train Next online on the app (Section IV-B): the agent watches the
  //    25 ms frame window, learns Q-values over {freqs, FPS, target, power,
  //    temps}, and actuates per-cluster maxfreq caps every 100 ms.
  std::puts("\ntraining Next (online, simulated device time)...");
  sim::TrainingOptions train;
  train.max_duration = SimTime::from_seconds(1200.0);
  train.seed = 1042;
  const sim::TrainingResult trained = sim::train_next(app, core::NextConfig{}, train);
  std::printf("  %llu decisions, %zu states visited, mean reward %.3f%s\n",
              static_cast<unsigned long long>(trained.decisions), trained.states_visited,
              trained.final_mean_reward, trained.converged ? " (converged)" : "");

  // 4. Deploy the learned Q-table greedily ("fully trained", Section V).
  config = spec.experiment_config(sim::GovernorKind::kNext, 42);
  config.trained_table = &trained.table;
  sim::RunPlan deploy_plan;
  deploy_plan.add(spec.app_factory(), spec.name, config);
  const sim::SessionResult next = std::move(sim::run_plan(deploy_plan).front());
  std::printf("\n[Next]      avg power %.2f W | peak big temp %.1f C | avg FPS %.1f\n",
              next.avg_power_w, next.peak_temp_big_c, next.avg_fps);

  std::printf("\nresult: %.1f%% power saved, %.1f C cooler peak, FPS %.1f -> %.1f\n",
              100.0 * (1.0 - next.avg_power_w / stock.avg_power_w),
              stock.peak_temp_big_c - next.peak_temp_big_c, stock.avg_fps, next.avg_fps);
  std::puts("\nnext steps: examples/session_player for any app/governor combination,");
  std::puts("bench/ for the full paper reproduction, DESIGN.md for the architecture.");
  return 0;
}
