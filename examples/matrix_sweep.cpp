// matrix_sweep - run a scenario matrix sharded across worker processes and
// persist the merged results canonically.
//
//   usage: example_matrix_sweep [--processes N] [--workers N] [--out PATH]
//                               [--kill-shard K] [--governor NAME]
//
// The matrix is fixed (4 library scenarios x 3 seeds = 12 cells) so two
// invocations differing only in --processes produce byte-for-byte identical
// --out files - that is the bit-identity contract of run_plan_sharded(),
// and the CI sharded-sweep smoke asserts it with a plain `cmp`:
//
//   example_matrix_sweep --processes 1 --out a.bin
//   example_matrix_sweep --processes 2 --out b.bin
//   cmp a.bin b.bin
//
// --kill-shard K makes shard K's worker SIGKILL itself mid-stream
// (MultiprocFaultPlan), exercising the degrade-never-wedge recovery path:
// the parent re-runs the shard in-process and the output file must STILL
// compare equal - the CI kill-a-worker smoke step.
//
// The --out file is the concatenation of every cell's wire encoding
// (sim::serialize_session_result) in cell order, prefixed with the cell
// count - canonical bytes, so `cmp` is a complete equality check.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/parse.hpp"
#include "sim/multiproc.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace nextgov;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--processes N] [--workers N] [--out PATH] [--kill-shard K]\n"
               "          [--governor schedutil|performance|powersave|ondemand|intqos|next]\n"
               "  N = 0 forks one worker per hardware thread (default 1 = in-process)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  sim::MultiprocOptions mp;
  mp.processes = 1;
  std::string out_path;
  std::string governor_name = "schedutil";
  for (int i = 1; i < argc; ++i) {
    const auto flag = [&](const char* name) {
      return std::strcmp(argv[i], name) == 0 && i + 1 < argc;
    };
    if (flag("--processes") && parse_count(argv[++i], mp.processes)) continue;
    if (flag("--workers") && parse_count(argv[++i], mp.workers)) continue;
    if (flag("--kill-shard") && parse_count(argv[++i], mp.faults.kill_shard)) continue;
    if (flag("--governor")) {
      governor_name = argv[++i];
      continue;
    }
    if (flag("--out")) {
      out_path = argv[++i];
      continue;
    }
    return usage(argv[0]);
  }

  sim::GovernorKind governor;
  if (governor_name == "schedutil") governor = sim::GovernorKind::kSchedutil;
  else if (governor_name == "performance") governor = sim::GovernorKind::kPerformance;
  else if (governor_name == "powersave") governor = sim::GovernorKind::kPowersave;
  else if (governor_name == "ondemand") governor = sim::GovernorKind::kOndemand;
  else if (governor_name == "intqos") governor = sim::GovernorKind::kIntQos;
  else if (governor_name == "next") governor = sim::GovernorKind::kNext;
  else return usage(argv[0]);

  // 4 scenarios x 3 seeds = 12 cells: the paper session plus a multi-app
  // interleaving, a bursty-background point and a hot-ambient game.
  sim::ScenarioMatrix matrix;
  matrix.add("fig1_session")
      .add("social_gaming")
      .add("spotify_bursty")
      .add("pubg_hot35")
      .seeds(3);

  std::printf("sweeping %zu cells under %s, processes=%zu workers=%zu%s\n",
              matrix.size(), governor_name.c_str(), mp.processes, mp.workers,
              mp.faults.kill_shard == sim::kNoShard
                  ? ""
                  : " (injecting a worker kill)");

  sim::ShardReport report;
  const std::vector<sim::SessionResult> results = matrix.run(governor, mp, &report);

  std::printf("%-36s %11s %10s %8s\n", "cell", "avg_power_W", "peak_T_C", "avg_FPS");
  for (const auto& r : results) {
    std::printf("%-36s %11.3f %10.1f %8.1f\n", r.app.c_str(), r.avg_power_w,
                r.peak_temp_big_c, r.avg_fps);
  }
  std::printf("%zu worker processes, %llu frames / %llu payload bytes merged",
              report.processes, static_cast<unsigned long long>(report.frames),
              static_cast<unsigned long long>(report.bytes));
  if (report.recovered_shards() > 0) {
    std::printf(", %zu shard(s) recovered in-process:\n", report.recovered_shards());
    for (const auto& s : report.shards) {
      if (s.recovered) std::printf("  shard %zu: %s\n", s.shard, s.failure.c_str());
    }
  } else {
    std::printf("\n");
  }

  if (!out_path.empty()) {
    ByteWriter out;
    out.u64(results.size());
    for (const auto& r : results) sim::serialize_session_result(r, out);
    std::FILE* f = std::fopen(out_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "matrix_sweep: cannot open '%s' for writing\n", out_path.c_str());
      return 1;
    }
    const bool ok = std::fwrite(out.data().data(), 1, out.size(), f) == out.size();
    if (std::fclose(f) != 0 || !ok) {
      std::fprintf(stderr, "matrix_sweep: short write to '%s'\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote %zu canonical result bytes to %s\n", out.size(), out_path.c_str());
  }
  return 0;
}
