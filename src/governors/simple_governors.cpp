#include "governors/simple_governors.hpp"

#include "common/error.hpp"

namespace nextgov::governors {

void PerformanceGovernor::control(const Observation& /*obs*/, soc::Soc& soc) {
  for (auto& cluster : soc.clusters()) cluster.set_freq_index(cluster.max_cap_index());
}

void PowersaveGovernor::control(const Observation& /*obs*/, soc::Soc& soc) {
  for (auto& cluster : soc.clusters()) cluster.set_freq_index(cluster.min_cap_index());
}

OndemandGovernor::OndemandGovernor(double up_threshold, SimTime period)
    : up_threshold_{up_threshold}, period_{period} {
  require(up_threshold > 0.0 && up_threshold <= 1.0, "ondemand threshold in (0,1]");
  require(period.us() > 0, "ondemand period must be positive");
}

void OndemandGovernor::control(const Observation& obs, soc::Soc& soc) {
  for (std::size_t i = 0; i < soc.cluster_count(); ++i) {
    auto& cluster = soc.cluster(i);
    const auto& c = obs.clusters[i];
    if (c.busy_hot > up_threshold_) {
      cluster.set_freq_index(cluster.max_cap_index());
    } else if (cluster.freq_index() > cluster.min_cap_index()) {
      // Step down while the lower OPP would still keep utilization below
      // the threshold (ondemand's "find lowest sufficient frequency").
      const double projected =
          c.busy_hot * (cluster.frequency() / cluster.opps()[cluster.freq_index() - 1].frequency);
      if (projected < up_threshold_) cluster.set_freq_index(cluster.freq_index() - 1);
    }
  }
}

}  // namespace nextgov::governors
