// simple_governors.hpp - trivial baselines and test fixtures.
//
// performance / powersave pin every cluster at its cap ends; they bound the
// achievable envelope (and provide PPDW_best / PPDW_worst operating points
// for Fig. 4's worst-case series). ondemand is the classic load-threshold
// governor, included as an extra baseline for the ablation benches.
#pragma once

#include "governors/governor.hpp"

namespace nextgov::governors {

/// Pins every cluster to its maxfreq cap.
class PerformanceGovernor final : public FreqGovernor {
 public:
  [[nodiscard]] SimTime period() const override { return SimTime::from_ms(100); }
  void control(const Observation& obs, soc::Soc& soc) override;
  [[nodiscard]] std::string_view name() const override { return "performance"; }
};

/// Pins every cluster to its lowest OPP.
class PowersaveGovernor final : public FreqGovernor {
 public:
  [[nodiscard]] SimTime period() const override { return SimTime::from_ms(100); }
  void control(const Observation& obs, soc::Soc& soc) override;
  [[nodiscard]] std::string_view name() const override { return "powersave"; }
};

/// Classic ondemand: jump to max above the up-threshold, otherwise step
/// down one OPP when utilization would stay below the threshold.
class OndemandGovernor final : public FreqGovernor {
 public:
  explicit OndemandGovernor(double up_threshold = 0.80, SimTime period = SimTime::from_ms(50));
  [[nodiscard]] SimTime period() const override { return period_; }
  void control(const Observation& obs, soc::Soc& soc) override;
  [[nodiscard]] std::string_view name() const override { return "ondemand"; }

 private:
  double up_threshold_;
  SimTime period_;
};

/// Meta-governor that never touches the caps: the stock configuration.
class NoMetaGovernor final : public MetaGovernor {
 public:
  [[nodiscard]] SimTime period() const override { return SimTime::from_ms(1000); }
  void control(const Observation&, soc::Soc&) override {}
  [[nodiscard]] std::string_view name() const override { return "none"; }
};

}  // namespace nextgov::governors
