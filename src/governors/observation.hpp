// observation.hpp - what a governor is allowed to see.
//
// Governors (including the application-layer Next agent) observe the system
// only through this snapshot: sensor readings, the sliding frame rate, and
// per-cluster utilization/frequency state - exactly the quantities available
// on a stock Android device via sysfs, SurfaceFlinger and the fuel gauge.
// They never see simulator-internal ground truth (true power before sensor
// quantization, app phase, future workload).
#pragma once

#include <cstddef>
#include <vector>

#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "soc/sensors.hpp"

namespace nextgov::governors {

/// Per-cluster view (indices match soc::Soc cluster order: big, LITTLE, GPU).
struct ClusterObservation {
  std::size_t freq_index{0};   ///< current operating index
  std::size_t cap_index{0};    ///< current maxfreq cap index
  std::size_t opp_count{0};    ///< size of the OPP table
  KiloHertz frequency;         ///< current operating frequency
  KiloHertz max_frequency;     ///< highest OPP (for capacity scaling)
  double busy_hot{0.0};        ///< busiest-PE busy fraction at current freq
  double busy_avg{0.0};        ///< cluster-mean busy fraction at current freq
};

struct Observation {
  SimTime now;
  std::vector<ClusterObservation> clusters;
  Fps fps;                      ///< front-buffer update rate, trailing 1 s
  double drop_rate{0.0};        ///< missed-deadline VSyncs/s, trailing 1 s
  soc::SensorReadings sensors;  ///< quantized temperature + power readings
};

}  // namespace nextgov::governors
