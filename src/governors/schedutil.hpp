// schedutil.hpp - the stock Android/Linux frequency governor.
//
// Reimplements the control law of the kernel's schedutil governor (the only
// governor on the paper's Note 9, Section III-A) for the two CPU clusters:
//
//   f_next = headroom * f_max * util_cap ,  util_cap = busy * f_cur / f_max
//
// with headroom = 1.25 ("util + util/4" in the kernel) and the next OPP at
// or above f_next selected. Utilization tracking mimics PELT's asymmetry:
// rises take effect immediately, decays are exponentially smoothed.
//
// The Mali GPU uses the vendor's step governor: utilization above a high
// watermark steps one OPP up, below a low watermark steps one down.
#pragma once

#include <vector>

#include "governors/governor.hpp"

namespace nextgov::governors {

struct SchedutilParams {
  double headroom{1.25};           ///< kernel's 1.25x margin
  double down_smoothing{0.30};     ///< EMA weight for utilization decay
  double gpu_up_threshold{0.90};   ///< Mali step-up watermark
  double gpu_down_threshold{0.60}; ///< Mali step-down watermark
  SimTime period{SimTime::from_ms(20)};  ///< rate limit / evaluation period
};

class SchedutilGovernor final : public FreqGovernor {
 public:
  explicit SchedutilGovernor(SchedutilParams params = {});

  [[nodiscard]] SimTime period() const override { return params_.period; }
  void control(const Observation& obs, soc::Soc& soc) override;
  void reset() override;
  [[nodiscard]] std::string_view name() const override { return "schedutil"; }

 private:
  SchedutilParams params_;
  std::vector<double> util_ema_;  ///< per-cluster smoothed capacity-utilization
};

}  // namespace nextgov::governors
