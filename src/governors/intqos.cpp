#include "governors/intqos.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "soc/soc.hpp"

namespace nextgov::governors {

IntQosGovernor::IntQosGovernor(IntQosParams params) : params_{params} {
  require(params_.period.us() > 0, "IntQos period must be positive");
  require(params_.rls_forgetting > 0.5 && params_.rls_forgetting <= 1.0,
          "RLS forgetting factor in (0.5, 1]");
  reset();
}

void IntQosGovernor::reset() {
  fps_avg_ = 0.0;
  fps_avg_init_ = false;
  // Mild physical prior: a/b chosen so a 2 GHz CPU + 0.5 GHz GPU frame
  // costs ~12 ms; keeps early decisions sane until RLS converges.
  theta_ = {4.0e-3, 3.5e-3, 1.0e-3};  // seconds per (1/GHz), and offset
  p_ = {1e2, 0, 0, 0, 1e2, 0, 0, 0, 1e2};
  samples_ = 0;
}

void IntQosGovernor::rls_update(const std::array<double, 3>& x, double y) noexcept {
  // Standard RLS with forgetting factor lambda.
  const double lambda = params_.rls_forgetting;
  // k = P x / (lambda + x' P x)
  std::array<double, 3> px{};
  for (int r = 0; r < 3; ++r) {
    px[static_cast<std::size_t>(r)] = p_[static_cast<std::size_t>(r * 3)] * x[0] +
                                      p_[static_cast<std::size_t>(r * 3 + 1)] * x[1] +
                                      p_[static_cast<std::size_t>(r * 3 + 2)] * x[2];
  }
  const double denom = lambda + x[0] * px[0] + x[1] * px[1] + x[2] * px[2];
  std::array<double, 3> k{px[0] / denom, px[1] / denom, px[2] / denom};
  const double err = y - (theta_[0] * x[0] + theta_[1] * x[1] + theta_[2] * x[2]);
  for (std::size_t i = 0; i < 3; ++i) theta_[i] += k[i] * err;
  // P = (P - k x' P) / lambda
  std::array<double, 9> p_new{};
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      p_new[r * 3 + c] = (p_[r * 3 + c] - k[r] * px[c]) / lambda;
    }
  }
  p_ = p_new;
  // Keep the physical coefficients non-negative (work cannot be negative).
  theta_[0] = std::max(theta_[0], 0.0);
  theta_[1] = std::max(theta_[1], 0.0);
  theta_[2] = std::max(theta_[2], 0.0);
  ++samples_;
}

double IntQosGovernor::predict_frame_time(double f_cpu_ghz, double f_gpu_ghz) const noexcept {
  return theta_[0] / f_cpu_ghz + theta_[1] / f_gpu_ghz + theta_[2];
}

void IntQosGovernor::control(const Observation& obs, soc::Soc& soc) {
  const double fps = obs.fps.value();
  if (!fps_avg_init_) {
    fps_avg_ = std::max(fps, params_.min_target_fps);
    fps_avg_init_ = true;
  } else {
    fps_avg_ += params_.fps_window_alpha * (fps - fps_avg_);
  }

  auto& big = soc.big();
  auto& gpu = soc.gpu();

  // Learn the frame-time model from the observed operating point whenever
  // the pipeline is actually rendering.
  if (fps >= 5.0) {
    const std::array<double, 3> x{1.0 / obs.clusters[soc::ClusterIndex::kBig].frequency.ghz(),
                                  1.0 / obs.clusters[soc::ClusterIndex::kGpu].frequency.ghz(),
                                  1.0};
    rls_update(x, 1.0 / fps);
  }

  const double target = std::max(params_.min_target_fps, fps_avg_);
  const double budget = 1.0 / target;

  // Exhaustive search over the (big, GPU) OPP grid - 18 x 6 points - for
  // the cheapest pair predicted to meet the frame-time budget.
  double best_cost = 0.0;
  std::size_t best_cpu = big.opps().size() - 1;
  std::size_t best_gpu = gpu.opps().size() - 1;
  bool found = false;
  for (std::size_t ci = 0; ci < big.opps().size(); ++ci) {
    const auto& copp = big.opps()[ci];
    for (std::size_t gi = 0; gi < gpu.opps().size(); ++gi) {
      const auto& gopp = gpu.opps()[gi];
      const double t = predict_frame_time(copp.frequency.ghz(), gopp.frequency.ghz());
      if (t > budget) continue;
      const double vc = copp.voltage.value();
      const double vg = gopp.voltage.value();
      const double cost = vc * vc * copp.frequency.ghz() +
                          params_.gpu_cost_weight * vg * vg * gopp.frequency.ghz();
      if (!found || cost < best_cost) {
        best_cost = cost;
        best_cpu = ci;
        best_gpu = gi;
        found = true;
      }
    }
  }
  // Infeasible budget -> run flat out (the original falls back to max).
  big.set_max_cap_index(best_cpu);
  gpu.set_max_cap_index(best_gpu);
}

}  // namespace nextgov::governors
