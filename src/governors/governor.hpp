// governor.hpp - the two governor roles of the reproduced stack.
//
// The paper's Next agent runs *in the application layer* and actuates only
// the per-cluster maxfreq caps; the kernel's own governor keeps picking the
// operating point below the cap ("Setting the maxfreq provides the
// flexibility for the PEs to operate within the range", Section IV-A). We
// mirror that split:
//
//   FreqGovernor - kernel-level: selects each cluster's operating index
//                  within [min_cap, max_cap] every period (schedutil & co).
//   MetaGovernor - application-level: adjusts the caps at its own (slower)
//                  period (Next, Int. QoS PM). The stock baseline is simply
//                  "no meta governor".
#pragma once

#include <string_view>

#include "common/sim_time.hpp"
#include "governors/observation.hpp"
#include "soc/soc.hpp"

namespace nextgov::governors {

class FreqGovernor {
 public:
  virtual ~FreqGovernor() = default;
  /// How often control() runs (engine rounds to whole steps).
  [[nodiscard]] virtual SimTime period() const = 0;
  /// Picks operating indices; must respect cluster caps (Cluster clamps).
  virtual void control(const Observation& obs, soc::Soc& soc) = 0;
  virtual void reset() {}
  [[nodiscard]] virtual std::string_view name() const = 0;
};

class MetaGovernor {
 public:
  virtual ~MetaGovernor() = default;
  /// How often control() runs (Next: 100 ms per Section IV-B).
  [[nodiscard]] virtual SimTime period() const = 0;
  /// Optional high-rate observation tap (Next samples FPS every 25 ms);
  /// return SimTime::zero() when unused. Must return the same value for
  /// the governor's lifetime: the engine caches it at construction to keep
  /// virtual dispatch out of the 1 ms step.
  [[nodiscard]] virtual SimTime sample_period() const { return SimTime::zero(); }
  virtual void on_sample(const Observation& /*obs*/) {}
  /// Adjusts cluster caps.
  virtual void control(const Observation& obs, soc::Soc& soc) = 0;
  virtual void reset() {}
  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace nextgov::governors
