#include "governors/schedutil.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace nextgov::governors {

SchedutilGovernor::SchedutilGovernor(SchedutilParams params) : params_{params} {
  require(params_.headroom >= 1.0, "schedutil headroom must be >= 1");
  require(params_.period.us() > 0, "schedutil period must be positive");
  require(params_.gpu_down_threshold < params_.gpu_up_threshold,
          "GPU watermarks must satisfy down < up");
}

void SchedutilGovernor::reset() { util_ema_.clear(); }

void SchedutilGovernor::control(const Observation& obs, soc::Soc& soc) {
  if (util_ema_.size() != obs.clusters.size()) util_ema_.assign(obs.clusters.size(), 0.0);

  for (std::size_t i = 0; i < soc.cluster_count(); ++i) {
    auto& cluster = soc.cluster(i);
    const auto& c = obs.clusters[i];
    // Capacity-invariant utilization of the busiest PE (what PELT tracks).
    const double util_cap = std::clamp(c.busy_hot * (c.frequency / c.max_frequency), 0.0, 1.0);
    // Instant rise, smoothed decay.
    if (util_cap >= util_ema_[i]) {
      util_ema_[i] = util_cap;
    } else {
      util_ema_[i] += params_.down_smoothing * (util_cap - util_ema_[i]);
    }

    if (cluster.kind() == soc::ClusterKind::kGpu) {
      // Mali step governor on raw busy fraction at the current clock.
      if (c.busy_hot > params_.gpu_up_threshold) {
        cluster.set_freq_index(std::min(cluster.freq_index() + 1, cluster.max_cap_index()));
      } else if (c.busy_hot < params_.gpu_down_threshold && cluster.freq_index() > 0) {
        cluster.set_freq_index(cluster.freq_index() - 1);
      }
      continue;
    }

    const KiloHertz target = params_.headroom * util_ema_[i] * c.max_frequency;
    cluster.request_frequency(target);
  }
}

}  // namespace nextgov::governors
