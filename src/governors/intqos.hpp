// intqos.hpp - reimplementation of "Int. QoS PM" (Pathania et al., DAC'14),
// the paper's state-of-the-art comparison point.
//
// The original is an integrated CPU-GPU power manager for 3D mobile games:
//   1. the target FPS is the *average* frame rate observed over a window
//      (the paper criticizes exactly this averaging in Section II);
//   2. a frame-time model t(f_cpu, f_gpu) = a/f_cpu + b/f_gpu + c is
//      identified online;
//   3. every period the (f_cpu, f_gpu) pair with the lowest power-cost that
//      still satisfies t <= 1/target is applied.
// We fit (a, b, c) with recursive least squares over observed
// (frequency, frame time) samples and use the V^2*f proxy from the OPP
// voltages as the cost - the same information the original derives from its
// offline power model. LITTLE is not managed (the original targets the
// big CPU + GPU of its platform), and the scheme is only meaningful for
// continuously rendering workloads, i.e. games - matching the paper's
// statement that it "could not be extended to all applications".
#pragma once

#include <array>

#include "governors/governor.hpp"

namespace nextgov::governors {

struct IntQosParams {
  SimTime period{SimTime::from_ms(100)};   ///< control period
  double fps_window_alpha{0.05};           ///< EMA weight (~2 s at 100 ms)
  double rls_forgetting{0.985};            ///< RLS forgetting factor
  double min_target_fps{15.0};             ///< floor so menus don't stall games
  double gpu_cost_weight{1.0};             ///< relative GPU power weight in cost
};

class IntQosGovernor final : public MetaGovernor {
 public:
  explicit IntQosGovernor(IntQosParams params = {});

  [[nodiscard]] SimTime period() const override { return params_.period; }
  void control(const Observation& obs, soc::Soc& soc) override;
  void reset() override;
  [[nodiscard]] std::string_view name() const override { return "intqos"; }

  /// Current averaged FPS target (exposed for tests).
  [[nodiscard]] double target_fps() const noexcept { return fps_avg_; }
  /// Current frame-time model coefficients {a, b, c} (exposed for tests).
  [[nodiscard]] std::array<double, 3> model() const noexcept { return theta_; }

 private:
  void rls_update(const std::array<double, 3>& x, double y) noexcept;
  [[nodiscard]] double predict_frame_time(double f_cpu_ghz, double f_gpu_ghz) const noexcept;

  IntQosParams params_;
  double fps_avg_{0.0};
  bool fps_avg_init_{false};
  std::array<double, 3> theta_{};       ///< [a, b, c]
  std::array<double, 9> p_;             ///< RLS covariance, row-major 3x3
  std::size_t samples_{0};
};

}  // namespace nextgov::governors
