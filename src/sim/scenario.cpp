#include "sim/scenario.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <utility>

#include "common/error.hpp"
#include "workload/phased_app.hpp"

namespace nextgov::sim {

namespace {

/// Saturating overlay of burst demand on top of the app's own load.
workload::BackgroundLoad overlay(const workload::BackgroundLoad& base,
                                 const workload::BackgroundLoad& boost) noexcept {
  const auto cap = [](double v) { return std::min(1.0, v); };
  return {cap(base.big_avg + boost.big_avg), cap(base.big_hot + boost.big_hot),
          cap(base.little_avg + boost.little_avg), cap(base.little_hot + boost.little_hot),
          cap(base.gpu_avg + boost.gpu_avg)};
}

/// Decorator adding the scenario's periodic background bursts to any
/// workload. Burst timing is a pure function of simulated time (the last
/// `burst_length` of every `period`), so the decorated app inherits the
/// inner app's determinism.
class BurstyBackgroundApp final : public workload::App {
 public:
  BurstyBackgroundApp(std::unique_ptr<workload::App> inner, BackgroundBurst burst)
      : inner_{std::move(inner)}, burst_{burst} {
    require(burst_.period.us() > 0, "background burst period must be positive");
    require(burst_.burst_length.us() > 0 && burst_.burst_length.us() <= burst_.period.us(),
            "background burst length must be in (0, period]");
  }

  void update(SimTime now, SimTime dt) override {
    inner_->update(now, dt);
    const std::int64_t phase = now.us() % burst_.period.us();
    in_burst_ = phase >= burst_.period.us() - burst_.burst_length.us();
  }
  [[nodiscard]] bool wants_frame(SimTime now) override { return inner_->wants_frame(now); }
  [[nodiscard]] render::FrameJob begin_frame(SimTime now) override {
    return inner_->begin_frame(now);
  }
  [[nodiscard]] workload::BackgroundLoad background() const override {
    return in_burst_ ? overlay(inner_->background(), burst_.boost) : inner_->background();
  }
  [[nodiscard]] std::string_view name() const override { return inner_->name(); }
  [[nodiscard]] std::string_view phase_name() const override {
    return in_burst_ ? "bg_burst" : inner_->phase_name();
  }

 private:
  std::unique_ptr<workload::App> inner_;
  BackgroundBurst burst_;
  bool in_burst_{false};
};

std::unique_ptr<workload::PhasedApp> make_phased(workload::AppId id,
                                                 const std::optional<workload::UserModelParams>& user,
                                                 std::uint64_t seed) {
  workload::AppSpec spec = workload::spec_for(id);
  if (user.has_value()) spec.user = *user;
  return std::make_unique<workload::PhasedApp>(std::move(spec), Rng{seed});
}

std::unique_ptr<workload::App> make_scenario_app(const ScenarioSpec& spec, std::uint64_t seed) {
  std::unique_ptr<workload::App> app;
  if (spec.segments.size() == 1) {
    // Mirrors workload::make_app() seeding so a one-segment scenario equals
    // the plain catalog app.
    app = make_phased(spec.segments.front().app, spec.user_override, seed);
  } else {
    // Mirrors SessionApp's own per-segment seed expansion so a scenario
    // without a user override equals SessionApp(segments, seed).
    SplitMix64 seeder{seed};
    std::vector<std::unique_ptr<workload::PhasedApp>> apps;
    apps.reserve(spec.segments.size());
    for (const auto& seg : spec.segments) {
      apps.push_back(make_phased(seg.app, spec.user_override, seeder.next()));
    }
    app = std::make_unique<workload::SessionApp>(spec.segments, std::move(apps));
  }
  if (spec.burst.enabled) {
    app = std::make_unique<BurstyBackgroundApp>(std::move(app), spec.burst);
  }
  return app;
}

std::string format_axis_value(double v) {
  std::array<char, 32> buf{};
  std::snprintf(buf.data(), buf.size(), "%g", v);
  return std::string{buf.data()};
}

}  // namespace

SimTime ScenarioSpec::effective_duration() const noexcept {
  if (duration.us() > 0) return duration;
  SimTime total = SimTime::zero();
  for (const auto& seg : segments) total += seg.duration;
  return total;
}

AppFactory ScenarioSpec::app_factory() const {
  require(!segments.empty(), "scenario needs at least one segment");
  // Captured by value: the factory must stay pure and outlive the spec.
  ScenarioSpec copy = *this;
  return [copy = std::move(copy)](std::uint64_t seed) { return make_scenario_app(copy, seed); };
}

core::NextConfig adapt_next_config(core::NextConfig config, double refresh_hz,
                                   Celsius ambient) {
  config.ppdw_bounds.fps_max = std::max(config.ppdw_bounds.fps_max, refresh_hz);
  config.ppdw_bounds.ambient = ambient;
  return config;
}

ExperimentConfig ScenarioSpec::experiment_config(GovernorKind governor) const {
  return experiment_config(governor, base_seed);
}

ExperimentConfig ScenarioSpec::experiment_config(GovernorKind governor,
                                                 std::uint64_t seed) const {
  ExperimentConfig cfg;
  cfg.governor = governor;
  cfg.duration = effective_duration();
  cfg.seed = seed;
  cfg.ambient = ambient;
  cfg.refresh_hz = refresh_hz;
  cfg.record_period = record_period;
  cfg.next_config = adapt_next_config(cfg.next_config, refresh_hz, ambient);
  return cfg;
}

TrainingOptions ScenarioSpec::training_options(const TrainingOptions& base) const {
  TrainingOptions opts = base;
  opts.seed = base_seed;
  opts.ambient = ambient;
  opts.refresh_hz = refresh_hz;
  return opts;
}

// --- library ----------------------------------------------------------------

namespace {

ScenarioSpec fig1_session_spec() {
  ScenarioSpec s;
  s.name = "fig1_session";
  s.segments = {{workload::AppId::kHome, SimTime::from_seconds(30.0)},
                {workload::AppId::kFacebook, SimTime::from_seconds(120.0)},
                {workload::AppId::kSpotify, SimTime::from_seconds(130.0)}};
  s.base_seed = 1;
  return s;
}

ScenarioSpec fig1_variant(std::string name, double refresh_hz, double ambient_c) {
  ScenarioSpec s = fig1_session_spec();
  s.name = std::move(name);
  s.refresh_hz = refresh_hz;
  s.ambient = Celsius{ambient_c};
  return s;
}

ScenarioSpec social_gaming_spec() {
  // A gaming break inside a social session: the agent must survive the
  // social -> game thermal ramp and the game -> video cool-down, with two
  // app-launch FPS collapses mid-session.
  ScenarioSpec s;
  s.name = "social_gaming";
  s.segments = {{workload::AppId::kFacebook, SimTime::from_seconds(60.0)},
                {workload::AppId::kLineage, SimTime::from_seconds(150.0)},
                {workload::AppId::kYoutube, SimTime::from_seconds(60.0)}};
  s.base_seed = 11;
  return s;
}

ScenarioSpec commute_media_spec() {
  // The commute pattern: browse, then a long video, then screen-off-style
  // music - ending in the paper's Fig. 1 waste case (FPS ~0, CPUs warm).
  ScenarioSpec s;
  s.name = "commute_media";
  s.segments = {{workload::AppId::kWebBrowser, SimTime::from_seconds(60.0)},
                {workload::AppId::kYoutube, SimTime::from_seconds(120.0)},
                {workload::AppId::kSpotify, SimTime::from_seconds(90.0)}};
  s.base_seed = 12;
  return s;
}

ScenarioSpec binge_watch_spec() {
  // YouTube with an almost fully passive user: engagement bursts are rare
  // and short, so the 30 FPS cadence dominates and interactive seeking is
  // scarce - the user-model override axis of the scenario system.
  ScenarioSpec s;
  s.name = "binge_watch";
  s.segments = {{workload::AppId::kYoutube, SimTime::from_seconds(240.0)}};
  s.base_seed = 13;
  workload::UserModelParams user;
  user.engaged_mean_s = 2.0;
  user.engaged_sigma = 0.5;
  user.passive_mean_s = 45.0;
  user.passive_sigma = 0.6;
  user.start_engaged = true;
  s.user_override = user;
  return s;
}

ScenarioSpec spotify_bursty_spec() {
  // Spotify plus periodic heavy background bursts (library sync, podcast
  // prefetch): a utilization governor sees saturation spikes with zero
  // frames - the hardest version of the paper's Spotify waste case.
  ScenarioSpec s;
  s.name = "spotify_bursty";
  s.segments = {{workload::AppId::kSpotify, SimTime::from_seconds(150.0)}};
  s.base_seed = 14;
  s.burst.enabled = true;
  s.burst.period = SimTime::from_seconds(25.0);
  s.burst.burst_length = SimTime::from_seconds(5.0);
  s.burst.boost = {.big_avg = 0.45, .big_hot = 0.9, .little_avg = 0.35,
                   .little_hot = 0.7, .gpu_avg = 0.0};
  return s;
}

ScenarioSpec pubg_hot35_spec() {
  // Worst-case thermals: a sustained heavy game in a 35 C room (Section V's
  // upper ambient). Exercises the emergency throttle path.
  ScenarioSpec s;
  s.name = "pubg_hot35";
  s.segments = {{workload::AppId::kPubg, SimTime::from_seconds(300.0)}};
  s.ambient = Celsius{35.0};
  s.base_seed = 15;
  return s;
}

ScenarioSpec lineage_120hz_spec() {
  // A heavy game on a 120 Hz panel: the VSync ceiling doubles, so the
  // CPU/GPU cost per wall-second roughly doubles where the game can keep up.
  ScenarioSpec s;
  s.name = "lineage_120hz";
  s.segments = {{workload::AppId::kLineage, SimTime::from_seconds(300.0)}};
  s.refresh_hz = 120.0;
  s.base_seed = 16;
  return s;
}

using ScenarioFactory = ScenarioSpec (*)();

struct LibraryEntry {
  std::string_view name;
  std::string_view description;
  ScenarioFactory make;
};

constexpr std::size_t kLibrarySize = 12;

const std::array<LibraryEntry, kLibrarySize>& library() {
  static const std::array<LibraryEntry, kLibrarySize> kLibrary{{
      {"fig1_session", "the paper's Fig. 1 walk: home -> Facebook -> Spotify at 60 Hz, 21 C",
       +[] { return fig1_session_spec(); }},
      {"fig1_session_90hz", "Fig. 1 session on a 90 Hz panel",
       +[] { return fig1_variant("fig1_session_90hz", 90.0, 21.0); }},
      {"fig1_session_120hz", "Fig. 1 session on a 120 Hz panel",
       +[] { return fig1_variant("fig1_session_120hz", 120.0, 21.0); }},
      {"fig1_session_15c", "Fig. 1 session in a 15 C room (Section V's lower ambient)",
       +[] { return fig1_variant("fig1_session_15c", 60.0, 15.0); }},
      {"fig1_session_25c", "Fig. 1 session in a 25 C room",
       +[] { return fig1_variant("fig1_session_25c", 60.0, 25.0); }},
      {"fig1_session_35c", "Fig. 1 session in a 35 C room (Section V's upper ambient)",
       +[] { return fig1_variant("fig1_session_35c", 60.0, 35.0); }},
      {"social_gaming", "a gaming break inside a social session (thermal ramp + cool-down)",
       +[] { return social_gaming_spec(); }},
      {"commute_media", "browse, long video, then screen-off-style music (Fig. 1 waste case)",
       +[] { return commute_media_spec(); }},
      {"binge_watch", "YouTube with an almost fully passive user (user-model override)",
       +[] { return binge_watch_spec(); }},
      {"spotify_bursty", "Spotify plus periodic heavy background bursts at near-zero FPS",
       +[] { return spotify_bursty_spec(); }},
      {"pubg_hot35", "sustained heavy game in a 35 C room (emergency-throttle stress)",
       +[] { return pubg_hot35_spec(); }},
      {"lineage_120hz", "heavy game on a 120 Hz panel (doubled VSync ceiling)",
       +[] { return lineage_120hz_spec(); }},
  }};
  return kLibrary;
}

}  // namespace

std::span<const std::string_view> scenario_names() {
  static const std::array<std::string_view, kLibrarySize> kNames = [] {
    std::array<std::string_view, kLibrarySize> names{};
    for (std::size_t i = 0; i < kLibrarySize; ++i) names[i] = library()[i].name;
    return names;
  }();
  return kNames;
}

std::string_view scenario_description(std::string_view name) {
  for (const auto& entry : library()) {
    if (entry.name == name) return entry.description;
  }
  throw ConfigError("unknown scenario '" + std::string{name} + "'");
}

ScenarioSpec scenario(std::string_view name) {
  for (const auto& entry : library()) {
    if (entry.name == name) return entry.make();
  }
  std::string known;
  for (const auto& entry : library()) {
    if (!known.empty()) known += ", ";
    known += entry.name;
  }
  throw ConfigError("unknown scenario '" + std::string{name} + "' (library: " + known + ")");
}

ScenarioSpec app_scenario(workload::AppId app) {
  ScenarioSpec s;
  s.name = std::string{workload::to_string(app)};
  s.segments = {{app, workload::paper_session_length(app)}};
  return s;
}

// --- matrix -----------------------------------------------------------------

ScenarioMatrix& ScenarioMatrix::add(ScenarioSpec spec) {
  require(!spec.segments.empty(), "matrix scenario needs at least one segment");
  scenarios_.push_back(std::move(spec));
  return *this;
}

ScenarioMatrix& ScenarioMatrix::add(std::string_view library_name) {
  return add(scenario(library_name));
}

ScenarioMatrix& ScenarioMatrix::ambients(std::vector<double> celsius) {
  ambients_ = std::move(celsius);
  return *this;
}

ScenarioMatrix& ScenarioMatrix::refresh_rates(std::vector<double> hz) {
  for (double v : hz) require(v > 0.0, "refresh rate must be positive");
  refresh_rates_ = std::move(hz);
  return *this;
}

ScenarioMatrix& ScenarioMatrix::seeds(std::size_t count) {
  require(count >= 1, "matrix needs at least one seed per cell");
  seeds_ = count;
  return *this;
}

std::size_t ScenarioMatrix::size() const noexcept {
  const std::size_t a = std::max<std::size_t>(1, ambients_.size());
  const std::size_t r = std::max<std::size_t>(1, refresh_rates_.size());
  return scenarios_.size() * a * r * seeds_;
}

std::vector<ScenarioCell> ScenarioMatrix::expand() const {
  std::vector<ScenarioCell> cells;
  cells.reserve(size());
  const std::size_t ambient_count = std::max<std::size_t>(1, ambients_.size());
  const std::size_t refresh_count = std::max<std::size_t>(1, refresh_rates_.size());
  for (std::size_t si = 0; si < scenarios_.size(); ++si) {
    const ScenarioSpec& base = scenarios_[si];
    for (std::size_t ai = 0; ai < ambient_count; ++ai) {
      for (std::size_t ri = 0; ri < refresh_count; ++ri) {
        for (std::size_t ki = 0; ki < seeds_; ++ki) {
          ScenarioCell cell;
          cell.spec = base;
          cell.scenario_index = si;
          cell.ambient_index = ai;
          cell.refresh_index = ri;
          cell.seed_index = ki;
          if (!ambients_.empty()) cell.spec.ambient = Celsius{ambients_[ai]};
          if (!refresh_rates_.empty()) cell.spec.refresh_hz = refresh_rates_[ri];
          if (ki > 0) cell.spec.base_seed = derive_seed(base.base_seed, ki);
          cell.spec.name = base.name + "@" + format_axis_value(cell.spec.ambient.value()) +
                           "C@" + format_axis_value(cell.spec.refresh_hz) + "Hz#s" +
                           std::to_string(ki);
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  return cells;
}

std::size_t ScenarioMatrix::append_to(RunPlan& plan, GovernorKind governor) const {
  return append_cells(plan, expand(), governor);
}

RunPlan ScenarioMatrix::to_run_plan(GovernorKind governor) const {
  RunPlan plan;
  append_to(plan, governor);
  return plan;
}

std::size_t ScenarioMatrix::append_to(TrainingPlan& plan, const core::NextConfig& config,
                                      const TrainingOptions& base) const {
  return append_cells(plan, expand(), config, base);
}

std::vector<SessionResult> ScenarioMatrix::run(GovernorKind governor,
                                               const MultiprocOptions& options,
                                               ShardReport* report) const {
  return run_plan_sharded(to_run_plan(governor), options, report);
}

std::vector<TrainingResult> ScenarioMatrix::train(const core::NextConfig& config,
                                                  const TrainingOptions& base,
                                                  const MultiprocOptions& options,
                                                  ShardReport* report) const {
  TrainingPlan plan;
  append_to(plan, config, base);
  return run_training_plan_sharded(plan, options, report);
}

std::size_t append_cells(RunPlan& plan, std::span<const ScenarioCell> cells,
                         GovernorKind governor) {
  for (const auto& cell : cells) {
    plan.add(cell.spec.app_factory(), cell.spec.name,
             cell.spec.experiment_config(governor));
  }
  return cells.size();
}

std::size_t append_cells(TrainingPlan& plan, std::span<const ScenarioCell> cells,
                         const core::NextConfig& config, const TrainingOptions& base) {
  for (const auto& cell : cells) {
    plan.add(cell.spec.app_factory(), cell.spec.name,
             adapt_next_config(config, cell.spec.refresh_hz, cell.spec.ambient),
             cell.spec.training_options(base));
  }
  return cells.size();
}

}  // namespace nextgov::sim
