#include "sim/experiment.hpp"

#include <chrono>
#include <cstring>

#include "common/error.hpp"
#include "governors/intqos.hpp"
#include "governors/schedutil.hpp"
#include "governors/simple_governors.hpp"

namespace nextgov::sim {

std::string_view to_string(GovernorKind kind) noexcept {
  switch (kind) {
    case GovernorKind::kSchedutil: return "schedutil";
    case GovernorKind::kPerformance: return "performance";
    case GovernorKind::kPowersave: return "powersave";
    case GovernorKind::kOndemand: return "ondemand";
    case GovernorKind::kIntQos: return "intqos";
    case GovernorKind::kNext: return "next";
  }
  return "?";
}

namespace {

std::unique_ptr<governors::FreqGovernor> make_freq_governor(GovernorKind kind) {
  switch (kind) {
    case GovernorKind::kPerformance: return std::make_unique<governors::PerformanceGovernor>();
    case GovernorKind::kPowersave: return std::make_unique<governors::PowersaveGovernor>();
    case GovernorKind::kOndemand: return std::make_unique<governors::OndemandGovernor>();
    // schedutil underlies the stock config and both meta governors.
    case GovernorKind::kSchedutil:
    case GovernorKind::kIntQos:
    case GovernorKind::kNext: return std::make_unique<governors::SchedutilGovernor>();
  }
  throw ConfigError("unknown governor kind");
}

std::unique_ptr<governors::MetaGovernor> make_meta_governor(const ExperimentConfig& config,
                                                            const soc::Soc& soc) {
  switch (config.governor) {
    case GovernorKind::kIntQos: return std::make_unique<governors::IntQosGovernor>();
    case GovernorKind::kNext: {
      auto agent = core::make_next_agent(soc, config.next_config, config.seed ^ 0xa9e27);
      if (config.trained_table != nullptr) {
        agent->set_q_table(*config.trained_table);
        agent->set_mode(core::AgentMode::kDeployed);
      } else {
        agent->set_mode(config.next_mode);
      }
      return agent;
    }
    default: return nullptr;
  }
}

}  // namespace

std::unique_ptr<Engine> make_engine(AppFactory app_factory, const ExperimentConfig& config) {
  require(static_cast<bool>(app_factory), "make_engine needs an app factory");
  auto soc = soc::make_exynos9810();
  auto meta = make_meta_governor(config, soc);
  EngineConfig engine_config;
  engine_config.ambient = config.ambient;
  engine_config.refresh_hz = config.refresh_hz;
  engine_config.record_period = config.record_period;
  return std::make_unique<Engine>(std::move(soc), app_factory(config.seed),
                                  make_freq_governor(config.governor), std::move(meta),
                                  engine_config);
}

SessionResult summarize(const Engine& engine, std::string app_name, std::string governor_name) {
  SessionResult r;
  r.app = std::move(app_name);
  r.governor = std::move(governor_name);
  r.duration_s = engine.now().seconds();
  const auto& totals = engine.totals();
  r.avg_power_w = totals.power_w.mean();
  r.peak_power_w = totals.power_w.max();
  r.avg_temp_big_c = totals.temp_big_c.mean();
  r.peak_temp_big_c = totals.temp_big_c.max();
  r.avg_temp_device_c = totals.temp_device_c.mean();
  r.peak_temp_device_c = totals.temp_device_c.max();
  r.avg_fps = engine.average_fps();
  r.energy_j = totals.energy_j;
  r.frames_presented = totals.frames_presented;
  r.frames_dropped = totals.frames_dropped;
  const auto ppdw_series = engine.recorder().column(&Sample::ppdw);
  r.avg_ppdw = mean_of(ppdw_series);
  r.series = engine.recorder().samples();
  return r;
}

bool bit_identical(const SessionResult& a, const SessionResult& b) noexcept {
  if (a.app != b.app || a.governor != b.governor || a.duration_s != b.duration_s ||
      a.avg_power_w != b.avg_power_w || a.peak_power_w != b.peak_power_w ||
      a.avg_temp_big_c != b.avg_temp_big_c || a.peak_temp_big_c != b.peak_temp_big_c ||
      a.avg_temp_device_c != b.avg_temp_device_c ||
      a.peak_temp_device_c != b.peak_temp_device_c || a.avg_fps != b.avg_fps ||
      a.energy_j != b.energy_j || a.frames_presented != b.frames_presented ||
      a.frames_dropped != b.frames_dropped || a.avg_ppdw != b.avg_ppdw ||
      a.series.size() != b.series.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    if (std::memcmp(&a.series[i], &b.series[i], sizeof(Sample)) != 0) return false;
  }
  return true;
}

SessionResult run_session(AppFactory app_factory, std::string app_name,
                          const ExperimentConfig& config) {
  auto engine = make_engine(std::move(app_factory), config);
  engine->run(config.duration);
  return summarize(*engine, std::move(app_name), std::string{to_string(config.governor)});
}

SessionResult run_app_session(workload::AppId app, const ExperimentConfig& config) {
  return run_session(
      [app](std::uint64_t seed) { return workload::make_app(app, seed); },
      std::string{workload::to_string(app)}, config);
}

std::unique_ptr<Engine> make_training_engine(const AppFactory& app_factory,
                                             const core::NextConfig& config,
                                             const TrainingOptions& options) {
  ExperimentConfig exp;
  exp.governor = GovernorKind::kNext;
  exp.seed = options.seed;
  exp.ambient = options.ambient;
  exp.refresh_hz = options.refresh_hz;
  exp.next_config = config;
  exp.next_mode = core::AgentMode::kTraining;

  auto engine = make_engine(app_factory, exp);
  if (options.initial_table != nullptr) {
    // Warm start (federated merge rounds): resume learning from the given
    // aggregate instead of a cold table. Mode stays kTraining.
    auto* agent = dynamic_cast<core::NextAgent*>(engine->meta());
    NEXTGOV_ASSERT(agent != nullptr);
    agent->set_q_table(*options.initial_table);
  }
  return engine;
}

void TrainingConvergence::on_chunk(std::size_t states_now, std::uint64_t decisions,
                                   double trained_s) noexcept {
  settled_chunks = (states_now - prev_states <= 1) ? settled_chunks + 1 : 0;
  prev_states = states_now;
  // The TD-EMA detector alone is dominated by reward noise and the
  // epsilon schedule; coverage settling is what actually scales with
  // the discretization (Fig. 6). Require both a minimum learning
  // volume and a sustained stop in state discovery.
  if (!converged && decisions > 2000 && settled_chunks >= kCoverageSettleChunks) {
    converged = true;
    sim_seconds_at_convergence = trained_s;
  }
}

TrainingResult make_training_result(const core::NextAgent& agent,
                                    const TrainingConvergence& convergence,
                                    SimTime trained, double wall_seconds) {
  return TrainingResult{agent.q_table(), convergence.converged,
                        convergence.converged ? convergence.sim_seconds_at_convergence
                                              : trained.seconds(),
                        wall_seconds, agent.decisions(), agent.mean_reward(),
                        agent.q_table().state_count()};
}

TrainingResult train_next_on(AppFactory app_factory, const core::NextConfig& config,
                             const TrainingOptions& options) {
  require(static_cast<bool>(app_factory), "train_next_on needs an app factory");
  auto engine = make_training_engine(app_factory, config, options);
  auto* agent = dynamic_cast<core::NextAgent*>(engine->meta());
  NEXTGOV_ASSERT(agent != nullptr);

  const auto wall_start = std::chrono::steady_clock::now();
  SimTime trained = SimTime::zero();
  std::uint64_t episode = 0;
  TrainingConvergence convergence;

  while (trained < options.max_duration) {
    SimTime episode_left = options.episode_length;
    while (episode_left.us() > 0 && trained < options.max_duration) {
      const SimTime chunk = std::min(kTrainingCheckChunk, episode_left);
      engine->run(chunk);
      trained += chunk;
      episode_left = episode_left - chunk;
      convergence.on_chunk(agent->q_table().state_count(), agent->decisions(),
                           trained.seconds());
      if (convergence.converged && options.stop_at_convergence) break;
    }
    if (convergence.converged && options.stop_at_convergence) break;
    ++episode;
    // User re-opens the app: fresh app instance + cold thermal state, but
    // the learned Q-table persists (Section IV-B).
    engine->reset_session(app_factory(options.seed + episode + 1));
  }
  const auto wall_end = std::chrono::steady_clock::now();

  return make_training_result(*agent, convergence, trained,
                              std::chrono::duration<double>(wall_end - wall_start).count());
}

TrainingResult train_next(workload::AppId app, const core::NextConfig& config,
                          const TrainingOptions& options) {
  return train_next_on([app](std::uint64_t seed) { return workload::make_app(app, seed); },
                       config, options);
}

}  // namespace nextgov::sim
