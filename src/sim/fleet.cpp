#include "sim/fleet.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include "common/error.hpp"

namespace nextgov::sim {

namespace {

/// One shard's last upload to the global server.
struct Upload {
  rl::QTable table;
  std::size_t round{0};
};

/// Copy of `table` carrying its action values and tried masks but no
/// visit mass. Devices warm-start from this, so a round's shard merge
/// counts historical visit mass exactly once - via the previous aggregate
/// itself - instead of once per device (which would inflate it by the
/// shard size every round and swamp the staleness weighting).
rl::QTable strip_visits(const rl::QTable& table) {
  rl::QTable out{table.action_count()};
  for (const auto& [key, e] : table.entries()) {
    for (std::size_t a = 0; a < table.action_count() && a < 32; ++a) {
      if ((e.tried & (1u << a)) != 0) out.set_q(key, a, e.q[a]);
    }
  }
  return out;
}

/// Staleness-weighted merge of the uploads the server has seen so far,
/// aged relative to `current_round`.
rl::QTable server_aggregate(const std::vector<std::optional<Upload>>& uploads,
                            std::size_t current_round,
                            const rl::StalenessMergePolicy& policy) {
  std::vector<const rl::QTable*> tables;
  std::vector<double> staleness;
  for (const auto& upload : uploads) {
    if (!upload.has_value()) continue;
    tables.push_back(&upload->table);
    staleness.push_back(static_cast<double>(current_round - upload->round));
  }
  NEXTGOV_ASSERT(!tables.empty());
  return rl::merge_q_tables(tables, staleness, policy);
}

}  // namespace

FleetResult train_fleet(AppFactory app_factory, const FleetOptions& options,
                        const RunnerOptions& runner, const FleetProgressFn& progress) {
  require(static_cast<bool>(app_factory), "train_fleet needs an app factory");
  require(options.devices > 0, "train_fleet needs at least one device");
  require(options.shards > 0, "train_fleet needs at least one shard");
  require(options.shards <= options.devices, "train_fleet: more shards than devices");
  require(options.rounds > 0, "train_fleet needs at least one round");
  require(options.sync_spread > 0, "train_fleet: sync_spread must be >= 1");

  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t n_shards = options.shards;
  const auto shard_of = [&](std::size_t device) { return device % n_shards; };
  // Shard s phones home every 1 + (s % sync_spread) rounds; shard 0 always
  // syncs every round, so the server is never empty after round 0.
  const auto sync_period = [&](std::size_t shard) {
    return std::size_t{1} + shard % options.sync_spread;
  };

  std::vector<std::optional<rl::QTable>> shard_tables(n_shards);
  std::vector<std::optional<Upload>> uploads(n_shards);
  std::vector<std::size_t> shard_last_upload(n_shards, kNeverUploaded);

  std::uint64_t total_decisions = 0;
  double last_round_mean_reward = 0.0;
  // The server's aggregate after the most recent sync. Shard 0 syncs every
  // round, so this is always populated by the final round - it *is* the
  // run's global table (recomputing server_aggregate at the end would
  // redo the identical merge).
  std::optional<rl::QTable> last_aggregate;

  for (std::size_t round = 0; round < options.rounds; ++round) {
    // 1. Every device trains for one round, warm-started from its shard's
    //    aggregate (action values only - see strip_visits), all cells
    //    fanned out across the shared worker pool.
    std::vector<std::optional<rl::QTable>> warm_starts(n_shards);
    for (std::size_t s = 0; s < n_shards; ++s) {
      if (shard_tables[s].has_value()) warm_starts[s] = strip_visits(*shard_tables[s]);
    }
    TrainingPlan plan;
    for (std::size_t d = 0; d < options.devices; ++d) {
      TrainingOptions cell;
      cell.max_duration = options.round_duration;
      cell.episode_length = options.episode_length;
      cell.seed = derive_seed(derive_seed(options.base_seed, d), round);
      cell.ambient = options.ambient;
      const auto& warm = warm_starts[shard_of(d)];
      cell.initial_table = warm.has_value() ? &*warm : nullptr;
      plan.add(app_factory, "device_" + std::to_string(d), options.next_config, cell);
    }
    // A round's cells are homogeneous by construction (same round_duration /
    // episode_length, no early stopping), so the fleet advances through the
    // SoA thermal batch stepper lock-step per worker whenever the
    // per-worker share is wide enough to pay (>= 4 devices per worker; the
    // BatchRunner degenerates smaller fleets to the per-cell path) -
    // either way bit-identical to run_training_plan
    // (tests/sim/fleet_test.cpp).
    const std::vector<TrainingResult> round_results =
        run_training_plan_batched(plan, {.workers = runner.workers});

    double reward_sum = 0.0;
    std::uint64_t round_decisions = 0;
    for (const TrainingResult& r : round_results) {
      reward_sum += r.final_mean_reward;
      round_decisions += r.decisions;
    }
    total_decisions += round_decisions;
    last_round_mean_reward = reward_sum / static_cast<double>(round_results.size());

    // 2. Shard-local FedAvg: the previous aggregate (historical visit
    //    mass, counted once) merged with its devices' fresh deltas.
    for (std::size_t s = 0; s < n_shards; ++s) {
      std::vector<const rl::QTable*> members;
      if (shard_tables[s].has_value()) members.push_back(&*shard_tables[s]);
      for (std::size_t d = s; d < options.devices; d += n_shards) {
        members.push_back(&round_results[d].table);
      }
      shard_tables[s] = rl::merge_q_tables(members);
    }

    // 3. Periodic global sync: due shards upload their fresh aggregate,
    //    then download the server's staleness-weighted merge in return.
    std::vector<bool> synced(n_shards, false);
    bool any_synced = false;
    for (std::size_t s = 0; s < n_shards; ++s) {
      if ((round + 1) % sync_period(s) != 0) continue;
      uploads[s] = Upload{*shard_tables[s], round};
      shard_last_upload[s] = round;
      synced[s] = true;
      any_synced = true;
    }
    if (any_synced) {
      last_aggregate = server_aggregate(uploads, round, options.merge_policy);
      for (std::size_t s = 0; s < n_shards; ++s) {
        if (synced[s]) shard_tables[s] = *last_aggregate;
      }
    }

    if (progress) {
      FleetRoundStats stats;
      stats.round = round;
      stats.shard_states.reserve(n_shards);
      for (const auto& t : shard_tables) stats.shard_states.push_back(t->state_count());
      stats.shard_synced = synced;
      stats.mean_reward = last_round_mean_reward;
      stats.round_decisions = round_decisions;
      progress(stats);
    }
  }

  NEXTGOV_ASSERT(last_aggregate.has_value());
  FleetResult result{
      std::move(*last_aggregate),
      {},
      std::move(shard_last_upload),
      options.devices,
      options.rounds,
      total_decisions,
      static_cast<double>(options.rounds) * options.round_duration.seconds(),
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count(),
      last_round_mean_reward};
  result.shard_tables.reserve(n_shards);
  for (auto& t : shard_tables) result.shard_tables.push_back(std::move(*t));
  return result;
}

FleetResult train_fleet(workload::AppId app, const FleetOptions& options,
                        const RunnerOptions& runner, const FleetProgressFn& progress) {
  return train_fleet([app](std::uint64_t seed) { return workload::make_app(app, seed); },
                     options, runner, progress);
}

}  // namespace nextgov::sim
