#include "sim/fleet.hpp"

#include <chrono>
#include <cstdio>
#include <optional>
#include <string_view>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "rl/qtable_delta.hpp"
#include "sim/multiproc.hpp"

namespace nextgov::sim {

namespace {

/// Staleness-weighted merge of the uploads the server has seen so far,
/// aged relative to `current_round`.
rl::QTable server_aggregate(const std::vector<std::optional<FleetUpload>>& uploads,
                            std::size_t current_round,
                            const rl::StalenessMergePolicy& policy) {
  std::vector<const rl::QTable*> tables;
  std::vector<double> staleness;
  for (const auto& upload : uploads) {
    if (!upload.has_value()) continue;
    tables.push_back(&upload->table);
    staleness.push_back(static_cast<double>(current_round - upload->round));
  }
  NEXTGOV_ASSERT(!tables.empty());
  return rl::merge_q_tables(tables, staleness, policy);
}

// --- fault injection -------------------------------------------------------

constexpr std::uint64_t kDropoutSalt = 0xD409u;
constexpr std::uint64_t kCorruptSalt = 0xC0FFu;

/// Deterministic per-(round, index) fault draw: independent of worker
/// count, of every other draw, and of how many draws preceded it.
bool fault_fires(const FleetFaultPlan& faults, std::uint64_t salt, std::size_t round,
                 std::size_t index, double rate) {
  if (rate <= 0.0) return false;
  SplitMix64 sm{derive_seed(derive_seed(faults.seed ^ salt, round), index)};
  const double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  return u < rate;
}

/// Damages an encoded upload in-place: even draws flip one payload byte
/// (always caught by the CRC32), odd draws truncate the blob (caught by the
/// container's length checks). Deterministic in the same stream that
/// decided the fault fires.
void damage_upload(std::vector<std::uint8_t>& blob, const FleetFaultPlan& faults,
                   std::size_t round, std::size_t shard) {
  SplitMix64 sm{derive_seed(derive_seed(faults.seed ^ ~kCorruptSalt, round), shard)};
  const std::uint64_t kind = sm.next();
  if (blob.empty()) return;
  if (kind % 2 == 0) {
    const std::size_t at = static_cast<std::size_t>(sm.next() % blob.size());
    blob[at] ^= static_cast<std::uint8_t>(1 + sm.next() % 255);
  } else {
    blob.resize(blob.size() / 2);
  }
}

// --- snapshot payload helpers ----------------------------------------------

constexpr const char* kOptionsSection = "fleet_options";
constexpr const char* kStateSection = "fleet_state";
constexpr const char* kServerSection = "server_state";
constexpr const char* kSyncSection = "sync_state";

void write_optional_table(ByteWriter& out, const std::optional<rl::QTable>& table) {
  out.boolean(table.has_value());
  if (table.has_value()) table->serialize(out);
}

std::optional<rl::QTable> read_optional_table(ByteReader& in) {
  if (!in.boolean()) return std::nullopt;
  return rl::QTable::deserialize(in);
}

}  // namespace

std::vector<std::uint8_t> encode_upload(const rl::QTable& table, const rl::QTable* delta_base,
                                        bool* went_delta) {
  SnapshotWriter wire;
  bool as_delta = false;
  if (delta_base != nullptr) {
    const std::optional<rl::QTableDelta> delta = rl::try_make_delta(*delta_base, table);
    if (delta.has_value()) {
      delta->serialize(wire.section("delta"));
      as_delta = true;
    }
  }
  if (!as_delta) table.serialize(wire.section("upload"));
  if (went_delta != nullptr) *went_delta = as_delta;
  return wire.bytes();
}

rl::QTable decode_upload(std::vector<std::uint8_t> blob, const rl::QTable* delta_base,
                         const std::string& label) {
  const SnapshotReader decoded{std::move(blob), label};
  if (decoded.has("delta")) {
    if (delta_base == nullptr) {
      throw SerializeError(label +
                           ": delta-encoded upload, but the receiver holds no base table "
                           "to apply it to");
    }
    ByteReader payload = decoded.section("delta");
    return rl::apply_delta(*delta_base, rl::QTableDelta::deserialize(payload));
  }
  ByteReader payload = decoded.section("upload");
  return rl::QTable::deserialize(payload);
}

rl::QTable strip_visit_mass(const rl::QTable& table) {
  rl::QTable out{table.action_count()};
  table.for_each_entry([&](const rl::QTable::EntryView& e) {
    for (std::size_t a = 0; a < table.action_count() && a < 32; ++a) {
      if ((e.tried() & (1u << a)) != 0) out.set_q(e.key(), a, e.q(a));
    }
  });
  return out;
}

void validate_fleet_options(const FleetOptions& options) {
  require(options.devices > 0, "FleetOptions: devices must be >= 1 (an empty fleet trains nothing)");
  require(options.shards > 0, "FleetOptions: shards must be >= 1");
  require(options.shards <= options.devices,
          "FleetOptions: more shards than devices - at least one shard would stay empty "
          "every round");
  require(options.rounds > 0, "FleetOptions: rounds must be >= 1");
  require(options.round_duration.us() > 0, "FleetOptions: round_duration must be positive");
  require(options.episode_length.us() > 0, "FleetOptions: episode_length must be positive");
  require(options.sync_spread > 0,
          "FleetOptions: sync_spread must be >= 1 (shard s syncs every 1 + s mod "
          "sync_spread rounds; 0 would make every cadence undefined)");
  require(options.faults.dropout_rate >= 0.0 && options.faults.dropout_rate < 1.0,
          "FleetOptions: faults.dropout_rate must be in [0, 1)");
  require(options.faults.upload_corruption_rate >= 0.0 &&
              options.faults.upload_corruption_rate <= 1.0,
          "FleetOptions: faults.upload_corruption_rate must be in [0, 1]");
  require(options.snapshot_every == 0 || !options.snapshot_path.empty(),
          "FleetOptions: snapshot_every is set but snapshot_path is empty - there is "
          "nowhere to persist the checkpoint");
}

void encode_next_config(const core::NextConfig& c, ByteWriter& out) {
  out.i64(c.sample_period.us());
  out.i64(c.frame_window.us());
  out.i64(c.control_period.us());
  out.u64(static_cast<std::uint64_t>(c.fps_levels));
  out.u64(static_cast<std::uint64_t>(c.power_bins));
  out.f64(c.power_max_w);
  out.u64(static_cast<std::uint64_t>(c.temp_bins));
  out.f64(c.temp_min_c);
  out.f64(c.temp_max_c);
  out.f64(c.qlearning.alpha);
  out.f64(c.qlearning.gamma);
  out.f64(c.qlearning.alpha_min);
  out.f64(c.qlearning.visit_decay);
  out.f64(c.epsilon.start);
  out.f64(c.epsilon.end);
  out.u64(c.epsilon.decay_steps);
  out.f64(c.optimistic_q);
  out.u8(static_cast<std::uint8_t>(c.reward_metric));
  out.f64(c.ppdw_bounds.fps_least);
  out.f64(c.ppdw_bounds.fps_max);
  out.f64(c.ppdw_bounds.power_least.value());
  out.f64(c.ppdw_bounds.power_max.value());
  out.f64(c.ppdw_bounds.temp_least.value());
  out.f64(c.ppdw_bounds.temp_max.value());
  out.f64(c.ppdw_bounds.ambient.value());
  out.f64(c.ppdw_ref);
  out.f64(c.ppw_ref);
  out.f64(c.track_sigma_floor);
  out.f64(c.track_sigma_frac);
  out.f64(c.idle_power_scale_w);
  out.f64(c.drop_scale);
  out.u64(static_cast<std::uint64_t>(c.cap_up_step));
  out.u64(static_cast<std::uint64_t>(c.cap_down_step));
}

void encode_fleet_options(const FleetOptions& options, ByteWriter& out) {
  out.u64(static_cast<std::uint64_t>(options.devices));
  out.u64(static_cast<std::uint64_t>(options.shards));
  out.i64(options.round_duration.us());
  out.i64(options.episode_length.us());
  out.u64(options.base_seed);
  out.f64(options.ambient.value());
  out.u64(static_cast<std::uint64_t>(options.sync_spread));
  out.f64(options.merge_policy.half_life_rounds);
  out.u64(options.faults.seed);
  out.f64(options.faults.dropout_rate);
  out.f64(options.faults.upload_corruption_rate);
  // NextConfig, field by field: the agent's whole trajectory depends on
  // these, so a resume under a different agent configuration must be
  // rejected rather than silently diverge from the snapshotted run.
  encode_next_config(options.next_config, out);
}

void write_fleet_state_sections(SnapshotWriter& out, const FleetSnapshot& snapshot) {
  NEXTGOV_ASSERT(snapshot.shard_tables.size() == snapshot.uploads.size());
  NEXTGOV_ASSERT(snapshot.shard_tables.size() == snapshot.shard_last_upload.size());
  ByteWriter& state = out.section(kStateSection);
  state.u64(static_cast<std::uint64_t>(snapshot.next_round));
  state.u64(snapshot.total_decisions);
  state.f64(snapshot.last_round_mean_reward);
  state.u64(snapshot.dropped_device_rounds);
  state.u64(snapshot.rejected_uploads);
  state.u32(static_cast<std::uint32_t>(snapshot.shard_tables.size()));
  for (std::size_t s = 0; s < snapshot.shard_tables.size(); ++s) {
    write_optional_table(state, snapshot.shard_tables[s]);
    state.boolean(snapshot.uploads[s].has_value());
    if (snapshot.uploads[s].has_value()) {
      state.u64(static_cast<std::uint64_t>(snapshot.uploads[s]->round));
      snapshot.uploads[s]->table.serialize(state);
    }
    state.u64(static_cast<std::uint64_t>(snapshot.shard_last_upload[s]));
  }
  write_optional_table(state, snapshot.last_aggregate);
  if (snapshot.has_server_state) {
    // Version-2 extension: the long-running server's lease / deadline /
    // pending-upload state (see fleet_server.hpp). A separate section keeps
    // the version-1 "fleet_state" layout byte-stable.
    ByteWriter& server = out.section(kServerSection);
    server.i64(snapshot.server_clock_us);
    server.u32(static_cast<std::uint32_t>(snapshot.leases.size()));
    for (const DeviceLease& lease : snapshot.leases) {
      server.boolean(lease.active);
      server.u64(static_cast<std::uint64_t>(lease.rejoin_round));
    }
    server.u32(static_cast<std::uint32_t>(snapshot.pending_uploads.size()));
    for (const PendingUpload& pending : snapshot.pending_uploads) {
      server.u64(static_cast<std::uint64_t>(pending.device));
      server.u64(static_cast<std::uint64_t>(pending.trained_round));
      server.i64(pending.arrival_us);
      server.u32(pending.attempts_used);
      pending.table.serialize(server);
    }
    const FleetSnapshot::ServerCounters& c = snapshot.server_counters;
    server.u64(c.rounds_served);
    server.u64(c.uploads_accepted);
    server.u64(c.uploads_retried);
    server.u64(c.uploads_lost);
    server.u64(c.late_uploads_merged);
    server.u64(c.departures);
  }
  // Version-3 extension: per-shard delta bases + cumulative upload-wire
  // counters. Again a separate section, so the v1/v2 layouts above stay
  // byte-stable and pre-v3 files simply decode without it.
  NEXTGOV_ASSERT(snapshot.sync.bases.size() == snapshot.sync.cursors.size());
  ByteWriter& sync = out.section(kSyncSection);
  sync.u32(static_cast<std::uint32_t>(snapshot.sync.bases.size()));
  for (std::size_t s = 0; s < snapshot.sync.bases.size(); ++s) {
    sync.boolean(snapshot.sync.bases[s].has_value());
    if (snapshot.sync.bases[s].has_value()) {
      sync.u64(static_cast<std::uint64_t>(snapshot.sync.cursors[s]));
      snapshot.sync.bases[s]->serialize(sync);
    }
  }
  sync.u64(snapshot.sync.upload_bytes_full);
  sync.u64(snapshot.sync.upload_bytes_delta);
  sync.u64(snapshot.sync.uploads_full);
  sync.u64(snapshot.sync.uploads_delta);
}

FleetSnapshot read_fleet_state_sections(const SnapshotReader& snapshot) {
  ByteReader in = snapshot.section(kStateSection);
  FleetSnapshot out;
  out.next_round = static_cast<std::size_t>(in.u64());
  out.total_decisions = in.u64();
  out.last_round_mean_reward = in.f64();
  out.dropped_device_rounds = in.u64();
  out.rejected_uploads = in.u64();
  const std::uint32_t shards = in.u32();
  if (shards == 0 || shards > (1u << 20)) {
    in.fail("corrupt fleet snapshot: implausible shard count " + std::to_string(shards));
  }
  out.shard_tables.reserve(shards);
  out.uploads.reserve(shards);
  out.shard_last_upload.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    out.shard_tables.push_back(read_optional_table(in));
    if (in.boolean()) {
      const std::size_t upload_round = static_cast<std::size_t>(in.u64());
      out.uploads.push_back(FleetUpload{rl::QTable::deserialize(in), upload_round});
    } else {
      out.uploads.push_back(std::nullopt);
    }
    out.shard_last_upload.push_back(static_cast<std::size_t>(in.u64()));
  }
  out.last_aggregate = read_optional_table(in);
  if (!in.done()) in.fail("trailing bytes after the fleet state payload");
  if (snapshot.has(kServerSection)) {
    ByteReader server = snapshot.section(kServerSection);
    out.has_server_state = true;
    out.server_clock_us = server.i64();
    const std::uint32_t leases = server.u32();
    if (leases > (1u << 20)) {
      server.fail("corrupt fleet snapshot: implausible lease count " + std::to_string(leases));
    }
    out.leases.reserve(leases);
    for (std::uint32_t d = 0; d < leases; ++d) {
      DeviceLease lease;
      lease.active = server.boolean();
      lease.rejoin_round = static_cast<std::size_t>(server.u64());
      out.leases.push_back(lease);
    }
    const std::uint32_t pending = server.u32();
    if (pending > (1u << 20)) {
      server.fail("corrupt fleet snapshot: implausible pending-upload count " +
                  std::to_string(pending));
    }
    out.pending_uploads.reserve(pending);
    for (std::uint32_t i = 0; i < pending; ++i) {
      const std::size_t device = static_cast<std::size_t>(server.u64());
      const std::size_t trained_round = static_cast<std::size_t>(server.u64());
      const std::int64_t arrival_us = server.i64();
      const std::uint32_t attempts_used = server.u32();
      out.pending_uploads.push_back(PendingUpload{device, trained_round, arrival_us,
                                                  attempts_used, rl::QTable::deserialize(server)});
    }
    FleetSnapshot::ServerCounters& c = out.server_counters;
    c.rounds_served = server.u64();
    c.uploads_accepted = server.u64();
    c.uploads_retried = server.u64();
    c.uploads_lost = server.u64();
    c.late_uploads_merged = server.u64();
    c.departures = server.u64();
    if (!server.done()) server.fail("trailing bytes after the server state payload");
  }
  if (!snapshot.has(kSyncSection)) return out;  // pre-v3 file: bases empty, counters zero
  ByteReader sync = snapshot.section(kSyncSection);
  const std::uint32_t bases = sync.u32();
  if (bases > (1u << 20)) {
    sync.fail("corrupt fleet snapshot: implausible sync-base count " + std::to_string(bases));
  }
  out.sync.bases.reserve(bases);
  out.sync.cursors.reserve(bases);
  for (std::uint32_t s = 0; s < bases; ++s) {
    if (sync.boolean()) {
      out.sync.cursors.push_back(static_cast<std::size_t>(sync.u64()));
      out.sync.bases.push_back(rl::QTable::deserialize(sync));
    } else {
      out.sync.cursors.push_back(kNeverUploaded);
      out.sync.bases.push_back(std::nullopt);
    }
  }
  out.sync.upload_bytes_full = sync.u64();
  out.sync.upload_bytes_delta = sync.u64();
  out.sync.uploads_full = sync.u64();
  out.sync.uploads_delta = sync.u64();
  if (!sync.done()) sync.fail("trailing bytes after the sync state payload");
  return out;
}

SnapshotReader read_snapshot_quarantining(const std::string& path) {
  try {
    return SnapshotReader::from_file(path);
  } catch (const SerializeError& e) {
    // A version-window refusal is a *valid* file written by a different
    // release: leave it in place so a matching build can still restore it.
    if (std::string_view{e.what()}.find("format version") != std::string_view::npos) {
      throw;
    }
    const std::string quarantined = path + ".corrupt";
    if (std::rename(path.c_str(), quarantined.c_str()) == 0) {
      NEXTGOV_LOG(kWarn) << "quarantined corrupt snapshot '" << path << "' -> '"
                         << quarantined << "': " << e.what();
      throw SerializeError(std::string{e.what()} + " (quarantined to " + quarantined + ")");
    }
    NEXTGOV_LOG(kWarn) << "corrupt snapshot '" << path
                       << "' could not be quarantined (rename failed): " << e.what();
    throw;
  }
}

void save_fleet_snapshot(const FleetSnapshot& snapshot, const FleetOptions& options,
                         const std::string& path) {
  SnapshotWriter out;
  encode_fleet_options(options, out.section(kOptionsSection));
  write_fleet_state_sections(out, snapshot);
  out.write_file(path);
}

FleetSnapshot load_fleet_snapshot(const std::string& path) {
  const SnapshotReader snapshot = read_snapshot_quarantining(path);
  return read_fleet_state_sections(snapshot);
}

FleetSnapshot load_fleet_snapshot(const std::string& path, const FleetOptions& expected) {
  const SnapshotReader snapshot = read_snapshot_quarantining(path);
  ByteReader stored = snapshot.section(kOptionsSection);
  ByteWriter current;
  encode_fleet_options(expected, current);
  bool match = stored.remaining() == current.size();
  for (std::size_t i = 0; match && i < current.size(); ++i) {
    match = stored.u8() == current.data()[i];
  }
  if (!match) {
    throw SerializeError(path +
                         ": snapshot was taken under different fleet options "
                         "(devices/shards/seeds/durations/NextConfig/fault plan must all "
                         "match to resume bit-identically); refusing to resume");
  }
  return read_fleet_state_sections(snapshot);
}

FleetResult train_fleet(AppFactory app_factory, const FleetOptions& options,
                        const RunnerOptions& runner, const FleetProgressFn& progress) {
  require(static_cast<bool>(app_factory), "train_fleet needs an app factory");
  validate_fleet_options(options);

  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t n_shards = options.shards;
  const auto shard_of = [&](std::size_t device) { return device % n_shards; };
  // Shard s phones home every 1 + (s % sync_spread) rounds; shard 0 always
  // syncs every round, so the server is never empty after round 0.
  const auto sync_period = [&](std::size_t shard) {
    return std::size_t{1} + shard % options.sync_spread;
  };

  std::vector<std::optional<rl::QTable>> shard_tables(n_shards);
  std::vector<std::optional<FleetUpload>> uploads(n_shards);
  std::vector<std::size_t> shard_last_upload(n_shards, kNeverUploaded);
  // Per-shard delta base: the aggregate both ends recorded at the shard's
  // last *accepted* sync. Maintained whether or not delta_uploads is on, so
  // the flag can flip across a resume without changing anything but the
  // wire bytes.
  std::vector<std::optional<rl::QTable>> sync_bases(n_shards);
  std::vector<std::size_t> sync_cursor(n_shards, kNeverUploaded);

  std::size_t start_round = 0;
  std::uint64_t total_decisions = 0;
  double last_round_mean_reward = 0.0;
  std::uint64_t dropped_device_rounds = 0;
  std::uint64_t rejected_uploads = 0;
  std::uint64_t upload_bytes_full = 0;
  std::uint64_t upload_bytes_delta = 0;
  std::uint64_t uploads_full = 0;
  std::uint64_t uploads_delta = 0;
  std::size_t snapshots_written = 0;
  // The server's aggregate after the most recent sync. Shard 0 syncs every
  // round, so (absent total upload loss) this is populated by the final
  // round - it *is* the run's global table.
  std::optional<rl::QTable> last_aggregate;

  if (!options.resume_from.empty()) {
    FleetSnapshot snapshot = load_fleet_snapshot(options.resume_from, options);
    // The options check above pins shard count == options.shards.
    NEXTGOV_ASSERT(snapshot.shard_tables.size() == n_shards);
    shard_tables = std::move(snapshot.shard_tables);
    uploads = std::move(snapshot.uploads);
    shard_last_upload = std::move(snapshot.shard_last_upload);
    last_aggregate = std::move(snapshot.last_aggregate);
    start_round = snapshot.next_round;
    total_decisions = snapshot.total_decisions;
    last_round_mean_reward = snapshot.last_round_mean_reward;
    dropped_device_rounds = snapshot.dropped_device_rounds;
    rejected_uploads = snapshot.rejected_uploads;
    // Pre-v3 snapshots carry no sync state: the bases stay empty (every
    // shard's first post-resume upload goes out full) and the counters
    // restart at zero - the trajectory is identical either way.
    if (snapshot.sync.bases.size() == n_shards) {
      sync_bases = std::move(snapshot.sync.bases);
      sync_cursor = std::move(snapshot.sync.cursors);
    }
    upload_bytes_full = snapshot.sync.upload_bytes_full;
    upload_bytes_delta = snapshot.sync.upload_bytes_delta;
    uploads_full = snapshot.sync.uploads_full;
    uploads_delta = snapshot.sync.uploads_delta;
  }

  for (std::size_t round = start_round; round < options.rounds; ++round) {
    // 1. Every device that is online this round trains for one round,
    //    warm-started from its shard's aggregate (action values only - see
    //    strip_visit_mass), all cells fanned out across the shared worker
    //    pool.
    //    Dropped devices simply contribute nothing - their shard's merge
    //    leans on older experience exactly like a real fleet's would.
    std::vector<std::optional<rl::QTable>> warm_starts(n_shards);
    for (std::size_t s = 0; s < n_shards; ++s) {
      if (shard_tables[s].has_value()) warm_starts[s] = strip_visit_mass(*shard_tables[s]);
    }
    TrainingPlan plan;
    std::vector<std::size_t> plan_device;  // device index per plan cell
    std::size_t round_dropped = 0;
    for (std::size_t d = 0; d < options.devices; ++d) {
      if (fault_fires(options.faults, kDropoutSalt, round, d, options.faults.dropout_rate)) {
        ++round_dropped;
        continue;
      }
      TrainingOptions cell;
      cell.max_duration = options.round_duration;
      cell.episode_length = options.episode_length;
      cell.seed = derive_seed(derive_seed(options.base_seed, d), round);
      cell.ambient = options.ambient;
      const auto& warm = warm_starts[shard_of(d)];
      cell.initial_table = warm.has_value() ? &*warm : nullptr;
      plan.add(app_factory, "device_" + std::to_string(d), options.next_config, cell);
      plan_device.push_back(d);
    }
    dropped_device_rounds += round_dropped;
    // A round's cells are homogeneous by construction (same round_duration /
    // episode_length, no early stopping), so the fleet advances through the
    // SoA thermal batch stepper lock-step per worker whenever the
    // per-worker share is wide enough to pay (>= 4 devices per worker; the
    // BatchRunner degenerates smaller fleets to the per-cell path) -
    // either way bit-identical to run_training_plan
    // (tests/sim/fleet_test.cpp).
    // With processes > 1 the same plan fans out across forked worker
    // processes instead (each still batching its shard) - merged
    // bit-identically, so the choice is invisible downstream.
    const std::vector<TrainingResult> round_results =
        plan.empty() ? std::vector<TrainingResult>{}
        : options.processes > 1
            ? run_training_plan_sharded(plan, {.processes = options.processes,
                                               .workers = runner.workers,
                                               .batched = true})
            : run_training_plan_batched(plan, {.workers = runner.workers});

    double reward_sum = 0.0;
    std::uint64_t round_decisions = 0;
    for (const TrainingResult& r : round_results) {
      reward_sum += r.final_mean_reward;
      round_decisions += r.decisions;
    }
    total_decisions += round_decisions;
    last_round_mean_reward =
        round_results.empty() ? 0.0
                              : reward_sum / static_cast<double>(round_results.size());

    // 2. Shard-local FedAvg: the previous aggregate (historical visit
    //    mass, counted once) merged with its surviving devices' fresh
    //    deltas. A shard whose devices all dropped keeps its aggregate
    //    untouched - there is nothing new to merge.
    for (std::size_t s = 0; s < n_shards; ++s) {
      std::vector<const rl::QTable*> members;
      if (shard_tables[s].has_value()) members.push_back(&*shard_tables[s]);
      const std::size_t historical_only = members.size();
      for (std::size_t i = 0; i < round_results.size(); ++i) {
        if (shard_of(plan_device[i]) == s) members.push_back(&round_results[i].table);
      }
      if (members.size() == historical_only) continue;  // no fresh uploads
      shard_tables[s] = rl::merge_q_tables(members);
    }

    // 3. Periodic global sync: due shards upload their fresh aggregate,
    //    then download the server's staleness-weighted merge in return.
    //    With fault injection active, every upload travels as CRC-guarded
    //    snapshot bytes; a damaged upload is rejected by the server (the
    //    decode throws SerializeError), the shard keeps its local state and
    //    its previous upload simply ages.
    std::vector<bool> synced(n_shards, false);
    std::size_t round_rejected = 0;
    std::uint64_t round_upload_bytes = 0;
    std::size_t round_delta_uploads = 0;
    bool any_synced = false;
    for (std::size_t s = 0; s < n_shards; ++s) {
      if ((round + 1) % sync_period(s) != 0) continue;
      if (!shard_tables[s].has_value()) continue;  // nothing trained yet
      // Every upload travels as CRC-guarded snapshot bytes: the full table,
      // or - with delta_uploads on, once the shard has synced before - a
      // delta against the aggregate both ends recorded at the last accepted
      // sync. The decoded table is bit-identical to the sender's on either
      // path (pinned by tests/sim/fleet_test.cpp), so the wire strategy
      // never shows in the trajectory, only in the byte counters. Both
      // damage modes (bit flip / truncation) are always detected - CRC32
      // catches any single-byte error, the container's length fields catch
      // truncation - so a bad upload can never poison the aggregate: the
      // shard keeps its local state and its previous upload simply ages.
      const rl::QTable* base =
          options.delta_uploads && sync_bases[s].has_value() ? &*sync_bases[s] : nullptr;
      bool went_delta = false;
      std::vector<std::uint8_t> blob = encode_upload(*shard_tables[s], base, &went_delta);
      round_upload_bytes += blob.size();
      if (went_delta) {
        upload_bytes_delta += blob.size();
        ++uploads_delta;
        ++round_delta_uploads;
      } else {
        upload_bytes_full += blob.size();
        ++uploads_full;
      }
      if (fault_fires(options.faults, kCorruptSalt, round, s,
                      options.faults.upload_corruption_rate)) {
        damage_upload(blob, options.faults, round, s);
      }
      try {
        uploads[s] = FleetUpload{
            decode_upload(std::move(blob), base, "upload from shard " + std::to_string(s)),
            round};
      } catch (const SerializeError&) {
        ++round_rejected;
        continue;
      }
      shard_last_upload[s] = round;
      synced[s] = true;
      any_synced = true;
    }
    rejected_uploads += round_rejected;
    if (any_synced) {
      last_aggregate = server_aggregate(uploads, round, options.merge_policy);
      for (std::size_t s = 0; s < n_shards; ++s) {
        if (synced[s]) {
          shard_tables[s] = *last_aggregate;
          // Both ends record the downloaded aggregate as the shard's next
          // delta base - its next upload evolves from exactly this table.
          sync_bases[s] = *last_aggregate;
          sync_cursor[s] = round;
        }
      }
    }

    if (progress) {
      FleetRoundStats stats;
      stats.round = round;
      stats.shard_states.reserve(n_shards);
      for (const auto& t : shard_tables) {
        stats.shard_states.push_back(t.has_value() ? t->state_count() : 0);
      }
      stats.shard_synced = synced;
      stats.mean_reward = last_round_mean_reward;
      stats.round_decisions = round_decisions;
      stats.dropped_devices = round_dropped;
      stats.rejected_uploads = round_rejected;
      stats.upload_bytes = round_upload_bytes;
      stats.delta_uploads = round_delta_uploads;
      progress(stats);
    }

    // 4. Periodic checkpoint (atomic replace), then the crash hook - in
    //    that order, so crash-at-round-K tests model a process that died
    //    *after* its last checkpoint cadence, like a real crash would.
    if (options.snapshot_every > 0 && (round + 1) % options.snapshot_every == 0) {
      FleetSnapshot snapshot;
      snapshot.next_round = round + 1;
      snapshot.total_decisions = total_decisions;
      snapshot.last_round_mean_reward = last_round_mean_reward;
      snapshot.dropped_device_rounds = dropped_device_rounds;
      snapshot.rejected_uploads = rejected_uploads;
      snapshot.shard_tables = shard_tables;
      snapshot.uploads = uploads;
      snapshot.shard_last_upload = shard_last_upload;
      snapshot.last_aggregate = last_aggregate;
      snapshot.sync.bases = sync_bases;
      snapshot.sync.cursors = sync_cursor;
      snapshot.sync.upload_bytes_full = upload_bytes_full;
      snapshot.sync.upload_bytes_delta = upload_bytes_delta;
      snapshot.sync.uploads_full = uploads_full;
      snapshot.sync.uploads_delta = uploads_delta;
      save_fleet_snapshot(snapshot, options, options.snapshot_path);
      ++snapshots_written;
    }
    if (options.faults.crash_at_round == round) {
      throw FleetCrash("fleet crashed after round " + std::to_string(round) +
                       " (injected by FleetFaultPlan::crash_at_round)");
    }
  }

  require(last_aggregate.has_value(),
          "train_fleet: no upload ever reached the server (dropout/corruption lost every "
          "round) - no global table to return");
  FleetResult result{
      .global = std::move(*last_aggregate),
      .shard_tables = {},
      .shard_last_upload = std::move(shard_last_upload),
      .devices = options.devices,
      .rounds = options.rounds,
      .start_round = start_round,
      .total_decisions = total_decisions,
      .device_sim_seconds =
          static_cast<double>(options.rounds) * options.round_duration.seconds(),
      .wall_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
              .count(),
      .mean_final_reward = last_round_mean_reward,
      .dropped_device_rounds = dropped_device_rounds,
      .rejected_uploads = rejected_uploads,
      .snapshots_written = snapshots_written,
      .upload_bytes_full = upload_bytes_full,
      .upload_bytes_delta = upload_bytes_delta,
      .uploads_full = uploads_full,
      .uploads_delta = uploads_delta,
  };
  result.shard_tables.reserve(n_shards);
  for (auto& t : shard_tables) {
    if (t.has_value()) result.shard_tables.push_back(std::move(*t));
  }
  return result;
}

FleetResult train_fleet(workload::AppId app, const FleetOptions& options,
                        const RunnerOptions& runner, const FleetProgressFn& progress) {
  return train_fleet([app](std::uint64_t seed) { return workload::make_app(app, seed); },
                     options, runner, progress);
}

}  // namespace nextgov::sim
