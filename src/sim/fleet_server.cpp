#include "sim/fleet_server.hpp"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <tuple>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "sim/multiproc.hpp"

namespace nextgov::sim {

namespace {

// --- churn draws -----------------------------------------------------------
//
// Every draw opens its own SplitMix64 stream keyed by
// derive_seed chains over (churn seed ^ salt, round, device[, attempt]), so
// draws are independent of each other, of worker count, and of how many
// rounds the process has replayed - a restarted server redraws the exact
// same churn.

constexpr std::uint64_t kDepartSalt = 0xDE9Au;
constexpr std::uint64_t kStraggleSalt = 0x57A6u;
constexpr std::uint64_t kUploadFailSalt = 0xF41Cu;

constexpr const char* kServerOptionsSection = "fleet_server_options";

SplitMix64 churn_stream(std::uint64_t seed, std::uint64_t salt, std::size_t round,
                        std::size_t device) {
  return SplitMix64{derive_seed(derive_seed(seed ^ salt, round), device)};
}

SplitMix64 attempt_stream(std::uint64_t seed, std::size_t round, std::size_t device,
                          std::uint32_t attempt) {
  return SplitMix64{derive_seed(
      derive_seed(derive_seed(seed ^ kUploadFailSalt, round), device), attempt)};
}

bool bernoulli(SplitMix64& sm, double rate) {
  const double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  return u < rate;
}

/// Damages an encoded upload in-place (even draws flip a byte, odd draws
/// truncate - both always detected by the container's CRC/length checks).
void damage_blob(std::vector<std::uint8_t>& blob, SplitMix64& sm) {
  const std::uint64_t kind = sm.next();
  if (blob.empty()) return;
  if (kind % 2 == 0) {
    const std::size_t at = static_cast<std::size_t>(sm.next() % blob.size());
    blob[at] ^= static_cast<std::uint8_t>(1 + sm.next() % 255);
  } else {
    blob.resize(blob.size() / 2);
  }
}

// --- the round's event loop ------------------------------------------------

struct Event {
  std::int64_t t_us{0};
  enum Kind : int { kLeaseExpiry = 0, kUploadArrival = 1 };
  int kind{kUploadArrival};
  std::size_t device{0};
  std::size_t trained_round{0};
  std::uint32_t attempt{0};
  std::size_t table{0};  ///< arena index (upload events only)
};

/// Min-heap order: time, then a total tiebreak so processing order is
/// deterministic (lease expiries before arrivals at the same instant - an
/// upload from a device whose lease just died must not land).
bool later(const Event& a, const Event& b) {
  return std::tie(a.t_us, a.kind, a.device, a.trained_round, a.attempt) >
         std::tie(b.t_us, b.kind, b.device, b.trained_round, b.attempt);
}

}  // namespace

std::int64_t retry_delay_us(SimTime retry_backoff, std::uint32_t attempt,
                            std::uint64_t jitter_draw) noexcept {
  const std::int64_t cap = kMaxUploadRetryDelay.us();
  // Clamp the configured base first so both the doubling loop and the
  // jitter modulus below operate on a bounded value. validate_... already
  // guarantees retry_backoff > 0, but clamp defensively anyway.
  std::int64_t base = retry_backoff.us();
  if (base < 1) base = 1;
  if (base > cap) base = cap;
  // retry_backoff * 2^attempt, saturating at the cap - no shift, so no UB
  // however large attempt or the configured backoff is.
  std::int64_t backoff = base;
  for (std::uint32_t i = 0; i < attempt && backoff < cap; ++i) {
    backoff = (backoff <= cap / 2) ? backoff * 2 : cap;
  }
  const std::int64_t jitter =
      static_cast<std::int64_t>(jitter_draw % static_cast<std::uint64_t>(base));
  return backoff + jitter;  // <= 2 * cap, far from int64 overflow
}

void validate_fleet_server_options(const FleetServerOptions& o) {
  require(o.devices > 0,
          "FleetServerOptions: devices must be >= 1 (an empty fleet serves nothing)");
  require(o.round_duration.us() > 0, "FleetServerOptions: round_duration must be positive");
  require(o.episode_length.us() > 0, "FleetServerOptions: episode_length must be positive");
  require(o.heartbeat_period.us() > 0,
          "FleetServerOptions: heartbeat_period must be positive");
  require(o.lease_timeout.us() >= o.heartbeat_period.us(),
          "FleetServerOptions: lease_timeout shorter than heartbeat_period would expire "
          "every healthy lease between heartbeats");
  require(o.upload_latency.us() >= 0, "FleetServerOptions: upload_latency must be >= 0");
  require(o.retry_backoff.us() > 0, "FleetServerOptions: retry_backoff must be positive");
  require(o.max_upload_attempts >= 1,
          "FleetServerOptions: max_upload_attempts must be >= 1");
  require(o.round_deadline.us() > o.round_duration.us() + o.upload_latency.us(),
          "FleetServerOptions: round_deadline must exceed round_duration + upload_latency "
          "or no clean upload could ever beat the straggler deadline");
  require(o.round_duration.us() + o.lease_timeout.us() <= o.round_deadline.us(),
          "FleetServerOptions: round_duration + lease_timeout must fit inside "
          "round_deadline so every lease expiry resolves within its round (boundary "
          "snapshots must never hold a half-expired lease)");
  require(o.churn.depart_rate >= 0.0 && o.churn.depart_rate < 1.0,
          "FleetServerOptions: churn.depart_rate must be in [0, 1)");
  require(o.churn.straggle_rate >= 0.0 && o.churn.straggle_rate <= 1.0,
          "FleetServerOptions: churn.straggle_rate must be in [0, 1]");
  require(o.churn.upload_fail_rate >= 0.0 && o.churn.upload_fail_rate < 1.0,
          "FleetServerOptions: churn.upload_fail_rate must be in [0, 1) (at 1.0 every "
          "attempt of every upload fails and the server can never learn)");
  require(o.churn.rejoin_after_rounds >= 1,
          "FleetServerOptions: churn.rejoin_after_rounds must be >= 1 (a device cannot "
          "rejoin the round it departed)");
  require(o.snapshot_ring == 0 || !o.snapshot_prefix.empty(),
          "FleetServerOptions: snapshot_ring is set but snapshot_prefix is empty - there "
          "is nowhere to persist the ring");
}

void encode_fleet_server_options(const FleetServerOptions& o, ByteWriter& out) {
  out.u64(static_cast<std::uint64_t>(o.devices));
  out.i64(o.round_duration.us());
  out.i64(o.round_deadline.us());
  out.i64(o.episode_length.us());
  out.i64(o.heartbeat_period.us());
  out.i64(o.lease_timeout.us());
  out.i64(o.upload_latency.us());
  out.i64(o.retry_backoff.us());
  out.u32(o.max_upload_attempts);
  out.u64(o.base_seed);
  out.f64(o.ambient.value());
  out.f64(o.merge_policy.half_life_rounds);
  out.u64(o.churn.seed);
  out.f64(o.churn.depart_rate);
  out.u64(static_cast<std::uint64_t>(o.churn.rejoin_after_rounds));
  out.f64(o.churn.straggle_rate);
  out.f64(o.churn.upload_fail_rate);
  encode_next_config(o.next_config, out);
}

FleetServer::FleetServer(AppFactory app_factory, const FleetServerOptions& options,
                         const RunnerOptions& runner)
    : app_factory_{std::move(app_factory)},
      options_{options},
      runner_{runner},
      leases_(options.devices),
      uploads_(options.devices) {
  require(static_cast<bool>(app_factory_), "FleetServer needs an app factory");
  validate_fleet_server_options(options_);
  if (options_.snapshot_ring > 0) restore_from_ring();
}

FleetServer::FleetServer(workload::AppId app, const FleetServerOptions& options,
                         const RunnerOptions& runner)
    : FleetServer([app](std::uint64_t seed) { return workload::make_app(app, seed); },
                  options, runner) {}

std::string FleetServer::ring_path(std::size_t slot) const {
  return options_.snapshot_prefix + "." + std::to_string(slot);
}

FleetSnapshot FleetServer::boundary_snapshot() const {
  FleetSnapshot snap;
  snap.next_round = round_;
  snap.total_decisions = stats_.total_decisions;
  snap.last_round_mean_reward = last_round_mean_reward_;
  snap.dropped_device_rounds = 0;
  snap.rejected_uploads = 0;
  // Device-indexed reuse of the fleet-state arrays (see FleetSnapshot docs):
  // the server aggregates per device, so `uploads` holds each device's last
  // accepted table and `shard_tables` stays empty per slot.
  snap.shard_tables.assign(options_.devices, std::nullopt);
  snap.uploads = uploads_;
  snap.shard_last_upload.assign(options_.devices, kNeverUploaded);
  for (std::size_t d = 0; d < options_.devices; ++d) {
    if (uploads_[d].has_value()) snap.shard_last_upload[d] = uploads_[d]->round;
  }
  snap.last_aggregate = last_aggregate_;
  snap.has_server_state = true;
  snap.leases = leases_;
  snap.pending_uploads = pending_;
  snap.server_clock_us = clock_us_;
  snap.server_counters.rounds_served = stats_.rounds_served;
  snap.server_counters.uploads_accepted = stats_.uploads_accepted;
  snap.server_counters.uploads_retried = stats_.uploads_retried;
  snap.server_counters.uploads_lost = stats_.uploads_lost;
  snap.server_counters.late_uploads_merged = stats_.late_uploads_merged;
  snap.server_counters.departures = stats_.departures;
  // Only the wire counters go into the sync_state section: the server's
  // delta base is the round's warm table, recomputed from last_aggregate on
  // restore, so no bases need persisting (snap.sync.bases stays empty).
  snap.sync.upload_bytes_full = stats_.upload_bytes_full;
  snap.sync.upload_bytes_delta = stats_.upload_bytes_delta;
  snap.sync.uploads_full = stats_.uploads_full;
  snap.sync.uploads_delta = stats_.uploads_delta;
  return snap;
}

void FleetServer::write_ring_snapshot() {
  if (options_.snapshot_ring == 0) return;
  SnapshotWriter out;
  encode_fleet_server_options(options_, out.section(kServerOptionsSection));
  write_fleet_state_sections(out, boundary_snapshot());
  out.write_file(ring_path(round_ % options_.snapshot_ring));
  ++stats_.snapshots_written;
}

void FleetServer::drain() { write_ring_snapshot(); }

void FleetServer::restore_from_ring() {
  std::optional<FleetSnapshot> best;
  for (std::size_t slot = 0; slot < options_.snapshot_ring; ++slot) {
    const std::string path = ring_path(slot);
    std::optional<SnapshotReader> reader;
    try {
      reader.emplace(read_snapshot_quarantining(path));
    } catch (const SerializeError& e) {
      // Damaged entry: already renamed to <path>.corrupt and logged; fall
      // back to the next (older) ring entry. A version-window refusal is
      // not quarantined but equally unusable by this build - skip it too.
      if (std::string_view{e.what()}.find("quarantined to") != std::string_view::npos) {
        ++stats_.snapshots_quarantined;
      }
      continue;
    } catch (const IoError&) {
      continue;  // slot never written (fresh ring or short run)
    }
    // Config identity gate, *outside* the recovery path: a mismatch means
    // the operator restarted the server under different options, which must
    // fail loudly rather than fall back to an older entry or quarantine a
    // perfectly healthy file.
    if (!reader->has(kServerOptionsSection)) {
      throw SerializeError(path +
                           ": not a fleet-server snapshot (missing the "
                           "'fleet_server_options' section; train_fleet checkpoints are "
                           "not interchangeable with the server ring)");
    }
    ByteReader stored = reader->section(kServerOptionsSection);
    ByteWriter current;
    encode_fleet_server_options(options_, current);
    bool match = stored.remaining() == current.size();
    for (std::size_t i = 0; match && i < current.size(); ++i) {
      match = stored.u8() == current.data()[i];
    }
    if (!match) {
      throw SerializeError(path +
                           ": ring snapshot was taken under different fleet-server "
                           "options (devices/timing/seeds/NextConfig/churn must all "
                           "match to resume bit-identically); refusing to resume");
    }
    FleetSnapshot snap = read_fleet_state_sections(*reader);
    if (!snap.has_server_state) {
      throw SerializeError(path + ": fleet-server ring entry lacks the server_state "
                                  "section (written by an incompatible tool?)");
    }
    if (!best.has_value() || snap.next_round > best->next_round) best = std::move(snap);
  }
  if (!best.has_value()) return;  // cold start at round 0
  NEXTGOV_ASSERT(best->leases.size() == options_.devices);
  NEXTGOV_ASSERT(best->uploads.size() == options_.devices);
  round_ = best->next_round;
  clock_us_ = best->server_clock_us;
  leases_ = std::move(best->leases);
  uploads_ = std::move(best->uploads);
  pending_ = std::move(best->pending_uploads);
  last_aggregate_ = std::move(best->last_aggregate);
  last_round_mean_reward_ = best->last_round_mean_reward;
  stats_.rounds_served = best->server_counters.rounds_served;
  stats_.uploads_accepted = best->server_counters.uploads_accepted;
  stats_.uploads_retried = best->server_counters.uploads_retried;
  stats_.uploads_lost = best->server_counters.uploads_lost;
  stats_.late_uploads_merged = best->server_counters.late_uploads_merged;
  stats_.departures = best->server_counters.departures;
  stats_.total_decisions = best->total_decisions;
  stats_.upload_bytes_full = best->sync.upload_bytes_full;
  stats_.upload_bytes_delta = best->sync.upload_bytes_delta;
  stats_.uploads_full = best->sync.uploads_full;
  stats_.uploads_delta = best->sync.uploads_delta;
  restored_ = true;
}

void FleetServer::run_round(const FleetServerProgressFn& progress) {
  const auto wall_start = std::chrono::steady_clock::now();
  const std::size_t r = round_;
  const std::int64_t round_start =
      static_cast<std::int64_t>(r) * options_.round_deadline.us();
  const std::int64_t round_close = round_start + options_.round_deadline.us();
  clock_us_ = round_start;

  FleetServerRoundStats rs;
  rs.round = r;

  // 1. Re-registration: departed devices whose absence has run its course
  //    take a fresh lease before the round starts.
  for (std::size_t d = 0; d < options_.devices; ++d) {
    if (!leases_[d].active && leases_[d].rejoin_round <= r) {
      leases_[d] = DeviceLease{};
      ++rs.rejoined;
      ++stats_.rejoins;
    }
  }

  // 2. Churn draws + event seeding. A departing device stops heartbeating
  //    at a seeded instant inside its training window; the server notices
  //    at the last heartbeat + lease_timeout. It never contributes a
  //    partial table - its training cell is simply not scheduled (the
  //    result could never be uploaded, and a pure-function fleet has no
  //    half-trained state to leak).
  std::vector<Event> heap;
  std::vector<rl::QTable> arena;
  std::vector<std::size_t> trainees;
  std::vector<std::int64_t> first_attempt_us(options_.devices, 0);
  for (std::size_t d = 0; d < options_.devices; ++d) {
    if (!leases_[d].active) continue;
    SplitMix64 depart = churn_stream(options_.churn.seed, kDepartSalt, r, d);
    if (bernoulli(depart, options_.churn.depart_rate)) {
      const std::int64_t depart_us =
          round_start +
          static_cast<std::int64_t>(depart.next() %
                                    static_cast<std::uint64_t>(options_.round_duration.us()));
      const std::int64_t last_heartbeat =
          round_start + ((depart_us - round_start) / options_.heartbeat_period.us()) *
                            options_.heartbeat_period.us();
      heap.push_back(Event{last_heartbeat + options_.lease_timeout.us(),
                           Event::kLeaseExpiry, d, r, 0, 0});
      leases_[d].active = false;
      leases_[d].rejoin_round = r + options_.churn.rejoin_after_rounds;
      continue;
    }
    std::int64_t start = round_start + options_.round_duration.us();
    SplitMix64 straggle = churn_stream(options_.churn.seed, kStraggleSalt, r, d);
    if (bernoulli(straggle, options_.churn.straggle_rate)) {
      // At least half a round late: usually past the deadline, so the
      // table carries into the next round and merges with staleness 1.
      start += options_.round_deadline.us() / 2 +
               static_cast<std::int64_t>(
                   straggle.next() % static_cast<std::uint64_t>(options_.round_deadline.us()));
    }
    first_attempt_us[d] = start + options_.upload_latency.us();
    trainees.push_back(d);
  }
  rs.training_devices = trainees.size();

  // 3. Train every leased, non-departing device for round_duration of
  //    simulated time - one homogeneous batched plan across the shared
  //    worker pool, warm-started from the global aggregate (visit mass
  //    stripped so historical experience is counted once, via the
  //    aggregate, not once per device).
  std::optional<rl::QTable> warm;
  if (last_aggregate_.has_value()) warm = strip_visit_mass(*last_aggregate_);
  TrainingPlan plan;
  for (const std::size_t d : trainees) {
    TrainingOptions cell;
    cell.max_duration = options_.round_duration;
    cell.episode_length = options_.episode_length;
    cell.seed = derive_seed(derive_seed(options_.base_seed, d), r);
    cell.ambient = options_.ambient;
    cell.initial_table = warm.has_value() ? &*warm : nullptr;
    plan.add(app_factory_, "device_" + std::to_string(d), options_.next_config, cell);
  }
  // With processes > 1 the plan fans out across forked worker processes
  // (sim/multiproc.hpp) - merged bit-identically, so snapshots and goldens
  // are oblivious to the choice.
  const std::vector<TrainingResult> results =
      plan.empty() ? std::vector<TrainingResult>{}
      : options_.processes > 1
          ? run_training_plan_sharded(plan, {.processes = options_.processes,
                                             .workers = runner_.workers,
                                             .batched = true})
          : run_training_plan_batched(plan, {.workers = runner_.workers});
  double reward_sum = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    reward_sum += results[i].final_mean_reward;
    stats_.total_decisions += results[i].decisions;
    arena.push_back(results[i].table);
    heap.push_back(Event{first_attempt_us[trainees[i]], Event::kUploadArrival,
                         trainees[i], r, 0, arena.size() - 1});
  }
  rs.mean_reward =
      results.empty() ? 0.0 : reward_sum / static_cast<double>(results.size());

  // Pending uploads from earlier rounds re-enter the loop with their
  // persisted arrival times and attempt counters, so a restarted server
  // replays exactly the same arrivals.
  for (PendingUpload& p : pending_) {
    arena.push_back(std::move(p.table));
    heap.push_back(Event{p.arrival_us, Event::kUploadArrival, p.device, p.trained_round,
                         p.attempts_used, arena.size() - 1});
  }
  pending_.clear();

  // 4. The event loop: process lease expiries and upload arrivals in
  //    simulated-time order until the straggler deadline.
  std::make_heap(heap.begin(), heap.end(), later);
  std::size_t accepted_this_round = 0;
  while (!heap.empty() && heap.front().t_us < round_close) {
    std::pop_heap(heap.begin(), heap.end(), later);
    Event ev = heap.back();
    heap.pop_back();
    clock_us_ = ev.t_us;
    if (ev.kind == Event::kLeaseExpiry) {
      // The departed device's in-flight uploads die with its lease.
      std::size_t dropped = 0;
      for (const Event& other : heap) {
        if (other.kind == Event::kUploadArrival && other.device == ev.device) ++dropped;
      }
      if (dropped > 0) {
        heap.erase(std::remove_if(heap.begin(), heap.end(),
                                  [&](const Event& other) {
                                    return other.kind == Event::kUploadArrival &&
                                           other.device == ev.device;
                                  }),
                   heap.end());
        std::make_heap(heap.begin(), heap.end(), later);
        stats_.uploads_lost += dropped;
        rs.lost_uploads += dropped;
      }
      ++stats_.departures;
      ++rs.departures;
      NEXTGOV_LOG(kInfo) << "fleet_server: device " << ev.device
                         << " lease expired at t=" << ev.t_us << "us (round " << r << ")";
      continue;
    }
    // Upload arrival: the table travels as CRC-guarded snapshot bytes; a
    // seeded per-attempt failure damages them in flight, the decode throws,
    // and the device retries with exponential backoff + jitter. With
    // delta_uploads on, a same-round upload deltas against the round's warm
    // table (the base every trainee started from, which the server still
    // holds); carried uploads from earlier rounds always travel full. The
    // decoded table is bit-identical to the sender's on either path, so the
    // choice only shows in the byte counters.
    bool delivered = true;
    rl::QTable* table = &arena[ev.table];
    std::optional<rl::QTable> decoded;
    const rl::QTable* base =
        options_.delta_uploads && ev.trained_round == r && warm.has_value() ? &*warm
                                                                            : nullptr;
    bool went_delta = false;
    std::vector<std::uint8_t> blob = encode_upload(*table, base, &went_delta);
    if (went_delta) {
      stats_.upload_bytes_delta += blob.size();
      ++stats_.uploads_delta;
      ++rs.delta_uploads;
    } else {
      stats_.upload_bytes_full += blob.size();
      ++stats_.uploads_full;
    }
    rs.upload_bytes += blob.size();
    if (options_.churn.upload_fail_rate > 0.0) {
      SplitMix64 fate =
          attempt_stream(options_.churn.seed, ev.trained_round, ev.device, ev.attempt);
      if (bernoulli(fate, options_.churn.upload_fail_rate)) damage_blob(blob, fate);
    }
    try {
      decoded = decode_upload(std::move(blob), base,
                              "upload from device " + std::to_string(ev.device));
      table = &*decoded;
    } catch (const SerializeError&) {
      delivered = false;
    }
    if (!delivered) {
      const std::uint32_t next_attempt = ev.attempt + 1;
      if (next_attempt >= options_.max_upload_attempts) {
        ++stats_.uploads_lost;
        ++rs.lost_uploads;
        continue;
      }
      SplitMix64 jitter =
          attempt_stream(options_.churn.seed ^ 0x1u, ev.trained_round, ev.device, ev.attempt);
      const std::int64_t delay =
          retry_delay_us(options_.retry_backoff, ev.attempt, jitter.next());
      heap.push_back(Event{ev.t_us + delay, Event::kUploadArrival, ev.device,
                           ev.trained_round, next_attempt, ev.table});
      std::push_heap(heap.begin(), heap.end(), later);
      ++stats_.uploads_retried;
      ++rs.retries;
      continue;
    }
    // Accepted. Only a strictly fresher table replaces a device's standing
    // upload (a very late round-k arrival after round-(k+1) already landed
    // is redundant, not a regression).
    if (!uploads_[ev.device].has_value() || uploads_[ev.device]->round < ev.trained_round) {
      uploads_[ev.device] = FleetUpload{*table, ev.trained_round};
      ++stats_.uploads_accepted;
      ++accepted_this_round;
      if (ev.trained_round < r) {
        ++stats_.late_uploads_merged;
        ++rs.late_merged;
      } else {
        ++rs.quorum;
      }
    }
  }

  // 5. Straggler deadline: whatever is still in flight carries into the
  //    next round as persisted PendingUploads - merged late rather than
  //    dropped, and never allowed to stall this round's close.
  for (Event& ev : heap) {
    NEXTGOV_ASSERT(ev.kind == Event::kUploadArrival);  // expiries resolve in-round
    pending_.push_back(PendingUpload{ev.device, ev.trained_round, ev.t_us, ev.attempt,
                                     std::move(arena[ev.table])});
  }
  std::sort(pending_.begin(), pending_.end(), [](const PendingUpload& a,
                                                 const PendingUpload& b) {
    return std::tie(a.arrival_us, a.device, a.trained_round, a.attempts_used) <
           std::tie(b.arrival_us, b.device, b.trained_round, b.attempts_used);
  });
  rs.carried_late = pending_.size();

  // 6. Graceful degradation merge: the staleness-weighted aggregate of
  //    every device's last accepted upload, aged by how many rounds ago it
  //    trained. Departed and straggling devices lean on their older
  //    uploads, exactly as the merge math intends; with no fresh arrivals
  //    at all the previous aggregate simply carries.
  if (accepted_this_round > 0) {
    std::vector<const rl::QTable*> tables;
    std::vector<double> staleness;
    for (const auto& upload : uploads_) {
      if (!upload.has_value()) continue;
      tables.push_back(&upload->table);
      staleness.push_back(static_cast<double>(r - upload->round));
    }
    last_aggregate_ = rl::merge_q_tables(tables, staleness, options_.merge_policy);
  }
  rs.global_states = last_aggregate_.has_value() ? last_aggregate_->state_count() : 0;
  last_round_mean_reward_ = rs.mean_reward;

  // 7. Round boundary: advance the clock, rotate the snapshot ring, report.
  clock_us_ = round_close;
  round_ = r + 1;
  ++stats_.rounds_served;
  write_ring_snapshot();
  rs.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();
  if (progress) progress(rs);
}

void FleetServer::run_rounds(std::size_t n, const FleetServerProgressFn& progress) {
  for (std::size_t i = 0; i < n; ++i) run_round(progress);
}

}  // namespace nextgov::sim
