// fleet_server.hpp - the long-running federated fleet server.
//
// train_fleet() (sim/fleet.hpp) runs the paper's Section IV-C cloud
// aggregation as a fixed number of lock-step rounds: every device trains,
// every upload lands instantly, the loop ends. A manufacturer's real fleet
// server has none of those luxuries - it runs indefinitely, devices come
// and go mid-round, uploads arrive late, damaged or not at all, and the
// process itself must survive being killed. FleetServer is that server,
// still fully deterministic: it advances a *simulated* clock through an
// event loop whose every stochastic element (departures, stragglers,
// upload failures) draws from seeded per-(round, device, attempt) streams,
// so two servers with the same options produce bit-identical Q-tables
// regardless of worker count, host, or how often the process was restarted
// in between.
//
// One round r occupies simulated time [r*round_deadline, (r+1)*round_deadline):
//
//   * registration & leases - every device registers at construction and
//     holds its lease by heartbeating every heartbeat_period. A departing
//     device (seeded draw) stops heartbeating at a seeded instant inside
//     the round; its lease expires lease_timeout after the last heartbeat,
//     the server discards the device's in-flight round (it never
//     contributes a partial table) and drops any of its still-pending
//     uploads. The device re-registers rejoin_after_rounds rounds later.
//     Until then the staleness weighting simply ages its last accepted
//     upload - the merge math already absorbs the gap;
//   * training - every leased, non-departing device trains for
//     round_duration of simulated device time (one batched plan through
//     the SoA runner, warm-started from the current global aggregate with
//     visit mass stripped - see strip_visit_mass);
//   * uploads - each trained table travels as CRC-guarded snapshot bytes
//     (the same serialize path train_fleet uses). A failed attempt (seeded
//     draw; damage is a byte flip or truncation, always caught by the
//     container's CRC/length checks) retries with bounded exponential
//     backoff + deterministic jitter, up to max_upload_attempts before the
//     table is lost. Stragglers (seeded draw) add a large delay before
//     their first attempt;
//   * straggler deadline & graceful degradation - the round closes at its
//     deadline no matter what: the server merges whatever quorum arrived
//     (staleness-weighted via rl::merge_q_tables, where a device's upload
//     ages by the rounds since it trained), carries still-in-flight
//     uploads into the next round instead of dropping them (they merge
//     late, with their honest staleness), and never stalls the fleet on
//     any one device;
//   * snapshot ring - every round boundary persists the complete server
//     state (global + per-device uploads + leases + pending uploads +
//     clock + counters, container version 2) to
//     `<snapshot_prefix>.<round mod snapshot_ring>`, keeping the last K
//     boundaries. Startup scans the ring, quarantines entries that fail
//     CRC (renamed to `<path>.corrupt` via read_snapshot_quarantining) and
//     restores from the newest valid one, so a kill -9 at any point loses
//     at most the round in progress - and replaying that round from the
//     boundary is bit-identical to never having died. Pinned by
//     tests/sim/fleet_server_golden_test.cpp and the fleet_serverd CI
//     crash-recovery smoke.
//
// examples/fleet_serverd.cpp wraps this in a daemon with SIGINT/SIGTERM
// drain; bench/perf_fleet_server.cpp measures round latency and
// degradation under churn (BENCH_fleet_server.json).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/fleet.hpp"

namespace nextgov::sim {

/// Seeded churn injection for a fleet-server run: who departs, who
/// straggles, whose uploads fail. All draws are deterministic in
/// (seed, round, device[, attempt]) - independent of worker count and of
/// each other - so a churning run is exactly as reproducible as a calm one.
struct FleetChurnPlan {
  std::uint64_t seed{0xC4A2u};
  /// Per-(device, round) probability the device stops heartbeating at a
  /// seeded instant inside the round: its lease expires, it trains nothing,
  /// its pending uploads are dropped, and it re-registers
  /// rejoin_after_rounds rounds later.
  double depart_rate{0.0};
  /// Rounds a departed device stays away before re-registering.
  std::size_t rejoin_after_rounds{2};
  /// Per-(device, round) probability the device's upload starts late enough
  /// (seeded delay of at least half a round) to usually miss the deadline
  /// and carry into the next round.
  double straggle_rate{0.0};
  /// Per-attempt probability an upload arrives damaged (byte flip or
  /// truncation, alternating by draw - always caught by the CRC/length
  /// checks) and must retry with exponential backoff.
  double upload_fail_rate{0.0};
};

struct FleetServerOptions {
  std::size_t devices{8};
  /// Per-device simulated training time per round.
  SimTime round_duration{SimTime::from_seconds(180.0)};
  /// Simulated length of one server round - the straggler deadline. The
  /// round closes at this wall regardless of who has arrived. Must leave
  /// room for a clean upload (round_duration + upload_latency) and for any
  /// lease expiry to resolve inside the round (round_duration +
  /// lease_timeout), so a boundary snapshot never holds a half-expired
  /// lease.
  SimTime round_deadline{SimTime::from_seconds(240.0)};
  /// App restart cadence inside a round (TrainingOptions::episode_length).
  SimTime episode_length{SimTime::from_seconds(60.0)};
  /// A leased device heartbeats this often; departure is detected at the
  /// last heartbeat before the seeded departure instant + lease_timeout.
  SimTime heartbeat_period{SimTime::from_seconds(5.0)};
  SimTime lease_timeout{SimTime::from_seconds(15.0)};
  /// Simulated transfer time of one upload attempt.
  SimTime upload_latency{SimTime::from_seconds(2.0)};
  /// Backoff after a failed attempt a (0-based) is
  /// retry_backoff * 2^a + jitter, jitter a seeded draw in [0, retry_backoff),
  /// both terms saturated at kMaxUploadRetryDelay (see retry_delay_us).
  SimTime retry_backoff{SimTime::from_seconds(4.0)};
  std::uint32_t max_upload_attempts{4};
  /// Device d trains round r with seed derive_seed(derive_seed(base_seed, d), r)
  /// - the same scheme as train_fleet, so trajectories are comparable.
  std::uint64_t base_seed{2020};
  core::NextConfig next_config{};
  Celsius ambient{Celsius{21.0}};
  rl::StalenessMergePolicy merge_policy{};
  FleetChurnPlan churn{};
  /// Keep the last K round-boundary snapshots as
  /// `<snapshot_prefix>.<round mod K>`. 0 = no persistence.
  std::size_t snapshot_ring{0};
  std::string snapshot_prefix{};
  /// Worker *processes* each round's training fans out across (via
  /// sim/multiproc.hpp; <= 1 = in-process). Pure execution strategy - the
  /// round's merged tables are bit-identical either way (pinned by
  /// tests/sim/fleet_server_test.cpp), so this is deliberately excluded
  /// from encode_fleet_server_options: a snapshot written single-process
  /// resumes sharded and vice versa.
  std::size_t processes{1};
  /// Upload wire strategy: when true, a device uploading the round it just
  /// trained encodes a QTableDelta against the round's warm-start table
  /// (strip_visit_mass of the global aggregate - the base the server still
  /// holds), so only the states the device touched travel. Uploads carried
  /// across a round boundary always go full (their base is gone by the time
  /// they arrive). The decoded table is bit-identical to the sender's on
  /// either path, so the trajectory and every golden are unchanged - only
  /// the byte counters differ. Pure wire strategy, deliberately excluded
  /// from encode_fleet_server_options like `processes`.
  bool delta_uploads{false};
};

/// Hard ceiling on one retry's delay (exponential backoff plus jitter,
/// each clamped to this independently). An hour of simulated time is ~15
/// default round deadlines - any retry pushed further out than that is
/// carried across rounds just the same, so capping here costs nothing
/// observable while keeping the delay arithmetic overflow-free for *any*
/// configured retry_backoff (a large backoff shifted by the attempt count
/// used to be signed-overflow UB; see retry_delay_us).
inline constexpr SimTime kMaxUploadRetryDelay = SimTime::from_seconds(3600.0);

/// Simulated delay before upload attempt `attempt + 1` after attempt
/// `attempt` (0-based) failed: retry_backoff * 2^attempt, doubling
/// saturated at kMaxUploadRetryDelay, plus a jitter term `jitter_draw`
/// reduced modulo the *clamped* base backoff - so the result is positive,
/// at most 2 * kMaxUploadRetryDelay.us(), and no intermediate value can
/// overflow regardless of how large retry_backoff was configured.
/// (The pre-fix code computed `retry_backoff.us() << min(attempt, 20)`,
/// which is UB for backoffs above ~2.9 hours; pinned by
/// FleetServerBackoff.* in tests/sim/fleet_server_test.cpp.)
[[nodiscard]] std::int64_t retry_delay_us(SimTime retry_backoff, std::uint32_t attempt,
                                          std::uint64_t jitter_draw) noexcept;

/// Validates geometry/timing/churn/persistence fields and throws a
/// descriptive ConfigError on the first violation. The FleetServer
/// constructor calls this up front.
void validate_fleet_server_options(const FleetServerOptions& options);

/// Canonical byte encoding of every FleetServerOptions field that
/// determines the trajectory (everything except the snapshot ring
/// geometry, which may be relocated between restarts). Stored inside each
/// ring snapshot and compared on restore, so a server restarted under
/// different options refuses to resume instead of silently diverging.
void encode_fleet_server_options(const FleetServerOptions& options, ByteWriter& out);

/// Per-round progress snapshot, handed to the progress callback after each
/// round closes (post-merge, post-snapshot).
struct FleetServerRoundStats {
  std::size_t round{0};
  std::size_t training_devices{0};  ///< leased, non-departing devices that trained
  std::size_t departures{0};        ///< leases expired mid-round
  std::size_t rejoined{0};          ///< departed devices that re-registered
  std::size_t quorum{0};            ///< this round's tables that beat the deadline
  std::size_t late_merged{0};       ///< earlier rounds' tables accepted this round
  std::size_t carried_late{0};      ///< uploads still in flight at the close
  std::size_t retries{0};           ///< failed attempts rescheduled this round
  std::size_t lost_uploads{0};      ///< tables dropped (attempts exhausted / lease expiry)
  std::size_t global_states{0};     ///< state count of the global aggregate
  double mean_reward{0.0};          ///< mean device reward of this round's trainees
  double wall_seconds{0.0};         ///< host wall-clock for this round
  std::uint64_t upload_bytes{0};    ///< wire bytes of this round's upload attempts
  std::size_t delta_uploads{0};     ///< attempts this round that went as deltas
};
using FleetServerProgressFn = std::function<void(const FleetServerRoundStats&)>;

/// Cumulative server statistics. The counters that determine replay or
/// reporting continuity (everything through `uploads_delta`) are persisted
/// in the snapshot ring; the per-process fields below them restart at zero
/// after a resume.
struct FleetServerStats {
  std::uint64_t rounds_served{0};
  std::uint64_t uploads_accepted{0};
  std::uint64_t uploads_retried{0};
  std::uint64_t uploads_lost{0};
  std::uint64_t late_uploads_merged{0};
  std::uint64_t departures{0};
  std::uint64_t total_decisions{0};
  // --- upload wire accounting (persisted via the v3 "sync_state" section;
  // counts every attempt put on the wire, including ones later damaged) ---
  std::uint64_t upload_bytes_full{0};
  std::uint64_t upload_bytes_delta{0};
  std::uint64_t uploads_full{0};
  std::uint64_t uploads_delta{0};
  // --- per-process (not persisted) ---
  std::uint64_t rejoins{0};
  std::size_t snapshots_written{0};
  std::size_t snapshots_quarantined{0};
};

/// The long-running fleet server. Construct it (restoring from the
/// snapshot ring when one is configured and holds a valid entry), then
/// call run_round()/run_rounds() as long as the process lives; drain()
/// persists a final boundary snapshot for a clean shutdown. Destroying
/// the server without drain() models kill -9: the next construction
/// resumes from the last ring boundary bit-identically.
class FleetServer {
 public:
  FleetServer(AppFactory app_factory, const FleetServerOptions& options,
              const RunnerOptions& runner = {});
  FleetServer(workload::AppId app, const FleetServerOptions& options,
              const RunnerOptions& runner = {});

  /// Executes one full round (train, event loop to the deadline, merge,
  /// ring snapshot) and advances the simulated clock to the next boundary.
  void run_round(const FleetServerProgressFn& progress = {});
  void run_rounds(std::size_t n, const FleetServerProgressFn& progress = {});

  /// Persists the current round boundary to the ring (no-op without a
  /// configured ring). Idempotent; called by the daemon on SIGINT/SIGTERM.
  void drain();

  /// Next round to execute (== rounds completed since round 0).
  [[nodiscard]] std::size_t round() const noexcept { return round_; }
  /// Simulated clock, at a round boundary between run_round() calls.
  [[nodiscard]] SimTime now() const noexcept { return SimTime::from_us(clock_us_); }
  /// Current global aggregate; nullptr before the first accepted upload.
  [[nodiscard]] const rl::QTable* global() const noexcept {
    return last_aggregate_.has_value() ? &*last_aggregate_ : nullptr;
  }
  [[nodiscard]] const FleetServerStats& stats() const noexcept { return stats_; }
  /// True when construction restored state from the snapshot ring.
  [[nodiscard]] bool restored() const noexcept { return restored_; }
  [[nodiscard]] const FleetServerOptions& options() const noexcept { return options_; }

 private:
  void restore_from_ring();
  void write_ring_snapshot();
  [[nodiscard]] std::string ring_path(std::size_t slot) const;
  [[nodiscard]] FleetSnapshot boundary_snapshot() const;

  AppFactory app_factory_;
  FleetServerOptions options_;
  RunnerOptions runner_;

  std::size_t round_{0};
  std::int64_t clock_us_{0};
  std::vector<DeviceLease> leases_;
  /// Last accepted upload per device (the staleness merge input).
  std::vector<std::optional<FleetUpload>> uploads_;
  std::vector<PendingUpload> pending_;
  std::optional<rl::QTable> last_aggregate_;
  double last_round_mean_reward_{0.0};
  FleetServerStats stats_;
  bool restored_{false};
};

}  // namespace nextgov::sim
