// multiproc.hpp - multi-process sharded sweep execution (fork + pipe).
//
// run_plan() tops out at one process's threads; serving a fleet of millions
// of simulated devices needs the next rung: shard a RunPlan / TrainingPlan
// across OS *processes*. run_plan_sharded() / run_training_plan_sharded()
// fork N workers (plain fork + pipe - no MPI, no sockets, no external
// dependency), give each a contiguous shard of the plan to run through the
// existing runner (threaded or batched, per MultiprocOptions), and stream
// every result back over the worker's pipe as length-prefixed,
// CRC32-guarded frames encoded with common/serialize's ByteWriter. The
// parent merges frames into plan order, so the merged vector is
// *bit-identical* to the single-process path - the same determinism
// contract (and the same gating) BatchRunner carries, asserted by
// tests/sim/multiproc_test.cpp and the perf_multiproc bench gate.
//
// Failure model: degrade, never wedge. A worker that dies (EOF before its
// done frame, SIGKILL mid-stream), corrupts a frame (CRC mismatch, framing
// violation) or exits nonzero has its *entire shard* re-run in the parent
// process through the very same runner entry point, which by the
// determinism contract reproduces the exact bytes the worker would have
// sent. Every shard's fate is surfaced in a ShardReport so callers can see
// recoveries happened; nothing is silently dropped and no worker failure
// can stall the sweep.
//
// Because every result crosses a process boundary, the wire codec below
// round-trips SessionResult / TrainingResult bit-exactly (floats travel as
// IEEE-754 bit patterns via ByteWriter); the codec is exposed for tests and
// for tools that persist merged sweep results (examples/matrix_sweep.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "sim/runner.hpp"

namespace nextgov::sim {

/// MultiprocFaultPlan shard index meaning "no shard".
inline constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

/// Deterministic worker-failure injection for tests, the recovery smoke
/// and the perf_multiproc recovery gate - the multi-process counterpart of
/// FleetFaultPlan. Defaults inject nothing.
struct MultiprocFaultPlan {
  /// This shard's worker SIGKILLs itself mid-stream (after
  /// `kill_after_frames` result frames, or just before its done frame for
  /// smaller shards), so the parent sees a truncated stream + a signaled
  /// child - exactly what a real crash looks like.
  std::size_t kill_shard{kNoShard};
  std::size_t kill_after_frames{1};
  /// This shard's worker flips one byte of its first frame's payload after
  /// the CRC was computed, modelling in-flight corruption; the parent must
  /// reject the stream on the CRC check.
  std::size_t corrupt_shard{kNoShard};
};

struct MultiprocOptions {
  /// Worker processes; 0 = one per hardware thread, and never more
  /// processes than plan cells (resolve_workers semantics). <= 1 after
  /// resolution runs the plan in-process with no forks.
  std::size_t processes{0};
  /// Worker *threads* inside each worker process (RunnerOptions
  /// semantics). Defaults to 1: with one process per core, per-process
  /// thread pools would only oversubscribe. Raise it when running few
  /// processes on a large host.
  std::size_t workers{1};
  /// Route each shard through the batch-resident BatchRunner
  /// (run_plan_batched / run_training_plan_batched) instead of the
  /// per-session pool - bit-identical either way, so this only changes
  /// throughput. train_fleet's `processes` knob sets it.
  bool batched{false};
  MultiprocFaultPlan faults{};
};

/// What happened to one shard of a sharded sweep.
struct ShardOutcome {
  std::size_t shard{0};
  std::size_t first_cell{0};  ///< plan index of the shard's first cell
  std::size_t cell_count{0};
  /// True when the worker's stream was rejected and the shard was re-run
  /// in the parent process (results still land, bit-identically).
  bool recovered{false};
  /// Why the worker's stream was rejected ("" for a healthy worker):
  /// truncated stream, CRC mismatch, framing violation, nonzero exit,
  /// death by signal, or a fork failure.
  std::string failure;
};

/// Merge-side accounting of one sharded sweep, for tests, the bench and
/// callers that want to surface degraded-but-complete sweeps.
struct ShardReport {
  std::size_t processes{0};  ///< worker processes actually forked
  std::vector<ShardOutcome> shards;
  std::uint64_t frames{0};  ///< result frames accepted off the pipes
  std::uint64_t bytes{0};   ///< frame payload bytes accepted

  [[nodiscard]] std::size_t recovered_shards() const noexcept {
    std::size_t n = 0;
    for (const auto& s : shards) {
      if (s.recovered) ++n;
    }
    return n;
  }
};

/// Executes `plan` sharded across forked worker processes and returns
/// results in plan order, bit-identical to run_plan(plan) (and therefore
/// to serial execution). `report`, when non-null, receives the per-shard
/// accounting including any worker recoveries.
[[nodiscard]] std::vector<SessionResult> run_plan_sharded(const RunPlan& plan,
                                                          const MultiprocOptions& options = {},
                                                          ShardReport* report = nullptr);

/// Training counterpart: bit-identical to run_training_plan(plan) in every
/// field the training determinism contract covers (wall_seconds measures
/// host time in whichever process ran the cell, by definition).
[[nodiscard]] std::vector<TrainingResult> run_training_plan_sharded(
    const TrainingPlan& plan, const MultiprocOptions& options = {},
    ShardReport* report = nullptr);

// --- the wire codec --------------------------------------------------------
// Bit-exact round trip (floats as IEEE-754 bit patterns): deserialize(
// serialize(r)) == r under sim::bit_identical / the training comparator.

void serialize_session_result(const SessionResult& r, ByteWriter& out);
[[nodiscard]] SessionResult deserialize_session_result(ByteReader& in);
void serialize_training_result(const TrainingResult& r, ByteWriter& out);
[[nodiscard]] TrainingResult deserialize_training_result(ByteReader& in);

}  // namespace nextgov::sim
