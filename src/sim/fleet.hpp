// fleet.hpp - sharded federated fleet training (paper Section IV-C at
// scale), with checkpoint/restore and fault injection.
//
// Section IV-C's cloud-training story is a manufacturer's fleet: many
// devices run the same app under different users, train locally, and the
// cloud periodically aggregates their Q-tables and pushes the merge back.
// train_fleet() simulates that end to end:
//
//   * N devices (one user seed each) are partitioned round-robin into
//     shards - a shard models a device group behind one edge aggregator;
//   * training proceeds in merge rounds: every device trains for
//     round_duration of simulated time, warm-started from its shard's
//     current aggregate (action values and tried masks; visit counts stay
//     with the aggregate so historical experience is never double-counted
//     across a shard's devices), with all devices of all shards fanned
//     out across the runner's shared worker pool and advanced lock-step
//     per worker through the SoA thermal batch stepper
//     (run_training_plan_batched - a round's cells are homogeneous by
//     construction);
//   * after each round a shard FedAvg-merges its previous aggregate with
//     its devices' fresh deltas (visit-weighted);
//   * shard s uploads to the global server every 1 + (s % sync_spread)
//     rounds - later shards phone home rarer, like real fleets where
//     connectivity and charging windows differ - and downloads the fresh
//     staleness-weighted global aggregate in return;
//   * the final global table is the staleness-weighted merge of each
//     shard's *last upload* (the server never sees fresher state).
//
// The paper's setting is inherently unreliable (phones go offline, uploads
// arrive stale or truncated), so the fleet is fault-tolerant by
// construction:
//
//   * FleetFaultPlan injects seeded per-round device dropout (a dropped
//     device trains nothing that round; its shard's next upload leans on
//     older experience, which the StalenessMergePolicy already weights
//     down) and corrupted/truncated uploads (damaged bytes are caught by
//     the snapshot CRC and rejected; the round degrades gracefully to the
//     surviving uploads and the shard retries at its next cadence);
//   * snapshot_every periodically persists the whole fleet state
//     (FleetSnapshot via common/serialize: versioned container, CRC32 per
//     section) and resume_from restarts from such a snapshot
//     *bit-identically* to a run that never stopped - a round's outcome is
//     a pure function of (options, round index, shard state at round
//     start), so replaying from any checkpoint converges on the same
//     bytes. Pinned by tests/sim/fleet_resume_golden_test.cpp and the
//     examples/fleet_checkpoint.cpp CI smoke step.
//
// Everything is deterministic in FleetOptions (device d, round r trains
// with seed derive_seed(derive_seed(base_seed, d), r); faults draw from
// their own derive_seed streams), so fleet training inherits the runner's
// bit-identical-across-worker-counts contract (wall_seconds excepted).
// Asserted by tests/sim/fleet_test.cpp and
// tests/integration/fleet_faults_test.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "rl/federated.hpp"
#include "sim/runner.hpp"

namespace nextgov::sim {

/// FleetFaultPlan::crash_at_round value meaning "never crash".
inline constexpr std::size_t kNoCrashRound = static_cast<std::size_t>(-1);

/// Thrown by train_fleet when FleetFaultPlan::crash_at_round fires: the
/// simulated process death for crash/resume tests. Carries no fleet state -
/// recovery goes through the last snapshot, exactly like a real crash.
class FleetCrash : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Seeded fault injection for a fleet run. All draws are deterministic in
/// (seed, round, device/shard) - independent of worker count and of each
/// other - so a faulted run is exactly as reproducible as a clean one.
struct FleetFaultPlan {
  std::uint64_t seed{0xFA017u};
  /// Per-(device, round) probability that the device misses the round
  /// entirely (offline / not charging): it does not train and contributes
  /// nothing to its shard's merge that round.
  double dropout_rate{0.0};
  /// Per-upload probability that a shard's upload arrives damaged (byte
  /// corruption or truncation, alternating by draw). The server rejects it
  /// via the CRC check; the shard keeps its local aggregate, skips the
  /// download, and retries at its next sync cadence while its previous
  /// upload ages through the staleness weighting.
  double upload_corruption_rate{0.0};
  /// Crash hook: after round K fully completes (including any due
  /// snapshot), train_fleet throws FleetCrash. kNoCrashRound = never.
  std::size_t crash_at_round{kNoCrashRound};
};

struct FleetOptions {
  std::size_t devices{8};
  std::size_t shards{2};
  std::size_t rounds{3};
  /// Per-device simulated training time per merge round.
  SimTime round_duration{SimTime::from_seconds(180.0)};
  /// App restart cadence inside a round (TrainingOptions::episode_length).
  SimTime episode_length{SimTime::from_seconds(60.0)};
  /// Device d's user stream is derive_seed(base_seed, d); each round
  /// re-derives so episodes never replay across rounds.
  std::uint64_t base_seed{2020};
  core::NextConfig next_config{};
  Celsius ambient{Celsius{21.0}};
  /// Shard s syncs with the global server every 1 + (s % sync_spread)
  /// rounds. 1 = synchronous FedAvg (no staleness anywhere).
  std::size_t sync_spread{2};
  rl::StalenessMergePolicy merge_policy{};
  FleetFaultPlan faults{};
  /// Persist a FleetSnapshot to snapshot_path after every N completed
  /// rounds (atomic replace). 0 = no snapshots.
  std::size_t snapshot_every{0};
  std::string snapshot_path{};
  /// Non-empty: restore the fleet from this snapshot and continue from its
  /// next round instead of starting fresh. The snapshot's recorded options
  /// must match (see load_fleet_snapshot); `rounds` may be larger than the
  /// snapshotted run's - the fleet simply trains further.
  std::string resume_from{};
  /// Worker *processes* each round's training fans out across (via
  /// sim/multiproc.hpp; <= 1 = in-process). Pure execution strategy - the
  /// merged round results are bit-identical regardless (pinned by
  /// tests/sim/fleet_test.cpp), so this is deliberately excluded from
  /// encode_fleet_options, like RunnerOptions::workers.
  std::size_t processes{1};
  /// Upload wire strategy: when true, a shard that has synced before encodes
  /// its upload as a QTableDelta (rl/qtable_delta.hpp) against the aggregate
  /// it downloaded at its last accepted sync - only the states touched since
  /// then travel, with signed visit deltas - and the server applies the
  /// delta to its mirror of that base. First-ever uploads, and any upload
  /// whose delta cannot replay bit-exactly (try_make_delta declines), fall
  /// back to the full table. Either way the decoded upload is bit-identical
  /// to the sender's table, so the run's trajectory - every merge, every
  /// golden - is unchanged; only FleetResult's upload byte counters differ.
  /// Pure wire strategy, so deliberately excluded from encode_fleet_options
  /// like `processes`: a snapshot written full-upload resumes delta and vice
  /// versa (pinned by tests/sim/fleet_test.cpp).
  bool delta_uploads{false};
};

/// Per-round progress snapshot, handed to FleetProgressFn after each merge.
struct FleetRoundStats {
  std::size_t round{0};                    ///< 0-based
  std::vector<std::size_t> shard_states;   ///< state count per shard aggregate
  std::vector<bool> shard_synced;          ///< uploaded to global this round?
  double mean_reward{0.0};                 ///< mean of this round's device rewards
  std::uint64_t round_decisions{0};        ///< decisions across all devices
  std::size_t dropped_devices{0};          ///< devices that missed this round
  std::size_t rejected_uploads{0};         ///< uploads the server refused (CRC)
  std::uint64_t upload_bytes{0};           ///< wire bytes of this round's uploads
  std::size_t delta_uploads{0};            ///< this round's uploads that went as deltas
};
using FleetProgressFn = std::function<void(const FleetRoundStats&)>;

/// FleetResult::shard_last_upload value for a shard whose sync cadence
/// never came due within the configured rounds.
inline constexpr std::size_t kNeverUploaded = static_cast<std::size_t>(-1);

struct FleetResult {
  rl::QTable global;                            ///< final staleness-weighted aggregate
  std::vector<rl::QTable> shard_tables;         ///< each shard's final local aggregate
  /// Round index of each shard's last upload, or kNeverUploaded.
  std::vector<std::size_t> shard_last_upload;
  std::size_t devices{0};
  std::size_t rounds{0};
  /// First round this call actually executed (> 0 when resumed).
  std::size_t start_round{0};
  std::uint64_t total_decisions{0};
  double device_sim_seconds{0.0};  ///< simulated training time per device
  double wall_seconds{0.0};        ///< host wall-clock for the whole fleet run
  double mean_final_reward{0.0};   ///< mean device reward in the last round
  // --- fault/persistence bookkeeping (cumulative across resumes) ---
  std::uint64_t dropped_device_rounds{0};  ///< (device, round) pairs lost to dropout
  std::uint64_t rejected_uploads{0};       ///< uploads refused by the CRC check
  std::size_t snapshots_written{0};        ///< by this call (not the resumed-from run)
  // --- upload wire accounting (cumulative across resumes) ---
  // Every upload travels as serialized bytes (full table or delta); these
  // count what was put on the wire, including attempts the fault plan later
  // damaged. With delta_uploads off, the delta counters stay zero.
  std::uint64_t upload_bytes_full{0};   ///< bytes of full-table uploads
  std::uint64_t upload_bytes_delta{0};  ///< bytes of delta-encoded uploads
  std::uint64_t uploads_full{0};        ///< uploads sent as full tables
  std::uint64_t uploads_delta{0};       ///< uploads sent as deltas
};

/// One shard's last accepted upload as the global server holds it.
struct FleetUpload {
  rl::QTable table;
  std::size_t round{0};
};

/// One device's lease as the long-running fleet server tracks it (snapshot
/// container version 2; see sim/fleet_server.hpp). A device holds its lease
/// by heartbeating; when heartbeats stop mid-round the lease expires, the
/// server discards the device's in-flight round, and the device re-registers
/// at `rejoin_round`.
struct DeviceLease {
  bool active{true};
  std::size_t rejoin_round{0};  ///< first round a departed device re-registers
};

/// A late upload still in flight at a round boundary: accepted-in-principle
/// bytes that will arrive (or keep retrying) during a later round. Persisted
/// so a restarted server replays the exact same arrivals.
struct PendingUpload {
  std::size_t device{0};
  std::size_t trained_round{0};    ///< round whose training produced the table
  std::int64_t arrival_us{0};      ///< absolute simulated arrival time of the next attempt
  std::uint32_t attempts_used{0};  ///< upload attempts already spent on this table
  rl::QTable table;
};

/// The complete persistent state of a fleet between rounds - everything a
/// resumed run needs to continue bit-identically. Serialized through the
/// common snapshot container (magic, version, per-section CRC32), together
/// with a canonical encoding of the FleetOptions that produced it so a
/// resume under different options is rejected instead of silently
/// diverging.
struct FleetSnapshot {
  std::size_t next_round{0};  ///< first round the resumed run executes
  std::uint64_t total_decisions{0};
  double last_round_mean_reward{0.0};
  std::uint64_t dropped_device_rounds{0};
  std::uint64_t rejected_uploads{0};
  std::vector<std::optional<rl::QTable>> shard_tables;
  std::vector<std::optional<FleetUpload>> uploads;
  std::vector<std::size_t> shard_last_upload;
  std::optional<rl::QTable> last_aggregate;

  // --- fleet-server extension (container version 2) ------------------------
  // Absent in version-1 files and in train_fleet checkpoints (where
  // has_server_state stays false and nothing extra is written); the
  // long-running FleetServer persists its lease/deadline/pending-upload
  // state here so a kill -9 at any round boundary resumes bit-identically.
  // For server snapshots `uploads`/`shard_last_upload` are *device*-indexed
  // (the server aggregates per device, not per shard) and `shard_tables` is
  // unused.
  struct ServerCounters {
    std::uint64_t rounds_served{0};
    std::uint64_t uploads_accepted{0};
    std::uint64_t uploads_retried{0};
    std::uint64_t uploads_lost{0};
    std::uint64_t late_uploads_merged{0};
    std::uint64_t departures{0};
  };
  bool has_server_state{false};
  std::vector<DeviceLease> leases;            ///< per device
  std::vector<PendingUpload> pending_uploads;  ///< in flight across the boundary
  std::int64_t server_clock_us{0};            ///< simulated clock at the boundary
  ServerCounters server_counters;

  // --- delta-upload extension (container version 3, "sync_state" section) --
  // The per-shard delta bases and the cumulative upload-wire counters, so a
  // resumed run replays the same delta/full upload decisions and keeps
  // counting from where it stopped. Absent in version-1/2 files: the bases
  // then restore empty and every shard's first post-resume upload simply
  // goes out full - the trajectory is unaffected either way (the decoded
  // upload is always bit-identical to the sender's table). FleetServer
  // snapshots persist only the counters (its delta base is the round's warm
  // table, recomputed from last_aggregate on restore), leaving `bases`
  // empty.
  struct SyncState {
    /// Per shard: the aggregate downloaded at the shard's last accepted
    /// sync (the delta base), or nullopt if it never synced.
    std::vector<std::optional<rl::QTable>> bases;
    /// Per shard: round index of that last accepted sync (kNeverUploaded
    /// when `bases` is nullopt there).
    std::vector<std::size_t> cursors;
    std::uint64_t upload_bytes_full{0};
    std::uint64_t upload_bytes_delta{0};
    std::uint64_t uploads_full{0};
    std::uint64_t uploads_delta{0};
  };
  SyncState sync;
};

/// Validates the geometry/cadence/fault/persistence fields of `options` and
/// throws a descriptive ConfigError on the first violation (zero devices,
/// zero shards or more shards than devices, zero rounds, sync_spread == 0,
/// fault rates outside their ranges, snapshot_every set without a
/// snapshot_path, ...). train_fleet() calls this up front so degenerate
/// configurations fail fast instead of producing silent no-op runs.
void validate_fleet_options(const FleetOptions& options);

/// Canonical byte encoding of every FleetOptions field that determines the
/// trajectory (devices/shards/seeds/durations/NextConfig/merge policy/fault
/// rates - deliberately *excluding* `rounds`, the crash hook and the
/// snapshot/resume plumbing, so a resumed run may extend the round count or
/// drop the crash). Stored inside each snapshot and compared on load.
void encode_fleet_options(const FleetOptions& options, ByteWriter& out);

/// Persists `snapshot` (+ the options encoding) to `path` atomically.
void save_fleet_snapshot(const FleetSnapshot& snapshot, const FleetOptions& options,
                         const std::string& path);

/// Loads and validates a fleet snapshot. Throws IoError if unreadable and
/// SerializeError (with a descriptive message) on bad magic, unsupported
/// version, truncation or CRC mismatch. A file that fails validation for
/// corruption (as opposed to a version-window refusal) is *quarantined*:
/// renamed to `<path>.corrupt` and logged via common/log, so a damaged
/// snapshot cannot sit at `path` failing every restart.
[[nodiscard]] FleetSnapshot load_fleet_snapshot(const std::string& path);

/// Same, but additionally requires the snapshot's recorded options to match
/// `expected` (by canonical encoding); mismatch throws SerializeError.
[[nodiscard]] FleetSnapshot load_fleet_snapshot(const std::string& path,
                                                const FleetOptions& expected);

/// Trains a sharded fleet on `app_factory`'s app and returns the final
/// global aggregate. `runner.workers` sizes the shared pool each round.
/// `progress` (optional) fires once per completed merge round.
[[nodiscard]] FleetResult train_fleet(AppFactory app_factory, const FleetOptions& options,
                                      const RunnerOptions& runner = {},
                                      const FleetProgressFn& progress = {});

/// Same for a catalog app.
[[nodiscard]] FleetResult train_fleet(workload::AppId app, const FleetOptions& options,
                                      const RunnerOptions& runner = {},
                                      const FleetProgressFn& progress = {});

// --- snapshot plumbing shared with the long-running server -----------------
// (sim/fleet_server.hpp composes its own snapshot container - server options
// + the fleet state + the server extension - from the same codec, so the two
// persistence paths can never drift.)

/// Canonical encoding of a NextConfig (every field the agent's trajectory
/// depends on). Part of the options-identity blob of both fleet and
/// fleet-server snapshots.
void encode_next_config(const core::NextConfig& config, ByteWriter& out);

/// Writes the "fleet_state" section (when snapshot.has_server_state, the
/// version-2 "server_state" section) and the version-3 "sync_state" section
/// into `out`.
void write_fleet_state_sections(SnapshotWriter& out, const FleetSnapshot& snapshot);

/// Decodes what write_fleet_state_sections() wrote. Version-1 containers
/// (no "server_state" section) decode with the server fields defaulted;
/// pre-version-3 containers (no "sync_state" section) decode with empty
/// delta bases and zero upload counters.
[[nodiscard]] FleetSnapshot read_fleet_state_sections(const SnapshotReader& in);

/// Reads and fully validates the snapshot container at `path`. On a
/// corruption failure (bad magic, truncation, CRC mismatch) the damaged
/// file is renamed to `<path>.corrupt`, the rename is logged via
/// common/log, and the SerializeError is rethrown naming the quarantine
/// location. Version-window refusals do NOT quarantine: the file is valid,
/// just written by a different release.
[[nodiscard]] SnapshotReader read_snapshot_quarantining(const std::string& path);

/// Copy of `table` carrying its action values and tried masks but no visit
/// mass. Warm-starting devices from this keeps historical visit mass
/// counted exactly once - via the aggregate itself - instead of once per
/// device, which would inflate it by the fleet size every round and swamp
/// the staleness weighting.
[[nodiscard]] rl::QTable strip_visit_mass(const rl::QTable& table);

// --- upload wire codec (shared by train_fleet and FleetServer) -------------
// One CRC-guarded snapshot container per upload, holding either an "upload"
// section (the full table) or a "delta" section (a QTableDelta against a
// base both ends hold). decode_upload(encode_upload(t, ...)) == t
// bit-exactly on both paths, so the wire strategy is invisible to the
// training trajectory; damaged bytes always surface as SerializeError via
// the container's CRC/length checks.

/// Encodes `table` as upload wire bytes: a delta against `*delta_base` when
/// a base is given and the delta can replay bit-exactly (see
/// rl::try_make_delta), else the full table. `*went_delta` (optional)
/// reports which path was taken.
[[nodiscard]] std::vector<std::uint8_t> encode_upload(const rl::QTable& table,
                                                      const rl::QTable* delta_base,
                                                      bool* went_delta = nullptr);

/// Decodes upload wire bytes produced by encode_upload. When the blob is a
/// delta, `delta_base` must be the same base the sender encoded against;
/// a missing or mismatched base throws SerializeError, exactly like any
/// damaged blob.
[[nodiscard]] rl::QTable decode_upload(std::vector<std::uint8_t> blob,
                                       const rl::QTable* delta_base,
                                       const std::string& label);

}  // namespace nextgov::sim
