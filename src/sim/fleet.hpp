// fleet.hpp - sharded federated fleet training (paper Section IV-C at
// scale).
//
// Section IV-C's cloud-training story is a manufacturer's fleet: many
// devices run the same app under different users, train locally, and the
// cloud periodically aggregates their Q-tables and pushes the merge back.
// train_fleet() simulates that end to end:
//
//   * N devices (one user seed each) are partitioned round-robin into
//     shards - a shard models a device group behind one edge aggregator;
//   * training proceeds in merge rounds: every device trains for
//     round_duration of simulated time, warm-started from its shard's
//     current aggregate (action values and tried masks; visit counts stay
//     with the aggregate so historical experience is never double-counted
//     across a shard's devices), with all devices of all shards fanned
//     out across the runner's shared worker pool and advanced lock-step
//     per worker through the SoA thermal batch stepper
//     (run_training_plan_batched - a round's cells are homogeneous by
//     construction);
//   * after each round a shard FedAvg-merges its previous aggregate with
//     its devices' fresh deltas (visit-weighted);
//   * shard s uploads to the global server every 1 + (s % sync_spread)
//     rounds - later shards phone home rarer, like real fleets where
//     connectivity and charging windows differ - and downloads the fresh
//     staleness-weighted global aggregate in return;
//   * the final global table is the staleness-weighted merge of each
//     shard's *last upload* (the server never sees fresher state).
//
// Everything is deterministic in FleetOptions (device d, round r trains
// with seed derive_seed(derive_seed(base_seed, d), r)), so fleet training
// inherits the runner's bit-identical-across-worker-counts contract
// (wall_seconds excepted). Asserted by tests/sim/fleet_test.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rl/federated.hpp"
#include "sim/runner.hpp"

namespace nextgov::sim {

struct FleetOptions {
  std::size_t devices{8};
  std::size_t shards{2};
  std::size_t rounds{3};
  /// Per-device simulated training time per merge round.
  SimTime round_duration{SimTime::from_seconds(180.0)};
  /// App restart cadence inside a round (TrainingOptions::episode_length).
  SimTime episode_length{SimTime::from_seconds(60.0)};
  /// Device d's user stream is derive_seed(base_seed, d); each round
  /// re-derives so episodes never replay across rounds.
  std::uint64_t base_seed{2020};
  core::NextConfig next_config{};
  Celsius ambient{Celsius{21.0}};
  /// Shard s syncs with the global server every 1 + (s % sync_spread)
  /// rounds. 1 = synchronous FedAvg (no staleness anywhere).
  std::size_t sync_spread{2};
  rl::StalenessMergePolicy merge_policy{};
};

/// Per-round progress snapshot, handed to FleetProgressFn after each merge.
struct FleetRoundStats {
  std::size_t round{0};                    ///< 0-based
  std::vector<std::size_t> shard_states;   ///< state count per shard aggregate
  std::vector<bool> shard_synced;          ///< uploaded to global this round?
  double mean_reward{0.0};                 ///< mean of this round's device rewards
  std::uint64_t round_decisions{0};        ///< decisions across all devices
};
using FleetProgressFn = std::function<void(const FleetRoundStats&)>;

/// FleetResult::shard_last_upload value for a shard whose sync cadence
/// never came due within the configured rounds.
inline constexpr std::size_t kNeverUploaded = static_cast<std::size_t>(-1);

struct FleetResult {
  rl::QTable global;                            ///< final staleness-weighted aggregate
  std::vector<rl::QTable> shard_tables;         ///< each shard's final local aggregate
  /// Round index of each shard's last upload, or kNeverUploaded.
  std::vector<std::size_t> shard_last_upload;
  std::size_t devices{0};
  std::size_t rounds{0};
  std::uint64_t total_decisions{0};
  double device_sim_seconds{0.0};  ///< simulated training time per device
  double wall_seconds{0.0};        ///< host wall-clock for the whole fleet run
  double mean_final_reward{0.0};   ///< mean device reward in the last round
};

/// Trains a sharded fleet on `app_factory`'s app and returns the final
/// global aggregate. `runner.workers` sizes the shared pool each round.
/// `progress` (optional) fires once per completed merge round.
[[nodiscard]] FleetResult train_fleet(AppFactory app_factory, const FleetOptions& options,
                                      const RunnerOptions& runner = {},
                                      const FleetProgressFn& progress = {});

/// Same for a catalog app.
[[nodiscard]] FleetResult train_fleet(workload::AppId app, const FleetOptions& options,
                                      const RunnerOptions& runner = {},
                                      const FleetProgressFn& progress = {});

}  // namespace nextgov::sim
