#include "sim/runner.hpp"

#include <atomic>
#include <exception>
#include <optional>
#include <thread>

#include "common/error.hpp"

namespace nextgov::sim {

// --- the shared worker pool ------------------------------------------------

std::size_t resolve_workers(std::size_t requested, std::size_t tasks) noexcept {
  std::size_t workers = requested;
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw > 0 ? hw : 1;
  }
  return std::min(workers, tasks);
}

void run_indexed_tasks(std::size_t n, std::size_t workers,
                       const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  require(static_cast<bool>(task), "run_indexed_tasks needs a task");

  std::vector<std::exception_ptr> errors(n);
  const auto execute = [&](std::size_t i) {
    try {
      task(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) execute(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          execute(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept {
  // SplitMix64 finalizer over the combined (base, index) state: adjacent
  // indices land in unrelated streams.
  std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// --- evaluation sweeps -----------------------------------------------------

void RunPlan::add(workload::AppId app, const ExperimentConfig& config) {
  add([app](std::uint64_t seed) { return workload::make_app(app, seed); },
      std::string{workload::to_string(app)}, config);
}

void RunPlan::add(AppFactory factory, std::string name, const ExperimentConfig& config) {
  require(static_cast<bool>(factory), "RunPlan::add needs an app factory");
  sessions_.push_back(SessionSpec{std::move(name), std::move(factory), config});
}

void RunPlan::add_grid(std::span<const workload::AppId> apps,
                       std::span<const GovernorKind> governors,
                       std::span<const std::uint64_t> seeds, const ExperimentConfig& base) {
  for (const workload::AppId app : apps) {
    for (const GovernorKind governor : governors) {
      for (const std::uint64_t seed : seeds) {
        ExperimentConfig config = base;
        config.governor = governor;
        config.seed = seed;
        add(app, config);
      }
    }
  }
}

std::vector<SessionResult> run_plan(const RunPlan& plan, const RunnerOptions& options) {
  std::vector<SessionResult> results(plan.size());
  run_indexed_tasks(plan.size(), resolve_workers(options.workers, plan.size()),
                    [&](std::size_t i) {
                      const SessionSpec& spec = plan.sessions()[i];
                      results[i] = run_session(spec.app_factory, spec.name, spec.config);
                    });
  return results;
}

// --- training sweeps -------------------------------------------------------

void TrainingPlan::add(workload::AppId app, const core::NextConfig& config,
                       const TrainingOptions& options) {
  add([app](std::uint64_t seed) { return workload::make_app(app, seed); },
      std::string{workload::to_string(app)}, config, options);
}

void TrainingPlan::add(AppFactory factory, std::string name, const core::NextConfig& config,
                       const TrainingOptions& options) {
  require(static_cast<bool>(factory), "TrainingPlan::add needs an app factory");
  cells_.push_back(TrainingSpec{std::move(name), std::move(factory), config, options});
}

void TrainingPlan::add_seed_sweep(workload::AppId app, const core::NextConfig& config,
                                  const TrainingOptions& base, std::size_t count,
                                  std::uint64_t base_seed) {
  for (std::size_t i = 0; i < count; ++i) {
    TrainingOptions options = base;
    options.seed = derive_seed(base_seed, i);
    add(app, config, options);
  }
}

std::vector<TrainingResult> run_training_plan(const TrainingPlan& plan,
                                              const RunnerOptions& options) {
  // TrainingResult carries a QTable (no default state), so cells land in
  // optional slots and are moved out once the pool has drained.
  std::vector<std::optional<TrainingResult>> slots(plan.size());
  run_indexed_tasks(plan.size(), resolve_workers(options.workers, plan.size()),
                    [&](std::size_t i) {
                      const TrainingSpec& cell = plan.cells()[i];
                      slots[i] = train_next_on(cell.app_factory, cell.config, cell.options);
                    });
  std::vector<TrainingResult> results;
  results.reserve(plan.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

}  // namespace nextgov::sim
