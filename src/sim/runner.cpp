#include "sim/runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "core/next_agent.hpp"
#include "soc/power_batch.hpp"
#include "thermal/rc_batch.hpp"

namespace nextgov::sim {

// --- the shared worker pool ------------------------------------------------

std::size_t resolve_workers(std::size_t requested, std::size_t tasks) noexcept {
  std::size_t workers = requested;
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw > 0 ? hw : 1;
  }
  return std::min(workers, tasks);
}

void run_indexed_tasks(std::size_t n, std::size_t workers,
                       const std::function<void(std::size_t)>& task) {
  if (n == 0) return;
  require(static_cast<bool>(task), "run_indexed_tasks needs a task");

  std::vector<std::exception_ptr> errors(n);
  const auto execute = [&](std::size_t i) {
    try {
      task(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) execute(i);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          execute(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept {
  // SplitMix64 finalizer over the combined (base, index) state: adjacent
  // indices land in unrelated streams.
  std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// --- evaluation sweeps -----------------------------------------------------

void RunPlan::add(workload::AppId app, const ExperimentConfig& config) {
  add([app](std::uint64_t seed) { return workload::make_app(app, seed); },
      std::string{workload::to_string(app)}, config);
}

void RunPlan::add(AppFactory factory, std::string name, const ExperimentConfig& config) {
  require(static_cast<bool>(factory), "RunPlan::add needs an app factory");
  sessions_.push_back(SessionSpec{std::move(name), std::move(factory), config});
}

void RunPlan::add_grid(std::span<const workload::AppId> apps,
                       std::span<const GovernorKind> governors,
                       std::span<const std::uint64_t> seeds, const ExperimentConfig& base) {
  for (const workload::AppId app : apps) {
    for (const GovernorKind governor : governors) {
      for (const std::uint64_t seed : seeds) {
        ExperimentConfig config = base;
        config.governor = governor;
        config.seed = seed;
        add(app, config);
      }
    }
  }
}

std::vector<SessionResult> run_plan(const RunPlan& plan, const RunnerOptions& options) {
  std::vector<SessionResult> results(plan.size());
  run_indexed_tasks(plan.size(), resolve_workers(options.workers, plan.size()),
                    [&](std::size_t i) {
                      const SessionSpec& spec = plan.sessions()[i];
                      results[i] = run_session(spec.app_factory, spec.name, spec.config);
                    });
  return results;
}

// --- training sweeps -------------------------------------------------------

void TrainingPlan::add(workload::AppId app, const core::NextConfig& config,
                       const TrainingOptions& options) {
  add([app](std::uint64_t seed) { return workload::make_app(app, seed); },
      std::string{workload::to_string(app)}, config, options);
}

void TrainingPlan::add(AppFactory factory, std::string name, const core::NextConfig& config,
                       const TrainingOptions& options) {
  require(static_cast<bool>(factory), "TrainingPlan::add needs an app factory");
  cells_.push_back(TrainingSpec{std::move(name), std::move(factory), config, options});
}

void TrainingPlan::add_seed_sweep(workload::AppId app, const core::NextConfig& config,
                                  const TrainingOptions& base, std::size_t count,
                                  std::uint64_t base_seed) {
  for (std::size_t i = 0; i < count; ++i) {
    TrainingOptions options = base;
    options.seed = derive_seed(base_seed, i);
    add(app, config, options);
  }
}

std::vector<TrainingResult> run_training_plan(const TrainingPlan& plan,
                                              const RunnerOptions& options) {
  // TrainingResult carries a QTable (no default state), so cells land in
  // optional slots and are moved out once the pool has drained.
  std::vector<std::optional<TrainingResult>> slots(plan.size());
  run_indexed_tasks(plan.size(), resolve_workers(options.workers, plan.size()),
                    [&](std::size_t i) {
                      const TrainingSpec& cell = plan.cells()[i];
                      slots[i] = train_next_on(cell.app_factory, cell.config, cell.options);
                    });
  std::vector<TrainingResult> results;
  results.reserve(plan.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

// --- batched (structure-of-arrays) lock-step execution ---------------------

namespace {

/// Engines alive per worker are bounded by this when max_batch is 0: each
/// holds an app, a soc and a recorder, so an unbounded fleet-sized batch
/// would trade the SoA win for memory pressure.
constexpr std::size_t kDefaultMaxBatch = 32;

/// Below this SoA width lock-step batching is pointless: perf_thermal_batch
/// measures parity (within noise) at 4 sessions and real gains from ~8-16
/// up, so auto-sizing keeps shares of >= 4 (wash or better, and wider on
/// bigger plans) and degenerates narrower shares to singleton batches -
/// the per-session path, with the plan still fanned across the pool. An
/// explicit max_batch is a request for lock-step batching and is honored
/// as given.
constexpr std::size_t kMinAutoBatch = 4;

/// Splits each homogeneity group into lock-step batches: even shares
/// across the workers, capped at `max_batch` (kDefaultMaxBatch when auto).
/// Group order (and index order inside a group) is preserved, so batching
/// never reorders results.
std::vector<std::vector<std::size_t>> make_batches(
    const std::vector<std::vector<std::size_t>>& groups, std::size_t workers,
    std::size_t max_batch) {
  std::vector<std::vector<std::size_t>> batches;
  for (const auto& group : groups) {
    std::size_t size;
    if (max_batch > 0) {
      // Explicit width: honored as given (BatchOptions doc), independent
      // of the worker count.
      size = std::min(max_batch, group.size());
    } else {
      const std::size_t share = (group.size() + workers - 1) / workers;
      size = std::clamp<std::size_t>(share, 1, kDefaultMaxBatch);
      if (size < kMinAutoBatch) size = 1;
    }
    for (std::size_t at = 0; at < group.size(); at += size) {
      const std::size_t end = std::min(group.size(), at + size);
      batches.emplace_back(group.begin() + static_cast<std::ptrdiff_t>(at),
                           group.begin() + static_cast<std::ptrdiff_t>(end));
    }
  }
  return batches;
}

/// True when the built engines can actually share one RcBatch: identical
/// topology object and identical step. (Grouping keys only see the specs;
/// this is the ground-truth check against the engines.)
bool lockstep_compatible(const std::vector<std::unique_ptr<Engine>>& engines) {
  if (engines.size() < 2) return false;
  const auto& topo = engines.front()->thermal().topology();
  const SimTime dt = engines.front()->config().step;
  for (const auto& e : engines) {
    if (e->thermal().topology().get() != topo.get() || e->config().step != dt) return false;
  }
  return true;
}

/// The per-group SoA state of the batch-resident pipeline: the shared
/// thermal batch the engines are attached to, the group's power batch, and
/// the cluster-junction lane pointers wiring the two together.
struct ResidentPipeline {
  thermal::RcBatch rc;
  soc::PowerBatch power;
  std::vector<const double*> temp_lanes;
  std::vector<double*> power_lanes;
};

/// Merges one batch's local phase timings into the shared sink. Locked per
/// *batch* (not per tick), so the hot loop only pays clock reads.
std::mutex g_phase_timings_mutex;
void merge_phase_timings(BatchPhaseTimings* sink, const BatchPhaseTimings& local) {
  if (sink == nullptr) return;
  const std::lock_guard<std::mutex> lock{g_phase_timings_mutex};
  sink->pre_s += local.pre_s;
  sink->power_s += local.power_s;
  sink->thermal_s += local.thermal_s;
  sink->observe_s += local.observe_s;
  sink->post_s += local.post_s;
  sink->scatter_s += local.scatter_s;
  sink->ticks += local.ticks;
}

/// Builds the group's resident pipeline and parks every engine's thermal
/// state in it. Returns null - with nothing attached - when the group
/// can't share one pipeline (heterogeneous topology/step/SoC/junction
/// wiring), in which case callers fall back to per-session stepping.
/// Heap-allocated because every engine's batch_ pointer refers to the
/// pipeline's RcBatch: the address must outlive the attachment.
std::unique_ptr<ResidentPipeline> make_resident(std::vector<std::unique_ptr<Engine>>& engines) {
  if (!lockstep_compatible(engines)) return nullptr;
  Engine& ref = *engines.front();
  const auto& nodes = ref.cluster_nodes();
  soc::PowerBatch power{ref.soc(), engines.size()};
  if (power.cluster_count() != nodes.size()) return nullptr;
  for (const auto& e : engines) {
    if (e->cluster_nodes() != nodes || !power.compatible(e->soc())) return nullptr;
  }
  auto r = std::make_unique<ResidentPipeline>(ResidentPipeline{
      thermal::RcBatch{ref.thermal().topology(), engines.size()}, std::move(power), {}, {}});
  for (const thermal::NodeId node : nodes) {
    r->temp_lanes.push_back(r->rc.temperature_lane(node));
    r->power_lanes.push_back(r->rc.power_lane(node));
  }
  // Attach last: from here on the lanes hold the live state, so every
  // earlier bail-out above leaves the engines untouched.
  for (std::size_t s = 0; s < engines.size(); ++s) {
    engines[s]->attach_thermal_batch(r->rc, s);
  }
  return r;
}

/// Advances every engine of an attached group by `duration` with the whole
/// step pipeline batched: per tick, all pre-phases, one [cluster][session]
/// power sweep straight into the thermal power lanes, one SoA thermal
/// solve, all observe phases (reading the temperature lanes in place), the
/// group's due Next control points as one control_group sweep (other meta
/// governors fall back per session), then all finish phases. Cross-session
/// phase reordering is free - sessions are independent - and per session
/// the phase order is exactly step(), so the result is bit-identical to
/// per-session stepping.
void advance_resident(std::vector<std::unique_ptr<Engine>>& engines, ResidentPipeline& r,
                      SimTime duration, BatchPhaseTimings* timings) {
  const SimTime dt = engines.front()->config().step;
  const std::int64_t ticks = (duration.us() + dt.us() - 1) / dt.us();
  const std::size_t n = engines.size();
  std::vector<core::NextAgent*> due_agents;
  std::vector<const governors::Observation*> due_obs;
  std::vector<soc::Soc*> due_socs;
  std::vector<Engine*> due_engines;
  due_agents.reserve(n);
  due_obs.reserve(n);
  due_socs.reserve(n);
  due_engines.reserve(n);

  // The untimed (production) loop fuses the per-engine phases into two
  // sweeps per tick - each engine's state is pulled into cache twice, not
  // five times - around the two group-wide SoA kernels. The group's due
  // Next agents decide as one control_group sweep; their finish phase is
  // deferred past that decision, every other engine finishes in the same
  // pass. Per engine the phase order is exactly step(), so fusing changes
  // nothing bit-wise.
  const auto fused_tick = [&] {
    for (std::size_t s = 0; s < n; ++s) {
      Engine& e = *engines[s];
      e.step_pre_power();
      e.push_power_inputs(r.power, s);
    }
    r.power.evaluate(r.temp_lanes, r.power_lanes);
    r.rc.step(dt);
    due_agents.clear();
    due_obs.clear();
    due_socs.clear();
    due_engines.clear();
    for (std::size_t s = 0; s < n; ++s) {
      Engine& e = *engines[s];
      e.set_device_power(r.power.device_power(s));
      e.step_post_observe();
      if (e.meta_control_due()) {
        if (core::NextAgent* agent = e.next_agent(); agent != nullptr) {
          e.skip_meta_control();
          due_agents.push_back(agent);
          due_obs.push_back(&e.observation());
          due_socs.push_back(&e.soc());
          due_engines.push_back(&e);
          continue;  // finish runs after the group decision
        }
        e.step_post_meta();
      }
      e.step_post_finish();
    }
    if (!due_agents.empty()) {
      core::NextAgent::control_group(due_agents, due_obs, due_socs);
      for (Engine* e : due_engines) e->step_post_finish();
    }
  };

  if (timings == nullptr) {
    for (std::int64_t t = 0; t < ticks; ++t) fused_tick();
    return;
  }

  // The timed loop keeps the phases in separate sweeps so each lap is
  // attributable; it is bit-identical to the fused loop (same per-engine
  // order), just laid out for measurement instead of cache locality.
  using Clock = std::chrono::steady_clock;
  Clock::time_point mark;
  const auto lap = [&](double BatchPhaseTimings::* phase) {
    const Clock::time_point now = Clock::now();
    timings->*phase += std::chrono::duration<double>(now - mark).count();
    mark = now;
  };
  for (std::int64_t t = 0; t < ticks; ++t) {
    mark = Clock::now();
    for (auto& e : engines) e->step_pre_power();
    lap(&BatchPhaseTimings::pre_s);
    for (std::size_t s = 0; s < n; ++s) engines[s]->push_power_inputs(r.power, s);
    r.power.evaluate(r.temp_lanes, r.power_lanes);
    for (std::size_t s = 0; s < n; ++s) engines[s]->set_device_power(r.power.device_power(s));
    lap(&BatchPhaseTimings::power_s);
    r.rc.step(dt);
    lap(&BatchPhaseTimings::thermal_s);
    for (auto& e : engines) e->step_post_observe();
    lap(&BatchPhaseTimings::observe_s);
    due_agents.clear();
    due_obs.clear();
    due_socs.clear();
    for (auto& e : engines) {
      if (!e->meta_control_due()) continue;
      if (core::NextAgent* agent = e->next_agent(); agent != nullptr) {
        e->skip_meta_control();
        due_agents.push_back(agent);
        due_obs.push_back(&e->observation());
        due_socs.push_back(&e->soc());
      } else {
        e->step_post_meta();
      }
    }
    if (!due_agents.empty()) core::NextAgent::control_group(due_agents, due_obs, due_socs);
    for (auto& e : engines) e->step_post_finish();
    lap(&BatchPhaseTimings::post_s);
  }
  timings->ticks += ticks * static_cast<std::int64_t>(n);
}

/// One evaluation batch: build the group's engines, advance lock-step
/// (falling back to per-session stepping when the group degenerates), and
/// summarize into plan-order slots.
void run_session_batch(const RunPlan& plan, const std::vector<std::size_t>& indices,
                       std::vector<SessionResult>& results, BatchPhaseTimings* timings) {
  std::vector<std::unique_ptr<Engine>> engines;
  engines.reserve(indices.size());
  for (const std::size_t idx : indices) {
    const SessionSpec& spec = plan.sessions()[idx];
    engines.push_back(make_engine(spec.app_factory, spec.config));
  }
  const SimTime duration = plan.sessions()[indices.front()].config.duration;
  BatchPhaseTimings local;
  const bool timed = timings != nullptr;
  using Clock = std::chrono::steady_clock;
  Clock::time_point mark;
  if (timed) mark = Clock::now();
  auto resident = make_resident(engines);
  if (timed) local.scatter_s += std::chrono::duration<double>(Clock::now() - mark).count();
  if (resident != nullptr) {
    advance_resident(engines, *resident, duration, timed ? &local : nullptr);
    if (timed) mark = Clock::now();
    for (auto& e : engines) e->detach_thermal_batch();
    if (timed) {
      local.scatter_s += std::chrono::duration<double>(Clock::now() - mark).count();
      merge_phase_timings(timings, local);
    }
  } else {
    for (auto& e : engines) e->run(duration);
  }
  for (std::size_t s = 0; s < engines.size(); ++s) {
    const SessionSpec& spec = plan.sessions()[indices[s]];
    results[indices[s]] =
        summarize(*engines[s], spec.name, std::string{to_string(spec.config.governor)});
  }
}

/// One training batch: the exact train_next_on() control flow (chunked
/// episodes, convergence bookkeeping, episode resets) applied to a group
/// of cells lock-step. Grouping guarantees identical (max_duration,
/// episode_length) and stop_at_convergence unset, so every cell hits the
/// same chunk and reset boundaries.
void run_training_batch(const TrainingPlan& plan, const std::vector<std::size_t>& indices,
                        std::vector<std::optional<TrainingResult>>& slots,
                        BatchPhaseTimings* timings) {
  const std::size_t n = indices.size();
  if (n < 2) {
    // Singleton batches (early-stopping cells, degenerate shares) go
    // straight to the per-cell path - no point building an engine here
    // only to rebuild it inside train_next_on.
    for (const std::size_t idx : indices) {
      const TrainingSpec& cell = plan.cells()[idx];
      slots[idx] = train_next_on(cell.app_factory, cell.config, cell.options);
    }
    return;
  }
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<core::NextAgent*> agents(n);
  engines.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const TrainingSpec& cell = plan.cells()[indices[i]];
    engines.push_back(make_training_engine(cell.app_factory, cell.config, cell.options));
    agents[i] = dynamic_cast<core::NextAgent*>(engines[i]->meta());
    NEXTGOV_ASSERT(agents[i] != nullptr);
  }
  auto resident = make_resident(engines);
  if (resident == nullptr) {
    // Ground-truth homogeneity failed (an engine with a foreign topology,
    // step or SoC): rare, and the per-cell path is the correct fallback.
    for (const std::size_t idx : indices) {
      const TrainingSpec& cell = plan.cells()[idx];
      slots[idx] = train_next_on(cell.app_factory, cell.config, cell.options);
    }
    return;
  }
  BatchPhaseTimings local;

  const TrainingOptions& options = plan.cells()[indices.front()].options;
  SimTime trained = SimTime::zero();
  std::uint64_t episode = 0;
  std::vector<TrainingConvergence> convergence(n);

  while (trained < options.max_duration) {
    SimTime episode_left = options.episode_length;
    while (episode_left.us() > 0 && trained < options.max_duration) {
      const SimTime chunk = std::min(kTrainingCheckChunk, episode_left);
      advance_resident(engines, *resident, chunk, timings != nullptr ? &local : nullptr);
      trained += chunk;
      episode_left = episode_left - chunk;
      for (std::size_t i = 0; i < n; ++i) {
        convergence[i].on_chunk(agents[i]->q_table().state_count(), agents[i]->decisions(),
                                trained.seconds());
      }
    }
    ++episode;
    // User re-opens the app (train_next_on semantics): fresh app + cold
    // thermal state per cell, learned Q-tables persist. reset_session is
    // lane-aware, so the attached batch resets along with the engine.
    for (std::size_t i = 0; i < n; ++i) {
      const TrainingSpec& cell = plan.cells()[indices[i]];
      engines[i]->reset_session(cell.app_factory(cell.options.seed + episode + 1));
    }
  }
  for (auto& e : engines) e->detach_thermal_batch();
  merge_phase_timings(timings, local);

  // The batch's wall time covers all n interleaved cells; attribute an
  // even share to each so per-cell wall_seconds stays comparable to
  // run_training_plan's per-cell measurement (consumers sum or rate it).
  const double wall_per_cell =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count() /
      static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    slots[indices[i]] = make_training_result(*agents[i], convergence[i], trained, wall_per_cell);
  }
}

/// Groups indices by key in first-appearance order (deterministic for a
/// given plan regardless of worker count).
template <typename Key, typename KeyFn>
std::vector<std::vector<std::size_t>> group_indices(std::size_t n, const KeyFn& key_of) {
  std::vector<Key> keys;
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < n; ++i) {
    const Key key = key_of(i);
    std::size_t g = 0;
    while (g < keys.size() && !(keys[g] == key)) ++g;
    if (g == keys.size()) {
      keys.push_back(key);
      groups.emplace_back();
    }
    groups[g].push_back(i);
  }
  return groups;
}

}  // namespace

std::vector<SessionResult> BatchRunner::run(const RunPlan& plan) const {
  std::vector<SessionResult> results(plan.size());
  if (plan.empty()) return results;

  // Lock-step needs every session of a batch to run the same tick count.
  const auto groups = group_indices<std::int64_t>(
      plan.size(), [&](std::size_t i) { return plan.sessions()[i].config.duration.us(); });
  const std::size_t workers = resolve_workers(options_.workers, plan.size());
  const auto batches = make_batches(groups, workers, options_.max_batch);
  run_indexed_tasks(
      batches.size(), resolve_workers(options_.workers, batches.size()),
      [&](std::size_t b) { run_session_batch(plan, batches[b], results, options_.phase_timings); });
  return results;
}

std::vector<TrainingResult> BatchRunner::run(const TrainingPlan& plan) const {
  std::vector<std::optional<TrainingResult>> slots(plan.size());
  if (!plan.empty()) {
    // Early-stopping cells have data-dependent control flow, so they can't
    // share a lock-step clock; a negative key gives each its own singleton
    // group (distinct keys), which run_training_batch routes to the
    // per-cell path.
    std::int64_t next_singleton = -1;
    const auto groups = group_indices<std::pair<std::int64_t, std::int64_t>>(
        plan.size(), [&](std::size_t i) {
          const TrainingOptions& o = plan.cells()[i].options;
          if (o.stop_at_convergence) return std::pair{std::int64_t{-1}, next_singleton--};
          return std::pair{o.max_duration.us(), o.episode_length.us()};
        });
    const std::size_t workers = resolve_workers(options_.workers, plan.size());
    const auto batches = make_batches(groups, workers, options_.max_batch);
    run_indexed_tasks(batches.size(), resolve_workers(options_.workers, batches.size()),
                      [&](std::size_t b) {
                        run_training_batch(plan, batches[b], slots, options_.phase_timings);
                      });
  }
  std::vector<TrainingResult> results;
  results.reserve(plan.size());
  for (auto& slot : slots) results.push_back(std::move(*slot));
  return results;
}

std::vector<SessionResult> run_plan_batched(const RunPlan& plan, const BatchOptions& options) {
  return BatchRunner{options}.run(plan);
}

std::vector<TrainingResult> run_training_plan_batched(const TrainingPlan& plan,
                                                      const BatchOptions& options) {
  return BatchRunner{options}.run(plan);
}

}  // namespace nextgov::sim
