#include "sim/runner.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "common/error.hpp"

namespace nextgov::sim {

void RunPlan::add(workload::AppId app, const ExperimentConfig& config) {
  add([app](std::uint64_t seed) { return workload::make_app(app, seed); },
      std::string{workload::to_string(app)}, config);
}

void RunPlan::add(AppFactory factory, std::string name, const ExperimentConfig& config) {
  require(static_cast<bool>(factory), "RunPlan::add needs an app factory");
  sessions_.push_back(SessionSpec{std::move(name), std::move(factory), config});
}

void RunPlan::add_grid(std::span<const workload::AppId> apps,
                       std::span<const GovernorKind> governors,
                       std::span<const std::uint64_t> seeds, const ExperimentConfig& base) {
  for (const workload::AppId app : apps) {
    for (const GovernorKind governor : governors) {
      for (const std::uint64_t seed : seeds) {
        ExperimentConfig config = base;
        config.governor = governor;
        config.seed = seed;
        add(app, config);
      }
    }
  }
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept {
  // SplitMix64 finalizer over the combined (base, index) state: adjacent
  // indices land in unrelated streams.
  std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<SessionResult> run_plan(const RunPlan& plan, const RunnerOptions& options) {
  const std::size_t n = plan.size();
  std::vector<SessionResult> results(n);
  if (n == 0) return results;

  std::size_t workers = options.workers;
  if (workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw > 0 ? hw : 1;
  }
  workers = std::min(workers, n);

  std::vector<std::exception_ptr> errors(n);
  const auto execute = [&](std::size_t i) {
    const SessionSpec& spec = plan.sessions()[i];
    try {
      results[i] = run_session(spec.app_factory, spec.name, spec.config);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  };

  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) execute(i);
  } else {
    // Dynamic work stealing off a shared counter: sessions vary wildly in
    // length (games run 300 s, Spotify 105 s), so static striping would
    // leave workers idle behind the longest stripe.
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          execute(i);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
  return results;
}

}  // namespace nextgov::sim
