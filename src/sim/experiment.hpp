// experiment.hpp - the evaluation harness.
//
// One call = one of the paper's measurements: run an app under a governor
// configuration for a session and collect the summary statistics the
// figures report (average power, average/peak temperatures, FPS, PPDW).
// Training helpers reproduce Section IV-B's per-app online training and the
// Section IV-C cloud-timing measurements.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/next_agent.hpp"
#include "rl/qtable.hpp"
#include "sim/engine.hpp"
#include "workload/apps.hpp"
#include "workload/session.hpp"

namespace nextgov::sim {

/// Which governor stack to run (see governors/ and core/).
enum class GovernorKind {
  kSchedutil,    ///< stock baseline: schedutil, no meta governor
  kPerformance,  ///< all clusters pinned at fmax (PPDW_worst operating point)
  kPowersave,    ///< all clusters pinned at fmin
  kOndemand,     ///< classic ondemand baseline
  kIntQos,       ///< schedutil + Int. QoS PM caps (games)
  kNext,         ///< schedutil + Next agent
};

[[nodiscard]] std::string_view to_string(GovernorKind kind) noexcept;

struct ExperimentConfig {
  GovernorKind governor{GovernorKind::kSchedutil};
  SimTime duration{SimTime::from_seconds(150.0)};
  std::uint64_t seed{1};
  Celsius ambient{Celsius{21.0}};
  /// Panel refresh rate (EngineConfig::refresh_hz). 60 Hz throughout the
  /// paper; the scenario library's 90/120 Hz variants raise it. For kNext
  /// on a high-refresh panel also raise next_config.ppdw_bounds.fps_max.
  double refresh_hz{60.0};
  SimTime record_period{SimTime::from_seconds(1.0)};
  core::NextConfig next_config{};
  /// For kNext: a trained table to deploy (greedy). Null = untrained.
  const rl::QTable* trained_table{nullptr};
  /// For kNext with trained_table == nullptr: train online during the run.
  core::AgentMode next_mode{core::AgentMode::kDeployed};
};

/// End-of-session summary; series holds the recorder samples.
struct SessionResult {
  std::string app;
  std::string governor;
  double duration_s{0.0};
  double avg_power_w{0.0};
  double peak_power_w{0.0};
  double avg_temp_big_c{0.0};
  double peak_temp_big_c{0.0};
  double avg_temp_device_c{0.0};
  double peak_temp_device_c{0.0};
  double avg_fps{0.0};
  double energy_j{0.0};
  std::int64_t frames_presented{0};
  std::int64_t frames_dropped{0};
  double avg_ppdw{0.0};
  std::vector<Sample> series;
};

using AppFactory = std::function<std::unique_ptr<workload::App>(std::uint64_t seed)>;

/// Builds a ready-to-run engine for the given stack (public so examples can
/// drive the loop themselves).
[[nodiscard]] std::unique_ptr<Engine> make_engine(AppFactory app_factory,
                                                  const ExperimentConfig& config);

/// Runs a full session of `app` under `config` and summarizes it.
[[nodiscard]] SessionResult run_app_session(workload::AppId app, const ExperimentConfig& config);

/// Same for an arbitrary app factory (e.g. the Fig. 1 multi-app session).
[[nodiscard]] SessionResult run_session(AppFactory app_factory, std::string app_name,
                                        const ExperimentConfig& config);

/// Summarizes an engine after it ran.
[[nodiscard]] SessionResult summarize(const Engine& engine, std::string app_name,
                                      std::string governor_name);

/// True when two results are bit-identical in every summary field and the
/// whole recorded series (Sample is all-double, so memcmp equality is
/// exactly bitwise equality per sample). This is the comparator behind the
/// runner's determinism contract; perf_throughput, scenario_matrix and the
/// scenario property tests all check the *same* predicate.
[[nodiscard]] bool bit_identical(const SessionResult& a, const SessionResult& b) noexcept;

// --- training (Section IV-B/C) -------------------------------------------

struct TrainingOptions {
  SimTime max_duration{SimTime::from_seconds(1200.0)};
  SimTime episode_length{SimTime::from_seconds(60.0)};  ///< app restart cadence
  std::uint64_t seed{99};
  Celsius ambient{Celsius{21.0}};
  /// Panel refresh rate the agent trains against (scenario variants train
  /// at 90/120 Hz; the paper trains at 60).
  double refresh_hz{60.0};
  /// true: end training the moment the convergence detector fires (the
  /// paper's measured "training time", Fig. 6). false: keep refining until
  /// max_duration (the "fully trained" tables used in the evaluation).
  bool stop_at_convergence{false};
  /// Warm start: the agent begins from a copy of this table (action values
  /// and visit counts) instead of cold, and keeps learning. This is how
  /// federated merge rounds resume per-device training from the previous
  /// round's aggregate (Section IV-C). Null = cold start. The pointee must
  /// outlive the training call.
  const rl::QTable* initial_table{nullptr};
};

struct TrainingResult {
  rl::QTable table;
  bool converged{false};
  double sim_seconds{0.0};   ///< simulated (= on-device) training time
  double wall_seconds{0.0};  ///< host wall-clock (= cloud compute) time
  std::uint64_t decisions{0};
  double final_mean_reward{0.0};
  std::size_t states_visited{0};
};

/// Trains Next online on one app until convergence (or max_duration),
/// restarting the app every episode like a user re-opening it.
[[nodiscard]] TrainingResult train_next(workload::AppId app, const core::NextConfig& config,
                                        const TrainingOptions& options);

/// Same for an arbitrary app factory.
[[nodiscard]] TrainingResult train_next_on(AppFactory app_factory,
                                           const core::NextConfig& config,
                                           const TrainingOptions& options);

// --- plumbing shared between train_next_on() and the batched trainer -------
// (sim::BatchRunner advances many homogeneous training cells lock-step; it
// must follow *exactly* the control flow of train_next_on, so the pieces
// live here instead of being re-implemented.)

/// Cadence at which training re-checks convergence; also the lock-step
/// chunk granularity of the batched trainer.
inline constexpr SimTime kTrainingCheckChunk = SimTime::from_seconds(1.0);

/// Engine wired for one online-training cell: the Next stack in training
/// mode, warm-started from options.initial_table when set.
[[nodiscard]] std::unique_ptr<Engine> make_training_engine(const AppFactory& app_factory,
                                                           const core::NextConfig& config,
                                                           const TrainingOptions& options);

/// The convergence detector applied after every trained chunk. Convergence
/// = TD errors settled (enough decisions) AND the quantized state space
/// stopped growing: the agent keeps discovering new states for as long as
/// the discretization is finer, which is exactly what makes finer FPS
/// quantization train longer (the paper's Fig. 6).
struct TrainingConvergence {
  static constexpr int kCoverageSettleChunks = 45;  // 45 s without real discovery
  std::size_t prev_states{0};
  int settled_chunks{0};
  bool converged{false};
  double sim_seconds_at_convergence{0.0};

  /// Feed the agent's state after one more kTrainingCheckChunk of training.
  void on_chunk(std::size_t states_now, std::uint64_t decisions, double trained_s) noexcept;
};

/// Assembles the TrainingResult train_next_on() returns (also used by the
/// batched trainer so the summary fields can never drift).
[[nodiscard]] TrainingResult make_training_result(const core::NextAgent& agent,
                                                  const TrainingConvergence& convergence,
                                                  SimTime trained, double wall_seconds);

}  // namespace nextgov::sim
