#include "sim/recorder.hpp"

#include "common/csv.hpp"
#include "common/error.hpp"

namespace nextgov::sim {

Recorder::Recorder(SimTime period) : period_{period} {
  require(period.us() > 0, "recorder period must be positive");
}

std::vector<double> Recorder::column(double Sample::* field) const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.*field);
  return out;
}

void Recorder::save_csv(const std::string& path) const {
  CsvWriter csv{path,
                {"time_s", "fps", "target_fps", "f_big_mhz", "f_little_mhz", "f_gpu_mhz",
                 "cap_big_mhz", "cap_little_mhz", "cap_gpu_mhz", "power_w", "temp_big_c",
                 "temp_little_c", "temp_gpu_c", "temp_device_c", "temp_skin_c", "ppdw"}};
  for (const auto& s : samples_) {
    csv.row({s.time_s, s.fps, s.target_fps, s.f_big_mhz, s.f_little_mhz, s.f_gpu_mhz,
             s.cap_big_mhz, s.cap_little_mhz, s.cap_gpu_mhz, s.power_w, s.temp_big_c,
             s.temp_little_c, s.temp_gpu_c, s.temp_device_c, s.temp_skin_c, s.ppdw});
  }
}

}  // namespace nextgov::sim
