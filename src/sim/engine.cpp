#include "sim/engine.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"
#include "core/next_agent.hpp"
#include "core/ppdw.hpp"
#include "soc/power_batch.hpp"
#include "soc/power_model.hpp"
#include "soc/sensors.hpp"
#include "thermal/rc_batch.hpp"

namespace nextgov::sim {

Engine::Engine(soc::Soc soc, std::unique_ptr<workload::App> app,
               std::unique_ptr<governors::FreqGovernor> freq_gov,
               std::unique_ptr<governors::MetaGovernor> meta_gov, EngineConfig config)
    : config_{config},
      soc_{std::move(soc)},
      thermal_{thermal::make_note9_thermal(config.ambient)},
      pipeline_{render::PipelineConfig{.refresh_hz = config.refresh_hz, .back_buffers = 2}},
      app_{std::move(app)},
      freq_gov_{std::move(freq_gov)},
      meta_gov_{std::move(meta_gov)},
      recorder_{config.record_period} {
  require(app_ != nullptr, "engine needs an app");
  require(freq_gov_ != nullptr, "engine needs a frequency governor");
  require(config_.step.us() > 0, "engine step must be positive");
  loads_.assign(soc_.cluster_count(), soc::ClusterLoad{});
  obs_.clusters.resize(soc_.cluster_count());
  soc_.reset();
  for (const auto& c : soc_.clusters()) throttle_ceiling_.push_back(c.opps().size() - 1);
  next_agent_ = dynamic_cast<core::NextAgent*>(meta_gov_.get());
  if (meta_gov_ != nullptr) meta_sample_period_ = meta_gov_->sample_period();
  cluster_node_ = {thermal_.nodes.big, thermal_.nodes.little, thermal_.nodes.gpu};
  rebuild_observation(/*force=*/true);
}

void Engine::apply_thermal_throttle() {
  if (!config_.thermal_throttle) return;
  if (now_ >= next_throttle_) {
    next_throttle_ = now_ + config_.throttle_period;
    const std::array<double, 3> junction{obs_.sensors.big.value(), obs_.sensors.little.value(),
                                         obs_.sensors.gpu.value()};
    for (std::size_t i = 0; i < soc_.cluster_count(); ++i) {
      if (junction[i] > config_.throttle_limit_c) {
        if (throttle_ceiling_[i] > 0) --throttle_ceiling_[i];
      } else if (junction[i] < config_.throttle_limit_c - config_.throttle_hysteresis_c) {
        const std::size_t top = soc_.cluster(i).opps().size() - 1;
        if (throttle_ceiling_[i] < top) ++throttle_ceiling_[i];
      }
    }
  }
  // Clamp every step: governors are the usual movers, but the public soc()
  // accessor lets external drivers change operating points between steps
  // too, and the scan is three compares.
  for (std::size_t i = 0; i < soc_.cluster_count(); ++i) {
    auto& c = soc_.cluster(i);
    if (c.freq_index() > throttle_ceiling_[i]) c.set_freq_index(throttle_ceiling_[i]);
  }
}

void Engine::update_loads(const render::PipelineStepResult& pr) {
  const double dt_s = config_.step.seconds();
  const auto& bg = app_->background();

  // Background demand is specified at the highest OPP; at lower clocks the
  // same work occupies proportionally more time (PELT-style scaling).
  const auto scaled = [](double demand, const soc::Cluster& c) {
    return std::min(1.0, demand * c.inv_relative_speed());
  };

  const auto& big = soc_.big();
  const double render_busy = std::min(1.0, pr.cpu_busy_seconds / dt_s);
  // The render thread and the hottest background thread can land on the
  // same core; summing (capped) is the conservative-hot choice PELT's
  // per-CPU max tracking approximates.
  loads_[soc::ClusterIndex::kBig].busy_hot =
      std::min(1.0, render_busy + scaled(bg.big_hot, big));
  loads_[soc::ClusterIndex::kBig].busy_avg = std::min(
      1.0, render_busy / static_cast<double>(big.core_count()) + scaled(bg.big_avg, big));

  const auto& little = soc_.little();
  const double agent_util = meta_gov_ ? config_.agent_little_util : 0.0;
  loads_[soc::ClusterIndex::kLittle].busy_hot =
      std::min(1.0, scaled(bg.little_hot, little) + agent_util);
  loads_[soc::ClusterIndex::kLittle].busy_avg =
      std::min(1.0, scaled(bg.little_avg, little) +
                        agent_util / static_cast<double>(little.core_count()));

  const auto& gpu = soc_.gpu();
  const double gpu_busy =
      std::min(1.0, pr.gpu_busy_seconds / dt_s + scaled(bg.gpu_avg, gpu));
  loads_[soc::ClusterIndex::kGpu].busy_hot = gpu_busy;
  loads_[soc::ClusterIndex::kGpu].busy_avg = gpu_busy;
}

bool Engine::observation_consumer_due() const noexcept {
  if (now_ >= next_freq_gov_ || now_ >= next_record_) return true;
  if (config_.thermal_throttle && now_ >= next_throttle_) return true;
  if (meta_gov_ != nullptr) {
    if (now_ >= next_meta_) return true;
    if (meta_sample_period_.us() > 0 && now_ >= next_meta_sample_) return true;
  }
  return false;
}

void Engine::rebuild_observation(bool force) {
  obs_.now = now_;
  if (force || observation_consumer_due()) {
    for (std::size_t i = 0; i < soc_.cluster_count(); ++i) {
      const auto& c = soc_.cluster(i);
      auto& o = obs_.clusters[i];
      o.freq_index = c.freq_index();
      o.cap_index = c.max_cap_index();
      o.opp_count = c.opps().size();
      o.frequency = c.frequency();
      o.max_frequency = c.opps().highest().frequency;
      o.busy_hot = loads_[i].busy_hot;
      o.busy_avg = loads_[i].busy_avg;
    }
    obs_.fps = pipeline_.current_fps(now_);
    obs_.drop_rate = pipeline_.current_drop_rate(now_);
  }

  const auto& nodes = thermal_.nodes;
  const Celsius t_big = soc::quantize_temperature(Celsius{node_temp(nodes.big)});
  const Celsius t_little = soc::quantize_temperature(Celsius{node_temp(nodes.little)});
  const Celsius t_gpu = soc::quantize_temperature(Celsius{node_temp(nodes.gpu)});
  const Celsius t_batt = soc::quantize_temperature(Celsius{node_temp(nodes.battery)});
  const Celsius t_skin = soc::quantize_temperature(Celsius{node_temp(nodes.skin)});
  obs_.sensors.big = t_big;
  obs_.sensors.little = t_little;
  obs_.sensors.gpu = t_gpu;
  obs_.sensors.battery = t_batt;
  obs_.sensors.skin = t_skin;
  obs_.sensors.device =
      soc::quantize_temperature(soc::virtual_device_temperature(t_batt, t_skin, t_big, t_little, t_gpu));
  obs_.sensors.power = soc::quantize_power(device_power_);
}

double Engine::node_temp(thermal::NodeId id) const noexcept {
  return batch_ != nullptr ? batch_->temperature_lane(id)[batch_lane_]
                           : thermal_.network.temperatures_raw()[id];
}

void Engine::record_if_due() {
  if (now_ < next_record_) return;
  next_record_ = now_ + recorder_.period();

  Sample s;
  s.time_s = now_.seconds();
  s.fps = obs_.fps.value();
  if (next_agent_ != nullptr) s.target_fps = next_agent_->current_target_fps();
  s.f_big_mhz = soc_.big().frequency().mhz();
  s.f_little_mhz = soc_.little().frequency().mhz();
  s.f_gpu_mhz = soc_.gpu().frequency().mhz();
  s.cap_big_mhz = soc_.big().max_cap_frequency().mhz();
  s.cap_little_mhz = soc_.little().max_cap_frequency().mhz();
  s.cap_gpu_mhz = soc_.gpu().max_cap_frequency().mhz();
  s.power_w = obs_.sensors.power.value();
  s.temp_big_c = obs_.sensors.big.value();
  s.temp_little_c = obs_.sensors.little.value();
  s.temp_gpu_c = obs_.sensors.gpu.value();
  s.temp_device_c = obs_.sensors.device.value();
  s.temp_skin_c = obs_.sensors.skin.value();
  s.ppdw = core::ppdw(s.fps, Watts{s.power_w}, Celsius{s.temp_big_c}, config_.ambient);
  recorder_.add(s);
}

void Engine::step_pre_power() {
  // 1. app behaviour advances.
  app_->update(now_, config_.step);

  // 2. frames execute at the current operating points.
  const auto pr = pipeline_.step(now_, config_.step, soc_.big().frequency().hz(),
                                 soc_.gpu().frequency().hz(), *app_);
  totals_.frames_presented += pr.frames_presented;
  totals_.frames_dropped += pr.frames_dropped;
  update_loads(pr);
}

void Engine::apply_power_model() {
  // 3. utilization -> power, injected into the network for the solve.
  NEXTGOV_ASSERT(batch_ == nullptr);
  auto& net = thermal_.network;
  Watts soc_power{0.0};
  for (std::size_t i = 0; i < soc_.cluster_count(); ++i) {
    const Celsius junction = net.temperature(cluster_node_[i]);
    const Watts p = soc::cluster_power(soc_.cluster(i), loads_[i], junction);
    net.set_power(cluster_node_[i], p);
    soc_power += p;
  }
  const auto& device = soc_.device_power();
  device_power_ = soc_power + device.display + device.rest_of_device;
  net.set_power(thermal_.nodes.skin, device.display);
  net.set_power(thermal_.nodes.soc_board, device.rest_of_device);
}

void Engine::step_pre_thermal() {
  step_pre_power();
  apply_power_model();
}

void Engine::step_post_observe() {
  now_ += config_.step;

  // 5. sensors + sampled stream + kernel governor. The meta governor's
  // control point is only latched here; running it is its own phase so a
  // batch driver can sweep a whole group's agents at once.
  rebuild_observation();
  if (meta_gov_ != nullptr) {
    if (meta_sample_period_.us() > 0 && now_ >= next_meta_sample_) {
      meta_gov_->on_sample(obs_);
      next_meta_sample_ = now_ + meta_sample_period_;
    }
  }
  if (now_ >= next_freq_gov_) {
    freq_gov_->control(obs_, soc_);
    next_freq_gov_ = now_ + freq_gov_->period();
  }
  if (meta_gov_ != nullptr && now_ >= next_meta_) {
    meta_due_ = true;
    next_meta_ = now_ + meta_gov_->period();
  }
}

void Engine::step_post_meta() {
  if (!meta_due_) return;
  meta_due_ = false;
  meta_gov_->control(obs_, soc_);
}

void Engine::step_post_finish() {
  apply_thermal_throttle();

  // 6. bookkeeping.
  totals_.power_w.add(device_power_.value());
  totals_.temp_big_c.add(obs_.sensors.big.value());
  totals_.temp_device_c.add(obs_.sensors.device.value());
  totals_.energy_j += device_power_.value() * config_.step.seconds();
  record_if_due();
}

void Engine::step_post_thermal() {
  step_post_observe();
  step_post_meta();
  step_post_finish();
}

void Engine::attach_thermal_batch(thermal::RcBatch& batch, std::size_t lane) {
  require(batch_ == nullptr, "engine is already attached to a thermal batch");
  batch.load_state(lane, thermal_.network);  // validates the shared topology
  // The serial power phase rewrites the constant non-cluster node powers
  // every tick; a resident lane receives them once here (same values).
  const auto& device = soc_.device_power();
  batch.set_power(lane, thermal_.nodes.skin, device.display);
  batch.set_power(lane, thermal_.nodes.soc_board, device.rest_of_device);
  batch_ = &batch;
  batch_lane_ = lane;
}

void Engine::detach_thermal_batch() {
  if (batch_ == nullptr) return;
  batch_->store_temperatures(batch_lane_, thermal_.network);
  batch_ = nullptr;
}

void Engine::push_power_inputs(soc::PowerBatch& batch, std::size_t lane) const {
  for (std::size_t i = 0; i < soc_.cluster_count(); ++i) {
    batch.set_input(lane, i, soc_.cluster(i).freq_index(), loads_[i].busy_avg);
  }
}

void Engine::step() {
  step_pre_thermal();
  // 4. heat flows.
  thermal_.network.step(config_.step);
  step_post_thermal();
}

void Engine::run(SimTime duration) {
  const SimTime end = now_ + duration;
  while (now_ < end) step();
}

double Engine::average_fps() const noexcept {
  const double elapsed = now_.seconds();
  return elapsed > 0.0 ? static_cast<double>(totals_.frames_presented) / elapsed : 0.0;
}

void Engine::reset_session(std::unique_ptr<workload::App> new_app) {
  require(new_app != nullptr, "reset_session needs an app");
  app_ = std::move(new_app);
  pipeline_.reset(now_);
  thermal_.network.set_all_temperatures(config_.ambient);
  if (batch_ != nullptr) batch_->set_all_temperatures(batch_lane_, config_.ambient);
  soc_.reset();
  freq_gov_->reset();
  if (meta_gov_) meta_gov_->reset();
  totals_ = EngineTotals{};
  meta_due_ = false;
  for (std::size_t i = 0; i < soc_.cluster_count(); ++i) {
    throttle_ceiling_[i] = soc_.cluster(i).opps().size() - 1;
  }
  rebuild_observation(/*force=*/true);
}

}  // namespace nextgov::sim
