#include "sim/multiproc.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"

namespace nextgov::sim {

// --- the wire codec --------------------------------------------------------

void serialize_session_result(const SessionResult& r, ByteWriter& out) {
  out.str(r.app);
  out.str(r.governor);
  out.f64(r.duration_s);
  out.f64(r.avg_power_w);
  out.f64(r.peak_power_w);
  out.f64(r.avg_temp_big_c);
  out.f64(r.peak_temp_big_c);
  out.f64(r.avg_temp_device_c);
  out.f64(r.peak_temp_device_c);
  out.f64(r.avg_fps);
  out.f64(r.energy_j);
  out.i64(r.frames_presented);
  out.i64(r.frames_dropped);
  out.f64(r.avg_ppdw);
  out.u64(r.series.size());
  for (const Sample& s : r.series) {
    out.f64(s.time_s);
    out.f64(s.fps);
    out.f64(s.target_fps);
    out.f64(s.f_big_mhz);
    out.f64(s.f_little_mhz);
    out.f64(s.f_gpu_mhz);
    out.f64(s.cap_big_mhz);
    out.f64(s.cap_little_mhz);
    out.f64(s.cap_gpu_mhz);
    out.f64(s.power_w);
    out.f64(s.temp_big_c);
    out.f64(s.temp_little_c);
    out.f64(s.temp_gpu_c);
    out.f64(s.temp_device_c);
    out.f64(s.temp_skin_c);
    out.f64(s.ppdw);
  }
}

SessionResult deserialize_session_result(ByteReader& in) {
  SessionResult r;
  r.app = in.str();
  r.governor = in.str();
  r.duration_s = in.f64();
  r.avg_power_w = in.f64();
  r.peak_power_w = in.f64();
  r.avg_temp_big_c = in.f64();
  r.peak_temp_big_c = in.f64();
  r.avg_temp_device_c = in.f64();
  r.peak_temp_device_c = in.f64();
  r.avg_fps = in.f64();
  r.energy_j = in.f64();
  r.frames_presented = in.i64();
  r.frames_dropped = in.i64();
  r.avg_ppdw = in.f64();
  const std::uint64_t samples = in.u64();
  if (samples > in.remaining() / 8) in.fail("sample count exceeds the payload");
  r.series.reserve(static_cast<std::size_t>(samples));
  for (std::uint64_t i = 0; i < samples; ++i) {
    Sample s;
    s.time_s = in.f64();
    s.fps = in.f64();
    s.target_fps = in.f64();
    s.f_big_mhz = in.f64();
    s.f_little_mhz = in.f64();
    s.f_gpu_mhz = in.f64();
    s.cap_big_mhz = in.f64();
    s.cap_little_mhz = in.f64();
    s.cap_gpu_mhz = in.f64();
    s.power_w = in.f64();
    s.temp_big_c = in.f64();
    s.temp_little_c = in.f64();
    s.temp_gpu_c = in.f64();
    s.temp_device_c = in.f64();
    s.temp_skin_c = in.f64();
    s.ppdw = in.f64();
    r.series.push_back(s);
  }
  return r;
}

void serialize_training_result(const TrainingResult& r, ByteWriter& out) {
  r.table.serialize(out);
  out.boolean(r.converged);
  out.f64(r.sim_seconds);
  out.f64(r.wall_seconds);
  out.u64(r.decisions);
  out.f64(r.final_mean_reward);
  out.u64(static_cast<std::uint64_t>(r.states_visited));
}

TrainingResult deserialize_training_result(ByteReader& in) {
  TrainingResult r{rl::QTable::deserialize(in), false, 0.0, 0.0, 0, 0.0, 0};
  r.converged = in.boolean();
  r.sim_seconds = in.f64();
  r.wall_seconds = in.f64();
  r.decisions = in.u64();
  r.final_mean_reward = in.f64();
  r.states_visited = static_cast<std::size_t>(in.u64());
  return r;
}

// --- frames ----------------------------------------------------------------
//
// Worker -> parent stream: a sequence of frames, each
//
//   u32 payload length | u32 CRC32(payload) | payload bytes
//
// (all little-endian via ByteWriter). Payload: u8 kind, then per kind:
//   kResult  u64 plan index + the encoded result
//   kDone    u64 count of result frames the worker sent (stream trailer -
//            its absence is how a dead worker is detected)
//   kError   length-prefixed what() of the exception the shard threw
//
// The CRC guards the pipe the same way SnapshotReader guards files: a
// corrupted frame is a detected, recoverable failure, never a misdecode.

namespace {

enum FrameKind : std::uint8_t { kResult = 1, kDone = 2, kError = 3 };

/// Upper bound on one frame's payload - generous (a 150 s session with 1 s
/// sampling encodes in ~20 KiB; a trained Q-table in well under 1 MiB) but
/// finite, so a corrupted length field cannot make the parent try to
/// allocate the moon before the CRC would catch the damage.
constexpr std::uint32_t kMaxFramePayload = 256u << 20;

bool write_all(int fd, const std::uint8_t* data, std::size_t n) noexcept {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// False on EOF before `n` bytes (partial reads retried, EINTR ignored).
bool read_all(int fd, std::uint8_t* data, std::size_t n) noexcept {
  while (n > 0) {
    const ssize_t r = ::read(fd, data, n);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    data += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool write_frame(int fd, std::vector<std::uint8_t> payload, bool corrupt_payload) noexcept {
  ByteWriter header;
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(crc32(payload));
  if (corrupt_payload && !payload.empty()) payload[payload.size() / 2] ^= 0x20;
  return write_all(fd, header.data().data(), header.size()) &&
         write_all(fd, payload.data(), payload.size());
}

struct Shard {
  std::size_t first{0};
  std::size_t count{0};
};

/// Contiguous, balanced partition of [0, n) into at most `processes`
/// non-empty shards (plan order is preserved across the merge because
/// shard s covers exactly [first, first + count)).
std::vector<Shard> make_shards(std::size_t n, std::size_t processes) {
  std::vector<Shard> shards;
  const std::size_t p = std::min(processes, n);
  std::size_t first = 0;
  for (std::size_t s = 0; s < p; ++s) {
    const std::size_t count = n / p + (s < n % p ? 1 : 0);
    shards.push_back(Shard{first, count});
    first += count;
  }
  return shards;
}

struct Worker {
  pid_t pid{-1};
  int read_fd{-1};
  std::string spawn_error;  ///< pipe()/fork() failure, captured while errno is fresh
};

/// Post-waitpid verdict ("" = clean exit 0).
std::string exit_failure(int status) {
  if (WIFEXITED(status)) {
    if (WEXITSTATUS(status) == 0) return {};
    return "worker exited with status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return std::string{"worker killed by signal "} + std::to_string(WTERMSIG(status)) + " (" +
           strsignal(WTERMSIG(status)) + ")";
  }
  return "worker ended in an unrecognized wait status";
}

/// The generic parent/worker machinery, shared by the session and training
/// flavors. `run_range(first, count)` must be a pure function of the plan
/// slice (the runner determinism contract), because it runs in the worker
/// for the happy path and re-runs in the parent to recover a failed shard.
template <typename Result>
std::vector<Result> run_sharded(
    std::size_t n, const std::function<std::vector<Result>(std::size_t, std::size_t)>& run_range,
    void (*encode)(const Result&, ByteWriter&), Result (*decode)(ByteReader&),
    const MultiprocOptions& options, ShardReport* report) {
  if (report != nullptr) *report = ShardReport{};
  if (n == 0) return {};

  const std::size_t processes = resolve_workers(options.processes, n);
  if (processes <= 1) {
    // In-process path: no forks, no pipes - the gate every sharded run is
    // compared against.
    std::vector<Result> results = run_range(0, n);
    if (report != nullptr) {
      report->processes = 0;
      report->shards.push_back(ShardOutcome{0, 0, n, false, {}});
    }
    return results;
  }

  const std::vector<Shard> shards = make_shards(n, processes);

  // Fork every worker up front; they all run concurrently while the parent
  // drains their pipes in shard order (a later worker that fills its pipe
  // simply blocks in write() until the parent gets to it - bounded memory,
  // no deadlock, since the parent always drains every pipe).
  std::vector<Worker> workers(shards.size());
  for (std::size_t s = 0; s < shards.size(); ++s) {
    int fds[2];
    if (::pipe(fds) != 0) {
      // Recovered in the merge loop below.
      workers[s] = Worker{-1, -1, std::string{"pipe failed: "} + std::strerror(errno)};
      continue;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      const std::string why = std::string{"fork failed: "} + std::strerror(errno);
      ::close(fds[0]);
      ::close(fds[1]);
      workers[s] = Worker{-1, -1, why};
      continue;
    }
    if (pid == 0) {
      // --- worker ---------------------------------------------------------
      // Earlier workers' write ends are already closed in the parent, so
      // this child holds exactly one pipe write end: its own.
      ::close(fds[0]);
      const int fd = fds[1];
      int exit_code = 0;
      try {
        const std::vector<Result> results = run_range(shards[s].first, shards[s].count);
        for (std::size_t i = 0; i < results.size(); ++i) {
          ByteWriter payload;
          payload.u8(kResult);
          payload.u64(shards[s].first + i);
          encode(results[i], payload);
          const bool corrupt = s == options.faults.corrupt_shard && i == 0;
          if (!write_frame(fd, payload.data(), corrupt)) {
            exit_code = 2;  // parent gone; nothing left to report to
            break;
          }
          if (s == options.faults.kill_shard && i + 1 >= options.faults.kill_after_frames) {
            ::raise(SIGKILL);
          }
        }
        if (s == options.faults.kill_shard) ::raise(SIGKILL);  // shard smaller than the hook
        if (exit_code == 0) {
          ByteWriter done;
          done.u8(kDone);
          done.u64(results.size());
          if (!write_frame(fd, done.data(), false)) exit_code = 2;
        }
      } catch (const std::exception& e) {
        ByteWriter payload;
        payload.u8(kError);
        payload.str(e.what());
        (void)write_frame(fd, payload.data(), false);
        exit_code = 1;
      } catch (...) {
        exit_code = 1;
      }
      ::close(fd);
      ::_exit(exit_code);  // never unwind into the parent's state
    }
    // --- parent -----------------------------------------------------------
    ::close(fds[1]);  // the worker's death must read as EOF
    workers[s] = Worker{pid, fds[0]};
  }

  // Merge in shard (= plan) order, re-running any shard whose stream or
  // exit was unhealthy. `merged` is index-addressed so a duplicate or
  // out-of-range frame index is a detected framing violation.
  std::vector<std::optional<Result>> merged(n);
  if (report != nullptr) report->processes = shards.size();
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const Shard shard = shards[s];
    ShardOutcome outcome{s, shard.first, shard.count, false, {}};
    std::string failure;
    if (workers[s].pid < 0) {
      failure = workers[s].spawn_error;
    } else {
      std::size_t accepted = 0;
      bool done = false;
      while (failure.empty() && !done) {
        std::uint8_t header[8];
        if (!read_all(workers[s].read_fd, header, sizeof header)) {
          failure = "worker closed the pipe before its done frame (crashed?)";
          break;
        }
        ByteReader head{std::span<const std::uint8_t>{header, sizeof header}, "frame header"};
        const std::uint32_t length = head.u32();
        const std::uint32_t expected_crc = head.u32();
        if (length > kMaxFramePayload) {
          failure = "frame length " + std::to_string(length) + " exceeds the frame cap";
          break;
        }
        std::vector<std::uint8_t> payload(length);
        if (!read_all(workers[s].read_fd, payload.data(), payload.size())) {
          failure = "worker stream truncated mid-frame";
          break;
        }
        if (crc32(payload) != expected_crc) {
          failure = "frame CRC mismatch (corrupted in flight)";
          break;
        }
        try {
          ByteReader in{payload, "shard " + std::to_string(s) + " frame"};
          switch (in.u8()) {
            case kResult: {
              const std::uint64_t index = in.u64();
              if (index < shard.first || index >= shard.first + shard.count) {
                failure = "result frame for plan index " + std::to_string(index) +
                          " outside the worker's shard";
                break;
              }
              if (merged[static_cast<std::size_t>(index)].has_value()) {
                failure = "duplicate result frame for plan index " + std::to_string(index);
                break;
              }
              merged[static_cast<std::size_t>(index)] = decode(in);
              ++accepted;
              if (report != nullptr) {
                ++report->frames;
                report->bytes += payload.size();
              }
              break;
            }
            case kDone:
              if (in.u64() != shard.count || accepted != shard.count) {
                failure = "worker finished after " + std::to_string(accepted) + " of " +
                          std::to_string(shard.count) + " results";
              }
              done = true;
              break;
            case kError:
              failure = "shard raised: " + in.str();
              break;
            default:
              failure = "unknown frame kind";
              break;
          }
        } catch (const SerializeError& e) {
          failure = std::string{"frame decode failed: "} + e.what();
        }
      }
      ::close(workers[s].read_fd);
      int status = 0;
      while (::waitpid(workers[s].pid, &status, 0) < 0 && errno == EINTR) {
      }
      // A stream can be perfectly framed and the worker still die after its
      // done frame; treat any unclean exit as a failed shard too - the
      // re-run is bit-identical by contract, so recovery is always safe.
      if (failure.empty()) failure = exit_failure(status);
    }

    if (!failure.empty()) {
      NEXTGOV_LOG(kWarn) << "multiproc: shard " << s << " (cells [" << shard.first << ", "
                         << shard.first + shard.count << ")) failed: " << failure
                         << "; re-running in-process";
      std::vector<Result> redo = run_range(shard.first, shard.count);
      for (std::size_t i = 0; i < redo.size(); ++i) {
        merged[shard.first + i] = std::move(redo[i]);
      }
      outcome.recovered = true;
      outcome.failure = failure;
    }
    if (report != nullptr) report->shards.push_back(std::move(outcome));
  }

  std::vector<Result> results;
  results.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    NEXTGOV_ASSERT(merged[i].has_value());
    results.push_back(std::move(*merged[i]));
  }
  return results;
}

}  // namespace

// --- public entry points ---------------------------------------------------

std::vector<SessionResult> run_plan_sharded(const RunPlan& plan, const MultiprocOptions& options,
                                            ShardReport* report) {
  const auto run_range = [&plan, &options](std::size_t first,
                                           std::size_t count) -> std::vector<SessionResult> {
    RunPlan slice;
    for (std::size_t i = first; i < first + count; ++i) {
      const SessionSpec& spec = plan.sessions()[i];
      slice.add(spec.app_factory, spec.name, spec.config);
    }
    return options.batched ? run_plan_batched(slice, {.workers = options.workers})
                           : run_plan(slice, {.workers = options.workers});
  };
  return run_sharded<SessionResult>(plan.size(), run_range, serialize_session_result,
                                    deserialize_session_result, options, report);
}

std::vector<TrainingResult> run_training_plan_sharded(const TrainingPlan& plan,
                                                      const MultiprocOptions& options,
                                                      ShardReport* report) {
  const auto run_range = [&plan, &options](std::size_t first,
                                           std::size_t count) -> std::vector<TrainingResult> {
    TrainingPlan slice;
    for (std::size_t i = first; i < first + count; ++i) {
      const TrainingSpec& spec = plan.cells()[i];
      slice.add(spec.app_factory, spec.name, spec.config, spec.options);
    }
    return options.batched ? run_training_plan_batched(slice, {.workers = options.workers})
                           : run_training_plan(slice, {.workers = options.workers});
  };
  return run_sharded<TrainingResult>(plan.size(), run_range, serialize_training_result,
                                     deserialize_training_result, options, report);
}

}  // namespace nextgov::sim
