// runner.hpp - the batch/parallel experiment runner.
//
// Every figure, ablation and example in this repo is a sweep of independent
// (app x governor x seed x config) sessions through the 1 ms engine loop.
// The runner makes that sweep declarative: callers describe a RunPlan, and
// run_plan() executes it across a worker pool, returning SessionResults in
// plan order.
//
// Determinism contract: a session's entire trajectory is a function of its
// SessionSpec (the engine holds no global state, and every stochastic
// element draws from the spec's seed), so parallel execution is
// *bit-identical* to serial execution regardless of worker count or
// scheduling. This is asserted by tests/sim/runner_test.cpp. The contract
// requires app factories to be pure: make_app-style factories that derive
// everything from the seed argument qualify; factories that mutate shared
// captured state do not.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "workload/apps.hpp"

namespace nextgov::sim {

/// One independent session of a run plan.
struct SessionSpec {
  std::string name;        ///< label copied into SessionResult::app
  AppFactory app_factory;  ///< must be pure (see determinism contract above)
  ExperimentConfig config;
};

/// Declarative batch of sessions. Build with add()/add_grid(), execute with
/// run_plan().
class RunPlan {
 public:
  /// Adds one session for a catalog app.
  void add(workload::AppId app, const ExperimentConfig& config);
  /// Adds one session for an arbitrary app factory.
  void add(AppFactory factory, std::string name, const ExperimentConfig& config);

  /// Cross product: one session per (app, governor, seed), each starting
  /// from `base` with the governor and seed substituted. Suits homogeneous
  /// sweeps; sweeps needing per-cell config (e.g. a trained table per
  /// governor, as in the Fig. 7/8 benches) build their plans with add().
  void add_grid(std::span<const workload::AppId> apps,
                std::span<const GovernorKind> governors,
                std::span<const std::uint64_t> seeds, const ExperimentConfig& base);

  [[nodiscard]] std::size_t size() const noexcept { return sessions_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sessions_.empty(); }
  [[nodiscard]] const std::vector<SessionSpec>& sessions() const noexcept { return sessions_; }

 private:
  std::vector<SessionSpec> sessions_;
};

struct RunnerOptions {
  /// Worker threads; 0 = one per hardware thread. 1 = serial in the
  /// calling thread (no pool).
  std::size_t workers{0};
};

/// Executes every session of `plan` and returns results in plan order.
/// Sessions are distributed across workers dynamically (longest sessions
/// don't serialize the tail). Rethrows the first failure in plan order
/// after all workers have drained.
[[nodiscard]] std::vector<SessionResult> run_plan(const RunPlan& plan,
                                                  const RunnerOptions& options = {});

/// Stateless SplitMix64-style seed derivation for grid sweeps: gives every
/// (base, index) pair an independent, reproducible stream. Used by
/// add_grid() callers that want per-cell seeds from one base seed.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept;

}  // namespace nextgov::sim
