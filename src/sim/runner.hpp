// runner.hpp - the batch/parallel experiment + training runner.
//
// Every figure, ablation and example in this repo is a sweep of independent
// cells: evaluation sweeps are (app x governor x seed x config) sessions
// through the 1 ms engine loop, training sweeps are (app x NextConfig x
// seed x budget) online-learning runs. The runner makes both declarative:
// callers describe a RunPlan or a TrainingPlan, and run_plan() /
// run_training_plan() execute it across one shared worker pool
// (run_indexed_tasks), returning results in plan order.
//
// Determinism contract: a cell's entire trajectory is a function of its
// spec (the engine holds no global state, and every stochastic element
// draws from the spec's seed), so parallel execution is *bit-identical* to
// serial execution regardless of worker count or scheduling. For training
// cells the contract covers the learned table and every derived field
// except TrainingResult::wall_seconds, which measures host wall-clock by
// definition. Asserted by tests/sim/runner_test.cpp and
// tests/sim/training_plan_test.cpp. The contract requires app factories to
// be pure: make_app-style factories that derive everything from the seed
// argument qualify; factories that mutate shared captured state do not.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "workload/apps.hpp"

namespace nextgov::sim {

// --- the shared worker pool ------------------------------------------------

/// Resolves a RunnerOptions-style worker request against a task count:
/// 0 = one worker per hardware thread, and never more workers than tasks.
[[nodiscard]] std::size_t resolve_workers(std::size_t requested, std::size_t tasks) noexcept;

/// Executes task(0) .. task(n-1) across `workers` threads with dynamic
/// work stealing off a shared counter (cells vary wildly in length, so
/// static striping would leave workers idle behind the longest stripe).
/// workers <= 1 runs serially in the calling thread. Exceptions are
/// collected per index and the first one in *index order* is rethrown
/// after all workers have drained. Both run_plan() and run_training_plan()
/// are thin wrappers over this pool; benches with bespoke per-cell loops
/// (e.g. fig06's instrumented training) can use it directly.
void run_indexed_tasks(std::size_t n, std::size_t workers,
                       const std::function<void(std::size_t)>& task);

struct RunnerOptions {
  /// Worker threads; 0 = one per hardware thread. 1 = serial in the
  /// calling thread (no pool).
  std::size_t workers{0};
};

// --- evaluation sweeps -----------------------------------------------------

/// One independent session of a run plan.
struct SessionSpec {
  std::string name;        ///< label copied into SessionResult::app
  AppFactory app_factory;  ///< must be pure (see determinism contract above)
  ExperimentConfig config;
};

/// Declarative batch of sessions. Build with add()/add_grid(), execute with
/// run_plan().
class RunPlan {
 public:
  /// Adds one session for a catalog app.
  void add(workload::AppId app, const ExperimentConfig& config);
  /// Adds one session for an arbitrary app factory.
  void add(AppFactory factory, std::string name, const ExperimentConfig& config);

  /// Cross product: one session per (app, governor, seed), each starting
  /// from `base` with the governor and seed substituted. Suits homogeneous
  /// sweeps; sweeps needing per-cell config (e.g. a trained table per
  /// governor, as in the Fig. 7/8 benches) build their plans with add().
  void add_grid(std::span<const workload::AppId> apps,
                std::span<const GovernorKind> governors,
                std::span<const std::uint64_t> seeds, const ExperimentConfig& base);

  [[nodiscard]] std::size_t size() const noexcept { return sessions_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sessions_.empty(); }
  [[nodiscard]] const std::vector<SessionSpec>& sessions() const noexcept { return sessions_; }

 private:
  std::vector<SessionSpec> sessions_;
};

/// Executes every session of `plan` and returns results in plan order.
[[nodiscard]] std::vector<SessionResult> run_plan(const RunPlan& plan,
                                                  const RunnerOptions& options = {});

// --- training sweeps -------------------------------------------------------

/// One independent training cell of a training plan.
struct TrainingSpec {
  std::string name;        ///< label for diagnostics/CSV rows
  AppFactory app_factory;  ///< must be pure (see determinism contract above)
  core::NextConfig config;
  TrainingOptions options;
};

/// Declarative batch of (app x NextConfig x seed x budget) training cells,
/// mirroring RunPlan. Build with add()/add_seed_sweep(), execute with
/// run_training_plan(). The figure benches route *all* their agent
/// training through this (one agent per cell trains concurrently instead
/// of serializing the sweep).
class TrainingPlan {
 public:
  /// Adds one training cell for a catalog app.
  void add(workload::AppId app, const core::NextConfig& config,
           const TrainingOptions& options);
  /// Adds one training cell for an arbitrary app factory.
  void add(AppFactory factory, std::string name, const core::NextConfig& config,
           const TrainingOptions& options);

  /// `count` cells of `base` whose seeds are derive_seed(base_seed, i) -
  /// the repo's one documented seed-derivation scheme for sweeps.
  void add_seed_sweep(workload::AppId app, const core::NextConfig& config,
                      const TrainingOptions& base, std::size_t count,
                      std::uint64_t base_seed);

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cells_.empty(); }
  [[nodiscard]] const std::vector<TrainingSpec>& cells() const noexcept { return cells_; }

 private:
  std::vector<TrainingSpec> cells_;
};

/// Executes every training cell of `plan` and returns TrainingResults in
/// plan order, bit-identical to serial execution (wall_seconds excepted).
[[nodiscard]] std::vector<TrainingResult> run_training_plan(const TrainingPlan& plan,
                                                            const RunnerOptions& options = {});

// --- batched (structure-of-arrays) lock-step execution ---------------------

/// Wall-clock accumulated per phase of the batch-resident lock-step loop,
/// in seconds, summed over all lock-step batches of a run (batches that
/// fall back to per-session stepping contribute nothing). The
/// perf_thermal_batch bench compares these against the same phases timed
/// around serial stepping to attribute the batch-vs-serial ratio.
struct BatchPhaseTimings {
  double pre_s{0.0};      ///< app/render/load pre-phases
  double power_s{0.0};    ///< PowerBatch input push + [cluster][session] sweep
  double thermal_s{0.0};  ///< RcBatch SoA solve
  double observe_s{0.0};  ///< observation refresh + sample + kernel governor
  double post_s{0.0};     ///< meta control (incl. grouped Q-step) + throttle/totals/record
  double scatter_s{0.0};  ///< batch entry/exit gather + scatter (boundaries only)
  std::int64_t ticks{0};  ///< engine-ticks x sessions advanced lock-step
};

struct BatchOptions {
  /// Worker threads; 0 = one per hardware thread (RunnerOptions semantics).
  std::size_t workers{0};
  /// Max sessions one worker advances lock-step in a shared thermal
  /// RcBatch. 0 = size batches automatically: the plan is split evenly
  /// across the workers, capped so per-worker engine memory stays bounded,
  /// and shares too narrow for the SoA sweep to pay (< 4 sessions)
  /// degenerate to the per-session path. A nonzero value is honored as
  /// given (lock-step even for narrow batches).
  std::size_t max_batch{0};
  /// When set, every lock-step batch accumulates per-phase wall time here
  /// (merged under a lock once per batch, so the hot loop pays only the
  /// clock reads). Leave null outside measurement runs.
  BatchPhaseTimings* phase_timings{nullptr};
};

/// Lock-step session advancement over the SoA batch steppers
/// (thermal/rc_batch.hpp + soc/power_batch.hpp). Where run_plan()/
/// run_training_plan() give every worker one whole session at a time, the
/// BatchRunner gives every worker a *group* of homogeneous sessions that
/// stays *batch-resident* between ticks: each engine parks its thermal
/// state in an RcBatch lane at batch entry (Engine::attach_thermal_batch),
/// and every tick runs as phase sweeps across the group - app/render
/// pre-phases, one [cluster][session] power sweep writing straight into the
/// thermal power lanes, one SoA thermal solve, observation refresh reading
/// the temperature lanes in place, and grouped NextAgent control points
/// (core::NextAgent::control_group). Temperatures scatter back only at
/// batch exit. Results are bit-identical to run_plan()/run_training_plan()
/// (and therefore to serial execution) because every sweep reproduces each
/// session's per-step arithmetic exactly - asserted by
/// tests/sim/runner_test.cpp, tests/sim/batch_resident_test.cpp and the
/// perf_thermal_batch bench.
///
/// Grouping requires lock-step compatibility: run plans group by duration,
/// training plans by (max_duration, episode_length) with
/// stop_at_convergence unset (early-stopping cells have data-dependent
/// control flow). Cells that don't fit a group - or whose engines turn out
/// to use a different topology or step - fall back to the existing
/// per-session path. A ScenarioMatrix sweeps batched by expanding it first:
/// run_plan_batched(matrix.to_run_plan(governor)).
class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {}) : options_{options} {}

  [[nodiscard]] std::vector<SessionResult> run(const RunPlan& plan) const;
  [[nodiscard]] std::vector<TrainingResult> run(const TrainingPlan& plan) const;

 private:
  BatchOptions options_;
};

/// Convenience wrappers mirroring run_plan()/run_training_plan().
[[nodiscard]] std::vector<SessionResult> run_plan_batched(const RunPlan& plan,
                                                          const BatchOptions& options = {});
[[nodiscard]] std::vector<TrainingResult> run_training_plan_batched(
    const TrainingPlan& plan, const BatchOptions& options = {});

/// Stateless SplitMix64-style seed derivation for grid sweeps: gives every
/// (base, index) pair an independent, reproducible stream. Used by
/// add_grid()/add_seed_sweep() callers that want per-cell seeds from one
/// base seed.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept;

}  // namespace nextgov::sim
