// runner.hpp - the batch/parallel experiment + training runner.
//
// Every figure, ablation and example in this repo is a sweep of independent
// cells: evaluation sweeps are (app x governor x seed x config) sessions
// through the 1 ms engine loop, training sweeps are (app x NextConfig x
// seed x budget) online-learning runs. The runner makes both declarative:
// callers describe a RunPlan or a TrainingPlan, and run_plan() /
// run_training_plan() execute it across one shared worker pool
// (run_indexed_tasks), returning results in plan order.
//
// Determinism contract: a cell's entire trajectory is a function of its
// spec (the engine holds no global state, and every stochastic element
// draws from the spec's seed), so parallel execution is *bit-identical* to
// serial execution regardless of worker count or scheduling. For training
// cells the contract covers the learned table and every derived field
// except TrainingResult::wall_seconds, which measures host wall-clock by
// definition. Asserted by tests/sim/runner_test.cpp and
// tests/sim/training_plan_test.cpp. The contract requires app factories to
// be pure: make_app-style factories that derive everything from the seed
// argument qualify; factories that mutate shared captured state do not.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sim/experiment.hpp"
#include "workload/apps.hpp"

namespace nextgov::sim {

// --- the shared worker pool ------------------------------------------------

/// Resolves a RunnerOptions-style worker request against a task count:
/// 0 = one worker per hardware thread, and never more workers than tasks.
[[nodiscard]] std::size_t resolve_workers(std::size_t requested, std::size_t tasks) noexcept;

/// Executes task(0) .. task(n-1) across `workers` threads with dynamic
/// work stealing off a shared counter (cells vary wildly in length, so
/// static striping would leave workers idle behind the longest stripe).
/// workers <= 1 runs serially in the calling thread. Exceptions are
/// collected per index and the first one in *index order* is rethrown
/// after all workers have drained. Both run_plan() and run_training_plan()
/// are thin wrappers over this pool; benches with bespoke per-cell loops
/// (e.g. fig06's instrumented training) can use it directly.
void run_indexed_tasks(std::size_t n, std::size_t workers,
                       const std::function<void(std::size_t)>& task);

struct RunnerOptions {
  /// Worker threads; 0 = one per hardware thread. 1 = serial in the
  /// calling thread (no pool).
  std::size_t workers{0};
};

// --- evaluation sweeps -----------------------------------------------------

/// One independent session of a run plan.
struct SessionSpec {
  std::string name;        ///< label copied into SessionResult::app
  AppFactory app_factory;  ///< must be pure (see determinism contract above)
  ExperimentConfig config;
};

/// Declarative batch of sessions. Build with add()/add_grid(), execute with
/// run_plan().
class RunPlan {
 public:
  /// Adds one session for a catalog app.
  void add(workload::AppId app, const ExperimentConfig& config);
  /// Adds one session for an arbitrary app factory.
  void add(AppFactory factory, std::string name, const ExperimentConfig& config);

  /// Cross product: one session per (app, governor, seed), each starting
  /// from `base` with the governor and seed substituted. Suits homogeneous
  /// sweeps; sweeps needing per-cell config (e.g. a trained table per
  /// governor, as in the Fig. 7/8 benches) build their plans with add().
  void add_grid(std::span<const workload::AppId> apps,
                std::span<const GovernorKind> governors,
                std::span<const std::uint64_t> seeds, const ExperimentConfig& base);

  [[nodiscard]] std::size_t size() const noexcept { return sessions_.size(); }
  [[nodiscard]] bool empty() const noexcept { return sessions_.empty(); }
  [[nodiscard]] const std::vector<SessionSpec>& sessions() const noexcept { return sessions_; }

 private:
  std::vector<SessionSpec> sessions_;
};

/// Executes every session of `plan` and returns results in plan order.
[[nodiscard]] std::vector<SessionResult> run_plan(const RunPlan& plan,
                                                  const RunnerOptions& options = {});

// --- training sweeps -------------------------------------------------------

/// One independent training cell of a training plan.
struct TrainingSpec {
  std::string name;        ///< label for diagnostics/CSV rows
  AppFactory app_factory;  ///< must be pure (see determinism contract above)
  core::NextConfig config;
  TrainingOptions options;
};

/// Declarative batch of (app x NextConfig x seed x budget) training cells,
/// mirroring RunPlan. Build with add()/add_seed_sweep(), execute with
/// run_training_plan(). The figure benches route *all* their agent
/// training through this (one agent per cell trains concurrently instead
/// of serializing the sweep).
class TrainingPlan {
 public:
  /// Adds one training cell for a catalog app.
  void add(workload::AppId app, const core::NextConfig& config,
           const TrainingOptions& options);
  /// Adds one training cell for an arbitrary app factory.
  void add(AppFactory factory, std::string name, const core::NextConfig& config,
           const TrainingOptions& options);

  /// `count` cells of `base` whose seeds are derive_seed(base_seed, i) -
  /// the repo's one documented seed-derivation scheme for sweeps.
  void add_seed_sweep(workload::AppId app, const core::NextConfig& config,
                      const TrainingOptions& base, std::size_t count,
                      std::uint64_t base_seed);

  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cells_.empty(); }
  [[nodiscard]] const std::vector<TrainingSpec>& cells() const noexcept { return cells_; }

 private:
  std::vector<TrainingSpec> cells_;
};

/// Executes every training cell of `plan` and returns TrainingResults in
/// plan order, bit-identical to serial execution (wall_seconds excepted).
[[nodiscard]] std::vector<TrainingResult> run_training_plan(const TrainingPlan& plan,
                                                            const RunnerOptions& options = {});

/// Stateless SplitMix64-style seed derivation for grid sweeps: gives every
/// (base, index) pair an independent, reproducible stream. Used by
/// add_grid()/add_seed_sweep() callers that want per-cell seeds from one
/// base seed.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept;

}  // namespace nextgov::sim
