// scenario.hpp - declarative scenarios and the scenario matrix.
//
// The paper evaluates Next on one canonical session (Fig. 1's home ->
// Facebook -> Spotify walk) at 60 Hz in a thermostat-controlled 21 C room.
// Section V notes real ambients span 15-35 C and Section I calls out 90 and
// 120 Hz panels; a DVFS agent has to be validated across those operating
// points, not at one. A ScenarioSpec names one complete operating point:
// the workload (single app or a multi-app interleaving with optional
// user-model override and background-load bursts), the panel refresh rate,
// the ambient temperature, the session duration and the seed policy.
//
// ScenarioMatrix cross-products scenarios with ambient / refresh / seed
// axes and expands directly into the existing RunPlan / TrainingPlan, so a
// whole matrix sweeps across the runner's worker pool bit-identically to
// serial execution (each cell is a pure function of its resolved spec).
//
// A curated library of named scenarios (scenario_names() / scenario())
// is the single source of truth for every bench and test session setup;
// tests/sim/scenario_golden_test.cpp pins the library's behaviour with
// checked-in fingerprints.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/multiproc.hpp"
#include "sim/runner.hpp"
#include "workload/background.hpp"
#include "workload/session.hpp"
#include "workload/user_model.hpp"

namespace nextgov::sim {

/// One workload segment: `app` runs for `duration`, then the session
/// switches to the next segment (re-entering that app's splash phase,
/// modelling launch cost). Exactly workload::SessionSegment - scenarios
/// feed SessionApp directly.
using ScenarioSegment = workload::SessionSegment;

/// Periodic background-load bursts layered over the workload: sync jobs,
/// prefetchers, push-triggered wakeups - the "sporadic tasks" of the
/// paper's Section I that render no frames but saturate utilization
/// governors. Each period ends with `burst_length` of extra background
/// demand (`boost`, added on top of the app's own load, capped at 1.0).
/// Purely a function of simulated time, so scenarios stay deterministic.
struct BackgroundBurst {
  bool enabled{false};
  SimTime period{SimTime::from_seconds(20.0)};
  SimTime burst_length{SimTime::from_seconds(4.0)};
  workload::BackgroundLoad boost{};
};

/// A complete, self-contained description of one evaluation operating
/// point. Everything an engine needs flows from here; nothing is hand-set
/// at call sites.
struct ScenarioSpec {
  std::string name;
  std::vector<ScenarioSegment> segments;  ///< >= 1; single entry = one app
  double refresh_hz{60.0};
  Celsius ambient{Celsius{21.0}};
  /// Default seed; matrix seed axes derive per-cell seeds from it (index 0
  /// is base_seed itself, index i > 0 is derive_seed(base_seed, i)).
  std::uint64_t base_seed{1};
  /// Zero = sum of the segment durations.
  SimTime duration{SimTime::zero()};
  SimTime record_period{SimTime::from_seconds(1.0)};
  /// Replaces every segment app's user-engagement parameters (e.g. a
  /// binge-watching variant of a normally interactive app).
  std::optional<workload::UserModelParams> user_override;
  BackgroundBurst burst{};

  [[nodiscard]] SimTime effective_duration() const noexcept;

  /// Pure factory for the scenario's workload (runner determinism
  /// contract: everything derives from the seed argument).
  [[nodiscard]] AppFactory app_factory() const;

  /// ExperimentConfig with the scenario's duration / ambient / refresh /
  /// record period and seed substituted; `next_config` is additionally
  /// adapted via adapt_next_config() so kNext cells stay calibrated on
  /// non-paper panels and ambients.
  [[nodiscard]] ExperimentConfig experiment_config(GovernorKind governor) const;
  [[nodiscard]] ExperimentConfig experiment_config(GovernorKind governor,
                                                   std::uint64_t seed) const;

  /// TrainingOptions with the scenario's seed / ambient / refresh
  /// substituted into `base` (budget, episode length etc. are kept).
  [[nodiscard]] TrainingOptions training_options(const TrainingOptions& base) const;
};

/// Recalibrates a NextConfig for a scenario's operating point: the QoS
/// ceiling follows the panel (fps_max >= refresh_hz) and the PPDW reward
/// bounds use the scenario's ambient instead of the paper's 21 C.
[[nodiscard]] core::NextConfig adapt_next_config(core::NextConfig config,
                                                 double refresh_hz, Celsius ambient);

// --- the curated scenario library -----------------------------------------

/// Names of every library scenario, in stable order (golden tests iterate
/// this). Currently: the Fig. 1 session, its 90/120 Hz panel variants, its
/// 15/25/35 C ambient variants, two multi-app interleavings beyond Fig. 1
/// (social_gaming, commute_media), a passive binge_watch user-model
/// variant, a bursty background-load Spotify, and two single-app stress
/// points (pubg_hot35, lineage_120hz).
[[nodiscard]] std::span<const std::string_view> scenario_names();

/// Looks a library scenario up by name; throws ConfigError for unknown
/// names (listing the library).
[[nodiscard]] ScenarioSpec scenario(std::string_view name);

/// One-line human description of a library scenario (what session_player
/// --list prints); throws ConfigError for unknown names.
[[nodiscard]] std::string_view scenario_description(std::string_view name);

/// Single-app scenario at the paper's session length for the app (games
/// 5 min, others 150 s), 60 Hz, 21 C. The figure benches' per-app sweeps
/// build on this.
[[nodiscard]] ScenarioSpec app_scenario(workload::AppId app);

// --- the matrix ------------------------------------------------------------

/// One expanded cell: the fully resolved spec (ambient / refresh / seed
/// substituted, name suffixed with the axis values) plus its coordinates.
struct ScenarioCell {
  ScenarioSpec spec;
  std::size_t scenario_index{0};
  std::size_t ambient_index{0};
  std::size_t refresh_index{0};
  std::size_t seed_index{0};
};

/// Cross product of scenarios x ambients x refresh rates x seeds. Axes
/// left unset keep each scenario's own value (a one-point axis). Expansion
/// is deterministic: the same matrix always yields the same cells in the
/// same order, regardless of worker counts downstream.
class ScenarioMatrix {
 public:
  ScenarioMatrix& add(ScenarioSpec spec);
  ScenarioMatrix& add(std::string_view library_name);
  ScenarioMatrix& ambients(std::vector<double> celsius);
  ScenarioMatrix& refresh_rates(std::vector<double> hz);
  /// `count` seeds per (scenario, ambient, refresh) point; see
  /// ScenarioSpec::base_seed for the derivation.
  ScenarioMatrix& seeds(std::size_t count);

  [[nodiscard]] std::size_t scenario_count() const noexcept { return scenarios_.size(); }
  /// Number of cells expand() will produce.
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::vector<ScenarioCell> expand() const;

  /// Appends one session per cell to `plan` (cell order), all under
  /// `governor`. Returns the number of cells appended. Callers that also
  /// need the cell labels should expand() once and use append_cells(), so
  /// labels and plan rows stay aligned by construction.
  std::size_t append_to(RunPlan& plan, GovernorKind governor) const;
  [[nodiscard]] RunPlan to_run_plan(GovernorKind governor) const;

  /// Appends one training cell per expanded cell: `config` adapted to the
  /// cell's panel/ambient, `base` options with seed/ambient/refresh
  /// substituted. Returns the number of cells appended.
  std::size_t append_to(TrainingPlan& plan, const core::NextConfig& config,
                        const TrainingOptions& base) const;

  /// Runs the whole matrix under `governor`, optionally sharded across
  /// worker processes (sim/multiproc.hpp) - results land in cell order,
  /// bit-identical to to_run_plan() + run_plan() whatever `options` says.
  /// `report` (optional) receives the shard bookkeeping.
  [[nodiscard]] std::vector<SessionResult> run(GovernorKind governor,
                                               const MultiprocOptions& options = {},
                                               ShardReport* report = nullptr) const;

  /// Training counterpart: one trained cell per expanded cell, sharded the
  /// same way.
  [[nodiscard]] std::vector<TrainingResult> train(const core::NextConfig& config,
                                                  const TrainingOptions& base,
                                                  const MultiprocOptions& options = {},
                                                  ShardReport* report = nullptr) const;

 private:
  std::vector<ScenarioSpec> scenarios_;
  std::vector<double> ambients_;
  std::vector<double> refresh_rates_;
  std::size_t seeds_{1};
};

/// Appends one session per already-expanded cell to `plan` under
/// `governor` (cell order). ScenarioMatrix::append_to/to_run_plan are thin
/// wrappers; use this directly when the cells are also consumed for labels.
std::size_t append_cells(RunPlan& plan, std::span<const ScenarioCell> cells,
                         GovernorKind governor);

/// Training counterpart of the RunPlan append_cells().
std::size_t append_cells(TrainingPlan& plan, std::span<const ScenarioCell> cells,
                         const core::NextConfig& config, const TrainingOptions& base);

}  // namespace nextgov::sim
