// engine.hpp - the fixed-step discrete-time simulation loop.
//
// Wires the substrates together at a 1 ms step:
//
//   app behaviour -> render pipeline (VSync/triple buffering) -> cluster
//   utilization -> power model -> RC thermal network -> sensors ->
//   governors (kernel FreqGovernor + application-layer MetaGovernor)
//
// The kernel governor reselects operating points every ~20 ms; the meta
// governor (Next / Int. QoS PM) adjusts maxfreq caps at its own period and,
// for Next, taps the 25 ms FPS sample stream. This mirrors the paper's
// deployment: an application-layer agent above the stock schedutil.
#pragma once

#include <array>
#include <memory>
#include <optional>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "governors/governor.hpp"
#include "render/pipeline.hpp"
#include "sim/recorder.hpp"
#include "soc/soc.hpp"
#include "thermal/note9_model.hpp"
#include "workload/app.hpp"

namespace nextgov::core {
class NextAgent;
}
namespace nextgov::soc {
class PowerBatch;
}
namespace nextgov::thermal {
class RcBatch;
}

namespace nextgov::sim {

struct EngineConfig {
  SimTime step{SimTime::from_ms(1)};
  Celsius ambient{Celsius{21.0}};  ///< paper: thermostat-controlled 21 C
  /// Display refresh rate. 60 Hz throughout the paper's evaluation, but
  /// Section I notes 90/120 Hz panels exist; the whole stack (VSync,
  /// frame-drop semantics, FPS counters) honours this knob. For Next on a
  /// high-refresh panel also raise NextConfig::ppdw_bounds.fps_max.
  double refresh_hz{60.0};
  /// Extra LITTLE-cluster utilization while a meta governor (the
  /// application-layer agent) is installed; Next "runs on the most power
  /// efficient CPU, which is the LITTLE CPU" (Section IV-A).
  double agent_little_util{0.02};
  SimTime record_period{SimTime::from_seconds(1.0)};
  /// Emergency thermal throttling (the SoC's hardware protection): when a
  /// junction sensor exceeds the limit the engine lowers a per-cluster
  /// frequency ceiling one OPP per evaluation; it relaxes again below
  /// (limit - hysteresis). Independent of (and beneath) governor caps.
  bool thermal_throttle{true};
  double throttle_limit_c{92.0};
  double throttle_hysteresis_c{7.0};
  SimTime throttle_period{SimTime::from_ms(100)};
};

/// Aggregate statistics accumulated every step (not just at record points).
struct EngineTotals {
  RunningStats power_w;
  RunningStats temp_big_c;
  RunningStats temp_device_c;
  double energy_j{0.0};
  std::int64_t frames_presented{0};
  std::int64_t frames_dropped{0};
};

class Engine {
 public:
  /// `meta_gov` may be null (stock configuration).
  Engine(soc::Soc soc, std::unique_ptr<workload::App> app,
         std::unique_ptr<governors::FreqGovernor> freq_gov,
         std::unique_ptr<governors::MetaGovernor> meta_gov, EngineConfig config = {});

  /// Runs for `duration` of simulated time.
  void run(SimTime duration);
  /// Executes exactly one engine step.
  void step();

  /// Batched stepping entry points. step() is exactly
  ///   step_pre_thermal(); thermal().step(config().step); step_post_thermal();
  /// and each of those composes from the finer phases below, so external
  /// drivers (sim::BatchRunner) can interleave N engines per phase while
  /// staying bit-identical to per-engine step():
  ///   step_pre_thermal()  = step_pre_power(); apply_power_model();
  ///   step_post_thermal() = step_post_observe(); step_post_meta();
  ///                         step_post_finish();
  void step_pre_thermal();
  void step_post_thermal();

  /// Advances the app/render/load substrates one tick (no thermal or power
  /// reads - safe whether or not the session is batch-resident).
  void step_pre_power();
  /// Evaluates the power model against the engine's own RcNetwork and
  /// writes node powers back into it. Only valid detached; batch-resident
  /// sessions evaluate through soc::PowerBatch instead (push_power_inputs
  /// -> PowerBatch::evaluate -> set_device_power).
  void apply_power_model();
  /// Advances the clock, refreshes the observation and runs the sampled
  /// stream + kernel frequency governor; latches whether the meta governor
  /// is due this tick (meta_control_due()).
  void step_post_observe();
  /// True when step_post_observe() latched a meta-governor control point
  /// for the current tick. Cleared by step_post_meta() or
  /// skip_meta_control().
  [[nodiscard]] bool meta_control_due() const noexcept { return meta_due_; }
  /// Runs the meta governor's control step if due.
  void step_post_meta();
  /// Declares the due meta control handled externally (the batch driver
  /// runs NextAgent decisions as one group sweep instead).
  void skip_meta_control() noexcept { meta_due_ = false; }
  /// Thermal throttle, running totals and the recorder.
  void step_post_finish();

  /// --- batch residency -------------------------------------------------
  /// Parks this session's thermal state in `batch` lane `lane` (same
  /// topology pointer required): temperatures/powers/ambient move into the
  /// SoA lanes and the constant non-cluster node powers (display on skin,
  /// rest-of-device on soc_board) are written once - the serial pre phase
  /// rewrites those same values every tick, so once is equivalent. While
  /// attached, thermal() is stale; observation and throttle reads go to the
  /// lanes, and the driver owns the thermal step (RcBatch::step).
  void attach_thermal_batch(thermal::RcBatch& batch, std::size_t lane);
  /// Scatters lane temperatures back into the engine's own network and
  /// resumes self-contained stepping. No-op when detached.
  void detach_thermal_batch();
  [[nodiscard]] bool thermal_batch_attached() const noexcept { return batch_ != nullptr; }
  /// Pushes this tick's per-cluster OPP index + utilization into a
  /// PowerBatch lane (the batch-resident replacement for
  /// apply_power_model()'s input side).
  void push_power_inputs(soc::PowerBatch& batch, std::size_t lane) const;
  /// Adopts the externally evaluated device power (PowerBatch::device_power)
  /// that the observation's fuel gauge and energy totals consume.
  void set_device_power(Watts p) noexcept { device_power_ = p; }
  /// Thermal node feeding each cluster's junction sensor, in cluster order
  /// (what PowerBatch lanes must be wired to).
  [[nodiscard]] const std::array<thermal::NodeId, 3>& cluster_nodes() const noexcept {
    return cluster_node_;
  }
  /// The meta governor as a Next agent, or null when the session runs a
  /// different (or no) meta governor. Batch drivers use this to route
  /// control points through core::NextAgent::control_group.
  [[nodiscard]] core::NextAgent* next_agent() noexcept { return next_agent_; }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] soc::Soc& soc() noexcept { return soc_; }
  [[nodiscard]] const soc::Soc& soc() const noexcept { return soc_; }
  [[nodiscard]] workload::App& app() noexcept { return *app_; }
  [[nodiscard]] governors::MetaGovernor* meta() noexcept { return meta_gov_.get(); }
  [[nodiscard]] const thermal::RcNetwork& thermal() const noexcept { return thermal_.network; }
  /// Mutable network access for the batched stepping path (temperature
  /// scatter after a shared RcBatch step).
  [[nodiscard]] thermal::RcNetwork& thermal() noexcept { return thermal_.network; }
  [[nodiscard]] const render::RenderPipeline& pipeline() const noexcept { return pipeline_; }
  [[nodiscard]] const Recorder& recorder() const noexcept { return recorder_; }
  [[nodiscard]] Recorder& recorder() noexcept { return recorder_; }
  [[nodiscard]] const EngineTotals& totals() const noexcept { return totals_; }
  /// The observation as the governor stack last saw it. The sensor block
  /// (temperatures, power) is refreshed every step; the FPS window queries
  /// and per-cluster DVFS snapshot are only refreshed on steps where a
  /// consumer (governor, meta sample, throttle evaluation, recorder) fires,
  /// so between those ticks they can lag by up to one governor period.
  /// External drivers that need the exact instantaneous FPS stream should
  /// query pipeline().current_fps(now()) directly.
  [[nodiscard]] const governors::Observation& observation() const noexcept { return obs_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }

  /// Mean FPS over the whole run (presented frames / elapsed time).
  [[nodiscard]] double average_fps() const noexcept;

  /// Resets thermal state and pipeline for a fresh session while keeping
  /// learned governor state (used between training episodes).
  void reset_session(std::unique_ptr<workload::App> new_app);

 private:
  /// `force` refreshes every block regardless of consumer deadlines (used
  /// at construction and session reset so observation() never shows a
  /// previous session's values).
  void rebuild_observation(bool force = false);
  /// True when any observation consumer (governor, meta sample, throttle
  /// evaluation, recorder) fires at the current time. The expensive parts
  /// of the observation (FPS window queries, per-cluster DVFS snapshot) are
  /// only refreshed on those steps; the thermal/power sensor block is
  /// rebuilt every step because the running totals consume it.
  [[nodiscard]] bool observation_consumer_due() const noexcept;
  void update_loads(const render::PipelineStepResult& pr);
  void apply_thermal_throttle();
  void record_if_due();
  /// Node temperature from wherever the session's thermal state currently
  /// lives: the attached batch lane, or the engine's own network.
  [[nodiscard]] double node_temp(thermal::NodeId id) const noexcept;

  EngineConfig config_;
  soc::Soc soc_;
  thermal::Note9Thermal thermal_;
  render::RenderPipeline pipeline_;
  std::unique_ptr<workload::App> app_;
  std::unique_ptr<governors::FreqGovernor> freq_gov_;
  std::unique_ptr<governors::MetaGovernor> meta_gov_;
  /// meta_gov_ downcast once at construction; record_if_due() used to
  /// dynamic_cast on every sample, and batch drivers use it to group Next
  /// control points.
  core::NextAgent* next_agent_{nullptr};
  /// Thermal node feeding each cluster's junction sensor, in cluster order.
  std::array<thermal::NodeId, 3> cluster_node_{};
  /// Non-owning: the SoA thermal batch this session is parked in, if any.
  thermal::RcBatch* batch_{nullptr};
  std::size_t batch_lane_{0};
  /// Latched by step_post_observe() when the meta governor's control period
  /// elapses; consumed by step_post_meta() / skip_meta_control().
  bool meta_due_{false};

  SimTime now_{SimTime::zero()};
  SimTime next_freq_gov_{SimTime::zero()};
  SimTime next_meta_{SimTime::zero()};
  SimTime next_meta_sample_{SimTime::zero()};
  SimTime next_record_{SimTime::zero()};
  SimTime next_throttle_{SimTime::zero()};
  /// Governor cadences are constants; cached to keep virtual period()
  /// lookups out of the 1 ms step.
  SimTime meta_sample_period_{SimTime::zero()};
  std::vector<std::size_t> throttle_ceiling_;

  std::vector<soc::ClusterLoad> loads_;
  Watts device_power_{Watts{0.0}};
  governors::Observation obs_;
  Recorder recorder_;
  EngineTotals totals_;
};

}  // namespace nextgov::sim
