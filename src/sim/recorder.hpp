// recorder.hpp - periodic time-series capture of a running session.
//
// The figure benches need the same series the paper plots: FPS and cluster
// frequencies every 3 s (Fig. 1), power and big-CPU temperature every second
// (Fig. 3). The recorder samples the engine at a fixed period and can dump
// RFC-4180 CSV for replotting.
#pragma once

#include <string>
#include <vector>

#include "common/sim_time.hpp"

namespace nextgov::sim {

struct Sample {
  double time_s{0.0};
  double fps{0.0};
  double target_fps{0.0};  ///< Next's frame-window target (0 when absent)
  double f_big_mhz{0.0};
  double f_little_mhz{0.0};
  double f_gpu_mhz{0.0};
  double cap_big_mhz{0.0};
  double cap_little_mhz{0.0};
  double cap_gpu_mhz{0.0};
  double power_w{0.0};
  double temp_big_c{0.0};
  double temp_little_c{0.0};
  double temp_gpu_c{0.0};
  double temp_device_c{0.0};
  double temp_skin_c{0.0};
  double ppdw{0.0};
};

class Recorder {
 public:
  explicit Recorder(SimTime period = SimTime::from_seconds(1.0));

  [[nodiscard]] SimTime period() const noexcept { return period_; }
  void add(const Sample& sample) { samples_.push_back(sample); }
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  void clear() noexcept { samples_.clear(); }

  /// Extracts one column as a vector (for stats helpers).
  [[nodiscard]] std::vector<double> column(double Sample::* field) const;

  /// Writes all samples as CSV. Throws IoError on failure.
  void save_csv(const std::string& path) const;

 private:
  SimTime period_;
  std::vector<Sample> samples_;
};

}  // namespace nextgov::sim
