#include "common/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace nextgov {

void require_fail(const char* what, std::source_location loc) {
  throw ConfigError(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) + ": " +
                    what);
}

void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "nextgov invariant violated: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace nextgov
