#include "common/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace nextgov {

void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "nextgov invariant violated: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace nextgov
