// stats.hpp - streaming statistics used throughout the evaluation harness.
//
// RunningStats is a single-pass Welford accumulator (mean, variance, min,
// max) used for per-session summaries (average power, peak temperature, mean
// FPS). Percentile/summary helpers operate on collected series for the
// figure benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace nextgov {

/// Welford's online algorithm; numerically stable for long sessions.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  /// Mean of the observed samples; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Pools another accumulator into this one (parallel Welford merge).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Linear-interpolated percentile of an unsorted sample (p in [0,100]).
/// Copies and sorts; intended for end-of-session reporting, not hot paths.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Arithmetic mean of a span; 0 when empty.
[[nodiscard]] double mean_of(std::span<const double> values) noexcept;

/// Maximum of a span; 0 when empty (temperatures are positive in Celsius
/// for all scenarios we model, so 0 is a safe sentinel).
[[nodiscard]] double max_of(std::span<const double> values) noexcept;

}  // namespace nextgov
