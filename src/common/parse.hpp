// parse.hpp - strict decimal parsing for CLI arguments.
//
// Every example daemon used to parse counts with strtoul, which has two
// traps: it *accepts* a leading '-' and wraps the negated value ("-5"
// becomes 18446744073709551611, so a typo'd device count silently asks for
// eighteen quintillion devices), and it reports out-of-range input via
// errno, which the call sites never reset or checked. These parsers accept
// exactly the strings a human means by "a count": one or more decimal
// digits, nothing else - no sign, no whitespace, no base prefixes, no
// trailing garbage - and reject anything whose value does not fit the
// output type. No errno involved, so there is nothing to forget to check.
//
// Pinned by tests/common/parse_test.cpp (the "-5" rejection is the
// regression test for the strtoul bug).
#pragma once

#include <cstdint>

namespace nextgov {

/// Parses a non-negative decimal integer. Returns false (leaving `out`
/// untouched) on null/empty input, any non-digit character (including a
/// leading '-' or '+'), or a value exceeding 2^64 - 1.
[[nodiscard]] bool parse_u64(const char* arg, std::uint64_t& out) noexcept;

/// Same, for values that must fit std::size_t (identical to parse_u64 on
/// 64-bit hosts; on narrower hosts, values above SIZE_MAX are rejected).
[[nodiscard]] bool parse_count(const char* arg, std::size_t& out) noexcept;

}  // namespace nextgov
