#include "common/serialize.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace nextgov {

namespace {

/// CRC-32 lookup table for the reflected IEEE polynomial 0xEDB88320,
/// generated once at static-init time (256 * 8 shifts, negligible).
std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  return table;
}

std::uint32_t crc32_accumulate(std::uint32_t crc,
                               std::span<const std::uint8_t> data) noexcept {
  const auto& table = crc_table();
  for (const std::uint8_t byte : data) crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  return crc;
}

/// Section checksum for a container of the given format version. From v3 on
/// the CRC is seeded with the version word itself, so the (otherwise
/// unprotected) version field cannot be flipped to another in-window value
/// without every section check failing: a v3 file misread as v2 verifies
/// with the plain payload CRC and mismatches, and vice versa. v1/v2 files
/// keep their original plain-payload checksum, which is what preserves
/// read-back compatibility.
std::uint32_t section_crc(std::uint32_t version, std::span<const std::uint8_t> payload) noexcept {
  std::uint32_t crc = 0xFFFFFFFFu;
  if (version >= 3) {
    const std::array<std::uint8_t, 4> seed{
        static_cast<std::uint8_t>(version), static_cast<std::uint8_t>(version >> 8),
        static_cast<std::uint8_t>(version >> 16), static_cast<std::uint8_t>(version >> 24)};
    crc = crc32_accumulate(crc, seed);
  }
  return crc32_accumulate(crc, payload) ^ 0xFFFFFFFFu;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  return crc32_accumulate(0xFFFFFFFFu, data) ^ 0xFFFFFFFFu;
}

// --- ByteWriter -------------------------------------------------------------

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

// --- ByteReader -------------------------------------------------------------

void ByteReader::fail(const std::string& what) const {
  throw SerializeError(context_ + ": " + what);
}

void ByteReader::need(std::size_t n) {
  if (remaining() < n) {
    fail("truncated (wanted " + std::to_string(n) + " more bytes, " +
         std::to_string(remaining()) + " left)");
  }
}

void ByteReader::skip(std::size_t n) {
  need(n);
  pos_ += n;
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      static_cast<std::uint32_t>(data_[pos_]) | static_cast<std::uint32_t>(data_[pos_ + 1]) << 8);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                          static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                          static_cast<std::uint32_t>(data_[pos_ + 2]) << 16 |
                          static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | hi << 32;
}

float ByteReader::f32() { return std::bit_cast<float>(u32()); }

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

bool ByteReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) fail("corrupt boolean value " + std::to_string(v));
  return v == 1;
}

std::string ByteReader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return out;
}

// --- SnapshotWriter ---------------------------------------------------------

ByteWriter& SnapshotWriter::section(std::string name) {
  for (const Section& s : sections_) {
    require(s.name != name, "snapshot section name used twice");
  }
  sections_.push_back(Section{std::move(name), ByteWriter{}});
  return sections_.back().payload;
}

std::vector<std::uint8_t> SnapshotWriter::bytes() const {
  ByteWriter out;
  out.u32(kSnapshotMagic);
  out.u32(kSnapshotVersion);
  out.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    out.str(s.name);
    out.u64(s.payload.size());
    out.u32(section_crc(kSnapshotVersion, s.payload.data()));
    out.bytes(s.payload.data());
  }
  return out.data();
}

void SnapshotWriter::write_file(const std::string& path) const {
  const std::vector<std::uint8_t> blob = bytes();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary | std::ios::trunc};
    if (!out) throw IoError("cannot open snapshot for writing: " + tmp);
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!out) throw IoError("failed writing snapshot: " + tmp);
  }
  // POSIX rename atomically replaces `path`: a reader sees either the old
  // complete snapshot or the new complete snapshot, never a torn write.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw IoError("cannot move snapshot into place: " + path);
  }
}

// --- SnapshotReader ---------------------------------------------------------

SnapshotReader::SnapshotReader(std::vector<std::uint8_t> bytes, std::string label)
    : bytes_{std::move(bytes)}, label_{std::move(label)} {
  ByteReader in{bytes_, label_};
  const std::uint32_t magic = in.u32();
  if (magic != kSnapshotMagic) in.fail("not a nextgov snapshot (bad magic)");
  version_ = in.u32();
  if (version_ > kSnapshotVersion) {
    in.fail("snapshot format version " + std::to_string(version_) +
            " is newer than this build supports (" + std::to_string(kSnapshotVersion) +
            "); refusing to guess");
  }
  if (version_ < kSnapshotVersionMin) {
    in.fail("snapshot format version " + std::to_string(version_) +
            " is older than the supported window [" + std::to_string(kSnapshotVersionMin) +
            ", " + std::to_string(kSnapshotVersion) + "]");
  }
  const std::uint32_t count = in.u32();
  sections_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Section s;
    s.name = in.str();
    const std::uint64_t size = in.u64();
    const std::uint32_t expected_crc = in.u32();
    if (in.remaining() < size) {
      in.fail("section '" + s.name + "' truncated (header claims " + std::to_string(size) +
              " bytes, " + std::to_string(in.remaining()) + " left)");
    }
    s.offset = in.pos();
    s.size = static_cast<std::size_t>(size);
    const std::span<const std::uint8_t> payload{bytes_.data() + s.offset, s.size};
    const std::uint32_t actual_crc = section_crc(version_, payload);
    if (actual_crc != expected_crc) {
      in.fail("section '" + s.name + "' failed its CRC32 check (stored " +
              std::to_string(expected_crc) + ", computed " + std::to_string(actual_crc) +
              ") - snapshot is corrupt");
    }
    in.skip(s.size);  // validated payload; next section header follows
    sections_.push_back(std::move(s));
  }
  if (!in.done()) in.fail("trailing garbage after the last section");
}

SnapshotReader SnapshotReader::from_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary | std::ios::ate};
  if (!in) throw IoError("cannot open snapshot: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw IoError("failed reading snapshot: " + path);
  return SnapshotReader{std::move(bytes), path};
}

bool SnapshotReader::has(std::string_view name) const noexcept {
  for (const Section& s : sections_) {
    if (s.name == name) return true;
  }
  return false;
}

ByteReader SnapshotReader::section(std::string_view name) const {
  for (const Section& s : sections_) {
    if (s.name == name) {
      return ByteReader{std::span<const std::uint8_t>{bytes_.data() + s.offset, s.size},
                        label_ + " section '" + s.name + "'"};
    }
  }
  throw SerializeError(label_ + ": missing required section '" + std::string(name) + "'");
}

}  // namespace nextgov
