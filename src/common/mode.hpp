// mode.hpp - mathematical mode of a sample.
//
// The core of the paper's user-interaction analysis: the target FPS for a
// session window is "the mathematical mode operation of all the 160 distinct
// values" sampled from the frame window (Section IV-A). Ties are resolved
// toward the *largest* value so the agent never under-provisions QoS when two
// frame rates are equally common.
#pragma once

#include <cstdint>
#include <span>

namespace nextgov {

/// Most frequent value of a non-negative integer sample (values <= max_value).
/// Tie-break: the largest of the equally-frequent values. Returns 0 for an
/// empty sample.
[[nodiscard]] int mode_of(std::span<const int> values, int max_value = 240);

/// Mode of doubles after rounding to the nearest integer (FPS samples are
/// conceptually integer frame counts).
[[nodiscard]] int mode_of_rounded(std::span<const double> values, int max_value = 240);

}  // namespace nextgov
