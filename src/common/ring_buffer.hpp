// ring_buffer.hpp - fixed-capacity circular buffer.
//
// Backs the paper's "frame window" (160 FPS samples at 25 ms over 4 s) and
// the sliding FPS counters. Once full, each push evicts the oldest element;
// iteration yields elements oldest-first. No allocation after construction.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace nextgov {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {
    require(capacity > 0, "RingBuffer capacity must be positive");
  }

  void push(const T& value) noexcept {
    buf_[head_] = value;
    head_ = (head_ + 1) % buf_.size();
    if (size_ < buf_.size()) ++size_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == buf_.size(); }

  /// Element `i` counted from the oldest (0) to the newest (size()-1).
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    NEXTGOV_ASSERT(i < size_);
    return buf_[(head_ + buf_.size() - size_ + i) % buf_.size()];
  }

  [[nodiscard]] const T& newest() const noexcept {
    NEXTGOV_ASSERT(size_ > 0);
    return (*this)[size_ - 1];
  }
  [[nodiscard]] const T& oldest() const noexcept {
    NEXTGOV_ASSERT(size_ > 0);
    return (*this)[0];
  }

  void clear() noexcept {
    size_ = 0;
    head_ = 0;
  }

  /// Copies contents oldest-first (for mode/stat computations).
  [[nodiscard]] std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  std::vector<T> buf_;
  std::size_t head_{0};
  std::size_t size_{0};
};

}  // namespace nextgov
