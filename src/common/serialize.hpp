// serialize.hpp - versioned, endian-stable binary snapshot format.
//
// Everything the repo persists (Q-tables, agent training state, whole-fleet
// checkpoints) goes through this one layer so corruption handling, version
// policy and byte order are decided exactly once:
//
//   * ByteWriter/ByteReader encode fixed-width little-endian primitives
//     (floats via their IEEE-754 bit patterns), so snapshot bytes are
//     identical across hosts and a snapshot written on one machine restores
//     bit-identically on another;
//   * SnapshotWriter/SnapshotReader wrap payloads in a sectioned container:
//     magic + format version + named sections, each with a length and a
//     CRC32 over its payload. The reader validates all of it up front and
//     throws SerializeError with a descriptive message on bad magic,
//     unsupported version, truncation or checksum mismatch - a damaged
//     snapshot is always a reported error, never UB or a silent partial
//     load.
//
// Version policy (documented in bench/README.md): writers always emit
// kSnapshotVersion; readers refuse anything newer ("refuse-forward") and
// read back at most one version (kSnapshotVersionMin), so a rolling fleet
// upgrade can always restore the previous release's checkpoints.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace nextgov {

/// Corruption, truncation or version mismatch detected while decoding a
/// snapshot. Derives from IoError so existing persistence call sites that
/// handle IoError keep working.
class SerializeError : public IoError {
 public:
  using IoError::IoError;
};

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant): crc32 of
/// "123456789" is 0xCBF43926. Detects all single-byte corruptions and any
/// truncation the length fields miss.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

/// Appends fixed-width little-endian primitives to a growable byte buffer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);   ///< IEEE-754 bit pattern, bit-exact round trip
  void f64(double v);  ///< IEEE-754 bit pattern, bit-exact round trip
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// Length-prefixed (u32) UTF-8 bytes.
  void str(std::string_view s);
  void bytes(std::span<const std::uint8_t> data);

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Decodes what ByteWriter encoded. Every read is bounds-checked: running
/// past the payload throws SerializeError naming `context` (set it to the
/// section/file being decoded so the error says *what* was truncated).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data, std::string context = "snapshot")
      : data_{data}, context_{std::move(context)} {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] float f32();
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean();
  [[nodiscard]] std::string str();

  /// Skips `n` payload bytes (bounds-checked like every read).
  void skip(std::size_t n);

  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }
  [[nodiscard]] const std::string& context() const noexcept { return context_; }

  /// Throws SerializeError("<context>: <what>").
  [[noreturn]] void fail(const std::string& what) const;

 private:
  void need(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_{0};
  std::string context_;
};

inline constexpr std::uint32_t kSnapshotMagic = 0x4e585353;  // "NXSS"
/// Version 3 (delta-upload era): fleet snapshots may carry an additional
/// `sync_state` section (per-shard sync cursors + the sync-base tables that
/// delta-encoded uploads diff against, plus cumulative wire-byte counters -
/// see sim/fleet.hpp). Version 2 (fleet-server era) added the optional
/// `server_state` section (device leases, deadline clock, pending late
/// uploads). The container framing itself is unchanged across all three
/// versions: older files simply lack the newer sections and decode through
/// the same path with those fields defaulted.
inline constexpr std::uint32_t kSnapshotVersion = 3;
/// Oldest container version the reader still accepts. The nominal policy is
/// read-back-one (a rolling fleet upgrade can always restore the previous
/// release's checkpoints), but because every addition since v1 has been an
/// optional section, the window is kept at 1: refusing v1 would cost
/// compatibility without retiring any decode path.
inline constexpr std::uint32_t kSnapshotVersionMin = 1;

/// Assembles a sectioned snapshot. Sections are written in call order;
/// names must be unique and are the reader's lookup keys.
class SnapshotWriter {
 public:
  /// Starts a new named section and returns the writer for its payload.
  /// The returned reference is invalidated by the next section() call.
  ByteWriter& section(std::string name);

  /// The assembled container (magic, version, section table + payloads,
  /// per-section CRC32).
  [[nodiscard]] std::vector<std::uint8_t> bytes() const;

  /// Writes the container to `path` atomically (temp file + rename), so a
  /// crash mid-write can never leave a half-written snapshot at `path`.
  /// Throws IoError on filesystem failure.
  void write_file(const std::string& path) const;

 private:
  struct Section {
    std::string name;
    ByteWriter payload;
  };
  std::vector<Section> sections_;
};

/// Parses and validates a snapshot container: magic, version window
/// [kSnapshotVersionMin, kSnapshotVersion], section framing and every
/// section's CRC32 are all checked in the constructor, so a SnapshotReader
/// that exists is known-good.
class SnapshotReader {
 public:
  /// `label` names the snapshot in error messages (usually the file path).
  SnapshotReader(std::vector<std::uint8_t> bytes, std::string label = "snapshot");

  /// Reads and validates `path`. Throws IoError if unreadable,
  /// SerializeError if damaged.
  [[nodiscard]] static SnapshotReader from_file(const std::string& path);

  [[nodiscard]] std::uint32_t version() const noexcept { return version_; }
  [[nodiscard]] bool has(std::string_view name) const noexcept;
  /// Payload reader for a section; throws SerializeError when missing.
  [[nodiscard]] ByteReader section(std::string_view name) const;

 private:
  struct Section {
    std::string name;
    std::size_t offset{0};
    std::size_t size{0};
  };
  std::vector<std::uint8_t> bytes_;
  std::vector<Section> sections_;
  std::uint32_t version_{0};
  std::string label_;
};

}  // namespace nextgov
