#include "common/mode.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace nextgov {

int mode_of(std::span<const int> values, int max_value) {
  require(max_value >= 0, "mode_of: max_value must be non-negative");
  if (values.empty()) return 0;
  std::vector<int> counts(static_cast<std::size_t>(max_value) + 1, 0);
  for (int v : values) {
    const int clamped = std::clamp(v, 0, max_value);
    ++counts[static_cast<std::size_t>(clamped)];
  }
  int best = 0;
  int best_count = -1;
  // Scan ascending with >= so the largest tied value wins.
  for (int v = 0; v <= max_value; ++v) {
    if (counts[static_cast<std::size_t>(v)] >= best_count &&
        counts[static_cast<std::size_t>(v)] > 0) {
      best = v;
      best_count = counts[static_cast<std::size_t>(v)];
    }
  }
  return best;
}

int mode_of_rounded(std::span<const double> values, int max_value) {
  std::vector<int> ints;
  ints.reserve(values.size());
  for (double v : values) ints.push_back(static_cast<int>(std::lround(v)));
  return mode_of(ints, max_value);
}

}  // namespace nextgov
