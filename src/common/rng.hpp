// rng.hpp - deterministic pseudo-random streams.
//
// Every stochastic element of the reproduction (user interaction timing, app
// phase jitter, epsilon-greedy exploration, sensor noise) draws from an
// explicitly seeded stream so that experiments are bit-reproducible across
// runs and machines. std::mt19937 distributions are not guaranteed identical
// across standard libraries, so we implement SplitMix64 (seeding) and
// xoshiro256++ (generation) with our own distribution transforms.
#pragma once

#include <array>
#include <cstdint>

namespace nextgov {

/// SplitMix64: tiny, well-mixed generator used to expand a single seed into
/// the xoshiro state and to derive independent per-subsystem seeds.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_{seed} {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Complete generator state, exposed so checkpoints can persist a stream
/// mid-sequence and resume it bit-identically (the Box-Muller spare is part
/// of the state: dropping it would shift every subsequent normal draw).
struct RngState {
  std::array<std::uint64_t, 4> s{};
  double spare_normal{0.0};
  bool has_spare{false};
};

/// xoshiro256++ with distribution helpers. Passes BigCrush; more than enough
/// for workload/exploration randomness while being fully portable.
class Rng {
 public:
  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;
  /// Standard normal via Box-Muller (caches the spare value).
  double normal() noexcept;
  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Log-normal parameterized by the mean and sigma of the underlying normal.
  double lognormal(double mu, double sigma) noexcept;
  /// Exponential with the given mean (= 1/lambda).
  double exponential(double mean) noexcept;

  /// Derives an independent child stream (seed mixed with `salt`), letting
  /// each subsystem own a stream without cross-coupling consumption order.
  [[nodiscard]] Rng fork(std::uint64_t salt) noexcept;

  /// Snapshot / restore of the full stream state (see RngState).
  [[nodiscard]] RngState state() const noexcept {
    return RngState{s_, spare_normal_, has_spare_};
  }
  void restore(const RngState& state) noexcept {
    s_ = state.s;
    spare_normal_ = state.spare_normal;
    has_spare_ = state.has_spare;
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_normal_{0.0};
  bool has_spare_{false};
};

}  // namespace nextgov
