#include "common/parse.hpp"

#include <cstddef>
#include <limits>

namespace nextgov {

bool parse_u64(const char* arg, std::uint64_t& out) noexcept {
  if (arg == nullptr || *arg == '\0') return false;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t value = 0;
  for (const char* p = arg; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(*p - '0');
    if (value > (kMax - digit) / 10) return false;  // would overflow
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

bool parse_count(const char* arg, std::size_t& out) noexcept {
  std::uint64_t value = 0;
  if (!parse_u64(arg, value)) return false;
  if constexpr (sizeof(std::size_t) < sizeof(std::uint64_t)) {
    if (value > static_cast<std::uint64_t>(std::numeric_limits<std::size_t>::max())) return false;
  }
  out = static_cast<std::size_t>(value);
  return true;
}

}  // namespace nextgov
