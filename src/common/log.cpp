#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace nextgov {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load()) return;
  std::fprintf(stderr, "[nextgov %s] %s\n", level_name(level), message.c_str());
}

}  // namespace nextgov
