#include "common/rng.hpp"

#include <cmath>

namespace nextgov {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm{seed};
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection-free multiply-shift (Lemire); bias < 2^-64, irrelevant here.
  const unsigned __int128 m = static_cast<unsigned __int128>(next_u64()) * span;
  return lo + static_cast<std::int64_t>(static_cast<std::uint64_t>(m >> 64));
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  spare_normal_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) noexcept { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double mean) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Rng Rng::fork(std::uint64_t salt) noexcept {
  SplitMix64 sm{next_u64() ^ (salt * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL)};
  return Rng{sm.next()};
}

}  // namespace nextgov
