// error.hpp - exception types and precondition helpers.
//
// Configuration and construction errors throw (Core Guidelines E.2); the
// simulation hot path is exception-free and uses NEXTGOV_ASSERT for internal
// invariants, which is compiled to a cheap check that terminates with a
// message (a corrupted simulation state is not recoverable).
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace nextgov {

/// Invalid user-supplied configuration (bad OPP table, negative window, ...).
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// I/O failure while persisting or loading artifacts (Q-tables, traces, CSV).
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[noreturn]] void require_fail(const char* what, std::source_location loc);

/// Throws ConfigError with a formatted location prefix when `cond` is false.
/// Takes `const char*` so the success path costs one branch: the previous
/// `const std::string&` signature materialized (and heap-allocated) the
/// message at every call site, which dominated the 1 ms engine step once the
/// thermal/power accessors validated ids a dozen times per tick.
inline void require(bool cond, const char* what,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) [[unlikely]] require_fail(what, loc);
}

inline void require(bool cond, const std::string& what,
                    std::source_location loc = std::source_location::current()) {
  if (!cond) [[unlikely]] require_fail(what.c_str(), loc);
}

[[noreturn]] void assert_fail(const char* expr, const char* file, int line);

}  // namespace nextgov

/// Internal invariant check; enabled in all build types because the
/// simulation is cheap relative to silent corruption.
#define NEXTGOV_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::nextgov::assert_fail(#expr, __FILE__, __LINE__))
