// csv.hpp - minimal CSV writer for experiment series.
//
// Every figure bench dumps its series as CSV next to the printed table so
// the plots can be regenerated (e.g. with gnuplot/matplotlib) without
// re-running the simulation. Quoting follows RFC 4180 for the few string
// columns we emit (app and governor names).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace nextgov {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws IoError on
  /// failure to open.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Appends a row of doubles (formatted with 6 significant digits).
  void row(std::initializer_list<double> values);
  /// Appends a mixed row of preformatted cells (quoted as needed).
  void row_strings(const std::vector<std::string>& cells);

  /// Number of data rows written so far (excluding the header).
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  /// Formats one cell, quoting per RFC 4180 when it contains , " or newline.
  [[nodiscard]] static std::string escape(std::string_view cell);

 private:
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_{0};
};

}  // namespace nextgov
