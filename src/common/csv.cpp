#include "common/csv.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace nextgov {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), columns_(header.size()) {
  if (!out_) throw IoError("cannot open CSV file for writing: " + path);
  require(!header.empty(), "CSV header must have at least one column");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(header[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(std::initializer_list<double> values) {
  NEXTGOV_ASSERT(values.size() == columns_);
  bool first = true;
  char buf[32];
  for (double v : values) {
    if (!first) out_ << ',';
    std::snprintf(buf, sizeof buf, "%.6g", v);
    out_ << buf;
    first = false;
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::row_strings(const std::vector<std::string>& cells) {
  NEXTGOV_ASSERT(cells.size() == columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quote = cell.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quote) return std::string{cell};
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace nextgov
