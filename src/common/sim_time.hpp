// sim_time.hpp - simulated time as an integer microsecond tick count.
//
// All periodic activities in the reproduced system are expressed in
// microseconds: the engine step (1 ms), VSync (16 667 us at 60 Hz), the frame
// window sampler (25 ms), the Next agent (100 ms). An integer tick avoids the
// floating-point drift that would desynchronize those periods over a
// five-minute session.
#pragma once

#include <compare>
#include <cstdint>

namespace nextgov {

/// A point in (or duration of) simulated time, in whole microseconds.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;
  constexpr explicit SimTime(std::int64_t microseconds) noexcept : us_{microseconds} {}

  [[nodiscard]] static constexpr SimTime from_us(std::int64_t us) noexcept { return SimTime{us}; }
  [[nodiscard]] static constexpr SimTime from_ms(std::int64_t ms) noexcept {
    return SimTime{ms * 1000};
  }
  [[nodiscard]] static constexpr SimTime from_seconds(double s) noexcept {
    return SimTime{static_cast<std::int64_t>(s * 1e6 + 0.5)};
  }
  [[nodiscard]] static constexpr SimTime zero() noexcept { return SimTime{0}; }

  [[nodiscard]] constexpr std::int64_t us() const noexcept { return us_; }
  [[nodiscard]] constexpr double ms() const noexcept { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double seconds() const noexcept {
    return static_cast<double>(us_) / 1e6;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;
  friend constexpr SimTime operator+(SimTime a, SimTime b) noexcept {
    return SimTime{a.us_ + b.us_};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) noexcept {
    return SimTime{a.us_ - b.us_};
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) noexcept {
    return SimTime{a.us_ * k};
  }
  /// Integer division: how many whole periods of `b` fit in `a`.
  friend constexpr std::int64_t operator/(SimTime a, SimTime b) noexcept { return a.us_ / b.us_; }
  friend constexpr SimTime operator%(SimTime a, SimTime b) noexcept {
    return SimTime{a.us_ % b.us_};
  }
  constexpr SimTime& operator+=(SimTime o) noexcept {
    us_ += o.us_;
    return *this;
  }

  /// True at every whole multiple of `period` (used for periodic callbacks).
  [[nodiscard]] constexpr bool is_multiple_of(SimTime period) const noexcept {
    return period.us_ > 0 && us_ % period.us_ == 0;
  }

 private:
  std::int64_t us_{0};
};

namespace literals {
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime{static_cast<std::int64_t>(v)};
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::from_ms(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime::from_seconds(static_cast<double>(v));
}
constexpr SimTime operator""_s(long double v) {
  return SimTime::from_seconds(static_cast<double>(v));
}
}  // namespace literals

}  // namespace nextgov
