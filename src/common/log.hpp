// log.hpp - leveled stderr logger.
//
// The simulator is a library; it must not spam stdout (that belongs to the
// bench tables). Diagnostics go to stderr behind a process-wide level that
// examples/benches set explicitly. Intentionally tiny - no sinks, no
// formatting DSL.
#pragma once

#include <sstream>
#include <string>

namespace nextgov {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the process-wide minimum level (default: kWarn).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits `message` to stderr when `level` passes the filter.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_{level} {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

/// Usage: NEXTGOV_LOG(kInfo) << "trained " << n << " episodes";
#define NEXTGOV_LOG(level) ::nextgov::detail::LogLine(::nextgov::LogLevel::level)

}  // namespace nextgov
