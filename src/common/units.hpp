// units.hpp - strong value types for physical quantities.
//
// The library moves frequencies (kHz, like Linux cpufreq), power (W),
// temperature (degrees C) and voltage (V) between many modules; mixing them up
// silently is the classic simulator bug. Following C++ Core Guidelines I.4
// ("make interfaces precisely and strongly typed") every quantity is a
// distinct arithmetic wrapper with only the operations that make physical
// sense.
//
// The wrappers are constexpr, trivially copyable and have no invariant beyond
// "is a finite double"; they are deliberately cheap enough for the 1 ms
// simulation hot loop.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace nextgov {

/// CRTP base providing ordering, +,-, scalar *,/ for a tagged quantity.
/// Derived types expose value() in their canonical unit.
template <typename Derived>
class Quantity {
 public:
  constexpr Quantity() noexcept = default;
  constexpr explicit Quantity(double v) noexcept : value_{v} {}

  [[nodiscard]] constexpr double value() const noexcept { return value_; }

  friend constexpr auto operator<=>(const Derived& a, const Derived& b) noexcept {
    return a.value() <=> b.value();
  }
  friend constexpr bool operator==(const Derived& a, const Derived& b) noexcept {
    return a.value() == b.value();
  }
  friend constexpr Derived operator+(const Derived& a, const Derived& b) noexcept {
    return Derived{a.value() + b.value()};
  }
  friend constexpr Derived operator-(const Derived& a, const Derived& b) noexcept {
    return Derived{a.value() - b.value()};
  }
  friend constexpr Derived operator*(const Derived& a, double s) noexcept {
    return Derived{a.value() * s};
  }
  friend constexpr Derived operator*(double s, const Derived& a) noexcept {
    return Derived{a.value() * s};
  }
  friend constexpr Derived operator/(const Derived& a, double s) noexcept {
    return Derived{a.value() / s};
  }
  /// Ratio of two like quantities is a dimensionless double.
  friend constexpr double operator/(const Derived& a, const Derived& b) noexcept {
    return a.value() / b.value();
  }
  constexpr Derived& operator+=(const Derived& o) noexcept {
    value_ += o.value();
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(const Derived& o) noexcept {
    value_ -= o.value();
    return static_cast<Derived&>(*this);
  }

 private:
  double value_{0.0};
};

/// Frequency in kilohertz - the canonical unit of Linux cpufreq OPP tables.
class KiloHertz : public Quantity<KiloHertz> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr double hz() const noexcept { return value() * 1e3; }
  [[nodiscard]] constexpr double mhz() const noexcept { return value() / 1e3; }
  [[nodiscard]] constexpr double ghz() const noexcept { return value() / 1e6; }
  [[nodiscard]] static constexpr KiloHertz from_mhz(double mhz) noexcept {
    return KiloHertz{mhz * 1e3};
  }
  [[nodiscard]] static constexpr KiloHertz from_ghz(double ghz) noexcept {
    return KiloHertz{ghz * 1e6};
  }
};

/// Electrical power in watts (device- or cluster-level).
class Watts : public Quantity<Watts> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr double milliwatts() const noexcept { return value() * 1e3; }
  [[nodiscard]] static constexpr Watts from_milliwatts(double mw) noexcept {
    return Watts{mw / 1e3};
  }
};

/// Temperature in degrees Celsius (the paper reports degrees C throughout).
class Celsius : public Quantity<Celsius> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr double kelvin() const noexcept { return value() + 273.15; }
};

/// Supply voltage in volts.
class Volts : public Quantity<Volts> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr double millivolts() const noexcept { return value() * 1e3; }
};

/// Energy in joules; accumulating power over sim steps.
class Joules : public Quantity<Joules> {
 public:
  using Quantity::Quantity;
};

/// Frames per second. Kept as double internally; the agent quantizes
/// explicitly via rl::Discretizer, never implicitly.
class Fps : public Quantity<Fps> {
 public:
  using Quantity::Quantity;
  [[nodiscard]] constexpr int rounded() const noexcept {
    return static_cast<int>(value() + (value() >= 0 ? 0.5 : -0.5));
  }
};

/// Convenience literals: 650_mhz, 2.5_w, 21.0_celsius ...
namespace literals {
constexpr KiloHertz operator""_khz(long double v) { return KiloHertz{static_cast<double>(v)}; }
constexpr KiloHertz operator""_khz(unsigned long long v) { return KiloHertz{static_cast<double>(v)}; }
constexpr KiloHertz operator""_mhz(long double v) { return KiloHertz::from_mhz(static_cast<double>(v)); }
constexpr KiloHertz operator""_mhz(unsigned long long v) { return KiloHertz::from_mhz(static_cast<double>(v)); }
constexpr KiloHertz operator""_ghz(long double v) { return KiloHertz::from_ghz(static_cast<double>(v)); }
constexpr Watts operator""_w(long double v) { return Watts{static_cast<double>(v)}; }
constexpr Watts operator""_w(unsigned long long v) { return Watts{static_cast<double>(v)}; }
constexpr Watts operator""_mw(long double v) { return Watts::from_milliwatts(static_cast<double>(v)); }
constexpr Celsius operator""_celsius(long double v) { return Celsius{static_cast<double>(v)}; }
constexpr Celsius operator""_celsius(unsigned long long v) { return Celsius{static_cast<double>(v)}; }
constexpr Volts operator""_v(long double v) { return Volts{static_cast<double>(v)}; }
constexpr Fps operator""_fps(long double v) { return Fps{static_cast<double>(v)}; }
constexpr Fps operator""_fps(unsigned long long v) { return Fps{static_cast<double>(v)}; }
}  // namespace literals

}  // namespace nextgov

template <>
struct std::hash<nextgov::KiloHertz> {
  size_t operator()(const nextgov::KiloHertz& k) const noexcept {
    return std::hash<double>{}(k.value());
  }
};
