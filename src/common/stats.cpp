#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace nextgov {

void RunningStats::add(double x) noexcept {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> values, double p) {
  require(!values.empty(), "percentile of empty sample");
  require(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> values) noexcept {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double max_of(std::span<const double> values) noexcept {
  double m = 0.0;
  bool first = true;
  for (double v : values) {
    m = first ? v : std::max(m, v);
    first = false;
  }
  return m;
}

}  // namespace nextgov
