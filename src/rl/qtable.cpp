#include "rl/qtable.hpp"

#include <algorithm>
#include <fstream>

#include "common/error.hpp"

namespace nextgov::rl {

namespace {
constexpr std::uint32_t kMagic = 0x4e584754;  // "NXGT"
constexpr std::uint32_t kVersion = 2;

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
void read_pod(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof v);
}
}  // namespace

namespace {
/// A session typically visits a few thousand quantized states (Fig. 6
/// reports state counts in this range); start the bucket array there so
/// online training never rehashes.
constexpr std::size_t kInitialStateCapacity = 4096;
}  // namespace

QTable::QTable(std::size_t action_count, double default_q)
    : actions_{action_count}, default_q_{default_q} {
  require(action_count > 0, "QTable needs at least one action");
  table_.reserve(kInitialStateCapacity);
}

QTable::Entry& QTable::entry(StateKey s) {
  auto [it, inserted] = table_.try_emplace(s);
  if (inserted) it->second.q.assign(actions_, static_cast<float>(default_q_));
  return it->second;
}

double QTable::q(StateKey s, std::size_t a) const noexcept {
  NEXTGOV_ASSERT(a < actions_);
  const auto it = table_.find(s);
  return it == table_.end() ? default_q_ : static_cast<double>(it->second.q[a]);
}

void QTable::set_q(StateKey s, std::size_t a, double value) {
  NEXTGOV_ASSERT(a < actions_);
  Entry& e = entry(s);
  e.q[a] = static_cast<float>(value);
  if (a < 32) e.tried |= (1u << a);
}

double QTable::max_q(StateKey s) const noexcept {
  const auto it = table_.find(s);
  if (it == table_.end()) return default_q_;
  float best = it->second.q[0];
  for (float v : it->second.q) best = v > best ? v : best;
  return static_cast<double>(best);
}

std::size_t QTable::best_action(StateKey s, std::size_t fallback) const noexcept {
  const auto it = table_.find(s);
  if (it == table_.end()) return fallback;
  std::size_t best = 0;
  for (std::size_t a = 1; a < actions_; ++a) {
    if (it->second.q[a] > it->second.q[best]) best = a;
  }
  return best;
}

std::size_t QTable::best_tried_action(StateKey s, std::size_t fallback) const noexcept {
  const auto it = table_.find(s);
  if (it == table_.end() || it->second.tried == 0) return fallback;
  std::size_t best = fallback;
  bool found = false;
  for (std::size_t a = 0; a < actions_ && a < 32; ++a) {
    if ((it->second.tried & (1u << a)) == 0) continue;
    if (!found || it->second.q[a] > it->second.q[best]) {
      best = a;
      found = true;
    }
  }
  return best;
}

void QTable::record_visit(StateKey s) {
  ++entry(s).visits;
  ++total_visits_;
}

void QTable::add_visits(StateKey s, std::uint64_t n) {
  entry(s).visits += n;
  total_visits_ += n;
}

std::uint64_t QTable::visits(StateKey s) const noexcept {
  const auto it = table_.find(s);
  return it == table_.end() ? 0 : it->second.visits;
}

void QTable::clear() {
  table_.clear();
  total_visits_ = 0;
}

void QTable::save(const std::string& path) const {
  std::ofstream out{path, std::ios::binary};
  if (!out) throw IoError("cannot open Q-table for writing: " + path);
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(actions_));
  write_pod(out, static_cast<std::uint64_t>(table_.size()));
  write_pod(out, total_visits_);
  for (const auto& [key, e] : table_) {
    write_pod(out, key);
    write_pod(out, e.visits);
    write_pod(out, e.tried);
    out.write(reinterpret_cast<const char*>(e.q.data()),
              static_cast<std::streamsize>(e.q.size() * sizeof(float)));
  }
  if (!out) throw IoError("failed writing Q-table: " + path);
}

QTable QTable::load(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw IoError("cannot open Q-table: " + path);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  read_pod(in, magic);
  read_pod(in, version);
  if (magic != kMagic) throw IoError("not a nextgov Q-table: " + path);
  if (version != kVersion) throw IoError("unsupported Q-table version in " + path);
  std::uint64_t actions = 0;
  std::uint64_t states = 0;
  std::uint64_t total_visits = 0;
  read_pod(in, actions);
  read_pod(in, states);
  read_pod(in, total_visits);
  if (!in || actions == 0) throw IoError("corrupt Q-table header: " + path);
  QTable t{static_cast<std::size_t>(actions)};
  t.total_visits_ = total_visits;
  // Cap the pre-size: `states` is untrusted header data, and a corrupt
  // count must surface as the truncated-file IoError below, not as a
  // giant allocation here.
  t.table_.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(states, 1u << 20)));
  for (std::uint64_t i = 0; i < states; ++i) {
    StateKey key = 0;
    std::uint64_t visits = 0;
    std::uint32_t tried = 0;
    read_pod(in, key);
    read_pod(in, visits);
    read_pod(in, tried);
    Entry e;
    e.visits = visits;
    e.tried = tried;
    e.q.resize(actions);
    in.read(reinterpret_cast<char*>(e.q.data()),
            static_cast<std::streamsize>(actions * sizeof(float)));
    if (!in) throw IoError("truncated Q-table: " + path);
    t.table_.emplace(key, std::move(e));
  }
  return t;
}

void best_actions(std::span<const QTable* const> tables, std::span<const StateKey> states,
                  std::size_t fallback, std::span<std::size_t> out) noexcept {
  NEXTGOV_ASSERT(states.size() == tables.size() && out.size() == tables.size());
  for (std::size_t i = 0; i < tables.size(); ++i) {
    out[i] = tables[i]->best_action(states[i], fallback);
  }
}

}  // namespace nextgov::rl
