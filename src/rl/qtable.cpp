#include "rl/qtable.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace nextgov::rl {

namespace {
/// Section name inside the snapshot container used by save()/load().
constexpr const char* kQTableSection = "qtable";

/// A session typically visits a few thousand quantized states (Fig. 6
/// reports state counts in this range); the first insert allocates straight
/// at this capacity so online training never rehashes. Allocation is lazy:
/// a default-constructed table owns no slot arrays, which keeps the many
/// empty-table copies in the fleet paths free.
constexpr std::size_t kInitialStateCapacity = 4096;
}  // namespace

QTable::QTable(std::size_t action_count, double default_q)
    : actions_{action_count}, default_q_{default_q} {
  require(action_count > 0, "QTable needs at least one action");
}

std::size_t QTable::initial_capacity() const noexcept {
  // deserialize() admits up to 4096 actions; for such fat action spaces the
  // 4096-slot slab would front a multi-MB value plane, so scale the first
  // allocation down and let power-of-two growth catch up on demand.
  return actions_ <= 64 ? kInitialStateCapacity : 64;
}

std::size_t QTable::find_slot(StateKey s) const noexcept {
  if (capacity_ == 0) return kNoSlot;
  const std::size_t mask = capacity_ - 1;
  std::size_t i = StateKeyHash{}(s) & mask;
  // Load stays below 3/4 and nothing is ever erased, so the probe chain is
  // tombstone-free and always terminates at an empty slot.
  while (used_[i]) {
    if (keys_[i] == s) return i;
    i = (i + 1) & mask;
  }
  return kNoSlot;
}

std::size_t QTable::insert_slot(StateKey s) {
  if (capacity_ == 0 || 4 * (size_ + 1) > 3 * capacity_) grow();
  const std::size_t mask = capacity_ - 1;
  std::size_t i = StateKeyHash{}(s) & mask;
  while (used_[i]) {
    if (keys_[i] == s) return i;
    i = (i + 1) & mask;
  }
  used_[i] = 1;
  keys_[i] = s;
  // visits_/tried_ of a never-claimed slot are already zero; only the Q row
  // needs the optimistic default.
  for (std::size_t a = 0; a < actions_; ++a) {
    q_[i * actions_ + a] = static_cast<float>(default_q_);
  }
  ++size_;
  return i;
}

void QTable::reserve_states(std::size_t n) {
  while (capacity_ == 0 || 4 * n > 3 * capacity_) grow();
}

void QTable::grow() {
  const std::size_t new_cap = capacity_ == 0 ? initial_capacity() : capacity_ * 2;
  std::vector<StateKey> keys(new_cap, 0);
  std::vector<std::uint8_t> used(new_cap, 0);
  std::vector<float> q(new_cap * actions_, 0.0f);
  std::vector<std::uint64_t> visits(new_cap, 0);
  std::vector<std::uint32_t> tried(new_cap, 0);
  const std::size_t mask = new_cap - 1;
  for (std::size_t i = 0; i < capacity_; ++i) {
    if (!used_[i]) continue;
    std::size_t j = StateKeyHash{}(keys_[i]) & mask;
    while (used[j]) j = (j + 1) & mask;
    used[j] = 1;
    keys[j] = keys_[i];
    visits[j] = visits_[i];
    tried[j] = tried_[i];
    for (std::size_t a = 0; a < actions_; ++a) {
      q[j * actions_ + a] = q_[i * actions_ + a];
    }
  }
  keys_ = std::move(keys);
  used_ = std::move(used);
  q_ = std::move(q);
  visits_ = std::move(visits);
  tried_ = std::move(tried);
  capacity_ = new_cap;
}

double QTable::q(StateKey s, std::size_t a) const noexcept {
  NEXTGOV_ASSERT(a < actions_);
  const std::size_t slot = find_slot(s);
  return slot == kNoSlot ? default_q_ : static_cast<double>(q_[slot * actions_ + a]);
}

void QTable::set_q(StateKey s, std::size_t a, double value) {
  NEXTGOV_ASSERT(a < actions_);
  const std::size_t slot = insert_slot(s);
  q_[slot * actions_ + a] = static_cast<float>(value);
  if (a < 32) tried_[slot] |= (1u << a);
}

double QTable::max_q(StateKey s) const noexcept {
  const std::size_t slot = find_slot(s);
  if (slot == kNoSlot) return default_q_;
  float best = q_[slot * actions_];
  for (std::size_t a = 1; a < actions_; ++a) {
    const float v = q_[slot * actions_ + a];
    best = v > best ? v : best;
  }
  return static_cast<double>(best);
}

std::size_t QTable::best_action(StateKey s, std::size_t fallback) const noexcept {
  const std::size_t slot = find_slot(s);
  if (slot == kNoSlot) return fallback;
  std::size_t best = 0;
  for (std::size_t a = 1; a < actions_; ++a) {
    if (q_[slot * actions_ + a] > q_[slot * actions_ + best]) best = a;
  }
  return best;
}

std::size_t QTable::best_tried_action(StateKey s, std::size_t fallback) const noexcept {
  const std::size_t slot = find_slot(s);
  if (slot == kNoSlot || tried_[slot] == 0) return fallback;
  std::size_t best = fallback;
  bool found = false;
  for (std::size_t a = 0; a < actions_ && a < 32; ++a) {
    if ((tried_[slot] & (1u << a)) == 0) continue;
    if (!found || q_[slot * actions_ + a] > q_[slot * actions_ + best]) {
      best = a;
      found = true;
    }
  }
  return best;
}

void QTable::record_visit(StateKey s) {
  ++visits_[insert_slot(s)];
  ++total_visits_;
}

void QTable::add_visits(StateKey s, std::uint64_t n) {
  visits_[insert_slot(s)] += n;
  total_visits_ += n;
}

std::uint64_t QTable::visits(StateKey s) const noexcept {
  const std::size_t slot = find_slot(s);
  return slot == kNoSlot ? 0 : visits_[slot];
}

bool QTable::contains(StateKey s) const noexcept { return find_slot(s) != kNoSlot; }

std::uint32_t QTable::tried_mask(StateKey s) const noexcept {
  const std::size_t slot = find_slot(s);
  return slot == kNoSlot ? 0 : tried_[slot];
}

std::optional<QTable::EntryView> QTable::find_entry(StateKey s) const noexcept {
  const std::size_t slot = find_slot(s);
  if (slot == kNoSlot) return std::nullopt;
  return EntryView{keys_[slot], visits_[slot], tried_[slot], q_.data() + slot * actions_, 1};
}

void QTable::install_entry(StateKey s, std::uint64_t visits, std::uint32_t tried,
                           std::span<const float> q) {
  NEXTGOV_ASSERT(q.size() == actions_);
  const std::size_t slot = insert_slot(s);
  total_visits_ += visits - visits_[slot];  // wraps correctly when shrinking
  visits_[slot] = visits;
  tried_[slot] = tried;
  for (std::size_t a = 0; a < actions_; ++a) q_[slot * actions_ + a] = q[a];
}

std::size_t QTable::memory_bytes() const noexcept {
  return sizeof(QTable) +
         capacity_ * (sizeof(StateKey) + sizeof(std::uint8_t) + sizeof(std::uint64_t) +
                      sizeof(std::uint32_t) + actions_ * sizeof(float));
}

void QTable::clear() {
  std::fill(used_.begin(), used_.end(), std::uint8_t{0});
  std::fill(visits_.begin(), visits_.end(), std::uint64_t{0});
  std::fill(tried_.begin(), tried_.end(), std::uint32_t{0});
  size_ = 0;
  total_visits_ = 0;
}

bool QTable::operator==(const QTable& other) const noexcept {
  if (actions_ != other.actions_ || total_visits_ != other.total_visits_ ||
      size_ != other.size_ ||
      std::bit_cast<std::uint64_t>(default_q_) != std::bit_cast<std::uint64_t>(other.default_q_)) {
    return false;
  }
  for (std::size_t i = 0; i < capacity_; ++i) {
    if (!used_[i]) continue;
    const std::size_t j = other.find_slot(keys_[i]);
    if (j == kNoSlot) return false;
    if (visits_[i] != other.visits_[j] || tried_[i] != other.tried_[j]) return false;
    for (std::size_t a = 0; a < actions_; ++a) {
      if (std::bit_cast<std::uint32_t>(q_[i * actions_ + a]) !=
          std::bit_cast<std::uint32_t>(other.q_[j * other.actions_ + a])) {
        return false;
      }
    }
  }
  return true;
}

std::vector<std::uint32_t> QTable::sorted_slots() const {
  std::vector<std::uint32_t> slots;
  slots.reserve(size_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    if (used_[i]) slots.push_back(static_cast<std::uint32_t>(i));
  }
  std::sort(slots.begin(), slots.end(),
            [this](std::uint32_t a, std::uint32_t b) { return keys_[a] < keys_[b]; });
  return slots;
}

void QTable::serialize(ByteWriter& out) const {
  out.u64(static_cast<std::uint64_t>(actions_));
  out.f64(default_q_);
  out.u64(total_visits_);
  out.u64(static_cast<std::uint64_t>(size_));
  // Canonical order: sorted by state key. The probe order depends on
  // insertion history and capacity, which must not leak into the snapshot
  // bytes (resume-equality tests compare serialized fleets byte-for-byte).
  for (const std::uint32_t slot : sorted_slots()) {
    out.u64(keys_[slot]);
    out.u64(visits_[slot]);
    out.u32(tried_[slot]);
    for (std::size_t a = 0; a < actions_; ++a) out.f32(q_[slot * actions_ + a]);
  }
}

QTable QTable::deserialize(ByteReader& in) {
  const std::uint64_t actions = in.u64();
  if (actions == 0 || actions > 4096) {
    in.fail("corrupt Q-table header: implausible action count " + std::to_string(actions));
  }
  const double default_q = in.f64();
  const std::uint64_t total_visits = in.u64();
  const std::uint64_t states = in.u64();
  QTable t{static_cast<std::size_t>(actions), default_q};
  t.total_visits_ = total_visits;
  // Cap the pre-size: `states` is untrusted header data, and a corrupt
  // count must surface as a truncation SerializeError below, not as a
  // giant allocation here.
  if (states > 0) {
    t.reserve_states(static_cast<std::size_t>(std::min<std::uint64_t>(states, 1u << 20)));
  }
  for (std::uint64_t i = 0; i < states; ++i) {
    const StateKey key = in.u64();
    if (t.contains(key)) in.fail("corrupt Q-table payload: duplicate state key");
    const std::size_t slot = t.insert_slot(key);
    t.visits_[slot] = in.u64();
    t.tried_[slot] = in.u32();
    for (std::size_t a = 0; a < t.actions_; ++a) {
      t.q_[slot * t.actions_ + a] = in.f32();
    }
  }
  return t;
}

void QTable::save(const std::string& path) const {
  SnapshotWriter snapshot;
  serialize(snapshot.section(kQTableSection));
  snapshot.write_file(path);
}

QTable QTable::load(const std::string& path) {
  const SnapshotReader snapshot = SnapshotReader::from_file(path);
  ByteReader in = snapshot.section(kQTableSection);
  QTable t = deserialize(in);
  if (!in.done()) in.fail("trailing bytes after the Q-table payload");
  return t;
}

void best_actions(std::span<const QTable* const> tables, std::span<const StateKey> states,
                  std::size_t fallback, std::span<std::size_t> out) noexcept {
  NEXTGOV_ASSERT(states.size() == tables.size() && out.size() == tables.size());
  for (std::size_t i = 0; i < tables.size(); ++i) {
    out[i] = tables[i]->best_action(states[i], fallback);
  }
}

}  // namespace nextgov::rl
