#include "rl/qtable.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace nextgov::rl {

namespace {
/// Section name inside the snapshot container used by save()/load().
constexpr const char* kQTableSection = "qtable";
}  // namespace

namespace {
/// A session typically visits a few thousand quantized states (Fig. 6
/// reports state counts in this range); start the bucket array there so
/// online training never rehashes.
constexpr std::size_t kInitialStateCapacity = 4096;
}  // namespace

QTable::QTable(std::size_t action_count, double default_q)
    : actions_{action_count}, default_q_{default_q} {
  require(action_count > 0, "QTable needs at least one action");
  table_.reserve(kInitialStateCapacity);
}

QTable::Entry& QTable::entry(StateKey s) {
  auto [it, inserted] = table_.try_emplace(s);
  if (inserted) it->second.q.assign(actions_, static_cast<float>(default_q_));
  return it->second;
}

double QTable::q(StateKey s, std::size_t a) const noexcept {
  NEXTGOV_ASSERT(a < actions_);
  const auto it = table_.find(s);
  return it == table_.end() ? default_q_ : static_cast<double>(it->second.q[a]);
}

void QTable::set_q(StateKey s, std::size_t a, double value) {
  NEXTGOV_ASSERT(a < actions_);
  Entry& e = entry(s);
  e.q[a] = static_cast<float>(value);
  if (a < 32) e.tried |= (1u << a);
}

double QTable::max_q(StateKey s) const noexcept {
  const auto it = table_.find(s);
  if (it == table_.end()) return default_q_;
  float best = it->second.q[0];
  for (float v : it->second.q) best = v > best ? v : best;
  return static_cast<double>(best);
}

std::size_t QTable::best_action(StateKey s, std::size_t fallback) const noexcept {
  const auto it = table_.find(s);
  if (it == table_.end()) return fallback;
  std::size_t best = 0;
  for (std::size_t a = 1; a < actions_; ++a) {
    if (it->second.q[a] > it->second.q[best]) best = a;
  }
  return best;
}

std::size_t QTable::best_tried_action(StateKey s, std::size_t fallback) const noexcept {
  const auto it = table_.find(s);
  if (it == table_.end() || it->second.tried == 0) return fallback;
  std::size_t best = fallback;
  bool found = false;
  for (std::size_t a = 0; a < actions_ && a < 32; ++a) {
    if ((it->second.tried & (1u << a)) == 0) continue;
    if (!found || it->second.q[a] > it->second.q[best]) {
      best = a;
      found = true;
    }
  }
  return best;
}

void QTable::record_visit(StateKey s) {
  ++entry(s).visits;
  ++total_visits_;
}

void QTable::add_visits(StateKey s, std::uint64_t n) {
  entry(s).visits += n;
  total_visits_ += n;
}

std::uint64_t QTable::visits(StateKey s) const noexcept {
  const auto it = table_.find(s);
  return it == table_.end() ? 0 : it->second.visits;
}

void QTable::clear() {
  table_.clear();
  total_visits_ = 0;
}

bool QTable::operator==(const QTable& other) const noexcept {
  if (actions_ != other.actions_ || total_visits_ != other.total_visits_ ||
      table_.size() != other.table_.size() ||
      std::bit_cast<std::uint64_t>(default_q_) != std::bit_cast<std::uint64_t>(other.default_q_)) {
    return false;
  }
  for (const auto& [key, e] : table_) {
    const auto it = other.table_.find(key);
    if (it == other.table_.end()) return false;
    const Entry& o = it->second;
    if (e.visits != o.visits || e.tried != o.tried) return false;
    for (std::size_t a = 0; a < actions_; ++a) {
      if (std::bit_cast<std::uint32_t>(e.q[a]) != std::bit_cast<std::uint32_t>(o.q[a])) {
        return false;
      }
    }
  }
  return true;
}

void QTable::serialize(ByteWriter& out) const {
  out.u64(static_cast<std::uint64_t>(actions_));
  out.f64(default_q_);
  out.u64(total_visits_);
  out.u64(static_cast<std::uint64_t>(table_.size()));
  // Canonical order: sorted by state key. The in-memory map's iteration
  // order depends on insertion history, which must not leak into the
  // snapshot bytes (resume-equality tests compare serialized fleets
  // byte-for-byte).
  std::vector<StateKey> keys;
  keys.reserve(table_.size());
  for (const auto& [key, e] : table_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const StateKey key : keys) {
    const Entry& e = table_.find(key)->second;
    out.u64(key);
    out.u64(e.visits);
    out.u32(e.tried);
    for (const float q : e.q) out.f32(q);
  }
}

QTable QTable::deserialize(ByteReader& in) {
  const std::uint64_t actions = in.u64();
  if (actions == 0 || actions > 4096) {
    in.fail("corrupt Q-table header: implausible action count " + std::to_string(actions));
  }
  const double default_q = in.f64();
  const std::uint64_t total_visits = in.u64();
  const std::uint64_t states = in.u64();
  QTable t{static_cast<std::size_t>(actions), default_q};
  t.total_visits_ = total_visits;
  // Cap the pre-size: `states` is untrusted header data, and a corrupt
  // count must surface as a truncation SerializeError below, not as a
  // giant allocation here.
  t.table_.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(states, 1u << 20)));
  for (std::uint64_t i = 0; i < states; ++i) {
    const StateKey key = in.u64();
    Entry e;
    e.visits = in.u64();
    e.tried = in.u32();
    e.q.resize(actions);
    for (float& q : e.q) q = in.f32();
    if (!t.table_.emplace(key, std::move(e)).second) {
      in.fail("corrupt Q-table payload: duplicate state key");
    }
  }
  return t;
}

void QTable::save(const std::string& path) const {
  SnapshotWriter snapshot;
  serialize(snapshot.section(kQTableSection));
  snapshot.write_file(path);
}

QTable QTable::load(const std::string& path) {
  const SnapshotReader snapshot = SnapshotReader::from_file(path);
  ByteReader in = snapshot.section(kQTableSection);
  QTable t = deserialize(in);
  if (!in.done()) in.fail("trailing bytes after the Q-table payload");
  return t;
}

void best_actions(std::span<const QTable* const> tables, std::span<const StateKey> states,
                  std::size_t fallback, std::span<std::size_t> out) noexcept {
  NEXTGOV_ASSERT(states.size() == tables.size() && out.size() == tables.size());
  for (std::size_t i = 0; i < tables.size(); ++i) {
    out[i] = tables[i]->best_action(states[i], fallback);
  }
}

}  // namespace nextgov::rl
