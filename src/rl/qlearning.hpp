// qlearning.hpp - Watkins Q-learning update (the paper's Eq. 3).
//
//   Q(s_i, a_i) <- Q(s_i, a_i) + alpha * (r_i - Q(s_i, a_i)
//                                         + gamma * max_a Q(s_{i+1}, a))
//
// Kept as a tiny standalone component so the Next agent, the gridworld
// convergence tests and the offline/cloud trainer share one implementation.
#pragma once

#include "rl/qtable.hpp"

namespace nextgov::rl {

struct QLearningParams {
  double alpha{0.15};  ///< initial learning rate
  double gamma{0.90};  ///< discount factor
  /// Robbins-Monro style decay: alpha_eff = max(alpha_min,
  /// alpha / (1 + visits(s) * visit_decay)). Averaging out reward noise in
  /// well-visited states lets the learner resolve the small per-OPP reward
  /// gradients of the DVFS lattice. visit_decay = 0 disables decay.
  double alpha_min{0.05};
  double visit_decay{0.02};
};

class QLearning {
 public:
  explicit QLearning(QLearningParams params);

  /// Applies one update; returns the temporal-difference error
  /// (r + gamma*maxQ(s') - Q(s,a)) used for convergence detection.
  double update(QTable& table, StateKey s, std::size_t a, double reward, StateKey s_next);

  /// Terminal variant (no bootstrap from a successor state).
  double update_terminal(QTable& table, StateKey s, std::size_t a, double reward);

  [[nodiscard]] const QLearningParams& params() const noexcept { return params_; }

  /// Visit-decayed learning rate currently applicable to state `s`.
  [[nodiscard]] double effective_alpha(const QTable& table, StateKey s) const noexcept;

 private:
  QLearningParams params_;
};

}  // namespace nextgov::rl
