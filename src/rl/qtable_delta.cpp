#include "rl/qtable_delta.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"

namespace nextgov::rl {

namespace {

[[nodiscard]] bool bits_equal(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

[[nodiscard]] bool bits_equal(float a, float b) noexcept {
  return std::bit_cast<std::uint32_t>(a) == std::bit_cast<std::uint32_t>(b);
}

}  // namespace

void QTableDelta::serialize(ByteWriter& out) const {
  out.u64(static_cast<std::uint64_t>(action_count));
  out.f64(default_q);
  out.u64(base_states);
  out.u64(base_total_visits);
  out.u64(static_cast<std::uint64_t>(changes.size()));
  for (const Change& c : changes) {
    out.u64(c.key);
    out.i64(c.visit_delta);
    out.u32(c.tried);
    for (const float q : c.q) out.f32(q);
  }
}

QTableDelta QTableDelta::deserialize(ByteReader& in) {
  QTableDelta d;
  const std::uint64_t actions = in.u64();
  if (actions == 0 || actions > 4096) {
    in.fail("corrupt Q-table delta header: implausible action count " + std::to_string(actions));
  }
  d.action_count = static_cast<std::size_t>(actions);
  d.default_q = in.f64();
  d.base_states = in.u64();
  d.base_total_visits = in.u64();
  const std::uint64_t count = in.u64();
  // Changes are a subset of the sender's states; cap the pre-size like
  // QTable::deserialize so a corrupt count surfaces as truncation below.
  d.changes.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(count, 1u << 20)));
  StateKey prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    Change c;
    c.key = in.u64();
    if (i > 0 && c.key <= prev) {
      in.fail("corrupt Q-table delta payload: change keys not strictly increasing");
    }
    prev = c.key;
    c.visit_delta = in.i64();
    c.tried = in.u32();
    c.q.resize(d.action_count);
    for (float& q : c.q) q = in.f32();
    d.changes.push_back(std::move(c));
  }
  return d;
}

std::optional<QTableDelta> try_make_delta(const QTable& base, const QTable& next) {
  if (base.action_count() != next.action_count() ||
      !bits_equal(base.default_q(), next.default_q()) ||
      base.state_count() > next.state_count()) {
    return std::nullopt;
  }
  // The delta can only add or modify states (the table itself never erases),
  // so every base state must still exist in `next`.
  bool subset = true;
  base.for_each_entry([&](const QTable::EntryView& e) {
    if (!next.contains(e.key())) subset = false;
  });
  if (!subset) return std::nullopt;

  const std::size_t actions = next.action_count();
  QTableDelta d;
  d.action_count = actions;
  d.default_q = next.default_q();
  d.base_states = base.state_count();
  d.base_total_visits = base.total_visits();
  std::int64_t visit_delta_sum = 0;
  next.for_each_entry([&](const QTable::EntryView& e) {
    const std::optional<QTable::EntryView> b = base.find_entry(e.key());
    bool changed = !b.has_value() || b->visits() != e.visits() || b->tried() != e.tried();
    if (!changed) {
      for (std::size_t a = 0; a < actions; ++a) {
        if (!bits_equal(b->q(a), e.q(a))) {
          changed = true;
          break;
        }
      }
    }
    if (!changed) return;
    QTableDelta::Change c;
    c.key = e.key();
    const std::uint64_t base_visits = b.has_value() ? b->visits() : 0;
    c.visit_delta = static_cast<std::int64_t>(e.visits() - base_visits);
    visit_delta_sum += c.visit_delta;
    c.tried = e.tried();
    c.q.resize(actions);
    for (std::size_t a = 0; a < actions; ++a) c.q[a] = e.q(a);
    d.changes.push_back(std::move(c));
  });
  // apply_delta reconstructs total_visits by accumulating per-state diffs,
  // which only lands on the sender's exact total when the totals are
  // consistent with the entries. Every QTable mutation path maintains that
  // invariant; if a hand-decoded table ever violated it, fall back to a
  // full upload rather than ship a delta that cannot replay bit-exactly.
  const std::int64_t total_diff =
      static_cast<std::int64_t>(next.total_visits() - base.total_visits());
  if (visit_delta_sum != total_diff) return std::nullopt;
  return d;
}

QTable apply_delta(const QTable& base, const QTableDelta& delta) {
  if (delta.action_count != base.action_count() ||
      !bits_equal(delta.default_q, base.default_q()) ||
      delta.base_states != base.state_count() ||
      delta.base_total_visits != base.total_visits()) {
    throw SerializeError(
        "Q-table delta rejected: base-table guards do not match the table it is being "
        "applied to (sender and receiver disagree about the last accepted sync)");
  }
  QTable out = base;
  for (const QTableDelta::Change& c : delta.changes) {
    if (c.q.size() != base.action_count()) {
      throw SerializeError("Q-table delta rejected: change row has wrong action count");
    }
    const std::uint64_t visits =
        out.visits(c.key) + static_cast<std::uint64_t>(c.visit_delta);
    out.install_entry(c.key, visits, c.tried, c.q);
  }
  return out;
}

std::uint16_t f32_to_f16(float v) noexcept {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(v);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  std::uint32_t mant = x & 0x007fffffu;
  const std::int32_t exp = static_cast<std::int32_t>((x >> 23) & 0xffu);
  if (exp == 0xff) {  // inf / NaN (keep NaN-ness with a set mantissa bit)
    return static_cast<std::uint16_t>(sign | 0x7c00u | (mant != 0 ? 0x200u : 0u));
  }
  const std::int32_t e = exp - 127 + 15;
  if (e >= 0x1f) return static_cast<std::uint16_t>(sign | 0x7c00u);  // overflow -> inf
  mant |= 0x00800000u;                                               // implicit leading one
  if (e <= 0) {
    if (e < -10) return static_cast<std::uint16_t>(sign);  // underflow -> signed zero
    // Subnormal result: shift the 24-bit mantissa down with round-to-
    // nearest-even; a round-up into the smallest normal carries cleanly.
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - e);
    const std::uint32_t bias = (1u << (shift - 1)) - 1 + ((mant >> shift) & 1u);
    return static_cast<std::uint16_t>(sign | ((mant + bias) >> shift));
  }
  // Normal result: 23 -> 10 mantissa bits, round-to-nearest-even; mantissa
  // overflow carries into the exponent (up to and including inf) because the
  // fields are combined by addition.
  const std::uint32_t bias = 0xfffu + ((mant >> 13) & 1u);
  mant = (mant & 0x007fffffu) + bias;
  return static_cast<std::uint16_t>(
      sign | ((static_cast<std::uint32_t>(e) << 10) + (mant >> 13)));
}

float f16_to_f32(std::uint16_t h) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t mant = h & 0x3ffu;
  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // signed zero
    } else {
      // Normalize the subnormal: find the leading one.
      std::uint32_t shift = 0;
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        ++shift;
      }
      mant &= 0x3ffu;
      out = sign | ((113u - shift) << 23) | (mant << 13);
    }
  } else if (exp == 0x1f) {
    out = sign | 0x7f800000u | (mant << 13);  // inf / NaN
  } else {
    out = sign | ((exp + 112u) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

void serialize_quantized(const QTable& table, WireQuant quant, ByteWriter& out) {
  const std::size_t actions = table.action_count();
  out.u8(static_cast<std::uint8_t>(quant));
  out.u64(static_cast<std::uint64_t>(actions));
  out.f64(table.default_q());
  out.u64(table.total_visits());
  out.u64(static_cast<std::uint64_t>(table.state_count()));
  table.for_each_entry([&](const QTable::EntryView& e) {
    out.u64(e.key());
    out.u64(e.visits());
    out.u32(e.tried());
    switch (quant) {
      case WireQuant::kF32:
        for (std::size_t a = 0; a < actions; ++a) out.f32(e.q(a));
        break;
      case WireQuant::kF16:
        for (std::size_t a = 0; a < actions; ++a) out.u16(f32_to_f16(e.q(a)));
        break;
      case WireQuant::kQ8: {
        float lo = e.q(0);
        float hi = e.q(0);
        for (std::size_t a = 1; a < actions; ++a) {
          const float v = e.q(a);
          lo = v < lo ? v : lo;
          hi = v > hi ? v : hi;
        }
        out.f32(lo);
        out.f32(hi);
        const float scale = hi - lo;
        for (std::size_t a = 0; a < actions; ++a) {
          long code = 0;
          if (scale > 0.0f) {
            code = std::lround(static_cast<double>(e.q(a) - lo) * 255.0 /
                               static_cast<double>(scale));
            code = std::clamp(code, 0L, 255L);
          }
          out.u8(static_cast<std::uint8_t>(code));
        }
        break;
      }
    }
  });
}

QTable deserialize_quantized(ByteReader& in) {
  const std::uint8_t tag = in.u8();
  if (tag > static_cast<std::uint8_t>(WireQuant::kQ8)) {
    in.fail("corrupt quantized Q-table header: unknown quantization tag " + std::to_string(tag));
  }
  const WireQuant quant = static_cast<WireQuant>(tag);
  const std::uint64_t actions = in.u64();
  if (actions == 0 || actions > 4096) {
    in.fail("corrupt quantized Q-table header: implausible action count " +
            std::to_string(actions));
  }
  const double default_q = in.f64();
  const std::uint64_t total_visits = in.u64();
  const std::uint64_t states = in.u64();
  QTable t{static_cast<std::size_t>(actions), default_q};
  // Pre-size like QTable::deserialize (same untrusted-header cap) so the
  // fill never rehashes mid-stream.
  if (states > 0) {
    t.reserve_states(static_cast<std::size_t>(std::min<std::uint64_t>(states, 1u << 20)));
  }
  std::vector<float> row(static_cast<std::size_t>(actions));
  for (std::uint64_t i = 0; i < states; ++i) {
    const StateKey key = in.u64();
    if (t.contains(key)) in.fail("corrupt quantized Q-table payload: duplicate state key");
    const std::uint64_t visits = in.u64();
    const std::uint32_t tried = in.u32();
    switch (quant) {
      case WireQuant::kF32:
        for (float& q : row) q = in.f32();
        break;
      case WireQuant::kF16:
        for (float& q : row) q = f16_to_f32(in.u16());
        break;
      case WireQuant::kQ8: {
        const float lo = in.f32();
        const float hi = in.f32();
        const float scale = hi - lo;
        for (float& q : row) {
          q = lo + static_cast<float>(in.u8()) * scale / 255.0f;
        }
        break;
      }
    }
    t.install_entry(key, visits, tried, row);
  }
  // Match QTable::deserialize: the header's total is authoritative (it is
  // what serialize_quantized recorded), not the re-summed entry visits.
  t.total_visits_ = total_visits;
  return t;
}

}  // namespace nextgov::rl
