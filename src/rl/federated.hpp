// federated.hpp - cloud / federated training support (paper Section IV-C).
//
// Manufacturers ship many devices running the same apps; Section IV-C
// proposes aggregating their training in the cloud (federated learning) and
// pushing merged action-values back. Three pieces:
//
//   merge_q_tables  - visit-weighted federated averaging of per-device
//                     Q-tables (FedAvg applied to tabular action-values),
//                     plus a staleness-weighted variant for fleets whose
//                     shards upload at different cadences;
//   StalenessMergePolicy - how fast an upload's weight decays with its age;
//   CloudTimingModel- converts a measured host-side training wall time into
//                     the end-to-end "cloud training time" the device
//                     perceives (compute + the paper's measured ~4 s
//                     round-trip communication overhead).
//
// The fleet-scale trainer that drives these at scale (shards of simulated
// devices training concurrently with periodic merge rounds) lives one
// layer up in sim/fleet.hpp.
#pragma once

#include <cmath>
#include <span>

#include "rl/qtable.hpp"

namespace nextgov::rl {

/// Visit-weighted average of several Q-tables (all must share the action
/// count). States unknown to a device contribute weight 0 for that device.
/// With a single table this is the identity.
[[nodiscard]] QTable merge_q_tables(std::span<const QTable* const> tables);

/// Exponential staleness decay for asynchronous federated aggregation: an
/// upload that is `staleness` merge rounds old keeps
/// 2^(-staleness / half_life_rounds) of its visit weight. Staleness 0 is
/// full weight, so an all-fresh merge equals plain merge_q_tables().
struct StalenessMergePolicy {
  double half_life_rounds{2.0};

  [[nodiscard]] double weight(double staleness) const noexcept {
    return std::exp2(-staleness / half_life_rounds);
  }
};

/// Staleness-weighted variant: `staleness[i]` is how many merge rounds ago
/// table i was uploaded (>= 0). Each table's per-entry visit weights - and
/// the visit counts it contributes to the merged table - are scaled by
/// policy.weight(staleness[i]), so shards that phone home rarely pull the
/// aggregate less than fresh ones, but their exclusive states still
/// survive the merge (weight decays, never reaches zero).
[[nodiscard]] QTable merge_q_tables(std::span<const QTable* const> tables,
                                    std::span<const double> staleness,
                                    const StalenessMergePolicy& policy = {});

struct CloudTimingModel {
  double comm_overhead_s{4.0};  ///< to-and-fro device<->cloud (Section IV-C)

  /// End-to-end time the device waits for cloud-trained action values.
  [[nodiscard]] double total_time_s(double cloud_compute_s) const noexcept {
    return cloud_compute_s + comm_overhead_s;
  }
};

}  // namespace nextgov::rl
