// federated.hpp - cloud / federated training support (paper Section IV-C).
//
// Manufacturers ship many devices running the same apps; Section IV-C
// proposes aggregating their training in the cloud (federated learning) and
// pushing merged action-values back. Two pieces:
//
//   merge_q_tables  - visit-weighted federated averaging of per-device
//                     Q-tables (FedAvg applied to tabular action-values);
//   CloudTimingModel- converts a measured host-side training wall time into
//                     the end-to-end "cloud training time" the device
//                     perceives (compute + the paper's measured ~4 s
//                     round-trip communication overhead).
#pragma once

#include <span>

#include "rl/qtable.hpp"

namespace nextgov::rl {

/// Visit-weighted average of several Q-tables (all must share the action
/// count). States unknown to a device contribute weight 0 for that device.
/// With a single table this is the identity.
[[nodiscard]] QTable merge_q_tables(std::span<const QTable* const> tables);

struct CloudTimingModel {
  double comm_overhead_s{4.0};  ///< to-and-fro device<->cloud (Section IV-C)

  /// End-to-end time the device waits for cloud-trained action values.
  [[nodiscard]] double total_time_s(double cloud_compute_s) const noexcept {
    return cloud_compute_s + comm_overhead_s;
  }
};

}  // namespace nextgov::rl
