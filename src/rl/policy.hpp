// policy.hpp - action-selection policies.
//
// Training uses epsilon-greedy with linear decay (explore early, exploit
// late); deployment ("fully trained" in the paper's evaluation) is pure
// greedy over the persisted Q-table.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "rl/qtable.hpp"

namespace nextgov::rl {

struct EpsilonSchedule {
  double start{0.60};
  double end{0.05};
  std::uint64_t decay_steps{20000};

  /// Epsilon after `step` decisions (linear interpolation, clamped).
  [[nodiscard]] double at(std::uint64_t step) const noexcept;
};

class EpsilonGreedyPolicy {
 public:
  explicit EpsilonGreedyPolicy(EpsilonSchedule schedule);

  /// Picks an action for `state`; advances the decay step counter.
  [[nodiscard]] std::size_t select(const QTable& table, StateKey state, Rng& rng);

  /// Greedy selection without exploration or counter advance.
  [[nodiscard]] std::size_t select_greedy(const QTable& table, StateKey state) const noexcept {
    return table.best_action(state);
  }

  [[nodiscard]] double current_epsilon() const noexcept { return schedule_.at(step_); }
  [[nodiscard]] std::uint64_t steps_taken() const noexcept { return step_; }
  void reset() noexcept { step_ = 0; }
  /// Restores the decay position (checkpoint/restore): a resumed agent
  /// continues the schedule where it left off instead of re-exploring.
  void restore_steps(std::uint64_t steps) noexcept { step_ = steps; }

 private:
  EpsilonSchedule schedule_;
  std::uint64_t step_{0};
};

}  // namespace nextgov::rl
