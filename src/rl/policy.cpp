#include "rl/policy.hpp"

#include "common/error.hpp"

namespace nextgov::rl {

double EpsilonSchedule::at(std::uint64_t step) const noexcept {
  if (decay_steps == 0 || step >= decay_steps) return end;
  const double t = static_cast<double>(step) / static_cast<double>(decay_steps);
  return start + t * (end - start);
}

EpsilonGreedyPolicy::EpsilonGreedyPolicy(EpsilonSchedule schedule) : schedule_{schedule} {
  require(schedule.start >= 0.0 && schedule.start <= 1.0, "epsilon start in [0,1]");
  require(schedule.end >= 0.0 && schedule.end <= schedule.start,
          "epsilon end in [0, start]");
}

std::size_t EpsilonGreedyPolicy::select(const QTable& table, StateKey state, Rng& rng) {
  const double eps = schedule_.at(step_);
  ++step_;
  if (rng.bernoulli(eps)) {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(table.action_count()) - 1));
  }
  return table.best_action(state);
}

}  // namespace nextgov::rl
