// qtable_delta.hpp - sparse Q-table wire encodings for fleet sync.
//
// A device that re-uploads its whole Q-table every round resends mostly
// unchanged bytes: between two syncs a session touches only the states it
// actually visited, a tiny slice of the table it downloaded. QTableDelta
// encodes exactly that slice - the states whose visit count, tried mask or
// any Q bit pattern changed since the last accepted sync - against a base
// table both ends of the wire already share. Applying the delta to the base
// reconstructs the sender's table *bit-exactly*, so a delta upload feeds the
// staleness-weighted federated merge with byte-identical input and the whole
// fleet trajectory is unchanged (pinned by the delta-vs-full equivalence
// tests). The encoding travels inside the same CRC-guarded snapshot
// container as full uploads, so corruption detection is identical.
//
// WireQuant is the opt-in lossy sibling: full-table encodings whose value
// lanes are narrowed to IEEE half floats (f16) or per-state affine 8-bit
// codes (q8). Keys, visit counts and tried masks stay exact; only Q values
// lose precision, which the abl_quantization bench measures (size vs
// deployed reward/power) rather than bit-gates.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/serialize.hpp"
#include "rl/qtable.hpp"

namespace nextgov::rl {

/// Sparse update of one table against a shared base. `changes` carries the
/// *absolute* new tried mask and Q lanes (floats are not deltas - summing
/// rounded floats would drift) but a *signed* visit delta, because a
/// staleness-discounted merge can lower a state's visit count.
struct QTableDelta {
  std::size_t action_count{0};
  double default_q{0.0};
  /// Base-table guards: the receiver refuses to apply a delta to a base
  /// with a different shape than the one the sender encoded against.
  std::uint64_t base_states{0};
  std::uint64_t base_total_visits{0};

  struct Change {
    StateKey key{0};
    std::int64_t visit_delta{0};
    std::uint32_t tried{0};
    std::vector<float> q;  ///< absolute values, one per action
  };
  std::vector<Change> changes;  ///< sorted by key (canonical encoding order)

  /// Canonical binary encoding (sorted changes -> equal deltas give equal
  /// bytes). Same ByteWriter conventions as QTable::serialize.
  void serialize(ByteWriter& out) const;
  /// Throws SerializeError on truncation or structurally impossible values.
  [[nodiscard]] static QTableDelta deserialize(ByteReader& in);
};

/// Encodes `next` as a sparse delta against `base`. Returns nullopt when
/// `next` is not a superset evolution of `base` (mismatched action count or
/// default_q, or a base state missing from `next`) - callers fall back to a
/// full upload. An empty `changes` vector is a valid result (nothing moved).
[[nodiscard]] std::optional<QTableDelta> try_make_delta(const QTable& base, const QTable& next);

/// Reconstructs the sender's table: apply_delta(base, *try_make_delta(base,
/// next)) == next bit-exactly (operator== and serialized bytes). Throws
/// SerializeError when the delta's base guards do not match `base`.
[[nodiscard]] QTable apply_delta(const QTable& base, const QTableDelta& delta);

/// Value-lane precision of a quantized full-table wire encoding.
enum class WireQuant : std::uint8_t {
  kF32 = 0,  ///< exact: round-trips bit-identically (same lanes as serialize)
  kF16 = 1,  ///< IEEE half, round-to-nearest-even: 2 bytes/value
  kQ8 = 2,   ///< per-state affine min/max + 1-byte codes
};

/// f32 -> IEEE 754 half bits, round-to-nearest-even, with the usual
/// overflow-to-inf / subnormal / NaN handling.
[[nodiscard]] std::uint16_t f32_to_f16(float v) noexcept;
/// IEEE 754 half bits -> f32 (exact: every f16 value is representable).
[[nodiscard]] float f16_to_f32(std::uint16_t h) noexcept;

/// Full-table wire encoding with `quant` value lanes. Keys, visit counts,
/// tried masks and the header stay exact for every mode.
void serialize_quantized(const QTable& table, WireQuant quant, ByteWriter& out);
/// Decodes any serialize_quantized() stream (the mode tag travels in the
/// payload). kF32 round-trips bit-identically; kF16/kQ8 reconstruct the
/// dequantized values.
[[nodiscard]] QTable deserialize_quantized(ByteReader& in);

}  // namespace nextgov::rl
