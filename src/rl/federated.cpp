#include "rl/federated.hpp"

#include <cmath>
#include <unordered_map>

#include "common/error.hpp"

namespace nextgov::rl {

namespace {

/// Shared FedAvg core: visit-weighted averaging with an extra per-table
/// weight multiplier (1.0 for every table = the plain merge).
QTable merge_impl(std::span<const QTable* const> tables,
                  std::span<const double> table_weight) {
  require(!tables.empty(), "merge_q_tables needs at least one table");
  const std::size_t actions = tables.front()->action_count();
  for (const QTable* t : tables) {
    require(t != nullptr, "merge_q_tables: null table");
    require(t->action_count() == actions, "merge_q_tables: action count mismatch");
  }

  QTable merged{actions};
  // Accumulate visit-weighted sums per (state, action). Only actions a
  // device actually *tried* contribute - untried entries still carry the
  // optimistic initialization value and must not pollute the average.
  struct Acc {
    std::vector<double> weighted_q;
    std::vector<double> weight;
    double visits{0.0};
  };
  std::unordered_map<StateKey, Acc> acc;
  for (std::size_t ti = 0; ti < tables.size(); ++ti) {
    const QTable* t = tables[ti];
    const double tw = table_weight[ti];
    t->for_each_entry([&](const QTable::EntryView& e) {
      auto [it, inserted] = acc.try_emplace(e.key());
      if (inserted) {
        it->second.weighted_q.assign(actions, 0.0);
        it->second.weight.assign(actions, 0.0);
      }
      // Visit count + 1 so tables with zero recorded visits still count.
      const double w = tw * (static_cast<double>(e.visits()) + 1.0);
      for (std::size_t a = 0; a < actions && a < 32; ++a) {
        if ((e.tried() & (1u << a)) == 0) continue;
        it->second.weighted_q[a] += w * static_cast<double>(e.q(a));
        it->second.weight[a] += w;
      }
      it->second.visits += tw * static_cast<double>(e.visits());
    });
  }
  for (const auto& [key, a] : acc) {
    for (std::size_t action = 0; action < actions; ++action) {
      if (a.weight[action] > 0.0) {
        merged.set_q(key, action, a.weighted_q[action] / a.weight[action]);
      }
    }
    // Staleness-discounted visit mass rounds to the nearest count, so the
    // merged table's own weight in later (hierarchical) merges reflects
    // how much *fresh* experience actually backs it.
    merged.add_visits(key, static_cast<std::uint64_t>(std::llround(a.visits)));
  }
  return merged;
}

}  // namespace

QTable merge_q_tables(std::span<const QTable* const> tables) {
  const std::vector<double> unit(tables.size(), 1.0);
  return merge_impl(tables, unit);
}

QTable merge_q_tables(std::span<const QTable* const> tables, std::span<const double> staleness,
                      const StalenessMergePolicy& policy) {
  require(staleness.size() == tables.size(),
          "merge_q_tables: one staleness value per table required");
  require(policy.half_life_rounds > 0.0, "merge_q_tables: half-life must be positive");
  std::vector<double> weights;
  weights.reserve(tables.size());
  for (const double s : staleness) {
    require(s >= 0.0, "merge_q_tables: staleness must be non-negative");
    weights.push_back(policy.weight(s));
  }
  return merge_impl(tables, weights);
}

}  // namespace nextgov::rl
