#include "rl/federated.hpp"

#include "common/error.hpp"

namespace nextgov::rl {

QTable merge_q_tables(std::span<const QTable* const> tables) {
  require(!tables.empty(), "merge_q_tables needs at least one table");
  const std::size_t actions = tables.front()->action_count();
  for (const QTable* t : tables) {
    require(t != nullptr, "merge_q_tables: null table");
    require(t->action_count() == actions, "merge_q_tables: action count mismatch");
  }

  QTable merged{actions};
  // Accumulate visit-weighted sums per (state, action). Only actions a
  // device actually *tried* contribute - untried entries still carry the
  // optimistic initialization value and must not pollute the average.
  struct Acc {
    std::vector<double> weighted_q;
    std::vector<double> weight;
    std::uint64_t visits{0};
  };
  std::unordered_map<StateKey, Acc> acc;
  for (const QTable* t : tables) {
    for (const auto& [key, e] : t->entries()) {
      auto [it, inserted] = acc.try_emplace(key);
      if (inserted) {
        it->second.weighted_q.assign(actions, 0.0);
        it->second.weight.assign(actions, 0.0);
      }
      // Visit count + 1 so tables with zero recorded visits still count.
      const double w = static_cast<double>(e.visits) + 1.0;
      for (std::size_t a = 0; a < actions && a < 32; ++a) {
        if ((e.tried & (1u << a)) == 0) continue;
        it->second.weighted_q[a] += w * static_cast<double>(e.q[a]);
        it->second.weight[a] += w;
      }
      it->second.visits += e.visits;
    }
  }
  for (const auto& [key, a] : acc) {
    for (std::size_t action = 0; action < actions; ++action) {
      if (a.weight[action] > 0.0) {
        merged.set_q(key, action, a.weighted_q[action] / a.weight[action]);
      }
    }
    merged.add_visits(key, a.visits);
  }
  return merged;
}

}  // namespace nextgov::rl
