#include "rl/discretizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace nextgov::rl {

LinearBins::LinearBins(double lo, double hi, std::size_t bins) : lo_{lo}, hi_{hi}, bins_{bins} {
  require(bins > 0, "need at least one bin");
  require(hi > lo, "bin range must be non-empty");
}

std::size_t LinearBins::bin(double value) const noexcept {
  if (value <= lo_) return 0;
  if (value >= hi_) return bins_ - 1;
  const double t = (value - lo_) / (hi_ - lo_);
  const auto b = static_cast<std::size_t>(t * static_cast<double>(bins_));
  return std::min(b, bins_ - 1);
}

double LinearBins::center(std::size_t bin_index) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(bins_);
  const double idx = static_cast<double>(std::min(bin_index, bins_ - 1));
  return lo_ + (idx + 0.5) * width;
}

std::size_t MixedRadixPacker::add_field(std::size_t cardinality) {
  require(cardinality > 0, "field cardinality must be positive");
  const std::uint64_t card64 = cardinality;
  require(total_ <= std::numeric_limits<std::uint64_t>::max() / card64,
          "state space exceeds 64 bits");
  cards_.push_back(cardinality);
  total_ *= card64;
  return cards_.size() - 1;
}

StateKey MixedRadixPacker::encode(const std::vector<std::size_t>& fields) const {
  require(fields.size() == cards_.size(), "field count mismatch in encode");
  StateKey key = 0;
  for (std::size_t i = cards_.size(); i-- > 0;) {
    NEXTGOV_ASSERT(fields[i] < cards_[i]);
    key = key * cards_[i] + fields[i];
  }
  return key;
}

std::vector<std::size_t> MixedRadixPacker::decode(StateKey key) const {
  std::vector<std::size_t> fields(cards_.size(), 0);
  for (std::size_t i = 0; i < cards_.size(); ++i) {
    fields[i] = static_cast<std::size_t>(key % cards_[i]);
    key /= cards_[i];
  }
  return fields;
}

}  // namespace nextgov::rl
