// convergence.hpp - training-convergence detection.
//
// The paper reports per-app training periods ("the average training period
// lasts around 3 minutes 27 seconds", Section IV-B) without giving the stop
// rule; we declare training converged when the exponentially-weighted mean
// of |TD error| stays below a threshold for a full confirmation window and
// a minimum number of updates has elapsed. The same detector measures the
// online and cloud training times of Fig. 6.
#pragma once

#include <cstdint>

namespace nextgov::rl {

struct ConvergenceParams {
  double td_threshold{0.08};         ///< |TD| EMA level regarded as settled
  double ema_alpha{0.01};            ///< EMA smoothing for |TD|
  std::uint64_t min_updates{2000};   ///< never declare before this many updates
  std::uint64_t confirm_updates{300};///< EMA must stay below for this long
};

class ConvergenceDetector {
 public:
  explicit ConvergenceDetector(ConvergenceParams params = {});

  /// Feeds one TD error; returns true once converged (latching).
  bool add(double td_error) noexcept;

  [[nodiscard]] bool converged() const noexcept { return converged_; }
  [[nodiscard]] double td_ema() const noexcept { return ema_; }
  [[nodiscard]] std::uint64_t updates() const noexcept { return updates_; }

  void reset() noexcept;

  /// Full detector state for checkpoint/restore: a resumed training run
  /// must keep the EMA and confirmation-window position or it would
  /// re-detect convergence at a different time than the uninterrupted run.
  struct State {
    double ema{1.0};
    std::uint64_t updates{0};
    std::uint64_t below_count{0};
    bool converged{false};
  };
  [[nodiscard]] State state() const noexcept {
    return State{ema_, updates_, below_count_, converged_};
  }
  void restore(const State& state) noexcept {
    ema_ = state.ema;
    updates_ = state.updates;
    below_count_ = state.below_count;
    converged_ = state.converged;
  }

 private:
  ConvergenceParams params_;
  double ema_{1.0};
  std::uint64_t updates_{0};
  std::uint64_t below_count_{0};
  bool converged_{false};
};

}  // namespace nextgov::rl
