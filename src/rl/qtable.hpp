// qtable.hpp - sparse tabular action-value storage.
//
// The Next state space (3 frequency indices x 2 quantized FPS values x
// quantized power and two temperatures, Section IV-B) has ~10^8 nominal
// states but a session only visits a tiny manifold, so the table is a hash
// map keyed by a packed 64-bit state index. Per-state visit counts support
// the federated averaging of Section IV-C. "The Q-table (action-value)
// results are stored on the memory so that later when the application is
// executed again the agent is able to refer to the Q-table": save()/load()
// provide that per-app persistence.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/serialize.hpp"

namespace nextgov::rl {

using StateKey = std::uint64_t;

/// Hash for packed state keys. libstdc++'s std::hash<uint64_t> is the
/// identity, which clusters the packed bit-fields into few buckets; one
/// round of SplitMix64/MurmurHash3 finalization mixes every input bit into
/// every output bit at ~3 ns. Training hits the table twice per decision,
/// so this (plus an up-front reserve) is the QTable fast path.
struct StateKeyHash {
  [[nodiscard]] std::size_t operator()(StateKey k) const noexcept {
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ULL;
    k ^= k >> 33;
    return static_cast<std::size_t>(k);
  }
};

class QTable {
 public:
  /// `default_q` is the value new entries start from. A value above the
  /// maximum achievable return ("optimistic initialization") makes the
  /// learner systematically try every action in every visited state, which
  /// is what lets Next converge within the paper's minutes-scale training
  /// budget. Persistence stores it, so a checkpointed half-trained table
  /// resumes with the same optimism for states it has not visited yet.
  explicit QTable(std::size_t action_count, double default_q = 0.0);

  [[nodiscard]] std::size_t action_count() const noexcept { return actions_; }
  /// Number of distinct states ever touched.
  [[nodiscard]] std::size_t state_count() const noexcept { return table_.size(); }

  [[nodiscard]] double default_q() const noexcept { return default_q_; }

  /// Q(s, a); default_q for never-visited entries.
  [[nodiscard]] double q(StateKey s, std::size_t a) const noexcept;
  /// Mutable access; creates the state entry on demand.
  void set_q(StateKey s, std::size_t a, double value);

  /// max_a Q(s, a); default_q for unknown states.
  [[nodiscard]] double max_q(StateKey s) const noexcept;
  /// argmax_a Q(s, a); ties break to the lowest action index, unknown
  /// states return `fallback`.
  [[nodiscard]] std::size_t best_action(StateKey s, std::size_t fallback = 0) const noexcept;

  /// argmax over actions that have actually been updated at least once;
  /// untried actions still carry the optimistic default and must not win
  /// greedy *deployment* decisions. Returns `fallback` when the state is
  /// unknown or nothing was tried.
  [[nodiscard]] std::size_t best_tried_action(StateKey s,
                                              std::size_t fallback = 0) const noexcept;

  /// Visit bookkeeping (used for federated weighting and diagnostics).
  void record_visit(StateKey s);
  /// Bulk visit accounting (used by the federated merge).
  void add_visits(StateKey s, std::uint64_t n);
  [[nodiscard]] std::uint64_t visits(StateKey s) const noexcept;
  [[nodiscard]] std::uint64_t total_visits() const noexcept { return total_visits_; }

  void clear();

  /// Exact-state equality: action count, default_q, every entry's visit
  /// count, tried mask and action values (compared by IEEE bit pattern, so
  /// even a one-ulp drift fails) and the visit totals. This is the
  /// predicate behind the snapshot round-trip and crash/resume tests -
  /// "resumed training equals uninterrupted training" is checked against
  /// table identity, not a fingerprint.
  [[nodiscard]] bool operator==(const QTable& other) const noexcept;

  /// Canonical binary encoding into a snapshot payload: entries are
  /// emitted sorted by state key, so two tables that compare == always
  /// serialize to identical bytes regardless of insertion history.
  void serialize(ByteWriter& out) const;
  /// Decodes what serialize() wrote. Throws SerializeError on truncation
  /// or structurally impossible values.
  [[nodiscard]] static QTable deserialize(ByteReader& in);

  /// Binary persistence through the common snapshot container
  /// (common/serialize.hpp: magic, format version, CRC32 over the
  /// payload). Throws IoError / SerializeError with a descriptive message
  /// on unreadable, corrupt, truncated or version-incompatible files.
  void save(const std::string& path) const;
  [[nodiscard]] static QTable load(const std::string& path);

  /// Iteration support for merging/inspection.
  struct Entry {
    std::vector<float> q;
    std::uint64_t visits{0};
    std::uint32_t tried{0};  ///< bitmask: action a was updated at least once
  };
  using Map = std::unordered_map<StateKey, Entry, StateKeyHash>;
  [[nodiscard]] const Map& entries() const noexcept { return table_; }

 private:
  Entry& entry(StateKey s);

  std::size_t actions_;
  double default_q_{0.0};
  Map table_;
  std::uint64_t total_visits_{0};
};

/// Batched greedy lookup across a group of lanes: out[i] =
/// tables[i]->best_action(states[i], fallback). The deployed decision sweep
/// of core::NextAgent::control_group resolves a whole batch-resident group
/// through one call; per lane it is the scalar call, so the batch path is
/// bit-identical by construction. All spans must have equal length.
void best_actions(std::span<const QTable* const> tables, std::span<const StateKey> states,
                  std::size_t fallback, std::span<std::size_t> out) noexcept;

}  // namespace nextgov::rl
