// qtable.hpp - sparse tabular action-value storage.
//
// The Next state space (3 frequency indices x 2 quantized FPS values x
// quantized power and two temperatures, Section IV-B) has ~10^8 nominal
// states but a session only visits a tiny manifold, so the table is a flat
// open-addressing hash table keyed by a packed 64-bit state index. Per-state
// visit counts support the federated averaging of Section IV-C. "The Q-table
// (action-value) results are stored on the memory so that later when the
// application is executed again the agent is able to refer to the Q-table":
// save()/load() provide that per-app persistence.
//
// Storage layout: one contiguous key array plus structure-of-arrays value
// lanes (q[action][slot], visits[slot], tried[slot]) with linear probing and
// power-of-two growth. There is no per-entry allocation: a lookup is one
// probe over the key array plus a strided lane load, instead of the
// node-pointer chase + per-entry vector<float> indirection of the previous
// unordered_map backend. The table never erases individual states
// (clear() wipes everything), so probe chains are tombstone-free and lookups
// terminate at the first empty slot.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/serialize.hpp"

namespace nextgov::rl {

using StateKey = std::uint64_t;

/// Hash for packed state keys. libstdc++'s std::hash<uint64_t> is the
/// identity, which clusters the packed bit-fields into few buckets; one
/// round of SplitMix64/MurmurHash3 finalization mixes every input bit into
/// every output bit at ~3 ns. Training hits the table twice per decision,
/// so this (plus the flat probe sequence it seeds) is the QTable fast path.
struct StateKeyHash {
  [[nodiscard]] std::size_t operator()(StateKey k) const noexcept {
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    k *= 0xc4ceb9fe1a85ec53ULL;
    k ^= k >> 33;
    return static_cast<std::size_t>(k);
  }
};

class QTable {
 public:
  /// `default_q` is the value new entries start from. A value above the
  /// maximum achievable return ("optimistic initialization") makes the
  /// learner systematically try every action in every visited state, which
  /// is what lets Next converge within the paper's minutes-scale training
  /// budget. Persistence stores it, so a checkpointed half-trained table
  /// resumes with the same optimism for states it has not visited yet.
  explicit QTable(std::size_t action_count, double default_q = 0.0);

  [[nodiscard]] std::size_t action_count() const noexcept { return actions_; }
  /// Number of distinct states ever touched.
  [[nodiscard]] std::size_t state_count() const noexcept { return size_; }

  [[nodiscard]] double default_q() const noexcept { return default_q_; }

  /// Q(s, a); default_q for never-visited entries.
  [[nodiscard]] double q(StateKey s, std::size_t a) const noexcept;
  /// Mutable access; creates the state entry on demand.
  void set_q(StateKey s, std::size_t a, double value);

  /// max_a Q(s, a); default_q for unknown states.
  [[nodiscard]] double max_q(StateKey s) const noexcept;
  /// argmax_a Q(s, a); ties break to the lowest action index, unknown
  /// states return `fallback`.
  [[nodiscard]] std::size_t best_action(StateKey s, std::size_t fallback = 0) const noexcept;

  /// argmax over actions that have actually been updated at least once;
  /// untried actions still carry the optimistic default and must not win
  /// greedy *deployment* decisions. Returns `fallback` when the state is
  /// unknown or nothing was tried.
  [[nodiscard]] std::size_t best_tried_action(StateKey s,
                                              std::size_t fallback = 0) const noexcept;

  /// Visit bookkeeping (used for federated weighting and diagnostics).
  void record_visit(StateKey s);
  /// Bulk visit accounting (used by the federated merge).
  void add_visits(StateKey s, std::uint64_t n);
  [[nodiscard]] std::uint64_t visits(StateKey s) const noexcept;
  [[nodiscard]] std::uint64_t total_visits() const noexcept { return total_visits_; }

  /// Whether the state has a stored entry.
  [[nodiscard]] bool contains(StateKey s) const noexcept;
  /// Bitmask of actions updated at least once; 0 for unknown states.
  [[nodiscard]] std::uint32_t tried_mask(StateKey s) const noexcept;

  /// Raw entry write used by the delta/wire codecs (rl/qtable_delta.hpp):
  /// installs the exact visit count, tried mask and per-action values for a
  /// state - no set_q bookkeeping, so untried lanes stay untried.
  /// total_visits is adjusted by the visit-count difference. `q` must hold
  /// action_count() values.
  void install_entry(StateKey s, std::uint64_t visits, std::uint32_t tried,
                     std::span<const float> q);

  /// Resident footprint of the table in bytes (object header + all slot
  /// arrays, occupied or not). This is the number the fleet memory budget
  /// tracks per device; serialized snapshots are sparser (occupied states
  /// only, see serialize()).
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  void clear();

  /// Exact-state equality: action count, default_q, every entry's visit
  /// count, tried mask and action values (compared by IEEE bit pattern, so
  /// even a one-ulp drift fails) and the visit totals. This is the
  /// predicate behind the snapshot round-trip and crash/resume tests -
  /// "resumed training equals uninterrupted training" is checked against
  /// table identity, not a fingerprint.
  [[nodiscard]] bool operator==(const QTable& other) const noexcept;

  /// Canonical binary encoding into a snapshot payload: entries are
  /// emitted sorted by state key, so two tables that compare == always
  /// serialize to identical bytes regardless of insertion history.
  void serialize(ByteWriter& out) const;
  /// Decodes what serialize() wrote. Throws SerializeError on truncation
  /// or structurally impossible values.
  [[nodiscard]] static QTable deserialize(ByteReader& in);

  /// Binary persistence through the common snapshot container
  /// (common/serialize.hpp: magic, format version, CRC32 over the
  /// payload). Throws IoError / SerializeError with a descriptive message
  /// on unreadable, corrupt, truncated or version-incompatible files.
  void save(const std::string& path) const;
  [[nodiscard]] static QTable load(const std::string& path);

  /// Read-only view of one stored state for iteration. Action values are
  /// exposed through q(a) rather than a span so the view stays valid even
  /// if the backing layout changes stride again.
  class EntryView {
   public:
    [[nodiscard]] StateKey key() const noexcept { return key_; }
    [[nodiscard]] std::uint64_t visits() const noexcept { return visits_; }
    [[nodiscard]] std::uint32_t tried() const noexcept { return tried_; }
    [[nodiscard]] float q(std::size_t a) const noexcept { return lane_[a * stride_]; }

   private:
    friend class QTable;
    EntryView(StateKey key, std::uint64_t visits, std::uint32_t tried, const float* lane,
              std::size_t stride) noexcept
        : key_{key}, visits_{visits}, tried_{tried}, lane_{lane}, stride_{stride} {}
    StateKey key_;
    std::uint64_t visits_;
    std::uint32_t tried_;
    const float* lane_;
    std::size_t stride_;
  };

  /// Order-stable iteration for merging/inspection: entries are visited
  /// sorted by state key, never in probe/hash order, so callers cannot
  /// accidentally depend on insertion history (the bug class the old
  /// `entries()` unordered_map accessor made possible).
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const std::uint32_t slot : sorted_slots()) {
      fn(EntryView{keys_[slot], visits_[slot], tried_[slot], q_.data() + slot * actions_, 1});
    }
  }

  /// Point lookup returning the stored entry's view, or nullopt for unknown
  /// states. Unlike q()/visits(), the view reads the float lanes exactly
  /// (no double round trip), which is what the delta encoder compares.
  [[nodiscard]] std::optional<EntryView> find_entry(StateKey s) const noexcept;

 private:
  // The quantized wire decoder (rl/qtable_delta.hpp) restores total_visits
  // from its header instead of re-summing entries, matching deserialize().
  friend QTable deserialize_quantized(ByteReader& in);

  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  [[nodiscard]] std::size_t initial_capacity() const noexcept;
  /// Occupied slot holding `s`, or kNoSlot.
  [[nodiscard]] std::size_t find_slot(StateKey s) const noexcept;
  /// Slot holding `s`, inserting (and growing) if absent.
  std::size_t insert_slot(StateKey s);
  /// Ensure capacity for `n` states without exceeding the max load factor.
  void reserve_states(std::size_t n);
  void grow();
  [[nodiscard]] std::vector<std::uint32_t> sorted_slots() const;

  std::size_t actions_;
  double default_q_{0.0};
  std::uint64_t total_visits_{0};
  std::size_t size_{0};
  std::size_t capacity_{0};  ///< power of two; 0 until the first insert
  std::vector<StateKey> keys_;
  std::vector<std::uint8_t> used_;
  /// Slot-major: q_[slot * actions_ + a]. Every consumer - the decision
  /// scans (max_q/best_action), the learning update, merge, serialize -
  /// reads one state's whole action row, so keeping the row contiguous
  /// makes each of those a single cache line instead of `actions_` strided
  /// misses (measured in bench/perf_qtable.cpp).
  std::vector<float> q_;
  std::vector<std::uint64_t> visits_;
  std::vector<std::uint32_t> tried_;
};

/// Batched greedy lookup across a group of lanes: out[i] =
/// tables[i]->best_action(states[i], fallback). The deployed decision sweep
/// of core::NextAgent::control_group resolves a whole batch-resident group
/// through one call; per lane it is the scalar call, so the batch path is
/// bit-identical by construction. All spans must have equal length.
void best_actions(std::span<const QTable* const> tables, std::span<const StateKey> states,
                  std::size_t fallback, std::span<std::size_t> out) noexcept;

}  // namespace nextgov::rl
