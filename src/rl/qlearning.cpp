#include "rl/qlearning.hpp"

#include "common/error.hpp"

namespace nextgov::rl {

QLearning::QLearning(QLearningParams params) : params_{params} {
  require(params.alpha > 0.0 && params.alpha <= 1.0, "alpha in (0,1]");
  require(params.gamma >= 0.0 && params.gamma < 1.0, "gamma in [0,1)");
}

double QLearning::effective_alpha(const QTable& table, StateKey s) const noexcept {
  if (params_.visit_decay <= 0.0) return params_.alpha;
  const double visits = static_cast<double>(table.visits(s));
  const double a = params_.alpha / (1.0 + visits * params_.visit_decay);
  return a < params_.alpha_min ? params_.alpha_min : a;
}

double QLearning::update(QTable& table, StateKey s, std::size_t a, double reward,
                         StateKey s_next) {
  const double old_q = table.q(s, a);
  const double td = reward + params_.gamma * table.max_q(s_next) - old_q;
  table.set_q(s, a, old_q + effective_alpha(table, s) * td);
  table.record_visit(s);
  return td;
}

double QLearning::update_terminal(QTable& table, StateKey s, std::size_t a, double reward) {
  const double old_q = table.q(s, a);
  const double td = reward - old_q;
  table.set_q(s, a, old_q + effective_alpha(table, s) * td);
  table.record_visit(s);
  return td;
}

}  // namespace nextgov::rl
