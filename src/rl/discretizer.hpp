// discretizer.hpp - state quantization and packing.
//
// Section IV-B: "quantizing the frame rate would be desirable for improved
// training time" - the number of FPS quantization levels is the central
// training-time knob (Fig. 6; 30 levels were found best). LinearBins
// quantizes a continuous signal into equal-width bins; MixedRadixPacker
// packs several bounded fields into one 64-bit StateKey without collisions.
#pragma once

#include <cstdint>
#include <vector>

#include "rl/qtable.hpp"

namespace nextgov::rl {

/// Equal-width binning of [lo, hi] into `bins` levels; values outside the
/// range clamp to the edge bins.
class LinearBins {
 public:
  LinearBins(double lo, double hi, std::size_t bins);

  [[nodiscard]] std::size_t bin(double value) const noexcept;
  /// Representative (bin center) value for a bin index.
  [[nodiscard]] double center(std::size_t bin_index) const noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return bins_; }

 private:
  double lo_;
  double hi_;
  std::size_t bins_;
};

/// Packs fields f0..fn-1 with cardinalities c0..cn-1 into
/// key = f0 + c0*(f1 + c1*(f2 + ...)). Construction fails if the product of
/// cardinalities overflows 64 bits.
class MixedRadixPacker {
 public:
  /// Declares the next field; returns its position.
  std::size_t add_field(std::size_t cardinality);

  [[nodiscard]] std::size_t field_count() const noexcept { return cards_.size(); }
  [[nodiscard]] std::uint64_t state_space_size() const noexcept { return total_; }

  /// Encodes one value per declared field (each < its cardinality).
  [[nodiscard]] StateKey encode(const std::vector<std::size_t>& fields) const;
  /// Decodes back into field values (inverse of encode).
  [[nodiscard]] std::vector<std::size_t> decode(StateKey key) const;

 private:
  std::vector<std::size_t> cards_;
  std::uint64_t total_{1};
};

}  // namespace nextgov::rl
