#include "rl/convergence.hpp"

#include <cmath>

namespace nextgov::rl {

ConvergenceDetector::ConvergenceDetector(ConvergenceParams params) : params_{params} {}

void ConvergenceDetector::reset() noexcept {
  ema_ = 1.0;
  updates_ = 0;
  below_count_ = 0;
  converged_ = false;
}

bool ConvergenceDetector::add(double td_error) noexcept {
  if (converged_) return true;
  ++updates_;
  ema_ += params_.ema_alpha * (std::fabs(td_error) - ema_);
  if (updates_ >= params_.min_updates && ema_ < params_.td_threshold) {
    if (++below_count_ >= params_.confirm_updates) converged_ = true;
  } else {
    below_count_ = 0;
  }
  return converged_;
}

}  // namespace nextgov::rl
