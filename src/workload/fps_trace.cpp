#include "workload/fps_trace.hpp"

#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"

namespace nextgov::workload {

void FpsTrace::save_csv(const std::string& path) const {
  CsvWriter csv{path, {"time_s", "fps"}};
  for (const auto& s : samples_) csv.row({s.time.seconds(), s.fps});
}

FpsTrace FpsTrace::load_csv(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw IoError("cannot open FPS trace: " + path);
  FpsTrace trace;
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) continue;
    std::istringstream row{line};
    std::string t_str;
    std::string fps_str;
    if (!std::getline(row, t_str, ',') || !std::getline(row, fps_str, ',')) {
      throw IoError("malformed FPS trace row: " + line);
    }
    trace.add(SimTime::from_seconds(std::stod(t_str)), std::stod(fps_str));
  }
  return trace;
}

}  // namespace nextgov::workload
