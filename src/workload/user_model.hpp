// user_model.hpp - stochastic user-engagement process.
//
// The paper motivates Next with measured usage behaviour: users pick up the
// phone ~52 times/day, 70% of sessions are < 2 min, and *within* a session
// attention alternates between actively interacting (scrolling, tapping)
// and passively looking/reading (Section I, refs [3][4]). We model the
// within-session part as a two-state renewal process:
//
//   ENGAGED  --(lognormal dwell)-->  PASSIVE  --(lognormal dwell)--> ...
//
// Interactive app phases (scrolling, seeking, swiping) are only entered
// while ENGAGED; passive phases (reading, listening, watching) dominate
// otherwise. Parameters differ per app: games hold engagement almost
// continuously, music apps almost never.
#pragma once

#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace nextgov::workload {

struct UserModelParams {
  double engaged_mean_s{6.0};   ///< mean dwell of an engagement burst
  double engaged_sigma{0.6};    ///< lognormal shape of engagement dwell
  double passive_mean_s{7.0};   ///< mean dwell of a passive interval
  double passive_sigma{0.7};    ///< lognormal shape of passive dwell
  bool start_engaged{true};     ///< sessions usually start with interaction
};

class UserModel {
 public:
  UserModel(UserModelParams params, Rng rng);

  /// Advances the engagement process to `now`.
  void update(SimTime now);

  [[nodiscard]] bool engaged() const noexcept { return engaged_; }

  /// Fraction of elapsed time spent engaged (diagnostics).
  [[nodiscard]] double engaged_fraction() const noexcept;

 private:
  void schedule_next(SimTime from);

  UserModelParams params_;
  Rng rng_;
  bool engaged_;
  SimTime next_switch_{SimTime::zero()};
  bool scheduled_{false};
  double engaged_time_s_{0.0};
  double total_time_s_{0.0};
  SimTime last_update_{SimTime::zero()};
};

}  // namespace nextgov::workload
