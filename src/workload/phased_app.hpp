// phased_app.hpp - data-driven application behaviour model.
//
// Every workload in the evaluation (home screen, Facebook, Spotify, Chrome,
// YouTube, Lineage 2 Revolution, PubG) is an instance of PhasedApp: a
// stochastic state machine over *phases*. A phase bundles
//   - the frame demand (none / VSync-limited continuous / fixed cadence),
//   - the per-frame CPU and GPU cost distributions (lognormal),
//   - the background (non-frame) load, and
//   - a dwell-time distribution.
// Phase selection is weighted and gated on the UserModel's engagement state,
// which is how "user interaction behaviour" shapes the FPS pattern that the
// Next agent's frame window observes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/app.hpp"
#include "workload/user_model.hpp"

namespace nextgov::workload {

/// How a phase produces frames.
enum class FrameDemand {
  kNone,        ///< static screen: no new frames (FPS decays to 0)
  kContinuous,  ///< render as fast as the pipeline allows (VSync-capped)
  kCadence,     ///< fixed rate (video playback, spinners, progress ticks)
};

/// Lognormal work distribution with mean `mean_cycles` and log-sigma
/// `sigma` (sigma = 0 degenerates to the constant mean).
struct WorkDist {
  double mean_cycles{1e6};
  double sigma{0.0};
};

struct PhaseSpec {
  std::string name;
  FrameDemand demand{FrameDemand::kNone};
  double cadence_fps{0.0};  ///< for kCadence: frames per second requested
  WorkDist cpu;             ///< big-core cycles per frame
  WorkDist gpu;             ///< per-GPU-core cycles per frame
  BackgroundLoad background;
  double mean_duration_s{5.0};
  double min_duration_s{0.5};
  double duration_sigma{0.5};   ///< lognormal shape of the dwell time
  bool needs_engagement{false}; ///< phase only entered while user is engaged
  double weight{1.0};           ///< selection weight among eligible phases
  bool initial_only{false};     ///< e.g. splash/loading: entered once at t=0
};

struct AppSpec {
  std::string name;
  std::vector<PhaseSpec> phases;
  UserModelParams user;
  /// Index of the phase entered at t=0 (typically a splash/loading phase).
  std::size_t initial_phase{0};
};

class PhasedApp final : public App {
 public:
  PhasedApp(AppSpec spec, Rng rng);

  void update(SimTime now, SimTime dt) override;
  [[nodiscard]] bool wants_frame(SimTime now) override;
  [[nodiscard]] render::FrameJob begin_frame(SimTime now) override;
  [[nodiscard]] BackgroundLoad background() const override;
  [[nodiscard]] std::string_view name() const override { return spec_.name; }
  [[nodiscard]] std::string_view phase_name() const override;

  [[nodiscard]] const AppSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t phase_index() const noexcept { return phase_; }
  [[nodiscard]] const UserModel& user() const noexcept { return user_; }

 private:
  void enter_phase(std::size_t index, SimTime now);
  [[nodiscard]] std::size_t pick_next_phase();
  [[nodiscard]] double sample_work(const WorkDist& dist);

  AppSpec spec_;
  Rng rng_;        ///< per-frame work sampling (consumption depends on FPS)
  Rng phase_rng_;  ///< phase picking + dwell times: independent of how many
                   ///< frames were rendered, so the *session structure* is
                   ///< identical across governors (fair comparisons)
  UserModel user_;
  std::size_t phase_{0};
  SimTime phase_end_{SimTime::zero()};
  double cadence_credit_{0.0};
  bool started_{false};
};

}  // namespace nextgov::workload
