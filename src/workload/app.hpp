// app.hpp - the application abstraction the engine executes.
//
// An App is a render::FrameSource (it submits frame jobs) plus a background
// load and an internal behaviour clock (phase machine, user engagement).
// All randomness comes from the Rng handed in at construction so sessions
// are reproducible.
#pragma once

#include <string_view>

#include "common/sim_time.hpp"
#include "render/frame.hpp"
#include "workload/background.hpp"

namespace nextgov::workload {

class App : public render::FrameSource {
 public:
  /// Advances the app's internal behaviour (phase transitions, engagement,
  /// frame cadence credit) from `now` over `dt`.
  virtual void update(SimTime now, SimTime dt) = 0;

  /// Current non-frame load demand.
  [[nodiscard]] virtual BackgroundLoad background() const = 0;

  /// Stable app name ("facebook", "lineage", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Human-readable current phase (diagnostics / recorder annotation).
  [[nodiscard]] virtual std::string_view phase_name() const = 0;
};

}  // namespace nextgov::workload
