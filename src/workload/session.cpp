#include "workload/session.hpp"

#include "common/error.hpp"

namespace nextgov::workload {

SessionApp::SessionApp(std::vector<SessionSegment> segments, std::uint64_t seed)
    : segments_{std::move(segments)}, segment_end_{SimTime::zero()} {
  require(!segments_.empty(), "session needs at least one segment");
  SplitMix64 seeder{seed};
  apps_.reserve(segments_.size());
  for (const auto& seg : segments_) {
    require(seg.duration.us() > 0, "session segment duration must be positive");
    apps_.push_back(make_app(seg.app, seeder.next()));
  }
  segment_end_ = segments_.front().duration;
}

SessionApp::SessionApp(std::vector<SessionSegment> segments,
                       std::vector<std::unique_ptr<PhasedApp>> apps)
    : segments_{std::move(segments)}, apps_{std::move(apps)}, segment_end_{SimTime::zero()} {
  require(!segments_.empty(), "session needs at least one segment");
  require(segments_.size() == apps_.size(), "session needs one app per segment");
  for (const auto& seg : segments_) {
    require(seg.duration.us() > 0, "session segment duration must be positive");
  }
  for (const auto& app : apps_) require(app != nullptr, "session segment app must not be null");
  segment_end_ = segments_.front().duration;
}

void SessionApp::maybe_advance(SimTime now) {
  while (current_ + 1 < segments_.size() && now >= segment_end_) {
    ++current_;
    segment_end_ += segments_[current_].duration;
  }
}

void SessionApp::update(SimTime now, SimTime dt) {
  maybe_advance(now);
  apps_[current_]->update(now, dt);
}

bool SessionApp::wants_frame(SimTime now) { return apps_[current_]->wants_frame(now); }

render::FrameJob SessionApp::begin_frame(SimTime now) {
  return apps_[current_]->begin_frame(now);
}

BackgroundLoad SessionApp::background() const { return apps_[current_]->background(); }

std::string_view SessionApp::phase_name() const { return apps_[current_]->phase_name(); }

std::string_view SessionApp::current_app_name() const { return apps_[current_]->name(); }

SimTime SessionApp::total_duration() const noexcept {
  SimTime total = SimTime::zero();
  for (const auto& seg : segments_) total += seg.duration;
  return total;
}

std::unique_ptr<SessionApp> make_fig1_session(std::uint64_t seed) {
  std::vector<SessionSegment> segs{
      {AppId::kHome, SimTime::from_seconds(30.0)},
      {AppId::kFacebook, SimTime::from_seconds(120.0)},
      {AppId::kSpotify, SimTime::from_seconds(130.0)},
  };
  return std::make_unique<SessionApp>(std::move(segs), seed);
}

}  // namespace nextgov::workload
