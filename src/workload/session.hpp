// session.hpp - multi-app usage sessions.
//
// The paper's Figs. 1 and 3 use a single session that walks through the
// home screen, then Facebook, then Spotify. SessionApp chains apps with
// fixed segment durations; switching to the next app re-enters that app's
// initial (splash/loading) phase, modelling the launch cost the paper
// discusses (FPS collapses while CPU load peaks).
#pragma once

#include <memory>
#include <vector>

#include "workload/app.hpp"
#include "workload/apps.hpp"

namespace nextgov::workload {

struct SessionSegment {
  AppId app;
  SimTime duration;
};

class SessionApp final : public App {
 public:
  SessionApp(std::vector<SessionSegment> segments, std::uint64_t seed);

  /// Builds a session from pre-constructed apps, one per segment, in
  /// segment order. For callers that customize the per-app AppSpec before
  /// instantiation (the scenario library's user-model overrides); the plain
  /// constructor covers catalog apps.
  SessionApp(std::vector<SessionSegment> segments,
             std::vector<std::unique_ptr<PhasedApp>> apps);

  void update(SimTime now, SimTime dt) override;
  [[nodiscard]] bool wants_frame(SimTime now) override;
  [[nodiscard]] render::FrameJob begin_frame(SimTime now) override;
  [[nodiscard]] BackgroundLoad background() const override;
  [[nodiscard]] std::string_view name() const override { return "session"; }
  [[nodiscard]] std::string_view phase_name() const override;

  /// Name of the app active at the current time (for trace annotation).
  [[nodiscard]] std::string_view current_app_name() const;
  [[nodiscard]] SimTime total_duration() const noexcept;

 private:
  void maybe_advance(SimTime now);

  std::vector<SessionSegment> segments_;
  std::vector<std::unique_ptr<PhasedApp>> apps_;
  std::size_t current_{0};
  SimTime segment_end_;
};

/// The Fig. 1 / Fig. 3 session: home (30 s) -> Facebook (120 s) ->
/// Spotify (130 s), ~280 s total like the paper's time axis.
[[nodiscard]] std::unique_ptr<SessionApp> make_fig1_session(std::uint64_t seed);

}  // namespace nextgov::workload
