#include "workload/user_model.hpp"

#include <algorithm>
#include <cmath>

namespace nextgov::workload {

UserModel::UserModel(UserModelParams params, Rng rng)
    : params_{params}, rng_{rng}, engaged_{params.start_engaged} {}

void UserModel::schedule_next(SimTime from) {
  const double mean = engaged_ ? params_.engaged_mean_s : params_.passive_mean_s;
  const double sigma = engaged_ ? params_.engaged_sigma : params_.passive_sigma;
  // Lognormal with the requested arithmetic mean: mu = ln(mean) - sigma^2/2.
  const double dwell = std::max(0.3, rng_.lognormal(std::log(mean) - sigma * sigma / 2.0, sigma));
  next_switch_ = from + SimTime::from_seconds(dwell);
  scheduled_ = true;
}

void UserModel::update(SimTime now) {
  if (!scheduled_) schedule_next(now);
  const double elapsed = (now - last_update_).seconds();
  if (elapsed > 0.0) {
    total_time_s_ += elapsed;
    if (engaged_) engaged_time_s_ += elapsed;
    last_update_ = now;
  }
  while (now >= next_switch_) {
    engaged_ = !engaged_;
    schedule_next(next_switch_);
  }
}

double UserModel::engaged_fraction() const noexcept {
  return total_time_s_ > 0.0 ? engaged_time_s_ / total_time_s_ : 0.0;
}

}  // namespace nextgov::workload
