// fps_trace.hpp - recorded frame-rate sample traces.
//
// The frame-window ablation and the offline/cloud trainer both consume the
// *same interaction stream* a live session produced. An FpsTrace is the
// sequence of 25 ms frame-rate samples (exactly what the Next agent's frame
// window sees); it can be saved/loaded as CSV so experiments are replayable
// without re-simulating.
#pragma once

#include <string>
#include <vector>

#include "common/sim_time.hpp"

namespace nextgov::workload {

struct FpsSample {
  SimTime time;
  double fps;
};

class FpsTrace {
 public:
  FpsTrace() = default;

  void add(SimTime t, double fps) { samples_.push_back({t, fps}); }
  [[nodiscard]] const std::vector<FpsSample>& samples() const noexcept { return samples_; }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Writes "time_s,fps" rows. Throws IoError on failure.
  void save_csv(const std::string& path) const;
  /// Parses a file produced by save_csv. Throws IoError on failure.
  [[nodiscard]] static FpsTrace load_csv(const std::string& path);

 private:
  std::vector<FpsSample> samples_;
};

}  // namespace nextgov::workload
