#include "workload/apps.hpp"

#include <array>

#include "common/error.hpp"

namespace nextgov::workload {

namespace {

// Work units are cycles: a 6e6-cycle frame takes 2.2 ms on a big core at
// 2.7 GHz and 6.0 ms at 1.0 GHz; GPU cycles are per-core at the GPU clock
// (5e6 cycles -> 8.7 ms at 572 MHz). The sustainable FPS is
// min(60, 1/max(t_cpu, t_gpu)), so these numbers pick where each app's
// frequency/QoS trade-off bites.

PhaseSpec none_phase(std::string name, BackgroundLoad bg, double mean_s, double weight,
                     bool needs_engagement = false) {
  PhaseSpec p;
  p.name = std::move(name);
  p.demand = FrameDemand::kNone;
  p.cpu = {1e5, 0.0};
  p.gpu = {1e5, 0.0};
  p.background = bg;
  p.mean_duration_s = mean_s;
  p.weight = weight;
  p.needs_engagement = needs_engagement;
  return p;
}

PhaseSpec continuous_phase(std::string name, WorkDist cpu, WorkDist gpu, BackgroundLoad bg,
                           double mean_s, double weight, bool needs_engagement) {
  PhaseSpec p;
  p.name = std::move(name);
  p.demand = FrameDemand::kContinuous;
  p.cpu = cpu;
  p.gpu = gpu;
  p.background = bg;
  p.mean_duration_s = mean_s;
  p.weight = weight;
  p.needs_engagement = needs_engagement;
  return p;
}

PhaseSpec cadence_phase(std::string name, double fps, WorkDist cpu, WorkDist gpu,
                        BackgroundLoad bg, double mean_s, double weight,
                        bool needs_engagement = false) {
  PhaseSpec p;
  p.name = std::move(name);
  p.demand = FrameDemand::kCadence;
  p.cadence_fps = fps;
  p.cpu = cpu;
  p.gpu = gpu;
  p.background = bg;
  p.mean_duration_s = mean_s;
  p.weight = weight;
  p.needs_engagement = needs_engagement;
  return p;
}

}  // namespace

AppSpec home_spec() {
  AppSpec s;
  s.name = "home";
  s.user = {/*engaged_mean_s=*/5.0, 0.6, /*passive_mean_s=*/4.0, 0.6, true};
  s.phases.push_back(
      none_phase("idle_static", {.big_avg = 0.03, .big_hot = 0.06, .little_avg = 0.06,
                                 .little_hot = 0.12, .gpu_avg = 0.0},
                 3.0, 2.0));
  s.phases.push_back(continuous_phase("swipe_pages", {3.5e6, 0.30}, {2.0e6, 0.25},
                                      {.big_avg = 0.10, .big_hot = 0.2, .little_avg = 0.15,
                                       .little_hot = 0.3, .gpu_avg = 0.02},
                                      1.5, 2.0, /*needs_engagement=*/true));
  s.phases.push_back(continuous_phase("open_anim", {6.0e6, 0.25}, {3.0e6, 0.25},
                                      {.big_avg = 0.30, .big_hot = 0.6, .little_avg = 0.25,
                                       .little_hot = 0.5, .gpu_avg = 0.05},
                                      0.9, 1.0, /*needs_engagement=*/true));
  return s;
}

AppSpec facebook_spec() {
  AppSpec s;
  s.name = "facebook";
  s.user = {/*engaged_mean_s=*/8.0, 0.6, /*passive_mean_s=*/7.0, 0.7, true};
  PhaseSpec splash = cadence_phase("splash", 8.0, {4.0e6, 0.2}, {1.5e6, 0.2},
                                   {.big_avg = 0.85, .big_hot = 0.97, .little_avg = 0.50,
                                    .little_hot = 0.8, .gpu_avg = 0.05},
                                   3.0, 0.0);
  splash.initial_only = true;
  splash.min_duration_s = 2.0;
  s.phases.push_back(splash);
  s.initial_phase = 0;
  s.phases.push_back(continuous_phase("scroll_feed", {5.5e6, 0.35}, {2.4e6, 0.30},
                                      {.big_avg = 0.25, .big_hot = 0.5, .little_avg = 0.30,
                                       .little_hot = 0.55, .gpu_avg = 0.04},
                                      6.0, 3.0, /*needs_engagement=*/true));
  // Feed prefetch, tracking and timers keep threads warm while the user
  // reads - schedutil holds frequency up although FPS is 0 (Fig. 1 middle).
  s.phases.push_back(none_phase("read_idle",
                                {.big_avg = 0.12, .big_hot = 0.38, .little_avg = 0.22,
                                 .little_hot = 0.45, .gpu_avg = 0.01},
                                7.0, 2.5));
  s.phases.push_back(cadence_phase("feed_video", 30.0, {4.5e6, 0.25}, {2.6e6, 0.25},
                                   {.big_avg = 0.20, .big_hot = 0.45, .little_avg = 0.28,
                                    .little_hot = 0.5, .gpu_avg = 0.20},
                                   8.0, 1.5));
  return s;
}

AppSpec spotify_spec() {
  AppSpec s;
  s.name = "spotify";
  // Users mostly set music going and stop interacting - the paper's Fig. 1
  // shows long FPS~0 stretches with frequencies still high.
  s.user = {/*engaged_mean_s=*/4.0, 0.6, /*passive_mean_s=*/18.0, 0.7, true};
  s.phases.push_back(continuous_phase("browse", {5.0e6, 0.30}, {2.0e6, 0.25},
                                      {.big_avg = 0.18, .big_hot = 0.40, .little_avg = 0.30,
                                       .little_hot = 0.55, .gpu_avg = 0.03},
                                      4.0, 2.0, /*needs_engagement=*/true));
  // Decode/DSP/network keep CPUs warm while the screen is static: this is
  // the waste case Next learns to cap.
  s.phases.push_back(cadence_phase("playback_idle", 1.0, {2.0e6, 0.2}, {1.0e6, 0.2},
                                   {.big_avg = 0.24, .big_hot = 0.78, .little_avg = 0.48,
                                    .little_hot = 0.85, .gpu_avg = 0.01},
                                   15.0, 4.0));
  s.phases.push_back(cadence_phase("lyrics_anim", 12.0, {3.0e6, 0.2}, {1.6e6, 0.2},
                                   {.big_avg = 0.18, .big_hot = 0.45, .little_avg = 0.35,
                                    .little_hot = 0.6, .gpu_avg = 0.02},
                                   5.0, 1.0));
  return s;
}

AppSpec web_browser_spec() {
  AppSpec s;
  s.name = "web_browser";
  s.user = {/*engaged_mean_s=*/9.0, 0.6, /*passive_mean_s=*/7.0, 0.7, true};
  s.phases.push_back(continuous_phase("page_load", {9.0e6, 0.30}, {2.6e6, 0.25},
                                      {.big_avg = 0.90, .big_hot = 1.0, .little_avg = 0.50,
                                       .little_hot = 0.8, .gpu_avg = 0.05},
                                      2.5, 2.0, /*needs_engagement=*/true));
  s.phases.push_back(continuous_phase("scroll_read", {5.0e6, 0.30}, {2.2e6, 0.25},
                                      {.big_avg = 0.20, .big_hot = 0.45, .little_avg = 0.25,
                                       .little_hot = 0.45, .gpu_avg = 0.03},
                                      4.0, 3.0, /*needs_engagement=*/true));
  // JS timers / analytics keep cores awake on "idle" pages.
  s.phases.push_back(none_phase("read_idle",
                                {.big_avg = 0.12, .big_hot = 0.40, .little_avg = 0.20,
                                 .little_hot = 0.45, .gpu_avg = 0.01},
                                8.0, 2.0));
  return s;
}

AppSpec youtube_spec() {
  AppSpec s;
  s.name = "youtube";
  s.user = {/*engaged_mean_s=*/3.0, 0.6, /*passive_mean_s=*/20.0, 0.7, true};
  // 30 FPS video cadence: demux + compositing on CPU, scaling on GPU; the
  // composition load keeps the Mali step governor several OPPs up although
  // the video needs none of it - waste Next reclaims.
  s.phases.push_back(cadence_phase("video_playback", 30.0, {4.5e6, 0.20}, {3.2e6, 0.20},
                                   {.big_avg = 0.20, .big_hot = 0.55, .little_avg = 0.38,
                                    .little_hot = 0.65, .gpu_avg = 0.35},
                                   20.0, 4.0));
  s.phases.push_back(continuous_phase("seek_browse", {6.0e6, 0.30}, {2.6e6, 0.25},
                                      {.big_avg = 0.30, .big_hot = 0.6, .little_avg = 0.35,
                                       .little_hot = 0.6, .gpu_avg = 0.04},
                                      3.0, 1.5, /*needs_engagement=*/true));
  s.phases.push_back(none_phase("pause_idle",
                                {.big_avg = 0.05, .big_hot = 0.14, .little_avg = 0.12,
                                 .little_hot = 0.25, .gpu_avg = 0.01},
                                4.0, 0.5));
  return s;
}

AppSpec lineage_spec() {
  AppSpec s;
  s.name = "lineage";
  // "a very computationally intensive game" (Section III-B, Fig. 4).
  s.user = {/*engaged_mean_s=*/30.0, 0.5, /*passive_mean_s=*/2.0, 0.5, true};
  PhaseSpec loading = cadence_phase("loading", 10.0, {3.0e6, 0.2}, {1.5e6, 0.2},
                                    {.big_avg = 0.95, .big_hot = 1.0, .little_avg = 0.60,
                                     .little_hot = 0.9, .gpu_avg = 0.05},
                                    12.0, 0.0);
  loading.initial_only = true;
  loading.min_duration_s = 8.0;
  s.phases.push_back(loading);
  s.initial_phase = 0;
  s.phases.push_back(continuous_phase("combat", {11.0e6, 0.30}, {6.5e6, 0.30},
                                      {.big_avg = 0.35, .big_hot = 0.7, .little_avg = 0.30,
                                       .little_hot = 0.55, .gpu_avg = 0.05},
                                      12.0, 3.0, /*needs_engagement=*/false));
  s.phases.push_back(continuous_phase("town", {8.0e6, 0.28}, {5.0e6, 0.28},
                                      {.big_avg = 0.30, .big_hot = 0.6, .little_avg = 0.28,
                                       .little_hot = 0.5, .gpu_avg = 0.04},
                                      8.0, 2.0, /*needs_engagement=*/false));
  s.phases.push_back(cadence_phase("menu", 30.0, {4.0e6, 0.2}, {2.0e6, 0.2},
                                   {.big_avg = 0.15, .big_hot = 0.35, .little_avg = 0.20,
                                    .little_hot = 0.4, .gpu_avg = 0.02},
                                   3.0, 0.7));
  return s;
}

AppSpec pubg_spec() {
  AppSpec s;
  s.name = "pubg";
  s.user = {/*engaged_mean_s=*/40.0, 0.5, /*passive_mean_s=*/2.0, 0.5, true};
  PhaseSpec loading = cadence_phase("loading", 10.0, {3.0e6, 0.2}, {1.5e6, 0.2},
                                    {.big_avg = 0.95, .big_hot = 1.0, .little_avg = 0.60,
                                     .little_hot = 0.9, .gpu_avg = 0.05},
                                    15.0, 0.0);
  loading.initial_only = true;
  loading.min_duration_s = 10.0;
  s.phases.push_back(loading);
  s.initial_phase = 0;
  s.phases.push_back(continuous_phase("match", {10.0e6, 0.30}, {7.5e6, 0.30},
                                      {.big_avg = 0.40, .big_hot = 0.75, .little_avg = 0.35,
                                       .little_hot = 0.6, .gpu_avg = 0.05},
                                      25.0, 3.0, /*needs_engagement=*/false));
  s.phases.push_back(continuous_phase("lobby", {6.0e6, 0.25}, {4.0e6, 0.25},
                                      {.big_avg = 0.25, .big_hot = 0.5, .little_avg = 0.25,
                                       .little_hot = 0.45, .gpu_avg = 0.03},
                                      6.0, 1.0, /*needs_engagement=*/false));
  return s;
}

std::span<const AppId> all_apps() noexcept {
  static constexpr std::array<AppId, 6> kApps = {AppId::kFacebook, AppId::kLineage,
                                                 AppId::kPubg,     AppId::kSpotify,
                                                 AppId::kWebBrowser, AppId::kYoutube};
  return kApps;
}

bool is_game(AppId id) noexcept { return id == AppId::kLineage || id == AppId::kPubg; }

std::string_view to_string(AppId id) noexcept {
  switch (id) {
    case AppId::kHome: return "home";
    case AppId::kFacebook: return "facebook";
    case AppId::kSpotify: return "spotify";
    case AppId::kWebBrowser: return "web_browser";
    case AppId::kYoutube: return "youtube";
    case AppId::kLineage: return "lineage";
    case AppId::kPubg: return "pubg";
  }
  return "?";
}

AppSpec spec_for(AppId id) {
  switch (id) {
    case AppId::kHome: return home_spec();
    case AppId::kFacebook: return facebook_spec();
    case AppId::kSpotify: return spotify_spec();
    case AppId::kWebBrowser: return web_browser_spec();
    case AppId::kYoutube: return youtube_spec();
    case AppId::kLineage: return lineage_spec();
    case AppId::kPubg: return pubg_spec();
  }
  throw ConfigError("unknown AppId");
}

std::unique_ptr<PhasedApp> make_app(AppId id, std::uint64_t seed) {
  return std::make_unique<PhasedApp>(spec_for(id), Rng{seed});
}

SimTime paper_session_length(AppId id) noexcept {
  // Section V: gaming sessions 5 min; other apps 1 min 30 s - 3 min.
  if (is_game(id)) return SimTime::from_seconds(300.0);
  return SimTime::from_seconds(150.0);
}

}  // namespace nextgov::workload
