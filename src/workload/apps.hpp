// apps.hpp - the evaluation workloads.
//
// Factories for the seven workloads of the paper's evaluation (Section V):
// the home screen (Fig. 1 session) plus Facebook, Spotify, Chrome ("Web
// Browser"), YouTube and the two games Lineage 2 Revolution and PubG Mobile.
// Parameters are calibrated (see DESIGN.md and tests/workload) so that under
// stock schedutil each app reproduces the paper's qualitative signature:
//   - Facebook/Chrome: alternating 40-60 FPS interaction bursts and ~0 FPS
//     reading intervals (Fig. 1 left/middle);
//   - Spotify: FPS ~0 with high background load, so schedutil still runs
//     high frequencies (Fig. 1 right - the waste Next eliminates);
//   - YouTube: steady 30 FPS video cadence;
//   - games: continuous VSync-bound rendering with heavy CPU+GPU cost and
//     a loading phase whose FPS collapses while CPU load is maximal
//     (the splash-screen scenario discussed in Section II).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "workload/phased_app.hpp"

namespace nextgov::workload {

enum class AppId {
  kHome,
  kFacebook,
  kSpotify,
  kWebBrowser,
  kYoutube,
  kLineage,
  kPubg,
};

/// All evaluated apps, in the order the paper's Fig. 7/8 list them.
[[nodiscard]] std::span<const AppId> all_apps() noexcept;
/// The non-game subset (Int. QoS PM only supports games).
[[nodiscard]] bool is_game(AppId id) noexcept;
[[nodiscard]] std::string_view to_string(AppId id) noexcept;

/// Behaviour specifications (exposed for tests and ablations).
[[nodiscard]] AppSpec home_spec();
[[nodiscard]] AppSpec facebook_spec();
[[nodiscard]] AppSpec spotify_spec();
[[nodiscard]] AppSpec web_browser_spec();
[[nodiscard]] AppSpec youtube_spec();
[[nodiscard]] AppSpec lineage_spec();
[[nodiscard]] AppSpec pubg_spec();

[[nodiscard]] AppSpec spec_for(AppId id);

/// Instantiates an app with its own deterministic random stream.
[[nodiscard]] std::unique_ptr<PhasedApp> make_app(AppId id, std::uint64_t seed);

/// Paper session length for the app (Section V: games 5 min, other apps
/// 1 min 30 s - 3 min; we use the midpoints).
[[nodiscard]] SimTime paper_session_length(AppId id) noexcept;

}  // namespace nextgov::workload
