// background.hpp - non-frame-bound computational load of an app.
//
// Mobile apps are "dynamic applications consisting of periodic, aperiodic
// and sporadic tasks" (paper Section I): network stacks, audio decode,
// prefetchers and GC run regardless of whether frames are produced. This is
// what makes stock schedutil raise frequencies even when FPS is ~0 (the
// Spotify phenomenon in the paper's Fig. 1) - utilization governors cannot
// distinguish frame-critical work from background work; Next can.
//
// Loads are expressed as utilization demand *at the highest OPP*: the cycles
// consumed are u * f_max * dt, so at lower frequencies the same work yields
// proportionally higher busy fractions (how PELT utilization behaves).
#pragma once

namespace nextgov::workload {

struct BackgroundLoad {
  double big_avg{0.0};     ///< mean demand across the whole big cluster [0,1]
  double big_hot{0.0};     ///< demand of the busiest big core [0,1]
  double little_avg{0.0};  ///< mean demand across the LITTLE cluster [0,1]
  double little_hot{0.0};  ///< demand of the busiest LITTLE core [0,1]
  double gpu_avg{0.0};     ///< non-frame GPU demand (composition etc.) [0,1]
};

}  // namespace nextgov::workload
