#include "workload/phased_app.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace nextgov::workload {

PhasedApp::PhasedApp(AppSpec spec, Rng rng)
    : spec_{std::move(spec)},
      rng_{rng},
      phase_rng_{rng_.fork(0x70686173)},
      user_{spec_.user, rng_.fork(0x75736572)} {
  require(!spec_.phases.empty(), "app needs at least one phase");
  require(spec_.initial_phase < spec_.phases.size(), "initial phase out of range");
  for (const auto& p : spec_.phases) {
    require(p.mean_duration_s > 0.0, "phase duration must be positive");
    require(p.cpu.mean_cycles > 0.0 && p.gpu.mean_cycles > 0.0,
            "phase work must be positive");
    if (p.demand == FrameDemand::kCadence) {
      require(p.cadence_fps > 0.0, "cadence phase needs cadence_fps > 0");
    }
  }
}

double PhasedApp::sample_work(const WorkDist& dist) {
  if (dist.sigma <= 0.0) return dist.mean_cycles;
  // mu = ln(mean) - sigma^2/2 keeps the arithmetic mean at mean_cycles.
  const double mu = std::log(dist.mean_cycles) - dist.sigma * dist.sigma / 2.0;
  return std::max(1.0, rng_.lognormal(mu, dist.sigma));
}

void PhasedApp::enter_phase(std::size_t index, SimTime now) {
  NEXTGOV_ASSERT(index < spec_.phases.size());
  phase_ = index;
  const auto& p = spec_.phases[phase_];
  const double sigma = std::max(0.0, p.duration_sigma);
  double dwell = p.mean_duration_s;
  if (sigma > 0.0) {
    dwell = phase_rng_.lognormal(std::log(p.mean_duration_s) - sigma * sigma / 2.0, sigma);
  }
  dwell = std::max(p.min_duration_s, dwell);
  phase_end_ = now + SimTime::from_seconds(dwell);
  cadence_credit_ = 0.0;
}

std::size_t PhasedApp::pick_next_phase() {
  const bool engaged = user_.engaged();
  double total = 0.0;
  for (const auto& p : spec_.phases) {
    if (p.initial_only) continue;
    if (p.needs_engagement && !engaged) continue;
    total += p.weight;
  }
  if (total <= 0.0) {
    // Nothing eligible (e.g. user passive and all phases interactive):
    // fall back to ignoring the engagement gate.
    for (std::size_t i = 0; i < spec_.phases.size(); ++i) {
      if (!spec_.phases[i].initial_only) return i;
    }
    return phase_;
  }
  double pick = phase_rng_.uniform(0.0, total);
  for (std::size_t i = 0; i < spec_.phases.size(); ++i) {
    const auto& p = spec_.phases[i];
    if (p.initial_only) continue;
    if (p.needs_engagement && !engaged) continue;
    pick -= p.weight;
    if (pick <= 0.0) return i;
  }
  return spec_.phases.size() - 1;
}

void PhasedApp::update(SimTime now, SimTime dt) {
  user_.update(now);
  if (!started_) {
    enter_phase(spec_.initial_phase, now);
    started_ = true;
  }
  while (now >= phase_end_) {
    enter_phase(pick_next_phase(), phase_end_);
  }
  const auto& p = spec_.phases[phase_];
  if (p.demand == FrameDemand::kCadence) {
    cadence_credit_ = std::min(2.0, cadence_credit_ + p.cadence_fps * dt.seconds());
  }
}

bool PhasedApp::wants_frame(SimTime /*now*/) {
  if (!started_) return false;
  const auto& p = spec_.phases[phase_];
  switch (p.demand) {
    case FrameDemand::kNone: return false;
    case FrameDemand::kContinuous: return true;
    case FrameDemand::kCadence: return cadence_credit_ >= 1.0;
  }
  return false;
}

render::FrameJob PhasedApp::begin_frame(SimTime /*now*/) {
  const auto& p = spec_.phases[phase_];
  if (p.demand == FrameDemand::kCadence) cadence_credit_ = std::max(0.0, cadence_credit_ - 1.0);
  return render::FrameJob{sample_work(p.cpu), sample_work(p.gpu)};
}

BackgroundLoad PhasedApp::background() const {
  if (!started_) return BackgroundLoad{};
  return spec_.phases[phase_].background;
}

std::string_view PhasedApp::phase_name() const {
  return started_ ? std::string_view{spec_.phases[phase_].name} : std::string_view{"(init)"};
}

}  // namespace nextgov::workload
