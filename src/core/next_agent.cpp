#include "core/next_agent.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "soc/soc.hpp"

namespace nextgov::core {

namespace {
std::vector<std::size_t> validated(std::vector<std::size_t> opp_counts) {
  require(!opp_counts.empty(), "NextAgent needs at least one cluster");
  return opp_counts;
}
}  // namespace

NextAgent::NextAgent(NextConfig config, std::vector<std::size_t> opp_counts, std::uint64_t seed)
    : config_{config},
      encoder_{config, validated(std::move(opp_counts))},
      table_{encoder_.action_count(), config.optimistic_q},
      learner_{config.qlearning},
      policy_{config.epsilon},
      rng_{seed},
      window_{config.sample_period, config.frame_window} {}

void NextAgent::reset() {
  window_.clear();
  prev_state_.reset();
  // The learned table, policy decay and convergence state survive resets:
  // a reset is "the app was closed and reopened", not "forget everything".
}

void NextAgent::set_q_table(rl::QTable table) {
  require(table.action_count() == encoder_.action_count(),
          "Q-table action count does not match this agent");
  table_ = std::move(table);
}

void NextAgent::load_q_table(const std::string& path) { set_q_table(rl::QTable::load(path)); }

void NextAgent::save_state(ByteWriter& out) const {
  table_.serialize(out);
  const RngState rng = rng_.state();
  for (const std::uint64_t word : rng.s) out.u64(word);
  out.f64(rng.spare_normal);
  out.boolean(rng.has_spare);
  out.u64(policy_.steps_taken());
  const rl::ConvergenceDetector::State conv = convergence_.state();
  out.f64(conv.ema);
  out.u64(conv.updates);
  out.u64(conv.below_count);
  out.boolean(conv.converged);
  const std::vector<int> window = window_.samples();
  out.u32(static_cast<std::uint32_t>(window.size()));
  for (const int v : window) out.u32(static_cast<std::uint32_t>(v));
  out.u8(mode_ == AgentMode::kTraining ? 0 : 1);
  out.boolean(prev_state_.has_value());
  out.u64(prev_state_.value_or(0));
  out.u64(static_cast<std::uint64_t>(prev_action_));
  out.u64(decisions_);
  out.f64(reward_sum_);
  out.f64(last_reward_);
}

void NextAgent::restore_state(ByteReader& in) {
  rl::QTable table = rl::QTable::deserialize(in);
  if (table.action_count() != encoder_.action_count()) {
    in.fail("agent state holds a Q-table for " + std::to_string(table.action_count()) +
            " actions but this agent has " + std::to_string(encoder_.action_count()));
  }
  RngState rng;
  for (std::uint64_t& word : rng.s) word = in.u64();
  rng.spare_normal = in.f64();
  rng.has_spare = in.boolean();
  const std::uint64_t policy_steps = in.u64();
  rl::ConvergenceDetector::State conv;
  conv.ema = in.f64();
  conv.updates = in.u64();
  conv.below_count = in.u64();
  conv.converged = in.boolean();
  const std::uint32_t window_size = in.u32();
  if (window_size > window_.capacity()) {
    in.fail("agent state holds " + std::to_string(window_size) +
            " frame-window samples but this agent's window caps at " +
            std::to_string(window_.capacity()));
  }
  std::vector<int> window(window_size);
  for (int& v : window) {
    const std::uint32_t raw = in.u32();
    if (raw > static_cast<std::uint32_t>(FrameWindow::kMaxFps)) {
      in.fail("corrupt frame-window sample " + std::to_string(raw));
    }
    v = static_cast<int>(raw);
  }
  const std::uint8_t mode = in.u8();
  if (mode > 1) in.fail("corrupt agent mode " + std::to_string(mode));
  const bool has_prev = in.boolean();
  const rl::StateKey prev_state = in.u64();
  const std::uint64_t prev_action = in.u64();
  if (prev_action >= encoder_.action_count()) {
    in.fail("corrupt previous action index " + std::to_string(prev_action));
  }
  const std::uint64_t decisions = in.u64();
  const double reward_sum = in.f64();
  const double last_reward = in.f64();

  // All fields decoded and validated - only now mutate the agent, so a
  // corrupt payload can never leave it half-restored.
  table_ = std::move(table);
  rng_.restore(rng);
  policy_.restore_steps(policy_steps);
  convergence_.restore(conv);
  window_.restore_samples(window);
  mode_ = mode == 0 ? AgentMode::kTraining : AgentMode::kDeployed;
  prev_state_ = has_prev ? std::optional<rl::StateKey>{prev_state} : std::nullopt;
  prev_action_ = static_cast<std::size_t>(prev_action);
  decisions_ = decisions;
  reward_sum_ = reward_sum;
  last_reward_ = last_reward;
}

void NextAgent::on_sample(const governors::Observation& obs) { window_.add_sample(obs.fps); }

double NextAgent::reward(const governors::Observation& obs, int target_fps) const noexcept {
  // Missed VSync deadlines are "lag or stutter and hence reduced QoS"
  // (Section I); they gate the whole reward. Unlike the frame-window mode,
  // the drop rate cannot drift along when the agent degrades QoS slowly.
  const double jank = std::exp(-obs.drop_rate / config_.drop_scale);
  const double power = obs.sensors.power.value();
  if (target_fps <= 0) {
    // User demands no frames: pay for shedding power.
    return jank * std::clamp(1.0 - power / config_.idle_power_scale_w, 0.0, 1.0);
  }
  const double fps = obs.fps.value();
  const double target = static_cast<double>(target_fps);
  const double sigma =
      std::max(config_.track_sigma_floor, config_.track_sigma_frac * target);
  const double miss = (fps - target) / sigma;
  const double tracking = std::exp(-0.5 * miss * miss);
  switch (config_.reward_metric) {
    case RewardMetric::kFpsOnly:
      return jank * tracking;
    case RewardMetric::kPpw: {
      const double ppw = fps / std::max(power, 1e-3);
      return jank * tracking * ppdw_score(ppw, config_.ppw_ref);
    }
    case RewardMetric::kPpdw:
      break;
  }
  const double raw =
      ppdw(fps, obs.sensors.power, obs.sensors.big, config_.ppdw_bounds.ambient);
  const double bounded = clamp_to_bounds(raw, config_.ppdw_bounds);
  return jank * tracking * ppdw_score(bounded, config_.ppdw_ref);
}

void NextAgent::apply_action(std::size_t action, soc::Soc& soc) noexcept {
  // Section IV-B: "setting operating frequency (up, down and do nothing)
  // means to set the maxfreq of the respective PE to that operating
  // frequency" - the desired frequency is one OPP above/below the *current
  // operating point*, and the cap is moved there. Anchoring on the
  // operating point (not the previous cap) lets a single "down" action
  // collapse a wide idle cap onto the frequency the workload actually
  // needs, which is what makes minutes-scale training feasible.
  const NextAction a = action_from_index(action);
  NEXTGOV_ASSERT(a.cluster < soc.cluster_count());
  auto& cluster = soc.cluster(a.cluster);
  const std::size_t op = cluster.freq_index();
  const std::size_t top = cluster.opps().size() - 1;
  switch (a.kind) {
    case ActionKind::kFreqUp:
      cluster.set_max_cap_index(std::min(op + config_.cap_up_step, top));
      break;
    case ActionKind::kFreqDown:
      cluster.set_max_cap_index(op > config_.cap_down_step ? op - config_.cap_down_step : 0);
      break;
    case ActionKind::kDoNothing:
      break;
  }
}

void NextAgent::absorb_transition(const governors::Observation& obs, int target_fps,
                                  rl::StateKey state) {
  if (mode_ == AgentMode::kTraining && prev_state_.has_value()) {
    // The reward for the previous action is judged by what it led to: the
    // observation we are looking at now.
    const double r = reward(obs, target_fps);
    last_reward_ = r;
    reward_sum_ += r;
    const double td = learner_.update(table_, *prev_state_, prev_action_, r, state);
    convergence_.add(td);
  } else if (mode_ == AgentMode::kDeployed) {
    last_reward_ = reward(obs, target_fps);
    reward_sum_ += last_reward_;
  }
}

std::size_t NextAgent::select_action(rl::StateKey state) {
  // Deployment fallback for never-trained states: "do nothing" (index 2 on
  // cluster 0) - an untrained corner must not push caps around.
  const std::size_t hold = action_index(0, ActionKind::kDoNothing);
  return (mode_ == AgentMode::kTraining) ? policy_.select(table_, state, rng_)
                                         : table_.best_action(state, hold);
}

void NextAgent::commit_decision(rl::StateKey state, std::size_t action, soc::Soc& soc) {
  apply_action(action, soc);
  prev_state_ = state;
  prev_action_ = action;
  ++decisions_;
}

void NextAgent::control(const governors::Observation& obs, soc::Soc& soc) {
  const int target = window_.target_fps();
  const rl::StateKey state = encoder_.encode(obs, target);
  absorb_transition(obs, target, state);
  const std::size_t action = select_action(state);
  commit_decision(state, action, soc);
}

void NextAgent::control_group(std::span<NextAgent* const> agents,
                              std::span<const governors::Observation* const> obs,
                              std::span<soc::Soc* const> socs) {
  NEXTGOV_ASSERT(obs.size() == agents.size() && socs.size() == agents.size());
  const std::size_t n = agents.size();
  // Scratch is allocated per call: group control fires once per control
  // period (one tick in ~100), so a few small vectors are noise next to the
  // n Q-sweeps they enable.
  std::vector<rl::StateKey> states(n);
  std::vector<std::size_t> actions(n);

  // Phase 1 - discretize: every lane's observation through its encoder.
  for (std::size_t i = 0; i < n; ++i) {
    NextAgent& a = *agents[i];
    states[i] = a.encoder_.encode(*obs[i], a.window_.target_fps());
  }
  // Phase 2 - learn: reward + Q-update sweep.
  for (std::size_t i = 0; i < n; ++i) {
    agents[i]->absorb_transition(*obs[i], agents[i]->window_.target_fps(), states[i]);
  }
  // Phase 3 - act: greedy (deployed) lanes resolve through one batched
  // table lookup; exploring lanes draw through their own policy and rng.
  std::vector<const rl::QTable*> greedy_tables;
  std::vector<rl::StateKey> greedy_states;
  std::vector<std::size_t> greedy_lanes;
  for (std::size_t i = 0; i < n; ++i) {
    if (agents[i]->mode_ == AgentMode::kDeployed) {
      greedy_tables.push_back(&agents[i]->table_);
      greedy_states.push_back(states[i]);
      greedy_lanes.push_back(i);
    } else {
      actions[i] = agents[i]->select_action(states[i]);
    }
  }
  if (!greedy_lanes.empty()) {
    std::vector<std::size_t> greedy_actions(greedy_lanes.size());
    rl::best_actions(greedy_tables, greedy_states, action_index(0, ActionKind::kDoNothing),
                     greedy_actions);
    for (std::size_t g = 0; g < greedy_lanes.size(); ++g) {
      actions[greedy_lanes[g]] = greedy_actions[g];
    }
  }
  // Phase 4 - commit: actuate caps and advance each lane's trajectory.
  for (std::size_t i = 0; i < n; ++i) {
    agents[i]->commit_decision(states[i], actions[i], *socs[i]);
  }
}

double NextAgent::mean_reward() const noexcept {
  return decisions_ > 0 ? reward_sum_ / static_cast<double>(decisions_) : 0.0;
}

std::unique_ptr<NextAgent> make_next_agent(const soc::Soc& soc, NextConfig config,
                                           std::uint64_t seed) {
  std::vector<std::size_t> counts;
  counts.reserve(soc.cluster_count());
  for (const auto& c : soc.clusters()) counts.push_back(c.opps().size());
  return std::make_unique<NextAgent>(config, std::move(counts), seed);
}

}  // namespace nextgov::core
