// next_state.hpp - the Next agent's state and action encodings.
//
// Section IV-B, for the Exynos 9810: state = {big CPU freq, LITTLE CPU freq,
// GPU freq, FPS_current, Target FPS, Power_current, Temperature_big,
// Temperature_device}; actions = {frequency up, frequency down, do nothing}
// per cluster - 9 actions for 3 clusters. The code is generic in the number
// of clusters m (3m actions), as the paper formulates it.
//
// The frequency component is the *current operating* index, exactly as the
// paper feeds "the current operating frequency of each cluster" into the
// state. Actions anchor on it as well: freq up/down sets the maxfreq cap
// one OPP above/below the operating point ("setting operating frequency ...
// means to set the maxfreq of the respective PE to that operating
// frequency"), and the kernel governor keeps selecting the operating point
// underneath the cap.
#pragma once

#include <cstddef>
#include <vector>

#include "core/next_config.hpp"
#include "governors/observation.hpp"
#include "rl/discretizer.hpp"

namespace nextgov::core {

/// Per-cluster action kinds, in the paper's order.
enum class ActionKind : std::size_t { kFreqUp = 0, kFreqDown = 1, kDoNothing = 2 };

struct NextAction {
  std::size_t cluster;  ///< which PE cluster the action targets
  ActionKind kind;
};

/// Flattens/unflattens (cluster, kind) <-> action index in [0, 3m).
[[nodiscard]] constexpr std::size_t action_index(std::size_t cluster, ActionKind kind) noexcept {
  return cluster * 3 + static_cast<std::size_t>(kind);
}
[[nodiscard]] constexpr NextAction action_from_index(std::size_t index) noexcept {
  return NextAction{index / 3, static_cast<ActionKind>(index % 3)};
}

/// Builds state keys from observations. Constructed once per agent from the
/// cluster OPP-table sizes; encoding is collision-free by construction.
class NextStateEncoder {
 public:
  NextStateEncoder(const NextConfig& config, std::vector<std::size_t> opp_counts);

  [[nodiscard]] std::size_t cluster_count() const noexcept { return opp_counts_.size(); }
  [[nodiscard]] std::size_t action_count() const noexcept { return opp_counts_.size() * 3; }
  [[nodiscard]] std::uint64_t state_space_size() const noexcept {
    return packer_.state_space_size();
  }

  /// Encodes the observation + the frame window's target FPS.
  [[nodiscard]] rl::StateKey encode(const governors::Observation& obs, int target_fps) const;

  /// Quantized FPS level for a raw value (exposed for tests/ablations).
  [[nodiscard]] std::size_t fps_level(double fps) const noexcept { return fps_bins_.bin(fps); }

 private:
  std::vector<std::size_t> opp_counts_;
  rl::LinearBins fps_bins_;
  rl::LinearBins power_bins_;
  rl::LinearBins temp_bins_;
  rl::MixedRadixPacker packer_;
};

}  // namespace nextgov::core
