// ppdw.hpp - Performance Per Degree Watt, the paper's metric (Section III-B).
//
//   PPDW_i = FPS_i / (dT * P_i) ,  dT = T_i - T_a                    (Eq. 1)
//
// bounded by
//
//   PPDW_worst = FPS_least / ((T_max - T_a) * P_max)
//   PPDW_best  = FPS_max   / ((T_least - T_a) * P_least)
//   PPDW_best >= PPDW_desired > PPDW_worst                           (Eq. 2)
//
// (The prose under Eq. 2 says "minimize"; Eq. 4 - max R = max PPDW - and the
// whole reward construction make clear the objective is maximization within
// the bounds. We maximize; see DESIGN.md.)
//
// For reward use the unbounded ratio is squashed with a saturating score
// x/(x+ref) that preserves PPDW ordering while giving the learner a usable
// dynamic range - raw PPDW spans four decades across the bounds.
#pragma once

#include "common/units.hpp"

namespace nextgov::core {

/// Envelope constants used for Eq. 2's bounds and the reward squashing.
struct PpdwBounds {
  double fps_least{1.0};       ///< the paper's example: 1 FPS at full power
  double fps_max{60.0};        ///< display-limited maximum
  Watts power_least{1.0};      ///< near-idle device power
  Watts power_max{12.0};       ///< all-clusters-max burst power
  Celsius temp_least{29.0};    ///< coolest loaded junction temperature
  Celsius temp_max{95.0};      ///< thermal design limit
  Celsius ambient{21.0};       ///< paper: thermostat-controlled 21 C

  [[nodiscard]] double worst() const noexcept;
  [[nodiscard]] double best() const noexcept;
};

/// Eq. 1. Guards: dT below 0.5 K clamps to 0.5 (a device cannot measurably
/// be at ambient while drawing power), power below 1 mW clamps to 1 mW.
[[nodiscard]] double ppdw(double fps, Watts power, Celsius temp, Celsius ambient) noexcept;

/// Saturating squash x/(x+ref) in [0,1), monotone in ppdw_value.
[[nodiscard]] double ppdw_score(double ppdw_value, double ref) noexcept;

/// Clamps a PPDW value into the Eq. 2 bounds.
[[nodiscard]] double clamp_to_bounds(double ppdw_value, const PpdwBounds& bounds) noexcept;

}  // namespace nextgov::core
