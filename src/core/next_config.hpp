// next_config.hpp - every knob of the Next agent in one place.
//
// Defaults are the paper's published values: 25 ms FPS sampling, 4 s frame
// window, 100 ms agent invocation (Section IV), 30 FPS quantization levels
// (Section IV-B / Fig. 6 "choosing 30 frame rate results in the best
// training period"). The ablation benches sweep these.
#pragma once

#include <cstddef>

#include "common/sim_time.hpp"
#include "core/ppdw.hpp"
#include "rl/policy.hpp"
#include "rl/qlearning.hpp"

namespace nextgov::core {

/// Which efficiency metric feeds the reward (ablation knob; the paper's
/// contribution is kPpdw - Section III-B argues PPW is "not enough").
enum class RewardMetric {
  kPpdw,     ///< performance per degree watt (Eq. 1) - the paper's metric
  kPpw,      ///< performance per watt (no thermal term) - the ablated prior
  kFpsOnly,  ///< pure QoS tracking, no efficiency term
};

struct NextConfig {
  // --- user-interaction analysis (Section IV-A) ---
  SimTime sample_period{SimTime::from_ms(25)};
  SimTime frame_window{SimTime::from_seconds(4.0)};

  // --- agent cadence (Section IV-B: "invoked every 100 ms") ---
  SimTime control_period{SimTime::from_ms(100)};

  // --- state quantization (Section IV-B / Fig. 6) ---
  std::size_t fps_levels{30};    ///< FPS + target-FPS quantization levels
  std::size_t power_bins{8};     ///< device-power bins over [0, power_max_w]
  double power_max_w{12.0};
  std::size_t temp_bins{8};      ///< temperature bins over [temp_min, temp_max]
  double temp_min_c{20.0};
  double temp_max_c{95.0};

  // --- learning (Eq. 3) ---
  // gamma = 0.7: DVFS consequences materialize within a few 100 ms control
  // periods; a short horizon keeps the value scale small and credit
  // propagation fast enough for the paper's minutes-scale convergence.
  rl::QLearningParams qlearning{
      .alpha = 0.30, .gamma = 0.70, .alpha_min = 0.04, .visit_decay = 0.01};
  rl::EpsilonSchedule epsilon{.start = 0.30, .end = 0.02, .decay_steps = 8000};
  /// Initial Q for unseen (state, action) pairs. Mildly optimistic (above
  /// typical observed returns, deliberately below the theoretical maximum
  /// 1/(1-gamma)): enough to nudge the learner into untried actions along
  /// its trajectory without forcing exhaustive sweeps of every state.
  /// Deployment ignores still-optimistic untried entries via
  /// best_tried_action().
  double optimistic_q{1.2};

  // --- reward (Eq. 1/2/4 + target-FPS tracking, see next_agent.hpp) ---
  RewardMetric reward_metric{RewardMetric::kPpdw};
  PpdwBounds ppdw_bounds{};
  double ppdw_ref{0.30};         ///< mid-scale of the saturating PPDW score
  double ppw_ref{12.0};          ///< mid-scale for the PPW ablation (fps/W)
  double track_sigma_floor{3.0}; ///< FPS tolerance floor for the tracking term
  double track_sigma_frac{0.15}; ///< tolerance as a fraction of the target
  double idle_power_scale_w{4.0};///< power normalization for target-FPS = 0
  /// Jank penalty scale: reward *= exp(-drop_rate/drop_scale). Frame drops
  /// are the paper's QoS-loss signal (Section I) and, unlike the frame
  /// window's mode, cannot be gamed by letting QoS degrade slowly.
  double drop_scale{6.0};

  // --- actuation ---
  /// OPP steps a single "frequency up"/"frequency down" action moves the
  /// cap relative to the operating point. Symmetric +-1 per the paper;
  /// asymmetric steps bias the cap random-walk during exploration (an
  /// "up" is locked in immediately by the underlying governor whenever
  /// background load saturates, so up > down drifts caps to fmax).
  std::size_t cap_up_step{1};
  std::size_t cap_down_step{1};
};

}  // namespace nextgov::core
