#include "core/frame_window.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace nextgov::core {

namespace {
std::size_t window_capacity(SimTime sample_period, SimTime window) {
  require(sample_period.us() > 0, "frame window sample period must be positive");
  require(window.us() >= sample_period.us(), "frame window must hold at least one sample");
  return static_cast<std::size_t>(window / sample_period);
}
}  // namespace

FrameWindow::FrameWindow(SimTime sample_period, SimTime window)
    : sample_period_{sample_period},
      samples_{window_capacity(sample_period, window)},
      counts_(kMaxFps + 1, 0) {}

void FrameWindow::add_sample(Fps fps) {
  const int value = std::clamp(fps.rounded(), 0, kMaxFps);
  if (samples_.full()) {
    const int evicted = samples_.oldest();
    --counts_[static_cast<std::size_t>(evicted)];
    // Removing a sample of the current mode may dethrone it.
    if (evicted == mode_) mode_dirty_ = true;
  }
  samples_.push(value);
  ++counts_[static_cast<std::size_t>(value)];
  if (value > max_value_seen_) max_value_seen_ = value;
  if (!mode_dirty_) {
    const auto c_new = counts_[static_cast<std::size_t>(value)];
    const auto c_mode = counts_[static_cast<std::size_t>(mode_)];
    // Ties resolve toward the larger FPS (never under-provision QoS).
    if (c_new > c_mode || (c_new == c_mode && value > mode_)) mode_ = value;
  }
}

int FrameWindow::target_fps() const {
  if (samples_.empty()) return 0;
  if (mode_dirty_) {
    int best = 0;
    int best_count = 0;
    // Buckets above the largest value ever buffered are zero by
    // construction; at 60 Hz this scans ~60 buckets instead of 240.
    for (int v = 0; v <= max_value_seen_; ++v) {
      const int c = counts_[static_cast<std::size_t>(v)];
      if (c >= best_count && c > 0) {
        best = v;
        best_count = c;
      }
    }
    mode_ = best;
    mode_dirty_ = false;
  }
  return mode_;
}

void FrameWindow::restore_samples(std::span<const int> samples) {
  clear();
  for (const int v : samples) add_sample(Fps{static_cast<double>(v)});
}

void FrameWindow::clear() noexcept {
  samples_.clear();
  std::fill(counts_.begin(), counts_.end(), 0);
  mode_ = 0;
  mode_dirty_ = false;
  max_value_seen_ = 0;
}

}  // namespace nextgov::core
