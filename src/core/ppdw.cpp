#include "core/ppdw.hpp"

#include <algorithm>

namespace nextgov::core {

double PpdwBounds::worst() const noexcept {
  return fps_least / ((temp_max.value() - ambient.value()) * power_max.value());
}

double PpdwBounds::best() const noexcept {
  return fps_max / ((temp_least.value() - ambient.value()) * power_least.value());
}

double ppdw(double fps, Watts power, Celsius temp, Celsius ambient) noexcept {
  const double dt = std::max(temp.value() - ambient.value(), 0.5);
  const double p = std::max(power.value(), 1e-3);
  return std::max(fps, 0.0) / (dt * p);
}

double ppdw_score(double ppdw_value, double ref) noexcept {
  const double x = std::max(ppdw_value, 0.0);
  const double r = std::max(ref, 1e-9);
  return x / (x + r);
}

double clamp_to_bounds(double ppdw_value, const PpdwBounds& bounds) noexcept {
  return std::clamp(ppdw_value, bounds.worst(), bounds.best());
}

}  // namespace nextgov::core
