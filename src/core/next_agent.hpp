// next_agent.hpp - Next: the paper's user-interaction-aware RL DVFS agent.
//
// The agent (Section IV):
//   * samples the frame rate every 25 ms into a 4 s frame window and takes
//     the mode as the session's target FPS (user QoS demand);
//   * every 100 ms observes {cluster freqs, FPS_current, Target FPS, power,
//     T_big, T_device}, picks one of 3m actions (freq up / down / hold per
//     cluster) by Q-learning, and applies it to the cluster's *maxfreq*;
//   * is rewarded for hitting the target FPS at the best PPDW (Eq. 4).
//
// Reward construction (documented deviation - the paper gives Eq. 4 but not
// the tracking mechanics):
//   target > 0:  r = exp(-0.5*((FPS-target)/sigma)^2) * score(PPDW)
//                sigma = max(sigma_floor, sigma_frac*target)
//                score(x) = x/(x+ref)  - monotone in PPDW, range [0,1)
//   target == 0: r = (1 - P/idle_scale)_+ : the user wants nothing rendered,
//                so the agent is paid for shedding power (the splash/idle
//                waste case of Section II).
// The multiplicative form keeps the maximum at FPS == Target FPS (the Eq. 4
// goal) while PPDW orders configurations that tie on QoS.
//
// Training happens online exactly as deployed, with epsilon-greedy
// exploration; "fully trained" evaluation switches to greedy. Q-tables
// persist per app (Section IV-B) via save()/load().
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/frame_window.hpp"
#include "core/next_config.hpp"
#include "core/next_state.hpp"
#include "governors/governor.hpp"
#include "rl/convergence.hpp"
#include "rl/policy.hpp"
#include "rl/qlearning.hpp"
#include "rl/qtable.hpp"

namespace nextgov::core {

enum class AgentMode {
  kTraining,  ///< epsilon-greedy exploration + Q updates
  kDeployed,  ///< greedy on the learned table, no updates
};

class NextAgent final : public governors::MetaGovernor {
 public:
  /// `opp_counts` - OPP-table size per cluster, in soc::Soc order.
  NextAgent(NextConfig config, std::vector<std::size_t> opp_counts, std::uint64_t seed);

  // --- governors::MetaGovernor ---
  [[nodiscard]] SimTime period() const override { return config_.control_period; }
  [[nodiscard]] SimTime sample_period() const override { return config_.sample_period; }
  void on_sample(const governors::Observation& obs) override;
  void control(const governors::Observation& obs, soc::Soc& soc) override;
  void reset() override;
  [[nodiscard]] std::string_view name() const override { return "next"; }

  // --- mode & persistence ---
  void set_mode(AgentMode mode) noexcept { mode_ = mode; }
  [[nodiscard]] AgentMode mode() const noexcept { return mode_; }
  /// Installs a previously trained table (e.g. loaded from disk or merged
  /// by the federated trainer).
  void set_q_table(rl::QTable table);
  [[nodiscard]] const rl::QTable& q_table() const noexcept { return table_; }
  void save_q_table(const std::string& path) const { table_.save(path); }
  void load_q_table(const std::string& path);

  /// Serializes the complete training state - Q-table, exploration RNG
  /// stream, epsilon-decay position, convergence detector, frame window
  /// contents, pending transition and reward statistics - so training can
  /// stop, persist, and later resume bit-identically to never having
  /// stopped. Engine-side state (thermal, app) is snapshotted separately
  /// at episode/round boundaries; the agent's own state is everything that
  /// survives across those boundaries.
  void save_state(ByteWriter& out) const;
  /// Restores what save_state() wrote. The agent must be constructed with
  /// the same config/cluster layout; a mismatched action count is rejected
  /// with a descriptive SerializeError, as is any truncation or corruption
  /// (via the common/serialize bounds checks).
  void restore_state(ByteReader& in);

  // --- introspection / evaluation hooks ---
  [[nodiscard]] int current_target_fps() const { return window_.target_fps(); }
  [[nodiscard]] const NextConfig& config() const noexcept { return config_; }
  [[nodiscard]] const NextStateEncoder& encoder() const noexcept { return encoder_; }
  [[nodiscard]] std::uint64_t decisions() const noexcept { return decisions_; }
  [[nodiscard]] double last_reward() const noexcept { return last_reward_; }
  [[nodiscard]] double mean_reward() const noexcept;
  [[nodiscard]] const rl::ConvergenceDetector& convergence() const noexcept {
    return convergence_;
  }
  [[nodiscard]] bool converged() const noexcept { return convergence_.converged(); }

  /// The reward function, exposed for tests and the ablation benches.
  [[nodiscard]] double reward(const governors::Observation& obs, int target_fps) const noexcept;

  /// Runs one control decision for a whole batch-resident group, phase by
  /// phase across the lanes: discretize every lane's observation, sweep the
  /// reward/Q-update step, resolve greedy lanes through one batched
  /// rl::best_actions lookup (exploring lanes draw through their own
  /// policy/rng), then commit. Each phase calls exactly the per-agent
  /// helpers control() is composed of, in the same order per lane, so the
  /// group sweep is bit-identical to calling control() lane by lane -
  /// sessions are independent, so reordering *across* lanes is free.
  /// All spans must have equal length; null entries are not allowed.
  static void control_group(std::span<NextAgent* const> agents,
                            std::span<const governors::Observation* const> obs,
                            std::span<soc::Soc* const> socs);

 private:
  void apply_action(std::size_t action, soc::Soc& soc) noexcept;
  // The three phases control() is made of (control_group sweeps them across
  // lanes; keeping one implementation is what keeps the two paths from
  // drifting).
  void absorb_transition(const governors::Observation& obs, int target_fps, rl::StateKey state);
  [[nodiscard]] std::size_t select_action(rl::StateKey state);
  void commit_decision(rl::StateKey state, std::size_t action, soc::Soc& soc);

  NextConfig config_;
  NextStateEncoder encoder_;
  rl::QTable table_;
  rl::QLearning learner_;
  rl::EpsilonGreedyPolicy policy_;
  rl::ConvergenceDetector convergence_;
  Rng rng_;
  FrameWindow window_;
  AgentMode mode_{AgentMode::kTraining};

  std::optional<rl::StateKey> prev_state_;
  std::size_t prev_action_{0};

  std::uint64_t decisions_{0};
  double reward_sum_{0.0};
  double last_reward_{0.0};
};

/// Convenience: builds an agent sized for `soc`'s cluster layout.
[[nodiscard]] std::unique_ptr<NextAgent> make_next_agent(const soc::Soc& soc, NextConfig config,
                                                         std::uint64_t seed);

}  // namespace nextgov::core
