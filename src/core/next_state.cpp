#include "core/next_state.hpp"

#include "common/error.hpp"

namespace nextgov::core {

NextStateEncoder::NextStateEncoder(const NextConfig& config, std::vector<std::size_t> opp_counts)
    : opp_counts_{std::move(opp_counts)},
      fps_bins_{0.0, config.ppdw_bounds.fps_max, config.fps_levels},
      power_bins_{0.0, config.power_max_w, config.power_bins},
      temp_bins_{config.temp_min_c, config.temp_max_c, config.temp_bins} {
  require(!opp_counts_.empty(), "state encoder needs at least one cluster");
  require(config.fps_levels > 0, "fps_levels must be positive");
  for (std::size_t count : opp_counts_) {
    require(count > 0, "cluster OPP count must be positive");
    packer_.add_field(count);  // per-cluster cap index
  }
  packer_.add_field(config.fps_levels);  // FPS_current
  packer_.add_field(config.fps_levels);  // Target FPS
  packer_.add_field(config.power_bins);  // Power_current
  packer_.add_field(config.temp_bins);   // Temperature_big
  packer_.add_field(config.temp_bins);   // Temperature_device
}

rl::StateKey NextStateEncoder::encode(const governors::Observation& obs,
                                      int target_fps) const {
  // Allocation-free: this runs on the agent's 100 ms decision path, whose
  // latency is itself a reported result (paper Section V: ~227 ns).
  NEXTGOV_ASSERT(obs.clusters.size() == opp_counts_.size());
  rl::StateKey key = 0;
  // Encode in reverse field order (same mixed-radix layout as the packer:
  // field 0 is the least significant digit).
  key = temp_bins_.bin(obs.sensors.device.value());
  key = key * temp_bins_.count() + temp_bins_.bin(obs.sensors.big.value());
  key = key * power_bins_.count() + power_bins_.bin(obs.sensors.power.value());
  key = key * fps_bins_.count() + fps_bins_.bin(static_cast<double>(target_fps));
  key = key * fps_bins_.count() + fps_bins_.bin(obs.fps.value());
  for (std::size_t i = opp_counts_.size(); i-- > 0;) {
    // Section IV-B feeds "the current operating frequency of each cluster"
    // into the state; actions anchor on it too (see apply_action).
    NEXTGOV_ASSERT(obs.clusters[i].freq_index < opp_counts_[i]);
    key = key * opp_counts_[i] + obs.clusters[i].freq_index;
  }
  return key;
}

}  // namespace nextgov::core
