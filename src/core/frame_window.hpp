// frame_window.hpp - the paper's user-interaction analysis window.
//
// Section IV-A: "the agent continuously monitors the frame rate every 25 ms
// for a window of n seconds. [...] choosing the frame window for 4 seconds
// generates the best frame rate pattern analysis from user's interaction.
// [...] For 4 seconds of frame window we are able to capture 160 distinct
// values of frame rate [...]. The agent now computes the mathematical mode
// operation of all the 160 distinct values, which actually determines the
// most possible frame rate suitable to provide the desirable QoS."
//
// The window length and sample period are configurable (the ablation bench
// sweeps 1/2/4/8 s windows); defaults match the paper.
#pragma once

#include <span>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/sim_time.hpp"
#include "common/units.hpp"

namespace nextgov::core {

class FrameWindow {
 public:
  /// Highest representable frame rate (headroom above the 60 Hz panels the
  /// paper targets, for 120 Hz what-if studies).
  static constexpr int kMaxFps = 240;

  explicit FrameWindow(SimTime sample_period = SimTime::from_ms(25),
                       SimTime window = SimTime::from_seconds(4.0));

  /// Records one frame-rate sample (called every sample_period). O(1): the
  /// mode is maintained incrementally so the agent's 100 ms decision path
  /// never rescans the 160-sample window.
  void add_sample(Fps fps);

  /// The mode of the buffered samples - the paper's target FPS. 0 while no
  /// samples have been collected.
  [[nodiscard]] int target_fps() const;

  [[nodiscard]] std::size_t sample_count() const noexcept { return samples_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return samples_.capacity(); }
  [[nodiscard]] bool full() const noexcept { return samples_.full(); }
  [[nodiscard]] SimTime sample_period() const noexcept { return sample_period_; }

  void clear() noexcept;

  /// Buffered samples oldest-first (for checkpointing).
  [[nodiscard]] std::vector<int> samples() const { return samples_.to_vector(); }
  /// Replaces the window contents by replaying `samples` oldest-first
  /// through add_sample(), which rebuilds the histogram and mode cache; a
  /// restored window is behaviorally identical to the one snapshotted.
  void restore_samples(std::span<const int> samples);

 private:
  SimTime sample_period_;
  RingBuffer<int> samples_;
  std::vector<int> counts_;      ///< histogram over [0, kMaxFps]
  mutable int mode_{0};          ///< cached mode (largest value on ties)
  mutable bool mode_dirty_{false};
  int max_value_seen_{0};        ///< upper bound for the dirty-mode rescan
};

}  // namespace nextgov::core
