// rc_batch.hpp - structure-of-arrays batch stepper for many same-topology
// RC networks.
//
// Fleet-scale simulation advances hundreds of sessions through the same
// 1 ms engine tick, and every one of them steps an identical RcTopology
// (the Note 9 network) with its own temperatures/powers/ambient. Stepping
// them one RcNetwork at a time wastes the structure sharing: each call
// re-walks the tiny CSR with scalar arithmetic and per-call dispatch
// overhead. RcBatch instead holds N sessions' node state in contiguous
// [node][session] arrays and advances all of them in one sweep whose inner
// loops run over the session axis - plain auto-vectorizable C++, no
// intrinsics.
//
// Bit-identity contract: for every session s, the sequence of
// floating-point operations applied to s's state is exactly the sequence
// RcNetwork::step() would apply (same flux expression, same CSR neighbor
// order, same sub-step count and sub-step size, same update order), so
// batch stepping is bit-identical to per-session stepping - not merely
// close. tests/thermal/rc_batch_test.cpp and the perf_thermal_batch bench
// both gate on exact equality.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "thermal/rc_network.hpp"

namespace nextgov::thermal {

// SoA layout assumptions behind the lane accessors and the euler sweep:
// node i's state is `sessions` contiguous IEEE-754 binary64 values starting
// at base + i * sessions; lane pointers stay valid for the batch's lifetime
// because the arrays are sized once at construction and never reallocate.
static_assert(sizeof(double) == 8 && alignof(double) == 8,
              "RcBatch lane stride math assumes 8-byte doubles");

/// N same-topology sessions stepped lock-step in one SoA sweep.
class RcBatch {
 public:
  /// All sessions start at `initial` (per-session ambient defaults to it
  /// too; override with set_ambient()).
  RcBatch(std::shared_ptr<const RcTopology> topology, std::size_t sessions,
          Celsius initial = Celsius{21.0});

  [[nodiscard]] std::size_t session_count() const noexcept { return sessions_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return topo_->node_count(); }
  [[nodiscard]] const std::shared_ptr<const RcTopology>& topology() const noexcept {
    return topo_;
  }

  void set_ambient(std::size_t session, Celsius t);
  [[nodiscard]] Celsius ambient(std::size_t session) const;

  void set_power(std::size_t session, NodeId node, Watts p);
  [[nodiscard]] Watts power(std::size_t session, NodeId node) const;
  [[nodiscard]] Celsius temperature(std::size_t session, NodeId node) const;
  void set_all_temperatures(std::size_t session, Celsius t);

  // Gather/scatter against a per-session RcNetwork view (same topology
  // pointer required: sharing is what makes the sessions homogeneous).
  /// Adopts `net`'s full state: temperatures, powers and ambient.
  void load_state(std::size_t session, const RcNetwork& net);
  /// Writes the session's temperatures back into `net` (so engine-side
  /// consumers keep reading their own network).
  void store_temperatures(std::size_t session, RcNetwork& net) const;

  /// Bulk per-tick gather/scatter: one call for all sessions (nets in
  /// session order, one entry per session, each sharing the batch
  /// topology - establish that once via load_state). Since the
  /// batch-resident pipeline these are boundary operations (batch entry,
  /// session exit), not per-tick ones: between ticks the state stays in the
  /// lanes and producers/consumers address them directly.
  void gather_powers(std::span<const RcNetwork* const> nets);
  void scatter_temperatures(std::span<RcNetwork* const> nets) const;

  /// Raw SoA lanes: `session_count()` contiguous doubles per node, one
  /// value per session in session order. The batch-resident pipeline works
  /// in these directly - soc::PowerBatch writes cluster powers into
  /// power_lane(junction node) and the engine's observation refresh reads
  /// temperature_lane(node)[session] - so no per-tick gather/scatter
  /// round-trip remains. Pointers stay valid for the batch's lifetime.
  [[nodiscard]] const double* temperature_lane(NodeId node) const noexcept {
    NEXTGOV_ASSERT(node < node_count());
    return temp_.data() + node * sessions_;
  }
  [[nodiscard]] double* power_lane(NodeId node) noexcept {
    NEXTGOV_ASSERT(node < node_count());
    return power_.data() + node * sessions_;
  }

  /// Advances every session by `dt`, sub-stepping exactly like
  /// RcNetwork::step() (same count, same sub-step size).
  void step(SimTime dt);

 private:
  void euler_substep(double dt_s) noexcept;

  std::shared_ptr<const RcTopology> topo_;
  std::size_t sessions_;
  // SoA state: node i, session s lives at [i * sessions_ + s].
  std::vector<double> temp_;
  std::vector<double> power_;
  std::vector<double> flux_;     // scratch, same layout
  std::vector<double> ambient_;  // per session

  // Sub-step count cache for the engines' fixed step, as in RcNetwork.
  std::int64_t cached_dt_us_{-1};
  std::size_t cached_substeps_{1};
  double cached_dt_sub_s_{0.0};
};

}  // namespace nextgov::thermal
