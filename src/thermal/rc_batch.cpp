#include "thermal/rc_batch.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace nextgov::thermal {

RcBatch::RcBatch(std::shared_ptr<const RcTopology> topology, std::size_t sessions,
                 Celsius initial)
    : topo_{std::move(topology)}, sessions_{sessions} {
  require(topo_ != nullptr, "RcBatch needs a topology");
  require(sessions_ > 0, "RcBatch needs at least one session");
  const std::size_t cells = topo_->node_count() * sessions_;
  temp_.assign(cells, initial.value());
  power_.assign(cells, 0.0);
  flux_.assign(cells, 0.0);
  ambient_.assign(sessions_, initial.value());
}

void RcBatch::set_ambient(std::size_t session, Celsius t) {
  require(session < sessions_, "unknown batch session");
  ambient_[session] = t.value();
}

Celsius RcBatch::ambient(std::size_t session) const {
  require(session < sessions_, "unknown batch session");
  return Celsius{ambient_[session]};
}

void RcBatch::set_power(std::size_t session, NodeId node, Watts p) {
  require(session < sessions_ && node < node_count(), "unknown batch session/node");
  power_[node * sessions_ + session] = p.value();
}

Watts RcBatch::power(std::size_t session, NodeId node) const {
  require(session < sessions_ && node < node_count(), "unknown batch session/node");
  return Watts{power_[node * sessions_ + session]};
}

Celsius RcBatch::temperature(std::size_t session, NodeId node) const {
  require(session < sessions_ && node < node_count(), "unknown batch session/node");
  return Celsius{temp_[node * sessions_ + session]};
}

void RcBatch::set_all_temperatures(std::size_t session, Celsius t) {
  require(session < sessions_, "unknown batch session");
  const std::size_t n = node_count();
  for (std::size_t i = 0; i < n; ++i) temp_[i * sessions_ + session] = t.value();
}

void RcBatch::load_state(std::size_t session, const RcNetwork& net) {
  require(session < sessions_, "unknown batch session");
  require(net.topology().get() == topo_.get(),
          "RcBatch::load_state: network does not share the batch topology");
  const std::span<const double> temps = net.temperatures_raw();
  const std::span<const double> powers = net.powers_raw();
  const std::size_t n = node_count();
  for (std::size_t i = 0; i < n; ++i) {
    temp_[i * sessions_ + session] = temps[i];
    power_[i * sessions_ + session] = powers[i];
  }
  ambient_[session] = net.ambient().value();
}

void RcBatch::store_temperatures(std::size_t session, RcNetwork& net) const {
  NEXTGOV_ASSERT(session < sessions_);
  NEXTGOV_ASSERT(net.temperatures_raw().size() == node_count());
  // Strided gather out of the SoA block into the network's node order.
  const std::size_t n = node_count();
  // set_temperatures_raw wants a contiguous span; write through a small
  // stack-friendly scratch only when n is large enough to matter - node
  // counts are tiny (6 for the Note 9), so a fixed local buffer suffices.
  double scratch[32];
  if (n <= 32) {
    for (std::size_t i = 0; i < n; ++i) scratch[i] = temp_[i * sessions_ + session];
    net.set_temperatures_raw(std::span<const double>{scratch, n});
  } else {
    std::vector<double> big(n);
    for (std::size_t i = 0; i < n; ++i) big[i] = temp_[i * sessions_ + session];
    net.set_temperatures_raw(big);
  }
}

void RcBatch::gather_powers(std::span<const RcNetwork* const> nets) {
  NEXTGOV_ASSERT(nets.size() == sessions_);
  const std::size_t n = node_count();
  const std::size_t S = sessions_;
  double* const power = power_.data();
  for (std::size_t s = 0; s < S; ++s) {
    const double* const src = nets[s]->powers_raw().data();
    for (std::size_t i = 0; i < n; ++i) power[i * S + s] = src[i];
  }
}

void RcBatch::scatter_temperatures(std::span<RcNetwork* const> nets) const {
  NEXTGOV_ASSERT(nets.size() == sessions_);
  const std::size_t n = node_count();
  const std::size_t S = sessions_;
  const double* const temp = temp_.data();
  for (std::size_t s = 0; s < S; ++s) {
    // Direct write into the network's state (friend access): the strided
    // read out of the SoA block is the unavoidable part; everything else
    // is a plain contiguous store.
    double* const dst = nets[s]->temp_.data();
    NEXTGOV_ASSERT(nets[s]->temp_.size() == n);
    for (std::size_t i = 0; i < n; ++i) dst[i] = temp[i * S + s];
  }
}

void RcBatch::euler_substep(double dt_s) noexcept {
  const RcTopology& t = *topo_;
  const std::size_t n = t.node_count();
  const std::size_t S = sessions_;
  const std::uint32_t* const row_ptr = t.row_ptr().data();
  const std::uint32_t* const nbr_node = t.nbr_node().data();
  const double* const nbr_g = t.nbr_g().data();
  const double* const g_amb_all = t.g_ambient().data();
  const double* const inv_cap_all = t.inv_cap().data();
  const double* const amb = ambient_.data();
  const double* const power = power_.data();
  double* const temp = temp_.data();
  double* const flux = flux_.data();

  // Per-session arithmetic order mirrors RcNetwork::euler_substep exactly:
  // flux = P + G_amb (T_amb - T), then += G_k (T_nbr - T) in CSR order,
  // then T += dt * flux / C - only the loop over sessions is new, and it
  // is the innermost, contiguous, auto-vectorizable axis.
  for (std::size_t i = 0; i < n; ++i) {
    const double g_amb = g_amb_all[i];
    const double* const p_i = power + i * S;
    const double* const t_i = temp + i * S;
    double* const f_i = flux + i * S;
    for (std::size_t s = 0; s < S; ++s) {
      f_i[s] = p_i[s] + g_amb * (amb[s] - t_i[s]);
    }
    const std::uint32_t end = row_ptr[i + 1];
    for (std::uint32_t k = row_ptr[i]; k < end; ++k) {
      const double g = nbr_g[k];
      const double* const t_nbr = temp + static_cast<std::size_t>(nbr_node[k]) * S;
      for (std::size_t s = 0; s < S; ++s) {
        f_i[s] += g * (t_nbr[s] - t_i[s]);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double inv_cap = inv_cap_all[i];
    const double* const f_i = flux + i * S;
    double* const t_i = temp + i * S;
    for (std::size_t s = 0; s < S; ++s) {
      t_i[s] += dt_s * f_i[s] * inv_cap;
    }
  }
}

void RcBatch::step(SimTime dt) {
  NEXTGOV_ASSERT(dt.us() >= 0);
  if (temp_.empty() || dt.us() == 0) return;
  if (dt.us() != cached_dt_us_) {
    const double total_s = dt.seconds();
    cached_substeps_ = topo_->substeps_for(total_s);
    cached_dt_sub_s_ = total_s / static_cast<double>(cached_substeps_);
    cached_dt_us_ = dt.us();
  }
  for (std::size_t k = 0; k < cached_substeps_; ++k) euler_substep(cached_dt_sub_s_);
}

}  // namespace nextgov::thermal
