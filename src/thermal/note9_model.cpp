#include "thermal/note9_model.hpp"

namespace nextgov::thermal {

const std::shared_ptr<const RcTopology>& note9_topology() {
  // Capacities [J/K]: junction nodes are small (fast, seconds-scale), the
  // chassis and battery hold most of the 201 g device's heat mass and warm
  // over minutes - which is why the paper's 5-minute game sessions reach
  // much higher peaks than the 1.5-3 minute app sessions.
  // Conductances [W/K]: junction-to-board paths are the dominant thermal
  // resistances (they set the hotspot delta the big cluster shows under
  // load); board-to-skin and skin-to-ambient set the session-scale warmup.
  // Node order fixes the Note9Nodes ids: big, little, gpu, soc_board,
  // battery, skin.
  static const std::shared_ptr<const RcTopology> kTopology = RcTopology::make(
      {
          {"big", 1.0, 0.0},
          {"little", 0.8, 0.0},
          {"gpu", 1.4, 0.0},
          {"soc_board", 14.0, 0.0},
          {"battery", 60.0, /*g_ambient=*/0.12},
          {"skin", 90.0, /*g_ambient=*/0.42},
      },
      {
          {/*big*/ 0, /*soc_board*/ 3, 0.11},
          {/*little*/ 1, /*soc_board*/ 3, 0.30},
          {/*gpu*/ 2, /*soc_board*/ 3, 0.14},
          {/*soc_board*/ 3, /*skin*/ 5, 0.22},
          {/*soc_board*/ 3, /*battery*/ 4, 0.20},
          {/*battery*/ 4, /*skin*/ 5, 0.35},
      });
  return kTopology;
}

Note9Thermal make_note9_thermal(Celsius ambient) {
  RcNetwork net{note9_topology(), ambient};
  const Note9Nodes n{.big = 0, .little = 1, .gpu = 2, .soc_board = 3, .battery = 4, .skin = 5};
  return Note9Thermal{std::move(net), n};
}

}  // namespace nextgov::thermal
