#include "thermal/note9_model.hpp"

namespace nextgov::thermal {

Note9Thermal make_note9_thermal(Celsius ambient) {
  RcNetwork net{ambient};
  Note9Nodes n{};
  // Capacities [J/K]: junction nodes are small (fast, seconds-scale), the
  // chassis and battery hold most of the 201 g device's heat mass and warm
  // over minutes - which is why the paper's 5-minute game sessions reach
  // much higher peaks than the 1.5-3 minute app sessions.
  n.big = net.add_node("big", 1.0);
  n.little = net.add_node("little", 0.8);
  n.gpu = net.add_node("gpu", 1.4);
  n.soc_board = net.add_node("soc_board", 14.0);
  n.battery = net.add_node("battery", 60.0, /*g_ambient=*/0.12);
  n.skin = net.add_node("skin", 90.0, /*g_ambient=*/0.42);
  // Conductances [W/K]: junction-to-board paths are the dominant thermal
  // resistances (they set the hotspot delta the big cluster shows under
  // load); board-to-skin and skin-to-ambient set the session-scale warmup.
  net.connect(n.big, n.soc_board, 0.11);
  net.connect(n.little, n.soc_board, 0.30);
  net.connect(n.gpu, n.soc_board, 0.14);
  net.connect(n.soc_board, n.skin, 0.22);
  net.connect(n.soc_board, n.battery, 0.20);
  net.connect(n.battery, n.skin, 0.35);
  return Note9Thermal{std::move(net), n};
}

}  // namespace nextgov::thermal
