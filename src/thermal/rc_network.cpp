#include "thermal/rc_network.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace nextgov::thermal {

RcNetwork::RcNetwork(Celsius ambient) : ambient_{ambient} {}

NodeId RcNetwork::add_node(std::string name, double capacity_j_per_k,
                           double g_ambient_w_per_k) {
  require(capacity_j_per_k > 0.0, "thermal capacity must be positive");
  require(g_ambient_w_per_k >= 0.0, "ambient conductance must be non-negative");
  nodes_.push_back(Node{std::move(name), capacity_j_per_k, g_ambient_w_per_k, ambient_.value(),
                        0.0});
  flux_.resize(nodes_.size());
  return nodes_.size() - 1;
}

void RcNetwork::connect(NodeId a, NodeId b, double g_w_per_k) {
  require(a < nodes_.size() && b < nodes_.size(), "connect: unknown node id");
  require(a != b, "connect: cannot connect a node to itself");
  require(g_w_per_k > 0.0, "thermal conductance must be positive");
  edges_.push_back(Edge{a, b, g_w_per_k});
}

const std::string& RcNetwork::node_name(NodeId id) const {
  require(id < nodes_.size(), "unknown node id");
  return nodes_[id].name;
}

Celsius RcNetwork::temperature(NodeId id) const {
  require(id < nodes_.size(), "unknown node id");
  return Celsius{nodes_[id].temp_c};
}

void RcNetwork::set_power(NodeId id, Watts p) {
  require(id < nodes_.size(), "unknown node id");
  nodes_[id].power_w = p.value();
}

Watts RcNetwork::power(NodeId id) const {
  require(id < nodes_.size(), "unknown node id");
  return Watts{nodes_[id].power_w};
}

double RcNetwork::max_stable_dt_seconds() const noexcept {
  // Explicit Euler is stable when dt < C_i / (sum of conductances at i) for
  // every node; use half of the bound as safety margin.
  double worst = 1e9;
  std::vector<double> g_total(nodes_.size(), 0.0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) g_total[i] = nodes_[i].g_ambient;
  for (const auto& e : edges_) {
    g_total[e.a] += e.g;
    g_total[e.b] += e.g;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (g_total[i] > 0.0) worst = std::min(worst, nodes_[i].capacity / g_total[i]);
  }
  return 0.5 * worst;
}

void RcNetwork::euler_substep(double dt_s) noexcept {
  std::fill(flux_.begin(), flux_.end(), 0.0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    flux_[i] = nodes_[i].power_w + nodes_[i].g_ambient * (ambient_.value() - nodes_[i].temp_c);
  }
  for (const auto& e : edges_) {
    const double q = e.g * (nodes_[e.b].temp_c - nodes_[e.a].temp_c);
    flux_[e.a] += q;
    flux_[e.b] -= q;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i].temp_c += dt_s * flux_[i] / nodes_[i].capacity;
  }
}

void RcNetwork::step(SimTime dt) {
  NEXTGOV_ASSERT(dt.us() >= 0);
  if (nodes_.empty() || dt.us() == 0) return;
  const double total_s = dt.seconds();
  const double dt_max = max_stable_dt_seconds();
  const auto substeps = std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(total_s / dt_max)));
  const double dt_sub = total_s / static_cast<double>(substeps);
  for (std::size_t k = 0; k < substeps; ++k) euler_substep(dt_sub);
}

void RcNetwork::set_all_temperatures(Celsius t) noexcept {
  for (auto& n : nodes_) n.temp_c = t.value();
}

std::vector<Celsius> RcNetwork::steady_state() const {
  // Solve A * T = b where A has the conductance Laplacian plus the ambient
  // diagonal, and b = P + G_amb * T_amb.
  const std::size_t n = nodes_.size();
  require(n > 0, "steady_state of empty network");
  std::vector<double> a(n * n, 0.0);
  std::vector<double> b(n, 0.0);
  double total_g_ambient = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    a[i * n + i] = nodes_[i].g_ambient;
    b[i] = nodes_[i].power_w + nodes_[i].g_ambient * ambient_.value();
    total_g_ambient += nodes_[i].g_ambient;
  }
  require(total_g_ambient > 0.0, "network has no path to ambient; no steady state exists");
  for (const auto& e : edges_) {
    a[e.a * n + e.a] += e.g;
    a[e.b * n + e.b] += e.g;
    a[e.a * n + e.b] -= e.g;
    a[e.b * n + e.a] -= e.g;
  }
  // Gaussian elimination with partial pivoting; n <= ~10 in practice.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) pivot = r;
    }
    require(std::fabs(a[pivot * n + col]) > 1e-12,
            "singular thermal system (disconnected node without ambient path)");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] / a[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= factor * a[col * n + c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> t(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a[ri * n + c] * t[c];
    t[ri] = sum / a[ri * n + ri];
  }
  std::vector<Celsius> out;
  out.reserve(n);
  for (double v : t) out.emplace_back(v);
  return out;
}

}  // namespace nextgov::thermal
