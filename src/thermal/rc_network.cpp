#include "thermal/rc_network.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace nextgov::thermal {

RcNetwork::RcNetwork(Celsius ambient) : ambient_{ambient} {}

NodeId RcNetwork::add_node(std::string name, double capacity_j_per_k,
                           double g_ambient_w_per_k) {
  require(capacity_j_per_k > 0.0, "thermal capacity must be positive");
  require(g_ambient_w_per_k >= 0.0, "ambient conductance must be non-negative");
  nodes_.push_back(Node{std::move(name), capacity_j_per_k, g_ambient_w_per_k, ambient_.value(),
                        0.0});
  topo_built_ = false;
  return nodes_.size() - 1;
}

void RcNetwork::connect(NodeId a, NodeId b, double g_w_per_k) {
  require(a < nodes_.size() && b < nodes_.size(), "connect: unknown node id");
  require(a != b, "connect: cannot connect a node to itself");
  require(g_w_per_k > 0.0, "thermal conductance must be positive");
  edges_.push_back(Edge{a, b, g_w_per_k});
  topo_built_ = false;
}

const std::string& RcNetwork::node_name(NodeId id) const {
  require(id < nodes_.size(), "unknown node id");
  return nodes_[id].name;
}

Celsius RcNetwork::temperature(NodeId id) const {
  require(id < nodes_.size(), "unknown node id");
  return Celsius{nodes_[id].temp_c};
}

void RcNetwork::set_power(NodeId id, Watts p) {
  require(id < nodes_.size(), "unknown node id");
  nodes_[id].power_w = p.value();
}

Watts RcNetwork::power(NodeId id) const {
  require(id < nodes_.size(), "unknown node id");
  return Watts{nodes_[id].power_w};
}

void RcNetwork::ensure_topology() const {
  if (topo_built_) return;
  const std::size_t n = nodes_.size();

  // Per-node degree -> CSR row pointers (undirected: each edge twice).
  row_ptr_.assign(n + 1, 0);
  for (const auto& e : edges_) {
    ++row_ptr_[e.a + 1];
    ++row_ptr_[e.b + 1];
  }
  for (std::size_t i = 0; i < n; ++i) row_ptr_[i + 1] += row_ptr_[i];
  nbr_node_.resize(edges_.size() * 2);
  nbr_g_.resize(edges_.size() * 2);
  std::vector<std::uint32_t> cursor(row_ptr_.begin(), row_ptr_.end() - 1);
  for (const auto& e : edges_) {
    nbr_node_[cursor[e.a]] = static_cast<std::uint32_t>(e.b);
    nbr_g_[cursor[e.a]++] = e.g;
    nbr_node_[cursor[e.b]] = static_cast<std::uint32_t>(e.a);
    nbr_g_[cursor[e.b]++] = e.g;
  }

  // Per-node conductance sums feed the explicit-Euler stability bound.
  std::vector<double> g_total(n, 0.0);
  inv_cap_.resize(n);
  total_g_ambient_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    g_total[i] = nodes_[i].g_ambient;
    inv_cap_[i] = 1.0 / nodes_[i].capacity;
    total_g_ambient_ += nodes_[i].g_ambient;
  }
  for (const auto& e : edges_) {
    g_total[e.a] += e.g;
    g_total[e.b] += e.g;
  }

  // Stability: dt < C_i / (sum of conductances at i) per node; half of the
  // bound as safety margin.
  double worst = 1e9;
  for (std::size_t i = 0; i < n; ++i) {
    if (g_total[i] > 0.0) worst = std::min(worst, nodes_[i].capacity / g_total[i]);
  }
  max_stable_dt_s_ = 0.5 * worst;

  // Pristine dense system for steady_state(): A has the conductance
  // Laplacian plus the ambient diagonal. Built once per topology; solves
  // copy it into scratch before eliminating.
  dense_a_.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) dense_a_[i * n + i] = nodes_[i].g_ambient;
  for (const auto& e : edges_) {
    dense_a_[e.a * n + e.a] += e.g;
    dense_a_[e.b * n + e.b] += e.g;
    dense_a_[e.a * n + e.b] -= e.g;
    dense_a_[e.b * n + e.a] -= e.g;
  }

  flux_.assign(n, 0.0);
  cached_dt_us_ = -1;  // sub-step count depends on the stability bound
  topo_built_ = true;
}

double RcNetwork::max_stable_dt_seconds() const noexcept {
  ensure_topology();
  return max_stable_dt_s_;
}

void RcNetwork::euler_substep(double dt_s) noexcept {
  const std::size_t n = nodes_.size();
  const double amb = ambient_.value();
  for (std::size_t i = 0; i < n; ++i) {
    const Node& nd = nodes_[i];
    double f = nd.power_w + nd.g_ambient * (amb - nd.temp_c);
    const std::uint32_t end = row_ptr_[i + 1];
    for (std::uint32_t k = row_ptr_[i]; k < end; ++k) {
      f += nbr_g_[k] * (nodes_[nbr_node_[k]].temp_c - nd.temp_c);
    }
    flux_[i] = f;
  }
  for (std::size_t i = 0; i < n; ++i) {
    nodes_[i].temp_c += dt_s * flux_[i] * inv_cap_[i];
  }
}

void RcNetwork::step(SimTime dt) {
  NEXTGOV_ASSERT(dt.us() >= 0);
  if (nodes_.empty() || dt.us() == 0) return;
  ensure_topology();
  if (dt.us() != cached_dt_us_) {
    const double total_s = dt.seconds();
    cached_substeps_ = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(total_s / max_stable_dt_s_)));
    cached_dt_sub_s_ = total_s / static_cast<double>(cached_substeps_);
    cached_dt_us_ = dt.us();
  }
  for (std::size_t k = 0; k < cached_substeps_; ++k) euler_substep(cached_dt_sub_s_);
}

void RcNetwork::set_all_temperatures(Celsius t) noexcept {
  for (auto& n : nodes_) n.temp_c = t.value();
}

std::vector<Celsius> RcNetwork::steady_state() const {
  // Solve A * T = b where A is the cached pristine system and
  // b = P + G_amb * T_amb.
  const std::size_t n = nodes_.size();
  require(n > 0, "steady_state of empty network");
  ensure_topology();
  require(total_g_ambient_ > 0.0, "network has no path to ambient; no steady state exists");

  ss_a_ = dense_a_;  // elimination scribbles on the matrix; keep the original
  ss_b_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ss_b_[i] = nodes_[i].power_w + nodes_[i].g_ambient * ambient_.value();
  }
  auto& a = ss_a_;
  auto& b = ss_b_;

  // Gaussian elimination with partial pivoting; n <= ~10 in practice.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) pivot = r;
    }
    require(std::fabs(a[pivot * n + col]) > 1e-12,
            "singular thermal system (disconnected node without ambient path)");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] / a[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= factor * a[col * n + c];
      b[r] -= factor * b[col];
    }
  }
  ss_t_.assign(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a[ri * n + c] * ss_t_[c];
    ss_t_[ri] = sum / a[ri * n + ri];
  }
  std::vector<Celsius> out;
  out.reserve(n);
  for (double v : ss_t_) out.emplace_back(v);
  return out;
}

}  // namespace nextgov::thermal
