#include "thermal/rc_network.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"

namespace nextgov::thermal {

// --- RcTopology ------------------------------------------------------------

RcTopology::RcTopology(std::vector<RcNodeSpec> nodes, std::vector<RcEdgeSpec> edges)
    : nodes_{std::move(nodes)}, edges_{std::move(edges)} {
  const std::size_t n = nodes_.size();
  for (const auto& nd : nodes_) {
    require(nd.capacity > 0.0, "thermal capacity must be positive");
    require(nd.g_ambient >= 0.0, "ambient conductance must be non-negative");
  }
  for (const auto& e : edges_) {
    require(e.a < n && e.b < n, "connect: unknown node id");
    require(e.a != e.b, "connect: cannot connect a node to itself");
    require(e.g > 0.0, "thermal conductance must be positive");
  }

  // Per-node degree -> CSR row pointers (undirected: each edge twice).
  row_ptr_.assign(n + 1, 0);
  for (const auto& e : edges_) {
    ++row_ptr_[e.a + 1];
    ++row_ptr_[e.b + 1];
  }
  for (std::size_t i = 0; i < n; ++i) row_ptr_[i + 1] += row_ptr_[i];
  nbr_node_.resize(edges_.size() * 2);
  nbr_g_.resize(edges_.size() * 2);
  std::vector<std::uint32_t> cursor(row_ptr_.begin(), row_ptr_.end() - 1);
  for (const auto& e : edges_) {
    nbr_node_[cursor[e.a]] = static_cast<std::uint32_t>(e.b);
    nbr_g_[cursor[e.a]++] = e.g;
    nbr_node_[cursor[e.b]] = static_cast<std::uint32_t>(e.a);
    nbr_g_[cursor[e.b]++] = e.g;
  }

  // Per-node conductance sums feed the explicit-Euler stability bound.
  std::vector<double> g_total(n, 0.0);
  inv_cap_.resize(n);
  g_ambient_.resize(n);
  total_g_ambient_ = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    g_total[i] = nodes_[i].g_ambient;
    inv_cap_[i] = 1.0 / nodes_[i].capacity;
    g_ambient_[i] = nodes_[i].g_ambient;
    total_g_ambient_ += nodes_[i].g_ambient;
  }
  for (const auto& e : edges_) {
    g_total[e.a] += e.g;
    g_total[e.b] += e.g;
  }

  // Stability: dt < C_i / (sum of conductances at i) per node; half of the
  // bound as safety margin.
  double worst = 1e9;
  for (std::size_t i = 0; i < n; ++i) {
    if (g_total[i] > 0.0) worst = std::min(worst, nodes_[i].capacity / g_total[i]);
  }
  max_stable_dt_s_ = 0.5 * worst;

  // Pristine dense system for steady_state(): A has the conductance
  // Laplacian plus the ambient diagonal. Built once per topology; solves
  // copy it into scratch before eliminating.
  dense_a_.assign(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) dense_a_[i * n + i] = nodes_[i].g_ambient;
  for (const auto& e : edges_) {
    dense_a_[e.a * n + e.a] += e.g;
    dense_a_[e.b * n + e.b] += e.g;
    dense_a_[e.a * n + e.b] -= e.g;
    dense_a_[e.b * n + e.a] -= e.g;
  }
}

std::shared_ptr<const RcTopology> RcTopology::make(std::vector<RcNodeSpec> nodes,
                                                   std::vector<RcEdgeSpec> edges) {
  return std::make_shared<const RcTopology>(std::move(nodes), std::move(edges));
}

const RcNodeSpec& RcTopology::node(NodeId id) const {
  require(id < nodes_.size(), "unknown node id");
  return nodes_[id];
}

std::size_t RcTopology::substeps_for(double total_s) const noexcept {
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(total_s / max_stable_dt_s_)));
}

// --- RcNetwork -------------------------------------------------------------

RcNetwork::RcNetwork(Celsius ambient) : ambient_{ambient} {}

RcNetwork::RcNetwork(std::shared_ptr<const RcTopology> topology, Celsius ambient)
    : ambient_{ambient}, topo_{std::move(topology)} {
  require(topo_ != nullptr, "RcNetwork needs a topology");
  temp_.assign(topo_->node_count(), ambient_.value());
  power_.assign(topo_->node_count(), 0.0);
}

void RcNetwork::begin_mutation() {
  if (topo_ == nullptr) return;  // already in pending mode
  pending_nodes_ = topo_->nodes();
  pending_edges_ = topo_->edges();
  topo_.reset();
}

NodeId RcNetwork::add_node(std::string name, double capacity_j_per_k,
                           double g_ambient_w_per_k) {
  require(capacity_j_per_k > 0.0, "thermal capacity must be positive");
  require(g_ambient_w_per_k >= 0.0, "ambient conductance must be non-negative");
  begin_mutation();
  pending_nodes_.push_back(RcNodeSpec{std::move(name), capacity_j_per_k, g_ambient_w_per_k});
  temp_.push_back(ambient_.value());
  power_.push_back(0.0);
  return temp_.size() - 1;
}

void RcNetwork::connect(NodeId a, NodeId b, double g_w_per_k) {
  require(a < node_count() && b < node_count(), "connect: unknown node id");
  require(a != b, "connect: cannot connect a node to itself");
  require(g_w_per_k > 0.0, "thermal conductance must be positive");
  begin_mutation();
  pending_edges_.push_back(RcEdgeSpec{a, b, g_w_per_k});
}

const std::string& RcNetwork::node_name(NodeId id) const {
  require(id < node_count(), "unknown node id");
  return topo_ != nullptr ? topo_->node(id).name : pending_nodes_[id].name;
}

Celsius RcNetwork::temperature(NodeId id) const {
  require(id < node_count(), "unknown node id");
  return Celsius{temp_[id]};
}

void RcNetwork::set_power(NodeId id, Watts p) {
  require(id < node_count(), "unknown node id");
  power_[id] = p.value();
}

Watts RcNetwork::power(NodeId id) const {
  require(id < node_count(), "unknown node id");
  return Watts{power_[id]};
}

void RcNetwork::ensure_topology() const {
  if (topo_ != nullptr) return;
  topo_ = RcTopology::make(std::move(pending_nodes_), std::move(pending_edges_));
  pending_nodes_.clear();
  pending_edges_.clear();
  flux_.assign(topo_->node_count(), 0.0);
  cached_dt_us_ = -1;  // sub-step count depends on the stability bound
}

const std::shared_ptr<const RcTopology>& RcNetwork::topology() const {
  ensure_topology();
  return topo_;
}

double RcNetwork::max_stable_dt_seconds() const noexcept {
  ensure_topology();
  return topo_->max_stable_dt_seconds();
}

void RcNetwork::euler_substep(double dt_s) noexcept {
  const RcTopology& t = *topo_;
  const std::size_t n = temp_.size();
  const double amb = ambient_.value();
  const std::uint32_t* const row_ptr = t.row_ptr().data();
  const std::uint32_t* const nbr_node = t.nbr_node().data();
  const double* const nbr_g = t.nbr_g().data();
  const double* const g_amb = t.g_ambient().data();
  const double* const inv_cap = t.inv_cap().data();
  const double* const power = power_.data();
  double* const temp = temp_.data();
  double* const flux = flux_.data();
  for (std::size_t i = 0; i < n; ++i) {
    double f = power[i] + g_amb[i] * (amb - temp[i]);
    const std::uint32_t end = row_ptr[i + 1];
    for (std::uint32_t k = row_ptr[i]; k < end; ++k) {
      f += nbr_g[k] * (temp[nbr_node[k]] - temp[i]);
    }
    flux[i] = f;
  }
  for (std::size_t i = 0; i < n; ++i) {
    temp[i] += dt_s * flux[i] * inv_cap[i];
  }
}

void RcNetwork::step(SimTime dt) {
  NEXTGOV_ASSERT(dt.us() >= 0);
  if (temp_.empty() || dt.us() == 0) return;
  ensure_topology();
  if (dt.us() != cached_dt_us_) {
    const double total_s = dt.seconds();
    cached_substeps_ = topo_->substeps_for(total_s);
    cached_dt_sub_s_ = total_s / static_cast<double>(cached_substeps_);
    cached_dt_us_ = dt.us();
  }
  if (flux_.size() != temp_.size()) flux_.assign(temp_.size(), 0.0);
  for (std::size_t k = 0; k < cached_substeps_; ++k) euler_substep(cached_dt_sub_s_);
}

void RcNetwork::set_all_temperatures(Celsius t) noexcept {
  std::fill(temp_.begin(), temp_.end(), t.value());
}

void RcNetwork::set_temperatures_raw(std::span<const double> temps) {
  require(temps.size() == temp_.size(), "set_temperatures_raw: size mismatch");
  std::copy(temps.begin(), temps.end(), temp_.begin());
}

std::vector<Celsius> RcNetwork::steady_state() const {
  // Solve A * T = b where A is the cached pristine system and
  // b = P + G_amb * T_amb.
  const std::size_t n = node_count();
  require(n > 0, "steady_state of empty network");
  ensure_topology();
  require(topo_->total_g_ambient() > 0.0,
          "network has no path to ambient; no steady state exists");

  // Elimination scribbles on the matrix; keep the topology's original.
  const std::span<const double> dense = topo_->dense_system();
  ss_a_.assign(dense.begin(), dense.end());
  ss_b_.resize(n);
  const std::span<const double> g_amb = topo_->g_ambient();
  for (std::size_t i = 0; i < n; ++i) {
    ss_b_[i] = power_[i] + g_amb[i] * ambient_.value();
  }
  auto& a = ss_a_;
  auto& b = ss_b_;

  // Gaussian elimination with partial pivoting; n <= ~10 in practice.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) pivot = r;
    }
    require(std::fabs(a[pivot * n + col]) > 1e-12,
            "singular thermal system (disconnected node without ambient path)");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a[r * n + col] / a[col * n + col];
      if (factor == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= factor * a[col * n + c];
      b[r] -= factor * b[col];
    }
  }
  ss_t_.assign(n, 0.0);
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a[ri * n + c] * ss_t_[c];
    ss_t_[ri] = sum / a[ri * n + ri];
  }
  std::vector<Celsius> out;
  out.reserve(n);
  for (double v : ss_t_) out.emplace_back(v);
  return out;
}

}  // namespace nextgov::thermal
