// rc_network.hpp - lumped-parameter RC thermal network.
//
// Standard compact thermal model for SoCs (HotSpot-style): each node has a
// heat capacity C [J/K]; edges have thermal conductance G [W/K]; every node
// may also leak to the ambient boundary. Heat equation per node i:
//
//   C_i dT_i/dt = P_i + sum_j G_ij (T_j - T_i) + G_i,amb (T_amb - T_i)
//
// Integrated with forward Euler and automatic sub-stepping so the scheme
// stays stable (dt_sub < min_i C_i / sum G_i) for any caller-provided step.
// steady_state() solves the linear system directly (Gaussian elimination,
// networks are tiny) and is used for calibration and property tests.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "common/units.hpp"

namespace nextgov::thermal {

using NodeId = std::size_t;

/// Mutable RC network. Build once (add_node/connect), then step().
class RcNetwork {
 public:
  explicit RcNetwork(Celsius ambient);

  /// Adds a node with heat capacity `capacity_j_per_k`, conductance
  /// `g_ambient_w_per_k` to ambient (0 for internal nodes), initialized at
  /// the ambient temperature. Returns its id.
  NodeId add_node(std::string name, double capacity_j_per_k, double g_ambient_w_per_k = 0.0);

  /// Connects two nodes with conductance `g_w_per_k` (> 0).
  void connect(NodeId a, NodeId b, double g_w_per_k);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] Celsius temperature(NodeId id) const;
  [[nodiscard]] Celsius ambient() const noexcept { return ambient_; }
  void set_ambient(Celsius t) noexcept { ambient_ = t; }

  /// Sets the heat injected into `id` for the next step(s) [W].
  void set_power(NodeId id, Watts p);
  [[nodiscard]] Watts power(NodeId id) const;

  /// Advances the network by `dt`, sub-stepping as needed for stability.
  void step(SimTime dt);

  /// Forces all node temperatures to `t` (session reset).
  void set_all_temperatures(Celsius t) noexcept;

  /// Solves for the equilibrium temperatures under the current power inputs
  /// (does not modify the transient state). Throws ConfigError when the
  /// network has no path to ambient (no equilibrium exists).
  [[nodiscard]] std::vector<Celsius> steady_state() const;

  /// Largest stable explicit-Euler step for the current topology [s].
  [[nodiscard]] double max_stable_dt_seconds() const noexcept;

 private:
  struct Node {
    std::string name;
    double capacity;   // J/K
    double g_ambient;  // W/K
    double temp_c;     // current temperature, degrees C
    double power_w;    // injected heat, W
  };
  struct Edge {
    NodeId a;
    NodeId b;
    double g;  // W/K
  };

  void euler_substep(double dt_s) noexcept;

  Celsius ambient_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  mutable std::vector<double> flux_;  // scratch: net heat into each node [W]
};

}  // namespace nextgov::thermal
