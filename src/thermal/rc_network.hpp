// rc_network.hpp - lumped-parameter RC thermal network.
//
// Standard compact thermal model for SoCs (HotSpot-style): each node has a
// heat capacity C [J/K]; edges have thermal conductance G [W/K]; every node
// may also leak to the ambient boundary. Heat equation per node i:
//
//   C_i dT_i/dt = P_i + sum_j G_ij (T_j - T_i) + G_i,amb (T_amb - T_i)
//
// Integrated with forward Euler and automatic sub-stepping so the scheme
// stays stable (dt_sub < min_i C_i / sum G_i) for any caller-provided step.
//
// The solver is split into structure and state:
//
//   * RcTopology is the immutable solver structure - the per-node CSR
//     neighbor layout with edge conductances, the per-node capacitance
//     inverses, the explicit-Euler stability bound and the pristine dense
//     steady-state system. It is shared ref-counted
//     (std::shared_ptr<const RcTopology>) across every session simulating
//     the same device, so fleet-scale sweeps build the CSR exactly once.
//   * RcNetwork is a thin per-session state view over a topology: node
//     temperatures, injected powers, the ambient boundary and the cached
//     sub-step count for the engine's fixed step. Networks built
//     incrementally (add_node/connect) own a private topology that is
//     (re)built lazily; mutating a network that shares its topology copies
//     the structure first, so sharing never changes another session.
//   * rc_batch.hpp steps many same-topology sessions in one
//     structure-of-arrays sweep, bit-identical to per-session step().
//
// steady_state() solves the linear system directly (Gaussian elimination,
// networks are tiny) and is used for calibration and property tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "common/units.hpp"

namespace nextgov::thermal {

using NodeId = std::size_t;

/// One node's immutable structural parameters.
struct RcNodeSpec {
  std::string name;
  double capacity;   // J/K
  double g_ambient;  // W/K to the ambient boundary (0 for internal nodes)
};

/// One undirected edge's structural parameters.
struct RcEdgeSpec {
  NodeId a;
  NodeId b;
  double g;  // W/K
};

/// The immutable, shareable solver structure: node/edge specs plus every
/// precomputed view the steppers need. Build once (directly or via
/// RcNetwork's incremental add_node/connect), share across sessions with
/// std::shared_ptr<const RcTopology>; per-session state lives in RcNetwork
/// (or, batched, in RcBatch).
class RcTopology {
 public:
  /// Validates and precomputes; throws ConfigError on invalid parameters
  /// (non-positive capacity/conductance, unknown ids, self-loops).
  RcTopology(std::vector<RcNodeSpec> nodes, std::vector<RcEdgeSpec> edges);

  /// Convenience: shared, immutable instance.
  [[nodiscard]] static std::shared_ptr<const RcTopology> make(std::vector<RcNodeSpec> nodes,
                                                              std::vector<RcEdgeSpec> edges);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const RcNodeSpec& node(NodeId id) const;
  [[nodiscard]] const std::vector<RcNodeSpec>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] const std::vector<RcEdgeSpec>& edges() const noexcept { return edges_; }

  // Precomputed views (hot-loop layout): node i's neighbors are
  // nbr_node()[row_ptr()[i] .. row_ptr()[i+1]) with matching conductances.
  [[nodiscard]] std::span<const std::uint32_t> row_ptr() const noexcept { return row_ptr_; }
  [[nodiscard]] std::span<const std::uint32_t> nbr_node() const noexcept { return nbr_node_; }
  [[nodiscard]] std::span<const double> nbr_g() const noexcept { return nbr_g_; }
  [[nodiscard]] std::span<const double> inv_cap() const noexcept { return inv_cap_; }
  [[nodiscard]] std::span<const double> g_ambient() const noexcept { return g_ambient_; }
  [[nodiscard]] double total_g_ambient() const noexcept { return total_g_ambient_; }

  /// Largest stable explicit-Euler step [s] (half the per-node bound).
  [[nodiscard]] double max_stable_dt_seconds() const noexcept { return max_stable_dt_s_; }
  /// Sub-steps needed to advance `total_s` seconds stably.
  [[nodiscard]] std::size_t substeps_for(double total_s) const noexcept;

  /// Pristine dense steady-state system (row-major n x n): conductance
  /// Laplacian plus the ambient diagonal. Solvers copy before eliminating.
  [[nodiscard]] std::span<const double> dense_system() const noexcept { return dense_a_; }

 private:
  std::vector<RcNodeSpec> nodes_;
  std::vector<RcEdgeSpec> edges_;

  std::vector<std::uint32_t> row_ptr_;
  std::vector<std::uint32_t> nbr_node_;
  std::vector<double> nbr_g_;
  std::vector<double> inv_cap_;
  std::vector<double> g_ambient_;
  double total_g_ambient_{0.0};
  double max_stable_dt_s_{0.0};
  std::vector<double> dense_a_;
};

/// Per-session RC network state over a (possibly shared) RcTopology. Build
/// once (add_node/connect or the shared-topology constructor), then step().
class RcNetwork {
 public:
  /// Empty network for incremental construction (add_node/connect); the
  /// private topology is built lazily on first use.
  explicit RcNetwork(Celsius ambient);

  /// State view over a shared topology, all nodes at `ambient`. The usual
  /// way fleet-scale sweeps create sessions: one topology, N states.
  RcNetwork(std::shared_ptr<const RcTopology> topology, Celsius ambient);

  /// Adds a node with heat capacity `capacity_j_per_k`, conductance
  /// `g_ambient_w_per_k` to ambient (0 for internal nodes), initialized at
  /// the ambient temperature. Returns its id. Copies a shared topology
  /// before extending it (other sessions are never affected).
  NodeId add_node(std::string name, double capacity_j_per_k, double g_ambient_w_per_k = 0.0);

  /// Connects two nodes with conductance `g_w_per_k` (> 0). Copy-on-write
  /// like add_node().
  void connect(NodeId a, NodeId b, double g_w_per_k);

  [[nodiscard]] std::size_t node_count() const noexcept { return temp_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] Celsius temperature(NodeId id) const;
  [[nodiscard]] Celsius ambient() const noexcept { return ambient_; }
  void set_ambient(Celsius t) noexcept { ambient_ = t; }

  /// Sets the heat injected into `id` for the next step(s) [W].
  void set_power(NodeId id, Watts p);
  [[nodiscard]] Watts power(NodeId id) const;

  /// Advances the network by `dt`, sub-stepping as needed for stability.
  void step(SimTime dt);

  /// Forces all node temperatures to `t` (session reset).
  void set_all_temperatures(Celsius t) noexcept;

  /// Solves for the equilibrium temperatures under the current power inputs
  /// (does not modify the transient state). Throws ConfigError when the
  /// network has no path to ambient (no equilibrium exists).
  [[nodiscard]] std::vector<Celsius> steady_state() const;

  /// Largest stable explicit-Euler step for the current topology [s].
  [[nodiscard]] double max_stable_dt_seconds() const noexcept;

  /// The (lazily built) topology this session's state lives on. Two
  /// networks batch-step together iff their topology pointers are equal.
  [[nodiscard]] const std::shared_ptr<const RcTopology>& topology() const;

  /// The batch stepper's bulk scatter writes temperatures directly.
  friend class RcBatch;

  // Raw state views for the batch stepper's gather/scatter (node order).
  [[nodiscard]] std::span<const double> temperatures_raw() const noexcept { return temp_; }
  [[nodiscard]] std::span<const double> powers_raw() const noexcept { return power_; }
  /// Overwrites every node temperature (batch scatter; size must match).
  void set_temperatures_raw(std::span<const double> temps);

 private:
  /// (Re)builds the private topology after incremental mutation. Const
  /// because read-only queries (max_stable_dt_seconds, steady_state) also
  /// need a current view.
  void ensure_topology() const;
  /// Copies a built topology's specs into the pending buffers so
  /// add_node/connect can extend without touching other sessions.
  void begin_mutation();
  void euler_substep(double dt_s) noexcept;

  Celsius ambient_;
  std::vector<double> temp_;   // per node, degrees C
  std::vector<double> power_;  // per node, injected heat W

  // Null while pending_* hold un-built structural mutations.
  mutable std::shared_ptr<const RcTopology> topo_;
  mutable std::vector<RcNodeSpec> pending_nodes_;
  mutable std::vector<RcEdgeSpec> pending_edges_;

  // Sub-step count for the last-seen step size (one engine runs a fixed dt,
  // so this caches the ceil/divide of the stability analysis).
  mutable std::int64_t cached_dt_us_{-1};
  mutable std::size_t cached_substeps_{1};
  mutable double cached_dt_sub_s_{0.0};

  mutable std::vector<double> flux_;  // scratch: net heat into each node [W]
  // Scratch for steady_state() so repeated solves don't allocate.
  mutable std::vector<double> ss_a_;
  mutable std::vector<double> ss_b_;
  mutable std::vector<double> ss_t_;
};

}  // namespace nextgov::thermal
