// rc_network.hpp - lumped-parameter RC thermal network.
//
// Standard compact thermal model for SoCs (HotSpot-style): each node has a
// heat capacity C [J/K]; edges have thermal conductance G [W/K]; every node
// may also leak to the ambient boundary. Heat equation per node i:
//
//   C_i dT_i/dt = P_i + sum_j G_ij (T_j - T_i) + G_i,amb (T_amb - T_i)
//
// Integrated with forward Euler and automatic sub-stepping so the scheme
// stays stable (dt_sub < min_i C_i / sum G_i) for any caller-provided step.
//
// step() runs once per 1 ms engine tick for every simulated session, so the
// solver keeps a precomputed view of the topology: a per-node CSR neighbor
// layout with edge conductances, the per-node conductance sums that bound
// the stable Euler step, and the sub-step count for the last step size.
// All of it is rebuilt lazily after add_node()/connect(); steady-state
// solves reuse a cached pristine copy of the dense conductance system.
// steady_state() solves the linear system directly (Gaussian elimination,
// networks are tiny) and is used for calibration and property tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "common/units.hpp"

namespace nextgov::thermal {

using NodeId = std::size_t;

/// Mutable RC network. Build once (add_node/connect), then step().
class RcNetwork {
 public:
  explicit RcNetwork(Celsius ambient);

  /// Adds a node with heat capacity `capacity_j_per_k`, conductance
  /// `g_ambient_w_per_k` to ambient (0 for internal nodes), initialized at
  /// the ambient temperature. Returns its id.
  NodeId add_node(std::string name, double capacity_j_per_k, double g_ambient_w_per_k = 0.0);

  /// Connects two nodes with conductance `g_w_per_k` (> 0).
  void connect(NodeId a, NodeId b, double g_w_per_k);

  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] Celsius temperature(NodeId id) const;
  [[nodiscard]] Celsius ambient() const noexcept { return ambient_; }
  void set_ambient(Celsius t) noexcept { ambient_ = t; }

  /// Sets the heat injected into `id` for the next step(s) [W].
  void set_power(NodeId id, Watts p);
  [[nodiscard]] Watts power(NodeId id) const;

  /// Advances the network by `dt`, sub-stepping as needed for stability.
  void step(SimTime dt);

  /// Forces all node temperatures to `t` (session reset).
  void set_all_temperatures(Celsius t) noexcept;

  /// Solves for the equilibrium temperatures under the current power inputs
  /// (does not modify the transient state). Throws ConfigError when the
  /// network has no path to ambient (no equilibrium exists).
  [[nodiscard]] std::vector<Celsius> steady_state() const;

  /// Largest stable explicit-Euler step for the current topology [s].
  [[nodiscard]] double max_stable_dt_seconds() const noexcept;

 private:
  struct Node {
    std::string name;
    double capacity;   // J/K
    double g_ambient;  // W/K
    double temp_c;     // current temperature, degrees C
    double power_w;    // injected heat, W
  };
  struct Edge {
    NodeId a;
    NodeId b;
    double g;  // W/K
  };

  /// Rebuilds the CSR layout / stability bound / dense system after a
  /// topology mutation. Const because the read-only queries
  /// (max_stable_dt_seconds, steady_state) also need a current view.
  void ensure_topology() const;
  void euler_substep(double dt_s) noexcept;

  Celsius ambient_;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;

  // --- precomputed topology (lazy; invalidated by add_node/connect) ------
  mutable bool topo_built_{false};
  mutable std::vector<std::uint32_t> row_ptr_;   // CSR: node i's neighbors are
  mutable std::vector<std::uint32_t> nbr_node_;  // nbr_node_[row_ptr_[i]..row_ptr_[i+1])
  mutable std::vector<double> nbr_g_;            // matching edge conductances [W/K]
  mutable std::vector<double> inv_cap_;          // 1 / C_i [K/J]
  mutable double total_g_ambient_{0.0};
  mutable double max_stable_dt_s_{0.0};
  mutable std::vector<double> dense_a_;  // pristine steady-state system matrix

  // Sub-step count for the last-seen step size (one engine runs a fixed dt,
  // so this caches the ceil/divide of the stability analysis).
  mutable std::int64_t cached_dt_us_{-1};
  mutable std::size_t cached_substeps_{1};
  mutable double cached_dt_sub_s_{0.0};

  mutable std::vector<double> flux_;  // scratch: net heat into each node [W]
  // Scratch for steady_state() so repeated solves don't allocate.
  mutable std::vector<double> ss_a_;
  mutable std::vector<double> ss_b_;
  mutable std::vector<double> ss_t_;
};

}  // namespace nextgov::thermal
