// note9_model.hpp - the Galaxy Note 9 compact thermal network.
//
// Six lumped nodes: the three PE clusters (junction temperatures, small
// capacity, fast), a SoC/board node, the battery pack and the chassis/skin.
// Only skin and battery exchange heat with ambient. Constants were
// calibrated (tests/thermal) so that, with the soc/ power model:
//   - idle (~1.2 W) settles near 29-33 C big-cluster temperature,
//   - a mixed social-app session under schedutil averages ~50 C on big,
//   - a sustained heavy game under schedutil pushes big into the 70-85 C
//     range, matching the envelopes visible in the paper's Figs. 3/8.
//
// The solver structure (CSR layout, stability bound, steady-state system)
// is built exactly once per process: note9_topology() returns the shared
// ref-counted RcTopology and every engine's RcNetwork is a per-session
// state view over it. That shared pointer is also the homogeneity key the
// batched stepping path (thermal/rc_batch.hpp, sim::BatchRunner) groups
// sessions by.
#pragma once

#include <memory>

#include "common/units.hpp"
#include "thermal/rc_network.hpp"

namespace nextgov::thermal {

/// Node handles for the Note 9 network.
struct Note9Nodes {
  NodeId big;
  NodeId little;
  NodeId gpu;
  NodeId soc_board;
  NodeId battery;
  NodeId skin;
};

struct Note9Thermal {
  RcNetwork network;
  Note9Nodes nodes;
};

/// The process-wide shared Note 9 solver structure (built on first use).
[[nodiscard]] const std::shared_ptr<const RcTopology>& note9_topology();

/// Builds a session state view over note9_topology() with all nodes at
/// `ambient` (paper: 21 C controlled).
[[nodiscard]] Note9Thermal make_note9_thermal(Celsius ambient);

}  // namespace nextgov::thermal
