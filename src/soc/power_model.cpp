#include "soc/power_model.hpp"

#include <algorithm>
#include <cmath>

namespace nextgov::soc {

Watts dynamic_power(const Cluster& cluster, double busy_avg) noexcept {
  const double util = std::clamp(busy_avg, 0.0, 1.0);
  const double v = cluster.voltage().value();
  const double f_hz = cluster.frequency().hz();
  return Watts{cluster.power_params().c_eff_total_farads * v * v * f_hz * util};
}

Watts leakage_power(const Cluster& cluster, Celsius temp) noexcept {
  const auto& p = cluster.power_params();
  const double v = cluster.voltage().value();
  return Watts{p.leak_coeff_w_per_v * v * std::exp(p.leak_temp_beta * (temp.value() - 25.0))};
}

Watts cluster_power(const Cluster& cluster, const ClusterLoad& load, Celsius temp) noexcept {
  return dynamic_power(cluster, load.busy_avg) + leakage_power(cluster, temp);
}

}  // namespace nextgov::soc
