#include "soc/power_model.hpp"

#include <algorithm>
#include <cmath>

namespace nextgov::soc {

// Both terms read the coefficients Cluster tables per OPP at construction
// (C_eff * V^2 * f and k_leak * V): the hot loop evaluates three clusters
// per 1 ms step, and only the utilization and the exp() temperature factor
// vary within a session.

Watts dynamic_power(const Cluster& cluster, double busy_avg) noexcept {
  const double util = std::clamp(busy_avg, 0.0, 1.0);
  return Watts{cluster.dyn_power_coeff_w() * util};
}

Watts leakage_power(const Cluster& cluster, Celsius temp) noexcept {
  const double beta = cluster.power_params().leak_temp_beta;
  return Watts{cluster.leak_power_coeff_w() * std::exp(beta * (temp.value() - 25.0))};
}

Watts cluster_power(const Cluster& cluster, const ClusterLoad& load, Celsius temp) noexcept {
  // Routed through the shared coefficient-form expression so the batched
  // sweep (PowerBatch) evaluates bit-identical powers by construction.
  return Watts{cluster_power_from_coeffs(cluster.dyn_power_coeff_w(),
                                         cluster.leak_power_coeff_w(),
                                         cluster.power_params().leak_temp_beta,
                                         load.busy_avg, temp.value())};
}

}  // namespace nextgov::soc
