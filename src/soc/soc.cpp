#include "soc/soc.hpp"

namespace nextgov::soc {

Soc::Soc(std::string name, std::vector<Cluster> clusters, DevicePowerParams device_power)
    : name_{std::move(name)}, clusters_{std::move(clusters)}, device_power_{device_power} {
  require(!clusters_.empty(), "SoC must have at least one cluster");
}

void Soc::reset() noexcept {
  for (auto& c : clusters_) {
    c.reset_caps();
    c.set_freq_index(0);
  }
}

Soc make_exynos9810() {
  std::vector<Cluster> clusters;
  // Calibration (see DESIGN.md and tests/soc/power_calibration_test.cpp):
  //   big    @2704 MHz, 1.08 V, util 1.0 -> ~5.5 W dynamic
  //   LITTLE @1794 MHz, 0.95 V, util 1.0 -> ~0.80 W dynamic
  //   GPU    @572 MHz,  0.90 V, util 1.0 -> ~2.80 W dynamic
  // Leakage at max V and 85 C: big ~1.2 W, LITTLE ~0.11 W, GPU ~0.55 W.
  clusters.emplace_back(ClusterKind::kBigCpu, "Mongoose-3", 4, exynos9810_big_opps(),
                        ClusterPowerParams{1.744e-9, 0.55, 0.018});
  clusters.emplace_back(ClusterKind::kLittleCpu, "Cortex-A55", 4, exynos9810_little_opps(),
                        ClusterPowerParams{0.70e-9, 0.055, 0.018});
  clusters.emplace_back(ClusterKind::kGpu, "Mali-G72-MP18", 18, exynos9810_gpu_opps(),
                        ClusterPowerParams{6.04e-9, 0.28, 0.018});
  return Soc{"Exynos 9810", std::move(clusters), DevicePowerParams{}};
}

}  // namespace nextgov::soc
