#include "soc/cluster.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace nextgov::soc {

std::string_view to_string(ClusterKind kind) noexcept {
  switch (kind) {
    case ClusterKind::kBigCpu: return "big";
    case ClusterKind::kLittleCpu: return "LITTLE";
    case ClusterKind::kGpu: return "GPU";
  }
  return "?";
}

Cluster::Cluster(ClusterKind kind, std::string name, std::size_t core_count, OppTable opps,
                 ClusterPowerParams power_params)
    : kind_{kind},
      name_{std::move(name)},
      cores_{core_count},
      opps_{std::move(opps)},
      power_{power_params},
      max_cap_{opps_.size() - 1} {
  require(cores_ > 0, "cluster must have at least one core");
  require(power_.c_eff_total_farads > 0.0, "effective capacitance must be positive");
  require(power_.leak_coeff_w_per_v >= 0.0, "leakage coefficient must be non-negative");
  dyn_coeff_w_.reserve(opps_.size());
  leak_coeff_w_.reserve(opps_.size());
  inv_rel_speed_.reserve(opps_.size());
  for (const auto& opp : opps_.points()) {
    const double v = opp.voltage.value();
    dyn_coeff_w_.push_back(power_.c_eff_total_farads * v * v * opp.frequency.hz());
    leak_coeff_w_.push_back(power_.leak_coeff_w_per_v * v);
    inv_rel_speed_.push_back(opps_.highest().frequency / opp.frequency);
  }
}

void Cluster::set_freq_index(std::size_t i) noexcept {
  index_ = std::clamp(i, min_cap_, max_cap_);
}

void Cluster::request_frequency(KiloHertz f) noexcept { set_freq_index(opps_.ceil_index(f)); }

void Cluster::set_max_cap_index(std::size_t i) noexcept {
  max_cap_ = std::min(i, opps_.size() - 1);
  max_cap_ = std::max(max_cap_, min_cap_);
  if (index_ > max_cap_) index_ = max_cap_;
}

bool Cluster::cap_step_up() noexcept {
  if (max_cap_ + 1 >= opps_.size()) return false;
  set_max_cap_index(max_cap_ + 1);
  return true;
}

bool Cluster::cap_step_down() noexcept {
  if (max_cap_ == min_cap_) return false;
  set_max_cap_index(max_cap_ - 1);
  return true;
}

void Cluster::reset_caps() noexcept {
  min_cap_ = 0;
  max_cap_ = opps_.size() - 1;
}

}  // namespace nextgov::soc
