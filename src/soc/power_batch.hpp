// power_batch.hpp - structure-of-arrays power-model evaluation for many
// same-SoC sessions.
//
// The engine evaluates the power model for three clusters every 1 ms step,
// and a batch-resident group (sim::BatchRunner) advances N sessions through
// that step lock-step. Per session the OPP-dependent parts are already
// dense per-OPP coefficient tables (Cluster::dyn_power_table /
// leak_power_table), so the whole group's power evaluation is one
// [cluster][session] table sweep - the SysScale shape: a multi-domain
// power model as a dense table walk. PowerBatch holds the group's inputs
// (current OPP index + mean utilization per cluster per session) in SoA
// lanes and writes the resulting powers straight into the thermal batch's
// power lanes, eliminating the per-session set_power -> gather_powers
// round-trip the first batched pipeline paid every tick.
//
// Bit-identity contract: per session the evaluation inlines exactly
// soc::cluster_power_from_coeffs - the same expression the scalar
// cluster_power() uses - and accumulates cluster powers in cluster order,
// so batch evaluation is bit-identical to the per-session power model.
// tests/soc/power_batch_test.cpp gates on exact equality.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "soc/soc.hpp"

namespace nextgov::soc {

// SoA layout assumptions behind the lane arithmetic: lanes are contiguous
// IEEE-754 binary64 values addressed as base + cluster * sessions + session.
static_assert(sizeof(double) == 8 && alignof(double) == 8,
              "PowerBatch lane stride math assumes 8-byte doubles");
static_assert(sizeof(std::uint32_t) == 4,
              "PowerBatch packs per-session OPP indices as uint32 lanes");

/// N same-SoC sessions' power models evaluated in one SoA sweep.
class PowerBatch {
 public:
  /// Copies `reference`'s per-OPP coefficient tables (one copy per group,
  /// not per session). Every session of the batch must run a SoC for which
  /// compatible() holds against the same reference.
  PowerBatch(const Soc& reference, std::size_t sessions);

  [[nodiscard]] std::size_t session_count() const noexcept { return sessions_; }
  [[nodiscard]] std::size_t cluster_count() const noexcept { return clusters_.size(); }

  /// True when `soc` evaluates bit-identically through this batch: same
  /// cluster count, per-cluster tables and leakage coefficients bitwise
  /// equal to the reference, same device power floor.
  [[nodiscard]] bool compatible(const Soc& soc) const noexcept;

  /// Per-tick inputs for one session lane: the cluster's current operating
  /// index and mean utilization (Engine::push_power_inputs fills these).
  void set_input(std::size_t session, std::size_t cluster, std::size_t freq_index,
                 double busy_avg) noexcept;

  /// Evaluates every cluster of every session in one [cluster][session]
  /// sweep: power_lanes[c][s] receives the cluster power computed from
  /// junction_temp_lanes[c][s] (thermal::RcBatch::temperature_lane /
  /// power_lane of the cluster's junction node). Also accumulates the
  /// per-session SoC total and the device power (SoC + display + rest),
  /// readable via device_power().
  void evaluate(std::span<const double* const> junction_temp_lanes,
                std::span<double* const> power_lanes) noexcept;

  /// Device power of `session` as of the last evaluate() (what the engine's
  /// fuel-gauge observation and energy totals consume).
  [[nodiscard]] Watts device_power(std::size_t session) const noexcept {
    return Watts{device_power_[session]};
  }

 private:
  struct ClusterTable {
    std::vector<double> dyn_w;   // per OPP: C_eff * V^2 * f [W at util=1]
    std::vector<double> leak_w;  // per OPP: k_leak * V [W at 25 C]
    double leak_temp_beta;
  };

  std::size_t sessions_;
  std::vector<ClusterTable> clusters_;
  double display_w_;
  double rest_of_device_w_;

  // SoA inputs: cluster c, session s lives at [c * sessions_ + s].
  std::vector<std::uint32_t> freq_idx_;
  std::vector<double> busy_avg_;
  // Per-session outputs of the last evaluate().
  std::vector<double> soc_total_w_;
  std::vector<double> device_power_;
};

}  // namespace nextgov::soc
