#include "soc/sensors.hpp"

#include <algorithm>
#include <cmath>

namespace nextgov::soc {

Celsius quantize_temperature(Celsius t) noexcept {
  return Celsius{std::round(t.value() * 10.0) / 10.0};
}

Watts quantize_power(Watts p) noexcept { return Watts{std::round(p.value() * 1000.0) / 1000.0}; }

Celsius virtual_device_temperature(Celsius battery, Celsius skin, Celsius big, Celsius little,
                                   Celsius gpu) noexcept {
  const double soc_max = std::max({big.value(), little.value(), gpu.value()});
  return Celsius{0.40 * battery.value() + 0.35 * skin.value() + 0.25 * soc_max};
}

}  // namespace nextgov::soc
