// power_model.hpp - analytic CMOS power model with leakage-temperature
// feedback.
//
// Replaces the Note 9's fuel-gauge power measurements (DESIGN.md
// substitution table). Per cluster:
//
//   P_dyn  = C_eff_total * V^2 * f * util          (switching power)
//   P_leak = k_leak * V * exp(beta * (T - 25 C))   (subthreshold leakage)
//
// The exponential leakage term couples the thermal state back into power,
// which is what makes thermal management power-relevant and what the paper's
// PPDW metric rewards. Device power adds a display + rest-of-device floor so
// absolute magnitudes land in the 1-12 W envelope the paper reports.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/units.hpp"
#include "soc/cluster.hpp"

namespace nextgov::soc {

/// Utilization of one cluster during a simulation step.
struct ClusterLoad {
  /// Mean busy fraction across the whole cluster in [0,1] (drives power).
  double busy_avg{0.0};
  /// Busy fraction of the busiest PE in [0,1] (drives frequency governors).
  double busy_hot{0.0};
};

/// The one definition of the per-cluster power expression, in raw
/// coefficient form. Both the scalar path (cluster_power below, via the
/// Cluster's current-OPP coefficients) and the batched path
/// (PowerBatch::evaluate's [cluster][session] sweep) inline this exact
/// function, so the two can never drift in floating-point shape - the
/// engine-level bit-identity contract of sim::BatchRunner rests on it.
[[nodiscard]] inline double cluster_power_from_coeffs(double dyn_coeff_w, double leak_coeff_w,
                                                      double leak_temp_beta, double busy_avg,
                                                      double temp_c) noexcept {
  const double util = std::clamp(busy_avg, 0.0, 1.0);
  const double dyn = dyn_coeff_w * util;
  const double leak = leak_coeff_w * std::exp(leak_temp_beta * (temp_c - 25.0));
  return dyn + leak;
}

/// Dynamic (switching) power of `cluster` at mean utilization `busy_avg`.
[[nodiscard]] Watts dynamic_power(const Cluster& cluster, double busy_avg) noexcept;

/// Leakage power of `cluster` at junction temperature `temp`.
[[nodiscard]] Watts leakage_power(const Cluster& cluster, Celsius temp) noexcept;

/// Total cluster power (dynamic + leakage).
[[nodiscard]] Watts cluster_power(const Cluster& cluster, const ClusterLoad& load,
                                  Celsius temp) noexcept;

/// Non-SoC device power floor.
struct DevicePowerParams {
  Watts display{Watts{1.00}};        ///< panel + backlight at typical brightness
  Watts rest_of_device{Watts{0.35}}; ///< radios, sensors, PMIC losses, DRAM refresh
};

}  // namespace nextgov::soc
