// opp.hpp - Operating Performance Point tables.
//
// An OPP table is the ordered list of (frequency, voltage) pairs a cluster's
// DVFS driver exposes. Section III-A of the paper gives the exact frequency
// lists of the Exynos 9810: 18 levels for the Mongoose-3 big cluster
// (650-2704 MHz), 10 for the Cortex-A55 LITTLE cluster (455-1794 MHz) and 6
// for the Mali-G72 MP18 GPU (260-572 MHz). Voltages are not published; we
// attach a monotone affine voltage ramp per cluster (documented in
// DESIGN.md), which preserves the V^2*f power shape DVFS exploits.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace nextgov::soc {

/// One DVFS operating point.
struct OppPoint {
  KiloHertz frequency;
  Volts voltage;
};

/// Immutable, ascending-by-frequency table of operating points.
/// Invariants (checked at construction): non-empty, strictly increasing
/// frequency, positive and non-decreasing voltage.
class OppTable {
 public:
  explicit OppTable(std::vector<OppPoint> points);

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] const OppPoint& operator[](std::size_t i) const noexcept { return points_[i]; }
  [[nodiscard]] const OppPoint& lowest() const noexcept { return points_.front(); }
  [[nodiscard]] const OppPoint& highest() const noexcept { return points_.back(); }
  [[nodiscard]] std::span<const OppPoint> points() const noexcept { return points_; }

  /// Index of the lowest OPP whose frequency is >= `f`; size()-1 when `f`
  /// exceeds the highest frequency (the governor saturates at fmax).
  [[nodiscard]] std::size_t ceil_index(KiloHertz f) const noexcept;
  /// Index of the highest OPP whose frequency is <= `f`; 0 when `f` is below
  /// the lowest frequency.
  [[nodiscard]] std::size_t floor_index(KiloHertz f) const noexcept;
  /// Exact-match index; throws ConfigError when `f` is not in the table.
  [[nodiscard]] std::size_t index_of(KiloHertz f) const;

  /// Builds a table from MHz values in *descending* order (the order data
  /// sheets and the paper list them in) and an affine voltage ramp from
  /// `v_min` at the lowest frequency to `v_max` at the highest.
  [[nodiscard]] static OppTable from_mhz_descending(std::span<const double> mhz_desc, Volts v_min,
                                                    Volts v_max);

 private:
  std::vector<OppPoint> points_;
};

/// The three cluster OPP tables of the Exynos 9810 as published in the paper.
[[nodiscard]] OppTable exynos9810_big_opps();
[[nodiscard]] OppTable exynos9810_little_opps();
[[nodiscard]] OppTable exynos9810_gpu_opps();

}  // namespace nextgov::soc
