#include "soc/power_batch.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "soc/power_model.hpp"

namespace nextgov::soc {

PowerBatch::PowerBatch(const Soc& reference, std::size_t sessions) : sessions_{sessions} {
  require(sessions_ > 0, "PowerBatch needs at least one session");
  require(reference.cluster_count() > 0, "PowerBatch needs at least one cluster");
  clusters_.reserve(reference.cluster_count());
  for (const Cluster& c : reference.clusters()) {
    const std::span<const double> dyn = c.dyn_power_table();
    const std::span<const double> leak = c.leak_power_table();
    clusters_.push_back(ClusterTable{{dyn.begin(), dyn.end()},
                                     {leak.begin(), leak.end()},
                                     c.power_params().leak_temp_beta});
  }
  display_w_ = reference.device_power().display.value();
  rest_of_device_w_ = reference.device_power().rest_of_device.value();
  const std::size_t cells = clusters_.size() * sessions_;
  freq_idx_.assign(cells, 0);
  busy_avg_.assign(cells, 0.0);
  soc_total_w_.assign(sessions_, 0.0);
  device_power_.assign(sessions_, 0.0);
}

bool PowerBatch::compatible(const Soc& soc) const noexcept {
  if (soc.cluster_count() != clusters_.size()) return false;
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    const ClusterTable& t = clusters_[c];
    const std::span<const double> dyn = soc.cluster(c).dyn_power_table();
    const std::span<const double> leak = soc.cluster(c).leak_power_table();
    if (dyn.size() != t.dyn_w.size() || leak.size() != t.leak_w.size()) return false;
    if (!std::equal(dyn.begin(), dyn.end(), t.dyn_w.begin()) ||
        !std::equal(leak.begin(), leak.end(), t.leak_w.begin())) {
      return false;
    }
    if (soc.cluster(c).power_params().leak_temp_beta != t.leak_temp_beta) return false;
  }
  return soc.device_power().display.value() == display_w_ &&
         soc.device_power().rest_of_device.value() == rest_of_device_w_;
}

void PowerBatch::set_input(std::size_t session, std::size_t cluster, std::size_t freq_index,
                           double busy_avg) noexcept {
  NEXTGOV_ASSERT(session < sessions_ && cluster < clusters_.size());
  NEXTGOV_ASSERT(freq_index < clusters_[cluster].dyn_w.size());
  const std::size_t at = cluster * sessions_ + session;
  freq_idx_[at] = static_cast<std::uint32_t>(freq_index);
  busy_avg_[at] = busy_avg;
}

void PowerBatch::evaluate(std::span<const double* const> junction_temp_lanes,
                          std::span<double* const> power_lanes) noexcept {
  NEXTGOV_ASSERT(junction_temp_lanes.size() == clusters_.size());
  NEXTGOV_ASSERT(power_lanes.size() == clusters_.size());
  const std::size_t S = sessions_;
  // Serial engines accumulate Watts{0.0} += p_cluster in cluster order;
  // the sweep reproduces that order with the cluster loop outermost.
  double* const total = soc_total_w_.data();
  std::fill(soc_total_w_.begin(), soc_total_w_.end(), 0.0);
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    const ClusterTable& t = clusters_[c];
    const double* const dyn_w = t.dyn_w.data();
    const double* const leak_w = t.leak_w.data();
    const double beta = t.leak_temp_beta;
    const std::uint32_t* const idx = freq_idx_.data() + c * S;
    const double* const busy = busy_avg_.data() + c * S;
    const double* const temp = junction_temp_lanes[c];
    double* const out = power_lanes[c];
    for (std::size_t s = 0; s < S; ++s) {
      const std::size_t i = idx[s];
      const double p = cluster_power_from_coeffs(dyn_w[i], leak_w[i], beta, busy[s], temp[s]);
      out[s] = p;
      total[s] += p;
    }
  }
  // device = (soc + display) + rest, matching the engine's left-associated
  // Watts addition.
  for (std::size_t s = 0; s < S; ++s) {
    device_power_[s] = (total[s] + display_w_) + rest_of_device_w_;
  }
}

}  // namespace nextgov::soc
