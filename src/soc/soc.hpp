// soc.hpp - the MPSoC aggregate and the Exynos 9810 factory.
//
// A Soc owns the PE clusters (the paper's "m PE clusters", m=3 on the
// Exynos 9810) plus the non-compute device power floor. It is a pure
// hardware description; time, heat and workloads live in sim/, thermal/ and
// workload/.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "soc/cluster.hpp"
#include "soc/power_model.hpp"

namespace nextgov::soc {

/// Stable identifiers for the three Exynos 9810 clusters; generic code
/// iterates clusters() instead of using these.
struct ClusterIndex {
  static constexpr std::size_t kBig = 0;
  static constexpr std::size_t kLittle = 1;
  static constexpr std::size_t kGpu = 2;
};

class Soc {
 public:
  Soc(std::string name, std::vector<Cluster> clusters, DevicePowerParams device_power);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t cluster_count() const noexcept { return clusters_.size(); }
  [[nodiscard]] Cluster& cluster(std::size_t i) noexcept {
    NEXTGOV_ASSERT(i < clusters_.size());
    return clusters_[i];
  }
  [[nodiscard]] const Cluster& cluster(std::size_t i) const noexcept {
    NEXTGOV_ASSERT(i < clusters_.size());
    return clusters_[i];
  }
  [[nodiscard]] std::vector<Cluster>& clusters() noexcept { return clusters_; }
  [[nodiscard]] const std::vector<Cluster>& clusters() const noexcept { return clusters_; }

  [[nodiscard]] Cluster& big() noexcept { return clusters_[ClusterIndex::kBig]; }
  [[nodiscard]] Cluster& little() noexcept { return clusters_[ClusterIndex::kLittle]; }
  [[nodiscard]] Cluster& gpu() noexcept { return clusters_[ClusterIndex::kGpu]; }
  [[nodiscard]] const Cluster& big() const noexcept { return clusters_[ClusterIndex::kBig]; }
  [[nodiscard]] const Cluster& little() const noexcept {
    return clusters_[ClusterIndex::kLittle];
  }
  [[nodiscard]] const Cluster& gpu() const noexcept { return clusters_[ClusterIndex::kGpu]; }

  [[nodiscard]] const DevicePowerParams& device_power() const noexcept { return device_power_; }

  /// Resets all clusters to their lowest OPP with full cap range (device
  /// idle state at session start).
  void reset() noexcept;

 private:
  std::string name_;
  std::vector<Cluster> clusters_;
  DevicePowerParams device_power_;
};

/// Builds the Exynos 9810 model used throughout the reproduction:
/// 4x Mongoose-3 big, 4x Cortex-A55 LITTLE, Mali-G72 MP18 GPU, with power
/// constants calibrated so the device envelope spans ~1.2 W (idle) to ~12 W
/// (all-max burst), matching the magnitudes in the paper's Figs. 3/7.
[[nodiscard]] Soc make_exynos9810();

}  // namespace nextgov::soc
