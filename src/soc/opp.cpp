#include "soc/opp.hpp"

#include <algorithm>
#include <array>

#include "common/error.hpp"

namespace nextgov::soc {

OppTable::OppTable(std::vector<OppPoint> points) : points_(std::move(points)) {
  require(!points_.empty(), "OPP table must not be empty");
  for (std::size_t i = 0; i < points_.size(); ++i) {
    require(points_[i].frequency.value() > 0.0, "OPP frequency must be positive");
    require(points_[i].voltage.value() > 0.0, "OPP voltage must be positive");
    if (i > 0) {
      require(points_[i].frequency > points_[i - 1].frequency,
              "OPP frequencies must be strictly increasing");
      require(points_[i].voltage >= points_[i - 1].voltage,
              "OPP voltages must be non-decreasing with frequency");
    }
  }
}

std::size_t OppTable::ceil_index(KiloHertz f) const noexcept {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].frequency >= f) return i;
  }
  return points_.size() - 1;
}

std::size_t OppTable::floor_index(KiloHertz f) const noexcept {
  if (points_.front().frequency >= f) return 0;
  std::size_t best = 0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].frequency <= f) best = i;
  }
  return best;
}

std::size_t OppTable::index_of(KiloHertz f) const {
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].frequency == f) return i;
  }
  throw ConfigError("frequency not present in OPP table: " + std::to_string(f.value()) + " kHz");
}

OppTable OppTable::from_mhz_descending(std::span<const double> mhz_desc, Volts v_min,
                                       Volts v_max) {
  require(!mhz_desc.empty(), "OPP list must not be empty");
  require(v_min.value() > 0.0 && v_max >= v_min, "voltage ramp must satisfy 0 < v_min <= v_max");
  std::vector<OppPoint> pts;
  pts.reserve(mhz_desc.size());
  const double f_lo = mhz_desc.back();
  const double f_hi = mhz_desc.front();
  for (auto it = mhz_desc.rbegin(); it != mhz_desc.rend(); ++it) {
    const double f = *it;
    const double t = (f_hi > f_lo) ? (f - f_lo) / (f_hi - f_lo) : 1.0;
    const Volts v{v_min.value() + t * (v_max.value() - v_min.value())};
    pts.push_back(OppPoint{KiloHertz::from_mhz(f), v});
  }
  return OppTable{std::move(pts)};
}

OppTable exynos9810_big_opps() {
  // Section III-A: Mongoose 3 cluster, 18 levels, 650-2704 MHz.
  static constexpr std::array<double, 18> kMhz = {2704, 2652, 2496, 2314, 2106, 2002,
                                                  1924, 1794, 1690, 1586, 1469, 1261,
                                                  1170, 1066, 962,  858,  741,  650};
  return OppTable::from_mhz_descending(kMhz, Volts{0.70}, Volts{1.08});
}

OppTable exynos9810_little_opps() {
  // Section III-A: Cortex-A55 cluster, 10 levels, 455-1794 MHz.
  static constexpr std::array<double, 10> kMhz = {1794, 1690, 1456, 1248, 1053,
                                                  949,  832,  715,  598,  455};
  return OppTable::from_mhz_descending(kMhz, Volts{0.60}, Volts{0.95});
}

OppTable exynos9810_gpu_opps() {
  // Section III-A: Mali-G72 MP18, 6 levels, 260-572 MHz.
  static constexpr std::array<double, 6> kMhz = {572, 546, 455, 338, 299, 260};
  return OppTable::from_mhz_descending(kMhz, Volts{0.65}, Volts{0.90});
}

}  // namespace nextgov::soc
