// sensors.hpp - thermal/power sensor front-end.
//
// The governor stack must observe the system the way the paper's
// application-layer agent does: through quantized, slightly delayed sensor
// readings, not the simulator's exact floating-point state. Section III-A:
// the Note 9 exposes 5 thermal sensors of which one sits on the big cluster
// and one *virtual* sensor reports "overall device temperature" via a
// proprietary formula. We document our replacement formula here (DESIGN.md):
//
//   T_device = 0.40*T_battery + 0.35*T_skin + 0.25*max(T_big,T_little,T_gpu)
//
// Readings are quantized to 0.1 C (typical tsens granularity) and power to
// 1 mW (fuel-gauge granularity).
#pragma once

#include "common/units.hpp"

namespace nextgov::soc {

/// Quantizes a temperature to the sensor granularity (0.1 degrees C).
[[nodiscard]] Celsius quantize_temperature(Celsius t) noexcept;

/// Quantizes a power reading to 1 mW.
[[nodiscard]] Watts quantize_power(Watts p) noexcept;

/// The device-level virtual sensor replacement formula.
[[nodiscard]] Celsius virtual_device_temperature(Celsius battery, Celsius skin, Celsius big,
                                                 Celsius little, Celsius gpu) noexcept;

/// Snapshot of every sensor the agent can read.
struct SensorReadings {
  Celsius big;     ///< big-cluster on-die sensor
  Celsius little;  ///< LITTLE-cluster on-die sensor
  Celsius gpu;     ///< GPU on-die sensor
  Celsius battery; ///< battery pack sensor
  Celsius skin;    ///< chassis/skin sensor
  Celsius device;  ///< virtual "overall device" sensor
  Watts power;     ///< instantaneous device power (fuel gauge)
};

}  // namespace nextgov::soc
