// cluster.hpp - a DVFS-capable processing-element cluster.
//
// The Exynos 9810 exposes cluster-wise DVFS only (Section III-A): one
// frequency for all 4 big cores, one for all 4 LITTLE cores, one for the 18
// GPU cores. A Cluster owns its OPP table, the current operating index, and
// the min/max frequency *caps* that governors (and the Next agent, which
// actuates exclusively via maxfreq) manipulate. Invariant: the operating
// index always lies within [min_cap_index, max_cap_index].
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"
#include "soc/opp.hpp"

namespace nextgov::soc {

/// Which kind of processing elements the cluster holds.
enum class ClusterKind { kBigCpu, kLittleCpu, kGpu };

[[nodiscard]] std::string_view to_string(ClusterKind kind) noexcept;

/// Electrical/physical constants of one cluster (see DESIGN.md "power in
/// watts"): dynamic power = c_eff_total * V^2 * f * util, leakage =
/// leak_coeff * V * exp(leak_temp_beta * (T - 25C)).
struct ClusterPowerParams {
  double c_eff_total_farads{1e-9};  ///< switched capacitance of the whole cluster at util=1
  double leak_coeff_w_per_v{0.1};   ///< leakage scale (whole cluster) at 25 degrees C
  double leak_temp_beta{0.0155};    ///< exponential leakage-temperature coefficient [1/K]
};

class Cluster {
 public:
  Cluster(ClusterKind kind, std::string name, std::size_t core_count, OppTable opps,
          ClusterPowerParams power_params);

  [[nodiscard]] ClusterKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t core_count() const noexcept { return cores_; }
  [[nodiscard]] const OppTable& opps() const noexcept { return opps_; }
  [[nodiscard]] const ClusterPowerParams& power_params() const noexcept { return power_; }

  /// --- operating point -----------------------------------------------
  [[nodiscard]] std::size_t freq_index() const noexcept { return index_; }
  [[nodiscard]] KiloHertz frequency() const noexcept { return opps_[index_].frequency; }
  [[nodiscard]] Volts voltage() const noexcept { return opps_[index_].voltage; }
  /// Requests operating index `i`; the result is clamped into the cap range.
  void set_freq_index(std::size_t i) noexcept;
  /// Requests the lowest OPP >= `f` (governor semantics), clamped to caps.
  void request_frequency(KiloHertz f) noexcept;

  /// --- caps (what meta-governors actuate) -----------------------------
  [[nodiscard]] std::size_t max_cap_index() const noexcept { return max_cap_; }
  [[nodiscard]] std::size_t min_cap_index() const noexcept { return min_cap_; }
  [[nodiscard]] KiloHertz max_cap_frequency() const noexcept {
    return opps_[max_cap_].frequency;
  }
  /// Sets the maxfreq cap; pulls the operating point down when it now
  /// exceeds the cap (exactly what writing scaling_max_freq does on Linux).
  void set_max_cap_index(std::size_t i) noexcept;
  /// Moves the cap one OPP up/down (the Next agent's action semantics);
  /// saturates at the table ends. Returns true when the cap moved.
  bool cap_step_up() noexcept;
  bool cap_step_down() noexcept;
  /// Restores caps to the full OPP range.
  void reset_caps() noexcept;

  /// Relative single-PE speed vs the highest OPP (for capacity-invariant
  /// utilization calculations).
  [[nodiscard]] double relative_speed() const noexcept {
    return frequency() / opps_.highest().frequency;
  }

  /// --- precomputed power coefficients ---------------------------------
  /// The power model evaluates every 1 ms step for every cluster, so the
  /// OPP-dependent parts are tabled at construction:
  ///   dyn_power_coeff_w  = C_eff * V^2 * f   (P_dyn = coeff * util)
  ///   leak_power_coeff_w = k_leak * V        (P_leak = coeff * exp(...))
  [[nodiscard]] double dyn_power_coeff_w() const noexcept { return dyn_coeff_w_[index_]; }
  [[nodiscard]] double leak_power_coeff_w() const noexcept { return leak_coeff_w_[index_]; }
  /// The whole per-OPP coefficient tables (index = OPP index). PowerBatch
  /// copies these once per group and sweeps them for N sessions at a time;
  /// they are also the homogeneity check for batch-resident power stepping.
  [[nodiscard]] std::span<const double> dyn_power_table() const noexcept { return dyn_coeff_w_; }
  [[nodiscard]] std::span<const double> leak_power_table() const noexcept {
    return leak_coeff_w_;
  }
  /// f_max / f at the current OPP (>= 1): the PELT-style demand scale
  /// factor, tabled so load accounting avoids a divide per cluster per step.
  [[nodiscard]] double inv_relative_speed() const noexcept { return inv_rel_speed_[index_]; }

 private:
  ClusterKind kind_;
  std::string name_;
  std::size_t cores_;
  OppTable opps_;
  ClusterPowerParams power_;
  std::size_t index_{0};
  std::size_t min_cap_{0};
  std::size_t max_cap_;
  std::vector<double> dyn_coeff_w_;   // per OPP: C_eff * V^2 * f [W at util=1]
  std::vector<double> leak_coeff_w_;  // per OPP: k_leak * V [W at 25 C]
  std::vector<double> inv_rel_speed_;  // per OPP: f_max / f
};

}  // namespace nextgov::soc
