// frame.hpp - frame jobs and the interface apps use to feed the pipeline.
//
// Interaction between user and app happens through the display (paper
// Fig. 2): touches trigger app functions which submit frames. A FrameJob
// carries the computational cost of one frame: CPU cycles (UI thread /
// RenderThread work, executed on one big core in our model) and GPU cycles
// (normalized per GPU core, executed at the GPU clock).
#pragma once

#include "common/sim_time.hpp"

namespace nextgov::render {

/// Cost of producing one frame.
struct FrameJob {
  double cpu_cycles{0.0};  ///< big-core cycles to record/prepare the frame
  double gpu_cycles{0.0};  ///< per-GPU-core cycles to rasterize the frame
};

/// Producer side of the pipeline; implemented by workload::App.
class FrameSource {
 public:
  virtual ~FrameSource() = default;
  /// True when the app wants to start rendering another frame now
  /// (animation running, game loop active, video cadence due...).
  [[nodiscard]] virtual bool wants_frame(SimTime now) = 0;
  /// Pops the next frame's cost. Called only after wants_frame() was true;
  /// consumes cadence credit for rate-limited sources.
  [[nodiscard]] virtual FrameJob begin_frame(SimTime now) = 0;
};

}  // namespace nextgov::render
