// fps_counter.hpp - sliding-window frame-rate measurement.
//
// "FPS_current ... is the frame rate of the front buffer of VSync"
// (Section IV-A): we count front-buffer updates (presented frames) inside a
// trailing window. The Next agent samples this every 25 ms; the recorder
// samples it at its own cadence.
#pragma once

#include <deque>

#include "common/sim_time.hpp"
#include "common/units.hpp"

namespace nextgov::render {

class SlidingFpsCounter {
 public:
  /// `window` is the trailing measurement horizon (default 1 s, so the
  /// reading is directly in frames-per-second).
  explicit SlidingFpsCounter(SimTime window = SimTime::from_ms(1000));

  /// Records one presented frame at time `t`.
  void on_present(SimTime t);

  /// Frames presented in (now - window, now], scaled to per-second units.
  [[nodiscard]] Fps fps(SimTime now) const;

  void clear() noexcept { presents_.clear(); }

 private:
  void evict(SimTime now) const;

  SimTime window_;
  mutable std::deque<SimTime> presents_;
};

}  // namespace nextgov::render
