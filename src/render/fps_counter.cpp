#include "render/fps_counter.hpp"

#include "common/error.hpp"

namespace nextgov::render {

SlidingFpsCounter::SlidingFpsCounter(SimTime window) : window_{window} {
  require(window.us() > 0, "FPS window must be positive");
}

void SlidingFpsCounter::on_present(SimTime t) {
  NEXTGOV_ASSERT(presents_.empty() || t >= presents_.back());
  presents_.push_back(t);
}

void SlidingFpsCounter::evict(SimTime now) const {
  const SimTime cutoff = now - window_;
  while (!presents_.empty() && presents_.front() <= cutoff) presents_.pop_front();
}

Fps SlidingFpsCounter::fps(SimTime now) const {
  evict(now);
  const double scale = 1.0 / window_.seconds();
  return Fps{static_cast<double>(presents_.size()) * scale};
}

}  // namespace nextgov::render
