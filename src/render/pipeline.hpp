// pipeline.hpp - the VSync-synchronized CPU->GPU rendering pipeline.
//
// Models Android's triple buffering exactly as the paper describes
// (Section I): one front buffer owned by the display, two back buffers the
// CPU/GPU render into. The display refreshes only on VSync (every 16.67 ms
// at 60 Hz); when no freshly rendered back buffer is available at a VSync
// the previous frame stays on screen - a *frame drop*.
//
// Stages per frame: the CPU records the frame (cpu_cycles at the big-cluster
// clock, one core), hands off to the GPU (gpu_cycles at the GPU clock),
// the completed buffer queues for the next VSync flip. Stages of consecutive
// frames overlap (CPU on frame n+1 while GPU renders frame n), so the
// sustainable frame rate is min(refresh, 1/max(t_cpu, t_gpu)).
//
// The pipeline is advanced in engine steps (1 ms); inside a step it walks an
// exact event sequence (CPU completion, GPU completion, VSync), so frame
// timing does not depend on the engine step size.
#pragma once

#include <cstdint>
#include <optional>

#include "common/sim_time.hpp"
#include "common/units.hpp"
#include "render/fps_counter.hpp"
#include "render/frame.hpp"

namespace nextgov::render {

/// Per-step accounting returned to the engine for utilization/power.
struct PipelineStepResult {
  double cpu_busy_seconds{0.0};  ///< time the render CPU stage was executing
  double gpu_busy_seconds{0.0};  ///< time the GPU stage was executing
  int frames_presented{0};       ///< VSync flips with new content
  int frames_dropped{0};         ///< VSyncs missed while frames were pending
};

struct PipelineConfig {
  double refresh_hz{60.0};  ///< display refresh rate (60 Hz per the paper)
  int back_buffers{2};      ///< Android triple buffering: 2 back buffers
};

class RenderPipeline {
 public:
  explicit RenderPipeline(PipelineConfig cfg = {});

  /// Advances from `now` to `now + dt`. `f_cpu_hz`/`f_gpu_hz` are the
  /// current big-cluster and GPU clock rates (assumed constant within the
  /// step; the engine steps at 1 ms, finer than any governor action).
  PipelineStepResult step(SimTime now, SimTime dt, double f_cpu_hz, double f_gpu_hz,
                          FrameSource& source);

  /// Total flips with new content since construction.
  [[nodiscard]] std::int64_t frames_presented() const noexcept { return presented_total_; }
  /// Total missed VSyncs while work was pending.
  [[nodiscard]] std::int64_t frames_dropped() const noexcept { return dropped_total_; }

  /// Instantaneous frame rate over a trailing 1 s window.
  [[nodiscard]] Fps current_fps(SimTime now) const { return fps_counter_.fps(now); }

  /// Missed-deadline VSyncs per second over a trailing 1 s window (the
  /// "lag or stutter" QoS signal of Section I).
  [[nodiscard]] double current_drop_rate(SimTime now) const {
    return drop_counter_.fps(now).value();
  }

  /// True when any stage holds an in-flight frame.
  [[nodiscard]] bool busy() const noexcept {
    return cpu_job_.has_value() || handoff_.has_value() || gpu_job_.has_value() ||
           completed_ > 0;
  }

  void reset(SimTime now) noexcept;

 private:
  struct StageJob {
    double remaining_cycles;
    double started_us;  ///< when this frame entered the pipeline
  };

  PipelineConfig cfg_;
  double vsync_period_us_;
  double next_vsync_us_{0.0};

  struct HandoffJob {
    double gpu_cycles;
    double started_us;
  };

  std::optional<StageJob> cpu_job_;
  std::optional<HandoffJob> handoff_;  ///< CPU-finished frame waiting for the GPU
  std::optional<StageJob> gpu_job_;
  int completed_{0};  ///< rendered back buffers awaiting a VSync flip

  SlidingFpsCounter fps_counter_;
  SlidingFpsCounter drop_counter_;
  std::int64_t presented_total_{0};
  std::int64_t dropped_total_{0};

  /// Remembers the GPU cost of the frame currently in the CPU stage.
  double pending_gpu_cycles_{0.0};

  /// Start time of the oldest in-flight (not yet completed) frame, or a
  /// negative value when nothing is in flight.
  [[nodiscard]] double oldest_inflight_start_us() const noexcept;

  void try_start_cpu(SimTime now, FrameSource& source);
  void try_handoff_to_gpu();
};

}  // namespace nextgov::render
