#include "render/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace nextgov::render {

namespace {
constexpr double kInf = 1e18;
}

RenderPipeline::RenderPipeline(PipelineConfig cfg)
    : cfg_{cfg}, vsync_period_us_{1e6 / cfg.refresh_hz} {
  require(cfg.refresh_hz > 0.0, "refresh rate must be positive");
  require(cfg.back_buffers >= 1, "need at least one back buffer");
  next_vsync_us_ = vsync_period_us_;
}

void RenderPipeline::reset(SimTime now) noexcept {
  cpu_job_.reset();
  handoff_.reset();
  gpu_job_.reset();
  completed_ = 0;
  pending_gpu_cycles_ = 0.0;
  fps_counter_.clear();
  drop_counter_.clear();
  const double now_us = static_cast<double>(now.us());
  next_vsync_us_ = (std::floor(now_us / vsync_period_us_) + 1.0) * vsync_period_us_;
}

void RenderPipeline::try_start_cpu(SimTime now, FrameSource& source) {
  // The CPU can record the next frame as long as its output slot is free;
  // buffer back-pressure is applied at the GPU handoff.
  if (cpu_job_.has_value() || handoff_.has_value()) return;
  if (!source.wants_frame(now)) return;
  const FrameJob job = source.begin_frame(now);
  cpu_job_ = StageJob{std::max(job.cpu_cycles, 1.0), static_cast<double>(now.us())};
  pending_gpu_cycles_ = std::max(job.gpu_cycles, 1.0);
}

void RenderPipeline::try_handoff_to_gpu() {
  // The GPU needs a free back buffer to render into: one is occupied per
  // completed-but-unflipped frame.
  if (!handoff_.has_value() || gpu_job_.has_value()) return;
  if (completed_ >= cfg_.back_buffers) return;
  gpu_job_ = StageJob{handoff_->gpu_cycles, handoff_->started_us};
  handoff_.reset();
}

double RenderPipeline::oldest_inflight_start_us() const noexcept {
  double oldest = -1.0;
  const auto consider = [&oldest](double t) {
    if (oldest < 0.0 || t < oldest) oldest = t;
  };
  if (gpu_job_) consider(gpu_job_->started_us);
  if (handoff_) consider(handoff_->started_us);
  if (cpu_job_) consider(cpu_job_->started_us);
  return oldest;
}

PipelineStepResult RenderPipeline::step(SimTime now, SimTime dt, double f_cpu_hz,
                                        double f_gpu_hz, FrameSource& source) {
  NEXTGOV_ASSERT(f_cpu_hz > 0.0 && f_gpu_hz > 0.0);
  PipelineStepResult result;
  double cursor_us = static_cast<double>(now.us());
  const double end_us = cursor_us + static_cast<double>(dt.us());
  const double cpu_rate = f_cpu_hz / 1e6;  // cycles per microsecond
  const double gpu_rate = f_gpu_hz / 1e6;

  while (cursor_us < end_us - 1e-9) {
    try_start_cpu(SimTime{static_cast<std::int64_t>(cursor_us)}, source);
    try_handoff_to_gpu();

    // Time to each candidate event.
    const double to_vsync = next_vsync_us_ - cursor_us;
    const double to_cpu_done =
        cpu_job_ ? cpu_job_->remaining_cycles / cpu_rate : kInf;
    const double to_gpu_done =
        gpu_job_ ? gpu_job_->remaining_cycles / gpu_rate : kInf;
    const double to_end = end_us - cursor_us;
    const double advance = std::max(1e-6, std::min({to_vsync, to_cpu_done, to_gpu_done, to_end}));

    if (cpu_job_) {
      cpu_job_->remaining_cycles -= advance * cpu_rate;
      result.cpu_busy_seconds += advance / 1e6;
      if (cpu_job_->remaining_cycles <= 1e-6) {
        const double started = cpu_job_->started_us;
        cpu_job_.reset();
        handoff_ = HandoffJob{pending_gpu_cycles_, started};
      }
    }
    if (gpu_job_) {
      gpu_job_->remaining_cycles -= advance * gpu_rate;
      result.gpu_busy_seconds += advance / 1e6;
      if (gpu_job_->remaining_cycles <= 1e-6) {
        gpu_job_.reset();
        ++completed_;
        NEXTGOV_ASSERT(completed_ <= cfg_.back_buffers);
      }
    }

    cursor_us += advance;

    if (cursor_us >= next_vsync_us_ - 1e-9) {
      // VSync: flip a completed back buffer to the front, or - when a frame
      // has been in flight for more than a full VSync period without
      // finishing - record a missed deadline (a user-visible drop). A frame
      // that merely started mid-interval (video cadence) is not a drop.
      if (completed_ > 0) {
        --completed_;
        ++presented_total_;
        ++result.frames_presented;
        fps_counter_.on_present(SimTime{static_cast<std::int64_t>(cursor_us)});
      } else {
        const double oldest = oldest_inflight_start_us();
        if (oldest >= 0.0 && cursor_us - oldest > vsync_period_us_ + 1e-6) {
          ++dropped_total_;
          ++result.frames_dropped;
          drop_counter_.on_present(SimTime{static_cast<std::int64_t>(cursor_us)});
        }
      }
      next_vsync_us_ += vsync_period_us_;
    }
  }
  return result;
}

}  // namespace nextgov::render
