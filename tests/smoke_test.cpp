// smoke_test.cpp - end-to-end sanity: the full stack builds, runs a short
// session under every governor kind and produces physically sane numbers.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace nextgov::sim {
namespace {

TEST(Smoke, ShortSessionUnderEveryGovernor) {
  for (GovernorKind kind : {GovernorKind::kSchedutil, GovernorKind::kPerformance,
                            GovernorKind::kPowersave, GovernorKind::kOndemand,
                            GovernorKind::kIntQos, GovernorKind::kNext}) {
    ExperimentConfig config;
    config.governor = kind;
    config.duration = SimTime::from_seconds(10.0);
    config.seed = 42;
    const SessionResult r = run_app_session(workload::AppId::kFacebook, config);
    EXPECT_GT(r.avg_power_w, 0.5) << to_string(kind);
    EXPECT_LT(r.avg_power_w, 15.0) << to_string(kind);
    EXPECT_GE(r.avg_temp_big_c, 20.0) << to_string(kind);
    EXPECT_LT(r.peak_temp_big_c, 120.0) << to_string(kind);
    EXPECT_GE(r.frames_presented, 0) << to_string(kind);
  }
}

}  // namespace
}  // namespace nextgov::sim
