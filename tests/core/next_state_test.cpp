// Unit tests for the Next agent's state/action encodings.
#include <gtest/gtest.h>

#include "core/next_state.hpp"
#include "soc/soc.hpp"

namespace nextgov::core {
namespace {

governors::Observation make_obs(std::size_t big_idx, std::size_t little_idx,
                                std::size_t gpu_idx, double fps, double power, double t_big,
                                double t_dev) {
  governors::Observation obs;
  obs.clusters.resize(3);
  obs.clusters[0].freq_index = big_idx;
  obs.clusters[0].opp_count = 18;
  obs.clusters[1].freq_index = little_idx;
  obs.clusters[1].opp_count = 10;
  obs.clusters[2].freq_index = gpu_idx;
  obs.clusters[2].opp_count = 6;
  obs.fps = Fps{fps};
  obs.sensors.power = Watts{power};
  obs.sensors.big = Celsius{t_big};
  obs.sensors.device = Celsius{t_dev};
  return obs;
}

TEST(Actions, PaperNineActionLayout) {
  // 3 PE clusters x {up, down, nothing} = 9 actions (Section IV-B).
  EXPECT_EQ(action_index(0, ActionKind::kFreqUp), 0u);
  EXPECT_EQ(action_index(0, ActionKind::kFreqDown), 1u);
  EXPECT_EQ(action_index(0, ActionKind::kDoNothing), 2u);
  EXPECT_EQ(action_index(2, ActionKind::kDoNothing), 8u);
  for (std::size_t i = 0; i < 9; ++i) {
    const NextAction a = action_from_index(i);
    EXPECT_EQ(action_index(a.cluster, a.kind), i);
  }
}

TEST(Encoder, ActionCountIsThreePerCluster) {
  const NextStateEncoder enc{NextConfig{}, {18, 10, 6}};
  EXPECT_EQ(enc.action_count(), 9u);
  EXPECT_EQ(enc.cluster_count(), 3u);
  const NextStateEncoder enc2{NextConfig{}, {18, 10, 6, 12}};
  EXPECT_EQ(enc2.action_count(), 12u);  // generalizes to m clusters
}

TEST(Encoder, StateSpaceMatchesConfiguredCardinalities) {
  NextConfig cfg;
  cfg.fps_levels = 30;
  cfg.power_bins = 8;
  cfg.temp_bins = 8;
  const NextStateEncoder enc{cfg, {18, 10, 6}};
  EXPECT_EQ(enc.state_space_size(), 18ull * 10 * 6 * 30 * 30 * 8 * 8 * 8);
}

TEST(Encoder, DistinctObservationsGetDistinctKeys) {
  const NextStateEncoder enc{NextConfig{}, {18, 10, 6}};
  const auto base = enc.encode(make_obs(3, 2, 1, 30, 3.0, 45, 30), 30);
  EXPECT_NE(enc.encode(make_obs(4, 2, 1, 30, 3.0, 45, 30), 30), base);
  EXPECT_NE(enc.encode(make_obs(3, 3, 1, 30, 3.0, 45, 30), 30), base);
  EXPECT_NE(enc.encode(make_obs(3, 2, 2, 30, 3.0, 45, 30), 30), base);
  EXPECT_NE(enc.encode(make_obs(3, 2, 1, 58, 3.0, 45, 30), 30), base);
  EXPECT_NE(enc.encode(make_obs(3, 2, 1, 30, 3.0, 45, 30), 58), base);
  EXPECT_NE(enc.encode(make_obs(3, 2, 1, 30, 9.0, 45, 30), 30), base);
  EXPECT_NE(enc.encode(make_obs(3, 2, 1, 30, 3.0, 85, 30), 30), base);
  EXPECT_NE(enc.encode(make_obs(3, 2, 1, 30, 3.0, 45, 60), 30), base);
}

TEST(Encoder, QuantizationCollapsesNearbyValues) {
  const NextStateEncoder enc{NextConfig{}, {18, 10, 6}};
  // 30 FPS levels over [0,60] -> 2 FPS per bin: 30.2 and 31.2 share a bin.
  EXPECT_EQ(enc.encode(make_obs(3, 2, 1, 30.2, 3.0, 45, 30), 30),
            enc.encode(make_obs(3, 2, 1, 31.2, 3.05, 45.05, 30.05), 30));
}

TEST(Encoder, FpsLevelKnobChangesResolution) {
  NextConfig coarse;
  coarse.fps_levels = 5;
  const NextStateEncoder enc{coarse, {18, 10, 6}};
  // 12 FPS per bin: 30 and 35 collapse into [24,36); 30 and 50 do not.
  EXPECT_EQ(enc.fps_level(30.0), enc.fps_level(35.0));
  EXPECT_NE(enc.fps_level(30.0), enc.fps_level(50.0));
}

TEST(Encoder, OutOfRangeSensorValuesClampSafely) {
  const NextStateEncoder enc{NextConfig{}, {18, 10, 6}};
  const auto k1 = enc.encode(make_obs(0, 0, 0, 500.0, 99.0, 200.0, -40.0), 500);
  const auto k2 = enc.encode(make_obs(0, 0, 0, 60.0, 12.0, 95.0, 20.0), 60);
  EXPECT_EQ(k1, k2);
}

TEST(Encoder, RejectsInvalidConstruction) {
  EXPECT_THROW(NextStateEncoder(NextConfig{}, {}), ConfigError);
  EXPECT_THROW(NextStateEncoder(NextConfig{}, {18, 0, 6}), ConfigError);
}

}  // namespace
}  // namespace nextgov::core
