// Unit tests for the frame window (Section IV-A of the paper).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/frame_window.hpp"

namespace nextgov::core {
namespace {

using namespace nextgov::literals;

TEST(FrameWindow, PaperDefaultsHold160Samples) {
  // "For 4 seconds of frame window we are able to capture 160 distinct
  // values of frame rate" at 25 ms sampling.
  const FrameWindow w;
  EXPECT_EQ(w.capacity(), 160u);
  EXPECT_EQ(w.sample_period(), 25_ms);
}

TEST(FrameWindow, EmptyWindowTargetsZero) {
  const FrameWindow w;
  EXPECT_EQ(w.target_fps(), 0);
}

TEST(FrameWindow, TargetIsModeOfSamples) {
  FrameWindow w;
  for (int i = 0; i < 100; ++i) w.add_sample(Fps{60.0});
  for (int i = 0; i < 60; ++i) w.add_sample(Fps{30.0});
  EXPECT_EQ(w.target_fps(), 60);
}

TEST(FrameWindow, OldSamplesAgeOut) {
  FrameWindow w;
  for (int i = 0; i < 160; ++i) w.add_sample(Fps{60.0});
  EXPECT_EQ(w.target_fps(), 60);
  // A full window of idle samples displaces the burst completely.
  for (int i = 0; i < 160; ++i) w.add_sample(Fps{0.0});
  EXPECT_EQ(w.target_fps(), 0);
}

TEST(FrameWindow, TransientDipDoesNotFlipTarget) {
  // 1 s of degraded FPS inside a 4 s window must not move the mode - the
  // agent's QoS target is robust against its own exploration dips.
  FrameWindow w;
  for (int i = 0; i < 120; ++i) w.add_sample(Fps{60.0});
  for (int i = 0; i < 40; ++i) w.add_sample(Fps{20.0});
  EXPECT_EQ(w.target_fps(), 60);
}

TEST(FrameWindow, FractionalSamplesAreRounded) {
  FrameWindow w;
  for (int i = 0; i < 10; ++i) w.add_sample(Fps{29.6});
  EXPECT_EQ(w.target_fps(), 30);
}

TEST(FrameWindow, NegativeReadingsClampToZero) {
  FrameWindow w;
  w.add_sample(Fps{-3.0});
  EXPECT_EQ(w.target_fps(), 0);
}

TEST(FrameWindow, ConfigurableLengthChangesCapacity) {
  const FrameWindow w{25_ms, SimTime::from_seconds(8.0)};
  EXPECT_EQ(w.capacity(), 320u);
  const FrameWindow w1{25_ms, SimTime::from_seconds(1.0)};
  EXPECT_EQ(w1.capacity(), 40u);
}

TEST(FrameWindow, ClearEmptiesTheWindow) {
  FrameWindow w;
  w.add_sample(Fps{60.0});
  EXPECT_EQ(w.sample_count(), 1u);
  w.clear();
  EXPECT_EQ(w.sample_count(), 0u);
  EXPECT_EQ(w.target_fps(), 0);
}

TEST(FrameWindow, Validation) {
  EXPECT_THROW(FrameWindow(SimTime::zero(), 4_s), ConfigError);
  EXPECT_THROW(FrameWindow(25_ms, 1_ms), ConfigError);
}

TEST(FrameWindow, FullFlagTracksCapacity) {
  FrameWindow w{25_ms, SimTime::from_ms(100)};
  EXPECT_FALSE(w.full());
  for (int i = 0; i < 4; ++i) w.add_sample(Fps{10.0});
  EXPECT_TRUE(w.full());
}

}  // namespace
}  // namespace nextgov::core
