// Unit tests for the Next agent: reward shape, action semantics, modes,
// persistence.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/next_agent.hpp"
#include "soc/soc.hpp"

namespace nextgov::core {
namespace {

using namespace nextgov::literals;

governors::Observation obs_for(const soc::Soc& soc, double fps, double power, double t_big,
                               double t_dev, double drop_rate = 0.0) {
  governors::Observation obs;
  obs.clusters.resize(soc.cluster_count());
  for (std::size_t i = 0; i < soc.cluster_count(); ++i) {
    const auto& c = soc.cluster(i);
    obs.clusters[i].freq_index = c.freq_index();
    obs.clusters[i].cap_index = c.max_cap_index();
    obs.clusters[i].opp_count = c.opps().size();
    obs.clusters[i].frequency = c.frequency();
    obs.clusters[i].max_frequency = c.opps().highest().frequency;
  }
  obs.fps = Fps{fps};
  obs.drop_rate = drop_rate;
  obs.sensors.power = Watts{power};
  obs.sensors.big = Celsius{t_big};
  obs.sensors.device = Celsius{t_dev};
  return obs;
}

TEST(NextAgent, FactorySizesFromSoc) {
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  EXPECT_EQ(agent->encoder().action_count(), 9u);
  EXPECT_EQ(agent->period(), 100_ms);
  EXPECT_EQ(agent->sample_period(), 25_ms);
  EXPECT_EQ(agent->name(), "next");
}

TEST(NextAgent, RewardPeaksWhenFpsEqualsTarget) {
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  const double on_target = agent->reward(obs_for(soc, 30.0, 3.0, 45.0, 30.0), 30);
  const double below = agent->reward(obs_for(soc, 15.0, 3.0, 45.0, 30.0), 30);
  const double above = agent->reward(obs_for(soc, 55.0, 3.0, 45.0, 30.0), 30);
  EXPECT_GT(on_target, below);
  EXPECT_GT(on_target, above);
}

TEST(NextAgent, RewardPrefersLowerPowerAtSameQoS) {
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  const double hot = agent->reward(obs_for(soc, 60.0, 6.0, 70.0, 40.0), 60);
  const double cool = agent->reward(obs_for(soc, 60.0, 3.5, 50.0, 33.0), 60);
  EXPECT_GT(cool, hot);
}

TEST(NextAgent, FrameDropsCrushReward) {
  // The jank gate: a configuration delivering the target while missing
  // deadlines (stutter) must score far below a clean one.
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  const double clean = agent->reward(obs_for(soc, 40.0, 3.0, 45.0, 30.0, 0.0), 40);
  const double janky = agent->reward(obs_for(soc, 40.0, 3.0, 45.0, 30.0, 20.0), 40);
  EXPECT_LT(janky, clean * 0.2);
}

TEST(NextAgent, IdleTargetPaysForSheddingPower) {
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  const double wasteful = agent->reward(obs_for(soc, 0.0, 3.8, 45.0, 30.0), 0);
  const double frugal = agent->reward(obs_for(soc, 0.0, 1.5, 30.0, 25.0), 0);
  EXPECT_GT(frugal, wasteful);
}

TEST(NextAgent, IdleRewardCannotBeatHealthyTracking) {
  // Guard against the starve-to-idle exploit: perfectly tracking a real
  // target at sane power beats the best possible idle reward when power
  // cannot actually reach zero (games keep >1.5 W background).
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  const double healthy_game = agent->reward(obs_for(soc, 60.0, 3.6, 52.0, 34.0), 60);
  const double starved_game = agent->reward(obs_for(soc, 0.0, 2.0, 35.0, 28.0), 0);
  EXPECT_GT(healthy_game, starved_game);
}

TEST(NextAgent, FrameWindowFeedsTarget) {
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  EXPECT_EQ(agent->current_target_fps(), 0);
  for (int i = 0; i < 100; ++i) agent->on_sample(obs_for(soc, 60.0, 3.0, 40.0, 30.0));
  EXPECT_EQ(agent->current_target_fps(), 60);
}

TEST(NextAgent, ActionsActuateMaxfreqAroundOperatingPoint) {
  soc::Soc soc = soc::make_exynos9810();
  NextConfig cfg;
  cfg.epsilon = {0.0, 0.0, 1};  // deterministic greedy
  auto agent = make_next_agent(soc, cfg, 1);
  agent->set_mode(AgentMode::kTraining);
  // Operating point mid-table; an untrained greedy agent picks action 0 =
  // "big frequency up": cap must move to op+1.
  soc.big().set_max_cap_index(17);
  soc.big().set_freq_index(5);
  auto obs = obs_for(soc, 30.0, 3.0, 45.0, 30.0);
  agent->control(obs, soc);
  EXPECT_EQ(soc.big().max_cap_index(), 6u);
}

TEST(NextAgent, DeployedModeNeverWritesQTable) {
  soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  agent->set_mode(AgentMode::kDeployed);
  for (int i = 0; i < 50; ++i) {
    auto obs = obs_for(soc, 30.0, 3.0, 45.0, 30.0);
    agent->control(obs, soc);
  }
  EXPECT_EQ(agent->q_table().total_visits(), 0u);
  EXPECT_EQ(agent->decisions(), 50u);
}

TEST(NextAgent, TrainingModeLearns) {
  soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  agent->set_mode(AgentMode::kTraining);
  for (int i = 0; i < 50; ++i) {
    auto obs = obs_for(soc, 30.0, 3.0, 45.0, 30.0);
    agent->control(obs, soc);
  }
  EXPECT_GT(agent->q_table().total_visits(), 0u);
  EXPECT_GT(agent->q_table().state_count(), 0u);
}

TEST(NextAgent, QTablePersistenceRoundTrip) {
  const std::string path = ::testing::TempDir() + "/next_agent_table.bin";
  soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  agent->set_mode(AgentMode::kTraining);
  for (int i = 0; i < 200; ++i) {
    auto obs = obs_for(soc, 30.0 + (i % 3), 3.0, 45.0, 30.0);
    agent->control(obs, soc);
  }
  agent->save_q_table(path);

  auto fresh = make_next_agent(soc, NextConfig{}, 2);
  fresh->load_q_table(path);
  EXPECT_EQ(fresh->q_table().state_count(), agent->q_table().state_count());
  std::remove(path.c_str());
}

TEST(NextAgent, RejectsMismatchedTable) {
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  EXPECT_THROW(agent->set_q_table(rl::QTable{4}), ConfigError);
}

TEST(NextAgent, ResetKeepsLearnedTable) {
  soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  agent->set_mode(AgentMode::kTraining);
  for (int i = 0; i < 100; ++i) {
    auto obs = obs_for(soc, 30.0, 3.0, 45.0, 30.0);
    agent->on_sample(obs);
    agent->control(obs, soc);
  }
  const auto states = agent->q_table().state_count();
  agent->reset();
  EXPECT_EQ(agent->q_table().state_count(), states);
  EXPECT_EQ(agent->current_target_fps(), 0);  // window cleared
}

}  // namespace
}  // namespace nextgov::core
