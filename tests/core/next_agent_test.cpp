// Unit tests for the Next agent: reward shape, action semantics, modes,
// persistence.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/next_agent.hpp"
#include "soc/soc.hpp"

namespace nextgov::core {
namespace {

using namespace nextgov::literals;

governors::Observation obs_for(const soc::Soc& soc, double fps, double power, double t_big,
                               double t_dev, double drop_rate = 0.0) {
  governors::Observation obs;
  obs.clusters.resize(soc.cluster_count());
  for (std::size_t i = 0; i < soc.cluster_count(); ++i) {
    const auto& c = soc.cluster(i);
    obs.clusters[i].freq_index = c.freq_index();
    obs.clusters[i].cap_index = c.max_cap_index();
    obs.clusters[i].opp_count = c.opps().size();
    obs.clusters[i].frequency = c.frequency();
    obs.clusters[i].max_frequency = c.opps().highest().frequency;
  }
  obs.fps = Fps{fps};
  obs.drop_rate = drop_rate;
  obs.sensors.power = Watts{power};
  obs.sensors.big = Celsius{t_big};
  obs.sensors.device = Celsius{t_dev};
  return obs;
}

TEST(NextAgent, FactorySizesFromSoc) {
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  EXPECT_EQ(agent->encoder().action_count(), 9u);
  EXPECT_EQ(agent->period(), 100_ms);
  EXPECT_EQ(agent->sample_period(), 25_ms);
  EXPECT_EQ(agent->name(), "next");
}

TEST(NextAgent, RewardPeaksWhenFpsEqualsTarget) {
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  const double on_target = agent->reward(obs_for(soc, 30.0, 3.0, 45.0, 30.0), 30);
  const double below = agent->reward(obs_for(soc, 15.0, 3.0, 45.0, 30.0), 30);
  const double above = agent->reward(obs_for(soc, 55.0, 3.0, 45.0, 30.0), 30);
  EXPECT_GT(on_target, below);
  EXPECT_GT(on_target, above);
}

TEST(NextAgent, RewardPrefersLowerPowerAtSameQoS) {
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  const double hot = agent->reward(obs_for(soc, 60.0, 6.0, 70.0, 40.0), 60);
  const double cool = agent->reward(obs_for(soc, 60.0, 3.5, 50.0, 33.0), 60);
  EXPECT_GT(cool, hot);
}

TEST(NextAgent, FrameDropsCrushReward) {
  // The jank gate: a configuration delivering the target while missing
  // deadlines (stutter) must score far below a clean one.
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  const double clean = agent->reward(obs_for(soc, 40.0, 3.0, 45.0, 30.0, 0.0), 40);
  const double janky = agent->reward(obs_for(soc, 40.0, 3.0, 45.0, 30.0, 20.0), 40);
  EXPECT_LT(janky, clean * 0.2);
}

TEST(NextAgent, IdleTargetPaysForSheddingPower) {
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  const double wasteful = agent->reward(obs_for(soc, 0.0, 3.8, 45.0, 30.0), 0);
  const double frugal = agent->reward(obs_for(soc, 0.0, 1.5, 30.0, 25.0), 0);
  EXPECT_GT(frugal, wasteful);
}

TEST(NextAgent, IdleRewardCannotBeatHealthyTracking) {
  // Guard against the starve-to-idle exploit: perfectly tracking a real
  // target at sane power beats the best possible idle reward when power
  // cannot actually reach zero (games keep >1.5 W background).
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  const double healthy_game = agent->reward(obs_for(soc, 60.0, 3.6, 52.0, 34.0), 60);
  const double starved_game = agent->reward(obs_for(soc, 0.0, 2.0, 35.0, 28.0), 0);
  EXPECT_GT(healthy_game, starved_game);
}

TEST(NextAgent, FrameWindowFeedsTarget) {
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  EXPECT_EQ(agent->current_target_fps(), 0);
  for (int i = 0; i < 100; ++i) agent->on_sample(obs_for(soc, 60.0, 3.0, 40.0, 30.0));
  EXPECT_EQ(agent->current_target_fps(), 60);
}

TEST(NextAgent, ActionsActuateMaxfreqAroundOperatingPoint) {
  soc::Soc soc = soc::make_exynos9810();
  NextConfig cfg;
  cfg.epsilon = {0.0, 0.0, 1};  // deterministic greedy
  auto agent = make_next_agent(soc, cfg, 1);
  agent->set_mode(AgentMode::kTraining);
  // Operating point mid-table; an untrained greedy agent picks action 0 =
  // "big frequency up": cap must move to op+1.
  soc.big().set_max_cap_index(17);
  soc.big().set_freq_index(5);
  auto obs = obs_for(soc, 30.0, 3.0, 45.0, 30.0);
  agent->control(obs, soc);
  EXPECT_EQ(soc.big().max_cap_index(), 6u);
}

TEST(NextAgent, DeployedModeNeverWritesQTable) {
  soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  agent->set_mode(AgentMode::kDeployed);
  for (int i = 0; i < 50; ++i) {
    auto obs = obs_for(soc, 30.0, 3.0, 45.0, 30.0);
    agent->control(obs, soc);
  }
  EXPECT_EQ(agent->q_table().total_visits(), 0u);
  EXPECT_EQ(agent->decisions(), 50u);
}

TEST(NextAgent, TrainingModeLearns) {
  soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  agent->set_mode(AgentMode::kTraining);
  for (int i = 0; i < 50; ++i) {
    auto obs = obs_for(soc, 30.0, 3.0, 45.0, 30.0);
    agent->control(obs, soc);
  }
  EXPECT_GT(agent->q_table().total_visits(), 0u);
  EXPECT_GT(agent->q_table().state_count(), 0u);
}

TEST(NextAgent, QTablePersistenceRoundTrip) {
  const std::string path = ::testing::TempDir() + "/next_agent_table.bin";
  soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  agent->set_mode(AgentMode::kTraining);
  for (int i = 0; i < 200; ++i) {
    auto obs = obs_for(soc, 30.0 + (i % 3), 3.0, 45.0, 30.0);
    agent->control(obs, soc);
  }
  agent->save_q_table(path);

  auto fresh = make_next_agent(soc, NextConfig{}, 2);
  fresh->load_q_table(path);
  EXPECT_EQ(fresh->q_table().state_count(), agent->q_table().state_count());
  std::remove(path.c_str());
}

TEST(NextAgent, RejectsMismatchedTable) {
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  EXPECT_THROW(agent->set_q_table(rl::QTable{4}), ConfigError);
}

TEST(NextAgent, ResetKeepsLearnedTable) {
  soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 1);
  agent->set_mode(AgentMode::kTraining);
  for (int i = 0; i < 100; ++i) {
    auto obs = obs_for(soc, 30.0, 3.0, 45.0, 30.0);
    agent->on_sample(obs);
    agent->control(obs, soc);
  }
  const auto states = agent->q_table().state_count();
  agent->reset();
  EXPECT_EQ(agent->q_table().state_count(), states);
  EXPECT_EQ(agent->current_target_fps(), 0);  // window cleared
}

TEST(NextAgent, SaveRestoreStateResumesTrainingBitIdentically) {
  // The checkpoint contract: an agent restored mid-training must produce
  // exactly the trajectory the original would have - table, exploration
  // draws, window mode, pending transition and reward stats all included.
  soc::Soc soc_a = soc::make_exynos9810();
  auto a = make_next_agent(soc_a, NextConfig{}, 77);
  for (int i = 0; i < 150; ++i) {
    auto obs = obs_for(soc_a, 28.0 + (i % 5), 2.5, 50.0, 32.0);
    a->on_sample(obs);
    if (i % 4 == 0) a->control(obs, soc_a);
  }
  ByteWriter out;
  a->save_state(out);

  soc::Soc soc_b = soc::make_exynos9810();
  auto b = make_next_agent(soc_b, NextConfig{}, 1);  // different seed on purpose
  ByteReader in{out.data(), "test"};
  b->restore_state(in);
  EXPECT_TRUE(in.done());
  EXPECT_TRUE(b->q_table() == a->q_table());
  EXPECT_EQ(b->decisions(), a->decisions());
  EXPECT_EQ(b->last_reward(), a->last_reward());
  EXPECT_EQ(b->current_target_fps(), a->current_target_fps());
  // Mirror the SoC actuation state too, then run both forward: every
  // decision (including epsilon-greedy draws) must match.
  for (std::size_t c = 0; c < soc_a.cluster_count(); ++c) {
    soc_b.cluster(c).set_max_cap_index(soc_a.cluster(c).max_cap_index());
    soc_b.cluster(c).set_freq_index(soc_a.cluster(c).freq_index());
  }
  for (int i = 0; i < 200; ++i) {
    auto obs_a = obs_for(soc_a, 27.0 + (i % 7), 2.8, 52.0, 33.0);
    auto obs_b = obs_for(soc_b, 27.0 + (i % 7), 2.8, 52.0, 33.0);
    a->on_sample(obs_a);
    b->on_sample(obs_b);
    if (i % 4 == 0) {
      a->control(obs_a, soc_a);
      b->control(obs_b, soc_b);
      for (std::size_t c = 0; c < soc_a.cluster_count(); ++c) {
        ASSERT_EQ(soc_a.cluster(c).max_cap_index(), soc_b.cluster(c).max_cap_index())
            << "decision diverged at step " << i;
      }
      ASSERT_EQ(a->last_reward(), b->last_reward()) << "reward diverged at step " << i;
    }
  }
  EXPECT_TRUE(a->q_table() == b->q_table());
  EXPECT_EQ(a->decisions(), b->decisions());
}

TEST(NextAgent, RestoreStateRejectsMismatchedActionCountAndCorruption) {
  const soc::Soc soc = soc::make_exynos9810();
  auto agent = make_next_agent(soc, NextConfig{}, 3);
  ByteWriter out;
  agent->save_state(out);
  // Truncated payload -> descriptive SerializeError, agent untouched.
  {
    auto victim = make_next_agent(soc, NextConfig{}, 4);
    std::vector<std::uint8_t> cut{out.data().begin(),
                                  out.data().begin() + static_cast<std::ptrdiff_t>(16)};
    ByteReader in{cut, "test"};
    EXPECT_THROW(victim->restore_state(in), SerializeError);
  }
  // A state whose Q-table was sized for a different action count must be
  // rejected up front (the exynos9810 agent has 9 actions).
  {
    rl::QTable alien{4};
    alien.set_q(1, 0, 0.5);
    ByteWriter alien_out;
    alien.serialize(alien_out);
    auto victim = make_next_agent(soc, NextConfig{}, 6);
    ByteReader in{alien_out.data(), "test"};
    EXPECT_THROW(victim->restore_state(in), SerializeError);
  }
}

}  // namespace
}  // namespace nextgov::core
