// Unit tests for PPDW (Eq. 1/2) - the paper's metric.
#include <gtest/gtest.h>

#include "core/ppdw.hpp"

namespace nextgov::core {
namespace {

TEST(Ppdw, Equation1) {
  // PPDW = FPS / ((T - Ta) * P): 60 / ((53-21) * 3.54) ~ 0.5297 - the
  // magnitude of the paper's Fig. 4 values at 60 FPS (0.5316).
  const double v = ppdw(60.0, Watts{3.54}, Celsius{53.0}, Celsius{21.0});
  EXPECT_NEAR(v, 0.5297, 0.0005);
}

TEST(Ppdw, ZeroFpsGivesZero) {
  EXPECT_DOUBLE_EQ(ppdw(0.0, Watts{5.0}, Celsius{60.0}, Celsius{21.0}), 0.0);
}

TEST(Ppdw, GuardsAgainstDegenerateDenominator) {
  // At ambient temperature the delta clamps to 0.5 K; power clamps to 1 mW.
  const double at_ambient = ppdw(30.0, Watts{2.0}, Celsius{21.0}, Celsius{21.0});
  EXPECT_DOUBLE_EQ(at_ambient, 30.0 / (0.5 * 2.0));
  const double no_power = ppdw(30.0, Watts{0.0}, Celsius{40.0}, Celsius{21.0});
  EXPECT_DOUBLE_EQ(no_power, 30.0 / (19.0 * 1e-3));
}

TEST(Ppdw, HigherFpsSamePowerTempIsBetter) {
  const double lo = ppdw(30.0, Watts{3.0}, Celsius{50.0}, Celsius{21.0});
  const double hi = ppdw(60.0, Watts{3.0}, Celsius{50.0}, Celsius{21.0});
  EXPECT_GT(hi, lo);
}

TEST(Ppdw, LowerPowerOrTempIsBetter) {
  const double base = ppdw(30.0, Watts{3.0}, Celsius{50.0}, Celsius{21.0});
  EXPECT_GT(ppdw(30.0, Watts{2.0}, Celsius{50.0}, Celsius{21.0}), base);
  EXPECT_GT(ppdw(30.0, Watts{3.0}, Celsius{40.0}, Celsius{21.0}), base);
}

TEST(PpdwBounds, WorstAndBestMatchPaperDefinitions) {
  const PpdwBounds b;
  // PPDW_worst = FPS_least / ((T_max - Ta) * P_max) = 1/(74*12).
  EXPECT_NEAR(b.worst(), 1.0 / (74.0 * 12.0), 1e-9);
  // PPDW_best = FPS_max / ((T_least - Ta) * P_least) = 60/(8*1).
  EXPECT_NEAR(b.best(), 60.0 / 8.0, 1e-9);
  EXPECT_LT(b.worst(), b.best());
}

TEST(PpdwBounds, Equation2OrderingHoldsForRealisticOperatingPoints) {
  const PpdwBounds b;
  // Every realistic operating point must land inside (worst, best].
  for (double fps : {1.0, 10.0, 30.0, 60.0}) {
    for (double p : {1.2, 3.5, 8.0, 12.0}) {
      for (double t : {30.0, 52.0, 75.0, 95.0}) {
        const double v = clamp_to_bounds(ppdw(fps, Watts{p}, Celsius{t}, b.ambient), b);
        EXPECT_GE(v, b.worst());
        EXPECT_LE(v, b.best());
      }
    }
  }
}

TEST(PpdwScore, MonotoneSaturatingSquash) {
  EXPECT_DOUBLE_EQ(ppdw_score(0.0, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(ppdw_score(0.3, 0.3), 0.5);  // ref is the half-way point
  EXPECT_LT(ppdw_score(0.1, 0.3), ppdw_score(0.2, 0.3));
  EXPECT_LT(ppdw_score(100.0, 0.3), 1.0);
  EXPECT_GT(ppdw_score(100.0, 0.3), 0.99);
}

TEST(PpdwScore, NegativeInputClampsToZero) {
  EXPECT_DOUBLE_EQ(ppdw_score(-1.0, 0.3), 0.0);
}

TEST(Ppdw, Fig4TrendPpdwRisesWithGovernedFps) {
  // The paper's Fig. 4: on a well-governed game, PPDW grows with FPS
  // because power/temperature grow sublinearly relative to delivered
  // frames. Emulate the figure's operating points.
  struct Point {
    double fps, p, t;
  };
  // FPS, power and big temp roughly as a governed Lineage run would scale
  // (power and heat grow sublinearly in delivered frames).
  const Point pts[] = {{10, 1.65, 31.5}, {20, 1.8, 33}, {30, 1.95, 34.5},
                       {40, 2.1, 36},    {50, 2.25, 37.5}, {60, 2.4, 39}};
  double prev = 0.0;
  for (const auto& pt : pts) {
    const double v = ppdw(pt.fps, Watts{pt.p}, Celsius{pt.t}, Celsius{21.0});
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(Ppdw, Fig4WorstCasePointsAreFarBelowGovernedOnes) {
  // Red points in Fig. 4: FPS 0/1/10 at max power and max temperature.
  const double governed_10 = ppdw(10.0, Watts{1.8}, Celsius{33.0}, Celsius{21.0});
  const double worst_10 = ppdw(10.0, Watts{12.0}, Celsius{95.0}, Celsius{21.0});
  EXPECT_LT(worst_10, governed_10 / 10.0);
  const double worst_1 = ppdw(1.0, Watts{12.0}, Celsius{95.0}, Celsius{21.0});
  EXPECT_LT(worst_1, worst_10);
  EXPECT_DOUBLE_EQ(ppdw(0.0, Watts{12.0}, Celsius{95.0}, Celsius{21.0}), 0.0);
}

}  // namespace
}  // namespace nextgov::core
