// Integration tests for high-refresh-rate panels (paper Section I: "there
// are some commercial devices which have higher display refresh rate such
// as 90 Hz, 120 Hz"). The substrate must honour the refresh knob end to
// end: VSync cadence, FPS ceilings, frame-drop semantics and the Next
// agent's QoS bounds.
#include <gtest/gtest.h>

#include "core/next_agent.hpp"
#include "governors/schedutil.hpp"
#include "sim/engine.hpp"
#include "workload/apps.hpp"
#include "workload/phased_app.hpp"

namespace nextgov::sim {
namespace {

using namespace nextgov::literals;

/// A deliberately light always-rendering app: cheap enough to hit any
/// refresh ceiling at max clocks.
workload::AppSpec light_continuous_app() {
  workload::AppSpec s;
  s.name = "light_anim";
  workload::PhaseSpec p;
  p.name = "anim";
  p.demand = workload::FrameDemand::kContinuous;
  p.cpu = {1.0e6, 0.0};
  p.gpu = {0.8e6, 0.0};
  p.mean_duration_s = 1000.0;
  s.phases.push_back(p);
  return s;
}

std::unique_ptr<Engine> engine_at(double refresh_hz, std::uint64_t seed) {
  EngineConfig cfg;
  cfg.refresh_hz = refresh_hz;
  return std::make_unique<Engine>(
      soc::make_exynos9810(),
      std::make_unique<workload::PhasedApp>(light_continuous_app(), Rng{seed}),
      std::make_unique<governors::SchedutilGovernor>(), nullptr, cfg);
}

class RefreshRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(RefreshRateSweep, FpsCeilingTracksRefreshRate) {
  const double hz = GetParam();
  auto engine = engine_at(hz, 3);
  engine->run(10_s);
  const double fps = engine->average_fps();
  // A trivially light workload saturates the panel: FPS == refresh rate.
  EXPECT_NEAR(fps, hz, hz * 0.06) << "refresh " << hz;
  // And never exceeds it (VSync is a hard ceiling).
  EXPECT_LE(fps, hz + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Panels, RefreshRateSweep, ::testing::Values(60.0, 90.0, 120.0));

TEST(HighRefresh, HigherRefreshCostsMorePowerForSameWorkload) {
  // Rendering 120 frames instead of 60 per second doubles the frame work:
  // the power ordering must follow.
  auto at60 = engine_at(60.0, 5);
  auto at120 = engine_at(120.0, 5);
  at60->run(20_s);
  at120->run(20_s);
  EXPECT_GT(at120->totals().power_w.mean(), at60->totals().power_w.mean());
}

TEST(HighRefresh, NextAgentTracksA90HzTarget) {
  // The agent's QoS bounds scale to the panel: on a 90 Hz device the frame
  // window must be able to report 90 FPS targets.
  EngineConfig cfg;
  cfg.refresh_hz = 90.0;
  core::NextConfig next_cfg;
  next_cfg.ppdw_bounds.fps_max = 90.0;  // widen the QoS range
  auto soc = soc::make_exynos9810();
  auto agent = core::make_next_agent(soc, next_cfg, 9);
  agent->set_mode(core::AgentMode::kTraining);
  auto engine = std::make_unique<Engine>(
      std::move(soc), std::make_unique<workload::PhasedApp>(light_continuous_app(), Rng{9}),
      std::make_unique<governors::SchedutilGovernor>(), std::move(agent), cfg);
  engine->run(30_s);
  auto* next = dynamic_cast<core::NextAgent*>(engine->meta());
  ASSERT_NE(next, nullptr);
  // The sustained 90 FPS stream must be visible as the window's mode.
  EXPECT_GE(next->current_target_fps(), 80);
  EXPECT_LE(next->current_target_fps(), 91);
}

}  // namespace
}  // namespace nextgov::sim
