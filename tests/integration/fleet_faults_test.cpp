// Integration tests for the fleet fault-injection harness: seeded dropout
// and upload corruption are deterministic (worker-count independent),
// degrade rounds gracefully instead of failing them, and compose with
// crash/resume. The long-running FleetServer's churn machinery (mid-round
// lease departures, late-upload carry-over) is held to the same bar at the
// bottom of this file.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/fleet.hpp"
#include "sim/fleet_server.hpp"

namespace nextgov::sim {
namespace {

FleetOptions faulty_fleet() {
  FleetOptions options;
  options.devices = 6;
  options.shards = 2;
  options.rounds = 3;
  options.round_duration = SimTime::from_seconds(20.0);
  options.episode_length = SimTime::from_seconds(10.0);
  options.base_seed = 777;
  options.sync_spread = 2;
  options.faults.seed = 42;
  options.faults.dropout_rate = 0.3;
  options.faults.upload_corruption_rate = 0.5;
  return options;
}

TEST(FleetFaults, FaultedRunIsDeterministicAcrossWorkerCounts) {
  const FleetOptions options = faulty_fleet();
  const FleetResult serial = train_fleet(workload::AppId::kFacebook, options, {.workers = 1});
  const FleetResult pooled = train_fleet(workload::AppId::kFacebook, options, {.workers = 4});
  EXPECT_TRUE(serial.global == pooled.global);
  EXPECT_EQ(serial.total_decisions, pooled.total_decisions);
  EXPECT_EQ(serial.dropped_device_rounds, pooled.dropped_device_rounds);
  EXPECT_EQ(serial.rejected_uploads, pooled.rejected_uploads);
}

TEST(FleetFaults, DropoutActuallyDropsDevicesAndChangesTheRun) {
  FleetOptions options = faulty_fleet();
  options.faults.upload_corruption_rate = 0.0;
  const FleetResult faulted = train_fleet(workload::AppId::kFacebook, options);
  EXPECT_GT(faulted.dropped_device_rounds, 0u);
  EXPECT_EQ(faulted.rejected_uploads, 0u);
  options.faults.dropout_rate = 0.0;
  const FleetResult clean = train_fleet(workload::AppId::kFacebook, options);
  EXPECT_EQ(clean.dropped_device_rounds, 0u);
  // Losing device-rounds must cost training data.
  EXPECT_LT(faulted.total_decisions, clean.total_decisions);
  EXPECT_FALSE(faulted.global == clean.global);
}

TEST(FleetFaults, CorruptedUploadsAreRejectedNotAbsorbed) {
  FleetOptions options = faulty_fleet();
  options.faults.dropout_rate = 0.0;
  options.faults.upload_corruption_rate = 1.0;  // every upload arrives damaged
  options.rounds = 2;
  // Every upload is rejected, the server never hears from anyone, and the
  // run ends with a descriptive error instead of a bogus aggregate.
  try {
    (void)train_fleet(workload::AppId::kFacebook, options);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("no upload ever reached the server"),
              std::string::npos)
        << e.what();
  }
  // At a partial corruption rate the run completes, counts its rejections,
  // and still produces a deployable aggregate from the surviving uploads.
  options.faults.upload_corruption_rate = 0.5;
  options.rounds = 4;
  const FleetResult result = train_fleet(workload::AppId::kFacebook, options);
  EXPECT_GT(result.rejected_uploads, 0u);
  EXPECT_GT(result.global.state_count(), 0u);
}

TEST(FleetFaults, RoundStatsReportFaults) {
  const FleetOptions options = faulty_fleet();
  std::size_t dropped = 0;
  std::size_t rejected = 0;
  const FleetResult result =
      train_fleet(workload::AppId::kFacebook, options, {},
                  [&](const FleetRoundStats& stats) {
                    dropped += stats.dropped_devices;
                    rejected += stats.rejected_uploads;
                  });
  EXPECT_EQ(dropped, result.dropped_device_rounds);
  EXPECT_EQ(rejected, result.rejected_uploads);
}

TEST(FleetFaults, CrashAndResumeComposeWithFaults) {
  // A fleet with active dropout + corruption, killed at round 1 and resumed
  // from its snapshot, must land on exactly the uninterrupted run's bytes -
  // fault draws are (round, index)-keyed, so they replay identically.
  const std::string path = ::testing::TempDir() + "/nextgov_faulty_fleet_snap.bin";
  FleetOptions options = faulty_fleet();
  options.faults.upload_corruption_rate = 0.3;
  const FleetResult uninterrupted = train_fleet(workload::AppId::kFacebook, options);

  FleetOptions crashing = options;
  crashing.snapshot_every = 1;
  crashing.snapshot_path = path;
  crashing.faults.crash_at_round = 1;
  EXPECT_THROW((void)train_fleet(workload::AppId::kFacebook, crashing), FleetCrash);

  FleetOptions resumed = options;
  resumed.resume_from = path;
  const FleetResult result = train_fleet(workload::AppId::kFacebook, resumed);
  EXPECT_EQ(result.start_round, 2u);
  EXPECT_TRUE(result.global == uninterrupted.global);
  EXPECT_EQ(result.total_decisions, uninterrupted.total_decisions);
  EXPECT_EQ(result.dropped_device_rounds, uninterrupted.dropped_device_rounds);
  EXPECT_EQ(result.rejected_uploads, uninterrupted.rejected_uploads);
  std::remove(path.c_str());
}

// --- the long-running fleet server under churn -----------------------------

FleetServerOptions churny_server() {
  FleetServerOptions options;
  options.devices = 6;
  options.round_duration = SimTime::from_seconds(20.0);
  options.round_deadline = SimTime::from_seconds(40.0);
  options.episode_length = SimTime::from_seconds(10.0);
  options.heartbeat_period = SimTime::from_seconds(2.0);
  options.lease_timeout = SimTime::from_seconds(5.0);
  options.upload_latency = SimTime::from_seconds(1.0);
  options.retry_backoff = SimTime::from_seconds(2.0);
  options.base_seed = 777;
  options.churn.seed = 42;
  options.churn.depart_rate = 0.3;
  options.churn.straggle_rate = 0.3;
  options.churn.upload_fail_rate = 0.4;
  options.churn.rejoin_after_rounds = 1;
  return options;
}

std::vector<std::uint8_t> canonical_bytes(const rl::QTable& table) {
  ByteWriter out;
  table.serialize(out);
  return out.data();
}

TEST(FleetServerFaults, ChurningServerIsDeterministicAcrossWorkerCounts) {
  // Departures, stragglers, retries and losses all draw from
  // (round, device, attempt)-keyed streams, so the event loop's outcome -
  // down to every counter - must be independent of the training pool size.
  const FleetServerOptions options = churny_server();
  std::vector<std::vector<std::uint8_t>> tables;
  std::vector<FleetServerStats> stats;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}, std::size_t{4}}) {
    FleetServer server{workload::AppId::kFacebook, options, {.workers = workers}};
    server.run_rounds(3);
    ASSERT_NE(server.global(), nullptr) << workers << " workers";
    tables.push_back(canonical_bytes(*server.global()));
    stats.push_back(server.stats());
  }
  for (std::size_t i = 1; i < tables.size(); ++i) {
    EXPECT_EQ(tables[0], tables[i]) << "worker-count variant " << i;
    EXPECT_EQ(stats[0].uploads_accepted, stats[i].uploads_accepted);
    EXPECT_EQ(stats[0].uploads_retried, stats[i].uploads_retried);
    EXPECT_EQ(stats[0].uploads_lost, stats[i].uploads_lost);
    EXPECT_EQ(stats[0].late_uploads_merged, stats[i].late_uploads_merged);
    EXPECT_EQ(stats[0].departures, stats[i].departures);
    EXPECT_EQ(stats[0].total_decisions, stats[i].total_decisions);
  }
  // The churn plan must actually exercise both failure modes here, or this
  // test is vacuously green.
  EXPECT_GT(stats[0].departures, 0u);
  EXPECT_GT(stats[0].uploads_retried + stats[0].late_uploads_merged, 0u);
}

TEST(FleetServerFaults, DepartedDeviceNeverContributesAPartialTable) {
  // A device that departs mid-round has its training cell discarded
  // entirely: per-round quorum + late merges can only come from devices
  // that finished training, and the upload ledger (persisted in the ring
  // snapshot) must show no accepted upload from any departed round.
  FleetServerOptions options = churny_server();
  options.churn.straggle_rate = 0.0;   // isolate departures
  options.churn.upload_fail_rate = 0.0;
  const std::string prefix =
      ::testing::TempDir() + "/nextgov_fsrv_departed_ledger";
  for (std::size_t slot = 0; slot < 4; ++slot) {
    std::remove((prefix + "." + std::to_string(slot)).c_str());
  }
  options.snapshot_ring = 1;
  options.snapshot_prefix = prefix;

  FleetServer server{workload::AppId::kFacebook, options, {.workers = 2}};
  std::vector<FleetServerRoundStats> rounds;
  server.run_rounds(3, [&](const FleetServerRoundStats& rs) { rounds.push_back(rs); });
  std::size_t departures = 0;
  for (const auto& rs : rounds) {
    departures += rs.departures;
    // Without stragglers or failures, accepted tables == devices that
    // actually trained, never more.
    EXPECT_EQ(rs.quorum, rs.training_devices);
    EXPECT_EQ(rs.late_merged, 0u);
    // Trainees and departures partition the *leased* devices; the rest are
    // still away from an earlier departure.
    EXPECT_LE(rs.training_devices + rs.departures, 6u);
  }
  ASSERT_GT(departures, 0u) << "retune churn seed: no device ever departed";

  // Cross-check through the persisted ledger: the final boundary snapshot
  // records, per device, the last round whose table the server accepted.
  // Replaying the round stats forward, a device's ledger entry may only be
  // a round it was leased and training for.
  const FleetSnapshot ledger = load_fleet_snapshot(prefix + ".0");
  ASSERT_TRUE(ledger.has_server_state);
  ASSERT_EQ(ledger.shard_last_upload.size(), 6u);
  std::size_t devices_with_uploads = 0;
  for (std::size_t d = 0; d < 6; ++d) {
    if (ledger.shard_last_upload[d] != kNeverUploaded) ++devices_with_uploads;
  }
  // Everyone who trained at least once has a ledger entry; the sum of all
  // per-round trainees bounds the ledger (departed rounds contribute none).
  std::size_t total_trainee_rounds = 0;
  for (const auto& rs : rounds) total_trainee_rounds += rs.training_devices;
  EXPECT_LE(devices_with_uploads, 6u);
  EXPECT_EQ(server.stats().uploads_accepted, total_trainee_rounds)
      << "an accepted table appeared that no completed training round produced";
}

}  // namespace
}  // namespace nextgov::sim
