// Integration tests for the fleet fault-injection harness: seeded dropout
// and upload corruption are deterministic (worker-count independent),
// degrade rounds gracefully instead of failing them, and compose with
// crash/resume.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sim/fleet.hpp"

namespace nextgov::sim {
namespace {

FleetOptions faulty_fleet() {
  FleetOptions options;
  options.devices = 6;
  options.shards = 2;
  options.rounds = 3;
  options.round_duration = SimTime::from_seconds(20.0);
  options.episode_length = SimTime::from_seconds(10.0);
  options.base_seed = 777;
  options.sync_spread = 2;
  options.faults.seed = 42;
  options.faults.dropout_rate = 0.3;
  options.faults.upload_corruption_rate = 0.5;
  return options;
}

TEST(FleetFaults, FaultedRunIsDeterministicAcrossWorkerCounts) {
  const FleetOptions options = faulty_fleet();
  const FleetResult serial = train_fleet(workload::AppId::kFacebook, options, {.workers = 1});
  const FleetResult pooled = train_fleet(workload::AppId::kFacebook, options, {.workers = 4});
  EXPECT_TRUE(serial.global == pooled.global);
  EXPECT_EQ(serial.total_decisions, pooled.total_decisions);
  EXPECT_EQ(serial.dropped_device_rounds, pooled.dropped_device_rounds);
  EXPECT_EQ(serial.rejected_uploads, pooled.rejected_uploads);
}

TEST(FleetFaults, DropoutActuallyDropsDevicesAndChangesTheRun) {
  FleetOptions options = faulty_fleet();
  options.faults.upload_corruption_rate = 0.0;
  const FleetResult faulted = train_fleet(workload::AppId::kFacebook, options);
  EXPECT_GT(faulted.dropped_device_rounds, 0u);
  EXPECT_EQ(faulted.rejected_uploads, 0u);
  options.faults.dropout_rate = 0.0;
  const FleetResult clean = train_fleet(workload::AppId::kFacebook, options);
  EXPECT_EQ(clean.dropped_device_rounds, 0u);
  // Losing device-rounds must cost training data.
  EXPECT_LT(faulted.total_decisions, clean.total_decisions);
  EXPECT_FALSE(faulted.global == clean.global);
}

TEST(FleetFaults, CorruptedUploadsAreRejectedNotAbsorbed) {
  FleetOptions options = faulty_fleet();
  options.faults.dropout_rate = 0.0;
  options.faults.upload_corruption_rate = 1.0;  // every upload arrives damaged
  options.rounds = 2;
  // Every upload is rejected, the server never hears from anyone, and the
  // run ends with a descriptive error instead of a bogus aggregate.
  try {
    (void)train_fleet(workload::AppId::kFacebook, options);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("no upload ever reached the server"),
              std::string::npos)
        << e.what();
  }
  // At a partial corruption rate the run completes, counts its rejections,
  // and still produces a deployable aggregate from the surviving uploads.
  options.faults.upload_corruption_rate = 0.5;
  options.rounds = 4;
  const FleetResult result = train_fleet(workload::AppId::kFacebook, options);
  EXPECT_GT(result.rejected_uploads, 0u);
  EXPECT_GT(result.global.state_count(), 0u);
}

TEST(FleetFaults, RoundStatsReportFaults) {
  const FleetOptions options = faulty_fleet();
  std::size_t dropped = 0;
  std::size_t rejected = 0;
  const FleetResult result =
      train_fleet(workload::AppId::kFacebook, options, {},
                  [&](const FleetRoundStats& stats) {
                    dropped += stats.dropped_devices;
                    rejected += stats.rejected_uploads;
                  });
  EXPECT_EQ(dropped, result.dropped_device_rounds);
  EXPECT_EQ(rejected, result.rejected_uploads);
}

TEST(FleetFaults, CrashAndResumeComposeWithFaults) {
  // A fleet with active dropout + corruption, killed at round 1 and resumed
  // from its snapshot, must land on exactly the uninterrupted run's bytes -
  // fault draws are (round, index)-keyed, so they replay identically.
  const std::string path = ::testing::TempDir() + "/nextgov_faulty_fleet_snap.bin";
  FleetOptions options = faulty_fleet();
  options.faults.upload_corruption_rate = 0.3;
  const FleetResult uninterrupted = train_fleet(workload::AppId::kFacebook, options);

  FleetOptions crashing = options;
  crashing.snapshot_every = 1;
  crashing.snapshot_path = path;
  crashing.faults.crash_at_round = 1;
  EXPECT_THROW((void)train_fleet(workload::AppId::kFacebook, crashing), FleetCrash);

  FleetOptions resumed = options;
  resumed.resume_from = path;
  const FleetResult result = train_fleet(workload::AppId::kFacebook, resumed);
  EXPECT_EQ(result.start_round, 2u);
  EXPECT_TRUE(result.global == uninterrupted.global);
  EXPECT_EQ(result.total_decisions, uninterrupted.total_decisions);
  EXPECT_EQ(result.dropped_device_rounds, uninterrupted.dropped_device_rounds);
  EXPECT_EQ(result.rejected_uploads, uninterrupted.rejected_uploads);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nextgov::sim
