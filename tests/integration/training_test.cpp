// Integration tests for the training pipeline: convergence behaviour,
// quantization effects (Fig. 6's mechanism) and federated merging.
#include <gtest/gtest.h>

#include <array>

#include "rl/federated.hpp"
#include "sim/experiment.hpp"

namespace nextgov::sim {
namespace {

TEST(Training, VisitsGrowWithFpsQuantizationLevels) {
  // Fig. 6's mechanism: more FPS levels -> more distinct states -> more to
  // learn. The visited-state count must grow with the quantization.
  TrainingOptions opts;
  opts.max_duration = SimTime::from_seconds(400.0);
  core::NextConfig coarse;
  coarse.fps_levels = 5;
  core::NextConfig fine;
  fine.fps_levels = 60;
  const TrainingResult tr_coarse = train_next(workload::AppId::kFacebook, coarse, opts);
  const TrainingResult tr_fine = train_next(workload::AppId::kFacebook, fine, opts);
  EXPECT_GT(tr_fine.states_visited, tr_coarse.states_visited);
}

TEST(Training, RewardImprovesOverTraining) {
  // Early-training mean reward vs late: the agent must be learning.
  TrainingOptions short_opts;
  short_opts.max_duration = SimTime::from_seconds(60.0);
  TrainingOptions long_opts;
  long_opts.max_duration = SimTime::from_seconds(900.0);
  const TrainingResult early = train_next(workload::AppId::kLineage, core::NextConfig{},
                                          short_opts);
  const TrainingResult late = train_next(workload::AppId::kLineage, core::NextConfig{},
                                         long_opts);
  EXPECT_GT(late.final_mean_reward, early.final_mean_reward * 0.9);
  EXPECT_GT(late.decisions, early.decisions);
}

TEST(Training, FederatedMergeOfTwoDevicesCoversMoreStates) {
  // Section IV-C: merging per-device tables yields broader coverage than
  // either device alone.
  TrainingOptions a_opts;
  a_opts.max_duration = SimTime::from_seconds(300.0);
  a_opts.seed = 11;
  TrainingOptions b_opts = a_opts;
  b_opts.seed = 22;
  const TrainingResult a = train_next(workload::AppId::kFacebook, core::NextConfig{}, a_opts);
  const TrainingResult b = train_next(workload::AppId::kFacebook, core::NextConfig{}, b_opts);
  const std::array<const rl::QTable*, 2> tables{&a.table, &b.table};
  const rl::QTable merged = rl::merge_q_tables(tables);
  EXPECT_GE(merged.state_count(), a.table.state_count());
  EXPECT_GE(merged.state_count(), b.table.state_count());
  EXPECT_EQ(merged.total_visits(), a.table.total_visits() + b.table.total_visits());

  // And the merged table is deployable.
  ExperimentConfig cfg;
  cfg.governor = GovernorKind::kNext;
  cfg.duration = SimTime::from_seconds(30.0);
  cfg.trained_table = &merged;
  const SessionResult r = run_app_session(workload::AppId::kFacebook, cfg);
  EXPECT_GT(r.avg_power_w, 0.5);
}

TEST(Training, AgentPowerOverheadIsSmall) {
  // Section IV-B: agent power (it runs on LITTLE) must stay far below the
  // app's own consumption - the paper reports < 6%. Compare identical
  // schedutil sessions with and without the agent-overhead utilization.
  ExperimentConfig base;
  base.duration = SimTime::from_seconds(60.0);
  const SessionResult stock = run_app_session(workload::AppId::kFacebook, base);

  ExperimentConfig with_agent = base;
  with_agent.governor = GovernorKind::kNext;  // untrained, exploring caps at max
  with_agent.next_mode = core::AgentMode::kDeployed;
  const SessionResult agent = run_app_session(workload::AppId::kFacebook, with_agent);
  EXPECT_LT(agent.avg_power_w, stock.avg_power_w * 1.06);
}

}  // namespace
}  // namespace nextgov::sim
