// Integration tests: full sessions across the whole stack reproduce the
// paper's qualitative signatures (Fig. 1 phenomena).
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "sim/experiment.hpp"
#include "workload/session.hpp"

namespace nextgov::sim {
namespace {

TEST(SessionIntegration, SpotifyShowsHighFrequencyAtNearZeroFps) {
  // The paper's Fig. 1 (right): under schedutil, Spotify's FPS collapses
  // toward 0 while the big cluster keeps running at high frequency - the
  // motivating waste.
  ExperimentConfig cfg;
  cfg.duration = SimTime::from_seconds(120.0);
  const SessionResult r = run_app_session(workload::AppId::kSpotify, cfg);
  int wasteful_samples = 0;
  for (const auto& s : r.series) {
    if (s.fps <= 5.0 && s.f_big_mhz >= 1500.0) ++wasteful_samples;
  }
  EXPECT_GT(wasteful_samples, static_cast<int>(r.series.size()) / 4)
      << "expected many low-FPS/high-frequency samples";
}

TEST(SessionIntegration, FacebookAlternatesBurstsAndIdle) {
  // Fig. 1 (middle): interaction bursts near 60 FPS alternating with ~0.
  ExperimentConfig cfg;
  cfg.duration = SimTime::from_seconds(150.0);
  cfg.seed = 3;
  const SessionResult r = run_app_session(workload::AppId::kFacebook, cfg);
  int high = 0;
  int idle = 0;
  for (const auto& s : r.series) {
    if (s.fps >= 40.0) ++high;
    if (s.fps <= 5.0) ++idle;
  }
  EXPECT_GT(high, 8);
  EXPECT_GT(idle, 8);
}

TEST(SessionIntegration, YoutubeHoldsVideoCadence) {
  ExperimentConfig cfg;
  cfg.duration = SimTime::from_seconds(120.0);
  const SessionResult r = run_app_session(workload::AppId::kYoutube, cfg);
  int at_30 = 0;
  for (const auto& s : r.series) {
    if (s.fps >= 25.0 && s.fps <= 35.0) ++at_30;
  }
  EXPECT_GT(at_30, static_cast<int>(r.series.size()) / 2);
}

TEST(SessionIntegration, GamesRunHotAndFast) {
  ExperimentConfig cfg;
  cfg.duration = SimTime::from_seconds(300.0);
  const SessionResult r = run_app_session(workload::AppId::kLineage, cfg);
  EXPECT_GT(r.avg_fps, 45.0);
  EXPECT_GT(r.avg_power_w, 5.0);
  EXPECT_GT(r.peak_temp_big_c, 65.0);
  EXPECT_LT(r.peak_temp_big_c, 97.0);  // thermal throttle holds the line
}

TEST(SessionIntegration, Fig1SessionVisitsAllThreeAppSignatures) {
  ExperimentConfig cfg;
  cfg.duration = SimTime::from_seconds(280.0);
  const SessionResult r = run_session(
      [](std::uint64_t seed) { return workload::make_fig1_session(seed); }, "fig1session",
      cfg);
  // Segment-wise FPS character: home (bursty), facebook (mixed),
  // spotify (near zero).
  RunningStats home_fps;
  RunningStats spotify_fps;
  for (const auto& s : r.series) {
    if (s.time_s < 30.0) home_fps.add(s.fps);
    if (s.time_s > 160.0) spotify_fps.add(s.fps);
  }
  EXPECT_LT(spotify_fps.mean(), 15.0);
  EXPECT_GT(home_fps.mean(), spotify_fps.mean());
}

TEST(SessionIntegration, DevicePowerAlwaysWithinPhysicalEnvelope) {
  for (auto app : workload::all_apps()) {
    ExperimentConfig cfg;
    cfg.duration = SimTime::from_seconds(60.0);
    const SessionResult r = run_app_session(app, cfg);
    EXPECT_GT(r.avg_power_w, 1.0) << workload::to_string(app);
    EXPECT_LT(r.peak_power_w, 13.0) << workload::to_string(app);
    EXPECT_GE(r.avg_temp_big_c, 20.0) << workload::to_string(app);
    EXPECT_LT(r.peak_temp_big_c, 97.0) << workload::to_string(app);
  }
}

}  // namespace
}  // namespace nextgov::sim
