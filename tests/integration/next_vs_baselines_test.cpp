// Integration tests: the paper's headline comparisons hold qualitatively.
// These are the repository's acceptance tests - if they pass, the benches
// will reproduce the paper's ordering.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace nextgov::sim {
namespace {

SessionResult eval_next(workload::AppId app, SimTime duration, std::uint64_t seed) {
  TrainingOptions opts;
  opts.max_duration = SimTime::from_seconds(1200.0);
  opts.seed = seed + 1000;
  const TrainingResult tr = train_next(app, core::NextConfig{}, opts);
  ExperimentConfig cfg;
  cfg.governor = GovernorKind::kNext;
  cfg.duration = duration;
  cfg.seed = seed;
  cfg.trained_table = &tr.table;
  return run_app_session(app, cfg);
}

SessionResult eval_governor(workload::AppId app, GovernorKind kind, SimTime duration,
                            std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.governor = kind;
  cfg.duration = duration;
  cfg.seed = seed;
  return run_app_session(app, cfg);
}

TEST(NextVsBaselines, NextSavesPowerOnAGameWithoutWreckingQoS) {
  const auto duration = SimTime::from_seconds(300.0);
  const SessionResult sched = eval_governor(workload::AppId::kLineage,
                                            GovernorKind::kSchedutil, duration, 1);
  const SessionResult next = eval_next(workload::AppId::kLineage, duration, 1);
  // Paper Fig. 7: ~50% saving on Lineage; we accept anything >= 20%.
  EXPECT_LT(next.avg_power_w, sched.avg_power_w * 0.8);
  // QoS: average FPS within 15% of stock.
  EXPECT_GT(next.avg_fps, sched.avg_fps * 0.85);
}

TEST(NextVsBaselines, NextSavesPowerOnIdleHeavySpotify) {
  const auto duration = SimTime::from_seconds(150.0);
  const SessionResult sched = eval_governor(workload::AppId::kSpotify,
                                            GovernorKind::kSchedutil, duration, 1);
  const SessionResult next = eval_next(workload::AppId::kSpotify, duration, 1);
  EXPECT_LT(next.avg_power_w, sched.avg_power_w * 0.9);
  EXPECT_GT(next.avg_fps, sched.avg_fps * 0.9);
}

TEST(NextVsBaselines, NextReducesPeakBigTemperatureOnGames) {
  const auto duration = SimTime::from_seconds(300.0);
  const SessionResult sched = eval_governor(workload::AppId::kPubg, GovernorKind::kSchedutil,
                                            duration, 1);
  const SessionResult next = eval_next(workload::AppId::kPubg, duration, 1);
  // Paper Fig. 8: up to 29% reduction for big CPUs; require a clear drop.
  EXPECT_LT(next.peak_temp_big_c, sched.peak_temp_big_c - 5.0);
  EXPECT_LT(next.peak_temp_device_c, sched.peak_temp_device_c + 0.5);
}

TEST(NextVsBaselines, IntQosSavesLessThanNextOnGames) {
  // Paper Section V: Next beats Int. QoS PM by 41%/22% on the games.
  const auto duration = SimTime::from_seconds(300.0);
  const SessionResult sched = eval_governor(workload::AppId::kLineage,
                                            GovernorKind::kSchedutil, duration, 1);
  const SessionResult intqos = eval_governor(workload::AppId::kLineage, GovernorKind::kIntQos,
                                             duration, 1);
  const SessionResult next = eval_next(workload::AppId::kLineage, duration, 1);
  EXPECT_LT(intqos.avg_power_w, sched.avg_power_w);  // IntQos does save power
  EXPECT_LT(next.avg_power_w, intqos.avg_power_w);   // but Next saves more
}

TEST(NextVsBaselines, PerformanceAndPowersaveBracketEveryone) {
  const auto duration = SimTime::from_seconds(120.0);
  const SessionResult perf = eval_governor(workload::AppId::kFacebook,
                                           GovernorKind::kPerformance, duration, 2);
  const SessionResult save = eval_governor(workload::AppId::kFacebook,
                                           GovernorKind::kPowersave, duration, 2);
  const SessionResult sched = eval_governor(workload::AppId::kFacebook,
                                            GovernorKind::kSchedutil, duration, 2);
  EXPECT_GT(perf.avg_power_w, sched.avg_power_w);
  EXPECT_LT(save.avg_power_w, sched.avg_power_w);
  EXPECT_GE(perf.peak_temp_big_c, save.peak_temp_big_c);
}

TEST(NextVsBaselines, NextImprovesAveragePpdw) {
  // Eq. 4: the agent maximizes PPDW; its governed sessions must score
  // higher than stock on the metric the paper optimizes.
  const auto duration = SimTime::from_seconds(300.0);
  const SessionResult sched = eval_governor(workload::AppId::kLineage,
                                            GovernorKind::kSchedutil, duration, 1);
  const SessionResult next = eval_next(workload::AppId::kLineage, duration, 1);
  EXPECT_GT(next.avg_ppdw, sched.avg_ppdw);
}

}  // namespace
}  // namespace nextgov::sim
