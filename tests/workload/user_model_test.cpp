// Unit tests for the stochastic user-engagement process.
#include <gtest/gtest.h>

#include "workload/user_model.hpp"

namespace nextgov::workload {
namespace {

using namespace nextgov::literals;

TEST(UserModel, StartsEngagedByDefault) {
  UserModel m{UserModelParams{}, Rng{1}};
  m.update(SimTime::zero());
  EXPECT_TRUE(m.engaged());
}

TEST(UserModel, CanStartPassive) {
  UserModelParams p;
  p.start_engaged = false;
  UserModel m{p, Rng{1}};
  m.update(SimTime::zero());
  EXPECT_FALSE(m.engaged());
}

TEST(UserModel, DeterministicForSameSeed) {
  UserModel a{UserModelParams{}, Rng{7}};
  UserModel b{UserModelParams{}, Rng{7}};
  for (int i = 0; i <= 3000; ++i) {
    const SimTime t = SimTime::from_ms(i * 100);
    a.update(t);
    b.update(t);
    ASSERT_EQ(a.engaged(), b.engaged()) << "at t=" << t.seconds();
  }
}

TEST(UserModel, AlternatesStates) {
  UserModel m{UserModelParams{}, Rng{3}};
  int switches = 0;
  bool last = true;
  for (int i = 0; i <= 6000; ++i) {
    m.update(SimTime::from_ms(i * 100));
    if (m.engaged() != last) {
      ++switches;
      last = m.engaged();
    }
  }
  // 600 s with ~6.5 s mean dwell: expect dozens of switches.
  EXPECT_GT(switches, 20);
}

TEST(UserModel, EngagedFractionTracksDwellRatio) {
  UserModelParams p;
  p.engaged_mean_s = 8.0;
  p.passive_mean_s = 2.0;
  UserModel m{p, Rng{11}};
  for (int i = 0; i <= 60000; ++i) m.update(SimTime::from_ms(i * 50));
  // Expected engaged fraction ~ 8/10 = 0.8 over a 50 min horizon.
  EXPECT_NEAR(m.engaged_fraction(), 0.8, 0.08);
}

TEST(UserModel, GameLikeParametersStayMostlyEngaged) {
  UserModelParams p;
  p.engaged_mean_s = 40.0;
  p.passive_mean_s = 2.0;
  UserModel m{p, Rng{13}};
  for (int i = 0; i <= 30000; ++i) m.update(SimTime::from_ms(i * 100));
  EXPECT_GT(m.engaged_fraction(), 0.85);
}

}  // namespace
}  // namespace nextgov::workload
