// Unit tests for FPS trace persistence.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.hpp"
#include "workload/fps_trace.hpp"

namespace nextgov::workload {
namespace {

class FpsTraceTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/nextgov_trace_test.csv";
};

TEST_F(FpsTraceTest, RoundTripsThroughCsv) {
  FpsTrace trace;
  for (int i = 0; i < 160; ++i) {
    trace.add(SimTime::from_ms(i * 25), (i % 3 == 0) ? 60.0 : 30.5);
  }
  trace.save_csv(path_);
  const FpsTrace loaded = FpsTrace::load_csv(path_);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_NEAR(loaded.samples()[i].time.seconds(), trace.samples()[i].time.seconds(), 1e-6);
    EXPECT_NEAR(loaded.samples()[i].fps, trace.samples()[i].fps, 1e-6);
  }
}

TEST_F(FpsTraceTest, EmptyTraceRoundTrips) {
  FpsTrace trace;
  trace.save_csv(path_);
  EXPECT_TRUE(FpsTrace::load_csv(path_).empty());
}

TEST(FpsTrace, LoadMissingFileThrows) {
  EXPECT_THROW(FpsTrace::load_csv("/nonexistent/trace.csv"), IoError);
}

}  // namespace
}  // namespace nextgov::workload
