// Unit tests for the phase-machine application model.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "workload/phased_app.hpp"

namespace nextgov::workload {
namespace {

using namespace nextgov::literals;

AppSpec two_phase_spec() {
  AppSpec s;
  s.name = "test_app";
  PhaseSpec idle;
  idle.name = "idle";
  idle.demand = FrameDemand::kNone;
  idle.cpu = {1e5, 0.0};
  idle.gpu = {1e5, 0.0};
  idle.mean_duration_s = 2.0;
  idle.weight = 1.0;
  PhaseSpec active;
  active.name = "active";
  active.demand = FrameDemand::kContinuous;
  active.cpu = {5e6, 0.0};
  active.gpu = {3e6, 0.0};
  active.mean_duration_s = 2.0;
  active.weight = 1.0;
  s.phases = {idle, active};
  return s;
}

TEST(PhasedApp, RejectsInvalidSpecs) {
  AppSpec s = two_phase_spec();
  s.phases.clear();
  EXPECT_THROW(PhasedApp(s, Rng{1}), ConfigError);

  s = two_phase_spec();
  s.initial_phase = 9;
  EXPECT_THROW(PhasedApp(s, Rng{1}), ConfigError);

  s = two_phase_spec();
  s.phases[0].mean_duration_s = 0.0;
  EXPECT_THROW(PhasedApp(s, Rng{1}), ConfigError);

  s = two_phase_spec();
  s.phases[1].demand = FrameDemand::kCadence;
  s.phases[1].cadence_fps = 0.0;
  EXPECT_THROW(PhasedApp(s, Rng{1}), ConfigError);
}

TEST(PhasedApp, IdlePhaseWantsNoFrames) {
  AppSpec s = two_phase_spec();
  s.phases[0].mean_duration_s = 1000.0;  // stay in idle
  PhasedApp app{s, Rng{1}};
  app.update(SimTime::zero(), 1_ms);
  EXPECT_EQ(app.phase_name(), "idle");
  EXPECT_FALSE(app.wants_frame(SimTime::zero()));
}

TEST(PhasedApp, ContinuousPhaseAlwaysWantsFrames) {
  AppSpec s = two_phase_spec();
  s.initial_phase = 1;
  s.phases[1].mean_duration_s = 1000.0;
  PhasedApp app{s, Rng{1}};
  app.update(SimTime::zero(), 1_ms);
  EXPECT_EQ(app.phase_name(), "active");
  EXPECT_TRUE(app.wants_frame(SimTime::zero()));
  const auto job = app.begin_frame(SimTime::zero());
  EXPECT_DOUBLE_EQ(job.cpu_cycles, 5e6);
  EXPECT_DOUBLE_EQ(job.gpu_cycles, 3e6);
}

TEST(PhasedApp, CadenceAccumulatesCredit) {
  AppSpec s = two_phase_spec();
  s.phases[0].demand = FrameDemand::kCadence;
  s.phases[0].cadence_fps = 10.0;  // one frame every 100 ms
  s.phases[0].mean_duration_s = 1000.0;
  PhasedApp app{s, Rng{1}};
  SimTime t = SimTime::zero();
  int frames = 0;
  for (int i = 0; i < 1000; ++i) {  // 1 s
    app.update(t, 1_ms);
    if (app.wants_frame(t)) {
      (void)app.begin_frame(t);
      ++frames;
    }
    t += 1_ms;
  }
  EXPECT_NEAR(frames, 10, 1);
}

TEST(PhasedApp, TransitionsBetweenPhases) {
  PhasedApp app{two_phase_spec(), Rng{5}};
  int idle_steps = 0;
  int active_steps = 0;
  SimTime t = SimTime::zero();
  for (int i = 0; i < 120'000; ++i) {  // 120 s at 1 ms
    app.update(t, 1_ms);
    (app.phase_name() == "idle" ? idle_steps : active_steps) += 1;
    t += 1_ms;
  }
  EXPECT_GT(idle_steps, 10'000);
  EXPECT_GT(active_steps, 10'000);
}

TEST(PhasedApp, InitialOnlyPhaseNeverReenters) {
  AppSpec s = two_phase_spec();
  PhaseSpec splash;
  splash.name = "splash";
  splash.demand = FrameDemand::kCadence;
  splash.cadence_fps = 8.0;
  splash.cpu = {1e6, 0.0};
  splash.gpu = {1e6, 0.0};
  splash.mean_duration_s = 1.0;
  splash.min_duration_s = 1.0;
  splash.duration_sigma = 0.0;
  splash.initial_only = true;
  s.phases.insert(s.phases.begin(), splash);
  s.initial_phase = 0;
  PhasedApp app{s, Rng{5}};
  SimTime t = SimTime::zero();
  app.update(t, 1_ms);
  EXPECT_EQ(app.phase_name(), "splash");
  bool splash_seen_after_exit = false;
  bool exited = false;
  for (int i = 0; i < 60'000; ++i) {
    t += 1_ms;
    app.update(t, 1_ms);
    const bool in_splash = app.phase_name() == "splash";
    if (!in_splash) exited = true;
    if (exited && in_splash) splash_seen_after_exit = true;
  }
  EXPECT_TRUE(exited);
  EXPECT_FALSE(splash_seen_after_exit);
}

TEST(PhasedApp, WorkSamplingPreservesMean) {
  AppSpec s = two_phase_spec();
  s.initial_phase = 1;
  s.phases[1].mean_duration_s = 1e6;
  s.phases[1].cpu = {6e6, 0.4};  // lognormal with mean 6e6
  PhasedApp app{s, Rng{17}};
  app.update(SimTime::zero(), 1_ms);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += app.begin_frame(SimTime::zero()).cpu_cycles;
  EXPECT_NEAR(sum / n / 6e6, 1.0, 0.03);
}

TEST(PhasedApp, PhaseSequenceIndependentOfFrameConsumption) {
  // Two replicas; one renders (consumes work samples), one does not. The
  // phase sequence must match (fair cross-governor comparisons).
  PhasedApp a{two_phase_spec(), Rng{23}};
  PhasedApp b{two_phase_spec(), Rng{23}};
  SimTime t = SimTime::zero();
  for (int i = 0; i < 100'000; ++i) {
    a.update(t, 1_ms);
    b.update(t, 1_ms);
    if (a.wants_frame(t)) (void)a.begin_frame(t);  // only a consumes
    ASSERT_EQ(a.phase_index(), b.phase_index()) << "diverged at " << t.seconds() << " s";
    t += 1_ms;
  }
}

TEST(PhasedApp, BackgroundLoadFollowsPhase) {
  AppSpec s = two_phase_spec();
  s.phases[0].background.big_hot = 0.7;
  s.phases[0].mean_duration_s = 1000.0;
  PhasedApp app{s, Rng{1}};
  app.update(SimTime::zero(), 1_ms);
  EXPECT_DOUBLE_EQ(app.background().big_hot, 0.7);
}

}  // namespace
}  // namespace nextgov::workload
