// Tests for the seven evaluation workloads: each must reproduce its
// paper-documented FPS-demand signature (see apps.hpp).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "workload/apps.hpp"

namespace nextgov::workload {
namespace {

using namespace nextgov::literals;

TEST(Apps, AllSixEvaluationAppsExist) {
  const auto apps = all_apps();
  ASSERT_EQ(apps.size(), 6u);
  for (AppId id : apps) {
    auto app = make_app(id, 1);
    EXPECT_EQ(app->name(), to_string(id));
  }
}

TEST(Apps, GameClassification) {
  EXPECT_TRUE(is_game(AppId::kLineage));
  EXPECT_TRUE(is_game(AppId::kPubg));
  EXPECT_FALSE(is_game(AppId::kFacebook));
  EXPECT_FALSE(is_game(AppId::kSpotify));
  EXPECT_FALSE(is_game(AppId::kWebBrowser));
  EXPECT_FALSE(is_game(AppId::kYoutube));
}

TEST(Apps, PaperSessionLengths) {
  // Section V: games 5 min, other apps 1.5-3 min (we use 150 s midpoint).
  EXPECT_DOUBLE_EQ(paper_session_length(AppId::kLineage).seconds(), 300.0);
  EXPECT_DOUBLE_EQ(paper_session_length(AppId::kPubg).seconds(), 300.0);
  EXPECT_DOUBLE_EQ(paper_session_length(AppId::kFacebook).seconds(), 150.0);
  EXPECT_DOUBLE_EQ(paper_session_length(AppId::kYoutube).seconds(), 150.0);
}

TEST(Apps, GamesStartInLoadingPhaseWithHeavyCpuAndNoRealFrames) {
  // The splash-screen scenario of Section II: FPS collapses while CPU load
  // is maximal.
  for (AppId id : {AppId::kLineage, AppId::kPubg}) {
    auto app = make_app(id, 3);
    app->update(SimTime::zero(), 1_ms);
    EXPECT_EQ(app->phase_name(), "loading") << to_string(id);
    EXPECT_GE(app->background().big_hot, 0.9) << to_string(id);
  }
}

TEST(Apps, SpotifyIsMostlyIdleWithWarmBackground) {
  // Fig. 1 right: FPS ~0 for long stretches while frequencies stay high.
  auto app = make_app(AppId::kSpotify, 5);
  SimTime t = SimTime::zero();
  int idle_like = 0;
  int total = 0;
  for (int i = 0; i < 150'000; ++i) {
    app->update(t, 1_ms);
    if (app->phase_name() == "playback_idle") {
      ++idle_like;
      EXPECT_GE(app->background().big_hot, 0.5);
    }
    ++total;
    t += 1_ms;
  }
  EXPECT_GT(static_cast<double>(idle_like) / total, 0.5);
}

TEST(Apps, SpecValidation) {
  for (AppId id : all_apps()) {
    const AppSpec spec = spec_for(id);
    EXPECT_FALSE(spec.phases.empty()) << to_string(id);
    for (const auto& phase : spec.phases) {
      EXPECT_GT(phase.mean_duration_s, 0.0);
      EXPECT_GE(phase.background.big_avg, 0.0);
      EXPECT_LE(phase.background.big_hot, 1.0);
      if (phase.demand == FrameDemand::kCadence) {
        EXPECT_GT(phase.cadence_fps, 0.0);
      }
    }
  }
}

TEST(Apps, DistinctSeedsGiveDistinctSessions) {
  auto a = make_app(AppId::kFacebook, 1);
  auto b = make_app(AppId::kFacebook, 2);
  SimTime t = SimTime::zero();
  int diverged = 0;
  for (int i = 0; i < 120'000; ++i) {
    a->update(t, 1_ms);
    b->update(t, 1_ms);
    if (a->phase_name() != b->phase_name()) ++diverged;
    t += 1_ms;
  }
  EXPECT_GT(diverged, 1000);
}

TEST(Apps, UnknownAppIdThrows) {
  EXPECT_THROW(spec_for(static_cast<AppId>(99)), ConfigError);
}

/// Property sweep over all apps: behaviour stays well-formed over a long
/// session (phases valid, background loads within [0,1], frame jobs
/// positive).
class AppBehaviourProperty : public ::testing::TestWithParam<AppId> {};

TEST_P(AppBehaviourProperty, LongSessionStaysWellFormed) {
  auto app = make_app(GetParam(), 11);
  SimTime t = SimTime::zero();
  for (int i = 0; i < 200'000; ++i) {  // 200 s
    app->update(t, 1_ms);
    const auto& bg = app->background();
    ASSERT_GE(bg.big_avg, 0.0);
    ASSERT_LE(bg.big_avg, 1.0);
    ASSERT_LE(bg.big_hot, 1.0);
    ASSERT_LE(bg.little_hot, 1.0);
    ASSERT_LE(bg.gpu_avg, 1.0);
    if (app->wants_frame(t)) {
      const auto job = app->begin_frame(t);
      ASSERT_GT(job.cpu_cycles, 0.0);
      ASSERT_GT(job.gpu_cycles, 0.0);
      ASSERT_LT(job.cpu_cycles, 1e9);  // < 0.5 s at min freq: sane
    }
    t += 1_ms;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppBehaviourProperty,
                         ::testing::Values(AppId::kHome, AppId::kFacebook, AppId::kSpotify,
                                           AppId::kWebBrowser, AppId::kYoutube, AppId::kLineage,
                                           AppId::kPubg),
                         [](const ::testing::TestParamInfo<AppId>& info) {
                           return std::string{to_string(info.param)};
                         });

}  // namespace
}  // namespace nextgov::workload
