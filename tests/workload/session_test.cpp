// Unit tests for multi-app sessions (the Fig. 1 / Fig. 3 workload).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "workload/session.hpp"

namespace nextgov::workload {
namespace {

using namespace nextgov::literals;

TEST(Session, Fig1SessionWalksHomeFacebookSpotify) {
  auto session = make_fig1_session(1);
  EXPECT_DOUBLE_EQ(session->total_duration().seconds(), 280.0);

  session->update(SimTime::from_seconds(1.0), 1_ms);
  EXPECT_EQ(session->current_app_name(), "home");
  session->update(SimTime::from_seconds(31.0), 1_ms);
  EXPECT_EQ(session->current_app_name(), "facebook");
  session->update(SimTime::from_seconds(151.0), 1_ms);
  EXPECT_EQ(session->current_app_name(), "spotify");
  // Past the end: stays on the last segment.
  session->update(SimTime::from_seconds(400.0), 1_ms);
  EXPECT_EQ(session->current_app_name(), "spotify");
}

TEST(Session, AppSwitchEntersInitialPhase) {
  auto session = make_fig1_session(2);
  // Drive up to just after the facebook switch; facebook opens with its
  // splash (initial_only) phase - the launch-cost scenario.
  SimTime t = SimTime::zero();
  while (t < SimTime::from_seconds(30.2)) {
    session->update(t, 1_ms);
    t += 1_ms;
  }
  EXPECT_EQ(session->current_app_name(), "facebook");
  EXPECT_EQ(session->phase_name(), "splash");
}

TEST(Session, RejectsEmptyOrInvalidSegments) {
  EXPECT_THROW(SessionApp({}, 1), ConfigError);
  EXPECT_THROW(SessionApp({{AppId::kHome, SimTime::zero()}}, 1), ConfigError);
}

TEST(Session, DelegatesFrameDemandToActiveApp) {
  std::vector<SessionSegment> segs{{AppId::kLineage, SimTime::from_seconds(60.0)}};
  SessionApp session{std::move(segs), 3};
  session.update(SimTime::zero(), 1_ms);
  EXPECT_EQ(session.phase_name(), "loading");
  EXPECT_GE(session.background().big_hot, 0.9);
}

TEST(Session, DeterministicAcrossReplicas) {
  auto a = make_fig1_session(7);
  auto b = make_fig1_session(7);
  SimTime t = SimTime::zero();
  for (int i = 0; i < 280'000; i += 10) {
    a->update(t, SimTime::from_ms(10));
    b->update(t, SimTime::from_ms(10));
    ASSERT_EQ(a->phase_name(), b->phase_name());
    ASSERT_EQ(a->current_app_name(), b->current_app_name());
    t += SimTime::from_ms(10);
  }
}

}  // namespace
}  // namespace nextgov::workload
