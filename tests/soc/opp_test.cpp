// Unit tests for the OPP tables, including the paper's exact Exynos 9810
// frequency lists (Section III-A).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "soc/opp.hpp"

namespace nextgov::soc {
namespace {

using namespace nextgov::literals;

TEST(OppTable, Exynos9810BigHas18PaperLevels) {
  const OppTable t = exynos9810_big_opps();
  ASSERT_EQ(t.size(), 18u);
  EXPECT_EQ(t.lowest().frequency, 650_mhz);
  EXPECT_EQ(t.highest().frequency, 2704_mhz);
  // Spot-check interior levels straight from the paper's list.
  EXPECT_NO_THROW((void)t.index_of(2314_mhz));
  EXPECT_NO_THROW((void)t.index_of(1469_mhz));
  EXPECT_NO_THROW((void)t.index_of(962_mhz));
  EXPECT_THROW((void)t.index_of(1000_mhz), ConfigError);
}

TEST(OppTable, Exynos9810LittleHas10PaperLevels) {
  const OppTable t = exynos9810_little_opps();
  ASSERT_EQ(t.size(), 10u);
  EXPECT_EQ(t.lowest().frequency, 455_mhz);
  EXPECT_EQ(t.highest().frequency, 1794_mhz);
  EXPECT_NO_THROW((void)t.index_of(1053_mhz));
  EXPECT_NO_THROW((void)t.index_of(598_mhz));
}

TEST(OppTable, Exynos9810GpuHas6PaperLevels) {
  const OppTable t = exynos9810_gpu_opps();
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t.lowest().frequency, 260_mhz);
  EXPECT_EQ(t.highest().frequency, 572_mhz);
  EXPECT_NO_THROW((void)t.index_of(338_mhz));
}

TEST(OppTable, VoltageMonotoneWithFrequency) {
  for (const OppTable& t :
       {exynos9810_big_opps(), exynos9810_little_opps(), exynos9810_gpu_opps()}) {
    for (std::size_t i = 1; i < t.size(); ++i) {
      EXPECT_GT(t[i].frequency, t[i - 1].frequency);
      EXPECT_GE(t[i].voltage, t[i - 1].voltage);
    }
  }
}

TEST(OppTable, CeilIndexSelectsLowestSufficientOpp) {
  const OppTable t = exynos9810_big_opps();
  EXPECT_EQ(t[t.ceil_index(1000_mhz)].frequency, 1066_mhz);
  EXPECT_EQ(t.ceil_index(100_mhz), 0u);
  EXPECT_EQ(t.ceil_index(650_mhz), 0u);
  EXPECT_EQ(t.ceil_index(9999_mhz), t.size() - 1);  // saturates at fmax
  EXPECT_EQ(t[t.ceil_index(2653_mhz)].frequency, 2704_mhz);
}

TEST(OppTable, FloorIndexSelectsHighestNotAbove) {
  const OppTable t = exynos9810_big_opps();
  EXPECT_EQ(t[t.floor_index(1000_mhz)].frequency, 962_mhz);
  EXPECT_EQ(t.floor_index(100_mhz), 0u);
  EXPECT_EQ(t.floor_index(9999_mhz), t.size() - 1);
}

TEST(OppTable, RejectsInvalidConstruction) {
  EXPECT_THROW(OppTable{{}}, ConfigError);
  // Decreasing frequency.
  EXPECT_THROW(OppTable({{1000_mhz, Volts{0.8}}, {900_mhz, Volts{0.9}}}), ConfigError);
  // Duplicate frequency.
  EXPECT_THROW(OppTable({{1000_mhz, Volts{0.8}}, {1000_mhz, Volts{0.9}}}), ConfigError);
  // Decreasing voltage.
  EXPECT_THROW(OppTable({{900_mhz, Volts{0.9}}, {1000_mhz, Volts{0.8}}}), ConfigError);
  // Non-positive values.
  EXPECT_THROW(OppTable({{KiloHertz{0.0}, Volts{0.8}}}), ConfigError);
  EXPECT_THROW(OppTable({{900_mhz, Volts{0.0}}}), ConfigError);
}

TEST(OppTable, FromMhzDescendingBuildsAffineVoltageRamp) {
  const double mhz[] = {1000.0, 800.0, 600.0};
  const OppTable t = OppTable::from_mhz_descending(mhz, Volts{0.6}, Volts{1.0});
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0].voltage.value(), 0.6);
  EXPECT_DOUBLE_EQ(t[1].voltage.value(), 0.8);
  EXPECT_DOUBLE_EQ(t[2].voltage.value(), 1.0);
}

TEST(OppTable, FromMhzRejectsBadVoltageRamp) {
  const double mhz[] = {1000.0, 600.0};
  EXPECT_THROW(OppTable::from_mhz_descending(mhz, Volts{1.0}, Volts{0.6}), ConfigError);
  EXPECT_THROW(OppTable::from_mhz_descending({mhz, 0}, Volts{0.6}, Volts{1.0}), ConfigError);
}

}  // namespace
}  // namespace nextgov::soc
