// Unit tests for sensor quantization and the virtual device sensor.
#include <gtest/gtest.h>

#include "soc/sensors.hpp"

namespace nextgov::soc {
namespace {

TEST(Sensors, TemperatureQuantizedToTenthDegree) {
  EXPECT_DOUBLE_EQ(quantize_temperature(Celsius{41.234}).value(), 41.2);
  EXPECT_DOUBLE_EQ(quantize_temperature(Celsius{41.25}).value(), 41.3);
  EXPECT_DOUBLE_EQ(quantize_temperature(Celsius{-0.04}).value(), -0.0);
}

TEST(Sensors, PowerQuantizedToMilliwatt) {
  EXPECT_DOUBLE_EQ(quantize_power(Watts{3.51544}).value(), 3.515);
  EXPECT_DOUBLE_EQ(quantize_power(Watts{3.5156}).value(), 3.516);
}

TEST(Sensors, QuantizationIsIdempotent) {
  const Celsius t = quantize_temperature(Celsius{37.77});
  EXPECT_EQ(quantize_temperature(t).value(), t.value());
  const Watts p = quantize_power(Watts{1.2345});
  EXPECT_EQ(quantize_power(p).value(), p.value());
}

TEST(Sensors, VirtualDeviceSensorIsDocumentedWeightedAverage) {
  // 0.40*battery + 0.35*skin + 0.25*max(soc) per DESIGN.md.
  const Celsius t = virtual_device_temperature(Celsius{30.0}, Celsius{28.0}, Celsius{60.0},
                                               Celsius{40.0}, Celsius{50.0});
  EXPECT_DOUBLE_EQ(t.value(), 0.40 * 30.0 + 0.35 * 28.0 + 0.25 * 60.0);
}

TEST(Sensors, VirtualSensorUsesHottestSocNode) {
  const Celsius gpu_hottest = virtual_device_temperature(
      Celsius{30.0}, Celsius{30.0}, Celsius{40.0}, Celsius{35.0}, Celsius{70.0});
  const Celsius big_hottest = virtual_device_temperature(
      Celsius{30.0}, Celsius{30.0}, Celsius{70.0}, Celsius{35.0}, Celsius{40.0});
  EXPECT_DOUBLE_EQ(gpu_hottest.value(), big_hottest.value());
}

TEST(Sensors, UniformTemperatureIsFixedPoint) {
  const Celsius t =
      virtual_device_temperature(Celsius{21.0}, Celsius{21.0}, Celsius{21.0}, Celsius{21.0},
                                 Celsius{21.0});
  EXPECT_NEAR(t.value(), 21.0, 1e-12);
}

}  // namespace
}  // namespace nextgov::soc
