// Unit tests for the SoC aggregate and the Exynos 9810 factory.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "soc/soc.hpp"

namespace nextgov::soc {
namespace {

TEST(Soc, Exynos9810HasThreePaperClusters) {
  const Soc soc = make_exynos9810();
  ASSERT_EQ(soc.cluster_count(), 3u);
  EXPECT_EQ(soc.big().kind(), ClusterKind::kBigCpu);
  EXPECT_EQ(soc.big().core_count(), 4u);
  EXPECT_EQ(soc.big().opps().size(), 18u);
  EXPECT_EQ(soc.little().kind(), ClusterKind::kLittleCpu);
  EXPECT_EQ(soc.little().core_count(), 4u);
  EXPECT_EQ(soc.little().opps().size(), 10u);
  EXPECT_EQ(soc.gpu().kind(), ClusterKind::kGpu);
  EXPECT_EQ(soc.gpu().core_count(), 18u);  // Mali-G72 MP18
  EXPECT_EQ(soc.gpu().opps().size(), 6u);
}

TEST(Soc, ClusterIndexConstantsMatchLayout) {
  Soc soc = make_exynos9810();
  EXPECT_EQ(&soc.cluster(ClusterIndex::kBig), &soc.big());
  EXPECT_EQ(&soc.cluster(ClusterIndex::kLittle), &soc.little());
  EXPECT_EQ(&soc.cluster(ClusterIndex::kGpu), &soc.gpu());
}

TEST(Soc, ResetRestoresIdleState) {
  Soc soc = make_exynos9810();
  soc.big().request_frequency(KiloHertz::from_mhz(2704));
  soc.gpu().set_max_cap_index(1);
  soc.reset();
  for (const auto& c : soc.clusters()) {
    EXPECT_EQ(c.freq_index(), 0u);
    EXPECT_EQ(c.max_cap_index(), c.opps().size() - 1);
  }
}

TEST(Soc, RequiresAtLeastOneCluster) {
  EXPECT_THROW(Soc("empty", {}, DevicePowerParams{}), ConfigError);
}

TEST(Soc, DevicePowerFloorIsPositive) {
  const Soc soc = make_exynos9810();
  EXPECT_GT(soc.device_power().display.value(), 0.0);
  EXPECT_GT(soc.device_power().rest_of_device.value(), 0.0);
}

}  // namespace
}  // namespace nextgov::soc
