// Unit tests for cluster DVFS state and maxfreq cap semantics.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "soc/cluster.hpp"
#include "soc/opp.hpp"

namespace nextgov::soc {
namespace {

using namespace nextgov::literals;

Cluster make_big() {
  return Cluster{ClusterKind::kBigCpu, "big", 4, exynos9810_big_opps(),
                 ClusterPowerParams{1.7e-9, 0.5, 0.018}};
}

TEST(Cluster, StartsAtLowestOppWithFullCaps) {
  const Cluster c = make_big();
  EXPECT_EQ(c.freq_index(), 0u);
  EXPECT_EQ(c.frequency(), 650_mhz);
  EXPECT_EQ(c.min_cap_index(), 0u);
  EXPECT_EQ(c.max_cap_index(), 17u);
}

TEST(Cluster, RequestFrequencyPicksCeilOpp) {
  Cluster c = make_big();
  c.request_frequency(1.0_ghz);
  EXPECT_EQ(c.frequency(), 1066_mhz);
  c.request_frequency(KiloHertz::from_mhz(5000));
  EXPECT_EQ(c.frequency(), 2704_mhz);
}

TEST(Cluster, OperatingPointClampedByCap) {
  Cluster c = make_big();
  c.set_max_cap_index(5);
  c.request_frequency(KiloHertz::from_mhz(2704));
  EXPECT_EQ(c.freq_index(), 5u);
  EXPECT_EQ(c.frequency(), c.opps()[5].frequency);
}

TEST(Cluster, LoweringCapPullsOperatingPointDown) {
  Cluster c = make_big();
  c.request_frequency(KiloHertz::from_mhz(2704));
  EXPECT_EQ(c.freq_index(), 17u);
  c.set_max_cap_index(3);
  EXPECT_EQ(c.freq_index(), 3u);  // exactly what writing scaling_max_freq does
}

TEST(Cluster, CapStepsSaturateAtTableEnds) {
  Cluster c = make_big();
  EXPECT_FALSE(c.cap_step_up());  // already at the top
  for (int i = 0; i < 40; ++i) c.cap_step_down();
  EXPECT_EQ(c.max_cap_index(), 0u);
  EXPECT_FALSE(c.cap_step_down());
  EXPECT_TRUE(c.cap_step_up());
  EXPECT_EQ(c.max_cap_index(), 1u);
}

TEST(Cluster, ResetCapsRestoresFullRange) {
  Cluster c = make_big();
  c.set_max_cap_index(2);
  c.reset_caps();
  EXPECT_EQ(c.max_cap_index(), 17u);
  EXPECT_EQ(c.min_cap_index(), 0u);
}

TEST(Cluster, RelativeSpeedIsFractionOfMax) {
  Cluster c = make_big();
  c.request_frequency(KiloHertz::from_mhz(2704));
  EXPECT_DOUBLE_EQ(c.relative_speed(), 1.0);
  c.set_freq_index(0);
  EXPECT_NEAR(c.relative_speed(), 650.0 / 2704.0, 1e-12);
}

TEST(Cluster, RejectsInvalidConstruction) {
  EXPECT_THROW(Cluster(ClusterKind::kBigCpu, "x", 0, exynos9810_big_opps(),
                       ClusterPowerParams{1e-9, 0.1, 0.01}),
               ConfigError);
  EXPECT_THROW(Cluster(ClusterKind::kBigCpu, "x", 4, exynos9810_big_opps(),
                       ClusterPowerParams{0.0, 0.1, 0.01}),
               ConfigError);
  EXPECT_THROW(Cluster(ClusterKind::kBigCpu, "x", 4, exynos9810_big_opps(),
                       ClusterPowerParams{1e-9, -0.1, 0.01}),
               ConfigError);
}

TEST(ClusterKind, Names) {
  EXPECT_EQ(to_string(ClusterKind::kBigCpu), "big");
  EXPECT_EQ(to_string(ClusterKind::kLittleCpu), "LITTLE");
  EXPECT_EQ(to_string(ClusterKind::kGpu), "GPU");
}

}  // namespace
}  // namespace nextgov::soc
