// Unit + property tests for the CMOS power model, including the calibration
// anchors documented in DESIGN.md.
#include <gtest/gtest.h>

#include "soc/power_model.hpp"
#include "soc/soc.hpp"

namespace nextgov::soc {
namespace {

TEST(PowerModel, DynamicPowerScalesLinearlyWithUtilization) {
  const Soc soc = make_exynos9810();
  Cluster big = soc.big();
  big.set_freq_index(big.opps().size() - 1);
  const double full = dynamic_power(big, 1.0).value();
  const double half = dynamic_power(big, 0.5).value();
  EXPECT_NEAR(half, full / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(dynamic_power(big, 0.0).value(), 0.0);
}

TEST(PowerModel, UtilizationIsClamped) {
  const Soc soc = make_exynos9810();
  Cluster big = soc.big();
  EXPECT_DOUBLE_EQ(dynamic_power(big, -1.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(dynamic_power(big, 2.0).value(), dynamic_power(big, 1.0).value());
}

TEST(PowerModel, CalibrationAnchorsAtMaxOpp) {
  // DESIGN.md: big ~5.5 W, LITTLE ~1.1 W, GPU ~2.8 W dynamic at fmax/util 1.
  Soc soc = make_exynos9810();
  for (auto& c : soc.clusters()) c.set_freq_index(c.opps().size() - 1);
  EXPECT_NEAR(dynamic_power(soc.big(), 1.0).value(), 5.5, 0.6);
  EXPECT_NEAR(dynamic_power(soc.little(), 1.0).value(), 1.13, 0.25);
  EXPECT_NEAR(dynamic_power(soc.gpu(), 1.0).value(), 2.8, 0.4);
}

TEST(PowerModel, DynamicPowerMonotoneInOppIndex) {
  // V^2 * f grows strictly along the table: higher OPP always costs more.
  Soc soc = make_exynos9810();
  for (auto& cluster : soc.clusters()) {
    double prev = -1.0;
    for (std::size_t i = 0; i < cluster.opps().size(); ++i) {
      cluster.set_freq_index(i);
      const double p = dynamic_power(cluster, 1.0).value();
      EXPECT_GT(p, prev) << cluster.name() << " OPP " << i;
      prev = p;
    }
  }
}

TEST(PowerModel, LeakageGrowsExponentiallyWithTemperature) {
  const Soc soc = make_exynos9810();
  Cluster big = soc.big();
  big.set_freq_index(big.opps().size() - 1);
  const double cold = leakage_power(big, Celsius{25.0}).value();
  const double warm = leakage_power(big, Celsius{65.0}).value();
  const double hot = leakage_power(big, Celsius{105.0}).value();
  EXPECT_GT(warm, cold);
  // Equal temperature steps multiply leakage by the same factor.
  EXPECT_NEAR(warm / cold, hot / warm, 1e-9);
  // beta = 0.018 -> 40 K doubles leakage (e^0.72 ~ 2.05).
  EXPECT_NEAR(warm / cold, 2.05, 0.03);
}

TEST(PowerModel, LeakageScalesWithVoltage) {
  const Soc soc = make_exynos9810();
  Cluster big = soc.big();
  big.set_freq_index(0);
  const double low_v = leakage_power(big, Celsius{50.0}).value();
  big.set_freq_index(big.opps().size() - 1);
  const double high_v = leakage_power(big, Celsius{50.0}).value();
  EXPECT_NEAR(high_v / low_v, 1.08 / 0.70, 1e-9);
}

TEST(PowerModel, ClusterPowerIsDynamicPlusLeakage) {
  const Soc soc = make_exynos9810();
  Cluster gpu = soc.gpu();
  gpu.set_freq_index(3);
  const ClusterLoad load{0.6, 0.8};
  const double total = cluster_power(gpu, load, Celsius{45.0}).value();
  EXPECT_NEAR(total,
              dynamic_power(gpu, 0.6).value() + leakage_power(gpu, Celsius{45.0}).value(),
              1e-12);
}

/// Property sweep: power is monotone in utilization at every OPP of every
/// cluster (parameterized across the cluster index).
class PowerMonotoneInUtil : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PowerMonotoneInUtil, AcrossAllOppsAndLoads) {
  Soc soc = make_exynos9810();
  auto& cluster = soc.cluster(GetParam());
  for (std::size_t i = 0; i < cluster.opps().size(); ++i) {
    cluster.set_freq_index(i);
    double prev = -1.0;
    for (double u = 0.0; u <= 1.0; u += 0.1) {
      const double p = cluster_power(cluster, ClusterLoad{u, u}, Celsius{40.0}).value();
      EXPECT_GE(p, prev);
      prev = p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Clusters, PowerMonotoneInUtil, ::testing::Values(0u, 1u, 2u));

TEST(DevicePower, EnvelopeMatchesPaperMagnitudes) {
  // All clusters flat out at a hot junction must land near the ~12 W burst
  // envelope used for PPDW_worst; idle floor near ~1.4 W.
  Soc soc = make_exynos9810();
  double burst = soc.device_power().display.value() + soc.device_power().rest_of_device.value();
  for (auto& c : soc.clusters()) {
    c.set_freq_index(c.opps().size() - 1);
    burst += cluster_power(c, ClusterLoad{1.0, 1.0}, Celsius{85.0}).value();
  }
  EXPECT_GT(burst, 10.0);
  EXPECT_LT(burst, 14.5);

  double idle = soc.device_power().display.value() + soc.device_power().rest_of_device.value();
  for (auto& c : soc.clusters()) {
    c.set_freq_index(0);
    idle += cluster_power(c, ClusterLoad{0.02, 0.05}, Celsius{25.0}).value();
  }
  EXPECT_GT(idle, 1.0);
  EXPECT_LT(idle, 2.0);
}

}  // namespace
}  // namespace nextgov::soc
