// Tests for the SoA power-model batch: bit-identity against the scalar
// cluster_power() path (the contract the batch-resident pipeline builds
// on), compatibility checks, and the device-power accumulation order.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "soc/power_batch.hpp"
#include "soc/power_model.hpp"
#include "soc/soc.hpp"

namespace nextgov::soc {
namespace {

/// Deterministic but varied per-lane inputs, including the clamp edges
/// (busy < 0, busy > 1) the scalar path clamps inside
/// cluster_power_from_coeffs.
double busy_for(std::size_t session, std::size_t cluster) {
  switch (session % 5) {
    case 0: return -0.25;                                              // below clamp
    case 1: return 1.75;                                               // above clamp
    case 2: return 0.0;
    case 3: return 1.0;
    default: return 0.1 + 0.17 * static_cast<double>((session + cluster) % 6);
  }
}

double temp_for(std::size_t session, std::size_t cluster) {
  return 18.0 + 7.3 * static_cast<double>((session * 3 + cluster) % 11);
}

TEST(PowerBatch, EvaluationIsBitIdenticalToScalarPath) {
  const Soc reference = make_exynos9810();
  const std::size_t sessions = 13;  // odd on purpose: no stride alignment luck
  PowerBatch batch{reference, sessions};
  ASSERT_EQ(batch.cluster_count(), reference.cluster_count());

  // Every session runs its own Soc at its own operating points.
  std::vector<Soc> socs;
  for (std::size_t s = 0; s < sessions; ++s) {
    socs.push_back(make_exynos9810());
    for (std::size_t c = 0; c < socs[s].cluster_count(); ++c) {
      const std::size_t opps = socs[s].cluster(c).opps().size();
      socs[s].cluster(c).set_freq_index((s * 5 + c * 3) % opps);
      batch.set_input(s, c, socs[s].cluster(c).freq_index(), busy_for(s, c));
    }
  }

  // SoA junction-temperature lanes and output lanes, [cluster][session].
  std::vector<double> temps(reference.cluster_count() * sessions);
  std::vector<double> powers(reference.cluster_count() * sessions, 0.0);
  std::vector<const double*> temp_lanes;
  std::vector<double*> power_lanes;
  for (std::size_t c = 0; c < reference.cluster_count(); ++c) {
    for (std::size_t s = 0; s < sessions; ++s) temps[c * sessions + s] = temp_for(s, c);
    temp_lanes.push_back(temps.data() + c * sessions);
    power_lanes.push_back(powers.data() + c * sessions);
  }
  batch.evaluate(temp_lanes, power_lanes);

  for (std::size_t s = 0; s < sessions; ++s) {
    Watts soc_power{0.0};
    for (std::size_t c = 0; c < reference.cluster_count(); ++c) {
      ClusterLoad load;
      load.busy_avg = busy_for(s, c);
      const Watts scalar =
          cluster_power(socs[s].cluster(c), load, Celsius{temp_for(s, c)});
      EXPECT_EQ(powers[c * sessions + s], scalar.value())
          << "session " << s << " cluster " << c;
      soc_power += scalar;
    }
    // The engine's exact accumulation order: (soc + display) + rest.
    const auto& device = socs[s].device_power();
    const Watts expected = soc_power + device.display + device.rest_of_device;
    EXPECT_EQ(batch.device_power(s).value(), expected.value()) << "session " << s;
  }
}

TEST(PowerBatch, CompatibleAcceptsSameModelAndRejectsDifferentOne) {
  const Soc reference = make_exynos9810();
  PowerBatch batch{reference, 4};
  EXPECT_TRUE(batch.compatible(reference));

  // A fresh instance of the same model is compatible regardless of its
  // current operating point (inputs are per tick, tables are the model).
  Soc other = make_exynos9810();
  other.cluster(0).set_freq_index(other.cluster(0).opps().size() - 1);
  EXPECT_TRUE(batch.compatible(other));
}

TEST(PowerBatch, UnsetLanesEvaluateFinite) {
  // The padded-lane contract: lanes never fed by set_input() stay at
  // freq index 0 / busy 0 and must still evaluate to finite powers (the
  // resident pipeline keeps padded thermal lanes at ambient).
  const Soc reference = make_exynos9810();
  const std::size_t sessions = 6;
  PowerBatch batch{reference, sessions};
  std::vector<double> temps(reference.cluster_count() * sessions, 21.0);
  std::vector<double> powers(reference.cluster_count() * sessions, 0.0);
  std::vector<const double*> temp_lanes;
  std::vector<double*> power_lanes;
  for (std::size_t c = 0; c < reference.cluster_count(); ++c) {
    temp_lanes.push_back(temps.data() + c * sessions);
    power_lanes.push_back(powers.data() + c * sessions);
  }
  batch.evaluate(temp_lanes, power_lanes);
  for (std::size_t s = 0; s < sessions; ++s) {
    EXPECT_TRUE(std::isfinite(batch.device_power(s).value())) << "session " << s;
    for (std::size_t c = 0; c < reference.cluster_count(); ++c) {
      EXPECT_TRUE(std::isfinite(powers[c * sessions + s]));
      EXPECT_GE(powers[c * sessions + s], 0.0);  // leakage is still positive
    }
  }
}

}  // namespace
}  // namespace nextgov::soc
