// Unit + property tests for the VSync / triple-buffering render pipeline.
#include <gtest/gtest.h>

#include <cmath>

#include "render/pipeline.hpp"

namespace nextgov::render {
namespace {

using namespace nextgov::literals;

/// Frame source producing constant-cost frames on demand.
class ConstantSource final : public FrameSource {
 public:
  ConstantSource(double cpu_cycles, double gpu_cycles, bool continuous = true)
      : cpu_{cpu_cycles}, gpu_{gpu_cycles}, continuous_{continuous} {}

  bool wants_frame(SimTime) override { return continuous_ && enabled_; }
  FrameJob begin_frame(SimTime) override {
    ++frames_started_;
    return FrameJob{cpu_, gpu_};
  }

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] int frames_started() const { return frames_started_; }

 private:
  double cpu_;
  double gpu_;
  bool continuous_;
  bool enabled_{true};
  int frames_started_{0};
};

/// Fixed-rate cadence source (video model).
class CadenceSource final : public FrameSource {
 public:
  CadenceSource(double fps, double cpu_cycles, double gpu_cycles)
      : period_us_{1e6 / fps}, cpu_{cpu_cycles}, gpu_{gpu_cycles} {}

  bool wants_frame(SimTime now) override {
    return static_cast<double>(now.us()) >= next_due_us_;
  }
  FrameJob begin_frame(SimTime) override {
    next_due_us_ += period_us_;
    return FrameJob{cpu_, gpu_};
  }

 private:
  double period_us_;
  double next_due_us_{0.0};
  double cpu_;
  double gpu_;
};

void run_for(RenderPipeline& p, FrameSource& src, SimTime duration, double f_cpu, double f_gpu,
             PipelineStepResult* acc = nullptr) {
  const SimTime step = 1_ms;
  for (SimTime t = SimTime::zero(); t < duration; t += step) {
    const auto r = p.step(t, step, f_cpu, f_gpu, src);
    if (acc != nullptr) {
      acc->cpu_busy_seconds += r.cpu_busy_seconds;
      acc->gpu_busy_seconds += r.gpu_busy_seconds;
      acc->frames_presented += r.frames_presented;
      acc->frames_dropped += r.frames_dropped;
    }
  }
}

TEST(Pipeline, FastFramesAreVsyncCappedAtSixty) {
  RenderPipeline p;
  ConstantSource src{1e6, 1e6};  // trivially cheap at 2 GHz / 500 MHz
  run_for(p, src, 2_s, 2e9, 5e8);
  EXPECT_NEAR(static_cast<double>(p.frames_presented()), 120.0, 3.0);
  EXPECT_EQ(p.frames_dropped(), 0);
}

TEST(Pipeline, ThroughputLimitedByGpuStage) {
  // GPU stage 25 ms per frame at 4e8 Hz -> ~40 FPS sustained.
  RenderPipeline p;
  ConstantSource src{1e6, 1e7};
  run_for(p, src, 3_s, 2e9, 4e8);
  const double fps = static_cast<double>(p.frames_presented()) / 3.0;
  EXPECT_NEAR(fps, 40.0, 2.5);
  EXPECT_GT(p.frames_dropped(), 0);  // misses VSync deadlines regularly
}

TEST(Pipeline, ThroughputLimitedByCpuStage) {
  // CPU stage 33 ms per frame at 6e8 Hz -> ~30 FPS.
  RenderPipeline p;
  ConstantSource src{2e7, 1e6};
  run_for(p, src, 3_s, 6e8, 5e8);
  const double fps = static_cast<double>(p.frames_presented()) / 3.0;
  EXPECT_NEAR(fps, 30.0, 2.5);
}

TEST(Pipeline, StagesOverlapAcrossFrames) {
  // Serial stage times are 12 + 12 = 24 ms (41 FPS serial), but with
  // pipelining the sustainable rate is min(60, 1/max(t_cpu, t_gpu)) ~ 60
  // with 12 ms stages... use 20 ms stages: serial would be 25 FPS,
  // pipelined ~50 FPS. Verify we beat serial clearly.
  RenderPipeline p;
  ConstantSource src{2e7, 2e7};
  run_for(p, src, 3_s, 1e9, 1e9);  // each stage 20 ms
  const double fps = static_cast<double>(p.frames_presented()) / 3.0;
  EXPECT_GT(fps, 40.0);
  EXPECT_LT(fps, 55.0);
}

TEST(Pipeline, IdleSourceProducesNothing) {
  RenderPipeline p;
  ConstantSource src{1e6, 1e6, /*continuous=*/false};
  PipelineStepResult acc;
  run_for(p, src, 1_s, 2e9, 5e8, &acc);
  EXPECT_EQ(p.frames_presented(), 0);
  EXPECT_EQ(p.frames_dropped(), 0);
  EXPECT_DOUBLE_EQ(acc.cpu_busy_seconds, 0.0);
  EXPECT_DOUBLE_EQ(acc.gpu_busy_seconds, 0.0);
  EXPECT_FALSE(p.busy());
}

TEST(Pipeline, CadenceSourcePresentsAtItsRate) {
  RenderPipeline p;
  CadenceSource src{30.0, 2e6, 2e6};
  run_for(p, src, 3_s, 2e9, 5e8);
  EXPECT_NEAR(static_cast<double>(p.frames_presented()) / 3.0, 30.0, 1.5);
  // A 30 FPS video on a 60 Hz display misses no deadlines.
  EXPECT_EQ(p.frames_dropped(), 0);
}

TEST(Pipeline, BusyTimeMatchesFrameCost) {
  RenderPipeline p;
  CadenceSource src{30.0, 4e6, 6e6};
  PipelineStepResult acc;
  run_for(p, src, 2_s, 2e9, 5e8, &acc);
  // ~60 frames; each frame: cpu 2 ms, gpu 12 ms.
  EXPECT_NEAR(acc.cpu_busy_seconds, 60 * 2e-3, 0.02);
  EXPECT_NEAR(acc.gpu_busy_seconds, 60 * 12e-3, 0.08);
}

TEST(Pipeline, CurrentFpsTracksPresentationRate) {
  RenderPipeline p;
  ConstantSource src{1e6, 1e6};
  run_for(p, src, 2_s, 2e9, 5e8);
  EXPECT_NEAR(p.current_fps(2_s).value(), 60.0, 2.0);
}

TEST(Pipeline, DropRateZeroWhenKeepingUp) {
  RenderPipeline p;
  ConstantSource src{1e6, 1e6};
  run_for(p, src, 2_s, 2e9, 5e8);
  EXPECT_DOUBLE_EQ(p.current_drop_rate(2_s), 0.0);
}

TEST(Pipeline, ResetClearsInFlightState) {
  RenderPipeline p;
  ConstantSource src{5e7, 5e7};
  run_for(p, src, 500_ms, 1e9, 1e9);
  p.reset(500_ms);
  EXPECT_FALSE(p.busy());
  EXPECT_DOUBLE_EQ(p.current_fps(500_ms).value(), 0.0);
}

TEST(Pipeline, FrameTimingIndependentOfStepSize) {
  // The intra-step event walk must make 1 ms and 5 ms engine steps agree.
  RenderPipeline p1;
  ConstantSource s1{8e6, 9e6};
  for (SimTime t = SimTime::zero(); t < 3_s; t += 1_ms) (void)p1.step(t, 1_ms, 1.2e9, 5e8, s1);
  RenderPipeline p5;
  ConstantSource s5{8e6, 9e6};
  for (SimTime t = SimTime::zero(); t < 3_s; t += SimTime::from_ms(5)) {
    (void)p5.step(t, SimTime::from_ms(5), 1.2e9, 5e8, s5);
  }
  EXPECT_NEAR(static_cast<double>(p1.frames_presented()),
              static_cast<double>(p5.frames_presented()), 2.0);
}

/// Property: presented frames never exceed VSync ticks, and every started
/// frame is eventually presented or still in flight.
class PipelineConservation : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PipelineConservation, FrameAccounting) {
  const auto [cpu_cycles, gpu_cycles] = GetParam();
  RenderPipeline p;
  ConstantSource src{cpu_cycles, gpu_cycles};
  run_for(p, src, 2_s, 1.5e9, 4.5e8);
  EXPECT_LE(p.frames_presented(), 121);
  const auto in_flight_max = 5;  // cpu + handoff + gpu + completed(2) bounded
  EXPECT_GE(src.frames_started(), p.frames_presented());
  EXPECT_LE(src.frames_started(), p.frames_presented() + in_flight_max);
}

INSTANTIATE_TEST_SUITE_P(
    Costs, PipelineConservation,
    ::testing::Values(std::make_tuple(1e6, 1e6), std::make_tuple(1e7, 5e6),
                      std::make_tuple(5e6, 1e7), std::make_tuple(2e7, 2e7),
                      std::make_tuple(4e7, 1e6)));

}  // namespace
}  // namespace nextgov::render
