// Unit tests for the sliding-window FPS counter.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "render/fps_counter.hpp"

namespace nextgov::render {
namespace {

using namespace nextgov::literals;

TEST(FpsCounter, EmptyReadsZero) {
  SlidingFpsCounter c;
  EXPECT_DOUBLE_EQ(c.fps(1_s).value(), 0.0);
}

TEST(FpsCounter, CountsPresentsInsideWindow) {
  SlidingFpsCounter c;
  for (int i = 0; i < 30; ++i) c.on_present(SimTime::from_ms(i * 33));
  EXPECT_DOUBLE_EQ(c.fps(SimTime::from_ms(990)).value(), 30.0);
}

TEST(FpsCounter, EvictsOldPresents) {
  SlidingFpsCounter c;
  c.on_present(SimTime::from_ms(10));
  c.on_present(SimTime::from_ms(500));
  c.on_present(SimTime::from_ms(1500));
  // At t=1600 the window is (600, 1600]: only the t=1500 present remains.
  EXPECT_DOUBLE_EQ(c.fps(SimTime::from_ms(1600)).value(), 1.0);
}

TEST(FpsCounter, SteadySixtyHzReadsSixty) {
  SlidingFpsCounter c;
  // Present every 16.667 ms for 2 seconds.
  for (int i = 1; i <= 120; ++i) c.on_present(SimTime::from_us(i * 16'667));
  EXPECT_NEAR(c.fps(2_s).value(), 60.0, 1.0);
}

TEST(FpsCounter, ShorterWindowScalesToPerSecond) {
  SlidingFpsCounter c{SimTime::from_ms(500)};
  for (int i = 0; i < 15; ++i) c.on_present(SimTime::from_ms(i * 33));
  // 15 presents in 0.5 s -> 30 FPS.
  EXPECT_DOUBLE_EQ(c.fps(SimTime::from_ms(495)).value(), 30.0);
}

TEST(FpsCounter, ClearDropsHistory) {
  SlidingFpsCounter c;
  c.on_present(SimTime::from_ms(100));
  c.clear();
  EXPECT_DOUBLE_EQ(c.fps(SimTime::from_ms(200)).value(), 0.0);
}

TEST(FpsCounter, RejectsNonPositiveWindow) {
  EXPECT_THROW(SlidingFpsCounter{SimTime::zero()}, ConfigError);
}

TEST(FpsCounter, BoundaryPresentAtExactCutoffIsEvicted) {
  SlidingFpsCounter c;
  c.on_present(1_s);
  // Window at t=2s is (1s, 2s]: the t=1s present is exactly at the cutoff.
  EXPECT_DOUBLE_EQ(c.fps(2_s).value(), 0.0);
}

}  // namespace
}  // namespace nextgov::render
