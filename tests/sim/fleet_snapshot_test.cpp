// Unit tests for fleet checkpoint persistence (sim/fleet.hpp): snapshot
// round trips, the recorded-options guard on resume, and corruption
// rejection. The bit-identical crash/resume behavior of train_fleet itself
// is pinned by tests/sim/fleet_resume_golden_test.cpp and the
// fleet_checkpoint CI smoke step.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/fleet.hpp"

namespace nextgov::sim {
namespace {

rl::QTable table_with(std::size_t actions, rl::StateKey base, std::size_t states) {
  rl::QTable t{actions};
  for (rl::StateKey s = 0; s < states; ++s) {
    t.set_q(base + s, s % actions, 0.01 * static_cast<double>(s));
    t.record_visit(base + s);
  }
  return t;
}

FleetSnapshot sample_snapshot() {
  FleetSnapshot snap;
  snap.next_round = 3;
  snap.total_decisions = 1234;
  snap.last_round_mean_reward = 0.625;
  snap.dropped_device_rounds = 2;
  snap.rejected_uploads = 1;
  snap.shard_tables.push_back(table_with(9, 100, 5));
  snap.shard_tables.push_back(std::nullopt);
  snap.uploads.push_back(FleetUpload{table_with(9, 200, 4), 2});
  snap.uploads.push_back(std::nullopt);
  snap.shard_last_upload = {2, kNeverUploaded};
  snap.last_aggregate = table_with(9, 300, 6);
  return snap;
}

class FleetSnapshotFile : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove(path_.c_str());
    std::remove((path_ + ".corrupt").c_str());
  }
  std::string path_ = ::testing::TempDir() + "/nextgov_fleet_snapshot_test.bin";
  FleetOptions options_{};  // defaults are fine; only identity matters here
};

TEST_F(FleetSnapshotFile, RoundTripsAllState) {
  const FleetSnapshot snap = sample_snapshot();
  save_fleet_snapshot(snap, options_, path_);
  const FleetSnapshot back = load_fleet_snapshot(path_);
  EXPECT_EQ(back.next_round, snap.next_round);
  EXPECT_EQ(back.total_decisions, snap.total_decisions);
  EXPECT_EQ(back.last_round_mean_reward, snap.last_round_mean_reward);
  EXPECT_EQ(back.dropped_device_rounds, snap.dropped_device_rounds);
  EXPECT_EQ(back.rejected_uploads, snap.rejected_uploads);
  ASSERT_EQ(back.shard_tables.size(), 2u);
  ASSERT_TRUE(back.shard_tables[0].has_value());
  EXPECT_TRUE(*back.shard_tables[0] == *snap.shard_tables[0]);
  EXPECT_FALSE(back.shard_tables[1].has_value());
  ASSERT_TRUE(back.uploads[0].has_value());
  EXPECT_EQ(back.uploads[0]->round, 2u);
  EXPECT_TRUE(back.uploads[0]->table == snap.uploads[0]->table);
  EXPECT_FALSE(back.uploads[1].has_value());
  EXPECT_EQ(back.shard_last_upload, snap.shard_last_upload);
  ASSERT_TRUE(back.last_aggregate.has_value());
  EXPECT_TRUE(*back.last_aggregate == *snap.last_aggregate);
}

TEST_F(FleetSnapshotFile, ResumeUnderDifferentOptionsIsRefused) {
  save_fleet_snapshot(sample_snapshot(), options_, path_);
  // Matching options pass the guard...
  EXPECT_NO_THROW((void)load_fleet_snapshot(path_, options_));
  // ...but any trajectory-determining difference is refused.
  FleetOptions changed = options_;
  changed.base_seed += 1;
  EXPECT_THROW((void)load_fleet_snapshot(path_, changed), SerializeError);
  changed = options_;
  changed.devices += 1;
  EXPECT_THROW((void)load_fleet_snapshot(path_, changed), SerializeError);
  changed = options_;
  changed.faults.dropout_rate = 0.5;
  EXPECT_THROW((void)load_fleet_snapshot(path_, changed), SerializeError);
  changed = options_;
  changed.next_config.qlearning.alpha += 0.01;
  EXPECT_THROW((void)load_fleet_snapshot(path_, changed), SerializeError);
  // rounds and the crash/snapshot plumbing are deliberately NOT identity:
  // a resumed run may extend the horizon and drop the crash hook.
  changed = options_;
  changed.rounds += 10;
  changed.faults.crash_at_round = kNoCrashRound;
  changed.snapshot_every = 0;
  changed.resume_from = path_;
  EXPECT_NO_THROW((void)load_fleet_snapshot(path_, changed));
}

TEST_F(FleetSnapshotFile, CorruptionAndTruncationAreRejected) {
  save_fleet_snapshot(sample_snapshot(), options_, path_);
  std::vector<unsigned char> good;
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    int c;
    while ((c = std::fgetc(f)) != EOF) good.push_back(static_cast<unsigned char>(c));
    std::fclose(f);
  }
  std::vector<unsigned char> bad = good;
  bad[bad.size() / 2] ^= 0x40;
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bad.data(), 1, bad.size(), f);
    std::fclose(f);
  }
  EXPECT_THROW((void)load_fleet_snapshot(path_), SerializeError);
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(good.data(), 1, good.size() / 3, f);
    std::fclose(f);
  }
  EXPECT_THROW((void)load_fleet_snapshot(path_), SerializeError);
  EXPECT_THROW((void)load_fleet_snapshot(path_ + ".missing"), IoError);
}

TEST_F(FleetSnapshotFile, CorruptSnapshotIsQuarantinedNotLeftInPlace) {
  // A CRC-failing snapshot must not sit at its path failing every restart:
  // the load renames it to <path>.corrupt (and says so in the error), so
  // the next startup falls through to older state instead of re-reading
  // the same damage forever.
  save_fleet_snapshot(sample_snapshot(), options_, path_);
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -8, SEEK_END);  // inside the last section's payload
    const unsigned char evil = 0xa5;
    std::fwrite(&evil, 1, 1, f);
    std::fclose(f);
  }
  try {
    (void)load_fleet_snapshot(path_);
    FAIL() << "expected SerializeError";
  } catch (const SerializeError& e) {
    EXPECT_NE(std::string(e.what()).find("quarantined"), std::string::npos) << e.what();
  }
  // The original is gone; the damage is preserved for post-mortems.
  std::FILE* original = std::fopen(path_.c_str(), "rb");
  EXPECT_EQ(original, nullptr);
  std::FILE* quarantined = std::fopen((path_ + ".corrupt").c_str(), "rb");
  ASSERT_NE(quarantined, nullptr);
  std::fclose(quarantined);
}

TEST_F(FleetSnapshotFile, ServerStateRoundTripsThroughVersionTwo) {
  // The fleet-server extension (leases, pending uploads, clock, counters)
  // must survive a container round trip bit-exactly - it is what makes a
  // kill -9 resume replay the same arrivals.
  FleetSnapshot snap = sample_snapshot();
  snap.has_server_state = true;
  snap.leases = {DeviceLease{true, 0}, DeviceLease{false, 7}};
  snap.pending_uploads.push_back(PendingUpload{1, 2, 987654321, 3, table_with(9, 400, 3)});
  snap.server_clock_us = 123456789;
  snap.server_counters = {10, 20, 30, 40, 50, 60};
  save_fleet_snapshot(snap, options_, path_);
  EXPECT_EQ(SnapshotReader::from_file(path_).version(), kSnapshotVersion);

  const FleetSnapshot back = load_fleet_snapshot(path_);
  ASSERT_TRUE(back.has_server_state);
  ASSERT_EQ(back.leases.size(), 2u);
  EXPECT_TRUE(back.leases[0].active);
  EXPECT_FALSE(back.leases[1].active);
  EXPECT_EQ(back.leases[1].rejoin_round, 7u);
  ASSERT_EQ(back.pending_uploads.size(), 1u);
  EXPECT_EQ(back.pending_uploads[0].device, 1u);
  EXPECT_EQ(back.pending_uploads[0].trained_round, 2u);
  EXPECT_EQ(back.pending_uploads[0].arrival_us, 987654321);
  EXPECT_EQ(back.pending_uploads[0].attempts_used, 3u);
  EXPECT_TRUE(back.pending_uploads[0].table == snap.pending_uploads[0].table);
  EXPECT_EQ(back.server_clock_us, 123456789);
  EXPECT_EQ(back.server_counters.rounds_served, 10u);
  EXPECT_EQ(back.server_counters.uploads_accepted, 20u);
  EXPECT_EQ(back.server_counters.uploads_retried, 30u);
  EXPECT_EQ(back.server_counters.uploads_lost, 40u);
  EXPECT_EQ(back.server_counters.late_uploads_merged, 50u);
  EXPECT_EQ(back.server_counters.departures, 60u);

  // A plain train_fleet checkpoint stays server-less on the way back - the
  // version-1 decode path in miniature.
  save_fleet_snapshot(sample_snapshot(), options_, path_);
  EXPECT_FALSE(load_fleet_snapshot(path_).has_server_state);
}

TEST_F(FleetSnapshotFile, SyncStateRoundTripsThroughVersionThree) {
  // The delta-upload extension: per-shard bases + cursors + the cumulative
  // wire counters must survive a container round trip bit-exactly, so a
  // resumed run replays the same delta/full decisions and keeps counting.
  FleetSnapshot snap = sample_snapshot();
  snap.sync.bases.push_back(table_with(9, 500, 4));
  snap.sync.bases.push_back(std::nullopt);
  snap.sync.cursors = {2, kNeverUploaded};
  snap.sync.upload_bytes_full = 11111;
  snap.sync.upload_bytes_delta = 2222;
  snap.sync.uploads_full = 7;
  snap.sync.uploads_delta = 13;
  save_fleet_snapshot(snap, options_, path_);

  const FleetSnapshot back = load_fleet_snapshot(path_);
  ASSERT_EQ(back.sync.bases.size(), 2u);
  ASSERT_TRUE(back.sync.bases[0].has_value());
  EXPECT_TRUE(*back.sync.bases[0] == *snap.sync.bases[0]);
  EXPECT_FALSE(back.sync.bases[1].has_value());
  EXPECT_EQ(back.sync.cursors, snap.sync.cursors);
  EXPECT_EQ(back.sync.upload_bytes_full, 11111u);
  EXPECT_EQ(back.sync.upload_bytes_delta, 2222u);
  EXPECT_EQ(back.sync.uploads_full, 7u);
  EXPECT_EQ(back.sync.uploads_delta, 13u);
}

TEST_F(FleetSnapshotFile, MissingSyncSectionDecodesWithDefaults) {
  // Pre-v3 files have no "sync_state" section. Synthesize one by copying
  // only the sections an old writer produced into a fresh container: the
  // decode must fall back to empty bases and zero counters, not fail.
  save_fleet_snapshot(sample_snapshot(), options_, path_);
  const SnapshotReader original = SnapshotReader::from_file(path_);
  SnapshotWriter pruned;
  for (const char* name : {"fleet_options", "fleet_state"}) {
    ByteReader in = original.section(name);
    std::vector<std::uint8_t> payload;
    payload.reserve(in.remaining());
    while (!in.done()) payload.push_back(in.u8());
    pruned.section(name).bytes(payload);
  }
  const SnapshotReader reader{pruned.bytes(), "pruned"};
  const FleetSnapshot back = read_fleet_state_sections(reader);
  EXPECT_EQ(back.next_round, 3u);
  EXPECT_TRUE(back.sync.bases.empty());
  EXPECT_TRUE(back.sync.cursors.empty());
  EXPECT_EQ(back.sync.upload_bytes_full, 0u);
  EXPECT_EQ(back.sync.upload_bytes_delta, 0u);
  EXPECT_EQ(back.sync.uploads_full, 0u);
  EXPECT_EQ(back.sync.uploads_delta, 0u);
}

}  // namespace
}  // namespace nextgov::sim
