// Unit tests for the experiment harness.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace nextgov::sim {
namespace {

TEST(Experiment, GovernorNames) {
  EXPECT_EQ(to_string(GovernorKind::kSchedutil), "schedutil");
  EXPECT_EQ(to_string(GovernorKind::kIntQos), "intqos");
  EXPECT_EQ(to_string(GovernorKind::kNext), "next");
}

TEST(Experiment, SessionResultFieldsArePopulated) {
  ExperimentConfig cfg;
  cfg.duration = SimTime::from_seconds(20.0);
  const SessionResult r = run_app_session(workload::AppId::kFacebook, cfg);
  EXPECT_EQ(r.app, "facebook");
  EXPECT_EQ(r.governor, "schedutil");
  EXPECT_DOUBLE_EQ(r.duration_s, 20.0);
  EXPECT_GT(r.avg_power_w, 0.5);
  EXPECT_GE(r.peak_power_w, r.avg_power_w);
  EXPECT_GE(r.peak_temp_big_c, r.avg_temp_big_c);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_FALSE(r.series.empty());
}

TEST(Experiment, SameSeedReproducesExactly) {
  ExperimentConfig cfg;
  cfg.duration = SimTime::from_seconds(15.0);
  cfg.seed = 5;
  const SessionResult a = run_app_session(workload::AppId::kSpotify, cfg);
  const SessionResult b = run_app_session(workload::AppId::kSpotify, cfg);
  EXPECT_DOUBLE_EQ(a.avg_power_w, b.avg_power_w);
  EXPECT_EQ(a.frames_presented, b.frames_presented);
}

TEST(Experiment, CustomFactorySessionsWork) {
  ExperimentConfig cfg;
  cfg.duration = SimTime::from_seconds(10.0);
  const SessionResult r = run_session(
      [](std::uint64_t seed) { return workload::make_fig1_session(seed); }, "fig1", cfg);
  EXPECT_EQ(r.app, "fig1");
}

TEST(Experiment, TrainingProducesUsableTable) {
  TrainingOptions opts;
  opts.max_duration = SimTime::from_seconds(120.0);
  opts.episode_length = SimTime::from_seconds(30.0);
  const TrainingResult tr = train_next(workload::AppId::kFacebook, core::NextConfig{}, opts);
  EXPECT_GT(tr.decisions, 1000u);
  EXPECT_GT(tr.states_visited, 10u);
  EXPECT_GT(tr.table.total_visits(), 0u);
  EXPECT_GT(tr.wall_seconds, 0.0);
  EXPECT_LE(tr.sim_seconds, 120.0 + 1.0);
}

TEST(Experiment, TrainedTableDeploysGreedily) {
  TrainingOptions opts;
  opts.max_duration = SimTime::from_seconds(120.0);
  const TrainingResult tr = train_next(workload::AppId::kFacebook, core::NextConfig{}, opts);

  ExperimentConfig cfg;
  cfg.governor = GovernorKind::kNext;
  cfg.duration = SimTime::from_seconds(20.0);
  cfg.trained_table = &tr.table;
  const SessionResult r = run_app_session(workload::AppId::kFacebook, cfg);
  EXPECT_EQ(r.governor, "next");
  EXPECT_GT(r.avg_power_w, 0.5);
}

TEST(Experiment, StopAtConvergenceEndsEarlyWhenDetectorFires) {
  TrainingOptions stop;
  stop.max_duration = SimTime::from_seconds(2000.0);
  stop.stop_at_convergence = true;
  const TrainingResult tr = train_next(workload::AppId::kYoutube, core::NextConfig{}, stop);
  if (tr.converged) {
    EXPECT_LT(tr.sim_seconds, 2000.0);
  } else {
    EXPECT_NEAR(tr.sim_seconds, 2000.0, 1.0);
  }
}

TEST(Experiment, EngineFactoryHonoursGovernorKind) {
  ExperimentConfig cfg;
  cfg.governor = GovernorKind::kIntQos;
  auto engine = make_engine(
      [](std::uint64_t seed) { return workload::make_app(workload::AppId::kLineage, seed); },
      cfg);
  ASSERT_NE(engine->meta(), nullptr);
  EXPECT_EQ(engine->meta()->name(), "intqos");
  cfg.governor = GovernorKind::kSchedutil;
  auto stock = make_engine(
      [](std::uint64_t seed) { return workload::make_app(workload::AppId::kLineage, seed); },
      cfg);
  EXPECT_EQ(stock->meta(), nullptr);
}

}  // namespace
}  // namespace nextgov::sim
