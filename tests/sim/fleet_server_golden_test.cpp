// Golden test for the fleet server's crash contract (the PR's acceptance
// bar): kill -9 at *any* round boundary followed by a restart must produce
// final Q-tables byte-identical to a server that never died - with a
// departed-mid-round device AND a straggling device active in the same
// run, so the recovery path is proven against the full churn machinery
// (lease expiry, late carry-over, retry/backoff), not just a calm fleet.
// The CI crash-recovery smoke (examples/fleet_serverd.cpp) exercises the
// same contract end to end through real signals and the filesystem.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/fleet_server.hpp"

namespace nextgov::sim {
namespace {

constexpr std::size_t kRounds = 4;

/// Churny-but-fast geometry. The churn rates/seed are tuned so the
/// reference run provably contains at least one mid-round departure and at
/// least one straggler carry-over (asserted below - if a future engine
/// change shifts the draws, the assert says to retune rather than letting
/// the test silently weaken).
FleetServerOptions golden_server(const std::string& prefix) {
  FleetServerOptions options;
  options.devices = 4;
  options.round_duration = SimTime::from_seconds(20.0);
  options.round_deadline = SimTime::from_seconds(40.0);
  options.episode_length = SimTime::from_seconds(10.0);
  options.heartbeat_period = SimTime::from_seconds(2.0);
  options.lease_timeout = SimTime::from_seconds(5.0);
  options.upload_latency = SimTime::from_seconds(1.0);
  options.retry_backoff = SimTime::from_seconds(2.0);
  options.base_seed = 2020;
  options.churn.depart_rate = 0.25;
  options.churn.straggle_rate = 0.3;
  options.churn.upload_fail_rate = 0.3;
  options.churn.rejoin_after_rounds = 1;
  options.snapshot_ring = 3;
  options.snapshot_prefix = prefix;
  return options;
}

std::string ring_prefix(const std::string& name) {
  const std::string prefix = ::testing::TempDir() + "/nextgov_fsrv_golden_" + name;
  for (std::size_t slot = 0; slot < 8; ++slot) {
    std::remove((prefix + "." + std::to_string(slot)).c_str());
    std::remove((prefix + "." + std::to_string(slot) + ".corrupt").c_str());
  }
  return prefix;
}

std::vector<std::uint8_t> canonical_bytes(const rl::QTable& table) {
  ByteWriter out;
  table.serialize(out);
  return out.data();
}

TEST(FleetServerGolden, KillNineAtEveryBoundaryResumesBitIdentically) {
  // The uninterrupted reference.
  const FleetServerOptions reference_options = golden_server(ring_prefix("ref"));
  FleetServer reference{workload::AppId::kFacebook, reference_options, {.workers = 2}};
  std::size_t departures = 0;
  std::size_t carried = 0;
  std::size_t late = 0;
  reference.run_rounds(kRounds, [&](const FleetServerRoundStats& rs) {
    departures += rs.departures;
    carried += rs.carried_late;
    late += rs.late_merged;
  });
  ASSERT_NE(reference.global(), nullptr);
  const std::vector<std::uint8_t> want = canonical_bytes(*reference.global());
  // The acceptance criterion demands both churn modes in the same run.
  ASSERT_GT(departures, 0u) << "retune churn seed: no device departed mid-round";
  ASSERT_GT(carried, 0u) << "retune churn seed: no straggler crossed a deadline";
  ASSERT_GT(late, 0u) << "retune churn seed: no late upload ever merged";

  // Kill at every boundary k (destroying the server without drain() is the
  // in-process kill -9: the ring on disk is all that survives), restart,
  // finish, compare bytes.
  for (std::size_t k = 0; k <= kRounds; ++k) {
    SCOPED_TRACE("killed after round " + std::to_string(k));
    const FleetServerOptions options =
        golden_server(ring_prefix("kill" + std::to_string(k)));
    {
      FleetServer doomed{workload::AppId::kFacebook, options, {.workers = 2}};
      doomed.run_rounds(k);
    }
    FleetServer resumed{workload::AppId::kFacebook, options, {.workers = 2}};
    EXPECT_EQ(resumed.restored(), k > 0);
    ASSERT_EQ(resumed.round(), k);
    resumed.run_rounds(kRounds - k);
    ASSERT_NE(resumed.global(), nullptr);
    EXPECT_EQ(canonical_bytes(*resumed.global()), want);
    EXPECT_EQ(resumed.stats().uploads_accepted, reference.stats().uploads_accepted);
    EXPECT_EQ(resumed.stats().departures, reference.stats().departures);
    EXPECT_EQ(resumed.stats().total_decisions, reference.stats().total_decisions);
  }
}

}  // namespace
}  // namespace nextgov::sim
