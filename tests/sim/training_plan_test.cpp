// Tests for the parallel training runner: plan construction, the
// determinism contract (N-worker training is bit-identical to serial in
// plan order, wall_seconds excepted), warm starts and failure propagation.
#include <gtest/gtest.h>

#include <cstring>

#include "common/error.hpp"
#include "sim/runner.hpp"

namespace nextgov::sim {
namespace {

TrainingOptions short_training(std::uint64_t seed, double budget_s = 40.0) {
  TrainingOptions opts;
  opts.max_duration = SimTime::from_seconds(budget_s);
  opts.episode_length = SimTime::from_seconds(20.0);
  opts.seed = seed;
  return opts;
}

/// Bit-identity over everything the determinism contract covers: the
/// learned table (entries, visit counts, tried masks) and every derived
/// field except wall_seconds (host time by definition).
void expect_bit_identical(const TrainingResult& a, const TrainingResult& b) {
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.final_mean_reward, b.final_mean_reward);
  EXPECT_EQ(a.states_visited, b.states_visited);
  ASSERT_EQ(a.table.action_count(), b.table.action_count());
  ASSERT_EQ(a.table.state_count(), b.table.state_count());
  EXPECT_EQ(a.table.total_visits(), b.table.total_visits());
  a.table.for_each_entry([&](const rl::QTable::EntryView& ea) {
    ASSERT_TRUE(b.table.contains(ea.key())) << "state " << ea.key() << " missing";
    EXPECT_EQ(ea.visits(), b.table.visits(ea.key())) << "state " << ea.key();
    EXPECT_EQ(ea.tried(), b.table.tried_mask(ea.key())) << "state " << ea.key();
    for (std::size_t i = 0; i < a.table.action_count(); ++i) {
      EXPECT_EQ(ea.q(i), b.table.q(ea.key(), i)) << "state " << ea.key() << " action " << i;
    }
  });
  EXPECT_TRUE(a.table == b.table);
}

TEST(TrainingPlan, BuildsCellsInOrder) {
  TrainingPlan plan;
  plan.add(workload::AppId::kFacebook, core::NextConfig{}, short_training(1));
  core::NextConfig fine;
  fine.fps_levels = 60;
  plan.add(workload::AppId::kLineage, fine, short_training(2));
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.cells()[0].name, "facebook");
  EXPECT_EQ(plan.cells()[1].name, "lineage");
  EXPECT_EQ(plan.cells()[1].config.fps_levels, 60u);
  EXPECT_EQ(plan.cells()[1].options.seed, 2u);
}

TEST(TrainingPlan, SeedSweepUsesDerivedSeeds) {
  TrainingPlan plan;
  plan.add_seed_sweep(workload::AppId::kPubg, core::NextConfig{}, short_training(0), 3, 99);
  ASSERT_EQ(plan.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(plan.cells()[i].options.seed, derive_seed(99, i));
  }
}

TEST(TrainingPlan, AddRejectsNullFactory) {
  TrainingPlan plan;
  EXPECT_THROW(plan.add(AppFactory{}, "broken", core::NextConfig{}, short_training(1)),
               ConfigError);
}

TEST(TrainingRunner, ParallelIsBitIdenticalToSerial) {
  // 2 apps x 2 seeds, short budgets: enough to cross episode restarts and
  // exercise the full RL stack under real concurrency.
  TrainingPlan plan;
  plan.add(workload::AppId::kFacebook, core::NextConfig{}, short_training(5));
  plan.add(workload::AppId::kFacebook, core::NextConfig{}, short_training(6));
  plan.add(workload::AppId::kLineage, core::NextConfig{}, short_training(7));
  plan.add(workload::AppId::kLineage, core::NextConfig{}, short_training(8));
  const auto serial = run_training_plan(plan, {.workers = 1});
  const auto parallel = run_training_plan(plan, {.workers = 4});
  ASSERT_EQ(serial.size(), plan.size());
  ASSERT_EQ(parallel.size(), plan.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_bit_identical(serial[i], parallel[i]);
  }
}

TEST(TrainingRunner, WarmStartResumesFromTable) {
  TrainingPlan cold_plan;
  cold_plan.add(workload::AppId::kFacebook, core::NextConfig{}, short_training(11, 60.0));
  const TrainingResult cold = std::move(run_training_plan(cold_plan).front());
  ASSERT_GT(cold.table.state_count(), 0u);

  TrainingOptions warm_opts = short_training(12, 30.0);
  warm_opts.initial_table = &cold.table;
  TrainingPlan warm_plan;
  warm_plan.add(workload::AppId::kFacebook, core::NextConfig{}, warm_opts);
  const TrainingResult warm = std::move(run_training_plan(warm_plan).front());

  // The warm-started agent keeps the cold run's coverage (and adds to it).
  EXPECT_GE(warm.table.state_count(), cold.table.state_count());
  EXPECT_GT(warm.table.total_visits(), cold.table.total_visits());
}

TEST(TrainingRunner, EmptyPlanReturnsEmpty) {
  EXPECT_TRUE(run_training_plan(TrainingPlan{}).empty());
}

TEST(TrainingRunner, PropagatesTrainingFailure) {
  TrainingPlan plan;
  plan.add(workload::AppId::kHome, core::NextConfig{}, short_training(1, 5.0));
  plan.add([](std::uint64_t) -> std::unique_ptr<workload::App> {
    throw ConfigError("boom");
  }, "broken", core::NextConfig{}, short_training(2, 5.0));
  EXPECT_THROW((void)run_training_plan(plan, {.workers = 2}), ConfigError);
}

}  // namespace
}  // namespace nextgov::sim
