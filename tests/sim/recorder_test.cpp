// Unit tests for the session recorder.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "sim/recorder.hpp"

namespace nextgov::sim {
namespace {

TEST(Recorder, StoresSamplesInOrder) {
  Recorder rec;
  for (int i = 0; i < 5; ++i) {
    Sample s;
    s.time_s = i;
    s.power_w = 2.0 + i;
    rec.add(s);
  }
  ASSERT_EQ(rec.samples().size(), 5u);
  EXPECT_DOUBLE_EQ(rec.samples()[3].power_w, 5.0);
}

TEST(Recorder, ColumnExtraction) {
  Recorder rec;
  for (int i = 0; i < 3; ++i) {
    Sample s;
    s.fps = 10.0 * i;
    rec.add(s);
  }
  const auto fps = rec.column(&Sample::fps);
  ASSERT_EQ(fps.size(), 3u);
  EXPECT_DOUBLE_EQ(fps[2], 20.0);
}

TEST(Recorder, RejectsNonPositivePeriod) {
  EXPECT_THROW(Recorder{SimTime::zero()}, ConfigError);
}

TEST(Recorder, CsvHasHeaderAndAllRows) {
  const std::string path = ::testing::TempDir() + "/recorder_test.csv";
  Recorder rec;
  Sample s;
  s.time_s = 1.0;
  s.fps = 60.0;
  rec.add(s);
  rec.save_csv(path);
  std::ifstream in{path};
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("time_s"), std::string::npos);
  EXPECT_NE(header.find("ppdw"), std::string::npos);
  std::string row;
  EXPECT_TRUE(static_cast<bool>(std::getline(in, row)));
  EXPECT_FALSE(static_cast<bool>(std::getline(in, row)));
  std::remove(path.c_str());
}

TEST(Recorder, ClearEmpties) {
  Recorder rec;
  rec.add(Sample{});
  rec.clear();
  EXPECT_TRUE(rec.empty());
}

}  // namespace
}  // namespace nextgov::sim
