// Tests for the long-running fleet server (sim/fleet_server.hpp): options
// validation, determinism across worker counts under churn, straggler
// carry-over, retry/loss accounting, lease departure bookkeeping, and the
// snapshot ring (rotation, corrupt-entry quarantine + fallback, options
// identity, cold start). The kill -9 bit-identity contract itself lives in
// tests/sim/fleet_server_golden_test.cpp.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/fleet_server.hpp"

namespace nextgov::sim {
namespace {

/// Small-but-real server geometry: rounds are fast enough for the unit
/// tier, and the timing windows satisfy validate_fleet_server_options
/// (deadline 40 s > duration 20 s + latency 1 s; duration + lease 5 s fits
/// the deadline).
FleetServerOptions small_server() {
  FleetServerOptions options;
  options.devices = 3;
  options.round_duration = SimTime::from_seconds(20.0);
  options.round_deadline = SimTime::from_seconds(40.0);
  options.episode_length = SimTime::from_seconds(10.0);
  options.heartbeat_period = SimTime::from_seconds(2.0);
  options.lease_timeout = SimTime::from_seconds(5.0);
  options.upload_latency = SimTime::from_seconds(1.0);
  options.retry_backoff = SimTime::from_seconds(2.0);
  options.base_seed = 77;
  return options;
}

std::vector<std::uint8_t> canonical_bytes(const rl::QTable& table) {
  ByteWriter out;
  table.serialize(out);
  return out.data();
}

/// Fresh per-test ring prefix (and cleanup of any stale slots/quarantine
/// files a previous run left behind).
std::string ring_prefix(const std::string& name) {
  const std::string prefix = ::testing::TempDir() + "/nextgov_fsrv_" + name;
  for (std::size_t slot = 0; slot < 16; ++slot) {
    std::remove((prefix + "." + std::to_string(slot)).c_str());
    std::remove((prefix + "." + std::to_string(slot) + ".corrupt").c_str());
  }
  return prefix;
}

TEST(FleetServerOptionsValidation, RejectsDegenerateConfigurations) {
  const auto expect_rejected = [](auto mutate, const char* label) {
    FleetServerOptions options = small_server();
    mutate(options);
    EXPECT_THROW(validate_fleet_server_options(options), ConfigError) << label;
  };
  expect_rejected([](auto& o) { o.devices = 0; }, "devices == 0");
  expect_rejected([](auto& o) { o.round_duration = SimTime::zero(); }, "zero duration");
  expect_rejected([](auto& o) { o.episode_length = SimTime::zero(); }, "zero episode");
  expect_rejected([](auto& o) { o.heartbeat_period = SimTime::zero(); }, "zero heartbeat");
  expect_rejected([](auto& o) { o.lease_timeout = SimTime::from_seconds(1.0); },
                  "lease_timeout < heartbeat_period");
  expect_rejected([](auto& o) { o.retry_backoff = SimTime::zero(); }, "zero backoff");
  expect_rejected([](auto& o) { o.max_upload_attempts = 0; }, "zero attempts");
  expect_rejected([](auto& o) { o.round_deadline = SimTime::from_seconds(20.5); },
                  "deadline leaves no room for a clean upload");
  expect_rejected([](auto& o) { o.lease_timeout = SimTime::from_seconds(25.0); },
                  "lease expiry could cross the round boundary");
  expect_rejected([](auto& o) { o.churn.depart_rate = 1.0; }, "depart_rate == 1");
  expect_rejected([](auto& o) { o.churn.upload_fail_rate = 1.0; }, "fail_rate == 1");
  expect_rejected([](auto& o) { o.churn.rejoin_after_rounds = 0; }, "rejoin == 0");
  expect_rejected([](auto& o) { o.snapshot_ring = 3; }, "ring without prefix");
  EXPECT_NO_THROW(validate_fleet_server_options(small_server()));
}

TEST(FleetServer, CalmFleetReachesFullQuorumEveryRound) {
  FleetServer server{workload::AppId::kFacebook, small_server(), {.workers = 2}};
  std::vector<FleetServerRoundStats> rounds;
  server.run_rounds(2, [&](const FleetServerRoundStats& rs) { rounds.push_back(rs); });
  ASSERT_EQ(rounds.size(), 2u);
  for (const auto& rs : rounds) {
    EXPECT_EQ(rs.training_devices, 3u);
    EXPECT_EQ(rs.quorum, 3u);  // every upload beats the deadline
    EXPECT_EQ(rs.departures, 0u);
    EXPECT_EQ(rs.carried_late, 0u);
    EXPECT_EQ(rs.retries, 0u);
    EXPECT_EQ(rs.lost_uploads, 0u);
    EXPECT_GT(rs.global_states, 0u);
  }
  ASSERT_NE(server.global(), nullptr);
  EXPECT_EQ(server.round(), 2u);
  EXPECT_EQ(server.now().us(), 2 * small_server().round_deadline.us());
  EXPECT_EQ(server.stats().uploads_accepted, 6u);
  EXPECT_GT(server.stats().total_decisions, 0u);
}

TEST(FleetServer, DeterministicAcrossWorkerCountsUnderChurn) {
  FleetServerOptions options = small_server();
  options.devices = 4;
  options.churn.depart_rate = 0.3;
  options.churn.straggle_rate = 0.3;
  options.churn.upload_fail_rate = 0.4;
  options.churn.rejoin_after_rounds = 1;
  FleetServer serial{workload::AppId::kFacebook, options, {.workers = 1}};
  FleetServer pooled{workload::AppId::kFacebook, options, {.workers = 4}};
  serial.run_rounds(3);
  pooled.run_rounds(3);
  ASSERT_NE(serial.global(), nullptr);
  ASSERT_NE(pooled.global(), nullptr);
  EXPECT_EQ(canonical_bytes(*serial.global()), canonical_bytes(*pooled.global()));
  EXPECT_EQ(serial.stats().uploads_accepted, pooled.stats().uploads_accepted);
  EXPECT_EQ(serial.stats().uploads_retried, pooled.stats().uploads_retried);
  EXPECT_EQ(serial.stats().uploads_lost, pooled.stats().uploads_lost);
  EXPECT_EQ(serial.stats().departures, pooled.stats().departures);
  EXPECT_EQ(serial.stats().late_uploads_merged, pooled.stats().late_uploads_merged);
  EXPECT_EQ(serial.stats().total_decisions, pooled.stats().total_decisions);
}

TEST(FleetServer, UniversalStragglersCarryIntoLaterRounds) {
  // Every device straggles every round: the seeded delay (at least half a
  // deadline) plus training time always overruns the close, so round 0
  // merges nothing and carries all three tables; they land - and merge,
  // staleness-weighted - in later rounds.
  FleetServerOptions options = small_server();
  options.churn.straggle_rate = 1.0;
  FleetServer server{workload::AppId::kFacebook, options, {.workers = 2}};
  std::vector<FleetServerRoundStats> rounds;
  server.run_rounds(3, [&](const FleetServerRoundStats& rs) { rounds.push_back(rs); });
  EXPECT_EQ(rounds[0].quorum, 0u);
  EXPECT_EQ(rounds[0].carried_late, 3u);
  EXPECT_EQ(rounds[0].global_states, 0u);  // nothing arrived: degrade, don't stall
  EXPECT_EQ(server.stats().late_uploads_merged,
            rounds[1].late_merged + rounds[2].late_merged);
  EXPECT_GT(server.stats().late_uploads_merged, 0u);
  ASSERT_NE(server.global(), nullptr);  // late tables did merge eventually
}

TEST(FleetServer, FailedUploadsRetryWithBackoffAndEventuallyDrop) {
  FleetServerOptions options = small_server();
  options.churn.upload_fail_rate = 0.9;
  options.max_upload_attempts = 2;
  FleetServer server{workload::AppId::kFacebook, options, {.workers = 2}};
  server.run_rounds(3);
  // At 90% per-attempt failure and two attempts, retries and exhausted
  // uploads are both statistically certain across 9 uploads; the server
  // must keep serving rounds regardless.
  EXPECT_GT(server.stats().uploads_retried, 0u);
  EXPECT_GT(server.stats().uploads_lost, 0u);
  EXPECT_EQ(server.round(), 3u);
}

TEST(FleetServer, DepartedDevicesSkipTrainingAndRejoin) {
  FleetServerOptions options = small_server();
  options.devices = 6;
  options.churn.depart_rate = 0.5;
  options.churn.rejoin_after_rounds = 1;
  FleetServer server{workload::AppId::kFacebook, options, {.workers = 2}};
  std::vector<FleetServerRoundStats> rounds;
  server.run_rounds(2, [&](const FleetServerRoundStats& rs) { rounds.push_back(rs); });
  // A departing device's training cell is never scheduled: trainees +
  // departures account for every leased device, and only trainees can
  // contribute tables.
  ASSERT_GT(rounds[0].departures, 0u) << "tune seed: churn produced no departure";
  EXPECT_EQ(rounds[0].training_devices + rounds[0].departures, 6u);
  EXPECT_EQ(rounds[0].quorum, rounds[0].training_devices);
  // rejoin_after_rounds = 1: everyone who left round 0 is back for round 1.
  EXPECT_EQ(rounds[1].rejoined, rounds[0].departures);
  EXPECT_EQ(server.stats().departures, rounds[0].departures + rounds[1].departures);
}

TEST(FleetServerRing, RotationKeepsOnlyTheLastKEntries) {
  const std::string prefix = ring_prefix("rotate");
  FleetServerOptions options = small_server();
  options.snapshot_ring = 2;
  options.snapshot_prefix = prefix;
  FleetServer server{workload::AppId::kFacebook, options, {.workers = 2}};
  EXPECT_FALSE(server.restored());
  server.run_rounds(3);
  EXPECT_EQ(server.stats().snapshots_written, 3u);
  // Rounds 1..3 wrote slots 1, 0, 1 - exactly two files, no slot 2.
  EXPECT_TRUE(std::filesystem::exists(prefix + ".0"));
  EXPECT_TRUE(std::filesystem::exists(prefix + ".1"));
  EXPECT_FALSE(std::filesystem::exists(prefix + ".2"));

  // A fresh server restores the *newest* boundary and picks up mid-stream.
  FleetServer resumed{workload::AppId::kFacebook, options, {.workers = 2}};
  EXPECT_TRUE(resumed.restored());
  EXPECT_EQ(resumed.round(), 3u);
  ASSERT_NE(resumed.global(), nullptr);
}

TEST(FleetServerRing, CorruptNewestEntryIsQuarantinedAndOlderOneRestores) {
  const std::string prefix = ring_prefix("quarantine");
  FleetServerOptions options = small_server();
  options.snapshot_ring = 3;
  options.snapshot_prefix = prefix;

  // Reference: an uninterrupted 4-round run.
  FleetServer reference{workload::AppId::kFacebook, options, {.workers = 2}};
  reference.run_rounds(4);
  ASSERT_NE(reference.global(), nullptr);
  const std::vector<std::uint8_t> want = canonical_bytes(*reference.global());

  // Re-run three rounds on a clean ring, then damage the newest entry
  // (round 3 -> slot 0) the way a torn disk would.
  const std::string prefix2 = ring_prefix("quarantine2");
  FleetServerOptions crashed = options;
  crashed.snapshot_prefix = prefix2;
  {
    FleetServer server{workload::AppId::kFacebook, crashed, {.workers = 2}};
    server.run_rounds(3);
  }  // destroyed without drain(): kill -9
  const std::string newest = prefix2 + ".0";
  {
    std::FILE* f = std::fopen(newest.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 40, SEEK_SET);
    const unsigned char evil = 0xee;
    std::fwrite(&evil, 1, 1, f);
    std::fclose(f);
  }

  // Restore: slot 0 fails CRC -> quarantined to .corrupt; the round-2
  // boundary in slot 2 is the newest valid entry, and replaying rounds 2-3
  // from it must converge to the uninterrupted bytes.
  FleetServer resumed{workload::AppId::kFacebook, crashed, {.workers = 2}};
  EXPECT_TRUE(resumed.restored());
  EXPECT_EQ(resumed.round(), 2u);
  EXPECT_EQ(resumed.stats().snapshots_quarantined, 1u);
  EXPECT_FALSE(std::filesystem::exists(newest));
  EXPECT_TRUE(std::filesystem::exists(newest + ".corrupt"));
  resumed.run_rounds(2);
  ASSERT_NE(resumed.global(), nullptr);
  EXPECT_EQ(canonical_bytes(*resumed.global()), want);
}

TEST(FleetServerRing, DifferentOptionsRefuseToResume) {
  const std::string prefix = ring_prefix("mismatch");
  FleetServerOptions options = small_server();
  options.snapshot_ring = 2;
  options.snapshot_prefix = prefix;
  {
    FleetServer server{workload::AppId::kFacebook, options, {.workers = 2}};
    server.run_rounds(1);
  }
  FleetServerOptions different = options;
  different.base_seed = options.base_seed + 1;
  EXPECT_THROW((FleetServer{workload::AppId::kFacebook, different, {.workers = 2}}),
               SerializeError);
  // The healthy file must NOT have been quarantined by the refusal.
  EXPECT_TRUE(std::filesystem::exists(prefix + ".1"));
}

TEST(FleetServerRing, EmptyRingColdStartsAtRoundZero) {
  FleetServerOptions options = small_server();
  options.snapshot_ring = 4;
  options.snapshot_prefix = ring_prefix("cold");
  FleetServer server{workload::AppId::kFacebook, options, {.workers = 2}};
  EXPECT_FALSE(server.restored());
  EXPECT_EQ(server.round(), 0u);
  EXPECT_EQ(server.global(), nullptr);
}

TEST(FleetServerRing, DrainWritesTheCurrentBoundary) {
  const std::string prefix = ring_prefix("drain");
  FleetServerOptions options = small_server();
  options.snapshot_ring = 4;
  options.snapshot_prefix = prefix;
  FleetServer server{workload::AppId::kFacebook, options, {.workers = 2}};
  server.run_rounds(1);
  server.drain();  // SIGINT/SIGTERM path: idempotent boundary snapshot
  EXPECT_EQ(server.stats().snapshots_written, 2u);
  FleetServer resumed{workload::AppId::kFacebook, options, {.workers = 2}};
  EXPECT_TRUE(resumed.restored());
  EXPECT_EQ(resumed.round(), 1u);
}

// --- the retry-backoff overflow fix ----------------------------------------
// Pre-fix, the delay was `retry_backoff.us() << min(attempt, 20)` - signed
// overflow (UB) for any backoff above ~2.9 hours, and the jitter modulus
// used the *unclamped* base. These pins document the saturating
// replacement and would trip UBSan (or produce garbage negative delays) on
// the old code.

TEST(FleetServerBackoff, DoublingPreservedForSmallBackoffs) {
  // The default-config trajectory (4 s backoff, attempts 0..3) must be
  // byte-identical to the pre-fix behaviour or every golden would move:
  // base * 2^attempt plus jitter_draw % base.
  const SimTime base = SimTime::from_seconds(4.0);
  EXPECT_EQ(retry_delay_us(base, 0, 0), base.us());
  EXPECT_EQ(retry_delay_us(base, 1, 0), 2 * base.us());
  EXPECT_EQ(retry_delay_us(base, 3, 0), 8 * base.us());
  EXPECT_EQ(retry_delay_us(base, 2, 12345), 4 * base.us() + 12345 % base.us());
}

TEST(FleetServerBackoff, JitterStaysBelowTheBase) {
  const SimTime base = SimTime::from_seconds(2.0);
  for (std::uint64_t draw : {std::uint64_t{0}, std::uint64_t{1}, ~std::uint64_t{0}}) {
    const std::int64_t delay = retry_delay_us(base, 0, draw);
    EXPECT_GE(delay, base.us());
    EXPECT_LT(delay, 2 * base.us());
  }
}

TEST(FleetServerBackoff, HugeBackoffSaturatesInsteadOfOverflowing) {
  // A year of base backoff shifted by min(attempt, 20) is 2^20 * 3.2e13 us
  // ~ 3.3e19 - past INT64_MAX, so the pre-fix shift was signed-overflow UB
  // (UBSan traps it); a week "only" produced a positive delay of ~20'000
  // simulated years. Both must now saturate at the cap.
  const SimTime week = SimTime::from_seconds(7.0 * 24.0 * 3600.0);
  const SimTime year = SimTime::from_seconds(365.0 * 24.0 * 3600.0);
  for (const SimTime base : {week, year}) {
    for (std::uint32_t attempt : {0u, 1u, 20u, 200u, ~0u}) {
      const std::int64_t delay = retry_delay_us(base, attempt, ~std::uint64_t{0});
      EXPECT_GT(delay, 0) << "attempt " << attempt;
      EXPECT_LE(delay, 2 * kMaxUploadRetryDelay.us()) << "attempt " << attempt;
    }
  }
}

TEST(FleetServerBackoff, LargeAttemptCountSaturatesForDefaultBackoff) {
  const SimTime base = SimTime::from_seconds(4.0);
  const std::int64_t at_cap = retry_delay_us(base, 60, 0);
  EXPECT_EQ(at_cap, kMaxUploadRetryDelay.us());
  EXPECT_EQ(retry_delay_us(base, ~0u, 0), at_cap) << "doubling must have saturated";
}

TEST(FleetServerBackoff, HugeBackoffServerRoundSurvives) {
  // End-to-end regression: a server configured with a pathological backoff
  // and near-certain upload failures must still close its rounds. Pre-fix,
  // backoff + jitter overflowed int64 at the very first retry (base ~8e18
  // us, jitter drawn in [0, base)), scheduling events at UB times - delays
  // wrapped negative could resurrect a failed upload before its failure.
  FleetServerOptions options = small_server();
  options.retry_backoff = SimTime::from_seconds(8.0e12);  // ~253 millennia
  options.churn.upload_fail_rate = 0.9;
  options.max_upload_attempts = 4;
  FleetServer server{workload::AppId::kFacebook, options, {.workers = 2}};
  server.run_rounds(2);
  EXPECT_EQ(server.round(), 2u);
  // Every retry was pushed past the cap horizon, so failed first attempts
  // never land inside their round; the server degrades, never wedges.
  EXPECT_EQ(server.stats().rounds_served, 2u);
}

// --- multi-process sharded training ---------------------------------------

TEST(FleetServer, ShardedTrainingBitIdentical) {
  FleetServerOptions options = small_server();
  options.churn.straggle_rate = 0.3;
  options.churn.upload_fail_rate = 0.2;
  FleetServer in_process{workload::AppId::kFacebook, options, {.workers = 2}};
  in_process.run_rounds(2);

  FleetServerOptions sharded_options = options;
  sharded_options.processes = 2;
  FleetServer sharded{workload::AppId::kFacebook, sharded_options, {.workers = 1}};
  sharded.run_rounds(2);

  ASSERT_NE(in_process.global(), nullptr);
  ASSERT_NE(sharded.global(), nullptr);
  EXPECT_EQ(canonical_bytes(*in_process.global()), canonical_bytes(*sharded.global()));
  EXPECT_EQ(in_process.stats().total_decisions, sharded.stats().total_decisions);
  EXPECT_EQ(in_process.stats().uploads_accepted, sharded.stats().uploads_accepted);
}

TEST(FleetServer, DeltaUploadsMatchFullRunsUnderChurn) {
  // Delta encoding is a wire strategy: against the round's warm table it
  // must decode back to the sender's exact bytes, so a churning fleet run
  // with the flag on converges to the same global table and the same
  // accounting as one with it off.
  FleetServerOptions options = small_server();
  options.devices = 4;
  options.churn.straggle_rate = 0.3;
  options.churn.upload_fail_rate = 0.4;
  FleetServer full{workload::AppId::kFacebook, options, {.workers = 2}};
  FleetServerOptions delta_options = options;
  delta_options.delta_uploads = true;
  FleetServer delta{workload::AppId::kFacebook, delta_options, {.workers = 2}};
  std::vector<FleetServerRoundStats> delta_rounds;
  full.run_rounds(3);
  delta.run_rounds(3, [&](const FleetServerRoundStats& rs) { delta_rounds.push_back(rs); });

  ASSERT_NE(full.global(), nullptr);
  ASSERT_NE(delta.global(), nullptr);
  EXPECT_EQ(canonical_bytes(*full.global()), canonical_bytes(*delta.global()));
  EXPECT_EQ(full.stats().uploads_accepted, delta.stats().uploads_accepted);
  EXPECT_EQ(full.stats().uploads_retried, delta.stats().uploads_retried);
  EXPECT_EQ(full.stats().uploads_lost, delta.stats().uploads_lost);
  EXPECT_EQ(full.stats().late_uploads_merged, delta.stats().late_uploads_merged);
  EXPECT_EQ(full.stats().total_decisions, delta.stats().total_decisions);

  // The full run never sent a delta; the delta run did (round 0 has no warm
  // table yet, so it still sends at least one full upload per device).
  EXPECT_EQ(full.stats().uploads_delta, 0u);
  EXPECT_GT(full.stats().uploads_full, 0u);
  EXPECT_GT(delta.stats().uploads_delta, 0u);
  EXPECT_GT(delta.stats().uploads_full, 0u);
  EXPECT_LT(delta.stats().upload_bytes_delta + delta.stats().upload_bytes_full,
            full.stats().upload_bytes_full);

  // Per-round stats reconcile with the cumulative counters.
  std::uint64_t bytes = 0;
  std::size_t deltas = 0;
  for (const auto& rs : delta_rounds) {
    bytes += rs.upload_bytes;
    deltas += rs.delta_uploads;
  }
  EXPECT_EQ(bytes, delta.stats().upload_bytes_delta + delta.stats().upload_bytes_full);
  EXPECT_EQ(deltas, delta.stats().uploads_delta);
}

TEST(FleetServerRing, WireCountersSurviveRestore) {
  // The cumulative upload-wire counters ride the v3 sync_state section:
  // a kill -9 resume must keep counting from where the boundary left off
  // rather than resetting to zero.
  const std::string prefix = ring_prefix("wirecount");
  FleetServerOptions options = small_server();
  options.snapshot_ring = 2;
  options.snapshot_prefix = prefix;
  options.delta_uploads = true;
  FleetServerStats before;
  {
    FleetServer server{workload::AppId::kFacebook, options, {.workers = 2}};
    server.run_rounds(2);
    before = server.stats();
  }  // destroyed without drain(): kill -9
  EXPECT_GT(before.uploads_full, 0u);
  EXPECT_GT(before.uploads_delta, 0u);
  FleetServer resumed{workload::AppId::kFacebook, options, {.workers = 2}};
  ASSERT_TRUE(resumed.restored());
  EXPECT_EQ(resumed.stats().upload_bytes_full, before.upload_bytes_full);
  EXPECT_EQ(resumed.stats().upload_bytes_delta, before.upload_bytes_delta);
  EXPECT_EQ(resumed.stats().uploads_full, before.uploads_full);
  EXPECT_EQ(resumed.stats().uploads_delta, before.uploads_delta);
}

TEST(FleetServer, DeltaUploadsKnobExcludedFromOptionsIdentity) {
  // Same contract as `processes`: wire encoding is execution strategy, so
  // a snapshot written with full uploads must resume with deltas enabled.
  FleetServerOptions a = small_server();
  FleetServerOptions b = a;
  b.delta_uploads = true;
  ByteWriter wa;
  ByteWriter wb;
  encode_fleet_server_options(a, wa);
  encode_fleet_server_options(b, wb);
  EXPECT_EQ(wa.data(), wb.data());
}

TEST(FleetServer, ProcessesKnobExcludedFromOptionsIdentity) {
  // A snapshot written single-process must resume sharded: the knob is
  // execution strategy, not trajectory.
  FleetServerOptions a = small_server();
  FleetServerOptions b = a;
  b.processes = 4;
  ByteWriter wa;
  ByteWriter wb;
  encode_fleet_server_options(a, wa);
  encode_fleet_server_options(b, wb);
  EXPECT_EQ(wa.data(), wb.data());
}

}  // namespace
}  // namespace nextgov::sim
