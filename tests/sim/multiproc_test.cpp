// Tests for multi-process sharded sweeps (sim/multiproc.hpp): the
// bit-identity contract across process counts, the degrade-never-wedge
// recovery path (killed and frame-corrupting workers), the in-process
// passthrough, and the wire codec's bit-exact round trip.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/multiproc.hpp"
#include "sim/scenario.hpp"

namespace nextgov::sim {
namespace {

/// 4 scenarios x 3 seeds = 12 cells (the acceptance floor for the sharded
/// sweep contract), trimmed to 20 s sessions so the full matrix stays
/// test-suite cheap. Shard geometry, not session length, is under test.
ScenarioMatrix short_matrix() {
  ScenarioMatrix matrix;
  for (const char* name :
       {"fig1_session", "social_gaming", "spotify_bursty", "pubg_hot35"}) {
    ScenarioSpec spec = scenario(name);
    spec.duration = SimTime::from_seconds(20.0);
    matrix.add(std::move(spec));
  }
  matrix.seeds(3);
  return matrix;
}

void expect_all_bit_identical(const std::vector<SessionResult>& expected,
                              const std::vector<SessionResult>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_TRUE(bit_identical(expected[i], actual[i])) << "cell " << i << " diverged";
  }
}

void expect_training_identical(const TrainingResult& a, const TrainingResult& b) {
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.sim_seconds, b.sim_seconds);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.final_mean_reward, b.final_mean_reward);
  EXPECT_EQ(a.states_visited, b.states_visited);
  ASSERT_EQ(a.table.state_count(), b.table.state_count());
  EXPECT_EQ(a.table.total_visits(), b.table.total_visits());
  a.table.for_each_entry([&](const rl::QTable::EntryView& ea) {
    ASSERT_TRUE(b.table.contains(ea.key())) << "state " << ea.key() << " missing";
    EXPECT_EQ(ea.visits(), b.table.visits(ea.key()));
    EXPECT_EQ(ea.tried(), b.table.tried_mask(ea.key()));
    for (std::size_t i = 0; i < a.table.action_count(); ++i) {
      EXPECT_EQ(ea.q(i), b.table.q(ea.key(), i)) << "state " << ea.key() << " action " << i;
    }
  });
  EXPECT_TRUE(a.table == b.table);
}

TEST(Multiproc, MatrixBitIdenticalAcrossProcessCounts) {
  const RunPlan plan = short_matrix().to_run_plan(GovernorKind::kSchedutil);
  ASSERT_GE(plan.size(), 12u);
  const std::vector<SessionResult> reference = run_plan(plan, {.workers = 1});

  for (const std::size_t processes : {std::size_t{2}, std::size_t{4}}) {
    SCOPED_TRACE(processes);
    ShardReport report;
    const std::vector<SessionResult> sharded =
        run_plan_sharded(plan, {.processes = processes}, &report);
    expect_all_bit_identical(reference, sharded);
    EXPECT_EQ(report.processes, processes);
    EXPECT_EQ(report.shards.size(), processes);
    EXPECT_EQ(report.recovered_shards(), 0u);
    EXPECT_EQ(report.frames, plan.size());
    EXPECT_GT(report.bytes, 0u);
    // Shards tile the plan contiguously, in order, covering every cell.
    std::size_t next_cell = 0;
    for (const auto& shard : report.shards) {
      EXPECT_EQ(shard.first_cell, next_cell);
      EXPECT_TRUE(shard.failure.empty());
      next_cell += shard.cell_count;
    }
    EXPECT_EQ(next_cell, plan.size());
  }
}

TEST(Multiproc, ScenarioMatrixRunConvenience) {
  const ScenarioMatrix matrix = short_matrix();
  const std::vector<SessionResult> direct =
      run_plan(matrix.to_run_plan(GovernorKind::kSchedutil), {.workers = 1});
  ShardReport report;
  const std::vector<SessionResult> swept =
      matrix.run(GovernorKind::kSchedutil, {.processes = 2}, &report);
  expect_all_bit_identical(direct, swept);
  EXPECT_EQ(report.processes, 2u);
}

TEST(Multiproc, SingleProcessPassthroughForksNothing) {
  const RunPlan plan = short_matrix().to_run_plan(GovernorKind::kSchedutil);
  const std::vector<SessionResult> reference = run_plan(plan, {.workers = 1});
  ShardReport report;
  const std::vector<SessionResult> results =
      run_plan_sharded(plan, {.processes = 1}, &report);
  expect_all_bit_identical(reference, results);
  EXPECT_EQ(report.processes, 0u);  // nothing forked
  EXPECT_EQ(report.frames, 0u);     // nothing crossed a pipe
}

TEST(Multiproc, EmptyPlanYieldsEmptyResults) {
  ShardReport report;
  EXPECT_TRUE(run_plan_sharded(RunPlan{}, {.processes = 4}, &report).empty());
  EXPECT_EQ(report.processes, 0u);
  EXPECT_TRUE(run_training_plan_sharded(TrainingPlan{}, {.processes = 4}).empty());
}

TEST(Multiproc, MoreProcessesThanCellsClampsToCells) {
  ScenarioSpec spec = scenario("fig1_session");
  spec.duration = SimTime::from_seconds(20.0);
  ScenarioMatrix matrix;
  matrix.add(std::move(spec)).seeds(2);  // 2 cells
  const RunPlan plan = matrix.to_run_plan(GovernorKind::kSchedutil);
  const std::vector<SessionResult> reference = run_plan(plan, {.workers = 1});
  ShardReport report;
  const std::vector<SessionResult> results =
      run_plan_sharded(plan, {.processes = 8}, &report);
  expect_all_bit_identical(reference, results);
  EXPECT_LE(report.processes, plan.size());
  EXPECT_GE(report.processes, 2u);
}

TEST(Multiproc, KilledWorkerShardIsRerunBitIdentically) {
  const RunPlan plan = short_matrix().to_run_plan(GovernorKind::kSchedutil);
  const std::vector<SessionResult> reference = run_plan(plan, {.workers = 1});
  ShardReport report;
  const std::vector<SessionResult> results = run_plan_sharded(
      plan, {.processes = 2, .faults = {.kill_shard = 0}}, &report);
  expect_all_bit_identical(reference, results);
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_EQ(report.recovered_shards(), 1u);
  EXPECT_TRUE(report.shards[0].recovered);
  EXPECT_FALSE(report.shards[0].failure.empty());
  EXPECT_FALSE(report.shards[1].recovered);
}

TEST(Multiproc, KilledWorkerBeforeDoneFrameIsDetected) {
  // The kill lands after every result frame but before the done frame - a
  // clean-looking stream that is nonetheless incomplete must be rejected.
  const RunPlan plan = short_matrix().to_run_plan(GovernorKind::kSchedutil);
  const std::vector<SessionResult> reference = run_plan(plan, {.workers = 1});
  ShardReport report;
  const std::vector<SessionResult> results = run_plan_sharded(
      plan, {.processes = 2, .faults = {.kill_shard = 1, .kill_after_frames = 1000}},
      &report);
  expect_all_bit_identical(reference, results);
  EXPECT_EQ(report.recovered_shards(), 1u);
  EXPECT_TRUE(report.shards[1].recovered);
}

TEST(Multiproc, CorruptFrameShardIsRerunBitIdentically) {
  const RunPlan plan = short_matrix().to_run_plan(GovernorKind::kSchedutil);
  const std::vector<SessionResult> reference = run_plan(plan, {.workers = 1});
  ShardReport report;
  const std::vector<SessionResult> results = run_plan_sharded(
      plan, {.processes = 2, .faults = {.corrupt_shard = 1}}, &report);
  expect_all_bit_identical(reference, results);
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_EQ(report.recovered_shards(), 1u);
  EXPECT_TRUE(report.shards[1].recovered);
  EXPECT_NE(report.shards[1].failure.find("CRC"), std::string::npos)
      << "failure was: " << report.shards[1].failure;
}

TEST(Multiproc, BatchedShardsBitIdentical) {
  const RunPlan plan = short_matrix().to_run_plan(GovernorKind::kSchedutil);
  const std::vector<SessionResult> reference = run_plan(plan, {.workers = 1});
  const std::vector<SessionResult> results =
      run_plan_sharded(plan, {.processes = 2, .batched = true});
  expect_all_bit_identical(reference, results);
}

TEST(Multiproc, TrainingPlanShardedBitIdentical) {
  TrainingPlan plan;
  TrainingOptions opts;
  opts.max_duration = SimTime::from_seconds(30.0);
  opts.episode_length = SimTime::from_seconds(15.0);
  for (std::uint64_t s = 0; s < 4; ++s) {
    opts.seed = 100 + s;
    plan.add(workload::AppId::kFacebook, core::NextConfig{}, opts);
  }
  const std::vector<TrainingResult> reference = run_training_plan(plan, {.workers = 1});
  ShardReport report;
  const std::vector<TrainingResult> sharded =
      run_training_plan_sharded(plan, {.processes = 2}, &report);
  ASSERT_EQ(reference.size(), sharded.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    SCOPED_TRACE(i);
    expect_training_identical(reference[i], sharded[i]);
  }
  EXPECT_EQ(report.processes, 2u);
  EXPECT_EQ(report.recovered_shards(), 0u);
}

TEST(Multiproc, TrainingShardRecoversFromKilledWorker) {
  TrainingPlan plan;
  TrainingOptions opts;
  opts.max_duration = SimTime::from_seconds(30.0);
  opts.episode_length = SimTime::from_seconds(15.0);
  for (std::uint64_t s = 0; s < 4; ++s) {
    opts.seed = 100 + s;
    plan.add(workload::AppId::kFacebook, core::NextConfig{}, opts);
  }
  const std::vector<TrainingResult> reference = run_training_plan(plan, {.workers = 1});
  ShardReport report;
  const std::vector<TrainingResult> sharded = run_training_plan_sharded(
      plan, {.processes = 2, .faults = {.kill_shard = 0}}, &report);
  ASSERT_EQ(reference.size(), sharded.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    SCOPED_TRACE(i);
    expect_training_identical(reference[i], sharded[i]);
  }
  EXPECT_EQ(report.recovered_shards(), 1u);
}

TEST(Multiproc, SessionResultCodecRoundTripsBitExactly) {
  SessionResult r;
  r.app = "codec_probe";
  r.governor = "next";
  r.duration_s = 123.456;
  r.avg_power_w = 1.0 / 3.0;  // not exactly representable in decimal
  r.peak_power_w = 5.25;
  r.avg_temp_big_c = 41.125;
  r.peak_temp_big_c = 78.0;
  r.avg_temp_device_c = 37.5;
  r.peak_temp_device_c = 55.0625;
  r.avg_fps = 59.94;
  r.energy_j = 1e-308;  // denormal-adjacent magnitude must survive
  r.frames_presented = 123456789;
  r.frames_dropped = -1;  // sentinel value: i64, not u64
  r.avg_ppdw = 0.0;
  Sample s{};
  s.time_s = 1.0;
  s.fps = 60.0;
  s.power_w = 2.5;
  s.ppdw = 1.0 / 7.0;
  r.series.push_back(s);
  s.time_s = 2.0;
  r.series.push_back(s);

  ByteWriter out;
  serialize_session_result(r, out);
  ByteReader in{out.data(), "codec test"};
  const SessionResult back = deserialize_session_result(in);
  EXPECT_TRUE(in.done());
  EXPECT_TRUE(bit_identical(r, back));
  EXPECT_EQ(r.app, back.app);
  EXPECT_EQ(r.governor, back.governor);
  ASSERT_EQ(back.series.size(), 2u);
  EXPECT_EQ(back.series[1].time_s, 2.0);
  EXPECT_EQ(back.series[0].ppdw, 1.0 / 7.0);
}

TEST(Multiproc, TrainingResultCodecRoundTripsBitExactly) {
  TrainingPlan plan;
  TrainingOptions opts;
  opts.max_duration = SimTime::from_seconds(20.0);
  opts.seed = 7;
  plan.add(workload::AppId::kFacebook, core::NextConfig{}, opts);
  const TrainingResult r = std::move(run_training_plan(plan, {.workers = 1}).front());

  ByteWriter out;
  serialize_training_result(r, out);
  ByteReader in{out.data(), "codec test"};
  const TrainingResult back = deserialize_training_result(in);
  EXPECT_TRUE(in.done());
  expect_training_identical(r, back);
}

TEST(Multiproc, TruncatedCodecBytesFailCleanly) {
  SessionResult r;
  r.app = "truncation_probe";
  ByteWriter out;
  serialize_session_result(r, out);
  std::vector<std::uint8_t> bytes = out.data();
  bytes.resize(bytes.size() / 2);
  ByteReader in{bytes, "truncation test"};
  EXPECT_THROW((void)deserialize_session_result(in), SerializeError);
}

}  // namespace
}  // namespace nextgov::sim
