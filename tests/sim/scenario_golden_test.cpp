// Golden-trace regression net over the scenario library (ctest label:
// golden). Every library scenario runs under stock schedutil at its own
// seed and full duration, and the summary fingerprint (energy, peak
// temperatures, frame drops, PPDW, FPS) must match the checked-in table
// below. Any engine / thermal / workload / render change that shifts a
// trace fails here with a readable per-field diff - that is the point:
// behaviour changes must be deliberate, reviewed, and re-pinned.
//
// Regenerating after a deliberate change: run this binary (or
// `ctest -L golden`) and paste the replacement table it prints on
// mismatch, e.g.
//
//   ./build/tests/nextgov_golden_tests --gtest_filter='ScenarioGolden.*'
//
// (see bench/README.md, "Scenario library"). Fingerprints are exact on a
// given toolchain; the comparison allows 1e-9 relative slack so unrelated
// FP-contraction differences between compilers do not produce noise, while
// any real behavioural shift (orders of magnitude larger) still fails.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <string>

#include "sim/scenario.hpp"

namespace nextgov::sim {
namespace {

struct GoldenFingerprint {
  std::string_view scenario;
  double energy_j;
  double peak_temp_big_c;
  double peak_temp_device_c;
  std::int64_t frames_dropped;
  double avg_ppdw;
  double avg_fps;
};

// --- checked-in fingerprints (schedutil, scenario's base seed) -------------
// REGENERATE-BY: pasting the table printed on mismatch (see file header).
constexpr GoldenFingerprint kGolden[] = {
    {"fig1_session", 1023.5701398386586, 52.299999999999997, 31.600000000000001, 0, 0.21148897111782369, 10.578571428571429},
    {"fig1_session_90hz", 1059.3525682416707, 52.600000000000001, 31.800000000000001, 150, 0.20471414758167425, 14.503571428571428},
    {"fig1_session_120hz", 1082.7560046859287, 52.799999999999997, 31.899999999999999, 170, 0.25514493395845356, 18.439285714285713},
    {"fig1_session_15c", 992.25875931195515, 44.799999999999997, 25.100000000000001, 0, 0.22798221922758116, 10.578571428571429},
    {"fig1_session_25c", 1047.1205374566662, 57.5, 35.899999999999999, 0, 0.20026446647570925, 10.578571428571429},
    {"fig1_session_35c", 1117.72486736154, 71.099999999999994, 47, 0, 0.17274599252977896, 10.578571428571429},
    {"social_gaming", 1509.713406728036, 80.900000000000006, 36.700000000000003, 20, 0.19131205722831945, 38.707407407407409},
    {"commute_media", 1149.9477754348086, 53.799999999999997, 32.200000000000003, 42, 0.19031913808610823, 18.244444444444444},
    {"binge_watch", 1015.0058300053357, 46.899999999999999, 30.300000000000001, 10, 0.35656398828086033, 27.9375},
    {"spotify_bursty", 735.53272413978902, 61.5, 33.200000000000003, 0, 0.20523530586108299, 4.5333333333333332},
    {"pubg_hot35", 2471.1197170949918, 92.099999999999994, 55.799999999999997, 24, 0.1303106596377408, 58.223333333333336},
    {"lineage_120hz", 2502.5594795133165, 83.299999999999997, 43.200000000000003, 6915, 0.21509419130875032, 87.543333333333337},
};

[[nodiscard]] bool close(double actual, double expected) noexcept {
  const double tol = 1e-9 * std::max(1.0, std::abs(expected));
  return std::abs(actual - expected) <= tol;
}

[[nodiscard]] const GoldenFingerprint* find_golden(std::string_view name) noexcept {
  for (const auto& g : kGolden) {
    if (g.scenario == name) return &g;
  }
  return nullptr;
}

/// One readable line per field; only printed for mismatching fields.
void diff_field(const char* field, double expected, double actual, bool* ok) {
  if (close(actual, expected)) return;
  *ok = false;
  ADD_FAILURE() << "  " << field << ": golden " << expected << " vs actual " << actual
                << " (delta " << actual - expected << ")";
}

/// The whole replacement table, printed once per failing run so a
/// deliberate engine change is re-pinned by copy-paste, not by hand.
void print_replacement_table(std::span<const SessionResult> results,
                             std::span<const std::string_view> names) {
  std::printf("\n--- replacement golden table (paste into scenario_golden_test.cpp) ---\n");
  std::printf("constexpr GoldenFingerprint kGolden[] = {\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf("    {\"%.*s\", %.17g, %.17g, %.17g, %" PRId64 ", %.17g, %.17g},\n",
                static_cast<int>(names[i].size()), names[i].data(), r.energy_j,
                r.peak_temp_big_c, r.peak_temp_device_c, r.frames_dropped, r.avg_ppdw,
                r.avg_fps);
  }
  std::printf("};\n----------------------------------------------------------------------\n\n");
}

TEST(ScenarioGolden, LibraryFingerprintsAreStable) {
  const auto names = scenario_names();
  ASSERT_EQ(names.size(), std::size(kGolden))
      << "scenario library and golden table diverged: update kGolden";

  // All scenarios in one plan across the worker pool - the runner's
  // bit-identity contract makes this equivalent to running them serially.
  RunPlan plan;
  for (std::string_view name : names) {
    const ScenarioSpec spec = scenario(name);
    plan.add(spec.app_factory(), spec.name, spec.experiment_config(GovernorKind::kSchedutil));
  }
  const auto results = run_plan(plan);
  ASSERT_EQ(results.size(), names.size());

  bool all_ok = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const GoldenFingerprint* golden = find_golden(names[i]);
    ASSERT_NE(golden, nullptr) << "no golden fingerprint for scenario " << names[i];
    const SessionResult& r = results[i];
    bool ok = true;
    SCOPED_TRACE(std::string{"scenario "} + std::string{names[i]});
    diff_field("energy_j", golden->energy_j, r.energy_j, &ok);
    diff_field("peak_temp_big_c", golden->peak_temp_big_c, r.peak_temp_big_c, &ok);
    diff_field("peak_temp_device_c", golden->peak_temp_device_c, r.peak_temp_device_c, &ok);
    diff_field("avg_ppdw", golden->avg_ppdw, r.avg_ppdw, &ok);
    diff_field("avg_fps", golden->avg_fps, r.avg_fps, &ok);
    if (r.frames_dropped != golden->frames_dropped) {
      ok = false;
      ADD_FAILURE() << "  frames_dropped: golden " << golden->frames_dropped << " vs actual "
                    << r.frames_dropped;
    }
    all_ok = all_ok && ok;
  }
  if (!all_ok) print_replacement_table(results, names);
}

}  // namespace
}  // namespace nextgov::sim
