// Unit tests for the simulation engine: wiring, accounting, throttling,
// determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "governors/schedutil.hpp"
#include "governors/simple_governors.hpp"
#include "sim/engine.hpp"
#include "workload/apps.hpp"

namespace nextgov::sim {
namespace {

using namespace nextgov::literals;

std::unique_ptr<Engine> make_test_engine(workload::AppId app, std::uint64_t seed,
                                         EngineConfig cfg = {}) {
  return std::make_unique<Engine>(soc::make_exynos9810(), workload::make_app(app, seed),
                                  std::make_unique<governors::SchedutilGovernor>(), nullptr,
                                  cfg);
}

TEST(Engine, TimeAdvancesByStep) {
  auto e = make_test_engine(workload::AppId::kFacebook, 1);
  EXPECT_EQ(e->now(), SimTime::zero());
  e->step();
  EXPECT_EQ(e->now(), 1_ms);
  e->run(99_ms);
  EXPECT_EQ(e->now(), 100_ms);
}

TEST(Engine, RequiresAppAndGovernor) {
  EXPECT_THROW(Engine(soc::make_exynos9810(), nullptr,
                      std::make_unique<governors::SchedutilGovernor>(), nullptr, {}),
               ConfigError);
  EXPECT_THROW(Engine(soc::make_exynos9810(), workload::make_app(workload::AppId::kHome, 1),
                      nullptr, nullptr, {}),
               ConfigError);
}

TEST(Engine, EnergyEqualsMeanPowerTimesTime) {
  auto e = make_test_engine(workload::AppId::kFacebook, 1);
  e->run(20_s);
  const auto& t = e->totals();
  EXPECT_NEAR(t.energy_j, t.power_w.mean() * 20.0, t.energy_j * 0.01);
}

TEST(Engine, SensorsAreQuantized) {
  auto e = make_test_engine(workload::AppId::kFacebook, 1);
  e->run(5_s);
  const auto& s = e->observation().sensors;
  EXPECT_NEAR(s.big.value() * 10.0, std::round(s.big.value() * 10.0), 1e-9);
  EXPECT_NEAR(s.power.value() * 1000.0, std::round(s.power.value() * 1000.0), 1e-9);
}

TEST(Engine, TemperaturesStartAtAmbientAndRise) {
  EngineConfig cfg;
  cfg.ambient = Celsius{21.0};
  auto e = make_test_engine(workload::AppId::kLineage, 1, cfg);
  EXPECT_NEAR(e->observation().sensors.big.value(), 21.0, 0.2);
  e->run(60_s);
  EXPECT_GT(e->observation().sensors.big.value(), 35.0);
  EXPECT_GT(e->observation().sensors.device.value(), 22.0);
}

TEST(Engine, DeterministicForIdenticalSeeds) {
  auto a = make_test_engine(workload::AppId::kFacebook, 7);
  auto b = make_test_engine(workload::AppId::kFacebook, 7);
  a->run(30_s);
  b->run(30_s);
  EXPECT_EQ(a->totals().frames_presented, b->totals().frames_presented);
  EXPECT_DOUBLE_EQ(a->totals().power_w.mean(), b->totals().power_w.mean());
  EXPECT_DOUBLE_EQ(a->totals().temp_big_c.max(), b->totals().temp_big_c.max());
}

TEST(Engine, RecorderSamplesAtConfiguredPeriod) {
  EngineConfig cfg;
  cfg.record_period = SimTime::from_seconds(0.5);
  auto e = make_test_engine(workload::AppId::kFacebook, 1, cfg);
  e->run(10_s);
  EXPECT_NEAR(static_cast<double>(e->recorder().samples().size()), 20.0, 2.0);
}

TEST(Engine, ThermalThrottleCapsRunawayTemperature) {
  // performance governor on the heaviest game: without throttling the
  // junction would exceed the limit; the engine must hold it near the
  // limit instead.
  EngineConfig cfg;
  cfg.throttle_limit_c = 92.0;
  auto e = std::make_unique<Engine>(soc::make_exynos9810(),
                                    workload::make_app(workload::AppId::kPubg, 1),
                                    std::make_unique<governors::PerformanceGovernor>(), nullptr,
                                    cfg);
  e->run(300_s);
  EXPECT_LT(e->totals().temp_big_c.max(), 97.0);
}

TEST(Engine, ThrottleDisabledAllowsHigherPeaks) {
  EngineConfig on;
  EngineConfig off;
  off.thermal_throttle = false;
  auto hot = std::make_unique<Engine>(soc::make_exynos9810(),
                                      workload::make_app(workload::AppId::kPubg, 1),
                                      std::make_unique<governors::PerformanceGovernor>(),
                                      nullptr, off);
  auto cool = std::make_unique<Engine>(soc::make_exynos9810(),
                                       workload::make_app(workload::AppId::kPubg, 1),
                                       std::make_unique<governors::PerformanceGovernor>(),
                                       nullptr, on);
  hot->run(300_s);
  cool->run(300_s);
  // Throttling can only lower (or match, when equilibrium sits below the
  // limit anyway) the peak; and it must hold the line near the limit.
  EXPECT_GE(hot->totals().temp_big_c.max(), cool->totals().temp_big_c.max() - 0.2);
  EXPECT_LT(cool->totals().temp_big_c.max(), 97.0);
}

TEST(Engine, ResetSessionRestoresColdState) {
  auto e = make_test_engine(workload::AppId::kLineage, 1);
  e->run(60_s);
  ASSERT_GT(e->observation().sensors.big.value(), 30.0);
  e->reset_session(workload::make_app(workload::AppId::kLineage, 2));
  EXPECT_NEAR(e->observation().sensors.big.value(), 21.0, 0.2);
  EXPECT_EQ(e->totals().frames_presented, 0);
  EXPECT_DOUBLE_EQ(e->totals().energy_j, 0.0);
}

TEST(Engine, PowersaveUsesLessEnergyThanPerformance) {
  const auto run_with = [](auto governor) {
    auto e = std::make_unique<Engine>(soc::make_exynos9810(),
                                      workload::make_app(workload::AppId::kFacebook, 3),
                                      std::move(governor), nullptr, EngineConfig{});
    e->run(30_s);
    return e->totals().energy_j;
  };
  const double perf = run_with(std::make_unique<governors::PerformanceGovernor>());
  const double save = run_with(std::make_unique<governors::PowersaveGovernor>());
  EXPECT_LT(save, perf * 0.7);
}

TEST(Engine, FpsObservationMatchesPresentedFrames) {
  auto e = make_test_engine(workload::AppId::kYoutube, 1);
  e->run(30_s);
  // Average FPS derived from totals must be in the same band as the
  // instantaneous observation for a steady 30 FPS video.
  EXPECT_NEAR(e->average_fps(), 30.0, 5.0);
}

}  // namespace
}  // namespace nextgov::sim
