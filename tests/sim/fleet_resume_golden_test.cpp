// Golden test for the fleet checkpoint/restore contract: a run killed at
// round K and resumed from its last snapshot must produce a final merged
// Q-table *bit-identical* to the run that never stopped - equal by exact
// operator== and equal as canonical serialized bytes. This is the
// acceptance bar for the fault-tolerance layer; the CI crash-recovery
// smoke step (examples/fleet_checkpoint.cpp) exercises the same contract
// end to end through the filesystem.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/fleet.hpp"

namespace nextgov::sim {
namespace {

FleetOptions golden_fleet() {
  FleetOptions options;
  options.devices = 4;
  options.shards = 2;
  options.rounds = 4;
  options.round_duration = SimTime::from_seconds(30.0);
  options.episode_length = SimTime::from_seconds(15.0);
  options.base_seed = 2020;
  options.sync_spread = 2;
  return options;
}

std::vector<std::uint8_t> canonical_bytes(const rl::QTable& table) {
  ByteWriter out;
  table.serialize(out);
  return out.data();
}

TEST(FleetResumeGolden, KilledAtRoundKResumesBitIdentically) {
  const std::string path = ::testing::TempDir() + "/nextgov_fleet_resume_golden.bin";
  const FleetOptions options = golden_fleet();
  const FleetResult uninterrupted = train_fleet(workload::AppId::kFacebook, options);

  // Same fleet, snapshotting every round, killed after round 1.
  FleetOptions crashing = options;
  crashing.snapshot_every = 1;
  crashing.snapshot_path = path;
  crashing.faults.crash_at_round = 1;
  EXPECT_THROW((void)train_fleet(workload::AppId::kFacebook, crashing), FleetCrash);

  // Resume from the snapshot the dead run left behind; the crash hook and
  // snapshot cadence are dropped, everything else must match the snapshot.
  FleetOptions resuming = options;
  resuming.resume_from = path;
  const FleetResult resumed = train_fleet(workload::AppId::kFacebook, resuming);
  EXPECT_EQ(resumed.start_round, 2u);

  // Bit-identical: exact equality and identical canonical serializations.
  EXPECT_TRUE(resumed.global == uninterrupted.global);
  EXPECT_EQ(canonical_bytes(resumed.global), canonical_bytes(uninterrupted.global));
  ASSERT_EQ(resumed.shard_tables.size(), uninterrupted.shard_tables.size());
  for (std::size_t s = 0; s < resumed.shard_tables.size(); ++s) {
    EXPECT_TRUE(resumed.shard_tables[s] == uninterrupted.shard_tables[s]) << "shard " << s;
    EXPECT_EQ(canonical_bytes(resumed.shard_tables[s]),
              canonical_bytes(uninterrupted.shard_tables[s]))
        << "shard " << s;
  }
  EXPECT_EQ(resumed.shard_last_upload, uninterrupted.shard_last_upload);
  EXPECT_EQ(resumed.total_decisions, uninterrupted.total_decisions);
  EXPECT_EQ(resumed.mean_final_reward, uninterrupted.mean_final_reward);
  std::remove(path.c_str());
}

TEST(FleetResumeGolden, EveryCrashPointConvergesOnTheSameBytes) {
  // Stronger sweep: whichever round the fleet dies after, resuming lands on
  // the same final bytes - the round loop has no hidden cross-round state
  // outside the snapshot.
  const std::string path = ::testing::TempDir() + "/nextgov_fleet_resume_sweep.bin";
  FleetOptions options = golden_fleet();
  options.rounds = 3;
  const FleetResult uninterrupted = train_fleet(workload::AppId::kFacebook, options);
  const std::vector<std::uint8_t> golden = canonical_bytes(uninterrupted.global);
  for (std::size_t k = 0; k + 1 < options.rounds; ++k) {
    FleetOptions crashing = options;
    crashing.snapshot_every = 1;
    crashing.snapshot_path = path;
    crashing.faults.crash_at_round = k;
    EXPECT_THROW((void)train_fleet(workload::AppId::kFacebook, crashing), FleetCrash);
    FleetOptions resuming = options;
    resuming.resume_from = path;
    const FleetResult resumed = train_fleet(workload::AppId::kFacebook, resuming);
    EXPECT_EQ(resumed.start_round, k + 1);
    EXPECT_EQ(canonical_bytes(resumed.global), golden) << "crashed after round " << k;
  }
  std::remove(path.c_str());
}

TEST(FleetResumeGolden, SnapshotFileBytesAreDeterministic) {
  // The snapshot *file* is itself canonical: two identical runs write
  // byte-identical snapshots (no timestamps, no map-order leakage).
  const std::string path_a = ::testing::TempDir() + "/nextgov_fleet_snap_a.bin";
  const std::string path_b = ::testing::TempDir() + "/nextgov_fleet_snap_b.bin";
  FleetOptions options = golden_fleet();
  options.rounds = 2;
  options.snapshot_every = 2;
  const auto read_all = [](const std::string& p) {
    std::vector<unsigned char> bytes;
    std::FILE* f = std::fopen(p.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    if (f != nullptr) {
      int c;
      while ((c = std::fgetc(f)) != EOF) bytes.push_back(static_cast<unsigned char>(c));
      std::fclose(f);
    }
    return bytes;
  };
  options.snapshot_path = path_a;
  (void)train_fleet(workload::AppId::kFacebook, options, {.workers = 1});
  options.snapshot_path = path_b;
  (void)train_fleet(workload::AppId::kFacebook, options, {.workers = 4});
  const auto bytes_a = read_all(path_a);
  const auto bytes_b = read_all(path_b);
  EXPECT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace nextgov::sim
