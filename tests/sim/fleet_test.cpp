// Tests for sharded federated fleet training (sim/fleet.hpp): determinism
// across worker counts, shard sync cadence/staleness bookkeeping, progress
// reporting and deployability of the global aggregate.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/error.hpp"
#include "sim/fleet.hpp"

namespace nextgov::sim {
namespace {

FleetOptions small_fleet() {
  FleetOptions options;
  options.devices = 4;
  options.shards = 2;
  options.rounds = 2;
  options.round_duration = SimTime::from_seconds(30.0);
  options.episode_length = SimTime::from_seconds(15.0);
  options.base_seed = 321;
  options.sync_spread = 2;  // shard 0 syncs every round, shard 1 every 2nd
  return options;
}

void expect_tables_identical(const rl::QTable& a, const rl::QTable& b) {
  ASSERT_EQ(a.state_count(), b.state_count());
  EXPECT_EQ(a.total_visits(), b.total_visits());
  a.for_each_entry([&](const rl::QTable::EntryView& ea) {
    ASSERT_TRUE(b.contains(ea.key())) << "state " << ea.key() << " missing";
    EXPECT_EQ(ea.visits(), b.visits(ea.key())) << "state " << ea.key();
    EXPECT_EQ(ea.tried(), b.tried_mask(ea.key())) << "state " << ea.key();
    for (std::size_t i = 0; i < a.action_count(); ++i) {
      EXPECT_EQ(ea.q(i), b.q(ea.key(), i)) << "state " << ea.key() << " action " << i;
    }
  });
  // Belt and braces: the exact-equality operator must agree.
  EXPECT_TRUE(a == b);
}

TEST(Fleet, DeterministicAcrossWorkerCounts) {
  const FleetOptions options = small_fleet();
  const FleetResult serial = train_fleet(workload::AppId::kFacebook, options, {.workers = 1});
  const FleetResult pooled = train_fleet(workload::AppId::kFacebook, options, {.workers = 4});
  expect_tables_identical(serial.global, pooled.global);
  EXPECT_EQ(serial.total_decisions, pooled.total_decisions);
  EXPECT_EQ(serial.mean_final_reward, pooled.mean_final_reward);
  ASSERT_EQ(serial.shard_tables.size(), pooled.shard_tables.size());
  for (std::size_t s = 0; s < serial.shard_tables.size(); ++s) {
    SCOPED_TRACE(s);
    expect_tables_identical(serial.shard_tables[s], pooled.shard_tables[s]);
  }
}

TEST(Fleet, SyncCadenceDrivesStaleness) {
  // sync_spread = 2: shard 0 uploads every round (last upload = final
  // round), shard 1 every 2nd round (rounds are 0-based, upload after
  // round r when (r+1) % 2 == 0 -> r = 1).
  FleetOptions options = small_fleet();
  options.rounds = 3;
  const FleetResult result = train_fleet(workload::AppId::kFacebook, options);
  ASSERT_EQ(result.shard_last_upload.size(), 2u);
  EXPECT_EQ(result.shard_last_upload[0], 2u);
  EXPECT_EQ(result.shard_last_upload[1], 1u);
}

TEST(Fleet, NeverSyncedShardIsMarkedAsSuch) {
  // One round with sync_spread = 2: shard 1 (period 2) never comes due,
  // so its last-upload slot must carry the explicit sentinel, and the
  // global aggregate is built from shard 0's upload alone.
  FleetOptions options = small_fleet();
  options.rounds = 1;
  const FleetResult result = train_fleet(workload::AppId::kFacebook, options);
  EXPECT_EQ(result.shard_last_upload[0], 0u);
  EXPECT_EQ(result.shard_last_upload[1], kNeverUploaded);
  EXPECT_GT(result.global.state_count(), 0u);
}

TEST(Fleet, ProgressFiresOncePerRoundAndCoverageGrows) {
  const FleetOptions options = small_fleet();
  std::vector<FleetRoundStats> rounds;
  const FleetResult result = train_fleet(
      workload::AppId::kFacebook, options, {},
      [&](const FleetRoundStats& stats) { rounds.push_back(stats); });
  ASSERT_EQ(rounds.size(), options.rounds);
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_EQ(rounds[r].round, r);
    ASSERT_EQ(rounds[r].shard_states.size(), options.shards);
    EXPECT_GT(rounds[r].round_decisions, 0u);
  }
  // Shard 0 syncs every round, so its last-round aggregate fed the server.
  EXPECT_TRUE(rounds.back().shard_synced[0]);
  EXPECT_GT(result.global.state_count(), 0u);
  EXPECT_GT(result.total_decisions, 0u);
  // The global union cannot lose states round over round: the server
  // always merges the latest uploads.
  EXPECT_GE(result.global.state_count(), rounds.front().shard_states[0]);
}

TEST(Fleet, GlobalTableIsDeployable) {
  const FleetResult result = train_fleet(workload::AppId::kFacebook, small_fleet());
  ExperimentConfig cfg;
  cfg.governor = GovernorKind::kNext;
  cfg.duration = SimTime::from_seconds(20.0);
  cfg.seed = 999;
  cfg.trained_table = &result.global;
  const SessionResult session = run_app_session(workload::AppId::kFacebook, cfg);
  EXPECT_GT(session.avg_power_w, 0.1);
  EXPECT_GT(session.avg_fps, 0.0);
}

TEST(Fleet, RejectsBadGeometry) {
  FleetOptions options = small_fleet();
  options.shards = 8;  // more shards than devices
  EXPECT_THROW((void)train_fleet(workload::AppId::kFacebook, options), ConfigError);
  options = small_fleet();
  options.devices = 0;
  EXPECT_THROW((void)train_fleet(workload::AppId::kFacebook, options), ConfigError);
  options = small_fleet();
  options.rounds = 0;
  EXPECT_THROW((void)train_fleet(workload::AppId::kFacebook, options), ConfigError);
}

TEST(Fleet, ValidationPinsEveryDegenerateOption) {
  // validate_fleet_options is train_fleet's up-front gate: each degenerate
  // configuration must fail fast with ConfigError instead of producing a
  // silent no-op or divide-by-zero run. One pin per field.
  const auto expect_rejected = [](auto mutate, const char* label) {
    FleetOptions options = small_fleet();
    mutate(options);
    EXPECT_THROW(validate_fleet_options(options), ConfigError) << label;
  };
  expect_rejected([](auto& o) { o.devices = 0; }, "devices == 0");
  expect_rejected([](auto& o) { o.shards = 0; }, "shards == 0");
  expect_rejected([](auto& o) { o.shards = o.devices + 1; }, "shards > devices");
  expect_rejected([](auto& o) { o.rounds = 0; }, "rounds == 0");
  expect_rejected([](auto& o) { o.round_duration = SimTime::zero(); }, "zero round");
  expect_rejected([](auto& o) { o.episode_length = SimTime::zero(); }, "zero episode");
  expect_rejected([](auto& o) { o.sync_spread = 0; }, "sync_spread == 0");
  expect_rejected([](auto& o) { o.faults.dropout_rate = 1.0; }, "dropout_rate == 1");
  expect_rejected([](auto& o) { o.faults.dropout_rate = -0.1; }, "negative dropout");
  expect_rejected([](auto& o) { o.faults.upload_corruption_rate = 1.5; },
                  "corruption_rate > 1");
  expect_rejected([](auto& o) { o.snapshot_every = 2; },
                  "snapshot_every without snapshot_path");
  EXPECT_NO_THROW(validate_fleet_options(small_fleet()));
}

TEST(Fleet, DeterministicAcrossProcessCounts) {
  // The multi-process rung of the same contract DeterministicAcrossWorkerCounts
  // pins for threads: fanning each round's training across forked worker
  // processes (sim/multiproc.hpp) must leave every table bit-identical.
  FleetOptions options = small_fleet();
  const FleetResult in_process =
      train_fleet(workload::AppId::kFacebook, options, {.workers = 1});
  options.processes = 2;
  const FleetResult sharded =
      train_fleet(workload::AppId::kFacebook, options, {.workers = 1});
  expect_tables_identical(in_process.global, sharded.global);
  EXPECT_EQ(in_process.total_decisions, sharded.total_decisions);
  EXPECT_EQ(in_process.mean_final_reward, sharded.mean_final_reward);
  ASSERT_EQ(in_process.shard_tables.size(), sharded.shard_tables.size());
  for (std::size_t s = 0; s < in_process.shard_tables.size(); ++s) {
    SCOPED_TRACE(s);
    expect_tables_identical(in_process.shard_tables[s], sharded.shard_tables[s]);
  }
}

TEST(Fleet, UploadWireCodecRoundTripsBothPaths) {
  // decode_upload(encode_upload(t, ...)) == t bit-exactly on both the full
  // and the delta path - the invariant that makes the wire strategy
  // invisible to the training trajectory.
  rl::QTable base{4, 2.5};
  base.set_q(10, 1, 0.5);
  base.record_visit(10);
  base.set_q(11, 2, -1.25);
  rl::QTable next = base;
  next.set_q(10, 3, 7.0);
  next.record_visit(10);
  next.set_q(99, 0, 3.5);
  next.record_visit(99);

  bool went_delta = false;
  const std::vector<std::uint8_t> full = encode_upload(next, nullptr, &went_delta);
  EXPECT_FALSE(went_delta);
  EXPECT_TRUE(decode_upload(full, nullptr, "test") == next);

  const std::vector<std::uint8_t> delta = encode_upload(next, &base, &went_delta);
  EXPECT_TRUE(went_delta);
  EXPECT_LT(delta.size(), full.size());  // only the touched states travel
  EXPECT_TRUE(decode_upload(delta, &base, "test") == next);

  // A delta against a base the receiver does not hold must be refused, not
  // misapplied - same failure surface as any damaged blob.
  rl::QTable other{4, 2.5};
  other.set_q(10, 1, 0.5);  // differs from `base` in visits/states
  EXPECT_THROW((void)decode_upload(delta, &other, "test"), SerializeError);
  EXPECT_THROW((void)decode_upload(delta, nullptr, "test"), SerializeError);

  // A base that is not a subset of the table falls back to the full wire.
  rl::QTable unrelated{4, 2.5};
  unrelated.set_q(12345, 0, 1.0);
  const std::vector<std::uint8_t> fallback = encode_upload(next, &unrelated, &went_delta);
  EXPECT_FALSE(went_delta);
  EXPECT_TRUE(decode_upload(fallback, nullptr, "test") == next);
}

TEST(Fleet, DeltaUploadsAreByteIdenticalToFull) {
  // The delta-upload wire contract end to end: with faults active, a
  // delta-encoded run must land on exactly the same tables as the
  // full-upload run - across worker counts and process counts - because
  // every decoded upload is bit-identical to the sender's table. Only the
  // wire accounting may differ.
  FleetOptions options = small_fleet();
  options.rounds = 4;
  options.faults.dropout_rate = 0.15;
  options.faults.upload_corruption_rate = 0.3;
  const FleetResult full = train_fleet(workload::AppId::kFacebook, options, {.workers = 1});
  EXPECT_EQ(full.uploads_delta, 0u);  // flag off: everything travels full
  EXPECT_GT(full.uploads_full, 0u);
  EXPECT_GT(full.upload_bytes_full, 0u);

  options.delta_uploads = true;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(workers);
    std::uint64_t stat_bytes = 0;
    std::size_t stat_deltas = 0;
    const FleetResult delta =
        train_fleet(workload::AppId::kFacebook, options, {.workers = workers},
                    [&](const FleetRoundStats& stats) {
                      stat_bytes += stats.upload_bytes;
                      stat_deltas += stats.delta_uploads;
                    });
    expect_tables_identical(full.global, delta.global);
    ASSERT_EQ(full.shard_tables.size(), delta.shard_tables.size());
    for (std::size_t s = 0; s < full.shard_tables.size(); ++s) {
      SCOPED_TRACE(s);
      expect_tables_identical(full.shard_tables[s], delta.shard_tables[s]);
    }
    EXPECT_EQ(full.total_decisions, delta.total_decisions);
    EXPECT_EQ(full.rejected_uploads, delta.rejected_uploads);
    EXPECT_EQ(full.dropped_device_rounds, delta.dropped_device_rounds);
    // Shard 0 syncs every round: its first upload goes full, everything
    // after deltas. Per-round stats must reconcile with the totals.
    EXPECT_GT(delta.uploads_delta, 0u);
    EXPECT_GT(delta.uploads_full, 0u);
    EXPECT_EQ(delta.uploads_delta, stat_deltas);
    EXPECT_EQ(delta.upload_bytes_full + delta.upload_bytes_delta, stat_bytes);
  }

  options.processes = 2;
  const FleetResult sharded =
      train_fleet(workload::AppId::kFacebook, options, {.workers = 1});
  expect_tables_identical(full.global, sharded.global);
  EXPECT_EQ(full.total_decisions, sharded.total_decisions);
}

TEST(Fleet, DeltaFlagMayFlipAcrossResume) {
  // The wire strategy is not part of the snapshot's options identity: a
  // checkpoint written by a full-upload run resumes under delta_uploads
  // (and lands on the uninterrupted run's exact bytes), because the delta
  // bases persisted in the v3 sync_state section are maintained either way.
  const std::string path = ::testing::TempDir() + "/nextgov_fleet_delta_resume.bin";
  std::remove(path.c_str());

  FleetOptions options = small_fleet();
  options.rounds = 4;
  options.faults.upload_corruption_rate = 0.25;
  const FleetResult straight = train_fleet(workload::AppId::kFacebook, options);

  FleetOptions crashing = options;
  crashing.snapshot_every = 2;
  crashing.snapshot_path = path;
  crashing.faults.crash_at_round = 1;  // dies right after the checkpoint
  EXPECT_THROW((void)train_fleet(workload::AppId::kFacebook, crashing), FleetCrash);

  FleetOptions resumed = options;
  resumed.resume_from = path;
  resumed.delta_uploads = true;  // flipped relative to the crashed run
  const FleetResult delta_resumed = train_fleet(workload::AppId::kFacebook, resumed);
  expect_tables_identical(straight.global, delta_resumed.global);
  EXPECT_EQ(delta_resumed.start_round, 2u);
  // Rounds 2-3 sync against bases restored from the snapshot, so the
  // resumed half actually exercises the delta path.
  EXPECT_GT(delta_resumed.uploads_delta, 0u);
  std::remove(path.c_str());
}

TEST(Fleet, DeltaUploadsKnobExcludedFromOptionsIdentity) {
  // Like `processes`: pure wire strategy, so flipping it must not change
  // the canonical options encoding a snapshot pins.
  FleetOptions a = small_fleet();
  FleetOptions b = a;
  b.delta_uploads = true;
  ByteWriter wa;
  ByteWriter wb;
  encode_fleet_options(a, wa);
  encode_fleet_options(b, wb);
  EXPECT_EQ(wa.data(), wb.data());
}

TEST(Fleet, ProcessesKnobExcludedFromOptionsIdentity) {
  // A checkpoint written single-process must resume sharded (and vice
  // versa): the knob is execution strategy, not trajectory.
  FleetOptions a = small_fleet();
  FleetOptions b = a;
  b.processes = 8;
  ByteWriter wa;
  ByteWriter wb;
  encode_fleet_options(a, wa);
  encode_fleet_options(b, wb);
  EXPECT_EQ(wa.data(), wb.data());
}

}  // namespace
}  // namespace nextgov::sim
