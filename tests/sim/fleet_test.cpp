// Tests for sharded federated fleet training (sim/fleet.hpp): determinism
// across worker counts, shard sync cadence/staleness bookkeeping, progress
// reporting and deployability of the global aggregate.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/fleet.hpp"

namespace nextgov::sim {
namespace {

FleetOptions small_fleet() {
  FleetOptions options;
  options.devices = 4;
  options.shards = 2;
  options.rounds = 2;
  options.round_duration = SimTime::from_seconds(30.0);
  options.episode_length = SimTime::from_seconds(15.0);
  options.base_seed = 321;
  options.sync_spread = 2;  // shard 0 syncs every round, shard 1 every 2nd
  return options;
}

void expect_tables_identical(const rl::QTable& a, const rl::QTable& b) {
  ASSERT_EQ(a.state_count(), b.state_count());
  EXPECT_EQ(a.total_visits(), b.total_visits());
  for (const auto& [key, ea] : a.entries()) {
    const auto it = b.entries().find(key);
    ASSERT_NE(it, b.entries().end()) << "state " << key << " missing";
    EXPECT_EQ(ea.visits, it->second.visits) << "state " << key;
    EXPECT_EQ(ea.tried, it->second.tried) << "state " << key;
    for (std::size_t i = 0; i < ea.q.size(); ++i) {
      EXPECT_EQ(ea.q[i], it->second.q[i]) << "state " << key << " action " << i;
    }
  }
}

TEST(Fleet, DeterministicAcrossWorkerCounts) {
  const FleetOptions options = small_fleet();
  const FleetResult serial = train_fleet(workload::AppId::kFacebook, options, {.workers = 1});
  const FleetResult pooled = train_fleet(workload::AppId::kFacebook, options, {.workers = 4});
  expect_tables_identical(serial.global, pooled.global);
  EXPECT_EQ(serial.total_decisions, pooled.total_decisions);
  EXPECT_EQ(serial.mean_final_reward, pooled.mean_final_reward);
  ASSERT_EQ(serial.shard_tables.size(), pooled.shard_tables.size());
  for (std::size_t s = 0; s < serial.shard_tables.size(); ++s) {
    SCOPED_TRACE(s);
    expect_tables_identical(serial.shard_tables[s], pooled.shard_tables[s]);
  }
}

TEST(Fleet, SyncCadenceDrivesStaleness) {
  // sync_spread = 2: shard 0 uploads every round (last upload = final
  // round), shard 1 every 2nd round (rounds are 0-based, upload after
  // round r when (r+1) % 2 == 0 -> r = 1).
  FleetOptions options = small_fleet();
  options.rounds = 3;
  const FleetResult result = train_fleet(workload::AppId::kFacebook, options);
  ASSERT_EQ(result.shard_last_upload.size(), 2u);
  EXPECT_EQ(result.shard_last_upload[0], 2u);
  EXPECT_EQ(result.shard_last_upload[1], 1u);
}

TEST(Fleet, NeverSyncedShardIsMarkedAsSuch) {
  // One round with sync_spread = 2: shard 1 (period 2) never comes due,
  // so its last-upload slot must carry the explicit sentinel, and the
  // global aggregate is built from shard 0's upload alone.
  FleetOptions options = small_fleet();
  options.rounds = 1;
  const FleetResult result = train_fleet(workload::AppId::kFacebook, options);
  EXPECT_EQ(result.shard_last_upload[0], 0u);
  EXPECT_EQ(result.shard_last_upload[1], kNeverUploaded);
  EXPECT_GT(result.global.state_count(), 0u);
}

TEST(Fleet, ProgressFiresOncePerRoundAndCoverageGrows) {
  const FleetOptions options = small_fleet();
  std::vector<FleetRoundStats> rounds;
  const FleetResult result = train_fleet(
      workload::AppId::kFacebook, options, {},
      [&](const FleetRoundStats& stats) { rounds.push_back(stats); });
  ASSERT_EQ(rounds.size(), options.rounds);
  for (std::size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_EQ(rounds[r].round, r);
    ASSERT_EQ(rounds[r].shard_states.size(), options.shards);
    EXPECT_GT(rounds[r].round_decisions, 0u);
  }
  // Shard 0 syncs every round, so its last-round aggregate fed the server.
  EXPECT_TRUE(rounds.back().shard_synced[0]);
  EXPECT_GT(result.global.state_count(), 0u);
  EXPECT_GT(result.total_decisions, 0u);
  // The global union cannot lose states round over round: the server
  // always merges the latest uploads.
  EXPECT_GE(result.global.state_count(), rounds.front().shard_states[0]);
}

TEST(Fleet, GlobalTableIsDeployable) {
  const FleetResult result = train_fleet(workload::AppId::kFacebook, small_fleet());
  ExperimentConfig cfg;
  cfg.governor = GovernorKind::kNext;
  cfg.duration = SimTime::from_seconds(20.0);
  cfg.seed = 999;
  cfg.trained_table = &result.global;
  const SessionResult session = run_app_session(workload::AppId::kFacebook, cfg);
  EXPECT_GT(session.avg_power_w, 0.1);
  EXPECT_GT(session.avg_fps, 0.0);
}

TEST(Fleet, RejectsBadGeometry) {
  FleetOptions options = small_fleet();
  options.shards = 8;  // more shards than devices
  EXPECT_THROW((void)train_fleet(workload::AppId::kFacebook, options), ConfigError);
  options = small_fleet();
  options.devices = 0;
  EXPECT_THROW((void)train_fleet(workload::AppId::kFacebook, options), ConfigError);
  options = small_fleet();
  options.rounds = 0;
  EXPECT_THROW((void)train_fleet(workload::AppId::kFacebook, options), ConfigError);
}

TEST(Fleet, ValidationPinsEveryDegenerateOption) {
  // validate_fleet_options is train_fleet's up-front gate: each degenerate
  // configuration must fail fast with ConfigError instead of producing a
  // silent no-op or divide-by-zero run. One pin per field.
  const auto expect_rejected = [](auto mutate, const char* label) {
    FleetOptions options = small_fleet();
    mutate(options);
    EXPECT_THROW(validate_fleet_options(options), ConfigError) << label;
  };
  expect_rejected([](auto& o) { o.devices = 0; }, "devices == 0");
  expect_rejected([](auto& o) { o.shards = 0; }, "shards == 0");
  expect_rejected([](auto& o) { o.shards = o.devices + 1; }, "shards > devices");
  expect_rejected([](auto& o) { o.rounds = 0; }, "rounds == 0");
  expect_rejected([](auto& o) { o.round_duration = SimTime::zero(); }, "zero round");
  expect_rejected([](auto& o) { o.episode_length = SimTime::zero(); }, "zero episode");
  expect_rejected([](auto& o) { o.sync_spread = 0; }, "sync_spread == 0");
  expect_rejected([](auto& o) { o.faults.dropout_rate = 1.0; }, "dropout_rate == 1");
  expect_rejected([](auto& o) { o.faults.dropout_rate = -0.1; }, "negative dropout");
  expect_rejected([](auto& o) { o.faults.upload_corruption_rate = 1.5; },
                  "corruption_rate > 1");
  expect_rejected([](auto& o) { o.snapshot_every = 2; },
                  "snapshot_every without snapshot_path");
  EXPECT_NO_THROW(validate_fleet_options(small_fleet()));
}

TEST(Fleet, DeterministicAcrossProcessCounts) {
  // The multi-process rung of the same contract DeterministicAcrossWorkerCounts
  // pins for threads: fanning each round's training across forked worker
  // processes (sim/multiproc.hpp) must leave every table bit-identical.
  FleetOptions options = small_fleet();
  const FleetResult in_process =
      train_fleet(workload::AppId::kFacebook, options, {.workers = 1});
  options.processes = 2;
  const FleetResult sharded =
      train_fleet(workload::AppId::kFacebook, options, {.workers = 1});
  expect_tables_identical(in_process.global, sharded.global);
  EXPECT_EQ(in_process.total_decisions, sharded.total_decisions);
  EXPECT_EQ(in_process.mean_final_reward, sharded.mean_final_reward);
  ASSERT_EQ(in_process.shard_tables.size(), sharded.shard_tables.size());
  for (std::size_t s = 0; s < in_process.shard_tables.size(); ++s) {
    SCOPED_TRACE(s);
    expect_tables_identical(in_process.shard_tables[s], sharded.shard_tables[s]);
  }
}

TEST(Fleet, ProcessesKnobExcludedFromOptionsIdentity) {
  // A checkpoint written single-process must resume sharded (and vice
  // versa): the knob is execution strategy, not trajectory.
  FleetOptions a = small_fleet();
  FleetOptions b = a;
  b.processes = 8;
  ByteWriter wa;
  ByteWriter wb;
  encode_fleet_options(a, wa);
  encode_fleet_options(b, wb);
  EXPECT_EQ(wa.data(), wb.data());
}

}  // namespace
}  // namespace nextgov::sim
