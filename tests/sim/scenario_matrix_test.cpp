// Property tests for the scenario subsystem (sim/scenario.hpp): matrix
// expansion is deterministic and seed-stable, matrix execution through
// run_plan() is bit-identical across worker counts, and the library obeys
// the physical invariants the paper's operating envelope implies - higher
// ambient never lowers peak temperature, and FPS never exceeds the panel's
// refresh rate.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "sim/scenario.hpp"
#include "workload/apps.hpp"

namespace nextgov::sim {
namespace {

/// The canonical small matrix used by the execution tests: 2 scenarios x
/// 3 ambients x 2 refresh rates x 1 seed = 12 cells, shortened so the
/// whole matrix stays test-sized.
ScenarioMatrix small_matrix() {
  ScenarioSpec fig1 = scenario("fig1_session");
  fig1.duration = SimTime::from_seconds(20.0);
  ScenarioSpec bursty = scenario("spotify_bursty");
  bursty.duration = SimTime::from_seconds(20.0);
  ScenarioMatrix matrix;
  matrix.add(std::move(fig1))
      .add(std::move(bursty))
      .ambients({15.0, 25.0, 35.0})
      .refresh_rates({60.0, 90.0});
  return matrix;
}

TEST(ScenarioLibrary, LookupKnownAndUnknownNames) {
  EXPECT_GE(scenario_names().size(), 9u);
  for (std::string_view name : scenario_names()) {
    const ScenarioSpec spec = scenario(name);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(spec.segments.empty()) << name;
    EXPECT_GT(spec.effective_duration().seconds(), 0.0) << name;
  }
  EXPECT_THROW((void)scenario("definitely_not_a_scenario"), ConfigError);
}

TEST(ScenarioLibrary, CoversTheIssueMatrix) {
  // The curated axes the ROADMAP's scenario-breadth item names: 90/120 Hz
  // panels, 15-35 C ambients, and interleavings beyond the Fig. 1 session.
  EXPECT_DOUBLE_EQ(scenario("fig1_session_90hz").refresh_hz, 90.0);
  EXPECT_DOUBLE_EQ(scenario("fig1_session_120hz").refresh_hz, 120.0);
  EXPECT_DOUBLE_EQ(scenario("fig1_session_15c").ambient.value(), 15.0);
  EXPECT_DOUBLE_EQ(scenario("fig1_session_35c").ambient.value(), 35.0);
  EXPECT_GE(scenario("social_gaming").segments.size(), 3u);
  EXPECT_GE(scenario("commute_media").segments.size(), 3u);
  EXPECT_TRUE(scenario("spotify_bursty").burst.enabled);
  EXPECT_TRUE(scenario("binge_watch").user_override.has_value());
}

TEST(ScenarioSpecTest, SingleSegmentFactoryMatchesCatalogApp) {
  // app_scenario() must be a drop-in for the benches' hand-rolled
  // make_app() setups: same app, same seed, bit-identical session.
  const ScenarioSpec spec = app_scenario(workload::AppId::kFacebook);
  ExperimentConfig cfg = spec.experiment_config(GovernorKind::kSchedutil, 5);
  cfg.duration = SimTime::from_seconds(10.0);
  const SessionResult via_scenario = run_session(spec.app_factory(), "facebook", cfg);
  const SessionResult via_catalog = run_session(
      [](std::uint64_t seed) { return workload::make_app(workload::AppId::kFacebook, seed); },
      "facebook", cfg);
  EXPECT_TRUE(bit_identical(via_scenario, via_catalog));
}

TEST(ScenarioSpecTest, ExperimentConfigCarriesOperatingPoint) {
  ScenarioSpec spec = scenario("fig1_session_120hz");
  spec.ambient = Celsius{33.0};
  const ExperimentConfig cfg = spec.experiment_config(GovernorKind::kNext, 42);
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_DOUBLE_EQ(cfg.refresh_hz, 120.0);
  EXPECT_DOUBLE_EQ(cfg.ambient.value(), 33.0);
  EXPECT_DOUBLE_EQ(cfg.duration.seconds(), 280.0);
  // The Next agent's QoS ceiling and reward bounds follow the panel and room.
  EXPECT_GE(cfg.next_config.ppdw_bounds.fps_max, 120.0);
  EXPECT_DOUBLE_EQ(cfg.next_config.ppdw_bounds.ambient.value(), 33.0);
}

TEST(ScenarioMatrixTest, SizeMatchesAxisProduct) {
  EXPECT_EQ(small_matrix().size(), 12u);
  ScenarioMatrix seeded = small_matrix();
  seeded.seeds(3);
  EXPECT_EQ(seeded.size(), 36u);
  // Unset axes keep each scenario's own value: one point, not zero.
  ScenarioMatrix bare;
  bare.add("fig1_session");
  EXPECT_EQ(bare.size(), 1u);
}

TEST(ScenarioMatrixTest, ExpansionIsDeterministicAndSeedStable) {
  ScenarioMatrix matrix = small_matrix();
  matrix.seeds(2);
  const auto a = matrix.expand();
  const auto b = matrix.expand();
  ASSERT_EQ(a.size(), matrix.size());
  ASSERT_EQ(a.size(), b.size());
  std::set<std::string> labels;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].spec.name, b[i].spec.name);
    EXPECT_EQ(a[i].spec.base_seed, b[i].spec.base_seed);
    EXPECT_DOUBLE_EQ(a[i].spec.ambient.value(), b[i].spec.ambient.value());
    EXPECT_DOUBLE_EQ(a[i].spec.refresh_hz, b[i].spec.refresh_hz);
    labels.insert(a[i].spec.name);
  }
  // Labels are unique (JSON keys, golden table keys).
  EXPECT_EQ(labels.size(), a.size());
  // Seed policy: index 0 keeps the scenario's base seed, index i derives.
  for (const auto& cell : a) {
    if (cell.seed_index == 0) {
      EXPECT_TRUE(cell.spec.base_seed == scenario("fig1_session").base_seed ||
                  cell.spec.base_seed == scenario("spotify_bursty").base_seed);
    } else {
      EXPECT_TRUE(cell.spec.base_seed ==
                      derive_seed(scenario("fig1_session").base_seed, cell.seed_index) ||
                  cell.spec.base_seed ==
                      derive_seed(scenario("spotify_bursty").base_seed, cell.seed_index));
    }
  }
}

TEST(ScenarioMatrixTest, RunPlanBitIdenticalAcrossWorkerCounts) {
  // The acceptance property: a >= 12-cell matrix through run_plan() is
  // bit-identical between serial execution and the worker pool (and
  // between different pool sizes).
  const ScenarioMatrix matrix = small_matrix();
  const RunPlan plan = matrix.to_run_plan(GovernorKind::kSchedutil);
  ASSERT_GE(plan.size(), 12u);
  const auto serial = run_plan(plan, {.workers = 1});
  const auto pooled4 = run_plan(plan, {.workers = 4});
  const auto pooled3 = run_plan(plan, {.workers = 3});
  ASSERT_EQ(serial.size(), pooled4.size());
  ASSERT_EQ(serial.size(), pooled3.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(bit_identical(serial[i], pooled4[i])) << "cell " << i;
    EXPECT_TRUE(bit_identical(serial[i], pooled3[i])) << "cell " << i;
  }
}

TEST(ScenarioMatrixTest, TrainingPlanExpansionSubstitutesOperatingPoint) {
  ScenarioMatrix matrix;
  matrix.add("fig1_session").ambients({15.0, 35.0}).refresh_rates({60.0, 120.0}).seeds(2);
  TrainingPlan plan;
  TrainingOptions base;
  base.max_duration = SimTime::from_seconds(120.0);
  const std::size_t added = matrix.append_to(plan, core::NextConfig{}, base);
  EXPECT_EQ(added, 8u);
  ASSERT_EQ(plan.size(), 8u);
  const auto cells = matrix.expand();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const TrainingSpec& t = plan.cells()[i];
    EXPECT_EQ(t.name, cells[i].spec.name);
    EXPECT_EQ(t.options.seed, cells[i].spec.base_seed);
    EXPECT_DOUBLE_EQ(t.options.ambient.value(), cells[i].spec.ambient.value());
    EXPECT_DOUBLE_EQ(t.options.refresh_hz, cells[i].spec.refresh_hz);
    EXPECT_DOUBLE_EQ(t.options.max_duration.seconds(), 120.0);
    EXPECT_GE(t.config.ppdw_bounds.fps_max, cells[i].spec.refresh_hz);
    EXPECT_DOUBLE_EQ(t.config.ppdw_bounds.ambient.value(), cells[i].spec.ambient.value());
  }
}

TEST(ScenarioPropertyTest, HigherAmbientNeverLowersPeakTemperature) {
  // Physics invariant across the Sec. V ambient range: the RC network's
  // boundary condition shifts up with the room, and leakage only amplifies
  // the shift, so peak temperatures are monotone in ambient.
  ScenarioSpec spec = scenario("fig1_session");
  spec.duration = SimTime::from_seconds(60.0);
  ScenarioMatrix matrix;
  matrix.add(std::move(spec)).ambients({15.0, 21.0, 25.0, 30.0, 35.0});
  const auto results = run_plan(matrix.to_run_plan(GovernorKind::kSchedutil));
  ASSERT_EQ(results.size(), 5u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i].peak_temp_big_c, results[i - 1].peak_temp_big_c)
        << "ambient step " << i;
    EXPECT_GE(results[i].peak_temp_device_c, results[i - 1].peak_temp_device_c)
        << "ambient step " << i;
    EXPECT_GE(results[i].avg_temp_device_c, results[i - 1].avg_temp_device_c)
        << "ambient step " << i;
  }
}

TEST(ScenarioPropertyTest, FpsNeverExceedsRefreshAcrossLibrary) {
  // VSync is a hard ceiling: for every library scenario at its own panel
  // rate, neither the session average nor any recorded sample exceeds
  // refresh_hz (small tolerance for the sliding-window FPS estimator).
  ScenarioMatrix matrix;
  for (std::string_view name : scenario_names()) {
    ScenarioSpec spec = scenario(name);
    spec.duration = SimTime::from_seconds(40.0);
    matrix.add(std::move(spec));
  }
  const auto cells = matrix.expand();
  RunPlan plan;
  append_cells(plan, cells, GovernorKind::kSchedutil);
  const auto results = run_plan(plan);
  ASSERT_EQ(results.size(), cells.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double refresh = cells[i].spec.refresh_hz;
    EXPECT_LE(results[i].avg_fps, refresh + 1.0) << cells[i].spec.name;
    for (const auto& sample : results[i].series) {
      EXPECT_LE(sample.fps, refresh + 1.5)
          << cells[i].spec.name << " at t=" << sample.time_s;
    }
  }
}

TEST(ScenarioPropertyTest, BackgroundBurstRaisesLoadOnlyDuringBursts) {
  // The bursty decorator must add load inside the burst window, keep the
  // app untouched outside it, and saturate at full utilization.
  const ScenarioSpec bursty = scenario("spotify_bursty");
  const ScenarioSpec plain = [&] {
    ScenarioSpec s = bursty;
    s.burst.enabled = false;
    return s;
  }();
  auto burst_app = bursty.app_factory()(7);
  auto plain_app = plain.app_factory()(7);
  const SimTime dt = SimTime::from_ms(1);
  double max_excess = 0.0;
  for (std::int64_t ms = 0; ms < 60000; ++ms) {
    const SimTime now = SimTime::from_ms(ms);
    burst_app->update(now, dt);
    plain_app->update(now, dt);
    const auto b = burst_app->background();
    const auto p = plain_app->background();
    const std::int64_t phase_us = now.us() % bursty.burst.period.us();
    const bool in_burst =
        phase_us >= bursty.burst.period.us() - bursty.burst.burst_length.us();
    if (in_burst) {
      EXPECT_GE(b.big_hot + 1e-12, p.big_hot);
      max_excess = std::max(max_excess, b.big_hot - p.big_hot);
    } else {
      EXPECT_DOUBLE_EQ(b.big_hot, p.big_hot);
      EXPECT_DOUBLE_EQ(b.little_avg, p.little_avg);
    }
    EXPECT_LE(b.big_hot, 1.0);
    EXPECT_LE(b.little_hot, 1.0);
  }
  EXPECT_GT(max_excess, 0.1);  // the bursts actually bite
}

}  // namespace
}  // namespace nextgov::sim
