// Tests for the batch/parallel experiment runner: plan construction, seed
// derivation, and the core determinism contract - N-worker execution is
// bit-identical to serial execution in plan order.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/error.hpp"
#include "sim/runner.hpp"

namespace nextgov::sim {
namespace {

RunPlan small_grid() {
  // 2 apps x 3 governors x 2 seeds = 12 sessions, kept short so the suite
  // stays fast while still crossing governor/record/throttle boundaries.
  const workload::AppId apps[] = {workload::AppId::kFacebook, workload::AppId::kLineage};
  const GovernorKind governors[] = {GovernorKind::kSchedutil, GovernorKind::kOndemand,
                                    GovernorKind::kNext};
  const std::uint64_t seeds[] = {1, 2};
  ExperimentConfig base;
  base.duration = SimTime::from_seconds(5.0);
  RunPlan plan;
  plan.add_grid(apps, governors, seeds, base);
  return plan;
}

void expect_bit_identical(const SessionResult& a, const SessionResult& b) {
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.governor, b.governor);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.avg_power_w, b.avg_power_w);
  EXPECT_EQ(a.peak_power_w, b.peak_power_w);
  EXPECT_EQ(a.avg_temp_big_c, b.avg_temp_big_c);
  EXPECT_EQ(a.peak_temp_big_c, b.peak_temp_big_c);
  EXPECT_EQ(a.avg_temp_device_c, b.avg_temp_device_c);
  EXPECT_EQ(a.peak_temp_device_c, b.peak_temp_device_c);
  EXPECT_EQ(a.avg_fps, b.avg_fps);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.frames_presented, b.frames_presented);
  EXPECT_EQ(a.frames_dropped, b.frames_dropped);
  EXPECT_EQ(a.avg_ppdw, b.avg_ppdw);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    // Sample is all doubles, so memcmp equality is exactly bitwise
    // equality across every recorded field.
    EXPECT_EQ(std::memcmp(&a.series[i], &b.series[i], sizeof(Sample)), 0) << "sample " << i;
  }
}

TEST(RunPlan, GridBuildsCrossProductInOrder) {
  const RunPlan plan = small_grid();
  ASSERT_EQ(plan.size(), 12u);
  // Order: apps outermost, then governors, then seeds.
  EXPECT_EQ(plan.sessions()[0].name, "facebook");
  EXPECT_EQ(plan.sessions()[0].config.seed, 1u);
  EXPECT_EQ(plan.sessions()[1].config.seed, 2u);
  EXPECT_EQ(plan.sessions()[6].name, "lineage");
  EXPECT_EQ(static_cast<int>(plan.sessions()[2].config.governor),
            static_cast<int>(GovernorKind::kOndemand));
}

TEST(RunPlan, AddRejectsNullFactory) {
  RunPlan plan;
  EXPECT_THROW(plan.add(AppFactory{}, "broken", ExperimentConfig{}), ConfigError);
}

TEST(Runner, ParallelIsBitIdenticalToSerial) {
  const RunPlan plan = small_grid();
  const auto serial = run_plan(plan, {.workers = 1});
  const auto parallel = run_plan(plan, {.workers = 4});
  ASSERT_EQ(serial.size(), plan.size());
  ASSERT_EQ(parallel.size(), plan.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_bit_identical(serial[i], parallel[i]);
  }
}

TEST(Runner, RepeatedParallelRunsAreIdentical) {
  RunPlan plan;
  ExperimentConfig base;
  base.duration = SimTime::from_seconds(3.0);
  base.governor = GovernorKind::kNext;  // exercises the RL stack's RNG
  base.seed = 11;
  plan.add(workload::AppId::kPubg, base);
  base.seed = 12;
  plan.add(workload::AppId::kPubg, base);
  const auto first = run_plan(plan, {.workers = 2});
  const auto second = run_plan(plan, {.workers = 3});
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(i);
    expect_bit_identical(first[i], second[i]);
  }
}

TEST(Runner, EmptyPlanReturnsEmpty) {
  EXPECT_TRUE(run_plan(RunPlan{}).empty());
}

TEST(Runner, PropagatesSessionFailure) {
  RunPlan plan;
  ExperimentConfig ok;
  ok.duration = SimTime::from_seconds(1.0);
  plan.add(workload::AppId::kHome, ok);
  plan.add([](std::uint64_t) -> std::unique_ptr<workload::App> {
    throw ConfigError("boom");
  }, "broken", ok);
  EXPECT_THROW((void)run_plan(plan, {.workers = 2}), ConfigError);
}

TEST(Runner, DeriveSeedIsDeterministicAndSpreads) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t s = derive_seed(42, i);
    EXPECT_EQ(s, derive_seed(42, i));
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 1000u);                    // no collisions
  EXPECT_NE(derive_seed(42, 0), derive_seed(43, 0));  // base matters
}

}  // namespace
}  // namespace nextgov::sim
