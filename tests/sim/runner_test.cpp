// Tests for the batch/parallel experiment runner: plan construction, seed
// derivation, and the core determinism contract - N-worker execution is
// bit-identical to serial execution in plan order.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/error.hpp"
#include "sim/runner.hpp"

namespace nextgov::sim {
namespace {

RunPlan small_grid() {
  // 2 apps x 3 governors x 2 seeds = 12 sessions, kept short so the suite
  // stays fast while still crossing governor/record/throttle boundaries.
  const workload::AppId apps[] = {workload::AppId::kFacebook, workload::AppId::kLineage};
  const GovernorKind governors[] = {GovernorKind::kSchedutil, GovernorKind::kOndemand,
                                    GovernorKind::kNext};
  const std::uint64_t seeds[] = {1, 2};
  ExperimentConfig base;
  base.duration = SimTime::from_seconds(5.0);
  RunPlan plan;
  plan.add_grid(apps, governors, seeds, base);
  return plan;
}

void expect_bit_identical(const SessionResult& a, const SessionResult& b) {
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.governor, b.governor);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.avg_power_w, b.avg_power_w);
  EXPECT_EQ(a.peak_power_w, b.peak_power_w);
  EXPECT_EQ(a.avg_temp_big_c, b.avg_temp_big_c);
  EXPECT_EQ(a.peak_temp_big_c, b.peak_temp_big_c);
  EXPECT_EQ(a.avg_temp_device_c, b.avg_temp_device_c);
  EXPECT_EQ(a.peak_temp_device_c, b.peak_temp_device_c);
  EXPECT_EQ(a.avg_fps, b.avg_fps);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.frames_presented, b.frames_presented);
  EXPECT_EQ(a.frames_dropped, b.frames_dropped);
  EXPECT_EQ(a.avg_ppdw, b.avg_ppdw);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t i = 0; i < a.series.size(); ++i) {
    // Sample is all doubles, so memcmp equality is exactly bitwise
    // equality across every recorded field.
    EXPECT_EQ(std::memcmp(&a.series[i], &b.series[i], sizeof(Sample)), 0) << "sample " << i;
  }
}

TEST(RunPlan, GridBuildsCrossProductInOrder) {
  const RunPlan plan = small_grid();
  ASSERT_EQ(plan.size(), 12u);
  // Order: apps outermost, then governors, then seeds.
  EXPECT_EQ(plan.sessions()[0].name, "facebook");
  EXPECT_EQ(plan.sessions()[0].config.seed, 1u);
  EXPECT_EQ(plan.sessions()[1].config.seed, 2u);
  EXPECT_EQ(plan.sessions()[6].name, "lineage");
  EXPECT_EQ(static_cast<int>(plan.sessions()[2].config.governor),
            static_cast<int>(GovernorKind::kOndemand));
}

TEST(RunPlan, AddRejectsNullFactory) {
  RunPlan plan;
  EXPECT_THROW(plan.add(AppFactory{}, "broken", ExperimentConfig{}), ConfigError);
}

TEST(Runner, ParallelIsBitIdenticalToSerial) {
  const RunPlan plan = small_grid();
  const auto serial = run_plan(plan, {.workers = 1});
  const auto parallel = run_plan(plan, {.workers = 4});
  ASSERT_EQ(serial.size(), plan.size());
  ASSERT_EQ(parallel.size(), plan.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    expect_bit_identical(serial[i], parallel[i]);
  }
}

TEST(Runner, RepeatedParallelRunsAreIdentical) {
  RunPlan plan;
  ExperimentConfig base;
  base.duration = SimTime::from_seconds(3.0);
  base.governor = GovernorKind::kNext;  // exercises the RL stack's RNG
  base.seed = 11;
  plan.add(workload::AppId::kPubg, base);
  base.seed = 12;
  plan.add(workload::AppId::kPubg, base);
  const auto first = run_plan(plan, {.workers = 2});
  const auto second = run_plan(plan, {.workers = 3});
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    SCOPED_TRACE(i);
    expect_bit_identical(first[i], second[i]);
  }
}

TEST(Runner, EmptyPlanReturnsEmpty) {
  EXPECT_TRUE(run_plan(RunPlan{}).empty());
}

TEST(Runner, PropagatesSessionFailure) {
  RunPlan plan;
  ExperimentConfig ok;
  ok.duration = SimTime::from_seconds(1.0);
  plan.add(workload::AppId::kHome, ok);
  plan.add([](std::uint64_t) -> std::unique_ptr<workload::App> {
    throw ConfigError("boom");
  }, "broken", ok);
  EXPECT_THROW((void)run_plan(plan, {.workers = 2}), ConfigError);
}

TEST(BatchRunner, BatchedPlanIsBitIdenticalToRunPlan) {
  // Mixed governors/apps/seeds AND mixed durations: the duration split
  // produces several lock-step groups plus batching/fallback boundaries,
  // all of which must reproduce run_plan() exactly.
  RunPlan plan = small_grid();
  ExperimentConfig odd;
  odd.duration = SimTime::from_seconds(3.0);
  odd.governor = GovernorKind::kNext;
  odd.seed = 77;
  plan.add(workload::AppId::kPubg, odd);
  const auto reference = run_plan(plan, {.workers = 1});
  for (const std::size_t max_batch : {std::size_t{0}, std::size_t{1}, std::size_t{5}}) {
    SCOPED_TRACE(max_batch);
    const auto batched = run_plan_batched(plan, {.workers = 3, .max_batch = max_batch});
    ASSERT_EQ(batched.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      SCOPED_TRACE(i);
      expect_bit_identical(reference[i], batched[i]);
    }
  }
}

TEST(BatchRunner, BatchedTrainingIsBitIdenticalToTrainingPlan) {
  TrainingPlan plan;
  TrainingOptions base;
  base.max_duration = SimTime::from_seconds(20.0);
  base.episode_length = SimTime::from_seconds(8.0);
  plan.add_seed_sweep(workload::AppId::kFacebook, core::NextConfig{}, base, 3, 5);
  // A heterogeneous straggler (different budget) and an early-stopping
  // cell: both must route through the per-cell fallback inside the same
  // batched call.
  TrainingOptions longer = base;
  longer.max_duration = SimTime::from_seconds(12.0);
  plan.add(workload::AppId::kLineage, core::NextConfig{}, longer);
  TrainingOptions stopper = base;
  stopper.stop_at_convergence = true;
  plan.add(workload::AppId::kFacebook, core::NextConfig{}, stopper);

  const auto reference = run_training_plan(plan, {.workers = 1});
  // Explicit max_batch forces the lock-step trainer for the homogeneous
  // cells (auto sizing would degenerate shares this small to the
  // per-cell path).
  const auto batched = run_training_plan_batched(plan, {.workers = 2, .max_batch = 8});
  ASSERT_EQ(batched.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    SCOPED_TRACE(i);
    const auto& a = reference[i];
    const auto& b = batched[i];
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.sim_seconds, b.sim_seconds);
    EXPECT_EQ(a.decisions, b.decisions);
    EXPECT_EQ(a.final_mean_reward, b.final_mean_reward);
    EXPECT_EQ(a.states_visited, b.states_visited);
    ASSERT_EQ(a.table.state_count(), b.table.state_count());
    EXPECT_EQ(a.table.total_visits(), b.table.total_visits());
    a.table.for_each_entry([&](const rl::QTable::EntryView& ea) {
      ASSERT_TRUE(b.table.contains(ea.key())) << "state " << ea.key();
      EXPECT_EQ(ea.visits(), b.table.visits(ea.key()));
      EXPECT_EQ(ea.tried(), b.table.tried_mask(ea.key()));
      for (std::size_t q = 0; q < a.table.action_count(); ++q) {
        EXPECT_EQ(ea.q(q), b.table.q(ea.key(), q)) << "state " << ea.key() << " action " << q;
      }
    });
  }
}

TEST(BatchRunner, EmptyPlansReturnEmpty) {
  EXPECT_TRUE(run_plan_batched(RunPlan{}).empty());
  EXPECT_TRUE(run_training_plan_batched(TrainingPlan{}).empty());
}

TEST(Runner, DeriveSeedIsDeterministicAndSpreads) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t s = derive_seed(42, i);
    EXPECT_EQ(s, derive_seed(42, i));
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 1000u);                    // no collisions
  EXPECT_NE(derive_seed(42, 0), derive_seed(43, 0));  // base matters
}

}  // namespace
}  // namespace nextgov::sim
