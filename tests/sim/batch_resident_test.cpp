// Tests for the batch-resident stepping pipeline: bit-identity of
// run_plan_batched() against per-session execution across the whole
// scenario library and mixed-governor groups, the padded-lane contract
// (unused SoA tail lanes never go NaN/Inf or perturb live sessions), and
// the Engine phase-split equivalence the pipeline is built on.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "soc/power_batch.hpp"
#include "thermal/rc_batch.hpp"

namespace nextgov::sim {
namespace {

void expect_all_bit_identical(const std::vector<SessionResult>& a,
                              const std::vector<SessionResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(bit_identical(a[i], b[i]))
        << "session " << i << " (" << a[i].app << " / " << a[i].governor << ")";
  }
}

/// Library scenario shortened so tests stay fast; the shared duration is
/// what makes every session join one lock-step group.
ScenarioSpec short_scenario(std::string_view name, double seconds) {
  ScenarioSpec spec = scenario(name);
  spec.duration = SimTime::from_seconds(seconds);
  return spec;
}

TEST(BatchResident, AllLibraryScenariosBitIdenticalToSerial) {
  // Every library scenario in one lock-step group (same duration, shared
  // topology, same 1 ms step - refresh/ambient/workload all vary), with the
  // governor cycling so NextAgent lanes and non-Next fallback lanes share
  // the group: exactly the heterogeneity the resident pipeline must absorb.
  constexpr GovernorKind kCycle[] = {GovernorKind::kNext, GovernorKind::kSchedutil,
                                     GovernorKind::kIntQos, GovernorKind::kOndemand};
  RunPlan plan;
  std::size_t i = 0;
  for (const std::string_view name : scenario_names()) {
    const ScenarioSpec spec = short_scenario(name, 2.0);
    plan.add(spec.app_factory(), spec.name,
             spec.experiment_config(kCycle[i++ % std::size(kCycle)]));
  }
  ASSERT_GE(plan.size(), 12u);

  const auto serial = run_plan(plan, {.workers = 1});
  const auto batched =
      run_plan_batched(plan, {.workers = 1, .max_batch = plan.size()});
  expect_all_bit_identical(serial, batched);

  // Worker count must not matter either (scheduling invariance).
  const auto batched_mt = run_plan_batched(plan, {.workers = 3, .max_batch = 4});
  expect_all_bit_identical(serial, batched_mt);
}

TEST(BatchResident, MixedAgentModesShareOneGroup) {
  // Training-mode Next (exploring lanes with their own rng), deployed Next
  // (greedy lanes through rl::best_actions) and plain kernel governors in
  // one group: control_group must keep every lane's trajectory exactly what
  // per-session control() would produce.
  const ScenarioSpec spec = short_scenario("fig1_session", 3.0);
  RunPlan plan;
  ExperimentConfig training = spec.experiment_config(GovernorKind::kNext);
  training.next_mode = core::AgentMode::kTraining;
  plan.add(spec.app_factory(), "next_training", training);
  plan.add(spec.app_factory(), "next_deployed",
           spec.experiment_config(GovernorKind::kNext));
  ExperimentConfig training2 = training;
  training2.seed = 17;
  plan.add(spec.app_factory(), "next_training_seed17", training2);
  plan.add(spec.app_factory(), "schedutil",
           spec.experiment_config(GovernorKind::kSchedutil));
  plan.add(spec.app_factory(), "performance",
           spec.experiment_config(GovernorKind::kPerformance));
  plan.add(spec.app_factory(), "intqos", spec.experiment_config(GovernorKind::kIntQos));

  const auto serial = run_plan(plan, {.workers = 1});
  const auto batched =
      run_plan_batched(plan, {.workers = 1, .max_batch = plan.size()});
  expect_all_bit_identical(serial, batched);
}

TEST(BatchResident, PaddedTailLanesStayFiniteAndDoNotPerturbLiveSessions) {
  // Drive the resident pipeline by hand with more SoA lanes than live
  // sessions: live engines in lanes 0..k-1, tail lanes never attached and
  // never fed inputs. The contract: tail lanes must stay finite through the
  // sweeps (they do get leakage power and thermal relaxation), and the live
  // sessions must be bit-identical to detached per-session stepping.
  const ScenarioSpec spec_a = short_scenario("fig1_session", 1.5);
  const ScenarioSpec spec_b = short_scenario("fig1_session_35c", 1.5);
  const ExperimentConfig config_a = spec_a.experiment_config(GovernorKind::kNext);
  const ExperimentConfig config_b = spec_b.experiment_config(GovernorKind::kSchedutil);

  std::vector<std::unique_ptr<Engine>> live;
  live.push_back(make_engine(spec_a.app_factory(), config_a));
  live.push_back(make_engine(spec_b.app_factory(), config_b));
  std::vector<std::unique_ptr<Engine>> reference;
  reference.push_back(make_engine(spec_a.app_factory(), config_a));
  reference.push_back(make_engine(spec_b.app_factory(), config_b));

  constexpr std::size_t kLanes = 5;  // 2 live + 3 padded tail lanes
  thermal::RcBatch rc{live.front()->thermal().topology(), kLanes};
  soc::PowerBatch power{live.front()->soc(), kLanes};
  ASSERT_TRUE(power.compatible(live[1]->soc()));

  const auto& nodes = live.front()->cluster_nodes();
  std::vector<const double*> temp_lanes;
  std::vector<double*> power_lanes;
  for (const thermal::NodeId node : nodes) {
    temp_lanes.push_back(rc.temperature_lane(node));
    power_lanes.push_back(rc.power_lane(node));
  }
  for (std::size_t s = 0; s < live.size(); ++s) live[s]->attach_thermal_batch(rc, s);

  const SimTime dt = live.front()->config().step;
  const std::int64_t ticks = config_a.duration.us() / dt.us();
  for (std::int64_t t = 0; t < ticks; ++t) {
    for (std::size_t s = 0; s < live.size(); ++s) {
      live[s]->step_pre_power();
      live[s]->push_power_inputs(power, s);
    }
    power.evaluate(temp_lanes, power_lanes);
    rc.step(dt);
    for (std::size_t s = 0; s < live.size(); ++s) {
      live[s]->set_device_power(power.device_power(s));
      live[s]->step_post_observe();
      live[s]->step_post_meta();
      live[s]->step_post_finish();
    }
    for (auto& ref : reference) ref->step();
  }
  for (auto& e : live) e->detach_thermal_batch();

  for (std::size_t s = 0; s < live.size(); ++s) {
    EXPECT_TRUE(bit_identical(summarize(*live[s], "app", "gov"),
                              summarize(*reference[s], "app", "gov")))
        << "live lane " << s;
  }
  for (std::size_t s = live.size(); s < kLanes; ++s) {
    EXPECT_TRUE(std::isfinite(power.device_power(s).value())) << "tail lane " << s;
    for (std::size_t node = 0; node < rc.node_count(); ++node) {
      const double temp = rc.temperature_lane(thermal::NodeId{node})[s];
      EXPECT_TRUE(std::isfinite(temp)) << "tail lane " << s << " node " << node;
      EXPECT_GT(temp, -50.0);
      EXPECT_LT(temp, 150.0);
    }
  }
}

TEST(BatchResident, EnginePhaseSplitComposesToStep) {
  // The fine-grained phases are only usable by batch drivers if their
  // concatenation is exactly step(); run one engine through each path and
  // demand a bitwise-equal summary (no batch involved - this pins the phase
  // split itself).
  const ScenarioSpec spec = short_scenario("fig1_session", 2.0);
  const ExperimentConfig config = spec.experiment_config(GovernorKind::kNext);
  auto phased = make_engine(spec.app_factory(), config);
  auto stepped = make_engine(spec.app_factory(), config);

  const SimTime dt = phased->config().step;
  const std::int64_t ticks = config.duration.us() / dt.us();
  for (std::int64_t t = 0; t < ticks; ++t) {
    phased->step_pre_power();
    phased->apply_power_model();
    phased->thermal().step(dt);
    phased->step_post_observe();
    if (phased->meta_control_due()) phased->step_post_meta();
    phased->step_post_finish();
    stepped->step();
  }
  EXPECT_TRUE(bit_identical(summarize(*phased, "app", "gov"),
                            summarize(*stepped, "app", "gov")));
  EXPECT_EQ(phased->now().us(), stepped->now().us());
}

}  // namespace
}  // namespace nextgov::sim
