// Unit tests for the performance/powersave/ondemand baselines.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "governors/simple_governors.hpp"
#include "soc/soc.hpp"

namespace nextgov::governors {
namespace {

Observation obs_with_busy(const soc::Soc& soc, double busy) {
  Observation obs;
  obs.clusters.resize(soc.cluster_count());
  for (std::size_t i = 0; i < soc.cluster_count(); ++i) {
    const auto& c = soc.cluster(i);
    obs.clusters[i].freq_index = c.freq_index();
    obs.clusters[i].cap_index = c.max_cap_index();
    obs.clusters[i].opp_count = c.opps().size();
    obs.clusters[i].frequency = c.frequency();
    obs.clusters[i].max_frequency = c.opps().highest().frequency;
    obs.clusters[i].busy_hot = busy;
    obs.clusters[i].busy_avg = busy;
  }
  return obs;
}

TEST(Performance, PinsEveryClusterAtMax) {
  soc::Soc soc = soc::make_exynos9810();
  PerformanceGovernor gov;
  gov.control(obs_with_busy(soc, 0.0), soc);
  for (const auto& c : soc.clusters()) EXPECT_EQ(c.freq_index(), c.opps().size() - 1);
}

TEST(Performance, RespectsCaps) {
  soc::Soc soc = soc::make_exynos9810();
  soc.big().set_max_cap_index(3);
  PerformanceGovernor gov;
  gov.control(obs_with_busy(soc, 1.0), soc);
  EXPECT_EQ(soc.big().freq_index(), 3u);
}

TEST(Powersave, PinsEveryClusterAtMin) {
  soc::Soc soc = soc::make_exynos9810();
  for (auto& c : soc.clusters()) c.set_freq_index(c.opps().size() - 1);
  PowersaveGovernor gov;
  gov.control(obs_with_busy(soc, 1.0), soc);
  for (const auto& c : soc.clusters()) EXPECT_EQ(c.freq_index(), 0u);
}

TEST(Ondemand, JumpsToMaxAboveThreshold) {
  soc::Soc soc = soc::make_exynos9810();
  OndemandGovernor gov{0.8};
  gov.control(obs_with_busy(soc, 0.9), soc);
  EXPECT_EQ(soc.big().freq_index(), soc.big().opps().size() - 1);
}

TEST(Ondemand, StepsDownWhenProjectedUtilStaysLow) {
  soc::Soc soc = soc::make_exynos9810();
  soc.big().set_freq_index(10);
  OndemandGovernor gov{0.8};
  gov.control(obs_with_busy(soc, 0.2), soc);
  EXPECT_EQ(soc.big().freq_index(), 9u);
}

TEST(Ondemand, HoldsWhenStepDownWouldSaturate) {
  soc::Soc soc = soc::make_exynos9810();
  soc.big().set_freq_index(10);  // 1794 MHz; one step down is 1690 MHz
  // busy 0.78 at 1794 -> projected 0.78*1794/1690 = 0.828 > 0.8 -> hold.
  OndemandGovernor gov{0.8};
  gov.control(obs_with_busy(soc, 0.78), soc);
  EXPECT_EQ(soc.big().freq_index(), 10u);
}

TEST(Ondemand, ValidatesParameters) {
  EXPECT_THROW(OndemandGovernor(0.0), ConfigError);
  EXPECT_THROW(OndemandGovernor(1.5), ConfigError);
  EXPECT_THROW(OndemandGovernor(0.8, SimTime::zero()), ConfigError);
}

TEST(NoMeta, LeavesCapsAlone) {
  soc::Soc soc = soc::make_exynos9810();
  NoMetaGovernor gov;
  gov.control(obs_with_busy(soc, 1.0), soc);
  for (const auto& c : soc.clusters()) EXPECT_EQ(c.max_cap_index(), c.opps().size() - 1);
}

}  // namespace
}  // namespace nextgov::governors
