// Unit tests for the Int. QoS PM (Pathania et al. DAC'14) reimplementation.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "governors/intqos.hpp"
#include "soc/soc.hpp"

namespace nextgov::governors {
namespace {

Observation obs_with_fps(const soc::Soc& soc, double fps) {
  Observation obs;
  obs.clusters.resize(soc.cluster_count());
  for (std::size_t i = 0; i < soc.cluster_count(); ++i) {
    const auto& c = soc.cluster(i);
    obs.clusters[i].freq_index = c.freq_index();
    obs.clusters[i].cap_index = c.max_cap_index();
    obs.clusters[i].opp_count = c.opps().size();
    obs.clusters[i].frequency = c.frequency();
    obs.clusters[i].max_frequency = c.opps().highest().frequency;
  }
  obs.fps = Fps{fps};
  return obs;
}

TEST(IntQos, TargetTracksAverageFps) {
  soc::Soc soc = soc::make_exynos9810();
  IntQosGovernor gov;
  for (int i = 0; i < 200; ++i) gov.control(obs_with_fps(soc, 45.0), soc);
  EXPECT_NEAR(gov.target_fps(), 45.0, 2.0);
}

TEST(IntQos, TargetHasMinimumFloor) {
  soc::Soc soc = soc::make_exynos9810();
  IntQosGovernor gov;
  for (int i = 0; i < 400; ++i) gov.control(obs_with_fps(soc, 1.0), soc);
  // The EMA decays toward 1 FPS but the applied target floors at 15.
  EXPECT_LE(gov.target_fps(), 15.0);
}

TEST(IntQos, LearnsFrameTimeModelFromObservations) {
  soc::Soc soc = soc::make_exynos9810();
  IntQosGovernor gov;
  // Synthetic ground truth: t = 0.004/f_cpu + 0.006/f_gpu + 0.002 (GHz, s).
  const auto true_time = [](double f_cpu_ghz, double f_gpu_ghz) {
    return 0.004 / f_cpu_ghz + 0.006 / f_gpu_ghz + 0.002;
  };
  Rng rng{3};
  for (int i = 0; i < 800; ++i) {
    soc.big().set_freq_index(static_cast<std::size_t>(rng.uniform_int(0, 17)));
    soc.gpu().set_freq_index(static_cast<std::size_t>(rng.uniform_int(0, 5)));
    const double t = true_time(soc.big().frequency().ghz(), soc.gpu().frequency().ghz());
    gov.control(obs_with_fps(soc, 1.0 / t), soc);
  }
  const auto theta = gov.model();
  EXPECT_NEAR(theta[0], 0.004, 0.0015);
  EXPECT_NEAR(theta[1], 0.006, 0.0015);
  EXPECT_NEAR(theta[2], 0.002, 0.0015);
}

TEST(IntQos, CapsComeDownForEasyTargets) {
  soc::Soc soc = soc::make_exynos9810();
  IntQosGovernor gov;
  // 30 FPS achievable far below fmax under the prior model.
  for (int i = 0; i < 300; ++i) {
    soc.big().request_frequency(soc.big().max_cap_frequency());
    soc.gpu().set_freq_index(soc.gpu().max_cap_index());
    gov.control(obs_with_fps(soc, 30.0), soc);
  }
  EXPECT_LT(soc.big().max_cap_index(), soc.big().opps().size() - 1);
}

TEST(IntQos, DoesNotTouchLittleCluster) {
  soc::Soc soc = soc::make_exynos9810();
  IntQosGovernor gov;
  for (int i = 0; i < 100; ++i) gov.control(obs_with_fps(soc, 40.0), soc);
  EXPECT_EQ(soc.little().max_cap_index(), soc.little().opps().size() - 1);
}

TEST(IntQos, InfeasibleTargetFallsBackToMaxCaps) {
  soc::Soc soc = soc::make_exynos9810();
  IntQosParams params;
  params.min_target_fps = 2000.0;  // impossible budget
  IntQosGovernor gov{params};
  gov.control(obs_with_fps(soc, 60.0), soc);
  EXPECT_EQ(soc.big().max_cap_index(), soc.big().opps().size() - 1);
  EXPECT_EQ(soc.gpu().max_cap_index(), soc.gpu().opps().size() - 1);
}

TEST(IntQos, ResetRestoresPrior) {
  soc::Soc soc = soc::make_exynos9810();
  IntQosGovernor gov;
  for (int i = 0; i < 100; ++i) gov.control(obs_with_fps(soc, 50.0), soc);
  gov.reset();
  EXPECT_DOUBLE_EQ(gov.target_fps(), 0.0);
}

TEST(IntQos, ValidatesParameters) {
  IntQosParams p;
  p.period = SimTime::zero();
  EXPECT_THROW(IntQosGovernor{p}, ConfigError);
  p = IntQosParams{};
  p.rls_forgetting = 0.2;
  EXPECT_THROW(IntQosGovernor{p}, ConfigError);
}

}  // namespace
}  // namespace nextgov::governors
